/**
 * @file
 * Integration tests: full pipelines reproducing the paper's headline
 * behaviours at reduced scale.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hh"
#include "dist/normal.hh"
#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "explore/optimality.hh"
#include "explore/pareto.hh"
#include "extract/approximate.hh"
#include "model/app.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "risk/arch_risk.hh"
#include "risk/risk_function.hh"
#include "util/logging.hh"

namespace m = ar::model;
namespace x = ar::explore;

namespace
{

std::size_t
conventionalIndex(const std::vector<m::CoreConfig> &designs,
                  const m::AppParams &app)
{
    std::size_t best = 0;
    double best_s = -1.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const double s = m::HillMartyEvaluator::nominalSpeedup(
            designs[i], app.f, app.c);
        if (s > best_s) {
            best_s = s;
            best = i;
        }
    }
    return best;
}

} // namespace

TEST(EndToEnd, StringModelThroughFramework)
{
    // A user-authored Amdahl model, parsed from strings, propagated,
    // and risk-scored -- the full front-to-back path of Figure 4/5.
    ar::symbolic::EquationSystem sys;
    sys.addEquation("Speedup = 1 / (1 - f + f / s)");
    sys.markUncertain("f");
    ar::core::Framework fw({10000, "latin-hypercube"});
    fw.setSystem(std::move(sys));

    ar::mc::InputBindings in;
    in.uncertain["f"] = std::make_shared<ar::dist::TruncatedNormal>(
        0.9, 0.05, 0.0, 1.0);
    in.fixed["s"] = 16.0;
    ar::risk::QuadraticRisk fn;
    const double ref = 1.0 / (1.0 - 0.9 + 0.9 / 16.0);
    const auto res = fw.analyze("Speedup", in, fn, ref, 3);

    // Speedup is convex in f around 0.9, so uncertainty raises the
    // mean (Jensen) while still creating real downside risk.
    EXPECT_GT(res.expected(), ref);
    EXPECT_LT(res.expected(), ref * 1.25);
    EXPECT_GT(res.risk, 0.0);
}

TEST(EndToEnd, ConventionalDesignNotRiskOptimalAtModerateSigma)
{
    // Implication 4 at the (0.2, 0.2) grid point with LPHC.
    const auto app = m::appLPHC();
    const auto designs = x::enumerateDesigns();
    const std::size_t conv = conventionalIndex(designs, app);
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[conv], app.f, app.c);

    x::SweepConfig cfg;
    cfg.trials = 3000;
    cfg.seed = 17;
    x::DesignSpaceEvaluator eval(designs, app,
                                 m::UncertaintySpec::appArch(0.2, 0.2),
                                 cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, ref);
    const auto res = x::classifyDesigns(outcomes, conv);

    EXPECT_NE(res.risk_opt, conv);
    EXPECT_LT(res.best_risk, res.conv_risk);
}

TEST(EndToEnd, RiskCanBeMitigatedCheaply)
{
    // Implication 6: along the Pareto front, a large risk reduction
    // costs only a small performance loss.
    const auto app = m::appLPHC();
    const auto designs = x::enumerateDesigns();
    const std::size_t conv = conventionalIndex(designs, app);
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[conv], app.f, app.c);

    x::SweepConfig cfg;
    cfg.trials = 3000;
    cfg.seed = 23;
    x::DesignSpaceEvaluator eval(designs, app,
                                 m::UncertaintySpec::appArch(0.2, 0.2),
                                 cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, ref);
    const auto front = x::paretoFront(outcomes);
    ASSERT_GE(front.size(), 2u);

    const auto &perf_opt = outcomes[front.front()];
    const auto &conv_o = outcomes[conv];
    // A front point must exist that (a) keeps >= 97% of the best
    // expected performance while cutting >= 25% of its risk, and
    // (b) dominates the conventional design outright with less than
    // half its risk (the paper's "mitigate most of the risk at a
    // small performance cost").
    bool found = false;
    for (std::size_t idx : front) {
        const auto &o = outcomes[idx];
        if (o.expected >= 0.97 * perf_opt.expected &&
            o.risk <= 0.75 * perf_opt.risk &&
            o.expected >= conv_o.expected &&
            o.risk <= 0.5 * conv_o.risk) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(EndToEnd, ApproximationFromFiftySamplesIsNearOptimal)
{
    // Section 4.3: with k = 50 observed samples per input, the
    // chosen risk-optimal design performs close to the one chosen
    // with full ground-truth knowledge.
    const auto app = m::appLPHC();
    const auto spec = m::UncertaintySpec::appArch(0.2, 0.2);
    const auto config = m::asymCores();

    ar::core::Framework fw({4000, "latin-hypercube"});
    fw.setSystem(m::buildHillMartySystem(config.numTypes()));
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        config, app.f, app.c);
    ar::risk::QuadraticRisk fn;

    const auto truth_in = m::groundTruthBindings(config, app, spec);
    const auto truth = fw.analyze("Speedup", truth_in, fn, ref, 31);

    ar::util::Rng obs_rng(32);
    const auto approx_in = ar::extract::approximateBindings(
        truth_in, 50, {}, obs_rng);
    const auto approx = fw.analyze("Speedup", approx_in, fn, ref, 31);

    // Expected performance and risk deviations stay bounded (the
    // paper reports <= 5% typical; allow slack at this sample size).
    EXPECT_NEAR(approx.expected(), truth.expected(),
                0.10 * truth.expected());
}

TEST(EndToEnd, MonetaryRiskAwareBeatsObliviousInDollars)
{
    // Section 4.4 shape: picking the design that minimizes Table-5
    // monetary risk saves dollars per chip vs the risk-oblivious
    // choice, without sacrificing expected performance much.
    const auto app = m::appLPHC();
    const auto designs = x::enumerateDesigns();
    const std::size_t conv = conventionalIndex(designs, app);
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[conv], app.f, app.c);

    x::SweepConfig cfg;
    cfg.trials = 3000;
    cfg.seed = 37;
    x::DesignSpaceEvaluator eval(designs, app,
                                 m::UncertaintySpec::appArch(0.2, 0.2),
                                 cfg);
    const auto money = ar::risk::MonetaryRisk::table5();
    const auto outcomes = eval.evaluateAll(money, ref);

    const std::size_t risk_opt = x::argminRisk(outcomes);
    EXPECT_LT(outcomes[risk_opt].risk, outcomes[conv].risk);
    // Risk-aware design keeps competitive expected performance
    // (the paper even finds it better).
    EXPECT_GT(outcomes[risk_opt].expected,
              0.9 * outcomes[conv].expected);
}

TEST(EndToEnd, HeterogeneousChipsAreMoreRobust)
{
    // Implication 3: output stddev (relative) shrinks as the chip
    // gets more heterogeneous under full uncertainty.
    const auto app = m::appLPHC();
    const std::vector<m::CoreConfig> designs{
        m::symCores(), m::asymCores(), m::heteroCores()};
    x::SweepConfig cfg;
    cfg.trials = 6000;
    cfg.seed = 41;
    x::DesignSpaceEvaluator eval(designs, app,
                                 m::UncertaintySpec::all(0.5), cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, 1.0);
    const double cv_asym =
        outcomes[1].stddev / outcomes[1].expected;
    const double cv_hetero =
        outcomes[2].stddev / outcomes[2].expected;
    EXPECT_LT(cv_hetero, cv_asym);
}
