/**
 * @file
 * Golden-output comparison: every example-spec analysis (propagation,
 * sensitivity, design-space sweep) must stay bit-identical across
 * refactors of the symbolic stack, at 1, 2, and 8 worker threads.
 *
 * The checked-in golden file (tests/golden/golden_outputs.txt) holds
 * one FNV-1a hash of the raw IEEE-754 sample/summary bits per
 * (workload, thread-count) pair.  A hash mismatch means some output
 * bit changed -- which the interned-IR refactor, the fused backends,
 * and the multithreaded propagator all promise never to do.
 *
 * Regenerate (e.g. when an intentional numeric change lands) with:
 *   AR_REGEN_GOLDENS=1 ./build/tests/test_integration \
 *       --gtest_filter='GoldenOutputs.*'
 * which rewrites the golden file in the source tree.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/spec.hh"
#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "mc/sensitivity.hh"
#include "model/app.hh"
#include "model/uncertainty.hh"
#include "simd/dispatch.hh"
#include "util/io.hh"
#include "util/rng.hh"

namespace
{

#ifndef AR_SOURCE_DIR
#error "AR_SOURCE_DIR must point at the repository root"
#endif

const std::string kSourceDir = AR_SOURCE_DIR;
const std::string kGoldenPath =
    kSourceDir + "/tests/golden/golden_outputs.txt";
const std::string kSimdGoldenPath =
    kSourceDir + "/tests/golden/golden_outputs_simd.txt";

/** Incremental FNV-1a over raw double bits. */
class BitHash
{
  public:
    void
    fold(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        foldWord(bits);
    }

    void
    fold(const std::vector<double> &vs)
    {
        for (const double v : vs)
            fold(v);
    }

    void foldWord(std::uint64_t w)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (w >> (8 * i)) & 0xffu;
            h_ *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

std::string
hex(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** All golden entries, keyed "workload:threads[:variant]". */
std::map<std::string, std::string>
computeEntries()
{
    std::map<std::string, std::string> out;
    const std::size_t kThreads[] = {1, 2, 8};

    // Propagation: run every example spec end to end.
    const char *kSpecs[] = {"amdahl", "accelerator",
                            "hill_marty_asym", "degradable_core",
                            "memory_hierarchy"};
    for (const char *name : kSpecs) {
        const auto spec_path =
            kSourceDir + "/examples/specs/" + name + ".spec";
        for (const std::size_t t : kThreads) {
            auto spec = ar::core::loadSpecFile(spec_path);
            spec.threads = t;
            const auto res = ar::core::runSpec(spec);
            BitHash h;
            h.fold(res.samples);
            h.fold(res.summary.mean);
            h.fold(res.summary.stddev);
            h.fold(res.reference);
            h.fold(res.risk);
            for (const auto &co : res.co_outputs) {
                h.fold(co.samples);
                h.fold(co.summary.mean);
            }
            h.foldWord(res.faults.faulty_trials);
            out["prop:" + std::string(name) + ":t" +
                std::to_string(t)] = hex(h.value());
        }
    }

    // Sensitivity: Sobol indices over the independent-input specs,
    // fused and unfused.
    const char *kSobolSpecs[] = {"amdahl", "accelerator"};
    for (const char *name : kSobolSpecs) {
        const auto spec_path =
            kSourceDir + "/examples/specs/" + name + ".spec";
        for (const std::size_t t : kThreads) {
            for (const bool fused : {false, true}) {
                const auto spec = ar::core::loadSpecFile(spec_path);
                ar::mc::SensitivityConfig cfg;
                cfg.trials = 2048;
                cfg.threads = t;
                cfg.fused = fused;
                ar::util::Rng rng(99);
                const auto res = ar::mc::sobolIndices(
                    spec.system.resolve(spec.output), spec.bindings,
                    cfg, rng);
                BitHash h;
                h.fold(res.output_mean);
                h.fold(res.output_variance);
                for (const auto &ix : res.indices) {
                    h.fold(ix.first_order);
                    h.fold(ix.total);
                }
                out["sobol:" + std::string(name) + ":t" +
                    std::to_string(t) +
                    (fused ? ":fused" : ":unfused")] = hex(h.value());
            }
        }
    }

    // Design-space sweep, both backends.
    const auto designs = ar::explore::enumerateDesigns();
    const auto app = ar::model::appLPHC();
    for (const std::size_t t : kThreads) {
        for (const bool fused : {false, true}) {
            ar::explore::SweepConfig cfg;
            cfg.trials = 500;
            cfg.seed = 17;
            cfg.threads = t;
            cfg.backend = fused
                              ? ar::explore::SweepBackend::FusedProgram
                              : ar::explore::SweepBackend::Direct;
            ar::explore::DesignSpaceEvaluator eval(
                designs, app,
                ar::model::UncertaintySpec::appArch(0.2, 0.2), cfg);
            ar::risk::QuadraticRisk fn;
            const auto outcomes = eval.evaluateAll(fn, 10.0);
            BitHash h;
            for (const auto &o : outcomes) {
                h.fold(o.expected);
                h.fold(o.stddev);
                h.fold(o.risk);
                h.foldWord(o.effective_trials);
            }
            out["sweep:t" + std::to_string(t) +
                (fused ? ":fused" : ":direct")] = hex(h.value());
        }
    }

    // Correlated multi-state sweep: pins the Iman-Conover pool
    // correlation (the pre-fix sweep silently dropped `correlate`)
    // and the per-size state pools in one entry per (threads,
    // backend).
    for (const std::size_t t : kThreads) {
        for (const bool fused : {false, true}) {
            ar::explore::SweepConfig cfg;
            cfg.trials = 500;
            cfg.seed = 17;
            cfg.threads = t;
            cfg.backend = fused
                              ? ar::explore::SweepBackend::FusedProgram
                              : ar::explore::SweepBackend::Direct;
            auto spec = ar::model::UncertaintySpec::appArch(0.2, 0.2);
            spec.correlations.push_back({"f", "c", 0.4});
            spec.core_states = {{1.0, 0.85}, {0.5, 0.12}, {0.0, 0.03}};
            ar::explore::DesignSpaceEvaluator eval(designs, app, spec,
                                                   cfg);
            ar::risk::QuadraticRisk fn;
            const auto outcomes = eval.evaluateAll(fn, 10.0);
            BitHash h;
            for (const auto &o : outcomes) {
                h.fold(o.expected);
                h.fold(o.stddev);
                h.fold(o.risk);
                h.foldWord(o.effective_trials);
            }
            out["sweep-corr-states:t" + std::to_string(t) +
                (fused ? ":fused" : ":direct")] = hex(h.value());
        }
    }
    return out;
}

std::map<std::string, std::string>
loadGoldens(const std::string &path)
{
    std::map<std::string, std::string> out;
    std::ifstream in(path);
    std::string key, value;
    while (in >> key >> value)
        out[key] = value;
    return out;
}

/** Regenerate-or-compare @p entries against the file at @p path. */
void
checkAgainstGoldenFile(
    const std::map<std::string, std::string> &entries,
    const std::string &path)
{
    if (std::getenv("AR_REGEN_GOLDENS") != nullptr) {
        std::ostringstream oss;
        for (const auto &[key, value] : entries)
            oss << key << " " << value << "\n";
        std::ofstream of(path);
        ASSERT_TRUE(of.good()) << "cannot write " << path;
        of << oss.str();
        GTEST_SKIP() << "regenerated " << path << " with "
                     << entries.size() << " entries";
    }

    const auto goldens = loadGoldens(path);
    ASSERT_FALSE(goldens.empty())
        << "missing golden file " << path
        << " (regenerate with AR_REGEN_GOLDENS=1)";
    for (const auto &[key, value] : entries) {
        const auto it = goldens.find(key);
        ASSERT_NE(it, goldens.end()) << "no golden entry for " << key;
        EXPECT_EQ(it->second, value) << "output bits changed: " << key;
    }
    EXPECT_EQ(goldens.size(), entries.size());
}

} // namespace

TEST(GoldenOutputs, ExampleAnalysesAreBitIdentical)
{
    // Pinned to Level::Scalar: these hashes predate the SIMD backend
    // and pin the scalar tape semantics bit-for-bit.  Vector-level
    // hashes are pinned separately by golden_outputs_simd.txt below.
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    // Thread counts must not change any bit: all three per-workload
    // hashes are present and each equals its golden.
    checkAgainstGoldenFile(computeEntries(), kGoldenPath);
}

TEST(GoldenOutputs, VectorLevelsAreBitIdenticalAndPinned)
{
    // Vector determinism: every available vector level (AVX2,
    // AVX-512, NEON) must produce the same bits -- the tail lanes run
    // the same generic kernels one lane wide, so width never shows --
    // and those bits are pinned by golden_outputs_simd.txt.
    namespace simd = ar::simd;
    std::vector<simd::Level> vec_levels;
    for (const simd::Level l : simd::availableLevels())
        if (l != simd::Level::Scalar)
            vec_levels.push_back(l);
    if (vec_levels.empty())
        GTEST_SKIP() << "no vector SIMD level available on this host";

    std::map<std::string, std::string> entries;
    for (const simd::Level l : vec_levels) {
        simd::ScopedLevel pin(l);
        const auto got = computeEntries();
        if (entries.empty())
            entries = got;
        else
            EXPECT_EQ(entries, got)
                << "vector levels disagree at "
                << simd::levelName(l);
    }
    checkAgainstGoldenFile(entries, kSimdGoldenPath);
}
