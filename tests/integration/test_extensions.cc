/**
 * @file
 * Integration tests for the extension features working together:
 * correlated inputs, Sobol sensitivity, constrained selection, tail
 * metrics, and the spec-driven pipeline on the Hill-Marty model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hh"
#include "core/spec.hh"
#include "dist/normal.hh"
#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "explore/optimality.hh"
#include "explore/select.hh"
#include "mc/sensitivity.hh"
#include "model/app.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "risk/var.hh"
#include "util/logging.hh"

namespace m = ar::model;
namespace x = ar::explore;

TEST(Extensions, SobolFindsTheBigCoreOnAsymmetricDesign)
{
    // Under architecture uncertainty the asymmetric design's fate
    // hangs on its single big core: its P and N indices must beat
    // the small cores' by a wide margin.
    const auto config = m::asymCores();
    ar::core::Framework fw;
    fw.setSystem(m::buildHillMartySystem(config.numTypes()));
    const auto in = m::groundTruthBindings(
        config, m::appLPHC(), m::UncertaintySpec::all(0.2));
    ar::util::Rng rng(21);
    const auto res = ar::mc::sobolIndices(
        fw.system().resolve("Speedup"), in, {4096}, rng);
    // Types are ordered area-descending: core0 is the big core.
    // Whether it survives fabrication (N_core0 is Binomial(1, 0.75))
    // is the single largest variance source, far ahead of the herd
    // of small cores whose failures average out.
    EXPECT_GT(res.of("N_core0").total,
              2.0 * res.of("N_core1").total);
    double max_total = 0.0;
    std::string max_input;
    for (const auto &idx : res.indices) {
        if (idx.total > max_total) {
            max_total = idx.total;
            max_input = idx.input;
        }
    }
    EXPECT_EQ(max_input, "N_core0");
}

TEST(Extensions, CorrelatedFCChangesRiskMonotonically)
{
    const auto config = m::asymCores();
    ar::core::Framework fw({8000, "latin-hypercube"});
    fw.setSystem(m::buildHillMartySystem(config.numTypes()));
    m::UncertaintySpec spec;
    spec.sigma_f = spec.sigma_c = 0.4;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        config, 0.9, 0.01);
    ar::risk::QuadraticRisk fn;

    double prev_risk = -1.0;
    for (double rho : {-0.6, 0.0, 0.6}) {
        auto in = m::groundTruthBindings(config, m::appLPHC(), spec);
        if (rho != 0.0)
            in.correlations.push_back({"f", "c", rho});
        const auto res = fw.analyze("Speedup", in, fn, ref, 31);
        if (prev_risk >= 0.0)
            EXPECT_LT(res.risk, prev_risk) << "rho=" << rho;
        prev_risk = res.risk;
    }
}

TEST(Extensions, SelectionQueriesOnRealSweep)
{
    const auto app = m::appLPHC();
    const auto designs = x::enumerateDesigns();
    std::size_t conv = 0;
    double ref = -1.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const double s = m::HillMartyEvaluator::nominalSpeedup(
            designs[i], app.f, app.c);
        if (s > ref) {
            ref = s;
            conv = i;
        }
    }
    x::SweepConfig cfg;
    cfg.trials = 2000;
    cfg.seed = 41;
    x::DesignSpaceEvaluator eval(designs, app,
                                 m::UncertaintySpec::appArch(0.2, 0.2),
                                 cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, ref);

    const auto perf_opt = x::argmaxExpected(outcomes);
    const auto floor_pick = x::minRiskWithPerfFloor(
        outcomes, 0.97 * outcomes[perf_opt].expected);
    ASSERT_TRUE(floor_pick.has_value());
    EXPECT_LE(outcomes[*floor_pick].risk, outcomes[perf_opt].risk);
    EXPECT_GE(outcomes[*floor_pick].expected,
              0.97 * outcomes[perf_opt].expected);

    const auto cap_pick =
        x::maxPerfWithRiskCap(outcomes, outcomes[conv].risk);
    ASSERT_TRUE(cap_pick.has_value());
    EXPECT_GE(outcomes[*cap_pick].expected,
              outcomes[conv].expected);

    const auto knee = x::kneePoint(outcomes);
    EXPECT_GE(outcomes[knee].expected,
              0.9 * outcomes[perf_opt].expected);
}

TEST(Extensions, TailMetricsConsistentWithRisk)
{
    const auto config = m::heteroCores();
    ar::core::Framework fw({6000, "latin-hypercube"});
    fw.setSystem(m::buildHillMartySystem(config.numTypes()));
    const auto in = m::groundTruthBindings(
        config, m::appLPHC(), m::UncertaintySpec::all(0.3));
    ar::risk::QuadraticRisk fn;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        config, 0.9, 0.01);
    const auto res = fw.analyze("Speedup", in, fn, ref, 51);

    const double var5 = ar::risk::valueAtRisk(res.samples, 0.05);
    const double cvar5 =
        ar::risk::conditionalValueAtRisk(res.samples, 0.05);
    EXPECT_LT(cvar5, var5);
    EXPECT_LT(var5, res.expected());
    const double sp =
        ar::risk::shortfallProbability(res.samples, ref);
    EXPECT_GT(sp, 0.0);
    EXPECT_LT(sp, 1.0);
}

TEST(Extensions, SpecPipelineMatchesProgrammaticPipeline)
{
    // The same Amdahl analysis built via the spec front end and via
    // the C++ API must agree exactly (same seed, same machinery).
    const char *text = R"(
Speedup = 1 / (1 - f + f / s)
fixed s 16
uncertain f truncnormal 0.9 0.02 0 1
output Speedup
risk quadratic
trials 3000
seed 77
reference 6.4
)";
    const auto spec_res = ar::core::runSpec(ar::core::parseSpec(text));

    ar::symbolic::EquationSystem sys;
    sys.addEquation("Speedup = 1 / (1 - f + f / s)");
    sys.markUncertain("f");
    ar::core::Framework fw({3000, "latin-hypercube"});
    fw.setSystem(std::move(sys));
    ar::mc::InputBindings in;
    in.uncertain["f"] = std::make_shared<ar::dist::TruncatedNormal>(
        0.9, 0.02, 0.0, 1.0);
    in.fixed["s"] = 16.0;
    ar::risk::QuadraticRisk fn;
    const auto api_res = fw.analyze("Speedup", in, fn, 6.4, 77);

    ASSERT_EQ(spec_res.samples.size(), api_res.samples.size());
    for (std::size_t i = 0; i < api_res.samples.size(); ++i)
        ASSERT_DOUBLE_EQ(spec_res.samples[i], api_res.samples[i]);
    EXPECT_DOUBLE_EQ(spec_res.risk, api_res.risk);
}
