/**
 * @file
 * Unit tests for cooperative cancellation (CancelToken) and the
 * ThreadPool's bounded task mode: admission control, exception
 * containment, and cancellable parallel loops.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hh"
#include "util/thread_pool.hh"

using ar::util::CancelledError;
using ar::util::CancelReason;
using ar::util::CancelToken;
using ar::util::ThreadPool;

TEST(CancelToken, NullTokenNeverCancels)
{
    CancelToken tok;
    EXPECT_FALSE(tok.cancellable());
    EXPECT_EQ(tok.check(), CancelReason::None);
    EXPECT_FALSE(tok.expired());
    EXPECT_FALSE(tok.hasDeadline());
    tok.cancel(); // Must be a safe no-op.
    EXPECT_EQ(tok.check(), CancelReason::None);
    EXPECT_NO_THROW(tok.throwIfExpired("test"));
}

TEST(CancelToken, ExplicitCancelTrips)
{
    CancelToken tok = CancelToken::create();
    EXPECT_TRUE(tok.cancellable());
    EXPECT_EQ(tok.check(), CancelReason::None);
    tok.cancel();
    EXPECT_EQ(tok.check(), CancelReason::Cancelled);
    EXPECT_TRUE(tok.expired());
    try {
        tok.throwIfExpired("unit");
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), CancelReason::Cancelled);
        EXPECT_NE(std::string(e.what()).find("unit"),
                  std::string::npos);
    }
}

TEST(CancelToken, CopiesShareState)
{
    CancelToken a = CancelToken::create();
    CancelToken b = a;
    b.cancel();
    EXPECT_EQ(a.check(), CancelReason::Cancelled);
}

TEST(CancelToken, DeadlineExpires)
{
    CancelToken tok =
        CancelToken::withTimeout(std::chrono::milliseconds(1));
    EXPECT_TRUE(tok.hasDeadline());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(tok.check(), CancelReason::DeadlineExpired);
}

TEST(CancelToken, FarDeadlineStaysLive)
{
    CancelToken tok =
        CancelToken::withTimeout(std::chrono::hours(1));
    EXPECT_EQ(tok.check(), CancelReason::None);
}

TEST(CancelToken, AlreadyExpiredDeadlineTripsAtFirstCheck)
{
    // A deadline in the past at construction: the token is born
    // expired, so the very first check reports it -- the incremental
    // retry paths rely on this never sneaking one trial through.
    CancelToken tok = CancelToken::withDeadline(
        CancelToken::Clock::now() - std::chrono::seconds(1));
    EXPECT_TRUE(tok.hasDeadline());
    EXPECT_EQ(tok.check(), CancelReason::DeadlineExpired);
    EXPECT_TRUE(tok.expired());
    try {
        tok.throwIfExpired("born expired");
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), CancelReason::DeadlineExpired);
    }
}

TEST(CancelToken, ZeroDurationDeadlineExpiresImmediately)
{
    CancelToken tok =
        CancelToken::withTimeout(std::chrono::nanoseconds(0));
    EXPECT_TRUE(tok.hasDeadline());
    EXPECT_EQ(tok.check(), CancelReason::DeadlineExpired);
    EXPECT_THROW(tok.throwIfExpired("zero budget"), CancelledError);
}

TEST(CancelToken, ExplicitCancelWinsOverDeadline)
{
    CancelToken tok =
        CancelToken::withTimeout(std::chrono::milliseconds(1));
    tok.cancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(tok.check(), CancelReason::Cancelled);
}

TEST(CancelToken, ReasonNamesAreStable)
{
    EXPECT_STREQ(cancelReasonName(CancelReason::None), "none");
    EXPECT_STREQ(cancelReasonName(CancelReason::Cancelled),
                 "cancelled");
    EXPECT_STREQ(cancelReasonName(CancelReason::DeadlineExpired),
                 "deadline-expired");
}

TEST(ParallelForCancel, PreCancelledTokenThrowsImmediately)
{
    ThreadPool pool(4);
    CancelToken tok = CancelToken::create();
    tok.cancel();
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(
        pool.parallelFor(
            1000, [&](std::size_t) { ran.fetch_add(1); }, 0, tok),
        CancelledError);
    EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForCancel, MidLoopCancelStopsEarly)
{
    ThreadPool pool(4);
    CancelToken tok = CancelToken::create();
    std::atomic<std::size_t> ran{0};
    try {
        pool.parallelFor(
            100000,
            [&](std::size_t i) {
                if (i == 10)
                    tok.cancel();
                ran.fetch_add(1);
            },
            0, tok);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), CancelReason::Cancelled);
    }
    // Latency bound: at most one in-flight index per thread after
    // the cancel, not the whole loop.
    EXPECT_LT(ran.load(), 100000u);
}

TEST(ParallelForCancel, InlinePathAlsoCancels)
{
    ThreadPool pool(1); // Single-threaded: the inline path.
    CancelToken tok = CancelToken::create();
    std::size_t ran = 0;
    try {
        pool.parallelFor(
            1000,
            [&](std::size_t i) {
                if (i == 9)
                    tok.cancel();
                ++ran;
            },
            0, tok);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), CancelReason::Cancelled);
    }
    EXPECT_EQ(ran, 10u); // Cancels before index 10 starts.
}

TEST(ParallelForCancel, DeadlineReportsDeadlineReason)
{
    ThreadPool pool(2);
    CancelToken tok =
        CancelToken::withTimeout(std::chrono::milliseconds(5));
    try {
        pool.parallelFor(
            1 << 20,
            [&](std::size_t) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            },
            0, tok);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), CancelReason::DeadlineExpired);
    }
}

TEST(ParallelForCancel, PoolIsReusableAfterCancellation)
{
    ThreadPool pool(4);
    CancelToken tok = CancelToken::create();
    tok.cancel();
    EXPECT_THROW(
        pool.parallelFor(100, [](std::size_t) {}, 0, tok),
        CancelledError);
    std::atomic<std::size_t> ran{0};
    pool.parallelFor(100, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 100u);
}

TEST(ParallelForCancel, NullTokenCostsNothingAndCompletes)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> ran{0};
    pool.parallelFor(
        1000, [&](std::size_t) { ran.fetch_add(1); }, 0,
        CancelToken());
    EXPECT_EQ(ran.load(), 1000u);
}

TEST(TaskQueue, SubmittedTasksRun)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
        ASSERT_EQ(pool.trySubmit([&] { ran.fetch_add(1); }),
                  ThreadPool::Submit::Queued);
    }
    pool.waitTasksIdle();
    EXPECT_EQ(ran.load(), 16);
}

TEST(TaskQueue, BoundedQueueRejectsWithOverloaded)
{
    ThreadPool pool(2); // One worker thread.
    pool.setTaskCapacity(2);

    // Occupy the single worker so queued tasks cannot drain.
    std::mutex m;
    std::condition_variable cv;
    bool release = false, running = false;
    ASSERT_EQ(pool.trySubmit([&] {
                  std::unique_lock<std::mutex> lk(m);
                  running = true;
                  cv.notify_all();
                  cv.wait(lk, [&] { return release; });
              }),
              ThreadPool::Submit::Queued);
    {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return running; });
    }

    // Fill the queue to capacity, then overflow it.
    EXPECT_EQ(pool.trySubmit([] {}), ThreadPool::Submit::Queued);
    EXPECT_EQ(pool.trySubmit([] {}), ThreadPool::Submit::Queued);
    EXPECT_EQ(pool.pendingTasks(), 2u);
    EXPECT_EQ(pool.trySubmit([] {}),
              ThreadPool::Submit::Overloaded);

    {
        std::lock_guard<std::mutex> lk(m);
        release = true;
    }
    cv.notify_all();
    pool.waitTasksIdle();
    EXPECT_EQ(pool.pendingTasks(), 0u);
    // Capacity frees up again after the drain.
    EXPECT_EQ(pool.trySubmit([] {}), ThreadPool::Submit::Queued);
    pool.waitTasksIdle();
}

TEST(TaskQueue, ThrowingTaskIsContainedAndWorkerSurvives)
{
    ThreadPool pool(2);
    ASSERT_EQ(pool.trySubmit(
                  [] { throw std::runtime_error("task boom"); }),
              ThreadPool::Submit::Queued);
    pool.waitTasksIdle();

    // The worker that ran the throwing task still serves new work.
    std::atomic<int> ran{0};
    ASSERT_EQ(pool.trySubmit([&] { ran.fetch_add(1); }),
              ThreadPool::Submit::Queued);
    pool.waitTasksIdle();
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskQueue, NonStandardExceptionIsContained)
{
    ThreadPool pool(2);
    ASSERT_EQ(pool.trySubmit([] { throw 42; }),
              ThreadPool::Submit::Queued);
    pool.waitTasksIdle();
    std::atomic<int> ran{0};
    ASSERT_EQ(pool.trySubmit([&] { ran.fetch_add(1); }),
              ThreadPool::Submit::Queued);
    pool.waitTasksIdle();
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskQueue, CancelPendingDropsOnlyQueuedTasks)
{
    ThreadPool pool(2);
    std::mutex m;
    std::condition_variable cv;
    bool release = false, running = false;
    ASSERT_EQ(pool.trySubmit([&] {
                  std::unique_lock<std::mutex> lk(m);
                  running = true;
                  cv.notify_all();
                  cv.wait(lk, [&] { return release; });
              }),
              ThreadPool::Submit::Queued);
    {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return running; });
    }
    std::atomic<int> ran{0};
    ASSERT_EQ(pool.trySubmit([&] { ran.fetch_add(1); }),
              ThreadPool::Submit::Queued);
    ASSERT_EQ(pool.trySubmit([&] { ran.fetch_add(1); }),
              ThreadPool::Submit::Queued);
    EXPECT_EQ(pool.cancelPendingTasks(), 2u);
    {
        std::lock_guard<std::mutex> lk(m);
        release = true;
    }
    cv.notify_all();
    pool.waitTasksIdle();
    EXPECT_EQ(ran.load(), 0); // Dropped tasks never ran.
}

TEST(TaskQueue, ParallelForInsideTaskRunsInline)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    std::atomic<bool> done{false};
    ASSERT_EQ(pool.trySubmit([&] {
                  // Nested loop must run inline on this worker, not
                  // re-enter the pool (which could deadlock).
                  pool.parallelFor(100, [&](std::size_t) {
                      total.fetch_add(1);
                  });
                  done.store(true);
              }),
              ThreadPool::Submit::Queued);
    pool.waitTasksIdle();
    EXPECT_TRUE(done.load());
    EXPECT_EQ(total.load(), 100u);
}

TEST(TaskQueue, TasksAndParallelForCoexist)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> task_ran{0};
    for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(pool.trySubmit([&] {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(2));
                      task_ran.fetch_add(1);
                  }),
                  ThreadPool::Submit::Queued);
    }
    // A parallelFor issued while tasks occupy workers must still
    // complete (the caller participates; busy workers need not).
    std::atomic<std::size_t> loop_ran{0};
    pool.parallelFor(1000,
                     [&](std::size_t) { loop_ran.fetch_add(1); });
    EXPECT_EQ(loop_ran.load(), 1000u);
    pool.waitTasksIdle();
    EXPECT_EQ(task_ran.load(), 8u);
}
