/**
 * @file
 * Unit tests for the CLI option parser.
 */

#include <gtest/gtest.h>

#include "util/cli.hh"
#include "util/logging.hh"

using ar::util::CliOptions;

namespace
{

bool
parseArgs(CliOptions &opts, std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return opts.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Cli, DefaultsApplyWhenUnset)
{
    CliOptions opts;
    opts.declare("trials", "100", "trial count");
    ASSERT_TRUE(parseArgs(opts, {}));
    EXPECT_EQ(opts.getInt("trials"), 100);
}

TEST(Cli, SpaceSeparatedValue)
{
    CliOptions opts;
    opts.declare("sigma", "0", "sigma");
    ASSERT_TRUE(parseArgs(opts, {"--sigma", "0.4"}));
    EXPECT_DOUBLE_EQ(opts.getDouble("sigma"), 0.4);
}

TEST(Cli, EqualsSeparatedValue)
{
    CliOptions opts;
    opts.declare("app", "LPHC", "app class");
    ASSERT_TRUE(parseArgs(opts, {"--app=HPLC"}));
    EXPECT_EQ(opts.getString("app"), "HPLC");
}

TEST(Cli, FlagsDefaultFalse)
{
    CliOptions opts;
    opts.declare("verbose", "", "verbosity", true);
    ASSERT_TRUE(parseArgs(opts, {}));
    EXPECT_FALSE(opts.getFlag("verbose"));
}

TEST(Cli, FlagSetWhenPassed)
{
    CliOptions opts;
    opts.declare("verbose", "", "verbosity", true);
    ASSERT_TRUE(parseArgs(opts, {"--verbose"}));
    EXPECT_TRUE(opts.getFlag("verbose"));
}

TEST(Cli, UnknownOptionIsFatal)
{
    CliOptions opts;
    EXPECT_THROW(parseArgs(opts, {"--nope"}), ar::util::FatalError);
}

TEST(Cli, MissingValueIsFatal)
{
    CliOptions opts;
    opts.declare("k", "1", "k");
    EXPECT_THROW(parseArgs(opts, {"--k"}), ar::util::FatalError);
}

TEST(Cli, NonNumericValueIsFatalOnGetDouble)
{
    CliOptions opts;
    opts.declare("k", "1", "k");
    ASSERT_TRUE(parseArgs(opts, {"--k", "abc"}));
    EXPECT_THROW(opts.getDouble("k"), ar::util::FatalError);
}

TEST(Cli, PositionalArgumentsCollected)
{
    CliOptions opts;
    opts.declare("k", "1", "k");
    ASSERT_TRUE(parseArgs(opts, {"pos1", "--k", "3", "pos2"}));
    ASSERT_EQ(opts.positional().size(), 2u);
    EXPECT_EQ(opts.positional()[0], "pos1");
    EXPECT_EQ(opts.positional()[1], "pos2");
}

TEST(Cli, HelpReturnsFalse)
{
    CliOptions opts;
    opts.declare("k", "1", "k");
    EXPECT_FALSE(parseArgs(opts, {"--help"}));
}

TEST(Cli, UsageMentionsDeclaredOptions)
{
    CliOptions opts;
    opts.declare("trials", "100", "number of MC trials");
    const auto text = opts.usage("prog");
    EXPECT_NE(text.find("--trials"), std::string::npos);
    EXPECT_NE(text.find("number of MC trials"), std::string::npos);
}
