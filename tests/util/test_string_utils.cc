/**
 * @file
 * Unit tests for string helpers.
 */

#include <gtest/gtest.h>

#include "util/string_utils.hh"

namespace u = ar::util;

TEST(Trim, StripsBothEnds)
{
    EXPECT_EQ(u::trim("  hi \t\n"), "hi");
}

TEST(Trim, EmptyAndAllSpace)
{
    EXPECT_EQ(u::trim(""), "");
    EXPECT_EQ(u::trim("   "), "");
}

TEST(Trim, InteriorSpacePreserved)
{
    EXPECT_EQ(u::trim(" a b "), "a b");
}

TEST(Split, BasicFields)
{
    const auto parts = u::split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields)
{
    const auto parts = u::split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(Split, NoDelimiterYieldsWhole)
{
    const auto parts = u::split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Join, RoundTripsWithSplit)
{
    const std::vector<std::string> v{"a", "b", "c"};
    EXPECT_EQ(u::join(v, ","), "a,b,c");
    EXPECT_EQ(u::split(u::join(v, ","), ','), v);
}

TEST(Join, EmptyVector)
{
    EXPECT_EQ(u::join({}, ","), "");
}

TEST(StartsEndsWith, Basics)
{
    EXPECT_TRUE(u::startsWith("prefix_rest", "prefix"));
    EXPECT_FALSE(u::startsWith("pre", "prefix"));
    EXPECT_TRUE(u::endsWith("file.csv", ".csv"));
    EXPECT_FALSE(u::endsWith("csv", ".csv"));
}

TEST(FormatDouble, CompactRendering)
{
    EXPECT_EQ(u::formatDouble(0.5), "0.5");
    EXPECT_EQ(u::formatDouble(1234567.0), "1.23457e+06");
}

TEST(FormatFixed, DigitControl)
{
    EXPECT_EQ(u::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(u::formatFixed(2.0, 0), "2");
}

TEST(ParseDouble, ValidInputs)
{
    double v = 0.0;
    EXPECT_TRUE(u::parseDouble("3.5", v));
    EXPECT_DOUBLE_EQ(v, 3.5);
    EXPECT_TRUE(u::parseDouble(" -1e-3 ", v));
    EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(ParseDouble, RejectsGarbage)
{
    double v = 0.0;
    EXPECT_FALSE(u::parseDouble("3.5x", v));
    EXPECT_FALSE(u::parseDouble("", v));
    EXPECT_FALSE(u::parseDouble("abc", v));
}
