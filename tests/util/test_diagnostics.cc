/** @file Tests for structured diagnostics (util/diagnostics.hh). */

#include <gtest/gtest.h>

#include "util/diagnostics.hh"

namespace
{

using namespace ar::util;

TEST(Diagnostics, RenderPlacesCaretUnderColumn)
{
    const Diagnostic d{"unknown function 'sqqt'", 3, 15,
                       "Speedup = 1 / sqqt(s)"};
    const std::string text = d.render();
    EXPECT_NE(text.find("line 3, column 15: unknown function 'sqqt'"),
              std::string::npos);
    // The caret line pads with (column - 1) spaces past the 2-space
    // snippet indent, so the '^' sits under 's' of 'sqqt'.
    EXPECT_NE(text.find("  Speedup = 1 / sqqt(s)"), std::string::npos);
    const auto caret = text.rfind('^');
    ASSERT_NE(caret, std::string::npos);
    const auto caret_line_start = text.rfind('\n', caret) + 1;
    EXPECT_EQ(caret - caret_line_start, 2u + 14u);
}

TEST(Diagnostics, RenderWithoutLocationIsJustTheMessage)
{
    const Diagnostic d{"KDE needs at least 2 samples, got 1", 0, 0, ""};
    EXPECT_EQ(d.render(), "KDE needs at least 2 samples, got 1");
}

TEST(Diagnostics, DiagnosticErrorCatchableAsFatalError)
{
    try {
        raiseDiagnostic("degenerate input");
        FAIL() << "raiseDiagnostic returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "degenerate input");
    }
}

TEST(Diagnostics, RaiseParseCarriesStructuredPayload)
{
    try {
        raiseParse("unexpected ')'", 7, 4, "a + )");
        FAIL() << "raiseParse returned";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.diagnostic().message, "unexpected ')'");
        EXPECT_EQ(e.diagnostic().line, 7u);
        EXPECT_EQ(e.diagnostic().column, 4u);
        EXPECT_EQ(e.diagnostic().source, "a + )");
        // what() is the rendered diagnostic.
        EXPECT_EQ(std::string(e.what()), e.diagnostic().render());
    }
}

TEST(Diagnostics, ParseErrorIsDiagnosticError)
{
    // ParseError -> DiagnosticError -> FatalError, so legacy catch
    // sites written against either base keep working.
    EXPECT_THROW(raiseParse("x", 1, 1, "y"), DiagnosticError);
    EXPECT_THROW(raiseParse("x", 1, 1, "y"), FatalError);
    EXPECT_THROW(raiseDiagnostic("x"), FatalError);
}

} // namespace
