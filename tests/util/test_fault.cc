/** @file Tests for the fault vocabulary (util/fault.hh). */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/fault.hh"

namespace
{

using namespace ar::util;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Fault, ClassifyNonFinite)
{
    EXPECT_EQ(classifyNonFinite(kNan), FaultKind::Nan);
    EXPECT_EQ(classifyNonFinite(kInf), FaultKind::PosInf);
    EXPECT_EQ(classifyNonFinite(-kInf), FaultKind::NegInf);
}

TEST(Fault, CountNonFinite)
{
    const std::vector<double> xs{1.0, kNan, 2.0, kInf, -kInf, 3.0};
    EXPECT_EQ(countNonFinite(xs), 3u);
    EXPECT_EQ(countNonFinite(std::vector<double>{}), 0u);
}

TEST(Fault, KindAndPolicyNamesRoundTrip)
{
    for (std::size_t k = 0; k < kFaultKindCount; ++k)
        EXPECT_STRNE(faultKindName(static_cast<FaultKind>(k)), "unknown");

    for (FaultPolicy p : {FaultPolicy::FailFast, FaultPolicy::Discard,
                          FaultPolicy::Saturate}) {
        FaultPolicy parsed;
        ASSERT_TRUE(parseFaultPolicy(faultPolicyName(p), parsed));
        EXPECT_EQ(parsed, p);
    }
    FaultPolicy out;
    EXPECT_FALSE(parseFaultPolicy("bogus", out));
    EXPECT_FALSE(parseFaultPolicy("", out));
}

TEST(Fault, ReportRecordsCountsAndExamples)
{
    FaultReport report;
    report.trials = 100;
    report.record(3, 0, FaultKind::LogDomain, "log(x)");
    report.record(3, 1, FaultKind::Nan, "");
    report.record(7, 0, FaultKind::PosInf, "1 / x");
    report.faulty_trials = 2;
    report.effective_trials = 98;

    EXPECT_EQ(report.totalFaults(), 3u);
    EXPECT_FALSE(report.clean());
    EXPECT_DOUBLE_EQ(report.faultRate(), 0.02);
    ASSERT_EQ(report.by_output.size(), 2u);
    EXPECT_EQ(report.by_output[0], 2u);
    EXPECT_EQ(report.by_output[1], 1u);
    EXPECT_EQ(report.by_kind[static_cast<std::size_t>(
                  FaultKind::LogDomain)],
              1u);
    ASSERT_EQ(report.examples.size(), 3u);
    EXPECT_EQ(report.examples[0].trial, 3u);
    EXPECT_EQ(report.examples[0].op, "log(x)");
    EXPECT_NE(report.summary().find("2/100 trials faulty"),
              std::string::npos);
    EXPECT_NE(report.summary().find("log-domain: 1"), std::string::npos);
}

TEST(Fault, ReportCapsExamples)
{
    FaultReport report;
    for (std::size_t t = 0; t < 3 * FaultReport::kMaxExamples; ++t)
        report.record(t, 0, FaultKind::Nan, "");
    EXPECT_EQ(report.examples.size(), FaultReport::kMaxExamples);
    EXPECT_EQ(report.totalFaults(), 3 * FaultReport::kMaxExamples);
}

TEST(Fault, CleanReportSummary)
{
    FaultReport report;
    report.trials = 10;
    report.effective_trials = 10;
    EXPECT_TRUE(report.clean());
    EXPECT_DOUBLE_EQ(report.faultRate(), 0.0);
    EXPECT_NE(report.summary().find("0/10 trials faulty"),
              std::string::npos);
}

TEST(Fault, FaultErrorCarriesReportAndIsFatalError)
{
    FaultReport report;
    report.trials = 5;
    report.record(2, 0, FaultKind::DivByZero, "x ^ -1");
    report.faulty_trials = 1;
    try {
        throw FaultError(report);
    } catch (const FatalError &e) {
        // Catchable as the base type; message carries the first record.
        EXPECT_NE(std::string(e.what()).find("div-by-zero"),
                  std::string::npos);
    }
    try {
        throw FaultError(report);
    } catch (const FaultError &e) {
        EXPECT_EQ(e.report().faulty_trials, 1u);
        EXPECT_EQ(e.report().examples.front().trial, 2u);
    }
}

TEST(Fault, SaturateSamplesClampsToFiniteEdges)
{
    std::vector<double> xs{2.0, kInf, -1.0, kNan, 5.0, -kInf};
    FaultReport report;
    saturateSamples(xs, report);
    EXPECT_EQ(xs, (std::vector<double>{2.0, 5.0, -1.0, -1.0, 5.0,
                                       -1.0}));
}

TEST(Fault, SaturateSamplesThrowsWithoutFiniteValues)
{
    std::vector<double> xs{kNan, kInf};
    FaultReport report;
    EXPECT_THROW(saturateSamples(xs, report), FaultError);
}

TEST(Fault, DiscardSamplesCompactsStably)
{
    std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<std::size_t> faulty{1, 4};
    discardSamples(xs, faulty);
    EXPECT_EQ(xs, (std::vector<double>{0.0, 2.0, 3.0, 5.0}));

    std::vector<double> untouched{1.0, 2.0};
    discardSamples(untouched, {});
    EXPECT_EQ(untouched.size(), 2u);
}

} // namespace
