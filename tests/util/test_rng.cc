/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/logging.hh"
#include "util/rng.hh"

using ar::util::Rng;
using ar::util::SplitMix64;

TEST(SplitMix64, KnownStreamIsDeterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(2);
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 4.0);
        ASSERT_GE(u, -2.5);
        ASSERT_LT(u, 4.0);
    }
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(4);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntZeroBoundIsFatal)
{
    Rng rng(5);
    EXPECT_THROW(rng.uniformInt(0), ar::util::PanicError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(6);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaledMoments)
{
    Rng rng(7);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(8);
    Rng child = parent.fork();
    // The child stream should not simply mirror the parent.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.nextU64() == child.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, JumpIsDeterministic)
{
    Rng a(12), b(12);
    a.jump();
    b.jump();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, JumpLeavesTheLocalStream)
{
    Rng plain(13), jumped(13);
    jumped.jump();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += plain.nextU64() == jumped.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, SubstreamIsAPureFunctionOfSeedAndIndex)
{
    Rng a = Rng::substream(99, 5);
    Rng b = Rng::substream(99, 5);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, SubstreamsWithDifferentIndicesDiverge)
{
    // Counter-derived forks must not collide across nearby indices
    // or with the master stream itself.
    Rng master(99);
    std::set<std::uint64_t> firsts;
    firsts.insert(master.nextU64());
    for (std::uint64_t idx = 0; idx < 64; ++idx) {
        Rng sub = Rng::substream(99, idx);
        firsts.insert(sub.nextU64());
    }
    EXPECT_EQ(firsts.size(), 65u);
}

TEST(Rng, SubstreamsFromDifferentSeedsDiverge)
{
    Rng a = Rng::substream(1, 0);
    Rng b = Rng::substream(2, 0);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, SubstreamUniformsLookUniform)
{
    Rng sub = Rng::substream(7, 3);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += sub.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(9);
    const auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles)
{
    Rng rng(10);
    const auto perm = rng.permutation(100);
    std::vector<std::size_t> sorted(perm);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_NE(perm, sorted);
}

TEST(Rng, ShuffleKeepsElements)
{
    Rng rng(11);
    std::vector<int> v{1, 2, 3, 4, 5};
    auto copy = v;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, v);
}
