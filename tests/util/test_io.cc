/**
 * @file
 * Unit tests for numeric file IO.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "util/io.hh"
#include "util/logging.hh"

namespace u = ar::util;

TEST(ParseNumbers, WhitespaceSeparated)
{
    const auto xs = u::parseNumbers("1.5 2.5\n3.5");
    ASSERT_EQ(xs.size(), 3u);
    EXPECT_DOUBLE_EQ(xs[0], 1.5);
    EXPECT_DOUBLE_EQ(xs[2], 3.5);
}

TEST(ParseNumbers, CommaSeparated)
{
    const auto xs = u::parseNumbers("1,2,3\n4,5");
    ASSERT_EQ(xs.size(), 5u);
    EXPECT_DOUBLE_EQ(xs[4], 5.0);
}

TEST(ParseNumbers, CommentsAndBlankLinesSkipped)
{
    const auto xs = u::parseNumbers("# header\n\n1.0\n# more\n2.0\n");
    ASSERT_EQ(xs.size(), 2u);
}

TEST(ParseNumbers, ScientificNotation)
{
    const auto xs = u::parseNumbers("1e-3, -2.5E2");
    ASSERT_EQ(xs.size(), 2u);
    EXPECT_DOUBLE_EQ(xs[0], 1e-3);
    EXPECT_DOUBLE_EQ(xs[1], -250.0);
}

TEST(ParseNumbers, GarbageIsFatal)
{
    EXPECT_THROW(u::parseNumbers("1.0 banana"), u::FatalError);
}

TEST(ParseNumbers, EmptyInputGivesEmptyVector)
{
    EXPECT_TRUE(u::parseNumbers("").empty());
    EXPECT_TRUE(u::parseNumbers("# only a comment\n").empty());
}

TEST(ReadWriteNumbers, RoundTrip)
{
    const std::string path = "/tmp/ar_test_io_numbers.txt";
    const std::vector<double> xs{3.25, -1.0, 1e-6};
    u::writeNumbers(path, xs);
    const auto back = u::readNumbers(path);
    ASSERT_EQ(back.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_DOUBLE_EQ(back[i], xs[i]);
    std::remove(path.c_str());
}

TEST(ReadNumbers, MissingFileIsFatal)
{
    EXPECT_THROW(u::readNumbers("/nonexistent/nope.txt"),
                 u::FatalError);
}

TEST(WriteNumbers, UnwritablePathIsFatal)
{
    EXPECT_THROW(u::writeNumbers("/nonexistent-dir/x.txt", {1.0}),
                 u::FatalError);
}
