/**
 * @file
 * Unit tests for the deterministic thread pool and parallelFor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

using ar::util::ThreadPool;

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware)
{
    EXPECT_EQ(ThreadPool::resolveThreads(0),
              ThreadPool::hardwareThreads());
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    std::vector<int> hits(10000, 0);
    ar::util::parallelFor(4, hits.size(),
                          [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, DisjointWritesMatchSerialRun)
{
    // Each index owns its output slot, so any thread count must
    // produce the identical vector.
    auto run = [](std::size_t threads) {
        std::vector<double> out(5000);
        ar::util::parallelFor(threads, out.size(), [&](std::size_t i) {
            out[i] = static_cast<double>(i) * 1.5 + 0.25;
        });
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(4), serial);
    EXPECT_EQ(run(0), serial);
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    std::atomic<int> calls{0};
    ar::util::parallelFor(4, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleTaskRunsInline)
{
    std::atomic<int> calls{0};
    ar::util::parallelFor(8, 1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateToCaller)
{
    EXPECT_THROW(ar::util::parallelFor(4, 100,
                                       [&](std::size_t i) {
                                           if (i == 37)
                                               throw std::runtime_error(
                                                   "boom");
                                       }),
                 std::runtime_error);
}

TEST(ThreadPool, PoolIsReusableAfterException)
{
    ThreadPool &pool = ThreadPool::global();
    try {
        pool.parallelFor(
            50, [](std::size_t) { throw std::runtime_error("x"); }, 4);
    } catch (const std::runtime_error &) {
    }
    std::atomic<long> sum{0};
    pool.parallelFor(
        100, [&](std::size_t i) { sum += static_cast<long>(i); }, 4);
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    // A body that itself calls parallelFor must not deadlock; the
    // inner loop degrades to the serial path.
    std::vector<long> out(64, 0);
    ar::util::parallelFor(4, out.size(), [&](std::size_t i) {
        long acc = 0;
        ar::util::parallelFor(4, 10, [&](std::size_t j) {
            acc += static_cast<long>(j);
        });
        out[i] = acc;
    });
    for (long v : out)
        ASSERT_EQ(v, 45);
}

TEST(ThreadPool, ConcurrentSumMatchesClosedForm)
{
    std::atomic<long> sum{0};
    const std::size_t n = 20000;
    ar::util::parallelFor(0, n, [&](std::size_t i) {
        sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(),
              static_cast<long>(n) * (static_cast<long>(n) - 1) / 2);
}
