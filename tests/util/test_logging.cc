/**
 * @file
 * Unit tests for error reporting.
 */

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace u = ar::util;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(u::fatal("bad ", 42), u::FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(u::panic("bug"), u::PanicError);
}

TEST(Logging, FatalMessageConcatenatesFragments)
{
    try {
        u::fatal("value=", 3, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const u::FatalError &e) {
        EXPECT_STREQ(e.what(), "value=3 name=x");
    }
}

TEST(Logging, FatalIsNotCatchableAsPanic)
{
    bool caught_logic = false;
    try {
        u::fatal("boom");
    } catch (const std::logic_error &) {
        caught_logic = true;
    } catch (const std::runtime_error &) {
    }
    EXPECT_FALSE(caught_logic);
}

TEST(Logging, QuietFlagRoundTrips)
{
    u::setQuiet(true);
    EXPECT_TRUE(u::isQuiet());
    u::setQuiet(false);
    EXPECT_FALSE(u::isQuiet());
}

/**
 * Regression test: warn()/inform() used to emit prefix, message, and
 * newline as separate stream insertions with no lock, so warnings
 * from parallelFor workers could interleave mid-line.  Hammer stderr
 * from a pool (TSan exercises the emission path too) and check every
 * captured line is intact.
 */
TEST(Logging, ConcurrentWarningsDoNotInterleave)
{
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());

    constexpr std::size_t kMessages = 400;
    u::ThreadPool pool(4);
    pool.parallelFor(kMessages, [&](std::size_t i) {
        if (i % 2 == 0)
            u::warn("message-", i, "-end");
        else
            u::inform("message-", i, "-end");
    });

    std::cerr.rdbuf(old);

    std::istringstream lines(captured.str());
    std::string line;
    std::size_t n_lines = 0;
    while (std::getline(lines, line)) {
        ++n_lines;
        const bool warn_line = line.rfind("warn: message-", 0) == 0;
        const bool info_line = line.rfind("info: message-", 0) == 0;
        EXPECT_TRUE(warn_line || info_line)
            << "interleaved line: '" << line << "'";
        EXPECT_EQ(line.find("-end"), line.size() - 4)
            << "truncated line: '" << line << "'";
        // Exactly one message per line: a second prefix in the same
        // line means two emissions interleaved.
        EXPECT_EQ(line.find("message-", line.find("message-") + 1),
                  std::string::npos)
            << "merged line: '" << line << "'";
    }
    EXPECT_EQ(n_lines, kMessages);
}
