/**
 * @file
 * Unit tests for error reporting.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace u = ar::util;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(u::fatal("bad ", 42), u::FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(u::panic("bug"), u::PanicError);
}

TEST(Logging, FatalMessageConcatenatesFragments)
{
    try {
        u::fatal("value=", 3, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const u::FatalError &e) {
        EXPECT_STREQ(e.what(), "value=3 name=x");
    }
}

TEST(Logging, FatalIsNotCatchableAsPanic)
{
    bool caught_logic = false;
    try {
        u::fatal("boom");
    } catch (const std::logic_error &) {
        caught_logic = true;
    } catch (const std::runtime_error &) {
    }
    EXPECT_FALSE(caught_logic);
}

TEST(Logging, QuietFlagRoundTrips)
{
    u::setQuiet(true);
    EXPECT_TRUE(u::isQuiet());
    u::setQuiet(false);
    EXPECT_FALSE(u::isQuiet());
}
