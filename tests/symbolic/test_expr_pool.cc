/**
 * @file
 * The hash-consing arena: interned identity, memoized per-node
 * metadata, telemetry, purge semantics, thread safety under the
 * worker pool, and the worklist passes' deep-chain guarantees.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <vector>

#include "obs/telemetry.hh"
#include "symbolic/compile.hh"
#include "symbolic/expr_pool.hh"
#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

using namespace ar::symbolic;

namespace
{

/** A moderately shaped expression with every operator kind. */
ExprPtr
sampleExpr()
{
    const auto x = Expr::symbol("x");
    const auto y = Expr::symbol("y");
    return Expr::add(
        {Expr::mul(x, y), Expr::pow(x, Expr::constant(2.0)),
         Expr::max({x, y, Expr::constant(1.5)}),
         Expr::func("gtz", Expr::sub(x, y))});
}

} // namespace

TEST(ExprPool, StructurallyEqualConstructionsArePointerIdentical)
{
    const auto a = sampleExpr();
    const auto b = sampleExpr();
    ASSERT_EQ(a.get(), b.get());
    EXPECT_TRUE(Expr::equal(a, b));

    // Atoms too, including constants with identical bit patterns.
    EXPECT_EQ(Expr::symbol("q").get(), Expr::symbol("q").get());
    EXPECT_EQ(Expr::constant(0.25).get(), Expr::constant(0.25).get());
    EXPECT_NE(Expr::constant(0.25).get(), Expr::constant(0.5).get());
}

TEST(ExprPool, EqualIsPointerIdentityOnInternedNodes)
{
    // Structural equality implies pointer identity: any two equal
    // expressions built through the factories are the same node.
    const auto e1 = parseExpr("1 / ((1 - f) + f / n)");
    const auto e2 = parseExpr("1 / ((1 - f) + f / n)");
    ASSERT_TRUE(Expr::equal(e1, e2));
    EXPECT_EQ(e1.get(), e2.get());
    EXPECT_EQ(Expr::compare(e1, e2), 0);
}

TEST(ExprPool, NanConstantsInternToOneNode)
{
    const double nan1 = std::nan("1");
    const double nan2 = std::nan("0x42");
    const auto a = Expr::constant(nan1);
    const auto b = Expr::constant(nan2);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_TRUE(std::isnan(a->value()));
}

TEST(ExprPool, SignedZeroConstantsStayDistinctButCompareEqual)
{
    const auto pos = Expr::constant(0.0);
    const auto neg = Expr::constant(-0.0);
    EXPECT_NE(pos.get(), neg.get()); // bit patterns differ
    EXPECT_EQ(Expr::compare(pos, neg), 0);
    EXPECT_TRUE(Expr::equal(pos, neg));
}

TEST(ExprPool, FreeSymbolsIsMemoizedPerNode)
{
    const auto e = sampleExpr();
    const auto *first = &e->freeSymbols();
    const auto *second = &e->freeSymbols();
    // Repeat queries return the same set object -- no per-call
    // allocation or recomputation.
    EXPECT_EQ(first, second);
    EXPECT_EQ(first->size(), 2u);
    EXPECT_TRUE(first->count("x"));
    EXPECT_TRUE(first->count("y"));
}

TEST(ExprPool, FreeSymbolSetsAreSharedAcrossNodes)
{
    // Pow(x, 2) adds nothing to x's free set, so the parent shares
    // the child's set object outright.
    const auto x = Expr::symbol("x");
    const auto p = Expr::pow(x, Expr::constant(2.0));
    EXPECT_EQ(&p->freeSymbols(), &x->freeSymbols());
}

TEST(ExprPool, MetadataIsConsistent)
{
    const auto x = Expr::symbol("x");
    const auto e = Expr::add(x, Expr::constant(1.0));
    EXPECT_GT(e->id(), x->id()); // children intern first
    EXPECT_EQ(x->depth(), 1u);
    EXPECT_EQ(e->depth(), 2u);
    EXPECT_TRUE(e->containsSymbol("x"));
    EXPECT_FALSE(e->containsSymbol("z"));
}

TEST(ExprPool, InternTelemetryCountsHitsAndMisses)
{
    auto &reg = ar::obs::MetricsRegistry::global();
    ar::obs::setMetricsEnabled(true);
    reg.reset();

    // A fresh, never-before-interned shape is a miss...
    const auto a = Expr::add(Expr::symbol("pool_t1"),
                             Expr::symbol("pool_t2"));
    // ...and rebuilding the identical shape is a hit.
    const auto b = Expr::add(Expr::symbol("pool_t1"),
                             Expr::symbol("pool_t2"));
    ASSERT_EQ(a.get(), b.get());

    const auto snap = reg.scrape();
    ar::obs::setMetricsEnabled(false);

    ASSERT_TRUE(snap.counters.count("symbolic.intern.misses"));
    ASSERT_TRUE(snap.counters.count("symbolic.intern.hits"));
    EXPECT_GE(snap.counters.at("symbolic.intern.misses"), 1u);
    EXPECT_GE(snap.counters.at("symbolic.intern.hits"), 3u);

    ASSERT_TRUE(snap.gauges.count("symbolic.pool.nodes"));
    EXPECT_EQ(snap.gauges.at("symbolic.pool.nodes"),
              static_cast<double>(ExprPool::global().size()));
}

TEST(ExprPool, PurgeEvictsOnlyUnreferencedNodes)
{
    // A distinctive subtree no test shares, so its eviction is ours
    // to observe.
    auto keep = Expr::mul(Expr::symbol("purge_keep"),
                          Expr::constant(7.25));
    std::uint64_t dead_id = 0;
    {
        const auto dead = Expr::add(keep, Expr::symbol("purge_drop"));
        dead_id = dead->id();
    } // `dead` is now pool-only

    const Expr *keep_raw = keep.get();
    ExprPool::global().purge();

    // The still-referenced node survived purge...
    const auto keep2 = Expr::mul(Expr::symbol("purge_keep"),
                                 Expr::constant(7.25));
    EXPECT_EQ(keep2.get(), keep_raw);

    // ...and the dead parent was evicted: rebuilding it mints a
    // fresh node instead of handing back the old id.
    const auto rebuilt =
        Expr::add(keep, Expr::symbol("purge_drop"));
    EXPECT_GT(rebuilt->id(), dead_id);
}

TEST(ExprPool, ConcurrentInterningYieldsOneIdentity)
{
    // Many workers race to intern the same shapes; every thread must
    // come back with the same canonical pointers.
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 64;
    std::vector<const Expr *> roots(kThreads, nullptr);
    std::atomic<bool> mismatch{false};

    ar::util::parallelFor(kThreads, kThreads, [&](std::size_t t) {
        const Expr *local = nullptr;
        for (std::size_t i = 0; i < kPerThread; ++i) {
            // Extra varying traffic so the shards see concurrent
            // inserts beyond the fixed shape checked below.
            const auto churn = Expr::add(
                Expr::symbol("race_churn"),
                Expr::constant(static_cast<double>(i % 4)));
            if (!churn->containsSymbol("race_churn"))
                mismatch.store(true);
            const auto e = Expr::add(
                {Expr::mul(Expr::symbol("race_a"),
                           Expr::symbol("race_b")),
                 Expr::pow(Expr::symbol("race_a"),
                           Expr::constant(2.0)),
                 Expr::constant(3.0)});
            const auto s = simplify(e);
            if (!local)
                local = e.get();
            else if (local != e.get())
                mismatch.store(true);
            if (!Expr::equal(s, simplify(e)))
                mismatch.store(true);
        }
        roots[t] = local;
    });

    EXPECT_FALSE(mismatch.load());
    for (std::size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(roots[t], roots[0]);
}

TEST(ExprPool, ParsePrintParseYieldsInternedIdentity)
{
    // Print -> parse is a fixpoint on parsed expressions: with the
    // pool, "the same expression" is one pointer, so the property is
    // exact identity, not approximate value agreement.
    const char *exprs[] = {
        "x + y * z",
        "(a + b)^2 / c",
        "-x * 3 + 4",
        "max(a, b * 2, c^0.5)",
        "min(a + 1, b)",
        "gtz(n) * p + exp(log(q))",
        "f / (1 - f + c * n)",
        "1/(x + 1/(y + 1))",
    };
    for (const char *src : exprs) {
        const auto p1 = parseExpr(src);
        const auto p2 = parseExpr(toString(p1));
        ASSERT_EQ(p1.get(), p2.get()) << src;
    }
}

TEST(ExprPool, RandomRoundTripIsInternedIdentity)
{
    // Randomized version over every node kind (gtz/log/exp included).
    ar::util::Rng rng(0x9137);
    static const char *names[] = {"a", "b", "x", "y"};
    static const char *fns[] = {"log", "exp", "gtz"};
    const std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
        if (depth <= 0 || rng.uniform() < 0.3) {
            if (rng.uniform() < 0.5)
                return Expr::symbol(names[rng.uniformInt(4)]);
            return Expr::constant(
                std::round(rng.uniform(-4.0, 4.0) * 4.0) / 4.0);
        }
        switch (rng.uniformInt(7)) {
          case 0:
            return Expr::add(gen(depth - 1), gen(depth - 1));
          case 1:
            return Expr::sub(gen(depth - 1), gen(depth - 1));
          case 2:
            return Expr::mul(gen(depth - 1), gen(depth - 1));
          case 3:
            return Expr::div(gen(depth - 1), gen(depth - 1));
          case 4:
            return Expr::pow(gen(depth - 1),
                             Expr::constant(
                                 double(rng.uniformInt(5)) - 2.0));
          case 5:
            return rng.uniform() < 0.5
                       ? Expr::max({gen(depth - 1), gen(depth - 1)})
                       : Expr::min({gen(depth - 1), gen(depth - 1)});
          default:
            return Expr::func(fns[rng.uniformInt(3)], gen(depth - 1));
        }
    };
    for (int i = 0; i < 300; ++i) {
        // One print->parse first: the generator can produce shapes no
        // parse yields (e.g. a raw negative constant), and the printed
        // form is the canonical grammar. From there the round trip
        // must be exact interned identity.
        const auto p1 = parseExpr(toString(gen(4)));
        const auto p2 = parseExpr(toString(p1));
        ASSERT_EQ(p1.get(), p2.get()) << toString(p1);
    }
}

TEST(ExprPool, DeepChainsDoNotOverflowTheStack)
{
    // Regression for the worklist rewrites: a 10k-node comb (chain of
    // alternating Add/Mul with a fresh leaf at each level) used to
    // recurse once per level in simplify/compile/print/substitute.
    constexpr int kDepth = 10000;
    const auto x = Expr::symbol("deep_x");
    ExprPtr e = x;
    for (int i = 0; i < kDepth; ++i) {
        // Alternating Add/Mul so the factories' same-kind flattening
        // never collapses a level; sub-unity factors and small
        // addends keep the value finite across 10k ops.
        e = (i % 2 == 0)
                ? Expr::add(e, Expr::constant(
                                   1.0 +
                                   static_cast<double>(i % 7) / 8.0))
                : Expr::mul(e, Expr::constant(
                                   0.5 +
                                   static_cast<double>(i % 4) / 16.0));
    }
    ASSERT_GE(e->depth(), static_cast<std::size_t>(kDepth));

    // freeSymbols: computed incrementally at intern, shared all the
    // way up (the chain adds no symbol after the leaf).
    EXPECT_EQ(&e->freeSymbols(), &x->freeSymbols());

    // countSymbol / containsSymbol / compare walk iteratively.
    EXPECT_TRUE(e->containsSymbol("deep_x"));
    EXPECT_EQ(e->countSymbol("deep_x"), 1u);
    EXPECT_EQ(Expr::compare(e, e), 0);

    // simplify and substitute walk iteratively.
    const auto s = simplify(e);
    EXPECT_TRUE(s->containsSymbol("deep_x"));
    const auto bound = substitute(e, {{"deep_x", 2.0}});
    ASSERT_TRUE(bound->isConstant());

    // The printer memoizes a rendered string per node, so on a chain
    // the intermediate strings grow with depth (quadratic bytes
    // overall); exercise its worklist on a shorter chain instead of
    // the full 10k comb.
    ExprPtr shallow = x;
    for (int i = 0; i < 2000; ++i)
        shallow = (i % 2 == 0)
                      ? Expr::add(shallow, Expr::constant(1.0))
                      : Expr::mul(shallow, Expr::constant(0.5));
    EXPECT_FALSE(toString(shallow).empty());

    // compile: tape emission and evaluation.
    CompiledExpr fn(e);
    const double direct[] = {2.0};
    EXPECT_EQ(fn.eval(direct), bound->value());
}

TEST(ExprPool, DeepSharedDagSimplifiesOnce)
{
    // A DAG with 2^200 leaves when viewed as a tree: each level
    // references the previous one twice through distinct Mul wrappers
    // (Mul of an Add does not flatten).  Per-node memoization in
    // simplify/substitute is what makes this finish at all.
    ExprPtr e = Expr::add(Expr::symbol("dag_a"), Expr::symbol("dag_b"));
    for (int i = 0; i < 200; ++i) {
        e = Expr::add(Expr::mul(e, Expr::constant(0.5)),
                      Expr::mul(e, Expr::constant(0.25)));
    }
    const auto s = simplify(e);
    EXPECT_TRUE(s->containsSymbol("dag_a"));
    const auto r = substitute(e, {{"dag_a", 1.0}, {"dag_b", 0.0}});
    ASSERT_TRUE(r->isConstant());
    EXPECT_GT(r->value(), 0.0);
    EXPECT_TRUE(std::isfinite(r->value()));
}
