/**
 * @file
 * Unit tests for EquationSystem partial symbolic solving.
 */

#include <gtest/gtest.h>

#include <map>

#include "symbolic/parser.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "symbolic/system.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

TEST(System, ResolvesChainOfDefinitions)
{
    EquationSystem sys;
    sys.addEquation("a = 2");
    sys.addEquation("b = a + 3");
    sys.addEquation("c = b * b");
    EXPECT_TRUE(sys.resolve("c")->isConstant(25.0));
}

TEST(System, LeavesInputsFree)
{
    EquationSystem sys;
    sys.addEquation("y = 2 * x + 1");
    const auto r = sys.resolve("y");
    EXPECT_EQ(r->freeSymbols().count("x"), 1u);
}

TEST(System, UncertainVariablesStayUnresolved)
{
    // The Figure-4 example: z is uncertain so it remains symbolic
    // even though a definition exists; y is resolved through.
    EquationSystem sys;
    sys.addEquation("z = x + 1");
    sys.addEquation("y = 2 * x");
    sys.addEquation("out = z * y");
    sys.markUncertain("z");
    const auto r = sys.resolve("out");
    const auto syms = r->freeSymbols();
    EXPECT_TRUE(syms.count("z"));
    EXPECT_TRUE(syms.count("x"));
    EXPECT_FALSE(syms.count("y"));
}

TEST(System, UncertainDefinitionStillAccessible)
{
    EquationSystem sys;
    sys.addEquation("z = x + 1");
    sys.markUncertain("z");
    const auto def = sys.definitionOf("z");
    EXPECT_EQ(def->countSymbol("x"), 1u);
}

TEST(System, NonSymbolLhsIsSolved)
{
    // 2*x + 1 = y defines x (y is defined elsewhere first).
    EquationSystem sys;
    sys.addEquation("y = 9");
    sys.addEquation("2 * x + 1 = y");
    EXPECT_TRUE(sys.resolve("x")->isConstant(4.0));
}

TEST(System, DuplicateDefinitionIsFatal)
{
    EquationSystem sys;
    sys.addEquation("a = 1");
    EXPECT_THROW(sys.addEquation("a = 2"), ar::util::FatalError);
}

TEST(System, CyclicDefinitionIsFatal)
{
    EquationSystem sys;
    sys.addEquation("a = b + 1");
    sys.addEquation("b = a + 1");
    EXPECT_THROW(sys.resolve("a"), ar::util::FatalError);
}

TEST(System, UnknownVariableIsFatal)
{
    EquationSystem sys;
    sys.addEquation("a = 1");
    EXPECT_THROW(sys.resolve("nope"), ar::util::FatalError);
    EXPECT_THROW(sys.definitionOf("nope"), ar::util::FatalError);
}

TEST(System, DefinesAndDefinedNames)
{
    EquationSystem sys;
    sys.addEquation("a = 1");
    sys.addEquation("b = a");
    EXPECT_TRUE(sys.defines("a"));
    EXPECT_FALSE(sys.defines("x"));
    EXPECT_EQ(sys.definedNames().size(), 2u);
}

TEST(System, ResolvedInputsListsLeaves)
{
    EquationSystem sys;
    sys.addEquation("mid = p * q");
    sys.addEquation("out = mid + r");
    sys.markUncertain("p");
    const auto inputs = sys.resolvedInputs("out");
    EXPECT_TRUE(inputs.count("p"));
    EXPECT_TRUE(inputs.count("q"));
    EXPECT_TRUE(inputs.count("r"));
    EXPECT_FALSE(inputs.count("mid"));
}

TEST(System, DiamondDependencyResolvesOnce)
{
    EquationSystem sys;
    sys.addEquation("base = x + 1");
    sys.addEquation("l = base * 2");
    sys.addEquation("r = base * 3");
    sys.addEquation("top = l + r");
    const auto resolved = sys.resolve("top");
    // top = 5 * (x + 1): check numerically.
    const double v = evalConstant(
        substitute(resolved, std::map<std::string, double>{{"x", 2.0}}));
    EXPECT_DOUBLE_EQ(v, 15.0);
}

TEST(System, MemoInvalidatedByNewEquations)
{
    EquationSystem sys;
    sys.addEquation("a = x");
    const auto r1 = sys.resolve("a");
    EXPECT_TRUE(r1->isSymbol());
    sys.addEquation("x = 7");
    EXPECT_TRUE(sys.resolve("a")->isConstant(7.0));
}

TEST(System, ReplaceEquationInvalidatesOnlyTheCone)
{
    EquationSystem sys;
    sys.addEquation("a = 2");
    sys.addEquation("b = a + 3");
    sys.addEquation("c = b * b");
    sys.addEquation("d = 7");
    EXPECT_TRUE(sys.resolve("c")->isConstant(25.0));
    EXPECT_TRUE(sys.resolve("d")->isConstant(7.0));

    // The edit reaches a, b, c; d's memo entry must survive.
    const std::size_t invalidated = sys.replaceEquation("a = 5");
    EXPECT_GE(invalidated, 1u);
    EXPECT_LE(invalidated, 3u);
    EXPECT_TRUE(sys.resolve("c")->isConstant(64.0));
    EXPECT_TRUE(sys.resolve("d")->isConstant(7.0));
}

TEST(System, ReplaceEquationWithNewNameClearsMemo)
{
    EquationSystem sys;
    sys.addEquation("a = x + 1");
    sys.addEquation("b = a * 2");
    (void)sys.resolve("b");
    // A name never defined before may be referenced by any stale
    // memo entry (as a free leaf), so the whole memo is dropped.
    const std::size_t invalidated = sys.replaceEquation("x = 4");
    EXPECT_GE(invalidated, 1u);
    EXPECT_TRUE(sys.resolve("b")->isConstant(10.0));
}

TEST(System, ReplaceEquationNonSymbolLhsThrows)
{
    EquationSystem sys;
    sys.addEquation("a = 2");
    EXPECT_THROW(sys.replaceEquation("a + b = 3"),
                 ar::util::ParseError);
}

TEST(System, ReplaceEquationKeepsUncertainMarks)
{
    EquationSystem sys;
    sys.addEquation("z = x + 1");
    sys.addEquation("out = z * 2");
    sys.markUncertain("z");
    EXPECT_TRUE(sys.resolve("out")->freeSymbols().count("z"));
    sys.replaceEquation("z = x + 9");
    // z stays an uncertain leaf under its new definition.
    EXPECT_TRUE(sys.resolve("out")->freeSymbols().count("z"));
}

TEST(System, ReplaceEquationResolvesLikeFreshSystem)
{
    EquationSystem sys;
    sys.addEquation("base = x + 1");
    sys.addEquation("l = base * 2");
    sys.addEquation("r = base * 3");
    sys.addEquation("top = l + r");
    (void)sys.resolve("top");
    sys.replaceEquation("base = x * x");

    EquationSystem fresh;
    fresh.addEquation("base = x * x");
    fresh.addEquation("l = base * 2");
    fresh.addEquation("r = base * 3");
    fresh.addEquation("top = l + r");
    // Hash-consing makes structural equality pointer equality.
    EXPECT_EQ(sys.resolve("top").get(), fresh.resolve("top").get());
}
