/**
 * @file
 * Unit tests for EquationSystem partial symbolic solving.
 */

#include <gtest/gtest.h>

#include <map>

#include "symbolic/parser.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "symbolic/system.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

TEST(System, ResolvesChainOfDefinitions)
{
    EquationSystem sys;
    sys.addEquation("a = 2");
    sys.addEquation("b = a + 3");
    sys.addEquation("c = b * b");
    EXPECT_TRUE(sys.resolve("c")->isConstant(25.0));
}

TEST(System, LeavesInputsFree)
{
    EquationSystem sys;
    sys.addEquation("y = 2 * x + 1");
    const auto r = sys.resolve("y");
    EXPECT_EQ(r->freeSymbols().count("x"), 1u);
}

TEST(System, UncertainVariablesStayUnresolved)
{
    // The Figure-4 example: z is uncertain so it remains symbolic
    // even though a definition exists; y is resolved through.
    EquationSystem sys;
    sys.addEquation("z = x + 1");
    sys.addEquation("y = 2 * x");
    sys.addEquation("out = z * y");
    sys.markUncertain("z");
    const auto r = sys.resolve("out");
    const auto syms = r->freeSymbols();
    EXPECT_TRUE(syms.count("z"));
    EXPECT_TRUE(syms.count("x"));
    EXPECT_FALSE(syms.count("y"));
}

TEST(System, UncertainDefinitionStillAccessible)
{
    EquationSystem sys;
    sys.addEquation("z = x + 1");
    sys.markUncertain("z");
    const auto def = sys.definitionOf("z");
    EXPECT_EQ(def->countSymbol("x"), 1u);
}

TEST(System, NonSymbolLhsIsSolved)
{
    // 2*x + 1 = y defines x (y is defined elsewhere first).
    EquationSystem sys;
    sys.addEquation("y = 9");
    sys.addEquation("2 * x + 1 = y");
    EXPECT_TRUE(sys.resolve("x")->isConstant(4.0));
}

TEST(System, DuplicateDefinitionIsFatal)
{
    EquationSystem sys;
    sys.addEquation("a = 1");
    EXPECT_THROW(sys.addEquation("a = 2"), ar::util::FatalError);
}

TEST(System, CyclicDefinitionIsFatal)
{
    EquationSystem sys;
    sys.addEquation("a = b + 1");
    sys.addEquation("b = a + 1");
    EXPECT_THROW(sys.resolve("a"), ar::util::FatalError);
}

TEST(System, UnknownVariableIsFatal)
{
    EquationSystem sys;
    sys.addEquation("a = 1");
    EXPECT_THROW(sys.resolve("nope"), ar::util::FatalError);
    EXPECT_THROW(sys.definitionOf("nope"), ar::util::FatalError);
}

TEST(System, DefinesAndDefinedNames)
{
    EquationSystem sys;
    sys.addEquation("a = 1");
    sys.addEquation("b = a");
    EXPECT_TRUE(sys.defines("a"));
    EXPECT_FALSE(sys.defines("x"));
    EXPECT_EQ(sys.definedNames().size(), 2u);
}

TEST(System, ResolvedInputsListsLeaves)
{
    EquationSystem sys;
    sys.addEquation("mid = p * q");
    sys.addEquation("out = mid + r");
    sys.markUncertain("p");
    const auto inputs = sys.resolvedInputs("out");
    EXPECT_TRUE(inputs.count("p"));
    EXPECT_TRUE(inputs.count("q"));
    EXPECT_TRUE(inputs.count("r"));
    EXPECT_FALSE(inputs.count("mid"));
}

TEST(System, DiamondDependencyResolvesOnce)
{
    EquationSystem sys;
    sys.addEquation("base = x + 1");
    sys.addEquation("l = base * 2");
    sys.addEquation("r = base * 3");
    sys.addEquation("top = l + r");
    const auto resolved = sys.resolve("top");
    // top = 5 * (x + 1): check numerically.
    const double v = evalConstant(
        substitute(resolved, std::map<std::string, double>{{"x", 2.0}}));
    EXPECT_DOUBLE_EQ(v, 15.0);
}

TEST(System, MemoInvalidatedByNewEquations)
{
    EquationSystem sys;
    sys.addEquation("a = x");
    const auto r1 = sys.resolve("a");
    EXPECT_TRUE(r1->isSymbol());
    sys.addEquation("x = 7");
    EXPECT_TRUE(sys.resolve("a")->isConstant(7.0));
}
