/**
 * @file
 * Unit tests for algebraic simplification.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

namespace
{

ExprPtr
simp(const char *text)
{
    return simplify(parseExpr(text));
}

} // namespace

TEST(Simplify, ConstantFolding)
{
    EXPECT_TRUE(simp("2 + 3")->isConstant(5.0));
    EXPECT_TRUE(simp("2 * 3 + 4 * 5")->isConstant(26.0));
    EXPECT_TRUE(simp("2 ^ 10")->isConstant(1024.0));
}

TEST(Simplify, AdditiveIdentity)
{
    const auto e = simp("x + 0");
    EXPECT_TRUE(e->isSymbol());
    EXPECT_EQ(e->name(), "x");
}

TEST(Simplify, MultiplicativeIdentity)
{
    const auto e = simp("1 * x");
    EXPECT_TRUE(e->isSymbol());
}

TEST(Simplify, MultiplicationByZero)
{
    EXPECT_TRUE(simp("0 * x * y")->isConstant(0.0));
}

TEST(Simplify, PowIdentities)
{
    EXPECT_TRUE(simp("x ^ 0")->isConstant(1.0));
    EXPECT_TRUE(simp("x ^ 1")->isSymbol());
    EXPECT_TRUE(simp("1 ^ x")->isConstant(1.0));
    EXPECT_TRUE(simp("0 ^ 2")->isConstant(0.0));
}

TEST(Simplify, MergesRepeatedFactors)
{
    const auto e = simp("x * x");
    EXPECT_EQ(e->kind(), ExprKind::Pow);
    EXPECT_TRUE(e->operands()[1]->isConstant(2.0));
}

TEST(Simplify, MergesPowersOfSameBase)
{
    const auto e = simp("x^2 * x^3");
    EXPECT_EQ(e->kind(), ExprKind::Pow);
    EXPECT_TRUE(e->operands()[1]->isConstant(5.0));
}

TEST(Simplify, CancelsInverseFactors)
{
    EXPECT_TRUE(simp("x / x")->isConstant(1.0));
}

TEST(Simplify, NestedPowCollapses)
{
    const auto e = simp("(x^2)^3");
    EXPECT_EQ(e->kind(), ExprKind::Pow);
    EXPECT_TRUE(e->operands()[1]->isConstant(6.0));
}

TEST(Simplify, MaxMinConstantFolding)
{
    EXPECT_TRUE(simp("max(1, 2, 3)")->isConstant(3.0));
    EXPECT_TRUE(simp("min(1, 2, 3)")->isConstant(1.0));
}

TEST(Simplify, MaxPartialFold)
{
    const auto e = simp("max(x, 2, 5)");
    EXPECT_EQ(e->kind(), ExprKind::Max);
    EXPECT_EQ(e->operands().size(), 2u);
}

TEST(Simplify, FunctionFolding)
{
    EXPECT_NEAR(simp("log(exp(3))")->value(), 3.0, 1e-12);
    EXPECT_TRUE(simp("gtz(5)")->isConstant(1.0));
    EXPECT_TRUE(simp("gtz(-1)")->isConstant(0.0));
    EXPECT_TRUE(simp("sqrt(49)")->isConstant(7.0));
}

TEST(Simplify, SubtractionOfSelfIsZero)
{
    EXPECT_TRUE(simp("x - x")->isConstant(0.0));
}

TEST(Simplify, IdempotentOnFixedPoint)
{
    const auto e1 = simp("a * b + c / d - max(a, 2)");
    const auto e2 = simplify(e1);
    EXPECT_TRUE(Expr::equal(e1, e2));
}

TEST(EvalConstant, ClosedExpression)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("3 * (4 + 1)")), 15.0);
}

TEST(EvalConstant, FreeSymbolIsFatal)
{
    EXPECT_THROW(evalConstant(parseExpr("x + 1")),
                 ar::util::FatalError);
}
