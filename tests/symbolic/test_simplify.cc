/**
 * @file
 * Unit tests for algebraic simplification.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

namespace
{

ExprPtr
simp(const char *text)
{
    return simplify(parseExpr(text));
}

} // namespace

TEST(Simplify, ConstantFolding)
{
    EXPECT_TRUE(simp("2 + 3")->isConstant(5.0));
    EXPECT_TRUE(simp("2 * 3 + 4 * 5")->isConstant(26.0));
    EXPECT_TRUE(simp("2 ^ 10")->isConstant(1024.0));
}

TEST(Simplify, AdditiveIdentity)
{
    const auto e = simp("x + 0");
    EXPECT_TRUE(e->isSymbol());
    EXPECT_EQ(e->name(), "x");
}

TEST(Simplify, MultiplicativeIdentity)
{
    const auto e = simp("1 * x");
    EXPECT_TRUE(e->isSymbol());
}

TEST(Simplify, MultiplicationByZero)
{
    EXPECT_TRUE(simp("0 * x * y")->isConstant(0.0));
}

TEST(Simplify, PowIdentities)
{
    EXPECT_TRUE(simp("x ^ 0")->isConstant(1.0));
    EXPECT_TRUE(simp("x ^ 1")->isSymbol());
    EXPECT_TRUE(simp("1 ^ x")->isConstant(1.0));
    EXPECT_TRUE(simp("0 ^ 2")->isConstant(0.0));
}

TEST(Simplify, MergesRepeatedFactors)
{
    const auto e = simp("x * x");
    EXPECT_EQ(e->kind(), ExprKind::Pow);
    EXPECT_TRUE(e->operands()[1]->isConstant(2.0));
}

TEST(Simplify, MergesPowersOfSameBase)
{
    const auto e = simp("x^2 * x^3");
    EXPECT_EQ(e->kind(), ExprKind::Pow);
    EXPECT_TRUE(e->operands()[1]->isConstant(5.0));
}

TEST(Simplify, CancelsInverseFactors)
{
    EXPECT_TRUE(simp("x / x")->isConstant(1.0));
}

TEST(Simplify, NestedPowCollapses)
{
    const auto e = simp("(x^2)^3");
    EXPECT_EQ(e->kind(), ExprKind::Pow);
    EXPECT_TRUE(e->operands()[1]->isConstant(6.0));
}

TEST(Simplify, MaxMinConstantFolding)
{
    EXPECT_TRUE(simp("max(1, 2, 3)")->isConstant(3.0));
    EXPECT_TRUE(simp("min(1, 2, 3)")->isConstant(1.0));
}

TEST(Simplify, MaxPartialFold)
{
    const auto e = simp("max(x, 2, 5)");
    EXPECT_EQ(e->kind(), ExprKind::Max);
    EXPECT_EQ(e->operands().size(), 2u);
}

TEST(Simplify, FunctionFolding)
{
    EXPECT_NEAR(simp("log(exp(3))")->value(), 3.0, 1e-12);
    EXPECT_TRUE(simp("gtz(5)")->isConstant(1.0));
    EXPECT_TRUE(simp("gtz(-1)")->isConstant(0.0));
    EXPECT_TRUE(simp("sqrt(49)")->isConstant(7.0));
}

TEST(Simplify, SubtractionOfSelfIsZero)
{
    EXPECT_TRUE(simp("x - x")->isConstant(0.0));
}

TEST(Simplify, IdempotentOnFixedPoint)
{
    const auto e1 = simp("a * b + c / d - max(a, 2)");
    const auto e2 = simplify(e1);
    EXPECT_TRUE(Expr::equal(e1, e2));
}

TEST(EvalConstant, ClosedExpression)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("3 * (4 + 1)")), 15.0);
}

TEST(EvalConstant, FreeSymbolIsFatal)
{
    EXPECT_THROW(evalConstant(parseExpr("x + 1")),
                 ar::util::FatalError);
}

TEST(Simplify, ConstantFoldOrderIsCanonical)
{
    // Pre-fix repro: the factory sorts Mul(0.1, 1) behind the plain
    // constants, so simplify folded 0.2 + 0.7 before + 0.1 and got
    // 0.99999999999999989 while the flat spelling got 1.  Folding
    // must re-sort the simplified operands so algebraically-equal
    // inputs produce bit-identical constants.
    const auto x = Expr::symbol("x");
    const auto assoc = Expr::add(
        {x, Expr::mul(Expr::constant(0.1), Expr::constant(1.0)),
         Expr::constant(0.2), Expr::constant(0.7)});
    const auto flat = Expr::add({x, Expr::constant(0.1),
                                 Expr::constant(0.2),
                                 Expr::constant(0.7)});
    EXPECT_TRUE(Expr::equal(simplify(assoc), simplify(flat)))
        << toString(simplify(assoc)) << " vs "
        << toString(simplify(flat));

    // Nested spelling of the same sum.
    const auto nested = Expr::add(
        Expr::mul(Expr::constant(1.0),
                  Expr::add({x, Expr::constant(0.1),
                             Expr::constant(0.2)})),
        Expr::constant(0.7));
    EXPECT_TRUE(Expr::equal(simplify(nested), simplify(flat)));
}

TEST(Simplify, MulConstantFoldOrderIsCanonical)
{
    const auto x = Expr::symbol("x");
    const auto assoc = Expr::mul(
        {x, Expr::add(Expr::constant(0.1), Expr::constant(0.0)),
         Expr::constant(0.2), Expr::constant(0.7)});
    const auto flat = Expr::mul({x, Expr::constant(0.1),
                                 Expr::constant(0.2),
                                 Expr::constant(0.7)});
    EXPECT_TRUE(Expr::equal(simplify(assoc), simplify(flat)));
}

TEST(Simplify, RepeatedSymbolicExponentsFoldInOnePass)
{
    // x^a * x^a must reach x^(2*a) directly; it used to stop at
    // x^(a + a), so simplify was not idempotent.
    const auto e = simp("x^a * x^a");
    EXPECT_EQ(toString(e), "x^(2 * a)");
    EXPECT_TRUE(Expr::equal(e, simplify(e)));
}

TEST(Simplify, MergedConstantBasePowersFold)
{
    // 2^a-style merges whose exponent folds to a constant must land
    // in the constant accumulator, not survive as 2^3.
    const auto e = simp("2^x * 2^(3 - x) * y");
    EXPECT_EQ(toString(e), "8 * y");
}
