/**
 * @file
 * Randomized property tests over the whole symbolic stack: generated
 * expression trees must survive print -> parse round trips, agree
 * between compiled-tape and substitution evaluation, and keep
 * agreeing after simplification.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "simd/dispatch.hh"
#include "symbolic/compile.hh"
#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "util/rng.hh"

using namespace ar::symbolic;

namespace
{

/** Random expression generator over a fixed symbol pool. */
class ExprGen
{
  public:
    explicit ExprGen(ar::util::Rng &rng) : rng(rng) {}

    ExprPtr
    gen(int depth)
    {
        if (depth <= 0 || rng.uniform() < 0.3)
            return leaf();
        switch (rng.uniformInt(6)) {
          case 0:
            return Expr::add(gen(depth - 1), gen(depth - 1));
          case 1:
            return Expr::sub(gen(depth - 1), gen(depth - 1));
          case 2:
            return Expr::mul(gen(depth - 1), gen(depth - 1));
          case 3:
            return Expr::div(gen(depth - 1), gen(depth - 1));
          case 4:
            // Constant exponent keeps values real.
            return Expr::pow(gen(depth - 1),
                             Expr::constant(smallExponent()));
          default:
            return Expr::max(
                {gen(depth - 1), gen(depth - 1)});
        }
    }

    std::map<std::string, double>
    randomValues()
    {
        std::map<std::string, double> vals;
        for (const char *name : {"a", "b", "x", "y"})
            vals[name] = rng.uniform(0.2, 3.0); // positive domain
        return vals;
    }

  private:
    ExprPtr
    leaf()
    {
        if (rng.uniform() < 0.5) {
            static const char *names[] = {"a", "b", "x", "y"};
            return Expr::symbol(names[rng.uniformInt(4)]);
        }
        // Positive constants keep pow() real-valued.
        return Expr::constant(
            std::round(rng.uniform(0.25, 4.0) * 4.0) / 4.0);
    }

    double
    smallExponent()
    {
        static const double exps[] = {-2.0, -1.0, 0.5, 1.0, 2.0,
                                      3.0};
        return exps[rng.uniformInt(6)];
    }

    ar::util::Rng &rng;
};

double
evalVia(const ExprPtr &e, const std::map<std::string, double> &vals)
{
    return evalConstant(substitute(e, vals));
}

/**
 * Literal recursive evaluation with IEEE semantics -- no algebraic
 * rewriting, so it defines exactly what the compiled tape must
 * compute (simplify() may legally differ where intermediates leave
 * the real domain, e.g. (x - y)^0.5 squared).
 */
double
literalEval(const ExprPtr &e,
            const std::map<std::string, double> &vals)
{
    switch (e->kind()) {
      case ExprKind::Constant:
        return e->value();
      case ExprKind::Symbol:
        return vals.at(e->name());
      case ExprKind::Add:
        {
            double acc = 0.0;
            for (const auto &op : e->operands())
                acc += literalEval(op, vals);
            return acc;
        }
      case ExprKind::Mul:
        {
            double acc = 1.0;
            for (const auto &op : e->operands())
                acc *= literalEval(op, vals);
            return acc;
        }
      case ExprKind::Pow:
        return std::pow(literalEval(e->operands()[0], vals),
                        literalEval(e->operands()[1], vals));
      case ExprKind::Max:
        {
            // Fold right-to-left to mirror the tape's stack pops:
            // std::max/min are order-sensitive when NaNs appear.
            const auto &ops = e->operands();
            double acc = literalEval(ops.back(), vals);
            for (std::size_t i = ops.size() - 1; i-- > 0;)
                acc = std::max(acc, literalEval(ops[i], vals));
            return acc;
        }
      case ExprKind::Min:
        {
            const auto &ops = e->operands();
            double acc = literalEval(ops.back(), vals);
            for (std::size_t i = ops.size() - 1; i-- > 0;)
                acc = std::min(acc, literalEval(ops[i], vals));
            return acc;
        }
      case ExprKind::Func:
        {
            const double a = literalEval(e->operands()[0], vals);
            if (e->name() == "log")
                return std::log(a);
            if (e->name() == "exp")
                return std::exp(a);
            return a > 0.0 ? 1.0 : 0.0;
        }
      default:
        return 0.0;
    }
}

} // namespace

TEST(RandomExpr, PrintParseRoundTripPreservesValue)
{
    ar::util::Rng rng(0xabcd);
    ExprGen gen(rng);
    int checked = 0;
    for (int i = 0; i < 300; ++i) {
        const auto e = gen.gen(4);
        const auto vals = gen.randomValues();
        const double direct = evalVia(e, vals);
        if (!std::isfinite(direct))
            continue;
        const auto reparsed = parseExpr(toString(e));
        const double roundtrip = evalVia(reparsed, vals);
        ASSERT_NEAR(roundtrip, direct,
                    1e-9 * std::max(1.0, std::fabs(direct)))
            << toString(e);
        ++checked;
    }
    EXPECT_GT(checked, 200);
}

TEST(RandomExpr, CompiledTapeMatchesLiteralEvaluation)
{
    ar::util::Rng rng(0xbeef);
    ExprGen gen(rng);
    int checked = 0;
    for (int i = 0; i < 300; ++i) {
        const auto e = gen.gen(4);
        const auto vals = gen.randomValues();
        const double direct = literalEval(e, vals);
        if (!std::isfinite(direct))
            continue;
        CompiledExpr fn(e);
        std::vector<double> args;
        for (const auto &name : fn.argNames())
            args.push_back(vals.at(name));
        ASSERT_NEAR(fn.eval(args), direct,
                    1e-9 * std::max(1.0, std::fabs(direct)))
            << toString(e);
        ++checked;
    }
    EXPECT_GT(checked, 200);
}

TEST(RandomExpr, SimplifyPreservesValue)
{
    ar::util::Rng rng(0xcafe);
    ExprGen gen(rng);
    int checked = 0;
    for (int i = 0; i < 300; ++i) {
        const auto e = gen.gen(4);
        const auto vals = gen.randomValues();
        const double direct = evalVia(e, vals);
        if (!std::isfinite(direct))
            continue;
        const double simplified = evalVia(simplify(e), vals);
        ASSERT_NEAR(simplified, direct,
                    1e-8 * std::max(1.0, std::fabs(direct)))
            << toString(e);
        ++checked;
    }
    EXPECT_GT(checked, 200);
}

TEST(RandomExpr, BatchEvaluationIsBitIdenticalToScalar)
{
    // The batched tape must reproduce the scalar tape bit-for-bit on
    // every trial -- including non-finite results -- because the
    // propagator's determinism guarantee rests on this equivalence.
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    ar::util::Rng rng(0xfeed);
    ExprGen gen(rng);
    constexpr std::size_t kTrials = 64;
    int checked = 0;
    for (int i = 0; i < 300; ++i) {
        const auto e = gen.gen(4);
        CompiledExpr fn(e);
        const std::size_t n_args = fn.argNames().size();

        std::vector<std::vector<double>> columns(
            n_args, std::vector<double>(kTrials));
        for (auto &col : columns)
            for (auto &v : col)
                v = rng.uniform(0.2, 3.0);
        std::vector<BatchArg> bargs;
        for (const auto &col : columns)
            bargs.push_back({col.data(), false});

        std::vector<double> batch(kTrials);
        fn.evalBatch(bargs, kTrials, batch.data());

        std::vector<double> scalar_args(n_args);
        for (std::size_t t = 0; t < kTrials; ++t) {
            for (std::size_t a = 0; a < n_args; ++a)
                scalar_args[a] = columns[a][t];
            const double want = fn.eval(scalar_args);
            std::uint64_t want_bits, got_bits;
            std::memcpy(&want_bits, &want, sizeof want);
            std::memcpy(&got_bits, &batch[t], sizeof want);
            ASSERT_EQ(got_bits, want_bits)
                << toString(e) << " trial " << t << ": batch "
                << batch[t] << " vs scalar " << want;
        }
        ++checked;
    }
    EXPECT_EQ(checked, 300);
}

TEST(RandomExpr, BatchBroadcastMatchesScalarOnMixedArgs)
{
    // Half the arguments broadcast a fixed value (the propagator's
    // certain-input path), the rest vary per trial.
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    ar::util::Rng rng(0xf00d);
    ExprGen gen(rng);
    constexpr std::size_t kTrials = 32;
    for (int i = 0; i < 150; ++i) {
        const auto e = gen.gen(4);
        CompiledExpr fn(e);
        const std::size_t n_args = fn.argNames().size();

        std::vector<std::vector<double>> columns(
            n_args, std::vector<double>(kTrials));
        std::vector<double> fixed(n_args);
        std::vector<bool> is_fixed(n_args);
        std::vector<BatchArg> bargs(n_args);
        for (std::size_t a = 0; a < n_args; ++a) {
            is_fixed[a] = rng.uniform() < 0.5;
            fixed[a] = rng.uniform(0.2, 3.0);
            for (auto &v : columns[a])
                v = rng.uniform(0.2, 3.0);
            bargs[a] = is_fixed[a]
                           ? BatchArg{&fixed[a], true}
                           : BatchArg{columns[a].data(), false};
        }

        std::vector<double> batch(kTrials);
        fn.evalBatch(bargs, kTrials, batch.data());

        std::vector<double> scalar_args(n_args);
        for (std::size_t t = 0; t < kTrials; ++t) {
            for (std::size_t a = 0; a < n_args; ++a)
                scalar_args[a] =
                    is_fixed[a] ? fixed[a] : columns[a][t];
            const double want = fn.eval(scalar_args);
            std::uint64_t want_bits, got_bits;
            std::memcpy(&want_bits, &want, sizeof want);
            std::memcpy(&got_bits, &batch[t], sizeof want);
            ASSERT_EQ(got_bits, want_bits)
                << toString(e) << " trial " << t;
        }
    }
}

TEST(RandomExpr, SimplifyIsIdempotent)
{
    ar::util::Rng rng(0xdead);
    ExprGen gen(rng);
    for (int i = 0; i < 200; ++i) {
        const auto once = simplify(gen.gen(4));
        const auto twice = simplify(once);
        ASSERT_TRUE(Expr::equal(once, twice)) << toString(once);
    }
}
