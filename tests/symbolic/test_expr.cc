/**
 * @file
 * Unit tests for expression construction and inspection.
 */

#include <gtest/gtest.h>

#include "symbolic/expr.hh"
#include "symbolic/printer.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

TEST(Expr, ConstantValue)
{
    const auto c = Expr::constant(2.5);
    EXPECT_TRUE(c->isConstant());
    EXPECT_TRUE(c->isConstant(2.5));
    EXPECT_FALSE(c->isConstant(2.0));
    EXPECT_DOUBLE_EQ(c->value(), 2.5);
}

TEST(Expr, SymbolName)
{
    const auto s = Expr::symbol("f");
    EXPECT_TRUE(s->isSymbol());
    EXPECT_EQ(s->name(), "f");
}

TEST(Expr, EmptySymbolNameIsFatal)
{
    EXPECT_THROW(Expr::symbol(""), ar::util::FatalError);
}

TEST(Expr, ValueOnNonConstantIsPanic)
{
    EXPECT_THROW(Expr::symbol("x")->value(), ar::util::PanicError);
}

TEST(Expr, AddFlattensNested)
{
    const auto x = Expr::symbol("x");
    const auto y = Expr::symbol("y");
    const auto z = Expr::symbol("z");
    const auto nested = Expr::add(Expr::add(x, y), z);
    EXPECT_EQ(nested->kind(), ExprKind::Add);
    EXPECT_EQ(nested->operands().size(), 3u);
}

TEST(Expr, MulFlattensNested)
{
    const auto x = Expr::symbol("x");
    const auto m = Expr::mul({Expr::mul(x, x), x});
    EXPECT_EQ(m->operands().size(), 3u);
}

TEST(Expr, SingleOperandCollapses)
{
    const auto x = Expr::symbol("x");
    EXPECT_TRUE(Expr::equal(Expr::add({x}), x));
    EXPECT_TRUE(Expr::equal(Expr::mul({x}), x));
    EXPECT_TRUE(Expr::equal(Expr::max({x}), x));
}

TEST(Expr, EmptyAddIsZeroEmptyMulIsOne)
{
    EXPECT_TRUE(Expr::add({})->isConstant(0.0));
    EXPECT_TRUE(Expr::mul({})->isConstant(1.0));
}

TEST(Expr, EmptyMaxIsFatal)
{
    EXPECT_THROW(Expr::max({}), ar::util::FatalError);
}

TEST(Expr, FreeSymbols)
{
    const auto e = Expr::add(
        Expr::mul(Expr::symbol("a"), Expr::symbol("b")),
        Expr::pow(Expr::symbol("a"), Expr::constant(2.0)));
    const auto syms = e->freeSymbols();
    EXPECT_EQ(syms.size(), 2u);
    EXPECT_TRUE(syms.count("a"));
    EXPECT_TRUE(syms.count("b"));
}

TEST(Expr, CountSymbol)
{
    const auto a = Expr::symbol("a");
    const auto e = Expr::add(Expr::mul(a, a), a);
    EXPECT_EQ(e->countSymbol("a"), 3u);
    EXPECT_EQ(e->countSymbol("b"), 0u);
}

TEST(Expr, StructuralEqualityIgnoresOperandOrder)
{
    const auto ab =
        Expr::add(Expr::symbol("a"), Expr::symbol("b"));
    const auto ba =
        Expr::add(Expr::symbol("b"), Expr::symbol("a"));
    EXPECT_TRUE(Expr::equal(ab, ba));
}

TEST(Expr, CompareDistinguishesKinds)
{
    EXPECT_NE(Expr::compare(Expr::constant(1.0), Expr::symbol("x")),
              0);
}

TEST(Expr, OperatorDsl)
{
    const auto x = Expr::symbol("x");
    const auto e = 2.0 * x + 1.0;
    EXPECT_EQ(e->kind(), ExprKind::Add);
    EXPECT_EQ(e->countSymbol("x"), 1u);
}

TEST(Expr, DivisionCanonicalizesToPow)
{
    const auto x = Expr::symbol("x");
    const auto y = Expr::symbol("y");
    const auto q = x / y;
    EXPECT_EQ(q->kind(), ExprKind::Mul);
    // One factor must be y^-1.
    bool found = false;
    for (const auto &op : q->operands()) {
        if (op->kind() == ExprKind::Pow &&
            op->operands()[1]->isConstant(-1.0)) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Expr, SqrtIsPowHalf)
{
    const auto s = Expr::sqrt(Expr::symbol("a"));
    EXPECT_EQ(s->kind(), ExprKind::Pow);
    EXPECT_TRUE(s->operands()[1]->isConstant(0.5));
}

TEST(Expr, UnknownFunctionIsFatal)
{
    EXPECT_THROW(Expr::func("sin", Expr::symbol("x")),
                 ar::util::FatalError);
}

TEST(Printer, RendersReadableInfix)
{
    const auto x = Expr::symbol("x");
    const auto e = (x + 1.0) * Expr::symbol("y");
    const auto text = toString(e);
    EXPECT_NE(text.find("x"), std::string::npos);
    EXPECT_NE(text.find("y"), std::string::npos);
    EXPECT_NE(text.find("("), std::string::npos);
}

TEST(Printer, EquationFormat)
{
    Equation eq{Expr::symbol("y"), Expr::constant(2.0)};
    EXPECT_EQ(toString(eq), "y = 2");
}
