/**
 * @file
 * Unit tests for single-variable equation solving.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "symbolic/parser.hh"
#include "symbolic/simplify.hh"
#include "symbolic/solve.hh"
#include "symbolic/substitute.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

namespace
{

double
solveAndEval(const char *equation, const std::string &target,
             const std::map<std::string, double> &vals)
{
    const auto solved = solveForOrDie(parseEquation(equation), target);
    return evalConstant(substitute(solved, vals));
}

} // namespace

TEST(Solve, LinearIsolation)
{
    // y = 2x + 3 solved for x at y = 11 -> 4.
    EXPECT_NEAR(solveAndEval("y = 2 * x + 3", "x", {{"y", 11.0}}),
                4.0, 1e-12);
}

TEST(Solve, TargetOnLeftSide)
{
    EXPECT_NEAR(solveAndEval("2 * x + 3 = y", "x", {{"y", 11.0}}),
                4.0, 1e-12);
}

TEST(Solve, DivisionIsolation)
{
    // s = f / p solved for p.
    EXPECT_NEAR(solveAndEval("s = f / p", "p",
                             {{"s", 2.0}, {"f", 10.0}}),
                5.0, 1e-12);
}

TEST(Solve, PowerWithConstantExponent)
{
    // p = a^0.5 solved for a (Pollack's Rule inverted).
    EXPECT_NEAR(solveAndEval("p = a ^ 0.5", "a", {{"p", 8.0}}), 64.0,
                1e-9);
}

TEST(Solve, ExponentTarget)
{
    // y = 2^x solved for x at y = 32 -> 5.
    EXPECT_NEAR(solveAndEval("y = 2 ^ x", "x", {{"y", 32.0}}), 5.0,
                1e-12);
}

TEST(Solve, LogIsolation)
{
    EXPECT_NEAR(solveAndEval("y = log(x)", "x", {{"y", 2.0}}),
                std::exp(2.0), 1e-12);
}

TEST(Solve, ExpIsolation)
{
    EXPECT_NEAR(solveAndEval("y = exp(x)", "x", {{"y", 7.389056}}),
                2.0, 1e-5);
}

TEST(Solve, DeeplyNestedTarget)
{
    // y = 1 / (a + 2 * sqrt(x)): solve for x.
    const double y = 0.1, a = 4.0;
    const double x_expected = std::pow((1.0 / y - a) / 2.0, 2.0);
    EXPECT_NEAR(solveAndEval("y = 1 / (a + 2 * sqrt(x))", "x",
                             {{"y", y}, {"a", a}}),
                x_expected, 1e-9);
}

TEST(Solve, AmdahlForF)
{
    // speedup = 1/((1-f) + f/s): isolate f.
    const double s = 16.0, sp = 4.0;
    const double f_expected =
        (1.0 - 1.0 / sp) / (1.0 - 1.0 / s);
    EXPECT_NEAR(solveAndEval("sp = 1 / ((1 - f) + f / s)", "f",
                             {{"sp", sp}, {"s", s}}),
                f_expected, 1e-9);
}

TEST(Solve, LinearWithRepeatedTarget)
{
    // y = 3x + 2x - 4: x = (y + 4) / 5.
    EXPECT_NEAR(solveAndEval("y = 3 * x + 2 * x - 4", "x",
                             {{"y", 6.0}}),
                2.0, 1e-12);
}

TEST(Solve, TargetOnBothSides)
{
    // 2x + 1 = x + y: x = y - 1.
    EXPECT_NEAR(solveAndEval("2 * x + 1 = x + y", "x", {{"y", 5.0}}),
                4.0, 1e-12);
}

TEST(Solve, NonlinearMultipleOccurrencesReturnsNullopt)
{
    const auto eq = parseEquation("y = x + x ^ 2");
    EXPECT_FALSE(solveFor(eq, "x").has_value());
}

TEST(Solve, AbsentSymbolReturnsNullopt)
{
    const auto eq = parseEquation("y = 2 * x");
    EXPECT_FALSE(solveFor(eq, "z").has_value());
}

TEST(Solve, MaxIsNotInvertible)
{
    const auto eq = parseEquation("y = max(x, 2)");
    EXPECT_FALSE(solveFor(eq, "x").has_value());
}

TEST(Solve, GtzIsNotInvertible)
{
    const auto eq = parseEquation("y = gtz(x)");
    EXPECT_FALSE(solveFor(eq, "x").has_value());
}

TEST(Solve, SolveForOrDieThrowsOnFailure)
{
    const auto eq = parseEquation("y = x + x");
    // x + x canonicalizes to a product with a single occurrence, so
    // use a genuinely unsolvable form.
    const auto eq2 = parseEquation("y = max(x, x ^ 2)");
    EXPECT_THROW(solveForOrDie(eq2, "x"), ar::util::FatalError);
}

TEST(Solve, RoundTripPropertyOnRandomLinears)
{
    // For y = a*x + b over several (a, b), solving and substituting
    // back must reproduce the original y.
    for (double a : {-3.0, 0.5, 2.0}) {
        for (double b : {-1.0, 0.0, 4.0}) {
            const double x = 1.7;
            const double y = a * x + b;
            const auto solved = solveForOrDie(
                parseEquation("y = a * x + b"), "x");
            const double x_back = evalConstant(substitute(
                solved, std::map<std::string, double>{
                            {"y", y}, {"a", a}, {"b", b}}));
            EXPECT_NEAR(x_back, x, 1e-9)
                << "a=" << a << " b=" << b;
        }
    }
}
