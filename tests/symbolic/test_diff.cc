/**
 * @file
 * Unit tests for symbolic differentiation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "symbolic/diff.hh"
#include "symbolic/parser.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

namespace
{

double
derivAt(const char *text, const std::map<std::string, double> &vals)
{
    const auto d = diff(parseExpr(text), "x");
    EXPECT_TRUE(d.has_value()) << text;
    return evalConstant(substitute(*d, vals));
}

} // namespace

TEST(Diff, ConstantsAndForeignSymbols)
{
    EXPECT_TRUE((*diff(parseExpr("5"), "x"))->isConstant(0.0));
    EXPECT_TRUE((*diff(parseExpr("y"), "x"))->isConstant(0.0));
    EXPECT_TRUE((*diff(parseExpr("x"), "x"))->isConstant(1.0));
}

TEST(Diff, Polynomial)
{
    // d/dx (3x^2 + 2x + 7) = 6x + 2.
    EXPECT_NEAR(derivAt("3 * x^2 + 2 * x + 7", {{"x", 4.0}}), 26.0,
                1e-12);
}

TEST(Diff, ProductRule)
{
    // d/dx (x * y * x) = 2xy.
    EXPECT_NEAR(derivAt("x * y * x", {{"x", 3.0}, {"y", 5.0}}), 30.0,
                1e-12);
}

TEST(Diff, QuotientViaPow)
{
    // d/dx (1/x) = -1/x^2.
    EXPECT_NEAR(derivAt("1 / x", {{"x", 2.0}}), -0.25, 1e-12);
}

TEST(Diff, SqrtRule)
{
    EXPECT_NEAR(derivAt("sqrt(x)", {{"x", 16.0}}), 0.125, 1e-12);
}

TEST(Diff, ExponentTarget)
{
    // d/dx (2^x) = 2^x log 2.
    EXPECT_NEAR(derivAt("2 ^ x", {{"x", 3.0}}),
                8.0 * std::log(2.0), 1e-12);
}

TEST(Diff, GeneralPower)
{
    // d/dx (x^x) = x^x (log x + 1).
    EXPECT_NEAR(derivAt("x ^ x", {{"x", 2.0}}),
                4.0 * (std::log(2.0) + 1.0), 1e-12);
}

TEST(Diff, LogAndExpChain)
{
    EXPECT_NEAR(derivAt("log(x^2)", {{"x", 3.0}}), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(derivAt("exp(2 * x)", {{"x", 1.0}}),
                2.0 * std::exp(2.0), 1e-12);
}

TEST(Diff, AmdahlSensitivity)
{
    // d/df of 1/((1-f) + f/s) at f=0.9, s=16 (sensitivity of speedup
    // to parallel fraction): (1 - 1/s) / ((1-f) + f/s)^2.
    const double f = 0.9, s = 16.0;
    const double denom = (1.0 - f) + f / s;
    const double expect = (1.0 - 1.0 / s) / (denom * denom);
    const auto d = diff(parseExpr("1 / ((1 - f) + f / s)"), "f");
    ASSERT_TRUE(d.has_value());
    const double got = evalConstant(substitute(
        *d, std::map<std::string, double>{{"f", f}, {"s", s}}));
    EXPECT_NEAR(got, expect, 1e-12);
}

TEST(Diff, NonDifferentiableReturnsNullopt)
{
    EXPECT_FALSE(diff(parseExpr("max(x, 1)"), "x").has_value());
    EXPECT_FALSE(diff(parseExpr("min(x, 1)"), "x").has_value());
    EXPECT_FALSE(diff(parseExpr("gtz(x)"), "x").has_value());
}

TEST(Diff, MaxOfForeignSymbolsIsFine)
{
    // max over expressions not involving x differentiates to 0.
    EXPECT_TRUE((*diff(parseExpr("max(a, b)"), "x"))
                    ->isConstant(0.0));
}

TEST(Diff, NumericalCrossCheck)
{
    // Central-difference check on a composite expression.
    const char *text = "x^3 / (1 + x) + sqrt(x) * exp(-x)";
    const auto expr = parseExpr(text);
    const auto d = diff(expr, "x");
    ASSERT_TRUE(d.has_value());
    for (double x : {0.5, 1.0, 2.5, 7.0}) {
        const double h = 1e-6 * std::max(1.0, x);
        const auto at = [&](double v) {
            return evalConstant(substitute(
                expr, std::map<std::string, double>{{"x", v}}));
        };
        const double numeric = (at(x + h) - at(x - h)) / (2.0 * h);
        const double symbolic = evalConstant(substitute(
            *d, std::map<std::string, double>{{"x", x}}));
        EXPECT_NEAR(symbolic, numeric,
                    1e-5 * std::max(1.0, std::fabs(numeric)))
            << "x=" << x;
    }
}
