/**
 * @file
 * Unit tests for expression compilation and tape evaluation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simd/dispatch.hh"
#include "symbolic/compile.hh"
#include "symbolic/parser.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace ar::symbolic;

TEST(Compile, ArgumentOrderIsSorted)
{
    CompiledExpr fn(parseExpr("zeta + alpha * mid"));
    const auto &args = fn.argNames();
    ASSERT_EQ(args.size(), 3u);
    EXPECT_EQ(args[0], "alpha");
    EXPECT_EQ(args[1], "mid");
    EXPECT_EQ(args[2], "zeta");
}

TEST(Compile, ArgIndexLookup)
{
    CompiledExpr fn(parseExpr("b + a"));
    EXPECT_EQ(fn.argIndex("a"), 0u);
    EXPECT_EQ(fn.argIndex("b"), 1u);
    EXPECT_THROW(fn.argIndex("c"), ar::util::FatalError);
}

TEST(Compile, EvaluatesArithmetic)
{
    CompiledExpr fn(parseExpr("a * 2 + b / 4"));
    const std::vector<double> args{3.0, 8.0}; // a=3, b=8
    EXPECT_DOUBLE_EQ(fn.eval(args), 8.0);
}

TEST(Compile, EvaluatesPowerAndSqrt)
{
    CompiledExpr fn(parseExpr("sqrt(a) + a ^ 2"));
    const std::vector<double> args{4.0};
    EXPECT_DOUBLE_EQ(fn.eval(args), 18.0);
}

TEST(Compile, EvaluatesMaxMin)
{
    CompiledExpr fn(parseExpr("max(a, b, 2) + min(a, b)"));
    EXPECT_DOUBLE_EQ(fn.eval(std::vector<double>{1.0, 5.0}), 6.0);
}

TEST(Compile, EvaluatesFunctions)
{
    CompiledExpr fn(parseExpr("exp(log(a)) + gtz(b)"));
    EXPECT_DOUBLE_EQ(fn.eval(std::vector<double>{3.0, -1.0}), 3.0);
    EXPECT_DOUBLE_EQ(fn.eval(std::vector<double>{3.0, 0.5}), 4.0);
}

TEST(Compile, ConstantExpressionNeedsNoArgs)
{
    CompiledExpr fn(parseExpr("2 + 3 * 4"));
    EXPECT_TRUE(fn.argNames().empty());
    EXPECT_DOUBLE_EQ(fn.eval({}), 14.0);
}

TEST(Compile, WrongArgCountIsFatal)
{
    CompiledExpr fn(parseExpr("a + b"));
    const std::vector<double> one{1.0};
    EXPECT_THROW(fn.eval(one), ar::util::FatalError);
}

TEST(Compile, DivisionByZeroYieldsInfNotCrash)
{
    CompiledExpr fn(parseExpr("1 / x"));
    const std::vector<double> zero{0.0};
    EXPECT_TRUE(std::isinf(fn.eval(zero)));
}

TEST(Compile, RepeatedEvalIsConsistent)
{
    CompiledExpr fn(parseExpr("a * a - b"));
    const std::vector<double> args{3.0, 4.0};
    for (int i = 0; i < 100; ++i)
        ASSERT_DOUBLE_EQ(fn.eval(args), 5.0);
}

TEST(Compile, MatchesRecursiveEvaluationOnRandomInputs)
{
    // Property: the tape must agree with a direct recursive
    // evaluation for a non-trivial expression across random inputs.
    const char *text =
        "1 / ((1 - f + c * (n0 + n1)) / max(p0 * gtz(n0), "
        "p1 * gtz(n1)) + f / (n0 * p0 + n1 * p1))";
    CompiledExpr fn(parseExpr(text));
    ar::util::Rng rng(121);
    for (int i = 0; i < 200; ++i) {
        const double f = rng.uniform(0.5, 0.999);
        const double c = rng.uniform(0.0, 0.02);
        const double n0 = std::floor(rng.uniform(0.0, 17.0));
        const double n1 = std::floor(rng.uniform(0.0, 3.0));
        const double p0 = rng.uniform(0.0, 4.0);
        const double p1 = rng.uniform(0.0, 12.0);

        // args sorted: c, f, n0, n1, p0, p1
        const std::vector<double> args{c, f, n0, n1, p0, p1};
        const double got = fn.eval(args);

        const double p_ser =
            std::max(p0 * (n0 > 0 ? 1.0 : 0.0),
                     p1 * (n1 > 0 ? 1.0 : 0.0));
        const double denom =
            (1.0 - f + c * (n0 + n1)) / p_ser +
            f / (n0 * p0 + n1 * p1);
        const double expect = 1.0 / denom;
        if (std::isfinite(expect)) {
            ASSERT_NEAR(got, expect, 1e-9 * std::max(1.0, expect))
                << "trial " << i;
        }
    }
}

TEST(Compile, TapeLengthIsReported)
{
    CompiledExpr fn(parseExpr("a + b * c"));
    EXPECT_GT(fn.tapeLength(), 3u);
}

TEST(Compile, BatchMatchesScalarExactly)
{
    // Bitwise batch-vs-eval equality is a Level::Scalar contract;
    // vector transcendentals follow the DESIGN.md 5.6 ULP policy.
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    CompiledExpr fn(parseExpr(
        "max(a, b) * exp(log(a)) + b ^ 2 - min(a, b, 1.5)"));
    constexpr std::size_t n = 300;
    ar::util::Rng rng(77);
    std::vector<double> col_a(n), col_b(n);
    for (std::size_t t = 0; t < n; ++t) {
        col_a[t] = rng.uniform(0.2, 3.0);
        col_b[t] = rng.uniform(0.2, 3.0);
    }
    const std::vector<BatchArg> args{{col_a.data(), false},
                                     {col_b.data(), false}};
    std::vector<double> out(n);
    fn.evalBatch(args, n, out.data());
    for (std::size_t t = 0; t < n; ++t) {
        const std::vector<double> scalar_args{col_a[t], col_b[t]};
        ASSERT_EQ(out[t], fn.eval(scalar_args)) << "trial " << t;
    }
}

TEST(Compile, BatchBroadcastsFixedArguments)
{
    CompiledExpr fn(parseExpr("x * k + k"));
    constexpr std::size_t n = 64;
    std::vector<double> col_x(n);
    for (std::size_t t = 0; t < n; ++t)
        col_x[t] = static_cast<double>(t);
    const double k = 2.5;
    // args sorted: k, x
    const std::vector<BatchArg> args{{&k, true},
                                     {col_x.data(), false}};
    std::vector<double> out(n);
    fn.evalBatch(args, n, out.data());
    for (std::size_t t = 0; t < n; ++t)
        ASSERT_DOUBLE_EQ(out[t], col_x[t] * k + k);
}

TEST(Compile, BatchHandlesZeroTrials)
{
    CompiledExpr fn(parseExpr("a + 1"));
    const double a = 1.0;
    const std::vector<BatchArg> args{{&a, true}};
    fn.evalBatch(args, 0, nullptr);
}

TEST(Compile, BatchOfConstantExpression)
{
    CompiledExpr fn(parseExpr("2 + 3 * 4"));
    std::vector<double> out(8, 0.0);
    fn.evalBatch({}, out.size(), out.data());
    for (double v : out)
        ASSERT_DOUBLE_EQ(v, 14.0);
}

TEST(Compile, BatchPropagatesNonFiniteValuesLikeScalar)
{
    // Pinned scalar: the finite lane compares bitwise against eval().
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    CompiledExpr fn(parseExpr("1 / x + log(x)"));
    const std::vector<double> col_x{0.0, -1.0, 2.0};
    const std::vector<BatchArg> args{{col_x.data(), false}};
    std::vector<double> out(col_x.size());
    fn.evalBatch(args, col_x.size(), out.data());
    for (std::size_t t = 0; t < col_x.size(); ++t) {
        const double want = fn.eval(std::vector<double>{col_x[t]});
        if (std::isnan(want))
            ASSERT_TRUE(std::isnan(out[t]));
        else
            ASSERT_EQ(out[t], want);
    }
}
