/**
 * @file
 * Unit tests for the expression/equation parser, including round
 * trips through the printer.
 */

#include <gtest/gtest.h>

#include <map>

#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

namespace
{

double
evalAt(const ExprPtr &e, const std::map<std::string, double> &vals)
{
    return evalConstant(substitute(e, vals));
}

} // namespace

TEST(Parser, NumberLiteral)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("3.25")), 3.25);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("1e-3")), 1e-3);
}

TEST(Parser, ArithmeticPrecedence)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("2 + 3 * 4")), 14.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("(2 + 3) * 4")), 20.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("10 - 4 - 3")), 3.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("12 / 4 / 3")), 1.0);
}

TEST(Parser, PowerIsRightAssociative)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("2 ^ 3 ^ 2")), 512.0);
}

TEST(Parser, PowerBindsTighterThanUnaryMinusOnRight)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("2 ^ -1")), 0.5);
}

TEST(Parser, UnaryMinus)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("-3 + 5")), 2.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("--4")), 4.0);
}

TEST(Parser, Functions)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("sqrt(16)")), 4.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("log(exp(2))")), 2.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("max(1, 5, 3)")), 5.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("min(4, 2, 9)")), 2.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("gtz(0.5)")), 1.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("gtz(0)")), 0.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("gtz(-2)")), 0.0);
}

TEST(Parser, SymbolsWithUnderscoresAndDigits)
{
    const auto e = parseExpr("P_core0 * N_core0");
    const auto syms = e->freeSymbols();
    EXPECT_TRUE(syms.count("P_core0"));
    EXPECT_TRUE(syms.count("N_core0"));
}

TEST(Parser, HillMartySpeedupExpression)
{
    const auto e = parseExpr(
        "1 / ((1 - f + c * N) / P_ser + f / P_par)");
    const double v = evalAt(e, {{"f", 0.9},
                                {"c", 0.01},
                                {"N", 16.0},
                                {"P_ser", 4.0},
                                {"P_par", 45.25}});
    const double expect =
        1.0 / ((1.0 - 0.9 + 0.01 * 16.0) / 4.0 + 0.9 / 45.25);
    EXPECT_NEAR(v, expect, 1e-12);
}

TEST(Parser, EquationSplitsOnEquals)
{
    const auto eq = parseEquation("y = x + 1");
    EXPECT_TRUE(eq.lhs->isSymbol());
    EXPECT_EQ(eq.lhs->name(), "y");
    EXPECT_EQ(eq.rhs->countSymbol("x"), 1u);
}

TEST(Parser, MissingEqualsIsFatal)
{
    EXPECT_THROW(parseEquation("x + 1"), ar::util::FatalError);
}

TEST(Parser, DoubleEqualsIsFatal)
{
    EXPECT_THROW(parseEquation("a = b = c"), ar::util::FatalError);
}

TEST(Parser, SyntaxErrorsAreFatal)
{
    EXPECT_THROW(parseExpr("2 +"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("(1 + 2"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("foo(1)"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("1 2"), ar::util::FatalError);
    EXPECT_THROW(parseExpr(""), ar::util::FatalError);
    EXPECT_THROW(parseExpr("sqrt(1, 2)"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("max()"), ar::util::FatalError);
}

class PrinterRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PrinterRoundTrip, ParsePrintParseIsStable)
{
    const auto e1 = simplify(parseExpr(GetParam()));
    const auto e2 = simplify(parseExpr(toString(e1)));
    EXPECT_TRUE(Expr::equal(e1, e2))
        << GetParam() << " -> " << toString(e1) << " -> "
        << toString(e2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrinterRoundTrip,
    ::testing::Values("x + y * z", "(a + b)^2 / c", "-x * 3 + 4",
                      "max(a, b * 2, sqrt(c))", "1/(x + 1/(y + 1))",
                      "gtz(n) * p + exp(log(q))",
                      "f / (1 - f + c * n)"));
