/**
 * @file
 * Unit tests for the expression/equation parser, including round
 * trips through the printer.
 */

#include <gtest/gtest.h>

#include <map>

#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

using namespace ar::symbolic;

namespace
{

double
evalAt(const ExprPtr &e, const std::map<std::string, double> &vals)
{
    return evalConstant(substitute(e, vals));
}

} // namespace

TEST(Parser, NumberLiteral)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("3.25")), 3.25);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("1e-3")), 1e-3);
}

TEST(Parser, ArithmeticPrecedence)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("2 + 3 * 4")), 14.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("(2 + 3) * 4")), 20.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("10 - 4 - 3")), 3.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("12 / 4 / 3")), 1.0);
}

TEST(Parser, PowerIsRightAssociative)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("2 ^ 3 ^ 2")), 512.0);
}

TEST(Parser, PowerBindsTighterThanUnaryMinusOnRight)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("2 ^ -1")), 0.5);
}

TEST(Parser, UnaryMinus)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("-3 + 5")), 2.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("--4")), 4.0);
}

TEST(Parser, Functions)
{
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("sqrt(16)")), 4.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("log(exp(2))")), 2.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("max(1, 5, 3)")), 5.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("min(4, 2, 9)")), 2.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("gtz(0.5)")), 1.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("gtz(0)")), 0.0);
    EXPECT_DOUBLE_EQ(evalConstant(parseExpr("gtz(-2)")), 0.0);
}

TEST(Parser, SymbolsWithUnderscoresAndDigits)
{
    const auto e = parseExpr("P_core0 * N_core0");
    const auto syms = e->freeSymbols();
    EXPECT_TRUE(syms.count("P_core0"));
    EXPECT_TRUE(syms.count("N_core0"));
}

TEST(Parser, HillMartySpeedupExpression)
{
    const auto e = parseExpr(
        "1 / ((1 - f + c * N) / P_ser + f / P_par)");
    const double v = evalAt(e, {{"f", 0.9},
                                {"c", 0.01},
                                {"N", 16.0},
                                {"P_ser", 4.0},
                                {"P_par", 45.25}});
    const double expect =
        1.0 / ((1.0 - 0.9 + 0.01 * 16.0) / 4.0 + 0.9 / 45.25);
    EXPECT_NEAR(v, expect, 1e-12);
}

TEST(Parser, EquationSplitsOnEquals)
{
    const auto eq = parseEquation("y = x + 1");
    EXPECT_TRUE(eq.lhs->isSymbol());
    EXPECT_EQ(eq.lhs->name(), "y");
    EXPECT_EQ(eq.rhs->countSymbol("x"), 1u);
}

TEST(Parser, MissingEqualsIsFatal)
{
    EXPECT_THROW(parseEquation("x + 1"), ar::util::FatalError);
}

TEST(Parser, DoubleEqualsIsFatal)
{
    EXPECT_THROW(parseEquation("a = b = c"), ar::util::FatalError);
}

TEST(Parser, SyntaxErrorsAreFatal)
{
    EXPECT_THROW(parseExpr("2 +"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("(1 + 2"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("foo(1)"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("1 2"), ar::util::FatalError);
    EXPECT_THROW(parseExpr(""), ar::util::FatalError);
    EXPECT_THROW(parseExpr("sqrt(1, 2)"), ar::util::FatalError);
    EXPECT_THROW(parseExpr("max()"), ar::util::FatalError);
}

namespace
{

/** Parse @p text expecting failure; return the structured payload. */
ar::util::Diagnostic
diagnosticOf(const char *text, std::size_t line = 0)
{
    try {
        parseExpr(text, line);
    } catch (const ar::util::ParseError &e) {
        return e.diagnostic();
    }
    ADD_FAILURE() << "'" << text << "' parsed successfully";
    return {};
}

} // namespace

TEST(Parser, UnbalancedParenPointsAtMissingParen)
{
    const auto d = diagnosticOf("(1 + 2", 7);
    EXPECT_NE(d.message.find("expected ')'"), std::string::npos);
    EXPECT_EQ(d.line, 7u);
    EXPECT_EQ(d.column, 7u); // one past the end of the input
    EXPECT_EQ(d.source, "(1 + 2");
}

TEST(Parser, DanglingOperatorPointsAtEndOfInput)
{
    const auto d = diagnosticOf("2 +", 1);
    EXPECT_NE(d.message.find("unexpected end of input"),
              std::string::npos);
    EXPECT_EQ(d.line, 1u);
    EXPECT_EQ(d.column, 4u);
}

TEST(Parser, TrailingInputPointsAtFirstExtraToken)
{
    const auto d = diagnosticOf("1 2");
    EXPECT_NE(d.message.find("unexpected trailing input"),
              std::string::npos);
    EXPECT_EQ(d.column, 3u);
}

TEST(Parser, StrayTokenPointsAtTheToken)
{
    const auto d = diagnosticOf("a + )");
    EXPECT_NE(d.message.find("expected a number, name, or '('"),
              std::string::npos);
    EXPECT_EQ(d.column, 5u);
}

TEST(Parser, UnknownFunctionPointsAtTheName)
{
    try {
        parseEquation("y = sqqt(s)", 3);
        FAIL() << "parsed an unknown function";
    } catch (const ar::util::ParseError &e) {
        const auto &d = e.diagnostic();
        EXPECT_NE(d.message.find("unknown function 'sqqt'"),
                  std::string::npos);
        EXPECT_EQ(d.line, 3u);
        EXPECT_EQ(d.column, 5u); // column of 'sqqt' in the full line
        EXPECT_EQ(d.source, "y = sqqt(s)");
        // The rendered what() shows the caret snippet.
        EXPECT_NE(std::string(e.what()).find('^'), std::string::npos);
    }
}

TEST(Parser, MissingEqualsPointsPastTheLine)
{
    try {
        parseEquation("x + 1", 9);
        FAIL() << "parsed an equation without '='";
    } catch (const ar::util::ParseError &e) {
        EXPECT_NE(e.diagnostic().message.find("missing '='"),
                  std::string::npos);
        EXPECT_EQ(e.diagnostic().line, 9u);
        EXPECT_EQ(e.diagnostic().column, 6u);
    }
}

TEST(Parser, SecondEqualsPointsAtTheSecondSign)
{
    try {
        parseEquation("a = b = c", 2);
        FAIL() << "parsed an equation with two '='";
    } catch (const ar::util::ParseError &e) {
        EXPECT_NE(e.diagnostic().message.find("multiple '='"),
                  std::string::npos);
        EXPECT_EQ(e.diagnostic().column, 7u);
    }
}

class PrinterRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PrinterRoundTrip, ParsePrintParseIsStable)
{
    const auto e1 = simplify(parseExpr(GetParam()));
    const auto e2 = simplify(parseExpr(toString(e1)));
    EXPECT_TRUE(Expr::equal(e1, e2))
        << GetParam() << " -> " << toString(e1) << " -> "
        << toString(e2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrinterRoundTrip,
    ::testing::Values("x + y * z", "(a + b)^2 / c", "-x * 3 + 4",
                      "max(a, b * 2, sqrt(c))", "1/(x + 1/(y + 1))",
                      "gtz(n) * p + exp(log(q))",
                      "f / (1 - f + c * n)"));

TEST(Parser, SeriesStructureIsProduct)
{
    const auto e = parseExpr("series(a, b, c)");
    EXPECT_DOUBLE_EQ(evalAt(e, {{"a", 0.5}, {"b", 0.8}, {"c", 1.0}}),
                     0.4);
    // Any dead element kills the series path.
    EXPECT_DOUBLE_EQ(evalAt(e, {{"a", 0.5}, {"b", 0.0}, {"c", 1.0}}),
                     0.0);
}

TEST(Parser, ParallelStructureIsMax)
{
    const auto e = parseExpr("parallel(a, b, c)");
    EXPECT_DOUBLE_EQ(evalAt(e, {{"a", 0.2}, {"b", 0.9}, {"c", 0.4}}),
                     0.9);
    EXPECT_DOUBLE_EQ(evalAt(e, {{"a", 0.0}, {"b", 0.0}, {"c", 0.0}}),
                     0.0);
}

TEST(Parser, KOfNCountsUpElements)
{
    const auto e = parseExpr("kofn(2, a, b, c)");
    EXPECT_DOUBLE_EQ(evalAt(e, {{"a", 1.0}, {"b", 1.0}, {"c", 0.0}}),
                     1.0);
    EXPECT_DOUBLE_EQ(evalAt(e, {{"a", 1.0}, {"b", 0.0}, {"c", 0.0}}),
                     0.0);
    // Fractional (degraded) performance still counts as "up".
    EXPECT_DOUBLE_EQ(evalAt(e, {{"a", 0.5}, {"b", 0.1}, {"c", 0.0}}),
                     1.0);
}

TEST(Parser, KOfNEdgeCases)
{
    // k = 0: the up-count is never negative, so the gate is always 1.
    EXPECT_DOUBLE_EQ(evalAt(parseExpr("kofn(0, a)"), {{"a", 0.0}}),
                     1.0);
    // k = n: every element must be up.
    const auto all = parseExpr("kofn(3, a, b, c)");
    EXPECT_DOUBLE_EQ(
        evalAt(all, {{"a", 1.0}, {"b", 1.0}, {"c", 1.0}}), 1.0);
    EXPECT_DOUBLE_EQ(
        evalAt(all, {{"a", 1.0}, {"b", 1.0}, {"c", 0.0}}), 0.0);
    // Single element degenerates to gtz.
    const auto one = parseExpr("kofn(1, a)");
    EXPECT_DOUBLE_EQ(evalAt(one, {{"a", 2.0}}), 1.0);
    EXPECT_DOUBLE_EQ(evalAt(one, {{"a", 0.0}}), 0.0);
}

TEST(Parser, StructureFunctionsCompose)
{
    // The memory-hierarchy idiom: a k-of-n channel gate in series
    // with a controller and a parallel pair.
    const auto e = parseExpr(
        "kofn(2, c0, c1, c2) * series(m, parallel(l0, l1))");
    const std::map<std::string, double> up = {
        {"c0", 1.0}, {"c1", 1.0}, {"c2", 0.0},
        {"m", 1.0},  {"l0", 0.0}, {"l1", 1.0}};
    EXPECT_DOUBLE_EQ(evalAt(e, up), 1.0);
    auto down = up;
    down["m"] = 0.0; // controller is a single point of failure
    EXPECT_DOUBLE_EQ(evalAt(e, down), 0.0);
}

TEST(Parser, StructureArityErrors)
{
    EXPECT_THROW(parseExpr("series()"), ar::util::ParseError);
    EXPECT_THROW(parseExpr("parallel()"), ar::util::ParseError);
    EXPECT_THROW(parseExpr("kofn(2)"), ar::util::ParseError);
    EXPECT_THROW(parseExpr("kofn()"), ar::util::ParseError);
}
