/**
 * @file
 * Incremental tape editing: tryPatch() must leave the program
 * bit-identical to a from-scratch compile of the edited forest (the
 * golden contract the serve EDIT path and the framework's what-if
 * cache lean on), refuse every edit whose fresh compile would take a
 * different shape, and recompile() must absorb refused or structural
 * edits through the warm builder with the same bit-identity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "symbolic/parser.hh"
#include "symbolic/program.hh"
#include "util/rng.hh"

using namespace ar::symbolic;

namespace
{

std::uint64_t
bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

#define ASSERT_BITEQ(got, want, msg)                                   \
    ASSERT_EQ(bits(got), bits(want))                                   \
        << msg << ": got " << (got) << " want " << (want)

/** Assert @p prog and a fresh compile of @p fresh_outputs answer
 * bit-identically on a deterministic input sweep, per trial and in
 * batch (batch exercises the SIMD row path). */
void
expectMatchesFresh(const CompiledProgram &prog,
                   std::vector<ExprPtr> fresh_outputs,
                   const std::string &ctx)
{
    const CompiledProgram fresh(std::move(fresh_outputs));
    ASSERT_EQ(prog.argNames(), fresh.argNames()) << ctx;
    ASSERT_EQ(prog.numOutputs(), fresh.numOutputs()) << ctx;

    const std::size_t nargs = prog.argNames().size();
    const std::size_t nout = prog.numOutputs();

    ar::util::Rng rng(2024);
    constexpr std::size_t kTrials = 64;
    std::vector<std::vector<double>> cols(nargs);
    for (auto &col : cols) {
        col.resize(kTrials);
        for (auto &v : col)
            v = rng.uniform() * 4.0 - 1.0; // Crosses 0 and 1.
    }

    std::vector<double> args(nargs), got(nout), want(nout);
    for (std::size_t t = 0; t < kTrials; ++t) {
        for (std::size_t a = 0; a < nargs; ++a)
            args[a] = cols[a][t];
        prog.eval(args, got);
        fresh.eval(args, want);
        for (std::size_t o = 0; o < nout; ++o)
            ASSERT_BITEQ(got[o], want[o],
                         ctx + " trial " + std::to_string(t) +
                             " output " + std::to_string(o));
    }

    std::vector<BatchArg> batch(nargs);
    for (std::size_t a = 0; a < nargs; ++a)
        batch[a] = BatchArg{cols[a].data(), false};
    std::vector<double> bgot(nout * kTrials), bwant(nout * kTrials);
    std::vector<double *> grows(nout), wrows(nout);
    for (std::size_t o = 0; o < nout; ++o) {
        grows[o] = bgot.data() + o * kTrials;
        wrows[o] = bwant.data() + o * kTrials;
    }
    prog.evalBatch(batch, kTrials, grows);
    fresh.evalBatch(batch, kTrials, wrows);
    for (std::size_t i = 0; i < bgot.size(); ++i)
        ASSERT_BITEQ(bgot[i], bwant[i],
                     ctx + " batch element " + std::to_string(i));
}

std::vector<ExprPtr>
forest(const std::vector<std::string> &texts)
{
    std::vector<ExprPtr> out;
    for (const auto &text : texts)
        out.push_back(parseExpr(text));
    return out;
}

TEST(ProgramEdit, ConstPatchIsBitIdenticalToFreshCompile)
{
    CompiledProgram prog(forest({"(x + 3) * y / (x + 7)"}));
    const std::size_t len = prog.tapeLength();

    const auto edited = forest({"(x + 4) * y / (x + 7)"});
    ASSERT_TRUE(prog.tryPatch(edited));
    EXPECT_EQ(prog.tapeLength(), len); // Patched in place.
    expectMatchesFresh(prog, edited, "single const edit");
}

TEST(ProgramEdit, PatchAppliesChainedEditsAtomically)
{
    // {3 -> 4, 4 -> 6}: applying the edits by sequential value scan
    // would corrupt the first patched slot; the pre-collected slot
    // list must keep them independent.
    CompiledProgram prog(forest({"x * 3 + y * 4"}));
    const auto edited = forest({"x * 4 + y * 6"});
    ASSERT_TRUE(prog.tryPatch(edited));
    expectMatchesFresh(prog, edited, "chained const edits");
}

TEST(ProgramEdit, RepeatedPatchesConverge)
{
    CompiledProgram prog(forest({"x / (c0 + 2) + c0 * 3"}));
    std::vector<ExprPtr> step;
    for (double v : {5.0, 9.0, 2.5, 9.0, -3.0}) {
        step = forest({"x / (c0 + " + std::to_string(v) +
                       ") + c0 * 3"});
        ASSERT_TRUE(prog.tryPatch(step)) << "edit to " << v;
    }
    expectMatchesFresh(prog, step, "repeated patches");
}

TEST(ProgramEdit, RefusesNeutralElementTransitions)
{
    // 2*x -> 1*x: a fresh compile prunes the multiplicative one, so
    // an in-place patch would leave a tape shape no fresh compile
    // produces.  Same for additive zero and the strength-reduced
    // exponents; each must fall back to recompile and still match.
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"x * 2 + y", "x * 1 + y"},
        {"x + 2 + y", "x + 0 + y"},
        {"x ^ 3 + y", "x ^ 2 + y"},
        {"x ^ 3 + y", "x ^ 0.5 + y"},
        {"x ^ 3 + y", "x ^ -1 + y"},
    };
    for (const auto &[before, after] : cases) {
        CompiledProgram prog(forest({before}));
        const auto edited = forest({after});
        EXPECT_FALSE(prog.tryPatch(edited))
            << before << " -> " << after;
        prog.recompile(edited);
        expectMatchesFresh(prog, edited,
                           before + " -> " + after + " (recompile)");
    }
}

TEST(ProgramEdit, RefusesConflictingSharedConstant)
{
    // The interned pool shares one node for both 3s; changing only
    // one occurrence is structural (the fresh forest has two
    // distinct constants where the old had one shared node).
    CompiledProgram prog(forest({"(x + 3) * (y + 3)"}));
    const auto edited = forest({"(x + 4) * (y + 3)"});
    EXPECT_FALSE(prog.tryPatch(edited));
    prog.recompile(edited);
    expectMatchesFresh(prog, edited, "shared-const split");
}

TEST(ProgramEdit, RefusesStructuralEdit)
{
    CompiledProgram prog(forest({"x * y + 3"}));
    const auto edited = forest({"x * y + 3 + x"});
    EXPECT_FALSE(prog.tryPatch(edited));
}

TEST(ProgramEdit, RefusesAllConstantForest)
{
    // A changed all-constant output folds at compile time; the tape
    // holds the folded value, not the leaves, so patching by leaf
    // value cannot reproduce a fresh compile.
    CompiledProgram prog(forest({"2 + 3", "x + 1"}));
    const auto edited = forest({"2 + 5", "x + 1"});
    EXPECT_FALSE(prog.tryPatch(edited));
    prog.recompile(edited);
    expectMatchesFresh(prog, edited, "all-const fold");
}

TEST(ProgramEdit, RecompileReusesUntouchedCone)
{
    // First compile interns the whole forest into the warm builder;
    // an edit touching one summand must re-intern only its cone.
    CompiledProgram prog(forest(
        {"log(a + b) * exp(c) + d ^ 3", "log(a + b) * 2"}));
    const auto edited = forest(
        {"log(a + b) * exp(c) + exp(d)", "log(a + b) * 2"});
    EXPECT_FALSE(prog.tryPatch(edited)); // Structural.
    const std::size_t cone = prog.recompile(edited);
    // log(a+b), exp(c), their product and the second output are all
    // reused; only the exp(d) node and the final add are fresh.
    EXPECT_LE(cone, 3u);
    expectMatchesFresh(prog, edited, "cone recompile");
}

TEST(ProgramEdit, RecompileAfterArgChangeStaysCorrect)
{
    // Adding an argument invalidates baked-in Arg indices; recompile
    // must detect it, reset the builder, and still match fresh.
    CompiledProgram prog(forest({"x + y"}));
    const auto edited = forest({"x + y + z"});
    EXPECT_FALSE(prog.tryPatch(edited));
    prog.recompile(edited);
    expectMatchesFresh(prog, edited, "arg-set change");

    const auto back = forest({"x * y"});
    prog.recompile(back);
    expectMatchesFresh(prog, back, "arg-set shrink");
}

TEST(ProgramEdit, PatchAfterRecompileStillWorks)
{
    CompiledProgram prog(forest({"x * 3 + y"}));
    const auto restructured = forest({"x * 3 + y * 2"});
    prog.recompile(restructured);
    const auto patched = forest({"x * 5 + y * 2"});
    ASSERT_TRUE(prog.tryPatch(patched));
    expectMatchesFresh(prog, patched, "patch after recompile");
}

TEST(ProgramEdit, MovedProgramRemainsEditable)
{
    // The warm builder holds interior pointers; move construction
    // and assignment must keep patch/recompile working.
    CompiledProgram a(forest({"x * 3 + y"}));
    CompiledProgram b = std::move(a);
    const auto patched = forest({"x * 7 + y"});
    ASSERT_TRUE(b.tryPatch(patched));
    expectMatchesFresh(b, patched, "patch after move");

    CompiledProgram c(forest({"q + 1"}));
    c = std::move(b);
    const auto edited = forest({"x * 7 + y + 1"});
    c.recompile(edited);
    expectMatchesFresh(c, edited, "recompile after move-assign");
}

} // namespace
