/**
 * @file
 * CompiledProgram tests: the fused multi-output tape must be
 * bit-identical (0 ULP) to evaluating each output through its own
 * CompiledExpr -- on random expression forests (including NaN/Inf
 * and signed-zero inputs), on the full Hill-Marty model, and through
 * the diagnostic tier -- while the optimizer's op-count reductions
 * on Hill-Marty are pinned so CSE regressions are caught.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <vector>

#include "model/hill_marty.hh"
#include "simd/dispatch.hh"
#include "symbolic/compile.hh"
#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/program.hh"
#include "symbolic/workspace.hh"
#include "util/rng.hh"

using namespace ar::symbolic;

namespace
{

std::uint64_t
bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/**
 * The program's equivalence contract: bit-identical, NaN payloads
 * included.  CompiledExpr lowers literal-exponent powers exactly
 * like the program's optimizer (glibc's pow is not correctly
 * rounded, so x*x and 1.0/x are not interchangeable with pow at the
 * last ulp), which keeps the fused and per-output tapes on one
 * shared definition of every operation.
 */
#define ASSERT_BITEQ(got, want, msg)                                   \
    ASSERT_EQ(bits(got), bits(want))                                   \
        << msg << ": got " << (got) << " want " << (want)

/** Random expression generator over a fixed symbol pool (mirrors
 * test_random_expr.cc, plus exponents eligible for strength
 * reduction and explicit neutral elements to exercise pruning). */
class ForestGen
{
  public:
    explicit ForestGen(ar::util::Rng &rng) : rng(rng) {}

    ExprPtr
    gen(int depth)
    {
        if (depth <= 0 || rng.uniform() < 0.3)
            return leaf();
        switch (rng.uniformInt(8)) {
          case 0:
            return Expr::add(gen(depth - 1), gen(depth - 1));
          case 1:
            return Expr::sub(gen(depth - 1), gen(depth - 1));
          case 2:
            return Expr::mul(gen(depth - 1), gen(depth - 1));
          case 3:
            return Expr::div(gen(depth - 1), gen(depth - 1));
          case 4:
            return Expr::pow(gen(depth - 1),
                             Expr::constant(smallExponent()));
          case 5:
            return Expr::max({gen(depth - 1), gen(depth - 1)});
          case 6:
            return Expr::min({gen(depth - 1), gen(depth - 1)});
          default:
            // Explicit neutral elements so the pruning rules fire.
            return rng.uniform() < 0.5
                       ? Expr::add(gen(depth - 1),
                                   Expr::constant(0.0))
                       : Expr::mul(gen(depth - 1),
                                   Expr::constant(1.0));
        }
    }

    /** A forest sharing the symbol pool (and thus subexpressions). */
    std::vector<ExprPtr>
    forest(std::size_t outputs, int depth)
    {
        std::vector<ExprPtr> f;
        for (std::size_t i = 0; i < outputs; ++i)
            f.push_back(gen(depth));
        return f;
    }

    double
    value(bool specials)
    {
        if (specials && rng.uniform() < 0.15) {
            static const double kSpecials[] = {
                std::numeric_limits<double>::quiet_NaN(),
                std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity(),
                0.0,
                -0.0,
            };
            return kSpecials[rng.uniformInt(5)];
        }
        return rng.uniform(-3.0, 3.0);
    }

  private:
    ExprPtr
    leaf()
    {
        if (rng.uniform() < 0.55) {
            static const char *names[] = {"a", "b", "x", "y"};
            return Expr::symbol(names[rng.uniformInt(4)]);
        }
        return Expr::constant(
            std::round(rng.uniform(-2.0, 4.0) * 4.0) / 4.0);
    }

    double
    smallExponent()
    {
        static const double exps[] = {-2.0, -1.0, 0.0,
                                      0.5,  1.0,  2.0, 3.0};
        return exps[rng.uniformInt(7)];
    }

    ar::util::Rng &rng;
};

/** Evaluate every output of @p forest per-output via CompiledExpr
 * and fused via CompiledProgram (scalar and batch), asserting
 * bitwise agreement on every trial. */
void
expectForestBitIdentical(const std::vector<ExprPtr> &forest,
                         ForestGen &gen, std::size_t trials,
                         bool specials)
{
    // Bitwise batch-vs-scalar equality is a Level::Scalar contract:
    // vector kernels follow the ULP policy of DESIGN.md section 5.6
    // and may order both-NaN operand propagation differently.
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    CompiledProgram prog(forest);
    const auto &names = prog.argNames();

    std::vector<std::vector<double>> columns(
        names.size(), std::vector<double>(trials));
    for (auto &col : columns)
        for (auto &v : col)
            v = gen.value(specials);
    std::vector<BatchArg> bargs;
    for (const auto &col : columns)
        bargs.push_back({col.data(), false});

    std::vector<std::vector<double>> fused(
        forest.size(), std::vector<double>(trials));
    std::vector<double *> outs;
    for (auto &row : fused)
        outs.push_back(row.data());
    prog.evalBatch(bargs, trials, outs);

    std::vector<CompiledExpr> naive;
    for (const auto &e : forest)
        naive.emplace_back(e);

    std::vector<double> args(names.size());
    std::vector<double> scalar_out(forest.size());
    for (std::size_t t = 0; t < trials; ++t) {
        for (std::size_t a = 0; a < names.size(); ++a)
            args[a] = columns[a][t];
        prog.eval(args, scalar_out);
        for (std::size_t o = 0; o < forest.size(); ++o) {
            std::vector<double> sub;
            for (const auto &name : naive[o].argNames())
                sub.push_back(args[prog.argIndex(name)]);
            const double want = naive[o].eval(sub);
            ASSERT_BITEQ(scalar_out[o], want,
                         "scalar output " << o << " trial " << t
                                          << " of "
                                          << toString(forest[o]));
            ASSERT_BITEQ(fused[o][t], want,
                         "batch output " << o << " trial " << t
                                         << " of "
                                         << toString(forest[o]));
        }
    }
}

} // namespace

TEST(CompiledProgram, MatchesPerOutputTapeOnRandomForests)
{
    // The headline property: fused evaluation is 0 ULP from the
    // per-output tapes on ~1k random argument vectors per phase.
    ar::util::Rng rng(0x5eed);
    ForestGen gen(rng);
    for (int i = 0; i < 40; ++i) {
        const auto forest = gen.forest(1 + i % 5, 4);
        expectForestBitIdentical(forest, gen, 32, false);
    }
}

TEST(CompiledProgram, MatchesPerOutputTapeWithNaNAndInfInputs)
{
    // Same property with NaN, +-Inf and signed-zero inputs: the
    // optimizer may only rewrite where IEEE special cases agree
    // bitwise (this is what rules out pow(x,0.5) -> sqrt(x)).
    ar::util::Rng rng(0x0ddb);
    ForestGen gen(rng);
    for (int i = 0; i < 40; ++i) {
        const auto forest = gen.forest(1 + i % 5, 4);
        expectForestBitIdentical(forest, gen, 32, true);
    }
}

TEST(CompiledProgram, BitIdenticalOnFullHillMarty)
{
    // Every derived quantity of the Hill-Marty system, fused into
    // one program, against its own tape -- the model the Monte-Carlo
    // acceptance guarantees are stated on.
    static const char *kOutputs[] = {"Speedup",     "T_seq",
                                     "T_par",       "P_serial",
                                     "P_parallel",  "N_total",
                                     "A_total"};
    for (const std::size_t k : {1u, 4u}) {
        auto sys = ar::model::buildHillMartySystem(k);
        std::vector<ExprPtr> forest;
        for (const char *name : kOutputs)
            forest.push_back(sys.resolve(name));
        ar::util::Rng rng(0x417 + k);
        ForestGen gen(rng);
        expectForestBitIdentical(forest, gen, 64, false);
    }
}

TEST(CompiledProgram, DiagnosisMatchesPerOutputTape)
{
    // The diagnostic tier must attribute faults exactly like the
    // unfused path: same fault kind, same op index, same label,
    // same (possibly non-finite) value.
    ar::util::Rng rng(0xd1a6);
    ForestGen gen(rng);
    int faulted = 0;
    for (int i = 0; i < 150; ++i) {
        const auto forest = gen.forest(3, 4);
        CompiledProgram prog(forest);
        std::vector<double> args(prog.argNames().size());
        for (auto &v : args)
            v = gen.value(true);
        for (std::size_t o = 0; o < forest.size(); ++o) {
            CompiledExpr naive(forest[o]);
            std::vector<double> sub;
            for (const auto &name : naive.argNames())
                sub.push_back(args[prog.argIndex(name)]);
            EvalFault want_fault, got_fault;
            const double want = naive.evalDiagnosed(sub, want_fault);
            const double got =
                prog.evalDiagnosed(o, args, got_fault);
            ASSERT_BITEQ(got, want, toString(forest[o]));
            ASSERT_EQ(got_fault.faulted, want_fault.faulted);
            if (want_fault.faulted) {
                ++faulted;
                EXPECT_EQ(got_fault.kind, want_fault.kind);
                EXPECT_EQ(got_fault.op_index, want_fault.op_index);
                EXPECT_EQ(got_fault.op, want_fault.op);
            }
        }
    }
    EXPECT_GT(faulted, 20); // the special values must actually bite
}

TEST(CompiledProgram, CsePinnedOnHillMartySpeedup)
{
    // Single output: CSE folds the repeated argument pushes and the
    // strength reduction turns the three x^-1 divisions into
    // reciprocals.  Pinned so optimizer regressions are loud.
    auto sys = ar::model::buildHillMartySystem(4);
    CompiledProgram prog({sys.resolve("Speedup")});
    EXPECT_EQ(prog.numOutputs(), 1u);
    // The naive tape pushes every leaf once per use; the fused tape
    // materialises each argument and each shared subtree once.
    EXPECT_EQ(prog.stats().naive_ops, 49u);
    EXPECT_EQ(prog.tapeLength(), 36u);
    EXPECT_LE(prog.stats().registers, 16u);
}

TEST(CompiledProgram, CsePinnedOnHillMartyForest)
{
    // Multi-output: T_seq/T_par/P_* are literal subtrees of Speedup,
    // so fusing all seven outputs should cost only a handful of ops
    // beyond Speedup alone.
    static const char *kOutputs[] = {"Speedup",     "T_seq",
                                     "T_par",       "P_serial",
                                     "P_parallel",  "N_total",
                                     "A_total"};
    auto sys = ar::model::buildHillMartySystem(4);
    std::vector<ExprPtr> forest;
    for (const char *name : kOutputs)
        forest.push_back(sys.resolve(name));
    CompiledProgram fused(forest);
    CompiledProgram speedup_only({sys.resolve("Speedup")});
    EXPECT_EQ(fused.stats().naive_ops, 144u);
    EXPECT_EQ(fused.tapeLength(), 45u);
    // A_total is the only subtree Speedup does not embed; everything
    // else must come from sharing, not recompilation.
    EXPECT_LE(fused.tapeLength(),
              speedup_only.tapeLength() + 2 * 4 + 6);
}

TEST(CompiledProgram, StrengthReductionRules)
{
    // pow(x, 0) folds to exactly 1.0 and pow(x, 1) to x for every
    // input, NaN included -- IEEE 754 mandates both, so they are
    // checked against std::pow directly.  pow(x, 2) and pow(x, -1)
    // lower to x*x and 1/x; glibc's pow is NOT correctly rounded
    // (~1 in 2400 / ~1 in 600 random inputs differ by 1 ulp from the
    // lowered form), so those are checked against the reference
    // tape, which lowers the same literal-exponent shapes.
    const auto x = Expr::symbol("x");
    CompiledProgram prog({Expr::pow(x, Expr::constant(0.0)),
                          Expr::pow(x, Expr::constant(1.0)),
                          Expr::pow(x, Expr::constant(2.0)),
                          Expr::pow(x, Expr::constant(-1.0)),
                          Expr::pow(x, Expr::constant(0.5))});
    static const double kInputs[] = {
        3.0, -2.5, 0.0, -0.0, 1e300, -1e300,
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
    };
    std::vector<double> out(5);
    for (const double v : kInputs) {
        prog.eval(std::vector<double>{v}, out);
        ASSERT_BITEQ(out[0], std::pow(v, 0.0), "pow(x,0) at " << v);
        if (!std::isnan(v)) // payload aside, pow(NaN,1) is NaN
            ASSERT_BITEQ(out[1], std::pow(v, 1.0),
                         "pow(x,1) at " << v);
        for (std::size_t o = 0; o < 5; ++o) {
            CompiledExpr naive(prog.source(o));
            const double want =
                naive.argNames().empty()
                    ? naive.eval({})
                    : naive.eval(std::vector<double>{v});
            ASSERT_BITEQ(out[o], want,
                         "output " << o << " at " << v);
        }
    }

    // A computed exponent that merely equals 2.0 at run time must
    // keep pow() semantics: the lowering is keyed on the source
    // shape, not the folded value.
    CompiledProgram computed(
        {Expr::pow(x, Expr::add(Expr::constant(1.0),
                                Expr::constant(1.0)))});
    std::vector<double> cout(1);
    for (const double v : kInputs) {
        computed.eval(std::vector<double>{v}, cout);
        if (!std::isnan(v))
            ASSERT_BITEQ(cout[0], std::pow(v, 2.0),
                         "computed exponent at " << v);
    }
}

TEST(CompiledProgram, NeutralElementPruningPreservesZeroSigns)
{
    // x + 0.0 canonicalises -0.0 to +0.0; x + -0.0 and x * 1.0 are
    // exact identities.  The pruner must preserve all three.
    const auto x = Expr::symbol("x");
    CompiledProgram prog({
        parseExpr("x + 0.0"),
        Expr::add(x, Expr::constant(-0.0)),
        parseExpr("x * 1.0"),
        Expr::add({x, Expr::constant(0.0), Expr::symbol("y"),
                   Expr::constant(-0.0)}),
    });
    CompiledExpr n0(prog.source(0)), n1(prog.source(1)),
        n2(prog.source(2)), n3(prog.source(3));
    for (const double v : {1.5, -0.0, 0.0, -2.0}) {
        for (const double w : {-0.0, 0.0, 2.0}) {
            const double args[] = {v, w};
            std::vector<double> out(4);
            prog.eval(args, out);
            ASSERT_BITEQ(out[0], n0.eval({args, 1}), "x+0 " << v);
            ASSERT_BITEQ(out[1], n1.eval({args, 1}), "x+-0 " << v);
            ASSERT_BITEQ(out[2], n2.eval({args, 1}), "x*1 " << v);
            ASSERT_BITEQ(out[3], n3.eval({args, 2}),
                         "x+0+y+-0 " << v << "," << w);
        }
    }
}

TEST(CompiledProgram, HandlesDegenerateOutputs)
{
    // Bare symbols, constants, and duplicate outputs exercise the
    // root-plumbing epilogue (argument roots and shared roots are
    // copied, everything else writes its column directly).
    const auto e = parseExpr("x * y + 2");
    CompiledProgram prog({Expr::symbol("x"), Expr::constant(7.5), e,
                          e, Expr::symbol("x")});
    ASSERT_EQ(prog.numOutputs(), 5u);
    ASSERT_EQ(prog.argNames(),
              (std::vector<std::string>{"x", "y"}));

    constexpr std::size_t kTrials = 9;
    std::vector<double> xs(kTrials), ys(kTrials);
    for (std::size_t t = 0; t < kTrials; ++t) {
        xs[t] = 0.5 * static_cast<double>(t);
        ys[t] = 2.0 - static_cast<double>(t);
    }
    const std::vector<BatchArg> bargs{{xs.data(), false},
                                      {ys.data(), false}};
    std::vector<std::vector<double>> rows(
        5, std::vector<double>(kTrials));
    std::vector<double *> outs;
    for (auto &row : rows)
        outs.push_back(row.data());
    prog.evalBatch(bargs, kTrials, outs);
    for (std::size_t t = 0; t < kTrials; ++t) {
        EXPECT_EQ(rows[0][t], xs[t]);
        EXPECT_EQ(rows[1][t], 7.5);
        EXPECT_EQ(rows[2][t], xs[t] * ys[t] + 2.0);
        EXPECT_EQ(rows[3][t], rows[2][t]);
        EXPECT_EQ(rows[4][t], xs[t]);
    }

    // Zero trials is a no-op, not an error.
    prog.evalBatch(bargs, 0, outs);
}

TEST(CompiledProgram, BroadcastArgumentsMatchColumns)
{
    const auto forest = std::vector<ExprPtr>{
        parseExpr("a * x + b"), parseExpr("max(a, x) / b")};
    CompiledProgram prog(forest);
    constexpr std::size_t kTrials = 16;
    const double a_fixed = 1.25, b_fixed = -2.0;
    std::vector<double> xs(kTrials);
    for (std::size_t t = 0; t < kTrials; ++t)
        xs[t] = 0.3 * static_cast<double>(t) - 1.0;

    const std::vector<BatchArg> bargs{{&a_fixed, true},
                                      {&b_fixed, true},
                                      {xs.data(), false}};
    std::vector<std::vector<double>> rows(
        2, std::vector<double>(kTrials));
    prog.evalBatch(bargs, kTrials,
                   std::vector<double *>{rows[0].data(),
                                         rows[1].data()});
    for (std::size_t t = 0; t < kTrials; ++t) {
        const std::vector<double> args{a_fixed, b_fixed, xs[t]};
        std::vector<double> want(2);
        prog.eval(args, want);
        ASSERT_BITEQ(rows[0][t], want[0], "broadcast trial " << t);
        ASSERT_BITEQ(rows[1][t], want[1], "broadcast trial " << t);
    }
}

/**
 * Regression: batch evaluation aliases non-broadcast argument
 * registers to the caller's input columns for the WHOLE tape, so the
 * register allocator must never hand an argument's register to a
 * scratch value -- not even in the gap before the Arg op's tape
 * position.  This forest (the Sobol pick-freeze shape) used to place
 * an intermediate product in x!B's register, clobbering the caller's
 * column and corrupting every output that read x!B afterwards.
 */
TEST(CompiledProgram, BatchNeverWritesCallerInputColumns)
{
    // Pinned scalar: the trailing bitwise batch-vs-eval check is a
    // Level::Scalar contract (vector log may differ by 1 ULP).
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    const auto forest = std::vector<ExprPtr>{
        parseExpr("log(x) * y + x / (y + 4)"),
        parseExpr("log(xB) * yB + xB / (yB + 4)"),
        parseExpr("log(xB) * y + xB / (y + 4)"),
        parseExpr("log(x) * yB + x / (yB + 4)")};
    CompiledProgram prog(forest);
    ASSERT_EQ(prog.argNames(),
              (std::vector<std::string>{"x", "xB", "y", "yB"}));

    constexpr std::size_t kTrials = 64;
    std::vector<std::vector<double>> cols(
        4, std::vector<double>(kTrials));
    ar::util::Rng rng(99);
    for (auto &col : cols)
        for (auto &v : col)
            v = rng.uniform(0.5, 12.0);
    const auto saved = cols;

    std::vector<BatchArg> bargs;
    for (const auto &col : cols)
        bargs.push_back({col.data(), false});
    std::vector<std::vector<double>> rows(
        4, std::vector<double>(kTrials));
    prog.evalBatch(bargs, kTrials,
                   std::vector<double *>{rows[0].data(),
                                         rows[1].data(),
                                         rows[2].data(),
                                         rows[3].data()});

    // Input columns must be untouched ...
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_EQ(cols[d], saved[d]) << "input column " << d;
    // ... and every output must match the scalar tier computed from
    // the original values.
    for (std::size_t t = 0; t < kTrials; ++t) {
        const std::vector<double> args{saved[0][t], saved[1][t],
                                       saved[2][t], saved[3][t]};
        std::vector<double> want(4);
        prog.eval(args, want);
        for (std::size_t o = 0; o < 4; ++o)
            ASSERT_BITEQ(rows[o][t], want[o],
                         "output " << o << " trial " << t);
    }
}

TEST(CompiledProgram, ExplicitWorkspaceReusesAllocation)
{
    auto sys = ar::model::buildHillMartySystem(3);
    CompiledProgram prog({sys.resolve("Speedup"),
                          sys.resolve("T_seq")});
    constexpr std::size_t kTrials = 64;
    std::vector<std::vector<double>> columns(
        prog.argNames().size(),
        std::vector<double>(kTrials, 2.0));
    std::vector<BatchArg> bargs;
    for (const auto &col : columns)
        bargs.push_back({col.data(), false});
    std::vector<std::vector<double>> rows(
        2, std::vector<double>(kTrials));
    const std::vector<double *> outs{rows[0].data(),
                                     rows[1].data()};

    EvalWorkspace ws;
    prog.evalBatch(bargs, kTrials, outs, ws);
    EXPECT_EQ(ws.inUse(), 0u);
    const auto cap = ws.capacity();
    EXPECT_GT(cap, 0u);
    const auto first = rows[0];
    for (int i = 0; i < 10; ++i)
        prog.evalBatch(bargs, kTrials, outs, ws);
    EXPECT_EQ(ws.capacity(), cap); // steady state: no growth
    EXPECT_EQ(rows[0], first);
}

TEST(EvalWorkspace, WindowsNestAndSurviveGrowth)
{
    EvalWorkspace ws;
    double *outer = ws.acquire(4);
    for (int i = 0; i < 4; ++i)
        outer[i] = 10.0 + i;
    // A much larger inner window forces reallocation; the outer
    // window's contents must survive (the evaluators rely on this
    // for nested evaluation on one thread).
    double *inner = ws.acquire(4096);
    inner[0] = -1.0;
    ws.release(4096);
    outer = ws.acquire(0) - 4; // current top is the outer window end
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(outer[i], 10.0 + i);
    ws.release(0);
    ws.release(4);
    EXPECT_EQ(ws.inUse(), 0u);
}

TEST(CompiledExpr, ExplicitWorkspaceMatchesDefault)
{
    auto sys = ar::model::buildHillMartySystem(2);
    CompiledExpr fn(sys.resolve("Speedup"));
    std::vector<double> args(fn.argNames().size(), 2.0);
    EvalWorkspace ws;
    const double a = fn.eval(args);
    const double b = fn.eval(args, ws);
    ASSERT_BITEQ(a, b, "workspace eval");
    EXPECT_EQ(ws.inUse(), 0u);

    constexpr std::size_t kTrials = 32;
    std::vector<std::vector<double>> columns(
        args.size(), std::vector<double>(kTrials, 2.0));
    std::vector<BatchArg> bargs;
    for (const auto &col : columns)
        bargs.push_back({col.data(), false});
    std::vector<double> out1(kTrials), out2(kTrials);
    fn.evalBatch(bargs, kTrials, out1.data());
    fn.evalBatch(bargs, kTrials, out2.data(), ws);
    EXPECT_EQ(out1, out2);
    EXPECT_EQ(ws.inUse(), 0u);
}
