/**
 * @file
 * Unit tests for the back-transformed Box-Cox Gaussian distribution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/boxcox_dist.hh"
#include "math/numeric.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace d = ar::dist;
using ar::stats::BoxCoxTransform;

TEST(BoxCoxGaussian, LambdaZeroIsLogNormal)
{
    // With lambda = 0 the distribution is exactly LogNormal(mu,
    // sigma).
    d::BoxCoxGaussian dist(BoxCoxTransform{0.0, 0.0}, 0.5, 0.3);
    EXPECT_NEAR(dist.mean(), std::exp(0.5 + 0.5 * 0.09), 0.01);
    EXPECT_NEAR(dist.quantile(0.5), std::exp(0.5), 1e-9);
    EXPECT_NEAR(dist.cdf(std::exp(0.5)), 0.5, 1e-9);
}

TEST(BoxCoxGaussian, LambdaOneIsShiftedGaussian)
{
    // lambda = 1: y = x - 1, so x = y + 1 ~ N(mu + 1, sigma).
    d::BoxCoxGaussian dist(BoxCoxTransform{1.0, 0.0}, 2.0, 0.5);
    EXPECT_NEAR(dist.mean(), 3.0, 1e-6);
    EXPECT_NEAR(dist.stddev(), 0.5, 1e-3);
    EXPECT_NEAR(dist.quantile(0.5), 3.0, 1e-9);
}

TEST(BoxCoxGaussian, CdfQuantileRoundTrip)
{
    d::BoxCoxGaussian dist(BoxCoxTransform{0.4, 0.0}, 1.5, 0.4);
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-9);
}

TEST(BoxCoxGaussian, SampleMomentsMatchQuadratureMoments)
{
    d::BoxCoxGaussian dist(BoxCoxTransform{0.25, 0.0}, 2.0, 0.3);
    ar::util::Rng rng(111);
    const auto xs = dist.sampleMany(200000, rng);
    EXPECT_NEAR(ar::math::mean(xs), dist.mean(),
                0.01 * dist.mean());
    EXPECT_NEAR(ar::math::stddev(xs), dist.stddev(),
                0.05 * dist.stddev());
}

TEST(BoxCoxGaussian, SamplesRespectDomain)
{
    // With a shift, the support floor is -shift.
    d::BoxCoxGaussian dist(BoxCoxTransform{0.5, 2.0}, 1.0, 1.0);
    ar::util::Rng rng(112);
    for (int i = 0; i < 5000; ++i)
        ASSERT_GE(dist.sample(rng), -2.0);
}

TEST(BoxCoxGaussian, CdfZeroBelowSupport)
{
    d::BoxCoxGaussian dist(BoxCoxTransform{0.0, 0.0}, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
}

TEST(BoxCoxGaussian, EdgeAtomForPositiveLambda)
{
    // lambda = 2 with large sigma: some Gaussian mass maps below the
    // image floor and clamps to x = 0.
    d::BoxCoxGaussian dist(BoxCoxTransform{2.0, 0.0}, 0.0, 2.0);
    EXPECT_GT(dist.cdf(0.0), 0.0);
    EXPECT_LT(dist.cdf(0.0), 1.0);
}

TEST(BoxCoxGaussian, InvalidSigmaIsFatal)
{
    EXPECT_THROW(
        d::BoxCoxGaussian(BoxCoxTransform{1.0, 0.0}, 0.0, 0.0),
        ar::util::FatalError);
}
