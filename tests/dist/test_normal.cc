/**
 * @file
 * Unit tests for Normal and TruncatedNormal.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/normal.hh"
#include "math/numeric.hh"
#include "util/logging.hh"

namespace d = ar::dist;

TEST(Normal, Moments)
{
    d::Normal dist(3.0, 2.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 3.0);
    EXPECT_DOUBLE_EQ(dist.stddev(), 2.0);
}

TEST(Normal, SampleMomentsMatch)
{
    d::Normal dist(-1.0, 0.5);
    ar::util::Rng rng(61);
    const auto xs = dist.sampleMany(100000, rng);
    EXPECT_NEAR(ar::math::mean(xs), -1.0, 0.01);
    EXPECT_NEAR(ar::math::stddev(xs), 0.5, 0.01);
}

TEST(Normal, CdfQuantileRoundTrip)
{
    d::Normal dist(5.0, 3.0);
    for (double p : {0.01, 0.2, 0.5, 0.8, 0.99})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-10);
}

TEST(Normal, PdfSymmetricAboutMean)
{
    d::Normal dist(2.0, 1.0);
    EXPECT_NEAR(dist.pdf(1.0), dist.pdf(3.0), 1e-15);
}

TEST(Normal, NonPositiveSigmaIsFatal)
{
    EXPECT_THROW(d::Normal(0.0, 0.0), ar::util::FatalError);
    EXPECT_THROW(d::Normal(0.0, -1.0), ar::util::FatalError);
}

TEST(TruncatedNormal, SamplesRespectBounds)
{
    d::TruncatedNormal dist(0.0, 1.0, -0.5, 2.0);
    ar::util::Rng rng(62);
    for (int i = 0; i < 5000; ++i) {
        const double x = dist.sample(rng);
        ASSERT_GE(x, -0.5);
        ASSERT_LE(x, 2.0);
    }
}

TEST(TruncatedNormal, ClosedFormMomentsMatchSamples)
{
    d::TruncatedNormal dist(1.0, 2.0, 0.0, 3.0);
    ar::util::Rng rng(63);
    const auto xs = dist.sampleMany(200000, rng);
    EXPECT_NEAR(ar::math::mean(xs), dist.mean(), 0.01);
    EXPECT_NEAR(ar::math::stddev(xs), dist.stddev(), 0.01);
}

TEST(TruncatedNormal, MildTruncationKeepsParentMoments)
{
    d::TruncatedNormal dist(0.0, 1.0, -50.0, 50.0);
    EXPECT_NEAR(dist.mean(), 0.0, 1e-9);
    EXPECT_NEAR(dist.stddev(), 1.0, 1e-9);
}

TEST(TruncatedNormal, OneSidedTruncationShiftsMean)
{
    d::TruncatedNormal dist(0.0, 1.0, 0.0, 100.0);
    // Half-normal mean = sqrt(2/pi).
    EXPECT_NEAR(dist.mean(), std::sqrt(2.0 / M_PI), 1e-6);
}

TEST(TruncatedNormal, CdfAtBounds)
{
    d::TruncatedNormal dist(0.0, 1.0, -1.0, 1.0);
    EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 1.0);
    EXPECT_NEAR(dist.cdf(0.0), 0.5, 1e-12);
}

TEST(TruncatedNormal, QuantileRoundTrip)
{
    d::TruncatedNormal dist(2.0, 1.5, 0.5, 4.0);
    for (double p : {0.05, 0.3, 0.5, 0.7, 0.95})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-9);
}

TEST(TruncatedNormal, PdfZeroOutsideSupport)
{
    d::TruncatedNormal dist(0.0, 1.0, -1.0, 1.0);
    EXPECT_DOUBLE_EQ(dist.pdf(-2.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.pdf(2.0), 0.0);
    EXPECT_GT(dist.pdf(0.0), 0.0);
}

TEST(TruncatedNormal, NoMassRangeIsFatal)
{
    // [50, 60] sigma away: numerically zero mass.
    EXPECT_THROW(d::TruncatedNormal(0.0, 1.0, 50.0, 60.0),
                 ar::util::FatalError);
}

TEST(TruncatedNormal, InvalidArgsAreFatal)
{
    EXPECT_THROW(d::TruncatedNormal(0.0, -1.0, 0.0, 1.0),
                 ar::util::FatalError);
    EXPECT_THROW(d::TruncatedNormal(0.0, 1.0, 1.0, 0.0),
                 ar::util::FatalError);
}
