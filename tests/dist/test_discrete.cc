/**
 * @file
 * Unit and property tests for Bernoulli, Binomial, and
 * NormalizedBinomial.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/discrete.hh"
#include "math/numeric.hh"
#include "util/logging.hh"

namespace d = ar::dist;

TEST(Bernoulli, MomentsAndSupport)
{
    d::Bernoulli dist(0.3);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.3);
    EXPECT_NEAR(dist.stddev(), std::sqrt(0.21), 1e-12);
    ar::util::Rng rng(81);
    for (int i = 0; i < 1000; ++i) {
        const double x = dist.sample(rng);
        ASSERT_TRUE(x == 0.0 || x == 1.0);
    }
}

TEST(Bernoulli, SampleFrequencyMatchesP)
{
    d::Bernoulli dist(0.7);
    ar::util::Rng rng(82);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += dist.sample(rng);
    EXPECT_NEAR(acc / n, 0.7, 0.01);
}

TEST(Bernoulli, CdfSteps)
{
    d::Bernoulli dist(0.25);
    EXPECT_DOUBLE_EQ(dist.cdf(-0.1), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.75);
    EXPECT_DOUBLE_EQ(dist.cdf(0.9), 0.75);
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 1.0);
}

TEST(Bernoulli, SampleFromUniformMonotone)
{
    d::Bernoulli dist(0.4);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.1), 0.0);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.59), 0.0);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.61), 1.0);
}

TEST(Bernoulli, DegenerateEndpoints)
{
    ar::util::Rng rng(83);
    d::Bernoulli never(0.0), always(1.0);
    EXPECT_DOUBLE_EQ(never.sample(rng), 0.0);
    EXPECT_DOUBLE_EQ(always.sample(rng), 1.0);
}

TEST(Bernoulli, InvalidPIsFatal)
{
    EXPECT_THROW(d::Bernoulli(-0.1), ar::util::FatalError);
    EXPECT_THROW(d::Bernoulli(1.1), ar::util::FatalError);
}

TEST(Binomial, PmfSumsToOne)
{
    d::Binomial dist(20, 0.35);
    double total = 0.0;
    for (unsigned k = 0; k <= 20; ++k)
        total += dist.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Binomial, CdfMatchesPmfPrefixSums)
{
    d::Binomial dist(15, 0.6);
    double acc = 0.0;
    for (unsigned k = 0; k <= 15; ++k) {
        acc += dist.pmf(k);
        EXPECT_NEAR(dist.cdf(static_cast<double>(k)), acc, 1e-10)
            << "k=" << k;
    }
}

TEST(Binomial, QuantileIsInverseOfCdf)
{
    d::Binomial dist(30, 0.4);
    for (double q : {0.01, 0.2, 0.5, 0.8, 0.99}) {
        const double k = dist.quantile(q);
        // Smallest k with CDF(k) >= q.
        EXPECT_GE(dist.cdf(k), q - 1e-9);
        if (k >= 1.0) {
            EXPECT_LT(dist.cdf(k - 1.0), q + 1e-9);
        }
    }
}

TEST(Binomial, SampleMomentsMatch)
{
    d::Binomial dist(50, 0.3);
    ar::util::Rng rng(84);
    const auto xs = dist.sampleMany(100000, rng);
    EXPECT_NEAR(ar::math::mean(xs), 15.0, 0.05);
    EXPECT_NEAR(ar::math::stddev(xs), std::sqrt(50 * 0.3 * 0.7), 0.05);
}

TEST(Binomial, LargeTrialCountStillSamplesAccurately)
{
    // The regime of the paper's f model: M in the thousands.
    d::Binomial dist(3600, 0.9);
    ar::util::Rng rng(85);
    const auto xs = dist.sampleMany(50000, rng);
    EXPECT_NEAR(ar::math::mean(xs), 3240.0, 1.0);
    EXPECT_NEAR(ar::math::stddev(xs), std::sqrt(3600 * 0.09), 0.3);
}

TEST(Binomial, ExtremePValues)
{
    ar::util::Rng rng(86);
    d::Binomial zero(10, 0.0), one(10, 1.0);
    EXPECT_DOUBLE_EQ(zero.sample(rng), 0.0);
    EXPECT_DOUBLE_EQ(one.sample(rng), 10.0);
    EXPECT_DOUBLE_EQ(zero.cdf(0.0), 1.0);
    EXPECT_DOUBLE_EQ(one.cdf(9.0), 0.0);
}

TEST(Binomial, SamplesStayInSupport)
{
    d::Binomial dist(12, 0.5);
    ar::util::Rng rng(87);
    for (int i = 0; i < 10000; ++i) {
        const double x = dist.sample(rng);
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 12.0);
        ASSERT_DOUBLE_EQ(x, std::floor(x));
    }
}

TEST(Binomial, ZeroTrialsIsFatal)
{
    EXPECT_THROW(d::Binomial(0, 0.5), ar::util::FatalError);
}

TEST(NormalizedBinomial, SupportIsUnitInterval)
{
    d::NormalizedBinomial dist(50, 0.9);
    ar::util::Rng rng(88);
    for (int i = 0; i < 5000; ++i) {
        const double x = dist.sample(rng);
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0);
    }
}

TEST(NormalizedBinomial, MomentsAreScaled)
{
    d::NormalizedBinomial dist(100, 0.4);
    EXPECT_NEAR(dist.mean(), 0.4, 1e-12);
    EXPECT_NEAR(dist.stddev(), std::sqrt(0.4 * 0.6 / 100.0), 1e-12);
}

TEST(NormalizedBinomial, FromMeanStddevHitsTargets)
{
    // Table 3: f centred on 0.9 with sd sigma*(1-f), sigma = 0.2.
    const auto dist =
        d::NormalizedBinomial::fromMeanStddev(0.9, 0.2 * 0.1);
    EXPECT_NEAR(dist.mean(), 0.9, 1e-12);
    EXPECT_NEAR(dist.stddev(), 0.02, 0.002);
}

TEST(NormalizedBinomial, FromMeanStddevInvalidIsFatal)
{
    EXPECT_THROW(d::NormalizedBinomial::fromMeanStddev(0.0, 0.1),
                 ar::util::FatalError);
    EXPECT_THROW(d::NormalizedBinomial::fromMeanStddev(1.0, 0.1),
                 ar::util::FatalError);
    EXPECT_THROW(d::NormalizedBinomial::fromMeanStddev(0.5, 0.0),
                 ar::util::FatalError);
}

class BinomialQuantileSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double>>
{
};

TEST_P(BinomialQuantileSweep, CdfOfQuantileCoversU)
{
    const auto [n, p] = GetParam();
    d::Binomial dist(n, p);
    for (double u = 0.05; u < 1.0; u += 0.1) {
        const double k = dist.sampleFromUniform(u);
        EXPECT_GE(dist.cdf(k), u - 1e-9)
            << "n=" << n << " p=" << p << " u=" << u;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialQuantileSweep,
    ::testing::Combine(::testing::Values(1u, 8u, 32u, 500u),
                       ::testing::Values(0.05, 0.5, 0.92)));

TEST(Categorical, MomentsMatchWeightedSupport)
{
    d::Categorical dist({0.0, 0.5, 1.0}, {0.1, 0.2, 0.7});
    EXPECT_NEAR(dist.mean(), 0.8, 1e-12);
    const double var =
        0.1 * 0.8 * 0.8 + 0.2 * 0.3 * 0.3 + 0.7 * 0.2 * 0.2;
    EXPECT_NEAR(dist.stddev(), std::sqrt(var), 1e-12);
}

TEST(Categorical, SortsSupportAscending)
{
    // Construction order is free; the support is canonicalized so
    // the quantile is monotone (LHS stratification carries over).
    d::Categorical dist({1.0, 0.0, 0.5}, {0.7, 0.1, 0.2});
    ASSERT_EQ(dist.values().size(), 3u);
    EXPECT_DOUBLE_EQ(dist.values()[0], 0.0);
    EXPECT_DOUBLE_EQ(dist.values()[1], 0.5);
    EXPECT_DOUBLE_EQ(dist.values()[2], 1.0);
    EXPECT_DOUBLE_EQ(dist.probabilities()[0], 0.1);
    EXPECT_DOUBLE_EQ(dist.probabilities()[1], 0.2);
    EXPECT_DOUBLE_EQ(dist.probabilities()[2], 0.7);
}

TEST(Categorical, SampleFromUniformWalksCumulative)
{
    d::Categorical dist({0.0, 0.5, 1.0}, {0.1, 0.2, 0.7});
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.05), 0.0);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.1), 0.0);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.25), 0.5);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.31), 1.0);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(1.0), 1.0);
}

TEST(Categorical, ProbabilityGapSamplesNaN)
{
    // Probabilities summing below 1 declare unmodeled-state mass:
    // the leftover uniform range samples NaN (and the mean is
    // undefined), so the gap reaches the fault policy instead of
    // being silently renormalized.
    d::Categorical dist({0.0, 1.0}, {0.2, 0.7});
    EXPECT_NEAR(dist.totalProbability(), 0.9, 1e-12);
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.85), 1.0);
    EXPECT_TRUE(std::isnan(dist.sampleFromUniform(0.95)));
    EXPECT_TRUE(std::isnan(dist.mean()));
    EXPECT_TRUE(std::isnan(dist.stddev()));
}

TEST(Categorical, SampleFrequenciesMatchProbabilities)
{
    d::Categorical dist({0.0, 0.5, 1.0}, {0.1, 0.2, 0.7});
    ar::util::Rng rng(91);
    std::size_t n0 = 0, nh = 0, n1 = 0;
    const std::size_t n = 20000;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = dist.sample(rng);
        if (x == 0.0)
            ++n0;
        else if (x == 0.5)
            ++nh;
        else
            ++n1;
    }
    EXPECT_NEAR(static_cast<double>(n0) / n, 0.1, 0.01);
    EXPECT_NEAR(static_cast<double>(nh) / n, 0.2, 0.01);
    EXPECT_NEAR(static_cast<double>(n1) / n, 0.7, 0.015);
}

TEST(Categorical, CdfAndQuantileAreConsistent)
{
    d::Categorical dist({0.0, 0.5, 1.0}, {0.1, 0.2, 0.7});
    EXPECT_NEAR(dist.cdf(-0.1), 0.0, 1e-12);
    EXPECT_NEAR(dist.cdf(0.0), 0.1, 1e-12);
    EXPECT_NEAR(dist.cdf(0.5), 0.3, 1e-12);
    EXPECT_NEAR(dist.cdf(2.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(dist.quantile(0.05), 0.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.2), 0.5);
    EXPECT_DOUBLE_EQ(dist.quantile(0.99), 1.0);
}

TEST(Categorical, InvalidSpecsAreFatal)
{
    EXPECT_THROW(d::Categorical({}, {}), ar::util::FatalError);
    EXPECT_THROW(d::Categorical({1.0}, {0.5, 0.5}),
                 ar::util::FatalError);
    EXPECT_THROW(d::Categorical({0.0, 1.0}, {0.6, 0.6}),
                 ar::util::FatalError);
    EXPECT_THROW(d::Categorical({0.0, 1.0}, {-0.1, 0.5}),
                 ar::util::FatalError);
}
