/**
 * @file
 * Unit tests for Affine and Product combinators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/combinators.hh"
#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "math/numeric.hh"
#include "util/logging.hh"

namespace d = ar::dist;

TEST(Affine, MomentsTransform)
{
    auto base = std::make_shared<d::Normal>(1.0, 2.0);
    d::Affine dist(base, 3.0, -4.0);
    EXPECT_DOUBLE_EQ(dist.mean(), -1.0);
    EXPECT_DOUBLE_EQ(dist.stddev(), 6.0);
}

TEST(Affine, NegativeScaleFlipsCdf)
{
    auto base = std::make_shared<d::Normal>(0.0, 1.0);
    d::Affine dist(base, -1.0, 0.0);
    EXPECT_NEAR(dist.cdf(1.0), base->cdf(1.0), 1e-12);
    EXPECT_NEAR(dist.cdf(0.0), 0.5, 1e-12);
    // quantile_{-X}(p) = -quantile_X(1 - p); for the symmetric
    // standard normal that equals quantile_X(p).
    EXPECT_NEAR(dist.quantile(0.9), -base->quantile(0.1), 1e-9);
    EXPECT_NEAR(dist.quantile(0.9), base->quantile(0.9), 1e-9);
}

TEST(Affine, SampleMomentsMatch)
{
    auto base = std::make_shared<d::Uniform>(0.0, 1.0);
    d::Affine dist(base, 10.0, 5.0);
    ar::util::Rng rng(91);
    const auto xs = dist.sampleMany(50000, rng);
    EXPECT_NEAR(ar::math::mean(xs), 10.0, 0.05);
}

TEST(Affine, ZeroScaleIsFatal)
{
    auto base = std::make_shared<d::Normal>(0.0, 1.0);
    EXPECT_THROW(d::Affine(base, 0.0, 1.0), ar::util::FatalError);
}

TEST(Affine, NullBaseIsFatal)
{
    EXPECT_THROW(d::Affine(nullptr, 1.0, 0.0), ar::util::FatalError);
}

TEST(Product, MeanIsProductOfMeans)
{
    auto a = std::make_shared<d::Bernoulli>(0.8);
    auto b = std::make_shared<d::LogNormal>(
        d::LogNormal::fromMeanStddev(10.0, 2.0));
    d::Product dist(a, b);
    EXPECT_NEAR(dist.mean(), 8.0, 1e-9);
}

TEST(Product, VarianceFormula)
{
    auto a = std::make_shared<d::Bernoulli>(0.5);
    auto b = std::make_shared<d::Degenerate>(4.0);
    d::Product dist(a, b);
    // 0 or 4 with equal probability: var = 4.
    EXPECT_NEAR(dist.stddev(), 2.0, 1e-9);
}

TEST(Product, SampleMomentsMatchAnalytic)
{
    auto a = std::make_shared<d::Bernoulli>(0.9);
    auto b = std::make_shared<d::LogNormal>(
        d::LogNormal::fromMeanStddev(5.0, 1.0));
    d::Product dist(a, b);
    ar::util::Rng rng(92);
    const auto xs = dist.sampleMany(200000, rng);
    EXPECT_NEAR(ar::math::mean(xs), dist.mean(), 0.03);
    EXPECT_NEAR(ar::math::stddev(xs), dist.stddev(), 0.03);
}

TEST(Product, BernoulliTimesPositiveCdf)
{
    // This is the paper's design-bug model: Bernoulli x LogNormal.
    auto a = std::make_shared<d::Bernoulli>(0.7);
    auto b = std::make_shared<d::LogNormal>(0.0, 0.5);
    d::Product dist(a, b);
    // Atom at zero carries mass 0.3.
    EXPECT_NEAR(dist.cdf(0.0), 0.3, 1e-12);
    EXPECT_NEAR(dist.cdf(1e9), 1.0, 1e-9);
    // Median of the continuous part: cdf = 0.3 + 0.7*F_Y.
    EXPECT_NEAR(dist.cdf(1.0), 0.3 + 0.7 * 0.5, 1e-9);
}

TEST(Product, BinomialFirstFactorCdf)
{
    auto a = std::make_shared<d::Binomial>(2, 0.5);
    auto b = std::make_shared<d::Degenerate>(3.0);
    d::Product dist(a, b);
    // Values {0, 3, 6} with probs {0.25, 0.5, 0.25}.
    EXPECT_NEAR(dist.cdf(0.0), 0.25, 1e-12);
    EXPECT_NEAR(dist.cdf(3.0), 0.75, 1e-12);
    EXPECT_NEAR(dist.cdf(6.0), 1.0, 1e-12);
}

TEST(Product, UnsupportedCdfIsFatal)
{
    auto a = std::make_shared<d::Normal>(0.0, 1.0);
    auto b = std::make_shared<d::Normal>(0.0, 1.0);
    d::Product dist(a, b);
    EXPECT_THROW(dist.cdf(0.0), ar::util::FatalError);
}

TEST(Product, SampleFromUniformFastPathMatchesCdf)
{
    auto a = std::make_shared<d::Bernoulli>(0.6);
    auto b = std::make_shared<d::LogNormal>(0.0, 0.4);
    d::Product dist(a, b);
    // Bottom 40% of quantile mass is the zero atom.
    EXPECT_DOUBLE_EQ(dist.sampleFromUniform(0.2), 0.0);
    const double x = dist.sampleFromUniform(0.8);
    EXPECT_GT(x, 0.0);
    EXPECT_NEAR(dist.cdf(x), 0.8, 1e-6);
}

TEST(Product, SampleFromUniformIsMonotone)
{
    auto a = std::make_shared<d::Bernoulli>(0.5);
    auto b = std::make_shared<d::LogNormal>(0.0, 1.0);
    d::Product dist(a, b);
    double prev = -1.0;
    for (double u = 0.05; u < 1.0; u += 0.05) {
        const double x = dist.sampleFromUniform(u);
        EXPECT_GE(x, prev);
        prev = x;
    }
}
