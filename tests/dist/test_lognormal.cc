/**
 * @file
 * Unit tests for LogNormal.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/lognormal.hh"
#include "math/numeric.hh"
#include "util/logging.hh"

namespace d = ar::dist;

TEST(LogNormal, AnalyticMoments)
{
    d::LogNormal dist(0.0, 1.0);
    EXPECT_NEAR(dist.mean(), std::exp(0.5), 1e-12);
    EXPECT_NEAR(dist.stddev(),
                std::exp(0.5) * std::sqrt(std::exp(1.0) - 1.0), 1e-12);
}

TEST(LogNormal, FromMeanStddevRoundTrip)
{
    const auto dist = d::LogNormal::fromMeanStddev(11.3, 2.26);
    EXPECT_NEAR(dist.mean(), 11.3, 1e-9);
    EXPECT_NEAR(dist.stddev(), 2.26, 1e-9);
}

TEST(LogNormal, FromMeanStddevPollackUseCase)
{
    // The paper's use: mean follows Pollack's Rule sqrt(area).
    const double area = 64.0;
    const double p = std::sqrt(area);
    const auto dist = d::LogNormal::fromMeanStddev(p, 0.2 * p);
    EXPECT_NEAR(dist.mean(), 8.0, 1e-9);
    EXPECT_NEAR(dist.stddev(), 1.6, 1e-9);
}

TEST(LogNormal, SamplesArePositive)
{
    d::LogNormal dist(1.0, 2.0);
    ar::util::Rng rng(71);
    for (int i = 0; i < 5000; ++i)
        ASSERT_GT(dist.sample(rng), 0.0);
}

TEST(LogNormal, SampleMomentsMatch)
{
    const auto dist = d::LogNormal::fromMeanStddev(5.0, 1.0);
    ar::util::Rng rng(72);
    const auto xs = dist.sampleMany(200000, rng);
    EXPECT_NEAR(ar::math::mean(xs), 5.0, 0.02);
    EXPECT_NEAR(ar::math::stddev(xs), 1.0, 0.02);
}

TEST(LogNormal, CdfQuantileRoundTrip)
{
    d::LogNormal dist(0.5, 0.7);
    for (double p : {0.01, 0.25, 0.5, 0.75, 0.99})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-10);
}

TEST(LogNormal, MedianIsExpMu)
{
    d::LogNormal dist(1.3, 0.4);
    EXPECT_NEAR(dist.quantile(0.5), std::exp(1.3), 1e-9);
}

TEST(LogNormal, CdfZeroForNonPositive)
{
    d::LogNormal dist(0.0, 1.0);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.pdf(0.0), 0.0);
}

TEST(LogNormal, InvalidParametersAreFatal)
{
    EXPECT_THROW(d::LogNormal(0.0, 0.0), ar::util::FatalError);
    EXPECT_THROW(d::LogNormal::fromMeanStddev(-1.0, 1.0),
                 ar::util::FatalError);
    EXPECT_THROW(d::LogNormal::fromMeanStddev(1.0, 0.0),
                 ar::util::FatalError);
}
