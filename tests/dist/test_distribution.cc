/**
 * @file
 * Unit tests for the Distribution base utilities and trivial
 * distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/distribution.hh"
#include "util/logging.hh"

namespace d = ar::dist;

TEST(Degenerate, AllMassAtPoint)
{
    d::Degenerate dist(3.5);
    ar::util::Rng rng(1);
    EXPECT_DOUBLE_EQ(dist.sample(rng), 3.5);
    EXPECT_DOUBLE_EQ(dist.mean(), 3.5);
    EXPECT_DOUBLE_EQ(dist.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.3), 3.5);
    EXPECT_DOUBLE_EQ(dist.cdf(3.4), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(3.5), 1.0);
}

TEST(Degenerate, CloneIsIndependentCopy)
{
    d::Degenerate dist(2.0);
    const auto copy = dist.clone();
    EXPECT_DOUBLE_EQ(copy->mean(), 2.0);
    EXPECT_NE(copy.get(), &dist);
}

TEST(Uniform, MomentsAndSupport)
{
    d::Uniform dist(2.0, 6.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
    EXPECT_NEAR(dist.stddev(), 4.0 / std::sqrt(12.0), 1e-12);
    ar::util::Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double x = dist.sample(rng);
        ASSERT_GE(x, 2.0);
        ASSERT_LT(x, 6.0);
    }
}

TEST(Uniform, CdfAndQuantileInverse)
{
    d::Uniform dist(-1.0, 1.0);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.5);
    EXPECT_DOUBLE_EQ(dist.quantile(0.25), -0.5);
    for (double p : {0.0, 0.1, 0.5, 0.9, 1.0})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-12);
}

TEST(Uniform, PdfConstantInsideZeroOutside)
{
    d::Uniform dist(0.0, 2.0);
    EXPECT_DOUBLE_EQ(dist.pdf(1.0), 0.5);
    EXPECT_DOUBLE_EQ(dist.pdf(-0.1), 0.0);
    EXPECT_DOUBLE_EQ(dist.pdf(2.1), 0.0);
}

TEST(Uniform, InvalidRangeIsFatal)
{
    EXPECT_THROW(d::Uniform(1.0, 1.0), ar::util::FatalError);
    EXPECT_THROW(d::Uniform(2.0, 1.0), ar::util::FatalError);
}

TEST(Distribution, DefaultQuantileInvertsCdf)
{
    // Uniform overrides quantile; exercise the generic bisection via
    // a thin wrapper that hides the override.
    class Wrapped : public d::Distribution
    {
      public:
        double sample(ar::util::Rng &rng) const override
        {
            return inner.sample(rng);
        }
        double mean() const override { return inner.mean(); }
        double stddev() const override { return inner.stddev(); }
        double cdf(double x) const override { return inner.cdf(x); }
        std::string describe() const override { return "wrapped"; }
        std::unique_ptr<Distribution> clone() const override
        {
            return std::make_unique<Wrapped>(*this);
        }

      private:
        d::Uniform inner{0.0, 10.0};
    };
    Wrapped w;
    EXPECT_NEAR(w.quantile(0.5), 5.0, 1e-6);
    EXPECT_NEAR(w.quantile(0.9), 9.0, 1e-6);
}

TEST(Distribution, SampleManyCount)
{
    d::Uniform dist(0.0, 1.0);
    ar::util::Rng rng(3);
    EXPECT_EQ(dist.sampleMany(123, rng).size(), 123u);
}

TEST(Distribution, PdfUnavailableByDefault)
{
    d::Degenerate dist(0.0);
    EXPECT_THROW(dist.pdf(0.0), ar::util::FatalError);
}

TEST(Distribution, QuantileOutOfRangeIsFatal)
{
    d::Uniform dist(0.0, 1.0);
    EXPECT_THROW(dist.quantile(-0.5), ar::util::FatalError);
    EXPECT_THROW(dist.quantile(2.0), ar::util::FatalError);
}
