/**
 * @file
 * Unit tests for Empirical and KdeDistribution.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "dist/empirical.hh"
#include "math/numeric.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace d = ar::dist;

TEST(Empirical, MomentsComeFromData)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    d::Empirical dist(xs);
    EXPECT_DOUBLE_EQ(dist.mean(), 2.5);
    EXPECT_NEAR(dist.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Empirical, SamplesDrawOnlyDataValues)
{
    const std::vector<double> xs{1.5, 2.5, 3.5};
    d::Empirical dist(xs);
    ar::util::Rng rng(101);
    for (int i = 0; i < 500; ++i) {
        const double v = dist.sample(rng);
        EXPECT_TRUE(v == 1.5 || v == 2.5 || v == 3.5);
    }
}

TEST(Empirical, CdfIsEcdf)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    d::Empirical dist(xs);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(2.0), 0.5);
    EXPECT_DOUBLE_EQ(dist.cdf(10.0), 1.0);
}

TEST(Empirical, QuantileInterpolates)
{
    const std::vector<double> xs{0.0, 10.0};
    d::Empirical dist(xs);
    EXPECT_DOUBLE_EQ(dist.quantile(0.5), 5.0);
}

TEST(Empirical, EmptyIsFatal)
{
    const std::vector<double> xs;
    EXPECT_THROW(d::Empirical{xs}, ar::util::FatalError);
}

TEST(Empirical, SummaryAccessible)
{
    const std::vector<double> xs{2.0, 6.0};
    d::Empirical dist(xs);
    EXPECT_EQ(dist.summary().n, 2u);
    EXPECT_DOUBLE_EQ(dist.summary().min, 2.0);
    EXPECT_DOUBLE_EQ(dist.summary().max, 6.0);
}

TEST(KdeDistribution, MomentsIncludeBandwidthInflation)
{
    ar::util::Rng rng(102);
    std::vector<double> xs(2000);
    for (auto &x : xs)
        x = rng.gaussian(3.0, 1.0);
    d::KdeDistribution dist(xs);
    EXPECT_NEAR(dist.mean(), 3.0, 0.1);
    EXPECT_GT(dist.stddev(), 0.9);
}

TEST(KdeDistribution, CdfMonotone)
{
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
    d::KdeDistribution dist(xs);
    double prev = 0.0;
    for (double x = -3.0; x <= 6.0; x += 0.2) {
        const double cur = dist.cdf(x);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

TEST(KdeDistribution, SamplesConcentrateNearData)
{
    const std::vector<double> xs{5.0, 5.1, 4.9, 5.05};
    d::KdeDistribution dist(xs);
    ar::util::Rng rng(103);
    const auto draws = dist.sampleMany(10000, rng);
    EXPECT_NEAR(ar::math::mean(draws), 5.0, 0.05);
}

TEST(KdeDistribution, PdfAvailable)
{
    const std::vector<double> xs{0.0, 1.0};
    d::KdeDistribution dist(xs);
    EXPECT_GT(dist.pdf(0.5), 0.0);
}
