/**
 * @file
 * Property-based tests that every concrete Distribution must satisfy:
 * CDF monotonicity, quantile/CDF consistency, monotone inverse-CDF
 * sampling, and sample moments matching the analytic moments.
 * Parameterized across the whole distribution zoo.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "dist/boxcox_dist.hh"
#include "dist/combinators.hh"
#include "dist/discrete.hh"
#include "dist/distribution.hh"
#include "dist/empirical.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "math/numeric.hh"
#include "util/rng.hh"

namespace d = ar::dist;

namespace
{

struct Maker
{
    std::string name;
    std::function<d::DistPtr()> make;
};

d::DistPtr
makeEmpirical()
{
    ar::util::Rng rng(555);
    d::Normal src(2.0, 0.7);
    const auto xs = src.sampleMany(500, rng);
    return std::make_shared<d::Empirical>(xs);
}

d::DistPtr
makeKde()
{
    ar::util::Rng rng(556);
    d::LogNormal src(0.3, 0.4);
    const auto xs = src.sampleMany(400, rng);
    return std::make_shared<d::KdeDistribution>(xs);
}

std::vector<Maker>
zoo()
{
    return {
        {"Degenerate",
         [] { return std::make_shared<d::Degenerate>(3.0); }},
        {"Uniform",
         [] { return std::make_shared<d::Uniform>(-1.0, 2.0); }},
        {"Normal",
         [] { return std::make_shared<d::Normal>(1.0, 0.5); }},
        {"TruncatedNormal",
         [] {
             return std::make_shared<d::TruncatedNormal>(0.9, 0.1,
                                                         0.0, 1.0);
         }},
        {"LogNormal",
         [] { return std::make_shared<d::LogNormal>(0.5, 0.6); }},
        {"Bernoulli",
         [] { return std::make_shared<d::Bernoulli>(0.35); }},
        {"Binomial",
         [] { return std::make_shared<d::Binomial>(24u, 0.8); }},
        {"NormalizedBinomial",
         [] {
             return std::make_shared<d::NormalizedBinomial>(225u,
                                                            0.9);
         }},
        {"Affine",
         [] {
             return std::make_shared<d::Affine>(
                 std::make_shared<d::Normal>(0.0, 1.0), 2.5, -1.0);
         }},
        {"Product",
         [] {
             return std::make_shared<d::Product>(
                 std::make_shared<d::Bernoulli>(0.85),
                 std::make_shared<d::LogNormal>(
                     d::LogNormal::fromMeanStddev(8.0, 1.6)));
         }},
        {"BoxCoxGaussian",
         [] {
             return std::make_shared<d::BoxCoxGaussian>(
                 ar::stats::BoxCoxTransform{0.3, 0.0}, 1.5, 0.4);
         }},
        {"Empirical", makeEmpirical},
        {"Kde", makeKde},
    };
}

} // namespace

class DistributionProperty : public ::testing::TestWithParam<Maker>
{
};

TEST_P(DistributionProperty, CdfIsMonotoneWithLimits)
{
    const auto dist = GetParam().make();
    const double m = dist->mean();
    const double s = std::max(dist->stddev(), 0.1);
    double prev = 0.0;
    for (double x = m - 10.0 * s; x <= m + 10.0 * s; x += s / 4.0) {
        const double cur = dist->cdf(x);
        ASSERT_GE(cur, prev - 1e-12) << "at x=" << x;
        ASSERT_GE(cur, 0.0);
        ASSERT_LE(cur, 1.0);
        prev = cur;
    }
    EXPECT_LT(dist->cdf(m - 100.0 * s - 1.0), 0.02);
    EXPECT_GT(dist->cdf(m + 100.0 * s + 1.0), 0.98);
}

TEST_P(DistributionProperty, SampleFromUniformIsMonotone)
{
    const auto dist = GetParam().make();
    double prev = dist->sampleFromUniform(0.01);
    for (double u = 0.05; u <= 0.99; u += 0.02) {
        const double cur = dist->sampleFromUniform(u);
        ASSERT_GE(cur, prev - 1e-9) << "at u=" << u;
        prev = cur;
    }
}

TEST_P(DistributionProperty, SampleMomentsMatchAnalytic)
{
    const auto dist = GetParam().make();
    ar::util::Rng rng(777);
    const auto xs = dist->sampleMany(60000, rng);
    const double mean = ar::math::mean(xs);
    const double sd = ar::math::stddev(xs);
    const double tol_mean =
        0.03 * std::max({std::fabs(dist->mean()), dist->stddev(),
                         0.05});
    EXPECT_NEAR(mean, dist->mean(), tol_mean);
    if (dist->stddev() > 0.0) {
        EXPECT_NEAR(sd, dist->stddev(),
                    0.06 * dist->stddev() + 0.01);
    }
}

TEST_P(DistributionProperty, StratifiedSamplingMatchesMoments)
{
    // The quantity the LHS engine relies on: averaging
    // sampleFromUniform over stratified u must reproduce the mean.
    const auto dist = GetParam().make();
    const std::size_t n = 20000;
    ar::math::KahanSum acc;
    for (std::size_t i = 0; i < n; ++i) {
        const double u = (static_cast<double>(i) + 0.5) /
                         static_cast<double>(n);
        acc.add(dist->sampleFromUniform(u));
    }
    const double mean = acc.value() / static_cast<double>(n);
    const double tol =
        0.02 * std::max({std::fabs(dist->mean()), dist->stddev(),
                         0.05});
    EXPECT_NEAR(mean, dist->mean(), tol);
}

TEST_P(DistributionProperty, QuantileInvertsCdf)
{
    const auto dist = GetParam().make();
    if (dist->stddev() == 0.0)
        return; // point mass: quantile is constant
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const double x = dist->quantile(p);
        // For continuous parts: cdf(quantile(p)) ~ p.  For atoms the
        // CDF can jump past p, so only require it is not below.
        EXPECT_GE(dist->cdf(x + 1e-9), p - 2e-3) << "p=" << p;
    }
}

TEST_P(DistributionProperty, CloneBehavesIdentically)
{
    const auto dist = GetParam().make();
    const auto copy = dist->clone();
    EXPECT_DOUBLE_EQ(copy->mean(), dist->mean());
    EXPECT_DOUBLE_EQ(copy->stddev(), dist->stddev());
    for (double u : {0.2, 0.5, 0.8}) {
        EXPECT_DOUBLE_EQ(copy->sampleFromUniform(u),
                         dist->sampleFromUniform(u));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, DistributionProperty, ::testing::ValuesIn(zoo()),
    [](const ::testing::TestParamInfo<Maker> &info) {
        return info.param.name;
    });
