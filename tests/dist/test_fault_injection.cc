/** @file Tests for the FaultInjectingDistribution test harness. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "dist/fault_injection.hh"
#include "dist/normal.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace
{

using ar::dist::Distribution;
using ar::dist::FaultInjectingDistribution;
using ar::dist::Normal;
using Mode = FaultInjectingDistribution::Mode;

std::shared_ptr<const Normal>
base()
{
    return std::make_shared<Normal>(10.0, 2.0);
}

TEST(FaultInjection, RateZeroNeverCorrupts)
{
    const FaultInjectingDistribution d(base(), 0.0, 42);
    for (int i = 1; i < 100; ++i) {
        const double u = i / 100.0;
        EXPECT_FALSE(d.corrupts(u));
        EXPECT_TRUE(std::isfinite(d.sampleFromUniform(u)));
    }
}

TEST(FaultInjection, RateOneAlwaysCorrupts)
{
    const FaultInjectingDistribution d(base(), 1.0, 42);
    for (int i = 1; i < 100; ++i) {
        const double u = i / 100.0;
        EXPECT_TRUE(d.corrupts(u));
        EXPECT_TRUE(std::isnan(d.sampleFromUniform(u)));
    }
}

TEST(FaultInjection, CorruptDecisionIsPureInU)
{
    // Same (seed, u) -> same decision, independent of call order or
    // how many other draws happened in between; different seeds give
    // different fault sets.
    const FaultInjectingDistribution d1(base(), 0.3, 7);
    const FaultInjectingDistribution d2(base(), 0.3, 7);
    const FaultInjectingDistribution other(base(), 0.3, 8);
    int corrupted = 0;
    int seed_diffs = 0;
    for (int i = 1; i < 1000; ++i) {
        const double u = i / 1000.0;
        EXPECT_EQ(d1.corrupts(u), d2.corrupts(u));
        corrupted += d1.corrupts(u) ? 1 : 0;
        seed_diffs += d1.corrupts(u) != other.corrupts(u) ? 1 : 0;
    }
    // ~30% of 999 draws; allow generous slack for the hash.
    EXPECT_GT(corrupted, 200);
    EXPECT_LT(corrupted, 400);
    EXPECT_GT(seed_diffs, 0);
}

TEST(FaultInjection, ModesProduceTheAdvertisedPoison)
{
    const double u = 0.5;
    const FaultInjectingDistribution nan_d(base(), 1.0, 1,
                                           Mode::QuietNaN);
    const FaultInjectingDistribution pos_d(base(), 1.0, 1,
                                           Mode::PosInf);
    const FaultInjectingDistribution neg_d(base(), 1.0, 1,
                                           Mode::NegInf);
    const FaultInjectingDistribution flip_d(base(), 1.0, 1,
                                            Mode::Negate);
    EXPECT_TRUE(std::isnan(nan_d.sampleFromUniform(u)));
    EXPECT_EQ(pos_d.sampleFromUniform(u),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(neg_d.sampleFromUniform(u),
              -std::numeric_limits<double>::infinity());
    // Negate yields a *finite* but out-of-domain (negative) value.
    const double flipped = flip_d.sampleFromUniform(u);
    EXPECT_TRUE(std::isfinite(flipped));
    EXPECT_LT(flipped, 0.0);
}

TEST(FaultInjection, MomentsAndShapeDelegateToBase)
{
    const auto b = base();
    const FaultInjectingDistribution d(b, 0.5, 3);
    EXPECT_DOUBLE_EQ(d.mean(), b->mean());
    EXPECT_DOUBLE_EQ(d.stddev(), b->stddev());
    EXPECT_DOUBLE_EQ(d.cdf(11.0), b->cdf(11.0));
    EXPECT_DOUBLE_EQ(d.pdf(11.0), b->pdf(11.0));
    EXPECT_DOUBLE_EQ(d.quantile(0.25), b->quantile(0.25));
    EXPECT_NE(d.describe().find("FaultInjecting"), std::string::npos);
    EXPECT_NE(d.describe().find(b->describe()), std::string::npos);
}

TEST(FaultInjection, CloneReplicatesInjectionBehavior)
{
    const FaultInjectingDistribution d(base(), 0.4, 11, Mode::PosInf);
    const auto copy = d.clone();
    for (int i = 1; i < 200; ++i) {
        const double u = i / 200.0;
        const double a = d.sampleFromUniform(u);
        const double b = copy->sampleFromUniform(u);
        // Bit-identical including the corrupted draws.
        EXPECT_TRUE(a == b || (std::isnan(a) && std::isnan(b)));
    }
}

TEST(FaultInjection, SampleDrawsThroughTheRng)
{
    const FaultInjectingDistribution d(base(), 0.0, 5);
    ar::util::Rng rng(99);
    const double x = d.sample(rng);
    EXPECT_TRUE(std::isfinite(x));
}

TEST(FaultInjection, RejectsBadRate)
{
    EXPECT_THROW(FaultInjectingDistribution(base(), -0.1, 0),
                 ar::util::FatalError);
    EXPECT_THROW(FaultInjectingDistribution(base(), 1.5, 0),
                 ar::util::FatalError);
}

} // namespace
