/**
 * @file
 * Unit tests for tables, ASCII plots, and CSV output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/ascii_plot.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/logging.hh"

namespace rp = ar::report;

TEST(Table, RendersHeaderAndRows)
{
    rp::Table t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"beta", "22"});
    const auto text = t.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAreAligned)
{
    rp::Table t;
    t.header({"k", "value"});
    t.row({"looooong", "1"});
    const auto text = t.render();
    std::istringstream iss(text);
    std::string header, sep, row;
    std::getline(iss, header);
    std::getline(iss, sep);
    std::getline(iss, row);
    // "value" must start at the same column in header and row.
    EXPECT_EQ(header.find("value"), 10u);
    EXPECT_NE(row.find("looooong"), std::string::npos);
}

TEST(Table, RowNumericFormatsDigits)
{
    rp::Table t;
    t.rowNumeric("pi", {3.14159}, 2);
    EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

TEST(AsciiPlot, HistogramChartShowsBars)
{
    ar::stats::Histogram h(0.0, 1.0, 2);
    for (int i = 0; i < 10; ++i)
        h.add(0.25);
    h.add(0.75);
    const auto text = rp::histogramChart(h, 20);
    EXPECT_NE(text.find("####"), std::string::npos);
    EXPECT_NE(text.find(" 10"), std::string::npos);
}

TEST(AsciiPlot, SparklineLengthMatchesInput)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 2.0, 1.0};
    const auto line = rp::sparkline(v);
    // Each level glyph is 3 bytes of UTF-8.
    EXPECT_EQ(line.size(), 5u * 3u);
}

TEST(AsciiPlot, SparklineEmptyInput)
{
    const std::vector<double> v;
    EXPECT_TRUE(rp::sparkline(v).empty());
}

TEST(AsciiPlot, SparklineConstantSeriesUsesLowestLevel)
{
    const std::vector<double> v{2.0, 2.0};
    const auto line = rp::sparkline(v);
    EXPECT_EQ(line, "▁▁");
}

TEST(Csv, WritesRowsAndQuotes)
{
    const std::string path = "/tmp/ar_test_csv_output.csv";
    {
        rp::CsvWriter csv(path);
        csv.row({"a", "b,with,commas", "c\"quoted\""});
        csv.row("nums", {1.5, 2.0});
        csv.close();
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,\"b,with,commas\",\"c\"\"quoted\"\"\"");
    EXPECT_EQ(line2, "nums,1.5,2");
    std::remove(path.c_str());
}

TEST(Csv, UnwritablePathIsFatal)
{
    EXPECT_THROW(rp::CsvWriter("/nonexistent-dir/file.csv"),
                 ar::util::FatalError);
}
