/**
 * @file
 * In-process integration tests for archriskd: a real Server on an
 * ephemeral port, driven through real sockets.  The fault-injection
 * matrix (overload, deadline, faulting request, garbage frames,
 * drain) runs at 1, 2, and 8 workers; every failure mode must be a
 * typed one-line answer, never a hang, and a faulting request must
 * not perturb the bit-identical result of a concurrent healthy one.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hh"
#include "core/spec.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using ar::serve::Server;
using ar::serve::ServerConfig;

namespace
{

const char *const kHealthySpec =
    "Speedup = 1 / (1 - f + f / s)\n"
    "fixed s 32\n"
    "uncertain f truncnormal 0.95 0.02 0 1\n"
    "output Speedup\n"
    "risk quadratic\n"
    "trials 2000\n"
    "seed 7\n";

/** 1 / (x - x) is Inf on every trial: FailFast raises FaultError. */
const char *const kFaultySpec =
    "R = 1 / (x - x)\n"
    "uncertain x normal 1 0.1\n"
    "output R\n"
    "risk quadratic\n"
    "trials 256\n"
    "seed 3\n";

/** Minimal blocking line-protocol client against 127.0.0.1:port. */
class Client
{
  public:
    explicit Client(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            throw std::runtime_error(std::string("socket: ") +
                                     std::strerror(errno));
        timeval tv{15, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0)
            throw std::runtime_error(std::string("connect: ") +
                                     std::strerror(errno));
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    void
    send(const std::string &data)
    {
        std::size_t off = 0;
        while (off < data.size()) {
            const ssize_t n =
                ::send(fd_, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
            ASSERT_GT(n, 0) << std::strerror(errno);
            off += static_cast<std::size_t>(n);
        }
    }

    /** @return the next line (terminator stripped), "" on EOF. */
    std::string
    readLine()
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return line;
            }
            if (!fill())
                return "";
        }
    }

    std::string
    readBytes(std::size_t n)
    {
        while (buf_.size() < n) {
            if (!fill())
                break;
        }
        std::string out = buf_.substr(0, n);
        buf_.erase(0, std::min(n, buf_.size()));
        return out;
    }

    /** @return true when the server closed the connection. */
    bool
    atEof()
    {
        if (!buf_.empty())
            return false;
        return !fill();
    }

  private:
    bool
    fill()
    {
        char tmp[4096];
        const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
        if (n <= 0)
            return false;
        buf_.append(tmp, static_cast<std::size_t>(n));
        return true;
    }

    int fd_ = -1;
    std::string buf_;
};

/** Send an UPLOAD frame and return the response line. */
std::string
upload(Client &c, const std::string &name, const std::string &spec)
{
    c.send("UPLOAD " + name + " " + std::to_string(spec.size()) +
           "\n" + spec);
    return c.readLine();
}

/** @return the value of " key=..." in a response line ("" absent). */
std::string
field(const std::string &line, const std::string &key)
{
    const std::string token = " " + key + "=";
    const auto pos = line.find(token);
    if (pos == std::string::npos)
        return "";
    const auto start = pos + token.size();
    const auto end = line.find(' ', start);
    return line.substr(start, end == std::string::npos
                                  ? std::string::npos
                                  : end - start);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** The server-side RUN computation, replicated through the public
 * API: %.17g-formatted mean that the wire response must match
 * bit-for-bit. */
std::string
directMean(const std::string &spec_text)
{
    const auto spec = ar::core::parseSpec(spec_text);
    ar::core::Framework fw(ar::mc::PropagationConfig{
        spec.trials, "latin-hypercube", 1, spec.fault_policy});
    fw.setSystem(spec.system);
    std::map<std::string, double> fixed = spec.bindings.fixed;
    for (const auto &[input, dist] : spec.bindings.uncertain)
        fixed[input] = dist->mean();
    const double ref = fw.evaluateCertain(spec.output, fixed);
    const auto fn = ar::core::makeRiskFunction(spec.risk);
    ar::mc::PropagationConfig pc;
    pc.trials = spec.trials;
    pc.threads = 1;
    pc.fault_policy = spec.fault_policy;
    // handleRun streams by default (saturate is the one policy that
    // still needs sample retention), so the wire mean is the
    // streaming-accumulator one.
    pc.stream.keep_samples =
        spec.fault_policy == ar::util::FaultPolicy::Saturate;
    const auto res = fw.analyze(spec.output, spec.bindings, *fn, ref,
                                spec.seed, pc);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", res.summary.mean);
    return buf;
}

} // namespace

/** Fixture: one live server per test, workers swept over 1/2/8. */
class ServeTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        ServerConfig cfg;
        cfg.workers = GetParam();
        cfg.test_verbs = true;
        server_ = std::make_unique<Server>(cfg);
        server_->start();
        ASSERT_GT(server_->port(), 0);
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->requestStop();
            EXPECT_EQ(server_->awaitTermination(), 0);
        }
    }

    std::unique_ptr<Server> server_;
};

INSTANTIATE_TEST_SUITE_P(Workers, ServeTest,
                         ::testing::Values(1u, 2u, 8u));

TEST_P(ServeTest, PingPipelinesAndQuits)
{
    Client c(server_->port());
    c.send("PING\n\nping\nQUIT\n");
    EXPECT_EQ(c.readLine(), "OK pong");
    EXPECT_EQ(c.readLine(), "OK pong"); // Blank line skipped.
    EXPECT_EQ(c.readLine(), "OK bye");
    EXPECT_TRUE(c.atEof());
}

TEST_P(ServeTest, UploadRunMatchesDirectAnalysisBitForBit)
{
    Client c(server_->port());
    const std::string up = upload(c, "amdahl", kHealthySpec);
    ASSERT_TRUE(startsWith(up, "OK uploaded")) << up;
    EXPECT_EQ(field(up, "outputs"), "1");

    c.send("RUN amdahl\n");
    const std::string r1 = c.readLine();
    ASSERT_TRUE(startsWith(r1, "OK run")) << r1;
    EXPECT_EQ(field(r1, "mean"), directMean(kHealthySpec));
    EXPECT_EQ(field(r1, "faults"), "0");
    EXPECT_EQ(field(r1, "degraded"), "0");

    // Same seed, same answer: the whole line repeats verbatim.
    c.send("RUN amdahl\n");
    EXPECT_EQ(c.readLine(), r1);

    // A different seed changes the estimate.
    c.send("RUN amdahl seed=99\n");
    const std::string r3 = c.readLine();
    ASSERT_TRUE(startsWith(r3, "OK run")) << r3;
    EXPECT_NE(field(r3, "mean"), field(r1, "mean"));
}

TEST_P(ServeTest, FaultingRequestIsIsolatedFromHealthyOne)
{
    Client healthy(server_->port());
    Client faulty(server_->port());
    ASSERT_TRUE(startsWith(upload(healthy, "good", kHealthySpec),
                           "OK uploaded"));
    ASSERT_TRUE(startsWith(upload(faulty, "bad", kFaultySpec),
                           "OK uploaded"));

    // Baseline: the healthy answer with nothing else in the system.
    healthy.send("RUN good\n");
    const std::string baseline = healthy.readLine();
    ASSERT_TRUE(startsWith(baseline, "OK run")) << baseline;

    // Fire both concurrently; the faulting run must answer one typed
    // ERR line and must not perturb the healthy result by one bit.
    faulty.send("RUN bad\n");
    healthy.send("RUN good\n");
    const std::string fault_resp = faulty.readLine();
    const std::string healthy_resp = healthy.readLine();
    EXPECT_TRUE(startsWith(fault_resp, "ERR FAULT")) << fault_resp;
    EXPECT_EQ(healthy_resp, baseline);

    // The faulting connection (and its worker) both survived.
    faulty.send("PING\n");
    EXPECT_EQ(faulty.readLine(), "OK pong");
    // Discard works as a policy override on the same model; every
    // trial faults, so Discard leaves nothing and Saturate-free
    // accounting shows up in the typed response.
    faulty.send("RUN bad policy=discard\n");
    const std::string disc = faulty.readLine();
    // All trials fault: discard leaves an empty sample set, which
    // handleRun surfaces as either a typed FAULT or a run with zero
    // effective trials; both are structured, neither is a hang.
    EXPECT_TRUE(startsWith(disc, "ERR ") ||
                startsWith(disc, "OK run"))
        << disc;
}

TEST_P(ServeTest, DeadlineExpiresWithinOneBlockNotAtCompletion)
{
    Client c(server_->port());
    const auto t0 = std::chrono::steady_clock::now();
    c.send("STALL 10000 deadline_ms=50\n");
    const std::string resp = c.readLine();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_TRUE(startsWith(resp, "ERR DEADLINE_EXPIRED")) << resp;
    // Far below the 10 s the stall asked for: the deadline cut it.
    EXPECT_LT(elapsed.count(), 5000) << "deadline did not cut the "
                                        "stall short";

    // The connection answers normally afterwards.
    c.send("PING\n");
    EXPECT_EQ(c.readLine(), "OK pong");
}

TEST_P(ServeTest, RunHonorsDeadline)
{
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    // A million trials cannot finish in a millisecond; the trial
    // loop must notice at a block boundary and answer typed.
    c.send("RUN amdahl trials=1000000 deadline_ms=1\n");
    const std::string resp = c.readLine();
    EXPECT_TRUE(startsWith(resp, "ERR DEADLINE_EXPIRED")) << resp;
}

TEST_P(ServeTest, GarbageFramesGetTypedErrorsAndConnSurvives)
{
    Client c(server_->port());
    c.send("FROBNICATE the server\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));

    c.send("RUN nosuch\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR UNKNOWN_MODEL"));

    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    c.send("RUN amdahl trials=abc\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));
    c.send("RUN amdahl deadline_ms=soon\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));
    c.send("STALL\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));

    // After all that abuse the connection still works.
    c.send("RUN amdahl\n");
    EXPECT_TRUE(startsWith(c.readLine(), "OK run"));
}

TEST_P(ServeTest, BadSpecBodyIsAParseError)
{
    Client c(server_->port());
    const std::string resp =
        upload(c, "broken", "Speedup = 1 / (1 -\noutput Speedup\n");
    EXPECT_TRUE(startsWith(resp, "ERR PARSE")) << resp;
    // One line only: embedded diagnostics must not split the frame.
    c.send("PING\n");
    EXPECT_EQ(c.readLine(), "OK pong");
}

TEST_P(ServeTest, MetricsScrapeIsByteCounted)
{
    Client c(server_->port());
    c.send("PING\n");
    ASSERT_EQ(c.readLine(), "OK pong");
    c.send("METRICS\n");
    const std::string head = c.readLine();
    ASSERT_TRUE(startsWith(head, "OK metrics nbytes=")) << head;
    const std::size_t nbytes =
        std::stoul(head.substr(std::string("OK metrics nbytes=")
                                   .size()));
    ASSERT_GT(nbytes, 0u);
    const std::string json = c.readBytes(nbytes);
    ASSERT_EQ(json.size(), nbytes);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("serve.requests"), std::string::npos);
    EXPECT_NE(json.find("serve.accepted"), std::string::npos);
}

TEST_P(ServeTest, SweepAnswersWithKneeAndExtremes)
{
    Client c(server_->port());
    c.send("SWEEP area=32 trials=200 seed=3\n");
    const std::string resp = c.readLine();
    ASSERT_TRUE(startsWith(resp, "OK sweep")) << resp;
    EXPECT_FALSE(field(resp, "designs").empty());
    EXPECT_FALSE(field(resp, "knee").empty());
    EXPECT_FALSE(field(resp, "best_perf").empty());
    EXPECT_FALSE(field(resp, "min_risk").empty());

    c.send("SWEEP sigma=7\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));
    c.send("SWEEP app=NOPE\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));
}

TEST_P(ServeTest, SensReportsIndicesPerUncertainInput)
{
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    c.send("SENS amdahl trials=256\n");
    const std::string resp = c.readLine();
    ASSERT_TRUE(startsWith(resp, "OK sens")) << resp;
    EXPECT_EQ(field(resp, "indices"), "1");
    // The lone uncertain input f carries Si:STi.
    EXPECT_NE(field(resp, "f").find(':'), std::string::npos);

    // Same seed twice: bit-identical sensitivity answers too.
    c.send("SENS amdahl trials=256\n");
    EXPECT_EQ(c.readLine(), resp);
}

TEST_P(ServeTest, DrainFinishesInflightWorkThenExitsZero)
{
    Client c(server_->port());
    c.send("STALL 300\n");
    // Give the request time to reach a worker, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server_->requestStop();
    EXPECT_EQ(server_->awaitTermination(), 0);
    // The in-flight stall completed and was answered before close.
    EXPECT_EQ(c.readLine(), "OK stalled ms=300");
    EXPECT_TRUE(c.atEof());
    server_.reset();
}

// ---------------------------------------------------------------
// Non-parameterized tests pinning configs the sweep cannot vary.
// ---------------------------------------------------------------

TEST(ServeOverload, QueueFullIsATypedRejectionNotAHang)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.test_verbs = true;
    Server server(cfg);
    server.start();

    Client a(server.port());
    Client b(server.port());
    Client c(server.port());

    // a occupies the single worker...
    a.send("STALL 800\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    // ...b fills the queue slot...
    b.send("STALL 10\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // ...so c must be shed immediately with a typed answer.
    const auto t0 = std::chrono::steady_clock::now();
    c.send("STALL 10\n");
    const std::string shed = c.readLine();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_TRUE(startsWith(shed, "ERR OVERLOADED")) << shed;
    EXPECT_LT(elapsed.count(), 500) << "rejection was not prompt";

    // The queued and running requests were unaffected by the shed.
    EXPECT_EQ(a.readLine(), "OK stalled ms=800");
    EXPECT_EQ(b.readLine(), "OK stalled ms=10");
    // And the shed connection is still usable.
    c.send("PING\n");
    EXPECT_EQ(c.readLine(), "OK pong");

    server.requestStop();
    EXPECT_EQ(server.awaitTermination(), 0);
}

TEST(ServeFraming, OversizedFramesAreRefused)
{
    ServerConfig cfg;
    cfg.max_request_bytes = 256;
    Server server(cfg);
    server.start();

    {
        Client c(server.port());
        c.send("UPLOAD big 100000\n");
        EXPECT_TRUE(startsWith(c.readLine(), "ERR TOO_LARGE"));
        EXPECT_TRUE(c.atEof()); // Cannot resync; conn closed.
    }
    {
        Client c(server.port());
        c.send(std::string(600, 'x')); // Line with no terminator.
        EXPECT_TRUE(startsWith(c.readLine(), "ERR TOO_LARGE"));
        EXPECT_TRUE(c.atEof());
    }
    {
        // A partial frame the client abandons: the server must not
        // leak the connection or stall on it.
        Client c(server.port());
        c.send("UPLOAD part 100\nonly twenty bytes...");
    }

    server.requestStop();
    EXPECT_EQ(server.awaitTermination(), 0);
}

TEST(ServeIdle, IdleConnectionsAreReaped)
{
    ServerConfig cfg;
    cfg.idle_timeout = std::chrono::milliseconds(50);
    Server server(cfg);
    server.start();

    Client c(server.port());
    c.send("PING\n");
    EXPECT_EQ(c.readLine(), "OK pong");
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    EXPECT_TRUE(c.atEof());

    server.requestStop();
    EXPECT_EQ(server.awaitTermination(), 0);
}

TEST(ServeDrain, SlowRequestIsCancelledAtDrainTimeout)
{
    ServerConfig cfg;
    cfg.test_verbs = true;
    cfg.drain_timeout = std::chrono::milliseconds(50);
    Server server(cfg);
    server.start();

    Client c(server.port());
    c.send("STALL 30000\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    const auto t0 = std::chrono::steady_clock::now();
    server.requestStop();
    EXPECT_EQ(server.awaitTermination(), 0);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    // Far below the 30 s stall: the drain cancelled its token.
    EXPECT_LT(elapsed.count(), 10000);
    EXPECT_TRUE(startsWith(c.readLine(), "ERR CANCELLED"));
}

TEST(ServeDegrade, WatermarkClampsTrialsInsteadOfRejecting)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 8;
    cfg.degrade_watermark = 1;
    cfg.degrade_trials = 64;
    cfg.test_verbs = true;
    Server server(cfg);
    server.start();

    Client stall(server.port());
    Client filler(server.port());
    Client probe(server.port());
    ASSERT_TRUE(startsWith(upload(probe, "amdahl", kHealthySpec),
                           "OK uploaded"));

    // Occupy the worker, then park one request in the queue so the
    // watermark (pending >= 1) is met for the probe.
    stall.send("STALL 600\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    filler.send("STALL 10\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    probe.send("RUN amdahl trials=100000\n");

    const std::string resp = probe.readLine();
    ASSERT_TRUE(startsWith(resp, "OK run")) << resp;
    EXPECT_EQ(field(resp, "degraded"), "1");
    EXPECT_EQ(field(resp, "trials"), "64");

    EXPECT_EQ(stall.readLine(), "OK stalled ms=600");
    EXPECT_EQ(filler.readLine(), "OK stalled ms=10");
    server.requestStop();
    EXPECT_EQ(server.awaitTermination(), 0);
}

TEST(ServeShutdown, NewRequestsRefusedWhileDraining)
{
    ServerConfig cfg;
    cfg.test_verbs = true;
    Server server(cfg);
    server.start();
    const std::uint16_t port = server.port();

    Client c(port);
    c.send("PING\n");
    ASSERT_EQ(c.readLine(), "OK pong");

    server.requestStop();
    EXPECT_EQ(server.awaitTermination(), 0);
    // Stopped server: the port no longer accepts.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ::close(fd);
}

namespace
{

/** Send an EDIT frame and return the response line. */
std::string
edit(Client &c, const std::string &name, const std::string &patch)
{
    c.send("EDIT " + name + " " + std::to_string(patch.size()) +
           "\n" + patch);
    return c.readLine();
}

/** Everything after the "model=<name>" token, so RUN and RERUN
 * responses over differently named models compare field for field. */
std::string
afterModel(const std::string &line)
{
    const auto at = line.find(" model=");
    if (at == std::string::npos)
        return line;
    const auto end = line.find(' ', at + 7);
    return end == std::string::npos ? "" : line.substr(end + 1);
}

} // namespace

TEST_P(ServeTest, EditThenRerunMatchesFreshUploadBitForBit)
{
    // The EDIT contract: after a line-level patch, RERUN answers
    // exactly what a fresh UPLOAD of the hand-patched spec text
    // would -- same mean, risk, and fault counts, bit for bit.
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));

    const std::string resp = edit(c, "amdahl", "fixed s 64\n");
    ASSERT_TRUE(startsWith(resp, "OK edit")) << resp;
    // A binding edit keeps outputs and uncertain inputs: absorbed
    // incrementally, no Framework rebuild.
    EXPECT_EQ(field(resp, "rebuilt"), "0");

    c.send("RERUN amdahl\n");
    const std::string rerun = c.readLine();
    ASSERT_TRUE(startsWith(rerun, "OK rerun model=amdahl")) << rerun;

    std::string patched(kHealthySpec);
    const auto at = patched.find("fixed s 32");
    ASSERT_NE(at, std::string::npos);
    patched.replace(at, std::strlen("fixed s 32"), "fixed s 64");

    Client fresh(server_->port());
    ASSERT_TRUE(startsWith(upload(fresh, "amdahl2", patched),
                           "OK uploaded"));
    fresh.send("RUN amdahl2\n");
    const std::string direct = fresh.readLine();
    ASSERT_TRUE(startsWith(direct, "OK run")) << direct;
    EXPECT_EQ(afterModel(rerun), afterModel(direct));
    EXPECT_EQ(field(rerun, "mean"), directMean(patched));
}

TEST_P(ServeTest, EditedEquationRevalidatesTheConeInPlace)
{
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    c.send("RUN amdahl\n");
    const std::string before = c.readLine();
    ASSERT_TRUE(startsWith(before, "OK run")) << before;

    const std::string patch = "Speedup = 2 / (1 - f + f / s)\n";
    const std::string resp = edit(c, "amdahl", patch);
    ASSERT_TRUE(startsWith(resp, "OK edit")) << resp;
    EXPECT_EQ(field(resp, "rebuilt"), "0");
    // The equation edit went through the what-if cache: its cone was
    // invalidated and re-absorbed by patch or cone recompile.
    EXPECT_NE(field(resp, "invalidated"), "0");

    c.send("RERUN amdahl\n");
    const std::string rerun = c.readLine();
    ASSERT_TRUE(startsWith(rerun, "OK rerun")) << rerun;
    EXPECT_NE(field(rerun, "mean"), field(before, "mean"));

    std::string patched(kHealthySpec);
    const std::string old = "Speedup = 1 / (1 - f + f / s)\n";
    patched.replace(patched.find(old), old.size(), patch);
    Client fresh(server_->port());
    ASSERT_TRUE(startsWith(upload(fresh, "amdahl2", patched),
                           "OK uploaded"));
    fresh.send("RUN amdahl2\n");
    EXPECT_EQ(afterModel(rerun), afterModel(fresh.readLine()));
}

TEST_P(ServeTest, UncertainSetChangeFallsBackToRebuild)
{
    // Turning a fixed input uncertain changes the uncertain-input
    // set: the incremental path cannot absorb that, so the EDIT
    // rebuilds the Framework -- and must still answer exactly what a
    // fresh upload of the patched text would.
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));

    const std::string patch = "uncertain s truncnormal 32 2 16 48\n";
    const std::string resp = edit(c, "amdahl", patch);
    ASSERT_TRUE(startsWith(resp, "OK edit")) << resp;
    EXPECT_EQ(field(resp, "rebuilt"), "1");

    c.send("RERUN amdahl\n");
    const std::string rerun = c.readLine();
    ASSERT_TRUE(startsWith(rerun, "OK rerun")) << rerun;

    std::string patched(kHealthySpec);
    const std::string old = "fixed s 32\n";
    patched.replace(patched.find(old), old.size(), patch);
    Client fresh(server_->port());
    ASSERT_TRUE(startsWith(upload(fresh, "amdahl2", patched),
                           "OK uploaded"));
    fresh.send("RUN amdahl2\n");
    EXPECT_EQ(afterModel(rerun), afterModel(fresh.readLine()));
}

TEST_P(ServeTest, EditUnknownModelIsATypedError)
{
    Client c(server_->port());
    const std::string resp = edit(c, "ghost", "fixed s 4\n");
    EXPECT_TRUE(startsWith(resp, "ERR UNKNOWN_MODEL")) << resp;
    c.send("PING\n");
    EXPECT_EQ(c.readLine(), "OK pong");
}

TEST_P(ServeTest, BadPatchLeavesTheModelUntouched)
{
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    c.send("RUN amdahl\n");
    const std::string before = c.readLine();
    ASSERT_TRUE(startsWith(before, "OK run")) << before;

    // The patched text fails to parse: typed error, no mutation.
    const std::string resp =
        edit(c, "amdahl", "Speedup = 1 / (1 -\n");
    EXPECT_TRUE(startsWith(resp, "ERR PARSE")) << resp;

    c.send("RUN amdahl\n");
    EXPECT_EQ(c.readLine(), before);
}

namespace
{

/** Multi-state spec with a structure function; the 'slow' states
 * keep every multiplier positive so the k-of-n gate is always up and
 * the run stays fault-free under the default FailFast policy. */
const char *const kMultiStateSpec =
    "BW = Peak * Structure * (A + B) / 2\n"
    "structure kofn(1, A, B)\n"
    "fixed Peak 100\n"
    "states A up:1:0.9 slow:0.5:0.1\n"
    "states B up:1:0.9 slow:0.5:0.1\n"
    "output BW\n"
    "risk linear\n"
    "trials 1000\n"
    "seed 5\n";

} // namespace

TEST_P(ServeTest, MultiStateSpecRunsAndRerunsBitIdentically)
{
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "ms", kMultiStateSpec),
                           "OK uploaded"));
    c.send("RUN ms\n");
    const std::string run = c.readLine();
    ASSERT_TRUE(startsWith(run, "OK run model=ms")) << run;
    EXPECT_EQ(field(run, "mean"), directMean(kMultiStateSpec));

    // Same seed twice: bit-identical.
    c.send("RUN ms\n");
    EXPECT_EQ(c.readLine(), run);
}

TEST_P(ServeTest, MultiStateEditRerunMatchesFreshUpload)
{
    // A `states` line keys as "bind <component>", so an EDIT patch
    // replaces the component's state table in place; RERUN must then
    // answer exactly what a fresh UPLOAD of the patched text would.
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "ms", kMultiStateSpec),
                           "OK uploaded"));
    c.send("RUN ms\n");
    const std::string before = c.readLine();
    ASSERT_TRUE(startsWith(before, "OK run")) << before;

    const std::string old_line = "states A up:1:0.9 slow:0.5:0.1\n";
    const std::string new_line = "states A up:1:0.7 slow:0.5:0.3\n";
    const std::string resp = edit(c, "ms", new_line);
    ASSERT_TRUE(startsWith(resp, "OK edit")) << resp;

    c.send("RERUN ms\n");
    const std::string rerun = c.readLine();
    ASSERT_TRUE(startsWith(rerun, "OK rerun")) << rerun;
    EXPECT_NE(field(rerun, "mean"), field(before, "mean"));

    std::string patched(kMultiStateSpec);
    const auto at = patched.find(old_line);
    ASSERT_NE(at, std::string::npos);
    patched.replace(at, old_line.size(), new_line);
    Client fresh(server_->port());
    ASSERT_TRUE(startsWith(upload(fresh, "ms2", patched),
                           "OK uploaded"));
    fresh.send("RUN ms2\n");
    const std::string direct = fresh.readLine();
    ASSERT_TRUE(startsWith(direct, "OK run")) << direct;
    EXPECT_EQ(afterModel(rerun), afterModel(direct));
    EXPECT_EQ(field(rerun, "mean"), directMean(patched));
}

TEST_P(ServeTest, SensOnACorrelatedModelIsATypedError)
{
    // Sobol pick-freeze estimators are invalid under correlated
    // inputs; the daemon answers with a typed ERR naming the pair
    // instead of silently returning garbage indices.
    const char *const correlated =
        "y = x1 + x2\n"
        "uncertain x1 normal 0 1\n"
        "uncertain x2 normal 0 1\n"
        "correlate x1 x2 0.5\n"
        "output y\n"
        "risk quadratic\n"
        "trials 512\n"
        "seed 9\n";
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "corr", correlated),
                           "OK uploaded"));
    c.send("SENS corr trials=256\n");
    const std::string resp = c.readLine();
    ASSERT_TRUE(startsWith(resp, "ERR PARSE")) << resp;
    EXPECT_NE(resp.find("x1"), std::string::npos);
    EXPECT_NE(resp.find("x2"), std::string::npos);

    // The connection and model survive the rejection.
    c.send("RUN corr\n");
    EXPECT_TRUE(startsWith(c.readLine(), "OK run")) << resp;
}

TEST_P(ServeTest, StreamedRunPartFramesLeaveThePlainReply)
{
    // stream=N interleaves "PART run ..." prefix-statistics frames
    // before the final OK; the final line must be byte-identical to
    // the reply of the same request without stream= (both are
    // derived from the same deterministic accumulators).
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    c.send("RUN amdahl trials=1024\n");
    const std::string plain = c.readLine();
    ASSERT_TRUE(startsWith(plain, "OK run")) << plain;

    c.send("RUN amdahl trials=1024 stream=1\n");
    std::vector<std::string> parts;
    std::string line;
    while (startsWith(line = c.readLine(), "PART run "))
        parts.push_back(line);
    EXPECT_EQ(line, plain);
    // 1024 trials / 256-trial blocks, one frame per merged block.
    ASSERT_EQ(parts.size(), 4u);
    for (std::size_t i = 0; i < parts.size(); ++i) {
        EXPECT_EQ(field(parts[i], "blocks"),
                  std::to_string(i + 1));
        EXPECT_EQ(field(parts[i], "trials"),
                  std::to_string(256 * (i + 1)));
        EXPECT_NE(field(parts[i], "mean"), "");
        EXPECT_NE(field(parts[i], "ci"), "");
    }
    // The last frame saw every trial, so its statistics match the
    // final reply verbatim.
    EXPECT_EQ(field(parts.back(), "mean"), field(plain, "mean"));
    EXPECT_EQ(field(parts.back(), "stddev"),
              field(plain, "stddev"));

    // Streaming frames are deterministic too: the same request
    // repeats the same PART lines byte for byte.
    c.send("RUN amdahl trials=1024 stream=1\n");
    for (std::size_t i = 0; i < parts.size(); ++i)
        EXPECT_EQ(c.readLine(), parts[i]);
    EXPECT_EQ(c.readLine(), plain);
}

TEST_P(ServeTest, CiTargetStopsEarlyAndReportsEffectiveTrials)
{
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    c.send("RUN amdahl trials=65536 ci_target=0.05\n");
    const std::string resp = c.readLine();
    ASSERT_TRUE(startsWith(resp, "OK run")) << resp;
    const std::string eff = field(resp, "effective");
    ASSERT_NE(eff, "");
    EXPECT_LT(std::stoul(eff), 65536u) << resp;
    // The stop point reads only the in-order merge prefix, so the
    // truncated run repeats verbatim.
    c.send("RUN amdahl trials=65536 ci_target=0.05\n");
    EXPECT_EQ(c.readLine(), resp);
}

TEST_P(ServeTest, StreamUnderSaturateIsATypedBadRequest)
{
    Client c(server_->port());
    ASSERT_TRUE(startsWith(upload(c, "amdahl", kHealthySpec),
                           "OK uploaded"));
    c.send("RUN amdahl stream=4 policy=saturate\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));
    c.send("RUN amdahl ci_target=0.1 policy=saturate\n");
    EXPECT_TRUE(startsWith(c.readLine(), "ERR BAD_REQUEST"));
    // The connection survives, and a plain saturate RUN still works.
    c.send("RUN amdahl policy=saturate\n");
    EXPECT_TRUE(startsWith(c.readLine(), "OK run"));
}
