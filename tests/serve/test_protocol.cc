/**
 * @file
 * Unit tests for the archriskd line protocol: request parsing, typed
 * error rendering, and the sanitization that keeps every response a
 * single line.
 */

#include <gtest/gtest.h>

#include "serve/protocol.hh"

using ar::serve::ErrCode;
using ar::serve::errCodeName;
using ar::serve::errLine;
using ar::serve::okLine;
using ar::serve::parseRequestLine;
using ar::serve::ProtocolError;
using ar::serve::Request;
using ar::serve::sanitize;

TEST(ParseRequestLine, PlainVerb)
{
    const Request req = parseRequestLine("PING");
    EXPECT_EQ(req.verb, "PING");
    EXPECT_TRUE(req.args.empty());
    EXPECT_TRUE(req.params.empty());
}

TEST(ParseRequestLine, VerbIsCaseInsensitive)
{
    EXPECT_EQ(parseRequestLine("ping").verb, "PING");
    EXPECT_EQ(parseRequestLine("Run m").verb, "RUN");
}

TEST(ParseRequestLine, PositionalsAndParamsSeparate)
{
    const Request req =
        parseRequestLine("RUN mymodel trials=5000 seed=42");
    EXPECT_EQ(req.verb, "RUN");
    ASSERT_EQ(req.args.size(), 1u);
    EXPECT_EQ(req.args[0], "mymodel");
    EXPECT_EQ(req.get("trials"), "5000");
    EXPECT_EQ(req.get("seed"), "42");
    EXPECT_TRUE(req.has("trials"));
    EXPECT_FALSE(req.has("deadline_ms"));
}

TEST(ParseRequestLine, ValueMayContainEquals)
{
    const Request req = parseRequestLine("SWEEP app=a=b");
    EXPECT_EQ(req.get("app"), "a=b");
}

TEST(ParseRequestLine, LeadingEqualsIsPositional)
{
    // "=x" has no key; it is a positional token, not a parameter.
    const Request req = parseRequestLine("RUN =x");
    ASSERT_EQ(req.args.size(), 1u);
    EXPECT_EQ(req.args[0], "=x");
}

TEST(ParseRequestLine, RepeatedWhitespaceCollapses)
{
    const Request req =
        parseRequestLine("RUN   model   trials=10");
    ASSERT_EQ(req.args.size(), 1u);
    EXPECT_EQ(req.args[0], "model");
    EXPECT_EQ(req.get("trials"), "10");
}

TEST(ParseRequestLine, EmptyLineThrowsBadRequest)
{
    try {
        parseRequestLine("");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &e) {
        EXPECT_EQ(e.code(), ErrCode::BadRequest);
    }
}

TEST(ParseRequestLine, UnknownVerbThrowsBadRequest)
{
    try {
        parseRequestLine("FROBNICATE now");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &e) {
        EXPECT_EQ(e.code(), ErrCode::BadRequest);
    }
}

TEST(RequestNumbers, GetU64ParsesAndFallsBack)
{
    const Request req = parseRequestLine("RUN m trials=5000");
    EXPECT_EQ(req.getU64("trials", 1), 5000u);
    EXPECT_EQ(req.getU64("seed", 7), 7u);
}

TEST(RequestNumbers, MalformedU64ThrowsBadRequest)
{
    for (const char *line :
         {"RUN m trials=abc", "RUN m trials=-3", "RUN m trials=1.5",
          "RUN m trials="}) {
        const Request req = parseRequestLine(line);
        try {
            req.getU64("trials", 1);
            FAIL() << "expected ProtocolError for: " << line;
        } catch (const ProtocolError &e) {
            EXPECT_EQ(e.code(), ErrCode::BadRequest);
        }
    }
}

TEST(RequestNumbers, GetDoubleParsesAndFallsBack)
{
    const Request req = parseRequestLine("SWEEP sigma=0.25");
    EXPECT_DOUBLE_EQ(req.getDouble("sigma", 0.1), 0.25);
    EXPECT_DOUBLE_EQ(req.getDouble("absent", 0.5), 0.5);
}

TEST(RequestNumbers, MalformedDoubleThrowsBadRequest)
{
    for (const char *line :
         {"SWEEP sigma=zero", "SWEEP sigma=0.1x", "SWEEP sigma="}) {
        const Request req = parseRequestLine(line);
        try {
            req.getDouble("sigma", 0.1);
            FAIL() << "expected ProtocolError for: " << line;
        } catch (const ProtocolError &e) {
            EXPECT_EQ(e.code(), ErrCode::BadRequest);
        }
    }
}

TEST(ErrCodeNames, WireTokensAreStable)
{
    EXPECT_STREQ(errCodeName(ErrCode::BadRequest), "BAD_REQUEST");
    EXPECT_STREQ(errCodeName(ErrCode::TooLarge), "TOO_LARGE");
    EXPECT_STREQ(errCodeName(ErrCode::Parse), "PARSE");
    EXPECT_STREQ(errCodeName(ErrCode::UnknownModel),
                 "UNKNOWN_MODEL");
    EXPECT_STREQ(errCodeName(ErrCode::Overloaded), "OVERLOADED");
    EXPECT_STREQ(errCodeName(ErrCode::DeadlineExpired),
                 "DEADLINE_EXPIRED");
    EXPECT_STREQ(errCodeName(ErrCode::Cancelled), "CANCELLED");
    EXPECT_STREQ(errCodeName(ErrCode::Fault), "FAULT");
    EXPECT_STREQ(errCodeName(ErrCode::ShuttingDown),
                 "SHUTTING_DOWN");
    EXPECT_STREQ(errCodeName(ErrCode::Internal), "INTERNAL");
}

TEST(Rendering, ErrLineFormat)
{
    EXPECT_EQ(errLine(ErrCode::Overloaded, "queue full"),
              "ERR OVERLOADED queue full\n");
}

TEST(Rendering, OkLineFormat)
{
    EXPECT_EQ(okLine("run mean=1.5"), "OK run mean=1.5\n");
}

TEST(Rendering, ControlCharactersNeverSplitTheLine)
{
    // A spec parse diagnostic contains newlines and a caret line;
    // the wire rendering must stay one line.
    const std::string msg = errLine(
        ErrCode::Parse, "line 2:\n  bad token\n  ^~~\ttab");
    EXPECT_EQ(msg.find('\n'), msg.size() - 1);
    EXPECT_EQ(msg.find('\t'), std::string::npos);
    EXPECT_EQ(msg.find('\r'), std::string::npos);
}

TEST(Rendering, SanitizeReplacesControlsWithSpaces)
{
    EXPECT_EQ(sanitize("a\nb\rc\td"), "a b c d");
    EXPECT_EQ(sanitize("plain text"), "plain text");
    EXPECT_EQ(sanitize(std::string("x\x7f") + "y"), "x y");
}
