/**
 * @file
 * Tests for the per-call PropagationConfig overloads of
 * Framework::analyze / analyzeMulti: the override path must be
 * bit-identical to a Framework constructed with the same config, and
 * it must honor per-request cancellation -- the contract archriskd
 * relies on to serve many differently-configured requests from one
 * compiled model.
 */

#include <gtest/gtest.h>

#include "core/framework.hh"
#include "dist/normal.hh"
#include "risk/risk_function.hh"
#include "util/cancel.hh"

namespace c = ar::core;

namespace
{

ar::symbolic::EquationSystem
simpleSystem()
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("y = 2 * x + b");
    sys.markUncertain("x");
    return sys;
}

ar::mc::InputBindings
gaussianBindings()
{
    ar::mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<ar::dist::Normal>(1.0, 0.25);
    in.fixed["b"] = 0.0;
    return in;
}

} // namespace

TEST(FrameworkConfigOverride, MatchesEquallyConfiguredFramework)
{
    const ar::mc::PropagationConfig cfg{2000, "latin-hypercube", 1};
    ar::risk::QuadraticRisk fn;

    // A framework built with cfg, analyzed the ordinary way...
    c::Framework baseline(cfg);
    baseline.setSystem(simpleSystem());
    const auto want =
        baseline.analyze("y", gaussianBindings(), fn, 2.0, 5);

    // ...and a framework built with a very different default config
    // but analyzed under a per-call cfg override.
    c::Framework other({50, "latin-hypercube", 4});
    other.setSystem(simpleSystem());
    const auto got =
        other.analyze("y", gaussianBindings(), fn, 2.0, 5, cfg);

    ASSERT_EQ(got.samples.size(), want.samples.size());
    for (std::size_t t = 0; t < got.samples.size(); ++t)
        ASSERT_EQ(got.samples[t], want.samples[t]) << "trial " << t;
    EXPECT_EQ(got.risk, want.risk);
    EXPECT_EQ(got.summary.mean, want.summary.mean);

    // The override is per-call: the framework's own config is
    // untouched and still produces its 50-trial analysis.
    const auto small =
        other.analyze("y", gaussianBindings(), fn, 2.0, 5);
    EXPECT_EQ(small.samples.size(), 50u);
}

TEST(FrameworkConfigOverride, MultiOutputOverrideMatchesToo)
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("y = 2 * x + b");
    sys.addEquation("z = x * x");
    sys.markUncertain("x");
    ar::risk::QuadraticRisk fn;

    const ar::mc::PropagationConfig cfg{1000, "latin-hypercube", 1};
    c::Framework baseline(cfg);
    baseline.setSystem(sys);
    const auto want = baseline.analyzeMulti(
        {"y", "z"}, gaussianBindings(), fn, 2.0, 9);

    c::Framework other({64, "latin-hypercube", 2});
    other.setSystem(sys);
    const auto got = other.analyzeMulti(
        {"y", "z"}, gaussianBindings(), fn, 2.0, 9, cfg);

    ASSERT_EQ(got.samples.size(), want.samples.size());
    for (std::size_t t = 0; t < got.samples.size(); ++t)
        ASSERT_EQ(got.samples[t], want.samples[t]);
    ASSERT_EQ(got.co_outputs.size(), 1u);
    EXPECT_EQ(got.co_outputs[0].summary.mean,
              want.co_outputs[0].summary.mean);
}

TEST(FrameworkConfigOverride, PerCallCancelTokenIsHonored)
{
    c::Framework fw({100000, "latin-hypercube", 1});
    fw.setSystem(simpleSystem());
    ar::risk::QuadraticRisk fn;

    ar::mc::PropagationConfig cfg;
    cfg.trials = 100000;
    cfg.threads = 1;
    cfg.cancel = ar::util::CancelToken::create();
    cfg.cancel.cancel();
    EXPECT_THROW(
        fw.analyze("y", gaussianBindings(), fn, 2.0, 5, cfg),
        ar::util::CancelledError);

    // The framework stays healthy for uncancelled calls.
    const auto res = fw.analyze("y", gaussianBindings(), fn, 2.0, 5,
                                ar::mc::PropagationConfig{
                                    200, "latin-hypercube", 1});
    EXPECT_EQ(res.samples.size(), 200u);
}
