/**
 * @file
 * Unit tests for the analysis-spec front end.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/spec.hh"
#include "math/numeric.hh"
#include "util/diagnostics.hh"
#include "util/fault.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace c = ar::core;

namespace
{

const char *kAmdahl = R"(
# comment line
Speedup = 1 / (1 - f + f / s)
fixed s 16
uncertain f truncnormal 0.9 0.02 0 1
output Speedup
risk quadratic
trials 2000
seed 3
)";

} // namespace

TEST(Spec, ParsesEquationsAndDirectives)
{
    const auto spec = c::parseSpec(kAmdahl);
    EXPECT_EQ(spec.output, "Speedup");
    EXPECT_EQ(spec.trials, 2000u);
    EXPECT_EQ(spec.seed, 3u);
    EXPECT_EQ(spec.risk, "quadratic");
    EXPECT_DOUBLE_EQ(spec.bindings.fixed.at("s"), 16.0);
    ASSERT_TRUE(spec.bindings.uncertain.count("f"));
    EXPECT_NEAR(spec.bindings.uncertain.at("f")->mean(), 0.9, 0.01);
    EXPECT_TRUE(spec.system.uncertain().count("f"));
}

TEST(Spec, RunSpecProducesAnalysis)
{
    const auto spec = c::parseSpec(kAmdahl);
    const auto res = c::runSpec(spec);
    EXPECT_EQ(res.samples.size(), 2000u);
    // Default reference: certain evaluation at the f mean.
    const double certain = 1.0 / (1.0 - 0.9 + 0.9 / 16.0);
    EXPECT_NEAR(res.reference, certain, 0.01);
    EXPECT_GT(res.risk, 0.0);
}

TEST(Spec, ExplicitReferenceIsHonoured)
{
    std::string text(kAmdahl);
    text += "\nreference 5.5\n";
    const auto res = c::runSpec(c::parseSpec(text));
    EXPECT_DOUBLE_EQ(res.reference, 5.5);
}

TEST(Spec, AllDistributionKindsParse)
{
    const char *text = R"(
y = a + b + cc + d + e + f2 + g2 + h + i
uncertain a normal 0 1
uncertain b truncnormal 0 1 -1 1
uncertain cc lognormal 0 0.5
uncertain d lognormal-ms 10 2
uncertain e uniform 0 1
uncertain f2 bernoulli 0.5
uncertain g2 binomial 8 0.5
uncertain h normbinomial 100 0.9
uncertain i degenerate 3
output y
)";
    const auto spec = c::parseSpec(text);
    EXPECT_EQ(spec.bindings.uncertain.size(), 9u);
    EXPECT_DOUBLE_EQ(spec.bindings.uncertain.at("i")->mean(), 3.0);
    EXPECT_NEAR(spec.bindings.uncertain.at("d")->mean(), 10.0, 1e-9);
}

TEST(Spec, CorrelationDirective)
{
    std::string text(kAmdahl);
    text += "uncertain g2 normal 0 1\ncorrelate f g2 0.5\n";
    const auto spec = c::parseSpec(text);
    ASSERT_EQ(spec.bindings.correlations.size(), 1u);
    EXPECT_EQ(spec.bindings.correlations[0].a, "f");
    EXPECT_DOUBLE_EQ(spec.bindings.correlations[0].rho, 0.5);
}

TEST(Spec, SamplesDirectiveExtractsFromFile)
{
    const std::string path = "/tmp/ar_test_spec_samples.txt";
    {
        ar::util::Rng rng(4);
        std::vector<double> xs(100);
        for (auto &x : xs)
            x = std::exp(rng.gaussian(0.0, 0.3));
        ar::util::writeNumbers(path, xs);
    }
    std::string text = R"(
y = 2 * m
samples m /tmp/ar_test_spec_samples.txt
output y
)";
    const auto spec = c::parseSpec(text);
    ASSERT_TRUE(spec.bindings.uncertain.count("m"));
    EXPECT_NEAR(spec.bindings.uncertain.at("m")->mean(), 1.05, 0.15);
    std::remove(path.c_str());
}

TEST(Spec, MissingOutputIsFatal)
{
    EXPECT_THROW(c::parseSpec("y = 2 * x\n"), ar::util::FatalError);
}

TEST(Spec, UndefinedOutputIsFatal)
{
    EXPECT_THROW(c::parseSpec("y = 2 * x\noutput z\n"),
                 ar::util::FatalError);
}

TEST(Spec, UnknownDirectiveIsFatal)
{
    EXPECT_THROW(c::parseSpec("y = x\nfrobnicate y\noutput y\n"),
                 ar::util::FatalError);
}

TEST(Spec, UnknownDistributionIsFatal)
{
    EXPECT_THROW(
        c::parseSpec("y = x\nuncertain x cauchy 0 1\noutput y\n"),
        ar::util::FatalError);
}

TEST(Spec, BadArityIsFatal)
{
    EXPECT_THROW(
        c::parseSpec("y = x\nuncertain x normal 0\noutput y\n"),
        ar::util::FatalError);
    EXPECT_THROW(c::parseSpec("y = x\nfixed x\noutput y\n"),
                 ar::util::FatalError);
}

TEST(Spec, InvalidRiskNameIsFatal)
{
    std::string text(kAmdahl);
    text += "risk exotic\n";
    EXPECT_THROW(c::parseSpec(text), ar::util::FatalError);
}

namespace
{

/** Parse @p text expecting failure; return the structured payload. */
ar::util::Diagnostic
specDiagnosticOf(const std::string &text)
{
    try {
        c::parseSpec(text);
    } catch (const ar::util::ParseError &e) {
        return e.diagnostic();
    }
    ADD_FAILURE() << "spec parsed successfully:\n" << text;
    return {};
}

} // namespace

TEST(Spec, MalformedEquationReportsSpecLineAndColumn)
{
    // Unbalanced paren on line 2 of the spec text.
    const auto d = specDiagnosticOf(
        "# header\nSpeedup = 1 / ((1 - f + f / s)\noutput Speedup\n");
    EXPECT_NE(d.message.find("expected ')'"), std::string::npos);
    EXPECT_EQ(d.line, 2u);
    EXPECT_EQ(d.column, 31u); // one past the end of the equation
    EXPECT_EQ(d.source, "Speedup = 1 / ((1 - f + f / s)");
}

TEST(Spec, SemanticEquationErrorsAreStampedWithTheLine)
{
    const auto d = specDiagnosticOf("y = x\ny = 2 * x\noutput y\n");
    EXPECT_NE(d.message.find("defined twice"), std::string::npos);
    EXPECT_EQ(d.line, 2u);
}

TEST(Spec, UnknownDirectiveReportsColumnOne)
{
    const auto d =
        specDiagnosticOf("y = x\nfrobnicate y\noutput y\n");
    EXPECT_NE(d.message.find("unknown directive 'frobnicate'"),
              std::string::npos);
    EXPECT_EQ(d.line, 2u);
    EXPECT_EQ(d.column, 1u);
}

TEST(Spec, UnknownDistributionPointsAtTheKindToken)
{
    const auto d = specDiagnosticOf(
        "y = x\nuncertain x cauchy 0 1\noutput y\n");
    EXPECT_NE(d.message.find("unknown distribution kind 'cauchy'"),
              std::string::npos);
    EXPECT_EQ(d.line, 2u);
    EXPECT_EQ(d.column, 13u); // column of 'cauchy'
}

TEST(Spec, ExtraArgumentPointsAtTheFirstExtraToken)
{
    // ('output' is variadic now, so use a fixed-arity directive.)
    const auto d =
        specDiagnosticOf("y = x\nreference 1 stray\noutput y\n");
    EXPECT_NE(d.message.find("'reference' expects 1 argument(s), got 2"),
              std::string::npos);
    EXPECT_EQ(d.column, 13u); // column of 'stray'
}

TEST(Spec, NonNumericArgumentPointsAtTheToken)
{
    const auto d = specDiagnosticOf("y = x\nfixed x many\noutput y\n");
    EXPECT_NE(d.message.find("expected a number, got 'many'"),
              std::string::npos);
    EXPECT_EQ(d.line, 2u);
    EXPECT_EQ(d.column, 9u);
}

TEST(Spec, TrialsMustBeAPositiveInteger)
{
    for (const char *bad : {"trials 0", "trials -5", "trials 2.5",
                            "trials lots"}) {
        const auto d = specDiagnosticOf(
            std::string("y = x\n") + bad + "\noutput y\n");
        EXPECT_EQ(d.line, 2u) << bad;
        EXPECT_EQ(d.column, 8u) << bad;
    }
}

TEST(Spec, FaultPolicyDirectiveRoundTrips)
{
    EXPECT_EQ(c::parseSpec("y = x\noutput y\n").fault_policy,
              ar::util::FaultPolicy::FailFast); // the default
    EXPECT_EQ(c::parseSpec("y = x\noutput y\nfault_policy discard\n")
                  .fault_policy,
              ar::util::FaultPolicy::Discard);
    EXPECT_EQ(c::parseSpec("y = x\noutput y\nfault_policy saturate\n")
                  .fault_policy,
              ar::util::FaultPolicy::Saturate);
}

TEST(Spec, UnknownFaultPolicyPointsAtTheName)
{
    const auto d = specDiagnosticOf(
        "y = x\noutput y\nfault_policy lenient\n");
    EXPECT_NE(d.message.find(
                  "unknown fault policy 'lenient' "
                  "(fail_fast|discard|saturate)"),
              std::string::npos);
    EXPECT_EQ(d.line, 3u);
    EXPECT_EQ(d.column, 14u);
}

TEST(Spec, TelemetryDirectiveRoundTrips)
{
    const auto off = c::parseSpec("y = x\noutput y\n");
    EXPECT_FALSE(off.telemetry_metrics); // the default
    EXPECT_FALSE(off.telemetry_trace);

    const auto metrics =
        c::parseSpec("y = x\noutput y\ntelemetry metrics\n");
    EXPECT_TRUE(metrics.telemetry_metrics);
    EXPECT_FALSE(metrics.telemetry_trace);

    const auto trace =
        c::parseSpec("y = x\noutput y\ntelemetry trace\n");
    EXPECT_FALSE(trace.telemetry_metrics);
    EXPECT_TRUE(trace.telemetry_trace);

    const auto all =
        c::parseSpec("y = x\noutput y\ntelemetry all\n");
    EXPECT_TRUE(all.telemetry_metrics);
    EXPECT_TRUE(all.telemetry_trace);

    const auto explicit_off =
        c::parseSpec("y = x\noutput y\ntelemetry off\n");
    EXPECT_FALSE(explicit_off.telemetry_metrics);
    EXPECT_FALSE(explicit_off.telemetry_trace);
}

TEST(Spec, UnknownTelemetryModePointsAtTheMode)
{
    const auto d =
        specDiagnosticOf("y = x\noutput y\ntelemetry verbose\n");
    EXPECT_NE(d.message.find("unknown telemetry mode 'verbose' "
                             "(off|metrics|trace|all)"),
              std::string::npos);
    EXPECT_EQ(d.line, 3u);
    EXPECT_EQ(d.column, 11u);
}

TEST(Spec, InlineCommentsAreStripped)
{
    const auto spec = c::parseSpec(
        "Speedup = 1 / (1 - f + f / s)  # Amdahl\n"
        "fixed s 16        # cores\n"
        "uncertain f normal 0.9 0.02   # parallel fraction\n"
        "trials 500 # plenty\n"
        "output Speedup\n");
    EXPECT_DOUBLE_EQ(spec.bindings.fixed.at("s"), 16.0);
    EXPECT_EQ(spec.trials, 500u);
    EXPECT_EQ(spec.output, "Speedup");
}

TEST(Spec, LoadSpecFilePrefixesThePathOnParseErrors)
{
    const std::string path = "/tmp/ar_test_spec_bad.spec";
    {
        std::ofstream out(path);
        out << "y = x\ntrials zero\noutput y\n";
    }
    try {
        c::loadSpecFile(path);
        FAIL() << "malformed spec loaded successfully";
    } catch (const ar::util::ParseError &e) {
        EXPECT_NE(e.diagnostic().message.find(path),
                  std::string::npos);
        EXPECT_EQ(e.diagnostic().line, 2u);
    }
    std::remove(path.c_str());
}

TEST(Spec, MakeRiskFunctionFactory)
{
    EXPECT_DOUBLE_EQ(c::makeRiskFunction("step")->cost(0.5, 1.0),
                     1.0);
    EXPECT_DOUBLE_EQ(c::makeRiskFunction("linear")->cost(0.5, 1.0),
                     0.5);
    EXPECT_DOUBLE_EQ(
        c::makeRiskFunction("quadratic")->cost(0.5, 1.0), 0.25);
    EXPECT_DOUBLE_EQ(
        c::makeRiskFunction("monetary")->cost(0.85, 1.0), 700.0);
    EXPECT_THROW(c::makeRiskFunction("nope"), ar::util::FatalError);
}

TEST(Spec, LoadSpecFileMissingIsFatal)
{
    EXPECT_THROW(c::loadSpecFile("/nonexistent/x.spec"),
                 ar::util::FatalError);
}

TEST(Spec, LoadSpecFileRoundTrip)
{
    const std::string path = "/tmp/ar_test_spec_file.spec";
    {
        std::ofstream out(path);
        out << kAmdahl;
    }
    const auto spec = c::loadSpecFile(path);
    EXPECT_EQ(spec.output, "Speedup");
    std::remove(path.c_str());
}

TEST(Spec, MultiOutputDirectiveParsesAndRuns)
{
    const char *text = R"(
Speedup = 1 / (1 - f + f / s)
Slowdown = 1 / Speedup
fixed s 16
uncertain f truncnormal 0.9 0.02 0 1
output Speedup Slowdown
risk quadratic
trials 500
seed 3
)";
    const auto spec = c::parseSpec(text);
    EXPECT_EQ(spec.output, "Speedup");
    ASSERT_EQ(spec.outputs.size(), 2u);
    EXPECT_EQ(spec.outputs[1], "Slowdown");

    const auto res = c::runSpec(spec);
    EXPECT_EQ(res.samples.size(), 500u);
    ASSERT_EQ(res.co_outputs.size(), 1u);
    EXPECT_EQ(res.co_outputs[0].name, "Slowdown");
    ASSERT_EQ(res.co_outputs[0].samples.size(), 500u);
    // Both outputs come out of ONE fused program over the same
    // trials, so the algebraic relation holds sample-for-sample.
    for (std::size_t t = 0; t < 500; ++t) {
        EXPECT_NEAR(res.co_outputs[0].samples[t],
                    1.0 / res.samples[t], 1e-12);
    }

    // The primary analysis is unchanged by co-propagation.
    std::string single(text);
    single.replace(single.find("output Speedup Slowdown"),
                   std::string("output Speedup Slowdown").size(),
                   "output Speedup");
    const auto res1 = c::runSpec(c::parseSpec(single));
    EXPECT_EQ(res.samples, res1.samples);
    EXPECT_DOUBLE_EQ(res.risk, res1.risk);
}

TEST(Spec, DuplicateOutputIsaParseError)
{
    const char *text = R"(
Speedup = 1 / (1 - f + f / s)
fixed s 16
uncertain f truncnormal 0.9 0.02 0 1
output Speedup Speedup
)";
    try {
        c::parseSpec(text);
        FAIL() << "expected ParseError";
    } catch (const ar::util::ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate output"),
                  std::string::npos);
    }
}

TEST(Spec, EveryMultiOutputMustBeDefined)
{
    const char *text = R"(
Speedup = 1 / (1 - f + f / s)
fixed s 16
uncertain f truncnormal 0.9 0.02 0 1
output Speedup Latency
)";
    try {
        c::parseSpec(text);
        FAIL() << "expected ParseError";
    } catch (const ar::util::ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("Latency"),
                  std::string::npos);
    }
}

TEST(Spec, StatesDirectiveBindsACategorical)
{
    const char *text = R"(
Perf = Peak * Core
fixed Peak 10
states Core up:1:0.8 half:0.5:0.15 dead:0:0.05
output Perf
trials 500
seed 2
)";
    const auto spec = c::parseSpec(text);
    ASSERT_EQ(spec.components.size(), 1u);
    EXPECT_EQ(spec.components[0].name(), "Core");
    EXPECT_EQ(spec.components[0].states().size(), 3u);
    EXPECT_NEAR(spec.components[0].totalProbability(), 1.0, 1e-12);
    ASSERT_TRUE(spec.bindings.uncertain.count("Core"));
    EXPECT_NEAR(spec.bindings.uncertain.at("Core")->mean(),
                1.0 * 0.8 + 0.5 * 0.15, 1e-12);
    EXPECT_TRUE(spec.system.uncertain().count("Core"));

    const auto res = c::runSpec(spec);
    EXPECT_EQ(res.samples.size(), 500u);
    // E[Perf] = 10 * E[Core]; LHS over 500 trials is near-exact for
    // a three-point distribution.
    EXPECT_NEAR(ar::math::mean(res.samples), 10.0 * 0.875, 0.02);
}

TEST(Spec, StructureDirectiveDefinesTheStructureVariable)
{
    const char *text = R"(
BW = Peak * Structure
structure kofn(1, A, B)
fixed Peak 4
states A up:1:0.9 down:0:0.1
states B up:1:0.9 down:0:0.1
output BW
trials 400
seed 6
)";
    const auto spec = c::parseSpec(text);
    EXPECT_TRUE(spec.system.defines("Structure"));
    const auto res = c::runSpec(spec);
    EXPECT_EQ(res.samples.size(), 400u);
    // Every sample is 0 or 4 (the gate is boolean).
    for (const double s : res.samples)
        EXPECT_TRUE(s == 0.0 || s == 4.0) << s;
}

TEST(Spec, MalformedStateTriplePointsAtTheToken)
{
    const auto d = specDiagnosticOf(
        "y = Core\nstates Core up:1\noutput y\n");
    EXPECT_NE(d.message.find("NAME:MULTIPLIER:PROB"),
              std::string::npos);
    EXPECT_EQ(d.line, 2u);
    EXPECT_EQ(d.column, 13u); // column of 'up:1'
}

TEST(Spec, DuplicateStateNameIsAParseError)
{
    const auto d = specDiagnosticOf(
        "y = Core\nstates Core up:1:0.5 up:0.5:0.3\noutput y\n");
    EXPECT_NE(d.message.find("duplicate state 'up'"),
              std::string::npos);
    EXPECT_EQ(d.column, 22u);
}

TEST(Spec, DuplicateComponentIsAParseError)
{
    const auto d = specDiagnosticOf(
        "y = Core\nstates Core up:1:1\nstates Core up:1:1\n"
        "output y\n");
    EXPECT_NE(d.message.find("already declared"), std::string::npos);
    EXPECT_EQ(d.line, 3u);
}

TEST(Spec, StateProbabilityOutOfRangePointsAtTheProb)
{
    const auto d = specDiagnosticOf(
        "y = Core\nstates Core up:1:1.5\noutput y\n");
    EXPECT_NE(d.message.find("probability must lie in [0, 1]"),
              std::string::npos);
}

TEST(Spec, StateProbabilitiesSummingPastOneAreAParseError)
{
    const auto d = specDiagnosticOf(
        "y = Core\nstates Core up:1:0.8 down:0:0.4\noutput y\n");
    EXPECT_NE(d.message.find("sum to"), std::string::npos);
}

TEST(Spec, StructureParseErrorIsRelocatedIntoTheLine)
{
    const auto d = specDiagnosticOf(
        "y = Structure\nstructure kofn(2\noutput y\n");
    EXPECT_EQ(d.line, 2u);
    EXPECT_EQ(d.source, "structure kofn(2");
    EXPECT_GT(d.column, 10u); // past the directive word
}

TEST(Spec, ProbabilityGapNeedsAnExplicitReference)
{
    // A probability gap makes the component's Categorical mean NaN
    // (the unmodeled mass has no meaningful central value), so the
    // default certain-evaluation reference is non-finite and runSpec
    // demands an explicit `reference`.
    const char *gap = R"(
y = 10 * Core
states Core up:1:0.8 half:0.5:0.15
output y
trials 100
seed 4
fault_policy discard
)";
    try {
        c::runSpec(c::parseSpec(gap));
        FAIL() << "ran a gap spec without an explicit reference";
    } catch (const ar::util::DiagnosticError &e) {
        EXPECT_NE(e.diagnostic().message.find("explicit 'reference'"),
                  std::string::npos);
    }

    // With the reference declared, the run proceeds and the gap mass
    // flows through the fault policy.
    const auto res =
        c::runSpec(c::parseSpec(std::string(gap) + "reference 10\n"));
    EXPECT_LT(res.samples.size(), 100u);
    EXPECT_GT(res.faults.faulty_trials, 0u);
    for (const double v : res.samples)
        EXPECT_TRUE(std::isfinite(v));
}
