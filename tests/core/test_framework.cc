/**
 * @file
 * Unit tests for the Framework facade.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hh"
#include "dist/normal.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "risk/risk_function.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace c = ar::core;
namespace m = ar::model;

namespace
{

ar::symbolic::EquationSystem
simpleSystem()
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("y = 2 * x + b");
    sys.markUncertain("x");
    return sys;
}

} // namespace

TEST(Framework, NoSystemIsFatal)
{
    c::Framework fw;
    EXPECT_THROW(fw.system(), ar::util::FatalError);
    EXPECT_THROW(fw.compiled("y"), ar::util::FatalError);
}

TEST(Framework, EvaluateCertain)
{
    c::Framework fw;
    fw.setSystem(simpleSystem());
    EXPECT_DOUBLE_EQ(
        fw.evaluateCertain("y", {{"x", 3.0}, {"b", 1.0}}), 7.0);
}

TEST(Framework, EvaluateCertainMissingInputIsFatal)
{
    c::Framework fw;
    fw.setSystem(simpleSystem());
    EXPECT_THROW(fw.evaluateCertain("y", {{"x", 3.0}}),
                 ar::util::FatalError);
}

TEST(Framework, AnalyzeLinearModel)
{
    c::Framework fw({20000, "latin-hypercube"});
    fw.setSystem(simpleSystem());
    ar::mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<ar::dist::Normal>(1.0, 0.25);
    in.fixed["b"] = 0.0;
    ar::risk::QuadraticRisk fn;
    const auto res = fw.analyze("y", in, fn, 2.0, 5);
    // y ~ N(2, 0.5): expected 2, risk = E[max(0, 2-y)^2] = var/2.
    EXPECT_NEAR(res.expected(), 2.0, 0.01);
    EXPECT_NEAR(res.summary.stddev, 0.5, 0.01);
    EXPECT_NEAR(res.risk, 0.125, 0.01);
    EXPECT_DOUBLE_EQ(res.reference, 2.0);
    EXPECT_EQ(res.samples.size(), 20000u);
}

TEST(Framework, AnalyzeIsSeedReproducible)
{
    c::Framework fw({500, "latin-hypercube"});
    fw.setSystem(simpleSystem());
    ar::mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<ar::dist::Normal>(0.0, 1.0);
    in.fixed["b"] = 1.0;
    ar::risk::StepRisk fn;
    const auto a = fw.analyze("y", in, fn, 1.0, 42);
    const auto b = fw.analyze("y", in, fn, 1.0, 42);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_DOUBLE_EQ(a.risk, b.risk);
}

TEST(Framework, CompiledIsMemoized)
{
    c::Framework fw;
    fw.setSystem(simpleSystem());
    const auto &a = fw.compiled("y");
    const auto &b = fw.compiled("y");
    EXPECT_EQ(&a, &b);
}

TEST(Framework, SetSystemInvalidatesCache)
{
    c::Framework fw;
    fw.setSystem(simpleSystem());
    EXPECT_DOUBLE_EQ(
        fw.evaluateCertain("y", {{"x", 1.0}, {"b", 0.0}}), 2.0);
    ar::symbolic::EquationSystem sys2;
    sys2.addEquation("y = 10 * x");
    fw.setSystem(std::move(sys2));
    EXPECT_DOUBLE_EQ(fw.evaluateCertain("y", {{"x", 1.0}}), 10.0);
}

TEST(Framework, HillMartyCertainMatchesDirectEvaluator)
{
    const auto config = m::asymCores();
    const auto app = m::appLPHC();
    c::Framework fw;
    fw.setSystem(m::buildHillMartySystem(config.numTypes()));
    const auto in = m::groundTruthBindings(
        config, app, m::UncertaintySpec::none());
    const double sym = fw.evaluateCertain("Speedup", in.fixed);
    const double direct =
        m::HillMartyEvaluator::nominalSpeedup(config, app.f, app.c);
    EXPECT_NEAR(sym, direct, 1e-9);
}

TEST(Framework, HillMartyUncertainAnalysisEndToEnd)
{
    const auto config = m::heteroCores();
    const auto app = m::appLPHC();
    c::Framework fw({4000, "latin-hypercube"});
    fw.setSystem(m::buildHillMartySystem(config.numTypes()));
    const auto in = m::groundTruthBindings(
        config, app, m::UncertaintySpec::all(0.2));
    ar::risk::QuadraticRisk fn;
    const double ref =
        m::HillMartyEvaluator::nominalSpeedup(config, app.f, app.c);
    const auto res = fw.analyze("Speedup", in, fn, ref, 11);
    EXPECT_GT(res.expected(), 0.0);
    EXPECT_GT(res.summary.stddev, 0.0);
    EXPECT_GT(res.risk, 0.0);
    // Speedup can never exceed total-area Pollack performance.
    EXPECT_LT(res.summary.max, 256.0);
}

TEST(Framework, PropagateReturnsRawSamples)
{
    c::Framework fw({100, "monte-carlo"});
    fw.setSystem(simpleSystem());
    ar::mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<ar::dist::Normal>(0.0, 1.0);
    in.fixed["b"] = 0.0;
    EXPECT_EQ(fw.propagate("y", in, 1).size(), 100u);
}

namespace
{

/** Two-output system sharing structure: y and z both read x. */
ar::symbolic::EquationSystem
twoOutputSystem()
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("y = 2 * x + b");
    sys.addEquation("z = x * x + b");
    sys.markUncertain("x");
    return sys;
}

ar::mc::InputBindings
xNormalBindings()
{
    ar::mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<ar::dist::Normal>(1.0, 0.25);
    in.fixed["b"] = 0.5;
    return in;
}

} // namespace

TEST(Framework, AnalyzeMultiFirstOutputMatchesAnalyze)
{
    // Fused multi-output propagation must not change the primary
    // analysis: output 0 of analyzeMulti is bit-identical to a
    // single-output analyze() of the same variable.
    c::Framework fw({2000, "latin-hypercube"});
    fw.setSystem(twoOutputSystem());
    const auto in = xNormalBindings();
    ar::risk::QuadraticRisk fn;
    const auto single = fw.analyze("y", in, fn, 2.5, 7);
    const auto multi = fw.analyzeMulti({"y", "z"}, in, fn, 2.5, 7);
    EXPECT_EQ(multi.samples, single.samples);
    EXPECT_DOUBLE_EQ(multi.risk, single.risk);
    EXPECT_DOUBLE_EQ(multi.reference, single.reference);

    // The co-output matches its own single-output propagation.
    ASSERT_EQ(multi.co_outputs.size(), 1u);
    EXPECT_EQ(multi.co_outputs[0].name, "z");
    const auto z_alone = fw.analyze("z", in, fn, 1.5, 7);
    EXPECT_EQ(multi.co_outputs[0].samples, z_alone.samples);
    EXPECT_DOUBLE_EQ(multi.co_outputs[0].summary.mean,
                     z_alone.summary.mean);
}

TEST(Framework, ProgramIsMemoizedAndInvalidated)
{
    c::Framework fw;
    fw.setSystem(twoOutputSystem());
    const auto &a = fw.program({"y", "z"});
    const auto &b = fw.program({"y", "z"});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.numOutputs(), 2u);

    // A new system must drop the cached program (compare behaviour,
    // not addresses -- the allocator may reuse the node).
    ar::symbolic::EquationSystem sys2;
    sys2.addEquation("y = 10 * x");
    fw.setSystem(std::move(sys2));
    const auto &c2 = fw.program({"y"});
    const double arg = 3.0;
    double out = 0.0;
    c2.eval(std::span<const double>(&arg, 1), std::span<double>(&out, 1));
    EXPECT_DOUBLE_EQ(out, 30.0);
}

TEST(Framework, ProgramWithNoOutputsIsFatal)
{
    c::Framework fw;
    fw.setSystem(twoOutputSystem());
    EXPECT_THROW(fw.program({}), ar::util::FatalError);
}

TEST(Framework, UpdateEquationRecompilesEditedCone)
{
    c::Framework fw;
    fw.setSystem(simpleSystem());
    EXPECT_DOUBLE_EQ(
        fw.evaluateCertain("y", {{"x", 3.0}, {"b", 1.0}}), 7.0);

    const auto out = fw.updateEquation("y = 3 * x + b");
    EXPECT_GE(out.recompiled, 1u);
    EXPECT_DOUBLE_EQ(
        fw.evaluateCertain("y", {{"x", 3.0}, {"b", 1.0}}), 10.0);

    // The edited framework answers exactly like one built fresh on
    // the edited system.
    ar::symbolic::EquationSystem sys;
    sys.addEquation("y = 3 * x + b");
    sys.markUncertain("x");
    c::Framework fresh;
    fresh.setSystem(std::move(sys));
    EXPECT_EQ(fw.evaluateCertain("y", {{"x", 0.25}, {"b", -2.0}}),
              fresh.evaluateCertain("y", {{"x", 0.25}, {"b", -2.0}}));
}

TEST(Framework, UpdateEquationRevalidatesUntouchedOutputs)
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("y = 2 * x");
    sys.addEquation("w = q * q");
    c::Framework fw;
    fw.setSystem(std::move(sys));
    (void)fw.compiled("y");
    (void)fw.compiled("w");

    const auto out = fw.updateEquation("y = 5 * x");
    // w is outside the edited cone: its cached tape revalidates.
    EXPECT_GE(out.revalidated, 1u);
    EXPECT_DOUBLE_EQ(fw.evaluateCertain("w", {{"q", 3.0}}), 9.0);
    EXPECT_DOUBLE_EQ(fw.evaluateCertain("y", {{"x", 2.0}}), 10.0);
}

TEST(Framework, UpdateEquationPatchesConstOnlyProgramEdit)
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("y = x * 3 + 7");
    sys.addEquation("w = x + 2");
    c::Framework fw;
    fw.setSystem(std::move(sys));
    const auto &before = fw.program({"y", "w"});
    const std::size_t tape = before.tapeLength();

    // 3 -> 5 moves one Const slot; the fused tape is patched in
    // place, not rebuilt.
    const auto out = fw.updateEquation("y = x * 5 + 7");
    EXPECT_EQ(out.patched, 1u);
    const auto &after = fw.program({"y", "w"});
    EXPECT_EQ(after.tapeLength(), tape);

    std::vector<double> vals(2);
    after.eval(std::vector<double>{4.0}, vals);
    EXPECT_DOUBLE_EQ(vals[0], 27.0);
    EXPECT_DOUBLE_EQ(vals[1], 6.0);
}

TEST(Framework, UpdateEquationNonSymbolLhsThrows)
{
    c::Framework fw;
    fw.setSystem(simpleSystem());
    EXPECT_THROW(fw.updateEquation("y + 1 = x"),
                 ar::util::ParseError);
}

TEST(Framework, UpdateEquationWithoutSystemIsFatal)
{
    c::Framework fw;
    EXPECT_THROW(fw.updateEquation("y = 1"), ar::util::FatalError);
}
