/**
 * @file
 * Unit tests for Figure-10 style optimality classification.
 */

#include <gtest/gtest.h>

#include "explore/optimality.hh"
#include "util/logging.hh"

namespace x = ar::explore;

namespace
{

x::DesignOutcome
outcome(std::size_t idx, double expected, double risk)
{
    x::DesignOutcome o;
    o.design_index = idx;
    o.expected = expected;
    o.risk = risk;
    return o;
}

} // namespace

TEST(Optimality, ArgmaxAndArgmin)
{
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 1.0, 0.5), outcome(1, 1.2, 0.8),
        outcome(2, 0.9, 0.1)};
    EXPECT_EQ(x::argmaxExpected(outs), 1u);
    EXPECT_EQ(x::argminRisk(outs), 2u);
}

TEST(Optimality, EmptyListIsFatal)
{
    const std::vector<x::DesignOutcome> none;
    EXPECT_THROW(x::argmaxExpected(none), ar::util::FatalError);
    EXPECT_THROW(x::argminRisk(none), ar::util::FatalError);
}

TEST(Optimality, OptWhenConventionalWinsBoth)
{
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 1.2, 0.1), outcome(1, 1.0, 0.5)};
    const auto res = x::classifyDesigns(outs, 0);
    EXPECT_EQ(res.cls, x::DesignClass::Opt);
    EXPECT_EQ(res.perf_opt, 0u);
    EXPECT_EQ(res.risk_opt, 0u);
}

TEST(Optimality, PerfOptOnly)
{
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 1.2, 0.5), outcome(1, 1.0, 0.1)};
    const auto res = x::classifyDesigns(outs, 0);
    EXPECT_EQ(res.cls, x::DesignClass::PerfOptOnly);
}

TEST(Optimality, SubOptNoTradeoff)
{
    // Another design beats conventional in BOTH objectives.
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 1.0, 0.5), outcome(1, 1.2, 0.1)};
    const auto res = x::classifyDesigns(outs, 0);
    EXPECT_EQ(res.cls, x::DesignClass::SubOpt);
}

TEST(Optimality, SubOptWithTradeoff)
{
    // Conventional loses; perf-opt and risk-opt are different
    // designs with a genuine trade-off between them.
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 1.0, 0.5), outcome(1, 1.3, 0.3),
        outcome(2, 1.1, 0.05)};
    const auto res = x::classifyDesigns(outs, 0);
    EXPECT_EQ(res.cls, x::DesignClass::SubOptTradeoff);
    EXPECT_EQ(res.perf_opt, 1u);
    EXPECT_EQ(res.risk_opt, 2u);
}

TEST(Optimality, ToleranceAbsorbsNoise)
{
    // Conventional within 0.1% of the best: counts as optimal.
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 0.9995, 0.1), outcome(1, 1.0, 0.1)};
    const auto res = x::classifyDesigns(outs, 0, 2e-3);
    EXPECT_EQ(res.cls, x::DesignClass::Opt);
}

TEST(Optimality, OutOfRangeConventionalIsFatal)
{
    const std::vector<x::DesignOutcome> outs{outcome(0, 1.0, 0.1)};
    EXPECT_THROW(x::classifyDesigns(outs, 5), ar::util::FatalError);
}

TEST(Optimality, ZeroRiskEverywhereIsOptWhenPerfOptimal)
{
    // The sigma = 0 corner of Figure 10.
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 1.0, 0.0), outcome(1, 0.8, 0.0)};
    const auto res = x::classifyDesigns(outs, 0);
    EXPECT_EQ(res.cls, x::DesignClass::Opt);
}

TEST(Optimality, LabelsRender)
{
    EXPECT_EQ(x::toString(x::DesignClass::Opt), "Opt");
    EXPECT_EQ(x::toString(x::DesignClass::PerfOptOnly),
              "PerfOptOnly");
    EXPECT_EQ(x::toString(x::DesignClass::SubOpt), "SubOpt");
    EXPECT_EQ(x::toString(x::DesignClass::SubOptTradeoff),
              "SubOpt+Tradeoff");
}
