/**
 * @file
 * Fault-report plumbing tests for the pooled design-space evaluator.
 *
 * The Hill-Marty speedup model guards its own degenerate corners
 * (zero serial/parallel throughput yields speedup 0, not Inf), and
 * the lognormal pools are mean-parameterized, so the classic explore
 * hot path cannot naturally emit a non-finite sample.  These tests
 * pin the *clean-path* contract -- an all-finite sweep reports zero
 * faults with full effective N, for every policy and thread count --
 * plus the one natural fault source the multi-state layer adds: an
 * unmodeled-state probability gap samples NaN multipliers that must
 * flow through the configured policy.
 * Harness-driven fault behavior is exercised at the mc layer
 * (tests/mc/test_fault_containment.cc), which shares the FaultReport
 * vocabulary and policy code paths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "explore/evaluate.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "model/hill_marty.hh"
#include "risk/risk_function.hh"

namespace x = ar::explore;
namespace m = ar::model;

namespace
{

std::vector<m::CoreConfig>
threePaperDesigns()
{
    return {m::symCores(), m::asymCores(), m::heteroCores()};
}

} // namespace

TEST(SweepFaults, CleanSweepReportsZeroFaultsForAllPolicies)
{
    const auto designs = threePaperDesigns();
    for (ar::util::FaultPolicy policy :
         {ar::util::FaultPolicy::FailFast,
          ar::util::FaultPolicy::Discard,
          ar::util::FaultPolicy::Saturate}) {
        x::SweepConfig cfg;
        cfg.trials = 500;
        cfg.fault_policy = policy;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     cfg);
        ar::risk::QuadraticRisk fn;
        const auto outcomes = eval.evaluateAll(fn, 30.0);
        const auto &report = eval.faultReport();
        EXPECT_TRUE(report.clean());
        EXPECT_EQ(report.policy, policy);
        EXPECT_EQ(report.trials, 500u);
        EXPECT_EQ(report.effective_trials, 500u);
        for (const auto &o : outcomes) {
            EXPECT_EQ(o.faults, 0u);
            EXPECT_EQ(o.effective_trials, 500u);
        }
    }
}

TEST(SweepFaults, ReportAndOutcomesBitIdenticalAcrossThreads)
{
    const auto designs = threePaperDesigns();
    auto run = [&](std::size_t threads) {
        x::SweepConfig cfg;
        cfg.trials = 1000;
        cfg.threads = threads;
        cfg.fault_policy = ar::util::FaultPolicy::Discard;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     cfg);
        ar::risk::QuadraticRisk fn;
        return std::make_pair(eval.evaluateAll(fn, 30.0),
                              eval.faultReport());
    };
    const auto [serial_outcomes, serial_report] = run(1);
    for (std::size_t threads : {2u, 8u}) {
        const auto [outcomes, report] = run(threads);
        EXPECT_EQ(report.faulty_trials, serial_report.faulty_trials);
        EXPECT_EQ(report.effective_trials,
                  serial_report.effective_trials);
        EXPECT_EQ(report.by_kind, serial_report.by_kind);
        EXPECT_EQ(report.by_output, serial_report.by_output);
        ASSERT_EQ(outcomes.size(), serial_outcomes.size());
        for (std::size_t d = 0; d < outcomes.size(); ++d) {
            EXPECT_EQ(outcomes[d].expected,
                      serial_outcomes[d].expected);
            EXPECT_EQ(outcomes[d].stddev, serial_outcomes[d].stddev);
            EXPECT_EQ(outcomes[d].risk, serial_outcomes[d].risk);
            EXPECT_EQ(outcomes[d].effective_trials,
                      serial_outcomes[d].effective_trials);
        }
    }
}

TEST(SweepFaults, MultiStateGapFollowsFaultPolicy)
{
    // A multi-state spec whose probabilities sum below 1 leaves
    // unmodeled-state mass: those trials sample a NaN multiplier and
    // must flow through the configured fault policy like any other
    // non-finite input.
    const auto designs = threePaperDesigns();
    auto spec = m::UncertaintySpec::all(0.2);
    spec.core_states = {{1.0, 0.8}, {0.5, 0.1}}; // 0.1 gap
    ar::risk::QuadraticRisk fn;

    {
        x::SweepConfig cfg;
        cfg.trials = 500;
        cfg.fault_policy = ar::util::FaultPolicy::FailFast;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(), spec, cfg);
        EXPECT_THROW(eval.evaluateAll(fn, 30.0), ar::util::FaultError);
    }
    {
        x::SweepConfig cfg;
        cfg.trials = 500;
        cfg.fault_policy = ar::util::FaultPolicy::Discard;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(), spec, cfg);
        const auto outcomes = eval.evaluateAll(fn, 30.0);
        const auto &report = eval.faultReport();
        EXPECT_FALSE(report.clean());
        EXPECT_GT(report.faulty_trials, 0u);
        EXPECT_LT(report.effective_trials, 500u);
        for (const auto &o : outcomes) {
            EXPECT_GT(o.faults, 0u);
            EXPECT_LT(o.effective_trials, 500u);
            EXPECT_TRUE(std::isfinite(o.expected));
            EXPECT_TRUE(std::isfinite(o.risk));
        }
    }
    {
        x::SweepConfig cfg;
        cfg.trials = 500;
        cfg.fault_policy = ar::util::FaultPolicy::Saturate;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(), spec, cfg);
        const auto outcomes = eval.evaluateAll(fn, 30.0);
        EXPECT_FALSE(eval.faultReport().clean());
        for (const auto &o : outcomes) {
            EXPECT_EQ(o.effective_trials, 500u);
            EXPECT_TRUE(std::isfinite(o.expected));
        }
    }
}

TEST(SweepFaults, FullProbabilityStatesStayClean)
{
    // States that sum to exactly 1 never sample the gap; the sweep
    // stays fault-free.
    const auto designs = threePaperDesigns();
    auto spec = m::UncertaintySpec::all(0.2);
    spec.core_states = {{1.0, 0.85}, {0.5, 0.12}, {0.0, 0.03}};
    x::SweepConfig cfg;
    cfg.trials = 400;
    cfg.fault_policy = ar::util::FaultPolicy::FailFast;
    x::DesignSpaceEvaluator eval(designs, m::appLPHC(), spec, cfg);
    ar::risk::QuadraticRisk fn;
    (void)eval.evaluateAll(fn, 30.0);
    EXPECT_TRUE(eval.faultReport().clean());
}

TEST(SweepFaults, InvalidStateSpecIsFatal)
{
    // Probabilities above 1 (or a sum above 1) are a spec error, not
    // a fault: the pool build refuses them outright.
    const auto designs = threePaperDesigns();
    auto spec = m::UncertaintySpec::all(0.2);
    spec.core_states = {{1.0, 0.8}, {0.5, 0.4}}; // sums to 1.2
    // The constructor builds the pools eagerly, so the invalid
    // Categorical is rejected right there.
    EXPECT_THROW(
        x::DesignSpaceEvaluator(designs, m::appLPHC(), spec, {}),
        ar::util::FatalError);
}
