/**
 * @file
 * Fault-report plumbing tests for the pooled design-space evaluator.
 *
 * The Hill-Marty speedup model guards its own degenerate corners
 * (zero serial/parallel throughput yields speedup 0, not Inf), and
 * the lognormal pools are mean-parameterized, so the explore hot path
 * cannot naturally emit a non-finite sample.  These tests therefore
 * pin the *clean-path* contract: an all-finite sweep reports zero
 * faults with full effective N, for every policy and thread count.
 * Harness-driven fault behavior is exercised at the mc layer
 * (tests/mc/test_fault_containment.cc), which shares the FaultReport
 * vocabulary and policy code paths.
 */

#include <gtest/gtest.h>

#include "explore/evaluate.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "model/hill_marty.hh"
#include "risk/risk_function.hh"

namespace x = ar::explore;
namespace m = ar::model;

namespace
{

std::vector<m::CoreConfig>
threePaperDesigns()
{
    return {m::symCores(), m::asymCores(), m::heteroCores()};
}

} // namespace

TEST(SweepFaults, CleanSweepReportsZeroFaultsForAllPolicies)
{
    const auto designs = threePaperDesigns();
    for (ar::util::FaultPolicy policy :
         {ar::util::FaultPolicy::FailFast,
          ar::util::FaultPolicy::Discard,
          ar::util::FaultPolicy::Saturate}) {
        x::SweepConfig cfg;
        cfg.trials = 500;
        cfg.fault_policy = policy;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     cfg);
        ar::risk::QuadraticRisk fn;
        const auto outcomes = eval.evaluateAll(fn, 30.0);
        const auto &report = eval.faultReport();
        EXPECT_TRUE(report.clean());
        EXPECT_EQ(report.policy, policy);
        EXPECT_EQ(report.trials, 500u);
        EXPECT_EQ(report.effective_trials, 500u);
        for (const auto &o : outcomes) {
            EXPECT_EQ(o.faults, 0u);
            EXPECT_EQ(o.effective_trials, 500u);
        }
    }
}

TEST(SweepFaults, ReportAndOutcomesBitIdenticalAcrossThreads)
{
    const auto designs = threePaperDesigns();
    auto run = [&](std::size_t threads) {
        x::SweepConfig cfg;
        cfg.trials = 1000;
        cfg.threads = threads;
        cfg.fault_policy = ar::util::FaultPolicy::Discard;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     cfg);
        ar::risk::QuadraticRisk fn;
        return std::make_pair(eval.evaluateAll(fn, 30.0),
                              eval.faultReport());
    };
    const auto [serial_outcomes, serial_report] = run(1);
    for (std::size_t threads : {2u, 8u}) {
        const auto [outcomes, report] = run(threads);
        EXPECT_EQ(report.faulty_trials, serial_report.faulty_trials);
        EXPECT_EQ(report.effective_trials,
                  serial_report.effective_trials);
        EXPECT_EQ(report.by_kind, serial_report.by_kind);
        EXPECT_EQ(report.by_output, serial_report.by_output);
        ASSERT_EQ(outcomes.size(), serial_outcomes.size());
        for (std::size_t d = 0; d < outcomes.size(); ++d) {
            EXPECT_EQ(outcomes[d].expected,
                      serial_outcomes[d].expected);
            EXPECT_EQ(outcomes[d].stddev, serial_outcomes[d].stddev);
            EXPECT_EQ(outcomes[d].risk, serial_outcomes[d].risk);
            EXPECT_EQ(outcomes[d].effective_trials,
                      serial_outcomes[d].effective_trials);
        }
    }
}
