/**
 * @file
 * Unit tests for design-space enumeration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "explore/design_space.hh"
#include "util/logging.hh"

namespace x = ar::explore;

namespace
{

bool
isPowerOfTwo(double v)
{
    const double l = std::log2(v);
    return std::fabs(l - std::round(l)) < 1e-12;
}

} // namespace

TEST(DesignSpace, AllDesignsConsumeFullBudget)
{
    const auto designs = x::enumerateDesigns();
    ASSERT_FALSE(designs.empty());
    for (const auto &d : designs)
        ASSERT_DOUBLE_EQ(d.totalArea(), 256.0);
}

TEST(DesignSpace, NoDuplicates)
{
    const auto designs = x::enumerateDesigns();
    std::set<std::string> keys;
    for (const auto &d : designs)
        ASSERT_TRUE(keys.insert(d.describe()).second)
            << "duplicate " << d.describe();
}

TEST(DesignSpace, ContainsPaperExampleConfigs)
{
    const auto designs = x::enumerateDesigns();
    std::set<std::string> keys;
    for (const auto &d : designs)
        keys.insert(d.describe());
    EXPECT_TRUE(keys.count("32x8"));
    EXPECT_TRUE(keys.count("1x128 + 16x8"));
    EXPECT_TRUE(keys.count("1x256"));
    EXPECT_TRUE(keys.count("1x128 + 1x64 + 1x32 + 1x16 + 2x8"));
    // The paper's explicit remainder example.
    EXPECT_TRUE(keys.count("1x192 + 8x8"));
}

TEST(DesignSpace, AtMostOneNonPowerOfTwoType)
{
    const auto designs = x::enumerateDesigns();
    for (const auto &d : designs) {
        int odd = 0;
        for (const auto &t : d.types()) {
            if (!isPowerOfTwo(t.area))
                odd += t.count;
        }
        ASSERT_LE(odd, 1) << d.describe();
    }
}

TEST(DesignSpace, CoreSizesWithinBounds)
{
    const auto designs = x::enumerateDesigns();
    for (const auto &d : designs) {
        for (const auto &t : d.types()) {
            ASSERT_GE(t.area, 8.0) << d.describe();
            ASSERT_LE(t.area, 256.0) << d.describe();
        }
    }
}

TEST(DesignSpace, CountIsSubstantial)
{
    // The 256-unit space holds hundreds of configurations.
    const auto designs = x::enumerateDesigns();
    EXPECT_GT(designs.size(), 150u);
    EXPECT_LT(designs.size(), 5000u);
}

TEST(DesignSpace, SmallerBudgetEnumeratesByHand)
{
    // Budget 16, cores 8..16: {1x16}, {2x8}, {1x8 + 1x8rem}
    // -> canonical {1x16, 2x8} only.
    x::DesignSpaceParams p;
    p.total_area = 16.0;
    p.min_core = 8.0;
    p.max_core = 16.0;
    const auto designs = x::enumerateDesigns(p);
    std::set<std::string> keys;
    for (const auto &d : designs)
        keys.insert(d.describe());
    EXPECT_EQ(keys.size(), 2u);
    EXPECT_TRUE(keys.count("1x16"));
    EXPECT_TRUE(keys.count("2x8"));
}

TEST(DesignSpace, Budget32EnumeratesByHand)
{
    x::DesignSpaceParams p;
    p.total_area = 32.0;
    p.min_core = 8.0;
    p.max_core = 32.0;
    const auto designs = x::enumerateDesigns(p);
    std::set<std::string> keys;
    for (const auto &d : designs)
        keys.insert(d.describe());
    // {1x32}, {2x16}, {1x16+2x8}, {4x8}, {1x24+1x8}, {1x16 + 1x16}
    // canonical: 1x32, 2x16, 1x16+2x8, 4x8, 1x24+1x8.
    EXPECT_EQ(keys.size(), 5u);
    EXPECT_TRUE(keys.count("1x24 + 1x8"));
}

TEST(DesignSpace, InvalidParamsAreFatal)
{
    x::DesignSpaceParams p;
    p.total_area = 0.0;
    EXPECT_THROW(x::enumerateDesigns(p), ar::util::FatalError);
    p = {};
    p.max_core = 4.0;
    p.min_core = 8.0;
    EXPECT_THROW(x::enumerateDesigns(p), ar::util::FatalError);
}
