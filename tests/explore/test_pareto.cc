/**
 * @file
 * Unit tests for Pareto-front extraction.
 */

#include <gtest/gtest.h>

#include "explore/pareto.hh"

namespace x = ar::explore;

namespace
{

x::DesignOutcome
outcome(std::size_t idx, double expected, double risk)
{
    x::DesignOutcome o;
    o.design_index = idx;
    o.expected = expected;
    o.risk = risk;
    return o;
}

} // namespace

TEST(Pareto, DominatesBasics)
{
    EXPECT_TRUE(x::dominates(outcome(0, 1.0, 0.1),
                             outcome(1, 0.9, 0.2)));
    EXPECT_TRUE(x::dominates(outcome(0, 1.0, 0.1),
                             outcome(1, 1.0, 0.2)));
    EXPECT_FALSE(x::dominates(outcome(0, 1.0, 0.1),
                              outcome(1, 1.0, 0.1)));
    EXPECT_FALSE(x::dominates(outcome(0, 1.2, 0.3),
                              outcome(1, 1.0, 0.1)));
}

TEST(Pareto, SinglePointIsTheFront)
{
    const std::vector<x::DesignOutcome> outs{outcome(0, 1.0, 0.5)};
    const auto front = x::paretoFront(outs);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0], 0u);
}

TEST(Pareto, DominatedPointsExcluded)
{
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 1.0, 0.5),  // dominated by 1
        outcome(1, 1.2, 0.3),
        outcome(2, 0.8, 0.1)}; // keeps lowest risk
    const auto front = x::paretoFront(outs);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0], 1u);
    EXPECT_EQ(front[1], 2u);
}

TEST(Pareto, FrontOrderedByDescendingPerformance)
{
    const std::vector<x::DesignOutcome> outs{
        outcome(0, 0.8, 0.05), outcome(1, 1.2, 0.5),
        outcome(2, 1.0, 0.2)};
    const auto front = x::paretoFront(outs);
    ASSERT_EQ(front.size(), 3u);
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_GE(outs[front[i - 1]].expected,
                  outs[front[i]].expected);
        EXPECT_LE(outs[front[i]].risk, outs[front[i - 1]].risk);
    }
}

TEST(Pareto, FrontIsMutuallyNonDominating)
{
    std::vector<x::DesignOutcome> outs;
    for (int i = 0; i < 50; ++i) {
        const double e = (i * 7919 % 100) / 100.0;
        const double r = (i * 104729 % 100) / 100.0;
        outs.push_back(outcome(i, e, r));
    }
    const auto front = x::paretoFront(outs);
    for (std::size_t a : front) {
        for (std::size_t b : front) {
            if (a != b)
                ASSERT_FALSE(x::dominates(outs[a], outs[b]));
        }
    }
}

TEST(Pareto, EveryPointIsDominatedByOrOnTheFront)
{
    std::vector<x::DesignOutcome> outs;
    for (int i = 0; i < 30; ++i) {
        outs.push_back(outcome(i, (i % 7) / 7.0, (i % 5) / 5.0));
    }
    const auto front = x::paretoFront(outs);
    for (std::size_t i = 0; i < outs.size(); ++i) {
        bool on_front = false;
        for (std::size_t f : front)
            on_front = on_front || f == i;
        if (on_front)
            continue;
        bool dominated = false;
        for (std::size_t f : front)
            dominated = dominated || x::dominates(outs[f], outs[i]);
        // Ties (equal in both objectives) also count as covered.
        bool tied = false;
        for (std::size_t f : front) {
            tied = tied || (outs[f].expected == outs[i].expected &&
                            outs[f].risk == outs[i].risk);
        }
        ASSERT_TRUE(dominated || tied) << "point " << i;
    }
}

TEST(Pareto, EmptyInputGivesEmptyFront)
{
    const std::vector<x::DesignOutcome> none;
    EXPECT_TRUE(x::paretoFront(none).empty());
}
