/**
 * @file
 * Unit tests for the pooled design-space evaluator, including its
 * agreement with the generic symbolic propagation pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hh"
#include "explore/evaluate.hh"
#include "math/numeric.hh"
#include "model/hill_marty.hh"
#include "risk/risk_function.hh"
#include "util/logging.hh"

namespace x = ar::explore;
namespace m = ar::model;

namespace
{

std::vector<m::CoreConfig>
threePaperDesigns()
{
    return {m::symCores(), m::asymCores(), m::heteroCores()};
}

} // namespace

TEST(Evaluate, CertainSpecReproducesNominalSpeedup)
{
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    x::SweepConfig cfg;
    cfg.trials = 64;
    x::DesignSpaceEvaluator eval(designs, app,
                                 m::UncertaintySpec::none(), cfg);
    ar::risk::QuadraticRisk fn;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[0], app.f, app.c);
    const auto outcomes = eval.evaluateAll(fn, ref);
    ASSERT_EQ(outcomes.size(), 3u);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        const double nominal = m::HillMartyEvaluator::nominalSpeedup(
            designs[d], app.f, app.c);
        EXPECT_NEAR(outcomes[d].expected, nominal / ref, 1e-12);
        EXPECT_DOUBLE_EQ(outcomes[d].stddev, 0.0);
    }
}

TEST(Evaluate, UncertaintyWidensDistribution)
{
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    x::SweepConfig cfg;
    cfg.trials = 2000;
    x::DesignSpaceEvaluator eval(
        designs, app, m::UncertaintySpec::all(0.3), cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, 30.0);
    for (const auto &o : outcomes) {
        EXPECT_GT(o.stddev, 0.0);
        EXPECT_GT(o.risk, 0.0);
    }
}

TEST(Evaluate, KeepSamplesRetainsPerDesignData)
{
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.trials = 128;
    cfg.keep_samples = true;
    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::all(0.2), cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, 30.0);
    const auto &samples = eval.samples(1);
    ASSERT_EQ(samples.size(), 128u);
    EXPECT_NEAR(ar::math::mean(samples), outcomes[1].expected,
                1e-12);
}

TEST(Evaluate, SamplesWithoutKeepIsFatal)
{
    const auto designs = threePaperDesigns();
    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::all(0.2), {});
    EXPECT_THROW(eval.samples(0), ar::util::FatalError);
}

TEST(Evaluate, InvalidConfigsAreFatal)
{
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.trials = 0;
    EXPECT_THROW(x::DesignSpaceEvaluator(designs, m::appLPHC(),
                                         m::UncertaintySpec::none(),
                                         cfg),
                 ar::util::FatalError);
    const std::vector<m::CoreConfig> none;
    EXPECT_THROW(x::DesignSpaceEvaluator(none, m::appLPHC(),
                                         m::UncertaintySpec::none(),
                                         {}),
                 ar::util::FatalError);

    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::none(), {});
    ar::risk::QuadraticRisk fn;
    EXPECT_THROW(eval.evaluateAll(fn, 0.0), ar::util::FatalError);
}

TEST(Evaluate, SameSeedIsReproducible)
{
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 500;
    cfg.seed = 99;
    x::DesignSpaceEvaluator a(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    x::DesignSpaceEvaluator b(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    const auto oa = a.evaluateAll(fn, 30.0);
    const auto ob = b.evaluateAll(fn, 30.0);
    for (std::size_t i = 0; i < oa.size(); ++i) {
        EXPECT_DOUBLE_EQ(oa[i].expected, ob[i].expected);
        EXPECT_DOUBLE_EQ(oa[i].risk, ob[i].risk);
    }
}

TEST(Evaluate, ThreadCountDoesNotChangeOutcomes)
{
    // The sweep parallelizes over designs reading shared pools, so
    // every thread count must give bit-identical outcomes -- in both
    // the fab (survivor-pool) and non-fab configurations.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    for (const auto &spec : {m::UncertaintySpec::all(0.2),
                             m::UncertaintySpec::appArch(0.2, 0.2)}) {
        auto run = [&](std::size_t threads) {
            x::SweepConfig cfg;
            cfg.trials = 600;
            cfg.seed = 99;
            cfg.threads = threads;
            cfg.keep_samples = true;
            x::DesignSpaceEvaluator eval(designs, m::appLPHC(), spec,
                                         cfg);
            auto outcomes = eval.evaluateAll(fn, 30.0);
            std::vector<std::vector<double>> samples;
            for (std::size_t d = 0; d < designs.size(); ++d)
                samples.push_back(eval.samples(d));
            return std::make_pair(std::move(outcomes),
                                  std::move(samples));
        };
        const auto serial = run(1);
        for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
            const auto parallel = run(threads);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                ASSERT_EQ(parallel.first[d].expected,
                          serial.first[d].expected);
                ASSERT_EQ(parallel.first[d].stddev,
                          serial.first[d].stddev);
                ASSERT_EQ(parallel.first[d].risk,
                          serial.first[d].risk);
                ASSERT_EQ(parallel.second[d], serial.second[d]);
            }
        }
    }
}

TEST(Evaluate, ApproxModeRejectsKOfOne)
{
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.approx_k = 1;
    EXPECT_THROW(x::DesignSpaceEvaluator(designs, m::appLPHC(),
                                         m::UncertaintySpec::all(0.2),
                                         cfg),
                 ar::util::FatalError);
}

TEST(Evaluate, ApproxModeIsReproducible)
{
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 400;
    cfg.seed = 5;
    cfg.approx_k = 30;
    x::DesignSpaceEvaluator a(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    x::DesignSpaceEvaluator b(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    const auto oa = a.evaluateAll(fn, 30.0);
    const auto ob = b.evaluateAll(fn, 30.0);
    for (std::size_t i = 0; i < oa.size(); ++i)
        EXPECT_DOUBLE_EQ(oa[i].expected, ob[i].expected);
}

TEST(Evaluate, ApproxModeConvergesToTruthWithLargeK)
{
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    const auto spec = m::UncertaintySpec::appArch(0.3, 0.3);
    ar::risk::QuadraticRisk fn;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[1], app.f, app.c);

    x::SweepConfig truth_cfg;
    truth_cfg.trials = 4000;
    truth_cfg.seed = 9;
    x::DesignSpaceEvaluator truth_eval(designs, app, spec,
                                       truth_cfg);
    const auto truth = truth_eval.evaluateAll(fn, ref);

    x::SweepConfig ap_cfg = truth_cfg;
    ap_cfg.seed = 10;
    ap_cfg.approx_k = 4000;
    x::DesignSpaceEvaluator ap_eval(designs, app, spec, ap_cfg);
    const auto approx = ap_eval.evaluateAll(fn, ref);

    for (std::size_t i = 0; i < truth.size(); ++i) {
        EXPECT_NEAR(approx[i].expected, truth[i].expected,
                    0.05 * truth[i].expected)
            << designs[i].describe();
    }
}

TEST(Evaluate, ApproxModeStaysInPhysicalBounds)
{
    // Extracted distributions can overshoot; pools must be clamped
    // so f stays in [0, 1] and speedups stay non-negative.
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.trials = 1000;
    cfg.seed = 11;
    cfg.approx_k = 20;
    cfg.keep_samples = true;
    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::all(0.8), cfg);
    ar::risk::QuadraticRisk fn;
    eval.evaluateAll(fn, 30.0);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        for (double s : eval.samples(d))
            ASSERT_GE(s, 0.0);
    }
}

TEST(Evaluate, AgreesWithSymbolicPropagatorOnMoments)
{
    // Cross-validation of the fast pooled path against the generic
    // framework pipeline for the asymmetric design.
    const auto app = m::appLPHC();
    const auto spec = m::UncertaintySpec::all(0.2);
    const std::vector<m::CoreConfig> designs{m::asymCores()};

    x::SweepConfig cfg;
    cfg.trials = 20000;
    cfg.seed = 7;
    x::DesignSpaceEvaluator eval(designs, app, spec, cfg);
    ar::risk::QuadraticRisk fn;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[0], app.f, app.c);
    const auto fast = eval.evaluateAll(fn, ref);

    ar::core::Framework fw({20000, "latin-hypercube"});
    fw.setSystem(m::buildHillMartySystem(designs[0].numTypes()));
    const auto in = m::groundTruthBindings(designs[0], app, spec);
    const auto slow = fw.analyze("Speedup", in, fn, ref, 8);

    // Same distributions, different sampling plumbing: moments agree
    // statistically.
    EXPECT_NEAR(fast[0].expected, slow.expected() / ref, 0.01);
    EXPECT_NEAR(fast[0].stddev, slow.summary.stddev / ref, 0.01);
    // Risk of normalized samples vs normalized risk of raw samples.
    const double slow_risk_norm =
        ar::risk::archRisk(
            [&] {
                std::vector<double> norm;
                for (double s : slow.samples)
                    norm.push_back(s / ref);
                return norm;
            }(),
            1.0, fn);
    EXPECT_NEAR(fast[0].risk, slow_risk_norm, 0.01);
}

TEST(Evaluate, FusedBackendAgreesWithDirect)
{
    // Same shared pools, two sample computations: the closed-form
    // evaluator and one fused CompiledProgram with one output per
    // design.  The symbolic model folds in a different order than
    // the closed form, so agreement is to floating-point
    // reassociation, not bit-exact.
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    ar::risk::QuadraticRisk fn;
    for (const auto &spec : {m::UncertaintySpec::none(),
                             m::UncertaintySpec::all(0.2),
                             m::UncertaintySpec::appArch(0.2, 0.2)}) {
        for (std::size_t approx_k :
             {std::size_t{0}, std::size_t{20}}) {
            auto run = [&](x::SweepBackend backend) {
                x::SweepConfig cfg;
                cfg.trials = 600;
                cfg.seed = 99;
                cfg.approx_k = approx_k;
                cfg.keep_samples = true;
                cfg.backend = backend;
                x::DesignSpaceEvaluator eval(designs, app, spec,
                                             cfg);
                auto outcomes = eval.evaluateAll(fn, 30.0);
                std::vector<std::vector<double>> samples;
                for (std::size_t d = 0; d < designs.size(); ++d)
                    samples.push_back(eval.samples(d));
                return std::make_pair(std::move(outcomes),
                                      std::move(samples));
            };
            const auto direct = run(x::SweepBackend::Direct);
            const auto fused = run(x::SweepBackend::FusedProgram);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                for (std::size_t t = 0; t < 600; ++t) {
                    const double want = direct.second[d][t];
                    ASSERT_NEAR(fused.second[d][t], want,
                                1e-9 * std::max(1.0, std::abs(want)))
                        << "design " << d << " trial " << t;
                }
                EXPECT_NEAR(fused.first[d].expected,
                            direct.first[d].expected, 1e-9);
                EXPECT_NEAR(fused.first[d].stddev,
                            direct.first[d].stddev, 1e-9);
                EXPECT_NEAR(fused.first[d].risk,
                            direct.first[d].risk, 1e-9);
            }
        }
    }
}

TEST(Evaluate, FusedBackendThreadCountBitIdentical)
{
    // Within the fused backend, trial blocks are disjoint slices of
    // fixed pools, so any thread count gives bit-identical samples.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    auto run = [&](std::size_t threads) {
        x::SweepConfig cfg;
        cfg.trials = 700; // Not a multiple of the 256-trial block.
        cfg.seed = 5;
        cfg.threads = threads;
        cfg.keep_samples = true;
        cfg.backend = x::SweepBackend::FusedProgram;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.2),
                                     cfg);
        auto outcomes = eval.evaluateAll(fn, 30.0);
        std::vector<std::vector<double>> samples;
        for (std::size_t d = 0; d < designs.size(); ++d)
            samples.push_back(eval.samples(d));
        return std::make_pair(std::move(outcomes),
                              std::move(samples));
    };
    const auto serial = run(1);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        const auto parallel = run(threads);
        for (std::size_t d = 0; d < designs.size(); ++d) {
            ASSERT_EQ(parallel.second[d], serial.second[d]);
            ASSERT_EQ(parallel.first[d].expected,
                      serial.first[d].expected);
            ASSERT_EQ(parallel.first[d].risk, serial.first[d].risk);
        }
    }
}
