/**
 * @file
 * Unit tests for the pooled design-space evaluator, including its
 * agreement with the generic symbolic propagation pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hh"
#include "explore/evaluate.hh"
#include "math/numeric.hh"
#include "model/hill_marty.hh"
#include "risk/risk_function.hh"
#include "util/logging.hh"

namespace x = ar::explore;
namespace m = ar::model;

namespace
{

std::vector<m::CoreConfig>
threePaperDesigns()
{
    return {m::symCores(), m::asymCores(), m::heteroCores()};
}

} // namespace

TEST(Evaluate, CertainSpecReproducesNominalSpeedup)
{
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    x::SweepConfig cfg;
    cfg.trials = 64;
    x::DesignSpaceEvaluator eval(designs, app,
                                 m::UncertaintySpec::none(), cfg);
    ar::risk::QuadraticRisk fn;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[0], app.f, app.c);
    const auto outcomes = eval.evaluateAll(fn, ref);
    ASSERT_EQ(outcomes.size(), 3u);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        const double nominal = m::HillMartyEvaluator::nominalSpeedup(
            designs[d], app.f, app.c);
        EXPECT_NEAR(outcomes[d].expected, nominal / ref, 1e-12);
        EXPECT_DOUBLE_EQ(outcomes[d].stddev, 0.0);
    }
}

TEST(Evaluate, UncertaintyWidensDistribution)
{
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    x::SweepConfig cfg;
    cfg.trials = 2000;
    x::DesignSpaceEvaluator eval(
        designs, app, m::UncertaintySpec::all(0.3), cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, 30.0);
    for (const auto &o : outcomes) {
        EXPECT_GT(o.stddev, 0.0);
        EXPECT_GT(o.risk, 0.0);
    }
}

TEST(Evaluate, KeepSamplesRetainsPerDesignData)
{
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.trials = 128;
    cfg.keep_samples = true;
    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::all(0.2), cfg);
    ar::risk::QuadraticRisk fn;
    const auto outcomes = eval.evaluateAll(fn, 30.0);
    const auto &samples = eval.samples(1);
    ASSERT_EQ(samples.size(), 128u);
    EXPECT_NEAR(ar::math::mean(samples), outcomes[1].expected,
                1e-12);
}

TEST(Evaluate, SamplesWithoutKeepIsFatal)
{
    const auto designs = threePaperDesigns();
    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::all(0.2), {});
    EXPECT_THROW(eval.samples(0), ar::util::FatalError);
}

TEST(Evaluate, InvalidConfigsAreFatal)
{
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.trials = 0;
    EXPECT_THROW(x::DesignSpaceEvaluator(designs, m::appLPHC(),
                                         m::UncertaintySpec::none(),
                                         cfg),
                 ar::util::FatalError);
    const std::vector<m::CoreConfig> none;
    EXPECT_THROW(x::DesignSpaceEvaluator(none, m::appLPHC(),
                                         m::UncertaintySpec::none(),
                                         {}),
                 ar::util::FatalError);

    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::none(), {});
    ar::risk::QuadraticRisk fn;
    EXPECT_THROW(eval.evaluateAll(fn, 0.0), ar::util::FatalError);
}

TEST(Evaluate, SameSeedIsReproducible)
{
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 500;
    cfg.seed = 99;
    x::DesignSpaceEvaluator a(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    x::DesignSpaceEvaluator b(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    const auto oa = a.evaluateAll(fn, 30.0);
    const auto ob = b.evaluateAll(fn, 30.0);
    for (std::size_t i = 0; i < oa.size(); ++i) {
        EXPECT_DOUBLE_EQ(oa[i].expected, ob[i].expected);
        EXPECT_DOUBLE_EQ(oa[i].risk, ob[i].risk);
    }
}

TEST(Evaluate, ThreadCountDoesNotChangeOutcomes)
{
    // The sweep parallelizes over designs reading shared pools, so
    // every thread count must give bit-identical outcomes -- in both
    // the fab (survivor-pool) and non-fab configurations.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    for (const auto &spec : {m::UncertaintySpec::all(0.2),
                             m::UncertaintySpec::appArch(0.2, 0.2)}) {
        auto run = [&](std::size_t threads) {
            x::SweepConfig cfg;
            cfg.trials = 600;
            cfg.seed = 99;
            cfg.threads = threads;
            cfg.keep_samples = true;
            x::DesignSpaceEvaluator eval(designs, m::appLPHC(), spec,
                                         cfg);
            auto outcomes = eval.evaluateAll(fn, 30.0);
            std::vector<std::vector<double>> samples;
            for (std::size_t d = 0; d < designs.size(); ++d)
                samples.push_back(eval.samples(d));
            return std::make_pair(std::move(outcomes),
                                  std::move(samples));
        };
        const auto serial = run(1);
        for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
            const auto parallel = run(threads);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                ASSERT_EQ(parallel.first[d].expected,
                          serial.first[d].expected);
                ASSERT_EQ(parallel.first[d].stddev,
                          serial.first[d].stddev);
                ASSERT_EQ(parallel.first[d].risk,
                          serial.first[d].risk);
                ASSERT_EQ(parallel.second[d], serial.second[d]);
            }
        }
    }
}

TEST(Evaluate, ApproxModeRejectsKOfOne)
{
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.approx_k = 1;
    EXPECT_THROW(x::DesignSpaceEvaluator(designs, m::appLPHC(),
                                         m::UncertaintySpec::all(0.2),
                                         cfg),
                 ar::util::FatalError);
}

TEST(Evaluate, ApproxModeIsReproducible)
{
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 400;
    cfg.seed = 5;
    cfg.approx_k = 30;
    x::DesignSpaceEvaluator a(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    x::DesignSpaceEvaluator b(designs, m::appLPHC(),
                              m::UncertaintySpec::all(0.2), cfg);
    const auto oa = a.evaluateAll(fn, 30.0);
    const auto ob = b.evaluateAll(fn, 30.0);
    for (std::size_t i = 0; i < oa.size(); ++i)
        EXPECT_DOUBLE_EQ(oa[i].expected, ob[i].expected);
}

TEST(Evaluate, ApproxModeConvergesToTruthWithLargeK)
{
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    const auto spec = m::UncertaintySpec::appArch(0.3, 0.3);
    ar::risk::QuadraticRisk fn;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[1], app.f, app.c);

    x::SweepConfig truth_cfg;
    truth_cfg.trials = 4000;
    truth_cfg.seed = 9;
    x::DesignSpaceEvaluator truth_eval(designs, app, spec,
                                       truth_cfg);
    const auto truth = truth_eval.evaluateAll(fn, ref);

    x::SweepConfig ap_cfg = truth_cfg;
    ap_cfg.seed = 10;
    ap_cfg.approx_k = 4000;
    x::DesignSpaceEvaluator ap_eval(designs, app, spec, ap_cfg);
    const auto approx = ap_eval.evaluateAll(fn, ref);

    for (std::size_t i = 0; i < truth.size(); ++i) {
        EXPECT_NEAR(approx[i].expected, truth[i].expected,
                    0.05 * truth[i].expected)
            << designs[i].describe();
    }
}

TEST(Evaluate, ApproxModeStaysInPhysicalBounds)
{
    // Extracted distributions can overshoot; pools must be clamped
    // so f stays in [0, 1] and speedups stay non-negative.
    const auto designs = threePaperDesigns();
    x::SweepConfig cfg;
    cfg.trials = 1000;
    cfg.seed = 11;
    cfg.approx_k = 20;
    cfg.keep_samples = true;
    x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                 m::UncertaintySpec::all(0.8), cfg);
    ar::risk::QuadraticRisk fn;
    eval.evaluateAll(fn, 30.0);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        for (double s : eval.samples(d))
            ASSERT_GE(s, 0.0);
    }
}

TEST(Evaluate, AgreesWithSymbolicPropagatorOnMoments)
{
    // Cross-validation of the fast pooled path against the generic
    // framework pipeline for the asymmetric design.
    const auto app = m::appLPHC();
    const auto spec = m::UncertaintySpec::all(0.2);
    const std::vector<m::CoreConfig> designs{m::asymCores()};

    x::SweepConfig cfg;
    cfg.trials = 20000;
    cfg.seed = 7;
    x::DesignSpaceEvaluator eval(designs, app, spec, cfg);
    ar::risk::QuadraticRisk fn;
    const double ref = m::HillMartyEvaluator::nominalSpeedup(
        designs[0], app.f, app.c);
    const auto fast = eval.evaluateAll(fn, ref);

    ar::core::Framework fw({20000, "latin-hypercube"});
    fw.setSystem(m::buildHillMartySystem(designs[0].numTypes()));
    const auto in = m::groundTruthBindings(designs[0], app, spec);
    const auto slow = fw.analyze("Speedup", in, fn, ref, 8);

    // Same distributions, different sampling plumbing: moments agree
    // statistically.
    EXPECT_NEAR(fast[0].expected, slow.expected() / ref, 0.01);
    EXPECT_NEAR(fast[0].stddev, slow.summary.stddev / ref, 0.01);
    // Risk of normalized samples vs normalized risk of raw samples.
    const double slow_risk_norm =
        ar::risk::archRisk(
            [&] {
                std::vector<double> norm;
                for (double s : slow.samples)
                    norm.push_back(s / ref);
                return norm;
            }(),
            1.0, fn);
    EXPECT_NEAR(fast[0].risk, slow_risk_norm, 0.01);
}

TEST(Evaluate, FusedBackendAgreesWithDirect)
{
    // Same shared pools, two sample computations: the closed-form
    // evaluator and one fused CompiledProgram with one output per
    // design.  The symbolic model folds in a different order than
    // the closed form, so agreement is to floating-point
    // reassociation, not bit-exact.
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    ar::risk::QuadraticRisk fn;
    for (const auto &spec : {m::UncertaintySpec::none(),
                             m::UncertaintySpec::all(0.2),
                             m::UncertaintySpec::appArch(0.2, 0.2)}) {
        for (std::size_t approx_k :
             {std::size_t{0}, std::size_t{20}}) {
            auto run = [&](x::SweepBackend backend) {
                x::SweepConfig cfg;
                cfg.trials = 600;
                cfg.seed = 99;
                cfg.approx_k = approx_k;
                cfg.keep_samples = true;
                cfg.backend = backend;
                x::DesignSpaceEvaluator eval(designs, app, spec,
                                             cfg);
                auto outcomes = eval.evaluateAll(fn, 30.0);
                std::vector<std::vector<double>> samples;
                for (std::size_t d = 0; d < designs.size(); ++d)
                    samples.push_back(eval.samples(d));
                return std::make_pair(std::move(outcomes),
                                      std::move(samples));
            };
            const auto direct = run(x::SweepBackend::Direct);
            const auto fused = run(x::SweepBackend::FusedProgram);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                for (std::size_t t = 0; t < 600; ++t) {
                    const double want = direct.second[d][t];
                    ASSERT_NEAR(fused.second[d][t], want,
                                1e-9 * std::max(1.0, std::abs(want)))
                        << "design " << d << " trial " << t;
                }
                EXPECT_NEAR(fused.first[d].expected,
                            direct.first[d].expected, 1e-9);
                EXPECT_NEAR(fused.first[d].stddev,
                            direct.first[d].stddev, 1e-9);
                EXPECT_NEAR(fused.first[d].risk,
                            direct.first[d].risk, 1e-9);
            }
        }
    }
}

TEST(Evaluate, FusedBackendThreadCountBitIdentical)
{
    // Within the fused backend, trial blocks are disjoint slices of
    // fixed pools, so any thread count gives bit-identical samples.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    auto run = [&](std::size_t threads) {
        x::SweepConfig cfg;
        cfg.trials = 700; // Not a multiple of the 256-trial block.
        cfg.seed = 5;
        cfg.threads = threads;
        cfg.keep_samples = true;
        cfg.backend = x::SweepBackend::FusedProgram;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.2),
                                     cfg);
        auto outcomes = eval.evaluateAll(fn, 30.0);
        std::vector<std::vector<double>> samples;
        for (std::size_t d = 0; d < designs.size(); ++d)
            samples.push_back(eval.samples(d));
        return std::make_pair(std::move(outcomes),
                              std::move(samples));
    };
    const auto serial = run(1);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        const auto parallel = run(threads);
        for (std::size_t d = 0; d < designs.size(); ++d) {
            ASSERT_EQ(parallel.second[d], serial.second[d]);
            ASSERT_EQ(parallel.first[d].expected,
                      serial.first[d].expected);
            ASSERT_EQ(parallel.first[d].risk, serial.first[d].risk);
        }
    }
}

namespace
{

m::UncertaintySpec
multiStateSpec(double sigma)
{
    // all(sigma) plus a three-state degradable-core model; the states
    // replace the Bernoulli design-bug factor.
    auto spec = m::UncertaintySpec::all(sigma);
    spec.core_states = {{1.0, 0.85}, {0.5, 0.12}, {0.0, 0.03}};
    return spec;
}

} // namespace

TEST(Evaluate, CorrelatedPoolsChangeOutcomes)
{
    // Regression for the sweep silently dropping `correlate`: the
    // f/c rank correlation must reach the shared pools and move the
    // outcome statistics.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 2000;
    cfg.seed = 7;
    auto indep = m::UncertaintySpec::all(0.3);
    auto corr = indep;
    corr.correlations.push_back({"f", "c", 0.8});
    x::DesignSpaceEvaluator ei(designs, m::appLPHC(), indep, cfg);
    x::DesignSpaceEvaluator ec(designs, m::appLPHC(), corr, cfg);
    const auto oi = ei.evaluateAll(fn, 30.0);
    const auto oc = ec.evaluateAll(fn, 30.0);
    bool moved = false;
    for (std::size_t d = 0; d < designs.size(); ++d)
        moved = moved || oi[d].risk != oc[d].risk;
    EXPECT_TRUE(moved);
}

TEST(Evaluate, CorrelationPreservesPoolMarginals)
{
    // Iman-Conover only permutes the c pool against f, so each
    // design's sample *statistics* shift while the f marginal (and
    // with it any f-only quantity) is untouched.  Pin that by
    // correlating with rho = 0: the reorder must restore the natural
    // order and reproduce the independent sweep bit-for-bit.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 800;
    cfg.seed = 3;
    cfg.keep_samples = true;
    auto indep = m::UncertaintySpec::all(0.25);
    auto zero = indep;
    zero.correlations.push_back({"f", "c", 0.0});
    x::DesignSpaceEvaluator ei(designs, m::appLPHC(), indep, cfg);
    x::DesignSpaceEvaluator ez(designs, m::appLPHC(), zero, cfg);
    const auto oi = ei.evaluateAll(fn, 30.0);
    const auto oz = ez.evaluateAll(fn, 30.0);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        ASSERT_EQ(oi[d].expected, oz[d].expected);
        ASSERT_EQ(oi[d].risk, oz[d].risk);
        ASSERT_EQ(ei.samples(d), ez.samples(d));
    }
}

TEST(Evaluate, CorrelatedSweepThreadCountBitIdentical)
{
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    auto spec = m::UncertaintySpec::all(0.2);
    spec.correlations.push_back({"f", "c", 0.5});
    for (const auto backend :
         {x::SweepBackend::Direct, x::SweepBackend::FusedProgram}) {
        auto run = [&](std::size_t threads) {
            x::SweepConfig cfg;
            cfg.trials = 600;
            cfg.seed = 99;
            cfg.threads = threads;
            cfg.keep_samples = true;
            cfg.backend = backend;
            x::DesignSpaceEvaluator eval(designs, m::appLPHC(), spec,
                                         cfg);
            auto outcomes = eval.evaluateAll(fn, 30.0);
            std::vector<std::vector<double>> samples;
            for (std::size_t d = 0; d < designs.size(); ++d)
                samples.push_back(eval.samples(d));
            return std::make_pair(std::move(outcomes),
                                  std::move(samples));
        };
        const auto serial = run(1);
        for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
            const auto parallel = run(threads);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                ASSERT_EQ(parallel.second[d], serial.second[d]);
                ASSERT_EQ(parallel.first[d].expected,
                          serial.first[d].expected);
                ASSERT_EQ(parallel.first[d].risk,
                          serial.first[d].risk);
            }
        }
    }
}

TEST(Evaluate, CorrelationEditMatchesFreshEvaluator)
{
    // editUncertainty() with a copula change invalidates the outcome
    // cache and re-ranks the pools without redrawing them; the result
    // must be bit-identical to an evaluator built with the
    // correlation from the start.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 700;
    cfg.seed = 11;
    cfg.keep_samples = true;
    const auto indep = m::UncertaintySpec::all(0.2);
    auto corr = indep;
    corr.correlations.push_back({"f", "c", -0.6});

    x::DesignSpaceEvaluator edited(designs, m::appLPHC(), indep, cfg);
    (void)edited.evaluateAll(fn, 30.0);
    edited.editUncertainty(corr);
    const auto oe = edited.evaluateAll(fn, 30.0);

    x::DesignSpaceEvaluator fresh(designs, m::appLPHC(), corr, cfg);
    const auto of = fresh.evaluateAll(fn, 30.0);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        ASSERT_EQ(oe[d].expected, of[d].expected);
        ASSERT_EQ(oe[d].stddev, of[d].stddev);
        ASSERT_EQ(oe[d].risk, of[d].risk);
        ASSERT_EQ(edited.samples(d), fresh.samples(d));
    }

    // And editing the correlation *away* again matches the
    // independent evaluator.
    edited.editUncertainty(indep);
    const auto oi = edited.evaluateAll(fn, 30.0);
    x::DesignSpaceEvaluator fresh_indep(designs, m::appLPHC(), indep,
                                        cfg);
    const auto ofi = fresh_indep.evaluateAll(fn, 30.0);
    for (std::size_t d = 0; d < designs.size(); ++d)
        ASSERT_EQ(oi[d].risk, ofi[d].risk);
}

TEST(Evaluate, UnsupportedCorrelationPairIsFatal)
{
    const auto designs = threePaperDesigns();
    auto spec = m::UncertaintySpec::all(0.2);
    spec.correlations.push_back({"f", "perf", 0.5});
    // The constructor builds the pools eagerly, so the unsupported
    // pair is rejected right there.
    EXPECT_THROW(
        x::DesignSpaceEvaluator(designs, m::appLPHC(), spec, {}),
        ar::util::FatalError);
}

TEST(Evaluate, MultiStateChangesOutcomes)
{
    // Declaring states replaces the Bernoulli design-bug factor, so
    // the sweep statistics move relative to the single-state spec.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 1500;
    cfg.seed = 13;
    x::DesignSpaceEvaluator single(designs, m::appLPHC(),
                                   m::UncertaintySpec::all(0.2), cfg);
    x::DesignSpaceEvaluator multi(designs, m::appLPHC(),
                                  multiStateSpec(0.2), cfg);
    const auto os = single.evaluateAll(fn, 30.0);
    const auto om = multi.evaluateAll(fn, 30.0);
    bool moved = false;
    for (std::size_t d = 0; d < designs.size(); ++d)
        moved = moved || os[d].risk != om[d].risk;
    EXPECT_TRUE(moved);
}

TEST(Evaluate, MultiStateFusedAgreesWithDirect)
{
    // The fused program multiplies "P@s" by the shared state column
    // "S@s"; the Direct backend applies the multiplier in the closed
    // form.  Agreement is to floating-point reassociation, as for
    // every other spec shape.
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    ar::risk::QuadraticRisk fn;
    auto run = [&](x::SweepBackend backend) {
        x::SweepConfig cfg;
        cfg.trials = 600;
        cfg.seed = 99;
        cfg.keep_samples = true;
        cfg.backend = backend;
        x::DesignSpaceEvaluator eval(designs, app, multiStateSpec(0.2),
                                     cfg);
        auto outcomes = eval.evaluateAll(fn, 30.0);
        std::vector<std::vector<double>> samples;
        for (std::size_t d = 0; d < designs.size(); ++d)
            samples.push_back(eval.samples(d));
        return std::make_pair(std::move(outcomes), std::move(samples));
    };
    const auto direct = run(x::SweepBackend::Direct);
    const auto fused = run(x::SweepBackend::FusedProgram);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        for (std::size_t t = 0; t < 600; ++t) {
            const double want = direct.second[d][t];
            ASSERT_NEAR(fused.second[d][t], want,
                        1e-9 * std::max(1.0, std::abs(want)))
                << "design " << d << " trial " << t;
        }
        EXPECT_NEAR(fused.first[d].risk, direct.first[d].risk, 1e-9);
    }
}

TEST(Evaluate, MultiStateThreadCountBitIdentical)
{
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    for (const auto backend :
         {x::SweepBackend::Direct, x::SweepBackend::FusedProgram}) {
        auto run = [&](std::size_t threads) {
            x::SweepConfig cfg;
            cfg.trials = 600;
            cfg.seed = 17;
            cfg.threads = threads;
            cfg.keep_samples = true;
            cfg.backend = backend;
            x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                         multiStateSpec(0.2), cfg);
            auto outcomes = eval.evaluateAll(fn, 30.0);
            std::vector<std::vector<double>> samples;
            for (std::size_t d = 0; d < designs.size(); ++d)
                samples.push_back(eval.samples(d));
            return std::make_pair(std::move(outcomes),
                                  std::move(samples));
        };
        const auto serial = run(1);
        for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
            const auto parallel = run(threads);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                ASSERT_EQ(parallel.second[d], serial.second[d]);
                ASSERT_EQ(parallel.first[d].risk,
                          serial.first[d].risk);
            }
        }
    }
}

TEST(Evaluate, MultiStateEditMatchesFreshEvaluator)
{
    // Toggling states on via editUncertainty() dirties the state
    // stage (and the performance stage, whose effective design-bug
    // sigma changes) and resets the fused program; the replay must be
    // bit-identical to a fresh evaluator.
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    for (const auto backend :
         {x::SweepBackend::Direct, x::SweepBackend::FusedProgram}) {
        x::SweepConfig cfg;
        cfg.trials = 500;
        cfg.seed = 23;
        cfg.keep_samples = true;
        cfg.backend = backend;
        x::DesignSpaceEvaluator edited(designs, m::appLPHC(),
                                       m::UncertaintySpec::all(0.2),
                                       cfg);
        (void)edited.evaluateAll(fn, 30.0);
        edited.editUncertainty(multiStateSpec(0.2));
        const auto oe = edited.evaluateAll(fn, 30.0);

        x::DesignSpaceEvaluator fresh(designs, m::appLPHC(),
                                      multiStateSpec(0.2), cfg);
        const auto of = fresh.evaluateAll(fn, 30.0);
        for (std::size_t d = 0; d < designs.size(); ++d) {
            ASSERT_EQ(oe[d].expected, of[d].expected);
            ASSERT_EQ(oe[d].risk, of[d].risk);
            ASSERT_EQ(edited.samples(d), fresh.samples(d));
        }
    }
}

TEST(Evaluate, StatelessSpecDrawsNoStatePools)
{
    // StageState consumes no RNG when the spec declares no states, so
    // specs written before the multi-state layer sample identically.
    // (The sweep goldens pin this globally; here we pin the local
    // invariant that adding-then-removing states round-trips.)
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    x::SweepConfig cfg;
    cfg.trials = 400;
    cfg.seed = 31;
    const auto plain = m::UncertaintySpec::all(0.2);
    x::DesignSpaceEvaluator edited(designs, m::appLPHC(),
                                   multiStateSpec(0.2), cfg);
    (void)edited.evaluateAll(fn, 30.0);
    edited.editUncertainty(plain);
    const auto oe = edited.evaluateAll(fn, 30.0);
    x::DesignSpaceEvaluator fresh(designs, m::appLPHC(), plain, cfg);
    const auto of = fresh.evaluateAll(fn, 30.0);
    for (std::size_t d = 0; d < designs.size(); ++d) {
        ASSERT_EQ(oe[d].expected, of[d].expected);
        ASSERT_EQ(oe[d].risk, of[d].risk);
    }
}

TEST(Evaluate, StreamedSweepMatchesMaterializedWithinTolerance)
{
    // cfg.stream folds each design's speedup samples through the
    // engine's streaming accumulators instead of materializing the
    // per-design columns.  Welford/Kahan accumulation reassociates
    // the sums, so outcomes agree to rounding, and
    // the streamed sweep is itself bit-identical across threads.
    const auto designs = threePaperDesigns();
    const auto app = m::appLPHC();
    ar::risk::QuadraticRisk fn;
    auto run = [&](bool stream, std::size_t threads) {
        x::SweepConfig cfg;
        cfg.trials = 2000;
        cfg.seed = 77;
        cfg.threads = threads;
        cfg.backend = x::SweepBackend::FusedProgram;
        cfg.stream = stream;
        // Discard: the wide uncertainty may fault the odd trial, and
        // both modes must then drop exactly the same trials.
        cfg.fault_policy = ar::util::FaultPolicy::Discard;
        x::DesignSpaceEvaluator eval(
            designs, app, m::UncertaintySpec::all(0.25), cfg);
        return eval.evaluateAll(fn, 30.0);
    };
    const auto keep = run(false, 1);
    const auto stream = run(true, 1);
    ASSERT_EQ(stream.size(), keep.size());
    for (std::size_t d = 0; d < keep.size(); ++d) {
        EXPECT_EQ(stream[d].effective_trials,
                  keep[d].effective_trials)
            << d;
        EXPECT_EQ(stream[d].faults, keep[d].faults) << d;
        const double scale =
            std::max(1.0, std::abs(keep[d].expected));
        EXPECT_NEAR(stream[d].expected, keep[d].expected,
                    1e-11 * scale)
            << d;
        EXPECT_NEAR(stream[d].stddev, keep[d].stddev, 1e-9 * scale)
            << d;
        EXPECT_NEAR(stream[d].risk, keep[d].risk, 1e-9 * scale)
            << d;
    }
    const auto parallel = run(true, 4);
    for (std::size_t d = 0; d < stream.size(); ++d) {
        EXPECT_EQ(parallel[d].expected, stream[d].expected) << d;
        EXPECT_EQ(parallel[d].stddev, stream[d].stddev) << d;
        EXPECT_EQ(parallel[d].risk, stream[d].risk) << d;
    }
}

TEST(Evaluate, StreamRejectsKeepSamplesAndSaturate)
{
    const auto designs = threePaperDesigns();
    ar::risk::QuadraticRisk fn;
    {
        x::SweepConfig cfg;
        cfg.trials = 64;
        cfg.backend = x::SweepBackend::FusedProgram;
        cfg.stream = true;
        cfg.keep_samples = true;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.2),
                                     cfg);
        EXPECT_THROW(eval.evaluateAll(fn, 30.0),
                     ar::util::FatalError);
    }
    {
        x::SweepConfig cfg;
        cfg.trials = 64;
        cfg.backend = x::SweepBackend::FusedProgram;
        cfg.stream = true;
        cfg.fault_policy = ar::util::FaultPolicy::Saturate;
        x::DesignSpaceEvaluator eval(designs, m::appLPHC(),
                                     m::UncertaintySpec::all(0.2),
                                     cfg);
        EXPECT_THROW(eval.evaluateAll(fn, 30.0),
                     ar::util::FatalError);
    }
}
