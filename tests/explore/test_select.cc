/**
 * @file
 * Unit tests for constrained design selection.
 */

#include <gtest/gtest.h>

#include "explore/select.hh"
#include "util/logging.hh"

namespace x = ar::explore;

namespace
{

x::DesignOutcome
outcome(std::size_t idx, double expected, double risk)
{
    x::DesignOutcome o;
    o.design_index = idx;
    o.expected = expected;
    o.risk = risk;
    return o;
}

std::vector<x::DesignOutcome>
sampleSpace()
{
    return {
        outcome(0, 1.00, 0.50), // fast, risky
        outcome(1, 0.95, 0.20),
        outcome(2, 0.90, 0.05), // safe
        outcome(3, 0.80, 0.40), // dominated
        outcome(4, 0.70, 0.01), // very safe, slow
    };
}

} // namespace

TEST(Select, MinRiskWithPerfFloorPicksSafestFeasible)
{
    const auto outs = sampleSpace();
    const auto pick = x::minRiskWithPerfFloor(outs, 0.9);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 2u);
}

TEST(Select, MinRiskWithHighFloorPicksFastest)
{
    const auto outs = sampleSpace();
    const auto pick = x::minRiskWithPerfFloor(outs, 0.99);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0u);
}

TEST(Select, InfeasibleFloorReturnsNullopt)
{
    const auto outs = sampleSpace();
    EXPECT_FALSE(x::minRiskWithPerfFloor(outs, 1.5).has_value());
}

TEST(Select, MaxPerfWithRiskCapPicksFastestFeasible)
{
    const auto outs = sampleSpace();
    const auto pick = x::maxPerfWithRiskCap(outs, 0.25);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u);
}

TEST(Select, TightRiskCapPicksSafest)
{
    const auto outs = sampleSpace();
    const auto pick = x::maxPerfWithRiskCap(outs, 0.02);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 4u);
}

TEST(Select, InfeasibleCapReturnsNullopt)
{
    const auto outs = sampleSpace();
    EXPECT_FALSE(x::maxPerfWithRiskCap(outs, 0.005).has_value());
}

TEST(Select, KneePointBalancesObjectives)
{
    const auto outs = sampleSpace();
    const auto knee = x::kneePoint(outs);
    // Design 2 is the balanced front point: near-best performance
    // with near-best risk.
    EXPECT_EQ(knee, 2u);
}

TEST(Select, KneeOfSinglePoint)
{
    const std::vector<x::DesignOutcome> one{outcome(0, 1.0, 0.1)};
    EXPECT_EQ(x::kneePoint(one), 0u);
}

TEST(Select, KneeEmptyIsFatal)
{
    const std::vector<x::DesignOutcome> none;
    EXPECT_THROW(x::kneePoint(none), ar::util::FatalError);
}
