/**
 * @file
 * Incremental what-if sweeps: after editApp / editUncertainty /
 * editDesign, the persistent evaluator's next evaluateAll() must be
 * bit-identical to a freshly constructed evaluator over the edited
 * inputs -- under both backends and every thread count -- because
 * stage-checkpointed pools replay the master RNG stream exactly and
 * the fused program recompiles only the edited cone.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "explore/evaluate.hh"
#include "model/app.hh"
#include "model/uncertainty.hh"
#include "risk/risk_function.hh"
#include "util/cancel.hh"
#include "util/fault.hh"

namespace x = ar::explore;
namespace m = ar::model;

namespace
{

std::uint64_t
bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

std::vector<m::CoreConfig>
designs()
{
    // d2 holds the per-size maximum counts, so editing d1 within
    // {4, 16} never perturbs the shared pool layout.
    return {m::CoreConfig({{4.0, 16}}),
            m::CoreConfig({{16.0, 4}}),
            m::CoreConfig({{4.0, 16}, {16.0, 4}})};
}

void
expectBitEqual(const std::vector<x::DesignOutcome> &got,
               const std::vector<x::DesignOutcome> &want,
               const char *ctx)
{
    ASSERT_EQ(got.size(), want.size()) << ctx;
    for (std::size_t d = 0; d < got.size(); ++d) {
        EXPECT_EQ(bits(got[d].expected), bits(want[d].expected))
            << ctx << " design " << d << " expected";
        EXPECT_EQ(bits(got[d].stddev), bits(want[d].stddev))
            << ctx << " design " << d << " stddev";
        EXPECT_EQ(bits(got[d].risk), bits(want[d].risk))
            << ctx << " design " << d << " risk";
        EXPECT_EQ(got[d].faults, want[d].faults)
            << ctx << " design " << d << " faults";
    }
}

x::SweepConfig
config(x::SweepBackend backend, std::size_t threads)
{
    x::SweepConfig cfg;
    cfg.trials = 256;
    cfg.seed = 11;
    cfg.threads = threads;
    cfg.fault_policy = ar::util::FaultPolicy::Discard;
    cfg.backend = backend;
    return cfg;
}

const x::SweepBackend kBackends[] = {x::SweepBackend::Direct,
                                     x::SweepBackend::FusedProgram};
const std::size_t kThreads[] = {1, 2, 8};

} // namespace

TEST(Incremental, RepeatSweepIsBitIdentical)
{
    for (const auto backend : kBackends) {
        x::DesignSpaceEvaluator eval(designs(), m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     config(backend, 1));
        ar::risk::QuadraticRisk fn;
        const auto first = eval.evaluateAll(fn, 30.0);
        const auto second = eval.evaluateAll(fn, 30.0);
        expectBitEqual(second, first, "pool replay");
    }
}

TEST(Incremental, EditAppMatchesFreshEvaluator)
{
    ar::risk::QuadraticRisk fn;
    for (const auto backend : kBackends) {
        for (const auto threads : kThreads) {
            const auto cfg = config(backend, threads);
            x::DesignSpaceEvaluator eval(
                designs(), m::appLPHC(),
                m::UncertaintySpec::all(0.3), cfg);
            (void)eval.evaluateAll(fn, 30.0);
            eval.editApp(m::appHPLC());
            const auto got = eval.evaluateAll(fn, 30.0);

            x::DesignSpaceEvaluator fresh(
                designs(), m::appHPLC(),
                m::UncertaintySpec::all(0.3), cfg);
            expectBitEqual(got, fresh.evaluateAll(fn, 30.0),
                           "editApp");
        }
    }
}

TEST(Incremental, EditUncertaintyMatchesFreshEvaluator)
{
    ar::risk::QuadraticRisk fn;
    const auto before = m::UncertaintySpec::all(0.3);
    // Perf-only change: the f/c stages are replayed from their RNG
    // checkpoints, the perf and fab stages rebuild.
    auto after = before;
    after.sigma_perf = 0.1;
    for (const auto backend : kBackends) {
        for (const auto threads : kThreads) {
            const auto cfg = config(backend, threads);
            x::DesignSpaceEvaluator eval(designs(), m::appLPHC(),
                                         before, cfg);
            (void)eval.evaluateAll(fn, 30.0);
            eval.editUncertainty(after);
            const auto got = eval.evaluateAll(fn, 30.0);

            x::DesignSpaceEvaluator fresh(designs(), m::appLPHC(),
                                          after, cfg);
            expectBitEqual(got, fresh.evaluateAll(fn, 30.0),
                           "editUncertainty");
        }
    }
}

TEST(Incremental, EditDesignInPoolMatchesFreshEvaluator)
{
    // The edited configuration only uses covered sizes and counts
    // below the per-size maxima, so no pool is rebuilt and (under
    // FusedProgram) only the edited output's cone recompiles.
    ar::risk::QuadraticRisk fn;
    const m::CoreConfig edited({{4.0, 4}, {16.0, 2}});
    for (const auto backend : kBackends) {
        for (const auto threads : kThreads) {
            const auto cfg = config(backend, threads);
            x::DesignSpaceEvaluator eval(
                designs(), m::appLPHC(),
                m::UncertaintySpec::all(0.3), cfg);
            (void)eval.evaluateAll(fn, 30.0);
            eval.editDesign(1, edited);
            const auto got = eval.evaluateAll(fn, 30.0);

            auto fresh_designs = designs();
            fresh_designs[1] = edited;
            x::DesignSpaceEvaluator fresh(
                fresh_designs, m::appLPHC(),
                m::UncertaintySpec::all(0.3), cfg);
            expectBitEqual(got, fresh.evaluateAll(fn, 30.0),
                           "editDesign fast path");
        }
    }
}

TEST(Incremental, EditDesignNewSizeMatchesFreshEvaluator)
{
    // A size outside the shared pools forces the perf/fab stages to
    // rebuild; the f/c stages replay from their checkpoints, so the
    // outcome still equals a fresh evaluator bit for bit.
    ar::risk::QuadraticRisk fn;
    const m::CoreConfig edited({{8.0, 8}});
    for (const auto backend : kBackends) {
        const auto cfg = config(backend, 1);
        x::DesignSpaceEvaluator eval(designs(), m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     cfg);
        (void)eval.evaluateAll(fn, 30.0);
        eval.editDesign(1, edited);
        const auto got = eval.evaluateAll(fn, 30.0);

        auto fresh_designs = designs();
        fresh_designs[1] = edited;
        x::DesignSpaceEvaluator fresh(fresh_designs, m::appLPHC(),
                                      m::UncertaintySpec::all(0.3),
                                      cfg);
        expectBitEqual(got, fresh.evaluateAll(fn, 30.0),
                       "editDesign slow path");
    }
}

TEST(Incremental, ChainedEditsMatchFreshEvaluator)
{
    // Edits compose: app, then uncertainty, then two design edits;
    // the surviving pools replay, the rest rebuild in stage order.
    ar::risk::QuadraticRisk fn;
    const auto spec2 = m::UncertaintySpec::all(0.2);
    const m::CoreConfig d1({{4.0, 8}, {16.0, 1}});
    for (const auto backend : kBackends) {
        const auto cfg = config(backend, 2);
        x::DesignSpaceEvaluator eval(designs(), m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     cfg);
        (void)eval.evaluateAll(fn, 30.0);
        eval.editApp(m::appHPHC());
        (void)eval.evaluateAll(fn, 30.0);
        eval.editUncertainty(spec2);
        eval.editDesign(1, d1);
        const auto got = eval.evaluateAll(fn, 30.0);

        auto fresh_designs = designs();
        fresh_designs[1] = d1;
        x::DesignSpaceEvaluator fresh(fresh_designs, m::appHPHC(),
                                      spec2, cfg);
        expectBitEqual(got, fresh.evaluateAll(fn, 30.0),
                       "chained edits");
    }
}

TEST(Incremental, CancelThenRetryIsDeterministic)
{
    // A cancelled sweep must not perturb the persistent state: after
    // installing a fresh token, the retry answers exactly what an
    // uninterrupted evaluator would.
    ar::risk::QuadraticRisk fn;
    for (const auto backend : kBackends) {
        auto cfg = config(backend, 2);
        auto tok = ar::util::CancelToken::create();
        tok.cancel();
        cfg.cancel = tok;
        x::DesignSpaceEvaluator eval(designs(), m::appLPHC(),
                                     m::UncertaintySpec::all(0.3),
                                     cfg);
        EXPECT_THROW((void)eval.evaluateAll(fn, 30.0),
                     ar::util::CancelledError);
        eval.setCancel(ar::util::CancelToken::create());
        const auto got = eval.evaluateAll(fn, 30.0);

        auto plain = config(backend, 2);
        x::DesignSpaceEvaluator fresh(designs(), m::appLPHC(),
                                      m::UncertaintySpec::all(0.3),
                                      plain);
        expectBitEqual(got, fresh.evaluateAll(fn, 30.0),
                       "cancel then retry");
    }
}

TEST(Incremental, EditDesignOutOfRangeIsFatal)
{
    x::DesignSpaceEvaluator eval(designs(), m::appLPHC(),
                                 m::UncertaintySpec::all(0.3),
                                 config(x::SweepBackend::Direct, 1));
    EXPECT_THROW(eval.editDesign(3, m::CoreConfig({{4.0, 1}})),
                 ar::util::FatalError);
}
