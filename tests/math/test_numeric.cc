/**
 * @file
 * Unit tests for numeric utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/numeric.hh"
#include "util/logging.hh"

namespace m = ar::math;

TEST(KahanSum, RecoversSmallTermsNextToLarge)
{
    m::KahanSum acc;
    acc.add(1e16);
    for (int i = 0; i < 10; ++i)
        acc.add(1.0);
    acc.add(-1e16);
    EXPECT_DOUBLE_EQ(acc.value(), 10.0);
}

TEST(KahanSum, EmptyIsZero)
{
    m::KahanSum acc;
    EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(Sum, MatchesNaiveOnBenignData)
{
    const std::vector<double> xs{1.0, 2.0, 3.5, -1.5};
    EXPECT_DOUBLE_EQ(m::sum(xs), 5.0);
}

TEST(Mean, SimpleAverage)
{
    const std::vector<double> xs{2.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(m::mean(xs), 4.0);
}

TEST(Mean, EmptyIsFatal)
{
    const std::vector<double> xs;
    EXPECT_THROW(m::mean(xs), ar::util::FatalError);
}

TEST(Variance, KnownSample)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                 9.0};
    // Population variance 4; sample variance 32/7.
    EXPECT_NEAR(m::variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Variance, SingleSampleIsFatal)
{
    const std::vector<double> xs{1.0};
    EXPECT_THROW(m::variance(xs), ar::util::FatalError);
}

TEST(Stddev, SqrtOfVariance)
{
    const std::vector<double> xs{1.0, 3.0};
    EXPECT_NEAR(m::stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Linspace, EndpointsExact)
{
    const auto g = m::linspace(0.0, 1.0, 11);
    ASSERT_EQ(g.size(), 11u);
    EXPECT_DOUBLE_EQ(g.front(), 0.0);
    EXPECT_DOUBLE_EQ(g.back(), 1.0);
    EXPECT_NEAR(g[5], 0.5, 1e-12);
}

TEST(Linspace, SinglePoint)
{
    const auto g = m::linspace(3.0, 9.0, 1);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_DOUBLE_EQ(g[0], 3.0);
}

TEST(Linspace, ZeroPointsIsFatal)
{
    EXPECT_THROW(m::linspace(0.0, 1.0, 0), ar::util::FatalError);
}

TEST(Logspace, GeometricSpacing)
{
    const auto g = m::logspace(1.0, 100.0, 3);
    ASSERT_EQ(g.size(), 3u);
    EXPECT_DOUBLE_EQ(g[0], 1.0);
    EXPECT_NEAR(g[1], 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(g[2], 100.0);
}

TEST(Logspace, NonPositiveEndpointIsFatal)
{
    EXPECT_THROW(m::logspace(0.0, 1.0, 3), ar::util::FatalError);
}

TEST(Clamp, Basics)
{
    EXPECT_DOUBLE_EQ(m::clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(m::clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(m::clamp(0.3, 0.0, 1.0), 0.3);
}

TEST(ApproxEqual, RelativeAndAbsolute)
{
    EXPECT_TRUE(m::approxEqual(1.0, 1.0 + 1e-12));
    EXPECT_TRUE(m::approxEqual(0.0, 1e-13));
    EXPECT_FALSE(m::approxEqual(1.0, 1.001));
    EXPECT_TRUE(m::approxEqual(1.0, 1.001, 1e-2));
}
