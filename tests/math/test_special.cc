/**
 * @file
 * Unit and property tests for the special functions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/special.hh"
#include "util/logging.hh"

namespace m = ar::math;

TEST(ErfInv, InvertsErf)
{
    for (double x : {-0.99, -0.5, -0.1, 0.0, 0.1, 0.5, 0.99}) {
        EXPECT_NEAR(std::erf(m::erfInv(x)), x, 1e-12)
            << "at x=" << x;
    }
}

TEST(ErfInv, ExtremeArgumentsStillInvert)
{
    for (double x : {-0.999999, 0.999999}) {
        EXPECT_NEAR(std::erf(m::erfInv(x)), x, 1e-9);
    }
}

TEST(ErfInv, OutOfDomainIsFatal)
{
    EXPECT_THROW(m::erfInv(1.5), ar::util::FatalError);
    EXPECT_THROW(m::erfInv(-2.0), ar::util::FatalError);
}

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(m::normalCdf(0.0), 0.5, 1e-15);
    EXPECT_NEAR(m::normalCdf(1.959963984540054), 0.975, 1e-9);
    EXPECT_NEAR(m::normalCdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(NormalPdf, PeakAndSymmetry)
{
    EXPECT_NEAR(m::normalPdf(0.0), 0.3989422804014327, 1e-15);
    EXPECT_DOUBLE_EQ(m::normalPdf(1.3), m::normalPdf(-1.3));
}

TEST(NormalQuantile, InvertsCdf)
{
    for (double p : {0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999}) {
        EXPECT_NEAR(m::normalCdf(m::normalQuantile(p)), p, 1e-10)
            << "at p=" << p;
    }
}

TEST(NormalQuantile, BoundaryIsFatal)
{
    EXPECT_THROW(m::normalQuantile(0.0), ar::util::FatalError);
    EXPECT_THROW(m::normalQuantile(1.0), ar::util::FatalError);
}

TEST(GammaP, MatchesExponentialCdf)
{
    // P(1, x) = 1 - exp(-x).
    for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
        EXPECT_NEAR(m::gammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
    }
}

TEST(GammaP, ChiSquareMedianNearHalf)
{
    // Chi^2_k median ~ k(1 - 2/(9k))^3; P at the median ~ 0.5.
    const double k = 5.0;
    const double median = k * std::pow(1.0 - 2.0 / (9.0 * k), 3.0);
    EXPECT_NEAR(m::gammaP(k / 2.0, median / 2.0), 0.5, 0.01);
}

TEST(GammaP, EdgeCases)
{
    EXPECT_DOUBLE_EQ(m::gammaP(2.0, 0.0), 0.0);
    EXPECT_NEAR(m::gammaP(2.0, 1000.0), 1.0, 1e-12);
    EXPECT_THROW(m::gammaP(-1.0, 1.0), ar::util::FatalError);
    EXPECT_THROW(m::gammaP(1.0, -1.0), ar::util::FatalError);
}

TEST(GammaQ, ComplementsGammaP)
{
    for (double x : {0.5, 2.0, 7.0}) {
        EXPECT_NEAR(m::gammaP(3.0, x) + m::gammaQ(3.0, x), 1.0, 1e-12);
    }
}

TEST(BetaInc, UniformSpecialCase)
{
    // I_x(1, 1) = x.
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_NEAR(m::betaInc(1.0, 1.0, x), x, 1e-12);
}

TEST(BetaInc, SymmetryRelation)
{
    // I_x(a, b) = 1 - I_{1-x}(b, a).
    EXPECT_NEAR(m::betaInc(2.5, 4.0, 0.3),
                1.0 - m::betaInc(4.0, 2.5, 0.7), 1e-12);
}

TEST(BetaInc, BinomialIdentity)
{
    // P(Bin(5, 0.3) <= 2) = I_{0.7}(3, 3).
    double direct = 0.0;
    const double p = 0.3;
    for (int k = 0; k <= 2; ++k) {
        double coef = 1.0;
        for (int j = 0; j < k; ++j)
            coef *= (5.0 - j) / (j + 1.0);
        direct += coef * std::pow(p, k) * std::pow(1 - p, 5 - k);
    }
    EXPECT_NEAR(m::betaInc(3.0, 3.0, 0.7), direct, 1e-12);
}

TEST(BetaInc, DomainErrorsAreFatal)
{
    EXPECT_THROW(m::betaInc(0.0, 1.0, 0.5), ar::util::FatalError);
    EXPECT_THROW(m::betaInc(1.0, 1.0, 1.5), ar::util::FatalError);
}

TEST(LogBinomialCoef, SmallValues)
{
    EXPECT_NEAR(m::logBinomialCoef(5, 2), std::log(10.0), 1e-12);
    EXPECT_NEAR(m::logBinomialCoef(10, 0), 0.0, 1e-12);
    EXPECT_NEAR(m::logBinomialCoef(10, 10), 0.0, 1e-12);
}

TEST(LogBinomialCoef, KGreaterThanNIsFatal)
{
    EXPECT_THROW(m::logBinomialCoef(3, 4), ar::util::FatalError);
}

class NormalQuantileRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(NormalQuantileRoundTrip, QuantileThenCdf)
{
    const double p = GetParam();
    EXPECT_NEAR(m::normalCdf(m::normalQuantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NormalQuantileRoundTrip,
    ::testing::Values(1e-8, 1e-4, 0.01, 0.2, 0.5, 0.8, 0.99, 0.9999,
                      1.0 - 1e-8));
