/**
 * @file
 * Unit tests for scalar optimization and root finding.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/optimize.hh"
#include "util/logging.hh"

namespace m = ar::math;

TEST(GoldenSection, QuadraticMinimum)
{
    const auto res = m::goldenSectionMin(
        [](double x) { return (x - 2.0) * (x - 2.0) + 1.0; }, -10.0,
        10.0);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, 2.0, 1e-6);
    EXPECT_NEAR(res.value, 1.0, 1e-10);
}

TEST(GoldenSection, AsymmetricFunction)
{
    const auto res = m::goldenSectionMin(
        [](double x) { return std::exp(x) - 2.0 * x; }, 0.0, 3.0);
    EXPECT_NEAR(res.x, std::log(2.0), 1e-6);
}

TEST(GoldenSection, InvalidBracketIsFatal)
{
    EXPECT_THROW(
        m::goldenSectionMin([](double x) { return x; }, 1.0, 0.0),
        ar::util::FatalError);
}

TEST(BrentRoot, FindsCosineRoot)
{
    const auto res =
        m::brentRoot([](double x) { return std::cos(x); }, 1.0, 2.0);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x, M_PI / 2.0, 1e-9);
}

TEST(BrentRoot, LinearFunction)
{
    const auto res = m::brentRoot(
        [](double x) { return 3.0 * x - 6.0; }, -100.0, 100.0);
    EXPECT_NEAR(res.x, 2.0, 1e-9);
}

TEST(BrentRoot, NonBracketingIntervalIsFatal)
{
    EXPECT_THROW(m::brentRoot([](double x) { return x * x + 1.0; },
                              -1.0, 1.0),
                 ar::util::FatalError);
}

TEST(GridThenGolden, EscapesLocalMinimum)
{
    // f has a local min near x=-1.7 and global min near x=1.9.
    auto f = [](double x) {
        return std::sin(3.0 * x) + 0.1 * (x - 2.0) * (x - 2.0);
    };
    const auto res = m::gridThenGoldenMin(f, -3.0, 3.0, 128);
    EXPECT_NEAR(res.x, 1.55, 0.2);
}

TEST(GridThenGolden, TooFewGridPointsIsFatal)
{
    EXPECT_THROW(
        m::gridThenGoldenMin([](double x) { return x; }, 0.0, 1.0, 2),
        ar::util::FatalError);
}
