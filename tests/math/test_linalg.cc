/**
 * @file
 * Unit tests for the dense linear-algebra helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/linalg.hh"
#include "util/logging.hh"

namespace m = ar::math;

TEST(Matrix, IdentityAndAccess)
{
    auto eye = m::Matrix::identity(3);
    EXPECT_DOUBLE_EQ(eye.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(eye.at(0, 1), 0.0);
    eye.at(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(eye.at(1, 2), 5.0);
    EXPECT_EQ(eye.size(), 3u);
}

TEST(Cholesky, IdentityFactorsToItself)
{
    const auto l = m::cholesky(m::Matrix::identity(4));
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_DOUBLE_EQ(l.at(r, c), r == c ? 1.0 : 0.0);
}

TEST(Cholesky, KnownFactorization)
{
    // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
    m::Matrix a(2);
    a.at(0, 0) = 4.0;
    a.at(0, 1) = a.at(1, 0) = 2.0;
    a.at(1, 1) = 3.0;
    const auto l = m::cholesky(a);
    EXPECT_NEAR(l.at(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(l.at(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(l.at(1, 1), std::sqrt(2.0), 1e-12);
    EXPECT_DOUBLE_EQ(l.at(0, 1), 0.0);
}

TEST(Cholesky, ReconstructsInput)
{
    m::Matrix a(3);
    const double vals[3][3] = {
        {2.0, 0.5, 0.2}, {0.5, 1.5, 0.3}, {0.2, 0.3, 1.0}};
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a.at(r, c) = vals[r][c];
    const auto l = m::cholesky(a);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            double acc = 0.0;
            for (std::size_t k = 0; k < 3; ++k)
                acc += l.at(r, k) * l.at(c, k);
            EXPECT_NEAR(acc, vals[r][c], 1e-12)
                << "(" << r << "," << c << ")";
        }
    }
}

TEST(Cholesky, NonSymmetricIsFatal)
{
    m::Matrix a = m::Matrix::identity(2);
    a.at(0, 1) = 0.3;
    EXPECT_THROW(m::cholesky(a), ar::util::FatalError);
}

TEST(Cholesky, NotPositiveDefiniteIsFatal)
{
    m::Matrix a = m::Matrix::identity(2);
    a.at(0, 1) = a.at(1, 0) = 1.5; // |rho| > 1
    EXPECT_THROW(m::cholesky(a), ar::util::FatalError);
}

TEST(MatVec, Basics)
{
    m::Matrix a(2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 3.0;
    a.at(1, 1) = 4.0;
    const auto y = m::matVec(a, {1.0, 1.0});
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatVec, DimensionMismatchIsFatal)
{
    m::Matrix a(2);
    EXPECT_THROW(m::matVec(a, {1.0}), ar::util::FatalError);
}
