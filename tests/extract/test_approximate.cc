/**
 * @file
 * Unit tests for whole-model approximation from k samples.
 */

#include <gtest/gtest.h>

#include "extract/approximate.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "model/uncertainty.hh"
#include "util/logging.hh"

namespace e = ar::extract;
namespace m = ar::model;

TEST(Approximate, PreservesStructure)
{
    const auto truth = m::groundTruthBindings(
        m::asymCores(), m::appLPHC(), m::UncertaintySpec::all(0.2));
    ar::util::Rng rng(151);
    const auto approx =
        e::approximateBindings(truth, 50, {}, rng);
    EXPECT_EQ(approx.uncertain.size(), truth.uncertain.size());
    EXPECT_EQ(approx.fixed.size(), truth.fixed.size());
    for (const auto &[name, dist] : truth.uncertain)
        EXPECT_TRUE(approx.uncertain.count(name)) << name;
}

TEST(Approximate, FixedValuesPassThrough)
{
    const auto truth = m::groundTruthBindings(
        m::symCores(), m::appHPLC(), m::UncertaintySpec::all(0.1));
    ar::util::Rng rng(152);
    const auto approx = e::approximateBindings(truth, 30, {}, rng);
    EXPECT_DOUBLE_EQ(approx.fixed.at("A_core0"), 8.0);
}

TEST(Approximate, MeansCloseToTruthAtModerateK)
{
    const auto truth = m::groundTruthBindings(
        m::asymCores(), m::appLPHC(), m::UncertaintySpec::all(0.2));
    ar::util::Rng rng(153);
    const auto approx =
        e::approximateBindings(truth, 200, {}, rng);
    for (const auto &[name, dist] : truth.uncertain) {
        const double t = dist->mean();
        const double a = approx.uncertain.at(name)->mean();
        EXPECT_NEAR(a, t, 0.15 * std::max(std::abs(t), 0.01))
            << name;
    }
}

TEST(Approximate, TooFewSamplesIsFatal)
{
    const auto truth = m::groundTruthBindings(
        m::symCores(), m::appHPLC(), m::UncertaintySpec::all(0.2));
    ar::util::Rng rng(154);
    EXPECT_THROW(e::approximateBindings(truth, 1, {}, rng),
                 ar::util::FatalError);
}

TEST(Approximate, NoUncertaintyIsNoop)
{
    const auto truth = m::groundTruthBindings(
        m::symCores(), m::appHPLC(), m::UncertaintySpec::none());
    ar::util::Rng rng(155);
    const auto approx = e::approximateBindings(truth, 10, {}, rng);
    EXPECT_TRUE(approx.uncertain.empty());
    EXPECT_EQ(approx.fixed, truth.fixed);
}
