/**
 * @file
 * Unit tests for the Figure-2 uncertainty extraction pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dist/lognormal.hh"
#include "extract/extract.hh"
#include "stats/quantiles.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace e = ar::extract;

namespace
{

std::vector<double>
lognormalSample(std::size_t n, std::uint64_t seed)
{
    ar::dist::LogNormal dist(1.0, 0.5);
    ar::util::Rng rng(seed);
    return dist.sampleMany(n, rng);
}

} // namespace

TEST(Extract, LognormalDataTakesBoxCoxPath)
{
    const auto xs = lognormalSample(200, 141);
    const auto res = e::extractUncertainty(xs);
    EXPECT_EQ(res.method, e::ExtractionMethod::BoxCoxBootstrap);
    EXPECT_TRUE(res.boxcox.passed);
}

TEST(Extract, RecoveredDistributionMatchesTruthMoments)
{
    ar::dist::LogNormal truth(1.0, 0.4);
    ar::util::Rng rng(142);
    const auto xs = truth.sampleMany(500, rng);
    const auto res = e::extractUncertainty(xs);
    EXPECT_NEAR(res.distribution->mean(), truth.mean(),
                0.1 * truth.mean());
    EXPECT_NEAR(res.distribution->stddev(), truth.stddev(),
                0.25 * truth.stddev());
}

TEST(Extract, RecoveredDistributionMatchesTruthByKs)
{
    ar::dist::LogNormal truth(0.5, 0.3);
    ar::util::Rng rng(143);
    const auto xs = truth.sampleMany(1000, rng);
    const auto res = e::extractUncertainty(xs);
    ar::util::Rng rng2(144);
    const auto approx = res.distribution->sampleMany(5000, rng2);
    const auto from_truth = truth.sampleMany(5000, rng2);
    EXPECT_LT(ar::stats::ksStatistic(approx, from_truth), 0.06);
}

TEST(Extract, BimodalDataFallsBackToKde)
{
    ar::util::Rng rng(145);
    std::vector<double> xs;
    for (int i = 0; i < 150; ++i) {
        xs.push_back(rng.gaussian(1.0, 0.05));
        xs.push_back(rng.gaussian(10.0, 0.05));
    }
    const auto res = e::extractUncertainty(xs);
    EXPECT_EQ(res.method, e::ExtractionMethod::Kde);
    // KDE must keep both modes.
    EXPECT_GT(res.distribution->pdf(1.0),
              res.distribution->pdf(5.0));
    EXPECT_GT(res.distribution->pdf(10.0),
              res.distribution->pdf(5.0));
}

TEST(Extract, DegenerateSampleGivesPointMass)
{
    const std::vector<double> xs{3.0, 3.0, 3.0, 3.0};
    const auto res = e::extractUncertainty(xs);
    EXPECT_EQ(res.method, e::ExtractionMethod::Degenerate);
    EXPECT_DOUBLE_EQ(res.distribution->mean(), 3.0);
    EXPECT_DOUBLE_EQ(res.distribution->stddev(), 0.0);
}

TEST(Extract, TinySampleUsesKde)
{
    // Below the Box-Cox minimum (8) but still estimable.
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const auto res = e::extractUncertainty(xs);
    EXPECT_EQ(res.method, e::ExtractionMethod::Kde);
}

TEST(Extract, ForceKdeSkipsBoxCox)
{
    const auto xs = lognormalSample(200, 146);
    e::ExtractionConfig cfg;
    cfg.force_kde = true;
    const auto res = e::extractUncertainty(xs, cfg);
    EXPECT_EQ(res.method, e::ExtractionMethod::Kde);
}

TEST(Extract, ForceBoxCoxOverridesGate)
{
    ar::util::Rng rng(147);
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) {
        xs.push_back(rng.gaussian(1.0, 0.05));
        xs.push_back(rng.gaussian(10.0, 0.05));
    }
    e::ExtractionConfig cfg;
    cfg.force_boxcox = true;
    const auto res = e::extractUncertainty(xs, cfg);
    EXPECT_EQ(res.method, e::ExtractionMethod::BoxCoxBootstrap);
}

TEST(Extract, ConflictingForcesAreFatal)
{
    const auto xs = lognormalSample(50, 148);
    e::ExtractionConfig cfg;
    cfg.force_kde = cfg.force_boxcox = true;
    EXPECT_THROW(e::extractUncertainty(xs, cfg),
                 ar::util::FatalError);
}

TEST(Extract, StddevScaleTunesSpread)
{
    const auto xs = lognormalSample(300, 149);
    e::ExtractionConfig half;
    half.stddev_scale = 0.5;
    const auto scaled = e::extractUncertainty(xs, half);
    const auto normal = e::extractUncertainty(xs);
    EXPECT_LT(scaled.distribution->stddev(),
              normal.distribution->stddev());
}

TEST(Extract, OneSampleIsFatal)
{
    const std::vector<double> xs{1.0};
    EXPECT_THROW(e::extractUncertainty(xs), ar::util::FatalError);
}

TEST(Extract, FiftySamplesGoodEnough)
{
    // The paper's headline: < 50 samples suffice.  Mean within 10%.
    ar::dist::LogNormal truth(2.0, 0.3);
    int good = 0;
    for (int rep = 0; rep < 10; ++rep) {
        ar::util::Rng rng(150 + rep);
        const auto xs = truth.sampleMany(50, rng);
        const auto res = e::extractUncertainty(xs);
        const double err =
            std::fabs(res.distribution->mean() - truth.mean()) /
            truth.mean();
        good += err < 0.10;
    }
    EXPECT_GE(good, 8);
}
