/**
 * @file
 * Masked-tail regression tests (satellite): block sizes that are not
 * a multiple of the vector width must neither read nor write outside
 * the SoA block, for both tape interpreters, at every dispatch
 * level, and through the propagator under all three fault policies.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "dist/fault_injection.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "mc/propagator.hh"
#include "simd/dispatch.hh"
#include "symbolic/compile.hh"
#include "symbolic/parser.hh"
#include "symbolic/program.hh"
#include "util/fault.hh"
#include "util/rng.hh"

namespace simd = ar::simd;
namespace mc = ar::mc;
using ar::symbolic::BatchArg;
using ar::symbolic::CompiledExpr;
using ar::symbolic::CompiledProgram;
using ar::symbolic::parseExpr;
using ar::util::FaultPolicy;

namespace
{

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** Odd and prime sizes bracketing every built vector width. */
const std::size_t kOddSizes[] = {1, 2, 3, 5, 7, 9, 11, 13,
                                 15, 17, 31, 33, 63, 65, 255, 257};

} // namespace

TEST(SimdTail, CompiledExprOddSizesMatchScalarPerTrial)
{
    // Arithmetic-only expression: every level is bit-identical to
    // eval(), so odd tails are checked exactly at each one.
    CompiledExpr fn(
        parseExpr("max(a, b) * (a + b) ^ 2 - min(a, b, 1.5) / b"));
    ar::util::Rng rng(0x7a11);
    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        for (const std::size_t n : kOddSizes) {
            std::vector<double> col_a(n), col_b(n);
            for (std::size_t t = 0; t < n; ++t) {
                col_a[t] = rng.uniform(0.2, 3.0);
                col_b[t] = rng.uniform(0.2, 3.0);
            }
            const std::vector<BatchArg> args{{col_a.data(), false},
                                             {col_b.data(), false}};
            constexpr double kSentinel = -941.5;
            std::vector<double> out(n + 8, kSentinel);
            fn.evalBatch(args, n, out.data());
            for (std::size_t t = 0; t < n; ++t) {
                const std::vector<double> sa{col_a[t], col_b[t]};
                ASSERT_EQ(bitsOf(out[t]), bitsOf(fn.eval(sa)))
                    << simd::kernels().name << " n=" << n
                    << " trial " << t;
            }
            for (std::size_t t = n; t < out.size(); ++t)
                ASSERT_EQ(out[t], kSentinel)
                    << simd::kernels().name << " n=" << n
                    << " wrote past the output block at " << t;
        }
    }
}

TEST(SimdTail, CompiledProgramOddSizesMatchScalarPerTrial)
{
    const auto forest = std::vector<ar::symbolic::ExprPtr>{
        parseExpr("(x + y) ^ 2 / (1 + x * y)"),
        parseExpr("max(x, y) - (x + y) ^ 2 * 0.125")};
    CompiledProgram prog(forest);
    ar::util::Rng rng(0x7a12);
    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        for (const std::size_t n : kOddSizes) {
            std::vector<double> col_x(n), col_y(n);
            for (std::size_t t = 0; t < n; ++t) {
                col_x[t] = rng.uniform(0.2, 3.0);
                col_y[t] = rng.uniform(0.2, 3.0);
            }
            const std::vector<BatchArg> args{{col_x.data(), false},
                                             {col_y.data(), false}};
            constexpr double kSentinel = -941.5;
            std::vector<std::vector<double>> rows(
                2, std::vector<double>(n + 8, kSentinel));
            prog.evalBatch(args, n,
                           std::vector<double *>{rows[0].data(),
                                                 rows[1].data()});
            std::vector<double> want(2);
            for (std::size_t t = 0; t < n; ++t) {
                prog.eval(std::vector<double>{col_x[t], col_y[t]},
                          want);
                for (std::size_t o = 0; o < 2; ++o)
                    ASSERT_EQ(bitsOf(rows[o][t]), bitsOf(want[o]))
                        << simd::kernels().name << " n=" << n
                        << " output " << o << " trial " << t;
            }
            for (std::size_t o = 0; o < 2; ++o)
                for (std::size_t t = n; t < rows[o].size(); ++t)
                    ASSERT_EQ(rows[o][t], kSentinel)
                        << simd::kernels().name << " n=" << n
                        << " output " << o
                        << " wrote past the block at " << t;
        }
    }
}

TEST(SimdTail, TranscendentalTapesAreDeterministicPerLevel)
{
    // With log/exp in the tape the scalar comparison no longer holds
    // at vector levels; determinism (same bits on repeat runs and
    // between odd-block and full-block evaluation) still must.
    CompiledExpr fn(parseExpr("exp(log(a) * 0.5) + log(b + 1)"));
    ar::util::Rng rng(0x7a13);
    constexpr std::size_t kN = 257;
    std::vector<double> col_a(kN), col_b(kN);
    for (std::size_t t = 0; t < kN; ++t) {
        col_a[t] = rng.uniform(0.2, 3.0);
        col_b[t] = rng.uniform(0.2, 3.0);
    }
    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        const std::vector<BatchArg> args{{col_a.data(), false},
                                         {col_b.data(), false}};
        std::vector<double> full(kN), again(kN);
        fn.evalBatch(args, kN, full.data());
        fn.evalBatch(args, kN, again.data());
        for (std::size_t t = 0; t < kN; ++t)
            ASSERT_EQ(bitsOf(full[t]), bitsOf(again[t]))
                << simd::kernels().name << " rerun trial " << t;

        // An odd split point must reproduce the same bits: lanes are
        // independent, so trial t's value cannot depend on where the
        // block boundary falls.
        constexpr std::size_t kSplit = 129;
        std::vector<double> split_out(kN);
        fn.evalBatch(args, kSplit, split_out.data());
        const std::vector<BatchArg> rest{
            {col_a.data() + kSplit, false},
            {col_b.data() + kSplit, false}};
        fn.evalBatch(rest, kN - kSplit, split_out.data() + kSplit);
        for (std::size_t t = 0; t < kN; ++t)
            ASSERT_EQ(bitsOf(full[t]), bitsOf(split_out[t]))
                << simd::kernels().name << " split trial " << t;
    }
}

TEST(SimdTail, PropagatorOddTrialsAllPoliciesAllLevels)
{
    // Odd trial counts (255/257 leave 7- and 1-wide tails at AVX-512)
    // through the full propagator under every fault policy.  Thread
    // counts must not change a bit at any fixed level.
    const auto expr = parseExpr("log(x) * y + x / (y + 4)");
    CompiledExpr fn(expr);
    CompiledProgram prog({expr});

    mc::InputBindings in;
    // ~10% of x draws are negated into log's domain fault.
    in.uncertain["x"] = std::make_shared<
        ar::dist::FaultInjectingDistribution>(
        std::make_shared<ar::dist::Normal>(10.0, 2.0), 0.1,
        0xfa17ed,
        ar::dist::FaultInjectingDistribution::Mode::Negate);
    in.uncertain["y"] = std::make_shared<ar::dist::LogNormal>(0.0,
                                                              0.4);

    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        for (const std::size_t trials : {255u, 257u}) {
            for (const auto policy :
                 {FaultPolicy::Discard, FaultPolicy::Saturate}) {
                auto run = [&](std::size_t threads, bool fused) {
                    mc::PropagationConfig cfg;
                    cfg.trials = trials;
                    cfg.threads = threads;
                    cfg.fault_policy = policy;
                    ar::util::Rng rng(21);
                    mc::Propagator prop(cfg);
                    return fused ? prop.runMultiReport(prog, in, rng)
                                 : prop.runManyReport({&fn}, in, rng);
                };
                const auto want = run(1, false);
                ASSERT_EQ(want.faults.trials, trials);
                for (const double v : want.samples[0])
                    ASSERT_TRUE(std::isfinite(v));
                for (const std::size_t threads : {2u, 8u}) {
                    const auto got = run(threads, false);
                    ASSERT_EQ(got.samples[0].size(),
                              want.samples[0].size())
                        << simd::kernels().name;
                    for (std::size_t t = 0;
                         t < want.samples[0].size(); ++t)
                        ASSERT_EQ(bitsOf(got.samples[0][t]),
                                  bitsOf(want.samples[0][t]))
                            << simd::kernels().name << " threads="
                            << threads << " trial " << t;
                    ASSERT_EQ(got.faults.faulty_trials,
                              want.faults.faulty_trials);
                }
                // Fused program path: same trials, same level.
                const auto fused = run(1, true);
                ASSERT_EQ(fused.samples[0].size(),
                          want.samples[0].size());
                ASSERT_EQ(fused.faults.faulty_trials,
                          want.faults.faulty_trials);
            }
            // FailFast: the poisoned input must throw at every level
            // and odd size (faults occur in both body and tail).
            mc::PropagationConfig cfg;
            cfg.trials = trials;
            cfg.threads = 2;
            cfg.fault_policy = FaultPolicy::FailFast;
            ar::util::Rng rng(21);
            mc::Propagator prop(cfg);
            EXPECT_THROW((void)prop.runManyReport({&fn}, in, rng),
                         ar::util::FaultError)
                << simd::kernels().name << " trials=" << trials;
        }
    }
}
