/**
 * @file
 * ULP-accuracy tests for the vectorized transcendentals (satellite:
 * exhaustive edge-case diffs against std:: at every dispatch level).
 * The scalar table must be exactly std::; vector tables must stay
 * within the DESIGN.md 5.6 ULP budget and agree with std:: bitwise
 * on every IEEE special (+-0, denormals, NaN, +-Inf, domain edges).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "math/special.hh"
#include "simd/dispatch.hh"
#include "util/rng.hh"

namespace simd = ar::simd;

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = 5e-324;
constexpr double kDenormBig = 1e-310;

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** ULP distance via the ordered-integer mapping; 0 for identical
 * bits (so NaN == NaN and +0 != -0), huge when signs or specials
 * disagree. */
std::uint64_t
ulpDiff(double a, double b)
{
    const std::uint64_t ba = bitsOf(a), bb = bitsOf(b);
    if (ba == bb)
        return 0;
    if (std::isnan(a) || std::isnan(b))
        return ~0ull; // one NaN, one not (equal NaNs returned above)
    const auto ordered = [](std::uint64_t v) -> std::int64_t {
        return (v >> 63) ? static_cast<std::int64_t>(~v)
                         : static_cast<std::int64_t>(v | (1ull << 63));
    };
    const std::int64_t oa = ordered(ba), ob = ordered(bb);
    return static_cast<std::uint64_t>(oa > ob ? oa - ob : ob - oa);
}

/** Apply a unary kernel to one value. */
double
one(simd::UnaryKernel k, double x)
{
    double out;
    k(&x, &out, 1);
    return out;
}

struct UnaryCase
{
    const char *name;
    simd::UnaryKernel simd::KernelTable::*member;
    double (*ref)(double);
    std::vector<double> domain;   ///< Accuracy-checked points.
    std::vector<double> specials; ///< Must match std:: bitwise.
    std::uint64_t max_ulp;
};

double
refExp(double x)
{
    return std::exp(x);
}
double
refLog(double x)
{
    return std::log(x);
}
double
refSqrt(double x)
{
    return std::sqrt(x);
}
double
refErf(double x)
{
    return std::erf(x);
}
double
refErfc(double x)
{
    return std::erfc(x);
}
double
refErfInv(double x)
{
    if (x < -1.0 || x > 1.0)
        return kNaN;
    return ar::math::erfInv(x);
}
double
refPowHalf(double x)
{
    return std::pow(x, 0.5);
}

std::vector<double>
uniformSweep(double lo, double hi, int count, std::uint64_t seed)
{
    ar::util::Rng rng(seed);
    std::vector<double> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i)
        out.push_back(rng.uniform(lo, hi));
    return out;
}

std::vector<UnaryCase>
unaryCases()
{
    std::vector<UnaryCase> cases;

    // exp: full finite range plus overflow/underflow boundaries.
    auto exp_domain = uniformSweep(-745.0, 709.0, 4000, 0xe1);
    for (const double x : uniformSweep(-3.0, 3.0, 2000, 0xe2))
        exp_domain.push_back(x);
    exp_domain.insert(exp_domain.end(),
                      {-1021.4, -744.0, -708.0, -1e-20, 1e-20,
                       708.0, 709.78, 709.7827128933840868});
    cases.push_back({"exp", &simd::KernelTable::exp, refExp,
                     exp_domain,
                     {0.0, -0.0, kNaN, kInf, -kInf, 710.0, -746.0,
                      1000.0, -1000.0, kDenorm, -kDenorm, kDenormBig},
                     2});

    // log: positive range incl. denormals; specials cover 0, -0,
    // negatives, Inf, NaN.
    auto log_domain = uniformSweep(1e-300, 1e300, 4000, 0x71);
    for (const double x : uniformSweep(0.5, 2.0, 2000, 0x72))
        log_domain.push_back(x);
    log_domain.insert(log_domain.end(),
                      {kDenorm, kDenormBig, 1e-308, 1.0, 2.0,
                       0.9999999999999999, 1.0000000000000002});
    cases.push_back({"log", &simd::KernelTable::log, refLog,
                     log_domain,
                     {0.0, -0.0, -1.0, -kDenorm, -kInf, kInf, kNaN,
                      1.0},
                     2});

    // sqrt is correctly rounded in hardware: 0 ULP everywhere.
    auto sqrt_domain = uniformSweep(0.0, 1e300, 3000, 0x50);
    sqrt_domain.insert(sqrt_domain.end(), {kDenorm, kDenormBig});
    cases.push_back({"sqrt", &simd::KernelTable::sqrt, refSqrt,
                     sqrt_domain,
                     {0.0, -0.0, -1.0, kInf, -kInf, kNaN},
                     0});

    // erf/erfc: all three fdlibm branches plus saturation.
    auto erf_domain = uniformSweep(-6.5, 6.5, 4000, 0xef);
    for (const double x :
         {0.84374, 0.84376, 1.2499, 1.2501, 2.857, 2.858, 5.999,
          6.001, -27.0, 27.0, 1e-10, -1e-10})
        erf_domain.push_back(x);
    cases.push_back({"erf", &simd::KernelTable::erf, refErf,
                     erf_domain,
                     {0.0, -0.0, kInf, -kInf, kNaN, kDenorm,
                      -kDenorm, kDenormBig, 7.0, -7.0},
                     2});
    auto erfc_domain = uniformSweep(-6.0, 26.0, 4000, 0xec);
    for (const double x :
         {0.84374, 0.84376, 1.2499, 1.2501, 2.857, 2.858, -5.999,
          -6.001, 27.5, 28.0})
        erfc_domain.push_back(x);
    cases.push_back({"erfc", &simd::KernelTable::erfc, refErfc,
                     erfc_domain,
                     {0.0, -0.0, kInf, -kInf, kNaN, -6.5, -100.0},
                     2});

    // erfinv: reference is the repo's scalar Giles implementation
    // (no std::erfinv exists); vector Newton steps go through
    // vexp/verf so allow a slightly larger budget.
    auto erfinv_domain = uniformSweep(-0.9999, 0.9999, 4000, 0x1f);
    for (const double x :
         {-0.999999, 0.999999, -0.9999999999, 0.9999999999, 1e-12,
          -1e-12, 0.5, -0.5, 0.99, -0.99})
        erfinv_domain.push_back(x);
    cases.push_back({"erfinv", &simd::KernelTable::erfinv, refErfInv,
                     erfinv_domain,
                     {0.0, -0.0, 1.0, -1.0, 1.5, -1.5, kNaN, kInf,
                      -kInf},
                     4});

    // pow_half: specials and negative bases must match std::pow
    // (checked via the specials list); on positives the vector path
    // is hardware sqrt, which is correctly rounded and so can differ
    // from glibc's ~0.52-ULP pow(x, 0.5) by at most 1 ULP.
    auto ph_domain = uniformSweep(0.0, 1e300, 3000, 0x95);
    ph_domain.insert(ph_domain.end(), {kDenorm, kDenormBig});
    cases.push_back({"pow_half", &simd::KernelTable::pow_half,
                     refPowHalf, ph_domain,
                     {0.0, -0.0, -1.0, -kDenorm, kInf, -kInf, kNaN},
                     1});

    return cases;
}

} // namespace

TEST(SimdTranscendentals, ScalarTableIsExactlyStd)
{
    simd::ScopedLevel pin(simd::Level::Scalar);
    const auto &kt = simd::kernels();
    for (const auto &c : unaryCases()) {
        for (const double x : c.domain)
            ASSERT_EQ(bitsOf(one(kt.*(c.member), x)),
                      bitsOf(c.ref(x)))
                << c.name << "(" << x << ") scalar";
        for (const double x : c.specials)
            ASSERT_EQ(bitsOf(one(kt.*(c.member), x)),
                      bitsOf(c.ref(x)))
                << c.name << "(" << x << ") scalar special";
    }
}

TEST(SimdTranscendentals, VectorLevelsWithinUlpBudget)
{
    for (const auto l : simd::availableLevels()) {
        if (l == simd::Level::Scalar)
            continue;
        simd::ScopedLevel pin(l);
        const auto &kt = simd::kernels();
        for (const auto &c : unaryCases()) {
            // Batched over the whole domain so the vector main loop
            // (not just the one-lane tail) is exercised.
            std::vector<double> got(c.domain.size());
            (kt.*(c.member))(c.domain.data(), got.data(),
                             c.domain.size());
            for (std::size_t i = 0; i < c.domain.size(); ++i) {
                const std::uint64_t d =
                    ulpDiff(got[i], c.ref(c.domain[i]));
                ASSERT_LE(d, c.max_ulp)
                    << c.name << "(" << c.domain[i] << ") at "
                    << kt.name << ": got " << got[i] << " want "
                    << c.ref(c.domain[i]);
            }
            // IEEE specials must agree bitwise (NaN == NaN).
            for (const double x : c.specials) {
                const double g = one(kt.*(c.member), x);
                const double w = c.ref(x);
                ASSERT_TRUE(bitsOf(g) == bitsOf(w) ||
                            (std::isnan(g) && std::isnan(w)))
                    << c.name << "(" << x << ") at " << kt.name
                    << ": got " << g << " want " << w;
            }
        }
    }
}

TEST(SimdTranscendentals, PowDelegatesToStdAtEveryLevel)
{
    // pow keeps per-lane std::pow at every level, so negative bases,
    // fractional exponents and every special must match bitwise.
    const std::vector<double> bases{
        0.0,  -0.0, 1.0,  -1.0, 2.5,   -2.5, 1e300,
        kInf, -kInf, kNaN, kDenorm, -kDenorm, 0.3};
    const std::vector<double> exps{
        0.0,  -0.0, 1.0, -1.0, 0.5,  -0.5, 2.0,
        -2.0, 3.0,  1.5, kInf, -kInf, kNaN};
    std::vector<double> a, b;
    for (const double base : bases)
        for (const double e : exps) {
            a.push_back(base);
            b.push_back(e);
        }
    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        std::vector<double> got(a.size());
        simd::kernels().pow(a.data(), b.data(), got.data(), a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double want = std::pow(a[i], b[i]);
            ASSERT_TRUE(bitsOf(got[i]) == bitsOf(want) ||
                        (std::isnan(got[i]) && std::isnan(want)))
                << "pow(" << a[i] << ", " << b[i] << ") at "
                << simd::kernels().name << ": got " << got[i]
                << " want " << want;
        }
    }
}

TEST(SimdTranscendentals, VectorLevelsAgreeBitwise)
{
    // AVX2 vs AVX-512 (vs NEON): identical bits on every input, the
    // width-independence pillar (one-lane tails run the same
    // generic kernels).
    std::vector<simd::Level> vec;
    for (const auto l : simd::availableLevels())
        if (l != simd::Level::Scalar)
            vec.push_back(l);
    if (vec.size() < 2)
        GTEST_SKIP() << "fewer than two vector levels built";

    for (const auto &c : unaryCases()) {
        auto inputs = c.domain;
        inputs.insert(inputs.end(), c.specials.begin(),
                      c.specials.end());
        std::vector<double> first(inputs.size());
        {
            simd::ScopedLevel pin(vec.front());
            (simd::kernels().*(c.member))(inputs.data(),
                                          first.data(),
                                          inputs.size());
        }
        for (std::size_t v = 1; v < vec.size(); ++v) {
            simd::ScopedLevel pin(vec[v]);
            std::vector<double> got(inputs.size());
            (simd::kernels().*(c.member))(inputs.data(), got.data(),
                                          inputs.size());
            for (std::size_t i = 0; i < inputs.size(); ++i)
                ASSERT_EQ(bitsOf(got[i]), bitsOf(first[i]))
                    << c.name << "(" << inputs[i] << ") "
                    << simd::levelName(vec[v]) << " vs "
                    << simd::levelName(vec.front());
        }
    }
}
