/**
 * @file
 * Runtime SIMD dispatch tests: level enumeration, pinning via
 * setActiveLevel()/ScopedLevel, kernel-table consistency, and the
 * simd.ops / simd.dispatch_level telemetry contract.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "simd/dispatch.hh"

namespace simd = ar::simd;
namespace obs = ar::obs;

TEST(SimdDispatch, AvailableLevelsAscendAndContainScalar)
{
    const auto levels = simd::availableLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), simd::Level::Scalar);
    for (std::size_t i = 1; i < levels.size(); ++i)
        EXPECT_LT(static_cast<int>(levels[i - 1]),
                  static_cast<int>(levels[i]));
}

TEST(SimdDispatch, ActiveLevelIsAvailable)
{
    const auto levels = simd::availableLevels();
    const auto active = simd::activeLevel();
    bool found = false;
    for (const auto l : levels)
        found = found || l == active;
    EXPECT_TRUE(found) << simd::levelName(active);
}

TEST(SimdDispatch, LevelNamesAreStable)
{
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Neon), "neon");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx512), "avx512");
}

TEST(SimdDispatch, KernelTableMatchesActiveLevel)
{
    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        EXPECT_EQ(simd::activeLevel(), l);
        const auto &kt = simd::kernels();
        EXPECT_STREQ(kt.name, simd::levelName(l));
        switch (l) {
          case simd::Level::Scalar:
            EXPECT_EQ(kt.width, 1u);
            break;
          case simd::Level::Neon:
            EXPECT_EQ(kt.width, 2u);
            break;
          case simd::Level::Avx2:
            EXPECT_EQ(kt.width, 4u);
            break;
          case simd::Level::Avx512:
            EXPECT_EQ(kt.width, 8u);
            break;
        }
    }
}

TEST(SimdDispatch, ScopedLevelRestoresOnExit)
{
    const auto before = simd::activeLevel();
    {
        simd::ScopedLevel pin(simd::Level::Scalar);
        EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
        EXPECT_EQ(simd::kernels().width, 1u);
    }
    EXPECT_EQ(simd::activeLevel(), before);
}

TEST(SimdDispatch, ScopedLevelsNest)
{
    const auto levels = simd::availableLevels();
    const auto before = simd::activeLevel();
    {
        simd::ScopedLevel outer(levels.back());
        {
            simd::ScopedLevel inner(simd::Level::Scalar);
            EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
        }
        EXPECT_EQ(simd::activeLevel(), levels.back());
    }
    EXPECT_EQ(simd::activeLevel(), before);
}

TEST(SimdDispatch, RecordBatchFeedsTelemetry)
{
    obs::MetricsRegistry::global().reset();
    obs::setMetricsEnabled(true);
    simd::recordBatch(17);
    simd::recordBatch(25);
    const auto snap = obs::MetricsRegistry::global().scrape();
    obs::setMetricsEnabled(false);
    obs::MetricsRegistry::global().reset();

    EXPECT_EQ(snap.counters.at("simd.ops"), 42u);
    EXPECT_EQ(snap.gauges.at("simd.dispatch_level"),
              static_cast<double>(simd::activeLevel()));
}
