/**
 * @file
 * Kernel-table contract tests: elementwise arithmetic kernels are
 * bit-identical at every dispatch level, in-place aliasing is safe,
 * tails shorter than the vector width never write outside the block,
 * and the quantile kernels reproduce the distribution scalar path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "simd/dispatch.hh"
#include "util/rng.hh"

namespace simd = ar::simd;

namespace
{

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = 5e-324;

/** Mixed magnitudes plus IEEE specials.  Both-NaN pairs are the one
 * case vector add/mul may not reproduce scalar propagation order
 * (the compiler may commute commutative intrinsics), so the operand
 * grid pairs NaN against non-NaN values only. */
std::vector<double>
operandGrid(bool with_nan)
{
    std::vector<double> vals{0.0,     -0.0,  1.0,    -1.0,  0.5,
                             -2.75,   1e300, -1e300, 1e-300, kDenorm,
                             -kDenorm, kInf,  -kInf};
    vals.push_back(with_nan ? kNaN : 3.5); // keep grids equal-sized
    ar::util::Rng rng(0x51a9d);
    for (int i = 0; i < 40; ++i)
        vals.push_back(rng.uniform(-50.0, 50.0));
    return vals;
}

} // namespace

TEST(SimdKernels, BinaryArithmeticBitIdenticalAcrossLevels)
{
    const auto &ref = simd::kernelsScalar();
    const auto a_vals = operandGrid(true);
    const auto b_vals = operandGrid(false);
    const std::size_t n = a_vals.size();
    ASSERT_EQ(n, b_vals.size());

    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        const auto &kt = simd::kernels();
        const struct
        {
            const char *name;
            simd::BinaryKernel got;
            simd::BinaryKernel want;
        } kernels[] = {
            {"add", kt.add, ref.add}, {"mul", kt.mul, ref.mul},
            {"pow", kt.pow, ref.pow}, {"max", kt.max, ref.max},
            {"min", kt.min, ref.min},
        };
        for (const auto &k : kernels) {
            std::vector<double> got(n), want(n);
            k.got(a_vals.data(), b_vals.data(), got.data(), n);
            k.want(a_vals.data(), b_vals.data(), want.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(bitsOf(got[i]), bitsOf(want[i]))
                    << k.name << "(" << a_vals[i] << ", "
                    << b_vals[i] << ") at " << kt.name;
            // Swapped operands cover the NaN-vs-value order too.
            k.got(b_vals.data(), a_vals.data(), got.data(), n);
            k.want(b_vals.data(), a_vals.data(), want.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(bitsOf(got[i]), bitsOf(want[i]))
                    << k.name << "(" << b_vals[i] << ", "
                    << a_vals[i] << ") at " << kt.name;
        }
    }
}

TEST(SimdKernels, UnaryArithmeticBitIdenticalAcrossLevels)
{
    const auto &ref = simd::kernelsScalar();
    const auto vals = operandGrid(true);
    const std::size_t n = vals.size();

    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        const auto &kt = simd::kernels();
        const struct
        {
            const char *name;
            simd::UnaryKernel got;
            simd::UnaryKernel want;
        } kernels[] = {
            {"sq", kt.sq, ref.sq},
            {"recip", kt.recip, ref.recip},
            {"gtz", kt.gtz, ref.gtz},
            {"sqrt", kt.sqrt, ref.sqrt},
        };
        for (const auto &k : kernels) {
            std::vector<double> got(n), want(n);
            k.got(vals.data(), got.data(), n);
            k.want(vals.data(), want.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(bitsOf(got[i]), bitsOf(want[i]))
                    << k.name << "(" << vals[i] << ") at "
                    << kt.name;
        }
    }
}

TEST(SimdKernels, InPlaceAliasingMatchesOutOfPlace)
{
    const auto vals = operandGrid(true);
    const auto other = operandGrid(false);
    const std::size_t n = vals.size();

    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        const auto &kt = simd::kernels();

        std::vector<double> fresh(n);
        kt.add(vals.data(), other.data(), fresh.data(), n);
        auto in_place = vals;
        kt.add(in_place.data(), other.data(), in_place.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(bitsOf(in_place[i]), bitsOf(fresh[i]))
                << "add dst==a lane " << i << " at " << kt.name;

        kt.mul(vals.data(), other.data(), fresh.data(), n);
        auto in_place_b = other;
        kt.mul(vals.data(), in_place_b.data(), in_place_b.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(bitsOf(in_place_b[i]), bitsOf(fresh[i]))
                << "mul dst==b lane " << i << " at " << kt.name;

        kt.exp(vals.data(), fresh.data(), n);
        auto in_place_u = vals;
        kt.exp(in_place_u.data(), in_place_u.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(bitsOf(in_place_u[i]), bitsOf(fresh[i]))
                << "exp dst==a lane " << i << " at " << kt.name;
    }
}

TEST(SimdKernels, TailsNeverWriteOutsideTheBlock)
{
    // Every n from 1 to 2x the widest vector, with sentinel guards
    // after the block: the kernel must fill exactly [0, n) and leave
    // the guard region untouched (satellite: masked-tail contract).
    constexpr double kSentinel = -777.25;
    constexpr std::size_t kGuard = 16;
    ar::util::Rng rng(0xbeef);

    for (const auto l : simd::availableLevels()) {
        simd::ScopedLevel pin(l);
        const auto &kt = simd::kernels();
        for (std::size_t n = 1; n <= 2 * kt.width + 3; ++n) {
            std::vector<double> a(n + kGuard, kSentinel);
            std::vector<double> b(n + kGuard, kSentinel);
            std::vector<double> dst(n + kGuard, kSentinel);
            for (std::size_t i = 0; i < n; ++i) {
                a[i] = rng.uniform(0.1, 9.0);
                b[i] = rng.uniform(0.1, 9.0);
            }
            kt.add(a.data(), b.data(), dst.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(dst[i], a[i] + b[i])
                    << kt.name << " n=" << n << " lane " << i;
            for (std::size_t i = n; i < n + kGuard; ++i)
                ASSERT_EQ(dst[i], kSentinel)
                    << kt.name << " n=" << n
                    << " wrote past the block at " << i;

            std::fill(dst.begin(), dst.end(), kSentinel);
            kt.exp(a.data(), dst.data(), n);
            for (std::size_t i = n; i < n + kGuard; ++i)
                ASSERT_EQ(dst[i], kSentinel)
                    << kt.name << " exp n=" << n
                    << " wrote past the block at " << i;
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_TRUE(std::isfinite(dst[i]));
        }
    }
}

TEST(SimdKernels, QuantileKernelsMatchDistributionScalarPath)
{
    const ar::dist::Normal normal(1.5, 0.75);
    const ar::dist::LogNormal lognormal(-0.25, 0.5);
    std::vector<double> us{1e-300, 1e-16, 1e-15, 0.001, 0.25, 0.5,
                           0.75,   0.999, 1.0 - 1e-15, 1.0 - 1e-16};
    ar::util::Rng rng(0xd15c);
    for (int i = 0; i < 60; ++i)
        us.push_back(rng.uniform(1e-6, 1.0 - 1e-6));
    const std::size_t n = us.size();

    // Scalar table == sampleFromUniform exactly, per lane.
    {
        simd::ScopedLevel pin(simd::Level::Scalar);
        std::vector<double> got(n);
        simd::kernels().normal_quantile(us.data(), got.data(), n,
                                        1.5, 0.75);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(bitsOf(got[i]),
                      bitsOf(normal.sampleFromUniform(us[i])))
                << "normal u=" << us[i];
        simd::kernels().lognormal_quantile(us.data(), got.data(), n,
                                           -0.25, 0.5);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(bitsOf(got[i]),
                      bitsOf(lognormal.sampleFromUniform(us[i])))
                << "lognormal u=" << us[i];
    }

    // Vector tables: finite, monotone-consistent, and within a few
    // ULP of the scalar path (DESIGN.md 5.6).
    for (const auto l : simd::availableLevels()) {
        if (l == simd::Level::Scalar)
            continue;
        simd::ScopedLevel pin(l);
        std::vector<double> got(n);
        simd::kernels().normal_quantile(us.data(), got.data(), n,
                                        1.5, 0.75);
        for (std::size_t i = 0; i < n; ++i) {
            const double want = normal.sampleFromUniform(us[i]);
            ASSERT_TRUE(std::isfinite(got[i])) << "u=" << us[i];
            ASSERT_NEAR(got[i], want,
                        8e-16 * std::max(1.0, std::fabs(want)))
                << simd::levelName(l) << " normal u=" << us[i];
        }
    }
}

TEST(SimdKernels, BatchedSamplingIsBitIdenticalAcrossVectorLevels)
{
    // Vector widths must agree bit-for-bit (the determinism pillar
    // behind golden_outputs_simd.txt).
    std::vector<simd::Level> vec;
    for (const auto l : simd::availableLevels())
        if (l != simd::Level::Scalar)
            vec.push_back(l);
    if (vec.size() < 2)
        GTEST_SKIP() << "fewer than two vector levels built";

    const ar::dist::Normal normal(0.0, 1.0);
    ar::util::Rng rng(0xacc1);
    constexpr std::size_t n = 257; // deliberately odd
    std::vector<double> us(n);
    for (auto &u : us)
        u = rng.uniform(1e-9, 1.0 - 1e-9);

    std::vector<double> first(n);
    {
        simd::ScopedLevel pin(vec.front());
        normal.sampleFromUniformBatch(us.data(), first.data(), n);
    }
    for (std::size_t v = 1; v < vec.size(); ++v) {
        simd::ScopedLevel pin(vec[v]);
        std::vector<double> got(n);
        normal.sampleFromUniformBatch(us.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(bitsOf(got[i]), bitsOf(first[i]))
                << simd::levelName(vec[v]) << " lane " << i;
    }
}
