/**
 * @file
 * Unit tests for sampling plans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mc/sampler.hh"
#include "util/logging.hh"

namespace mc = ar::mc;

TEST(MonteCarloSampler, ValuesInUnitInterval)
{
    ar::util::Rng rng(1);
    mc::MonteCarloSampler sampler;
    const auto d = sampler.design(100, 3, rng);
    for (std::size_t t = 0; t < d.trials(); ++t) {
        for (std::size_t k = 0; k < d.dims(); ++k) {
            ASSERT_GE(d.at(t, k), 0.0);
            ASSERT_LT(d.at(t, k), 1.0);
        }
    }
}

TEST(LatinHypercube, EveryStratumHitExactlyOnce)
{
    ar::util::Rng rng(2);
    mc::LatinHypercubeSampler sampler;
    const std::size_t n = 64;
    const auto d = sampler.design(n, 4, rng);
    for (std::size_t k = 0; k < 4; ++k) {
        std::vector<bool> hit(n, false);
        for (std::size_t t = 0; t < n; ++t) {
            const auto stratum = static_cast<std::size_t>(
                d.at(t, k) * static_cast<double>(n));
            ASSERT_LT(stratum, n);
            ASSERT_FALSE(hit[stratum])
                << "stratum " << stratum << " hit twice in dim " << k;
            hit[stratum] = true;
        }
    }
}

TEST(LatinHypercube, DimensionsArePermutedIndependently)
{
    ar::util::Rng rng(3);
    mc::LatinHypercubeSampler sampler;
    const auto d = sampler.design(256, 2, rng);
    // If dims shared a permutation, the columns would be identical up
    // to the intra-stratum jitter.
    std::size_t same_stratum = 0;
    for (std::size_t t = 0; t < 256; ++t) {
        const auto s0 =
            static_cast<std::size_t>(d.at(t, 0) * 256.0);
        const auto s1 =
            static_cast<std::size_t>(d.at(t, 1) * 256.0);
        same_stratum += s0 == s1;
    }
    EXPECT_LT(same_stratum, 32u);
}

TEST(LatinHypercube, MeanIsCloseToHalfEvenForFewTrials)
{
    ar::util::Rng rng(4);
    mc::LatinHypercubeSampler sampler;
    const auto d = sampler.design(16, 1, rng);
    double acc = 0.0;
    for (std::size_t t = 0; t < 16; ++t)
        acc += d.at(t, 0);
    // Stratification bounds the mean error by 1/(2*16).
    EXPECT_NEAR(acc / 16.0, 0.5, 1.0 / 32.0 + 1e-12);
}

TEST(LatinHypercube, ZeroTrialsIsFatal)
{
    ar::util::Rng rng(5);
    mc::LatinHypercubeSampler sampler;
    EXPECT_THROW(sampler.design(0, 1, rng), ar::util::FatalError);
}

TEST(MakeSampler, FactoryByName)
{
    EXPECT_EQ(mc::makeSampler("monte-carlo")->name(), "monte-carlo");
    EXPECT_EQ(mc::makeSampler("latin-hypercube")->name(),
              "latin-hypercube");
    EXPECT_THROW(mc::makeSampler("sobol"), ar::util::FatalError);
}

TEST(UniformDesign, ElementAccess)
{
    mc::UniformDesign d(2, 3);
    d.at(1, 2) = 0.7;
    EXPECT_DOUBLE_EQ(d.at(1, 2), 0.7);
    EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
    EXPECT_EQ(d.trials(), 2u);
    EXPECT_EQ(d.dims(), 3u);
}

TEST(UniformDesign, ColumnIsContiguousColumnMajorStorage)
{
    // The batch quantile transform reads column(d) as a gather-free
    // slice, so all trials of one dimension must be contiguous:
    // column(d)[t] aliases at(t, d), and consecutive columns abut.
    const std::size_t trials = 5, dims = 3;
    mc::UniformDesign d(trials, dims);
    for (std::size_t t = 0; t < trials; ++t)
        for (std::size_t k = 0; k < dims; ++k)
            d.at(t, k) = static_cast<double>(10 * k + t);
    for (std::size_t k = 0; k < dims; ++k) {
        const double *col = d.column(k);
        for (std::size_t t = 0; t < trials; ++t) {
            EXPECT_EQ(col + t, &d.at(t, k)); // Mutable alias.
            EXPECT_DOUBLE_EQ(col[t],
                             static_cast<double>(10 * k + t));
        }
    }
    EXPECT_EQ(d.column(1), d.column(0) + trials);
    EXPECT_EQ(d.column(2), d.column(1) + trials);
}
