/**
 * @file
 * Unit tests for Sobol sensitivity analysis, validated against
 * analytic indices for linear and product models.
 */

#include <gtest/gtest.h>

#include "dist/normal.hh"
#include "dist/distribution.hh"
#include "mc/sensitivity.hh"
#include "simd/dispatch.hh"
#include "symbolic/parser.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace mc = ar::mc;
namespace d = ar::dist;
using ar::symbolic::CompiledExpr;
using ar::symbolic::parseExpr;

TEST(Sobol, LinearModelMatchesAnalyticIndices)
{
    // y = 2x + z with Var(x) = 1, Var(z) = 4:
    // S_x = 4/(4+4) = 0.5, S_z = 0.5, no interactions.
    CompiledExpr fn(parseExpr("2 * x + z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 2.0);
    ar::util::Rng rng(1);
    const auto res = mc::sobolIndices(fn, in, {8192}, rng);
    EXPECT_NEAR(res.of("x").first_order, 0.5, 0.03);
    EXPECT_NEAR(res.of("z").first_order, 0.5, 0.03);
    EXPECT_NEAR(res.of("x").total, 0.5, 0.03);
    EXPECT_NEAR(res.of("z").total, 0.5, 0.03);
    EXPECT_NEAR(res.output_variance, 8.0, 0.3);
}

TEST(Sobol, ThreadCountDoesNotChangeIndices)
{
    // The evaluation sweep parallelizes over trial blocks of the
    // pre-sampled design matrices, so indices must be bit-identical
    // for any thread count.
    CompiledExpr fn(parseExpr("2 * x + z + x * z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 2.0);

    auto run = [&](std::size_t threads) {
        mc::SensitivityConfig cfg;
        cfg.trials = 2048;
        cfg.threads = threads;
        ar::util::Rng rng(17);
        return mc::sobolIndices(fn, in, cfg, rng);
    };
    const auto serial = run(1);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        const auto parallel = run(threads);
        ASSERT_EQ(parallel.output_mean, serial.output_mean);
        ASSERT_EQ(parallel.output_variance, serial.output_variance);
        ASSERT_EQ(parallel.indices.size(), serial.indices.size());
        for (std::size_t i = 0; i < serial.indices.size(); ++i) {
            ASSERT_EQ(parallel.indices[i].first_order,
                      serial.indices[i].first_order);
            ASSERT_EQ(parallel.indices[i].total,
                      serial.indices[i].total);
        }
    }
}

TEST(Sobol, UnequalWeightsShiftIndices)
{
    // y = 3x + z: S_x = 9/10.
    CompiledExpr fn(parseExpr("3 * x + z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 1.0);
    ar::util::Rng rng(2);
    const auto res = mc::sobolIndices(fn, in, {8192}, rng);
    EXPECT_NEAR(res.of("x").first_order, 0.9, 0.03);
    EXPECT_NEAR(res.of("z").first_order, 0.1, 0.03);
}

TEST(Sobol, PureInteractionShowsInTotalOnly)
{
    // y = x * z with zero-mean factors: first-order indices are 0,
    // total indices are 1 (all variance is interaction).
    CompiledExpr fn(parseExpr("x * z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 1.0);
    ar::util::Rng rng(3);
    const auto res = mc::sobolIndices(fn, in, {16384}, rng);
    EXPECT_NEAR(res.of("x").first_order, 0.0, 0.04);
    EXPECT_NEAR(res.of("x").total, 1.0, 0.08);
    EXPECT_NEAR(res.of("z").total, 1.0, 0.08);
}

TEST(Sobol, FixedInputsContributeNothing)
{
    CompiledExpr fn(parseExpr("x + 100 * w"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.fixed["w"] = 3.0;
    ar::util::Rng rng(4);
    const auto res = mc::sobolIndices(fn, in, {4096}, rng);
    ASSERT_EQ(res.indices.size(), 1u);
    EXPECT_NEAR(res.of("x").first_order, 1.0, 0.03);
    EXPECT_NEAR(res.output_mean, 300.0, 0.1);
}

TEST(Sobol, MissingBindingIsFatal)
{
    CompiledExpr fn(parseExpr("x + y"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    ar::util::Rng rng(5);
    EXPECT_THROW(mc::sobolIndices(fn, in, {1024}, rng),
                 ar::util::FatalError);
}

TEST(Sobol, NoUncertainInputsIsFatal)
{
    CompiledExpr fn(parseExpr("w * 2"));
    mc::InputBindings in;
    in.fixed["w"] = 1.0;
    ar::util::Rng rng(6);
    EXPECT_THROW(mc::sobolIndices(fn, in, {1024}, rng),
                 ar::util::FatalError);
}

TEST(Sobol, TooFewTrialsIsFatal)
{
    CompiledExpr fn(parseExpr("x"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    ar::util::Rng rng(7);
    EXPECT_THROW(mc::sobolIndices(fn, in, {4}, rng),
                 ar::util::FatalError);
}

TEST(Sobol, UnknownIndexLookupIsFatal)
{
    CompiledExpr fn(parseExpr("x"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    ar::util::Rng rng(8);
    const auto res = mc::sobolIndices(fn, in, {1024}, rng);
    EXPECT_THROW(res.of("nope"), ar::util::FatalError);
}

TEST(Sobol, FirstOrderNeverExceedsTotal)
{
    // Property: S_i <= ST_i up to estimator noise, on a nonlinear
    // mixed model.
    CompiledExpr fn(parseExpr("x * x + x * z + 0.5 * z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(1.0, 0.5);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 1.0);
    ar::util::Rng rng(9);
    const auto res = mc::sobolIndices(fn, in, {8192}, rng);
    for (const auto &idx : res.indices)
        EXPECT_LE(idx.first_order, idx.total + 0.05) << idx.input;
}

TEST(Sobol, FusedVariantProgramMatchesScalarSweep)
{
    // The fused pick-freeze program (base + suffix-renamed variants
    // compiled together) must reproduce the scalar sweep exactly:
    // identical indices, moments, and trial evaluations for every
    // thread count.  Pinned scalar: the unfused sweep evaluates
    // per trial, so exact equality is a Level::Scalar contract.
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    const auto expr =
        parseExpr("exp(x / 4) * w + max(y, z) * (x + y) + z / w");
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["y"] = std::make_shared<d::Normal>(1.0, 0.5);
    in.uncertain["z"] = std::make_shared<d::Normal>(-2.0, 0.25);
    in.fixed["w"] = 3.0;

    auto run = [&](bool fused, std::size_t threads) {
        mc::SensitivityConfig cfg;
        cfg.trials = 1024;
        cfg.threads = threads;
        cfg.fused = fused;
        ar::util::Rng rng(5);
        return mc::sobolIndices(expr, in, cfg, rng);
    };
    const auto want = run(false, 1);
    for (const std::size_t threads : {1u, 4u}) {
        const auto got = run(true, threads);
        ASSERT_EQ(got.indices.size(), want.indices.size());
        for (std::size_t i = 0; i < want.indices.size(); ++i) {
            EXPECT_EQ(got.indices[i].input, want.indices[i].input);
            EXPECT_EQ(got.indices[i].first_order,
                      want.indices[i].first_order)
                << got.indices[i].input;
            EXPECT_EQ(got.indices[i].total, want.indices[i].total)
                << got.indices[i].input;
        }
        EXPECT_EQ(got.output_mean, want.output_mean);
        EXPECT_EQ(got.output_variance, want.output_variance);
    }
}

TEST(Sobol, ExprOverloadUnfusedMatchesCompiledExprOverload)
{
    // cfg.fused = false routes the ExprPtr overload through the
    // exact code path of the CompiledExpr overload.
    const auto expr = parseExpr("2 * x + z * z");
    CompiledExpr fn(expr);
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 2.0);
    mc::SensitivityConfig cfg;
    cfg.trials = 512;
    cfg.fused = false;
    ar::util::Rng rng_a(11), rng_b(11);
    const auto a = mc::sobolIndices(fn, in, cfg, rng_a);
    const auto b = mc::sobolIndices(expr, in, cfg, rng_b);
    ASSERT_EQ(a.indices.size(), b.indices.size());
    for (std::size_t i = 0; i < a.indices.size(); ++i) {
        EXPECT_EQ(a.indices[i].first_order, b.indices[i].first_order);
        EXPECT_EQ(a.indices[i].total, b.indices[i].total);
    }
}

TEST(Sobol, CorrelatedInputsRaiseStructuredDiagnostic)
{
    // Pick-freeze column swaps assume independence; under a
    // correlation the estimators are invalid, so the analysis must
    // refuse with a DiagnosticError naming the offending pair
    // instead of returning silently wrong indices.
    CompiledExpr fn(parseExpr("2 * x + z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 2.0);
    in.correlations.push_back({"x", "z", 0.4});
    ar::util::Rng rng(21);
    try {
        mc::sobolIndices(fn, in, {1024}, rng);
        FAIL() << "expected a DiagnosticError";
    } catch (const ar::util::DiagnosticError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'x'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'z'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("independent"), std::string::npos) << msg;
    }
}

TEST(Sobol, CorrelationOfUnusedInputDoesNotBlock)
{
    // A correlate pair is only disqualifying when both endpoints
    // actually feed the analyzed output.
    CompiledExpr fn(parseExpr("2 * x + z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 2.0);
    in.uncertain["w"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.correlations.push_back({"x", "w", 0.9});
    ar::util::Rng rng(22);
    const auto res = mc::sobolIndices(fn, in, {1024}, rng);
    EXPECT_EQ(res.indices.size(), 2u);
}

TEST(Sobol, ZeroRhoCorrelationDoesNotBlock)
{
    CompiledExpr fn(parseExpr("x + z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.correlations.push_back({"x", "z", 0.0});
    ar::util::Rng rng(23);
    EXPECT_NO_THROW(mc::sobolIndices(fn, in, {1024}, rng));
}

TEST(Sobol, StreamedIndicesMatchMaterializedWithinTolerance)
{
    // cfg.stream folds the pick-freeze sweep through streaming
    // accumulators (Welford pooled variance, Kahan Jansen sums)
    // instead of the retained-matrix two-pass estimator.  The
    // estimators are algebraically equal, so the indices agree to
    // accumulation rounding (~1e-12), and the streamed run is itself
    // bit-identical across thread counts.
    CompiledExpr fn(parseExpr("2 * x + z + x * z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 2.0);
    auto run = [&](bool stream, bool fused, std::size_t threads) {
        mc::SensitivityConfig cfg;
        cfg.trials = 4096;
        cfg.threads = threads;
        cfg.stream = stream;
        cfg.fused = fused;
        ar::util::Rng rng(29);
        return mc::sobolIndices(fn, in, cfg, rng);
    };
    for (const bool fused : {false, true}) {
        const auto keep = run(false, fused, 1);
        const auto stream = run(true, fused, 1);
        EXPECT_NEAR(stream.output_mean, keep.output_mean, 1e-12);
        EXPECT_NEAR(stream.output_variance, keep.output_variance,
                    1e-9);
        for (const char *name : {"x", "z"}) {
            EXPECT_NEAR(stream.of(name).first_order,
                        keep.of(name).first_order, 1e-9)
                << name << " fused=" << fused;
            EXPECT_NEAR(stream.of(name).total, keep.of(name).total,
                        1e-9)
                << name << " fused=" << fused;
        }
        const auto parallel = run(true, fused, 4);
        EXPECT_EQ(parallel.output_mean, stream.output_mean);
        EXPECT_EQ(parallel.of("x").first_order,
                  stream.of("x").first_order);
        EXPECT_EQ(parallel.of("z").total, stream.of("z").total);
    }
}

TEST(Sobol, StreamIsIncompatibleWithSaturate)
{
    CompiledExpr fn(parseExpr("x + z"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["z"] = std::make_shared<d::Normal>(0.0, 1.0);
    mc::SensitivityConfig cfg;
    cfg.trials = 1024;
    cfg.stream = true;
    cfg.fault_policy = ar::util::FaultPolicy::Saturate;
    ar::util::Rng rng(31);
    EXPECT_THROW(mc::sobolIndices(fn, in, cfg, rng),
                 ar::util::FatalError);
}
