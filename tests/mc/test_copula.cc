/**
 * @file
 * Unit tests for the Gaussian copula and correlated propagation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dist/normal.hh"
#include "dist/lognormal.hh"
#include "math/numeric.hh"
#include "math/special.hh"
#include "mc/copula.hh"
#include "mc/propagator.hh"
#include "symbolic/parser.hh"
#include "util/logging.hh"

namespace mc = ar::mc;
namespace d = ar::dist;

namespace
{

double
correlation(const std::vector<double> &a, const std::vector<double> &b)
{
    const double ma = ar::math::mean(a);
    const double mb = ar::math::mean(b);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sab += (a[i] - ma) * (b[i] - mb);
        saa += (a[i] - ma) * (a[i] - ma);
        sbb += (b[i] - mb) * (b[i] - mb);
    }
    return sab / std::sqrt(saa * sbb);
}

} // namespace

TEST(Copula, ImposesTargetCorrelationOnUniforms)
{
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", 0.8}});
    ar::util::Rng rng(1);
    mc::LatinHypercubeSampler sampler;
    auto design = sampler.design(20000, 2, rng);
    copula.apply(design, {0, 1});

    std::vector<double> u(20000), v(20000);
    for (std::size_t t = 0; t < 20000; ++t) {
        u[t] = design.at(t, 0);
        v[t] = design.at(t, 1);
    }
    // Spearman-like: correlation of the uniforms tracks rho closely.
    EXPECT_NEAR(correlation(u, v), 0.79, 0.03);
    // Marginals stay uniform.
    EXPECT_NEAR(ar::math::mean(u), 0.5, 0.01);
    EXPECT_NEAR(ar::math::stddev(u), 1.0 / std::sqrt(12.0), 0.01);
}

TEST(Copula, NegativeCorrelation)
{
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", -0.6}});
    ar::util::Rng rng(2);
    mc::MonteCarloSampler sampler;
    auto design = sampler.design(20000, 2, rng);
    copula.apply(design, {0, 1});
    std::vector<double> u(20000), v(20000);
    for (std::size_t t = 0; t < 20000; ++t) {
        u[t] = design.at(t, 0);
        v[t] = design.at(t, 1);
    }
    EXPECT_NEAR(correlation(u, v), -0.59, 0.03);
}

TEST(Copula, InvalidSpecsAreFatal)
{
    EXPECT_THROW(mc::GaussianCopula({"a"}, {}), ar::util::FatalError);
    EXPECT_THROW(
        mc::GaussianCopula({"a", "b"}, {{"a", "c", 0.5}}),
        ar::util::FatalError);
    EXPECT_THROW(
        mc::GaussianCopula({"a", "b"}, {{"a", "a", 0.5}}),
        ar::util::FatalError);
    EXPECT_THROW(
        mc::GaussianCopula({"a", "b"}, {{"a", "b", 1.0}}),
        ar::util::FatalError);
}

TEST(Copula, InconsistentTriangleIsFatal)
{
    // rho(ab) = rho(bc) = 0.9, rho(ac) = -0.9 is not a valid
    // correlation matrix.
    EXPECT_THROW(mc::GaussianCopula({"a", "b", "c"},
                                    {{"a", "b", 0.9},
                                     {"b", "c", 0.9},
                                     {"a", "c", -0.9}}),
                 ar::util::FatalError);
}

TEST(Copula, PropagatorHonoursCorrelations)
{
    // y = x1 + x2 with unit-variance gaussians: Var = 2(1 + rho).
    ar::symbolic::CompiledExpr fn(
        ar::symbolic::parseExpr("x1 + x2"));
    mc::Propagator prop({40000, "latin-hypercube"});

    mc::InputBindings indep;
    indep.uncertain["x1"] = std::make_shared<d::Normal>(0.0, 1.0);
    indep.uncertain["x2"] = std::make_shared<d::Normal>(0.0, 1.0);

    auto correlated = indep;
    correlated.correlations.push_back({"x1", "x2", 0.7});

    ar::util::Rng r1(3), r2(3);
    const auto s_indep = prop.run(fn, indep, r1);
    const auto s_corr = prop.run(fn, correlated, r2);
    EXPECT_NEAR(ar::math::variance(s_indep), 2.0, 0.05);
    EXPECT_NEAR(ar::math::variance(s_corr), 3.4, 0.08);
    // Marginal means unchanged.
    EXPECT_NEAR(ar::math::mean(s_corr), 0.0, 0.02);
}

TEST(Copula, PropagatorPreservesMarginals)
{
    ar::symbolic::CompiledExpr fn(ar::symbolic::parseExpr("x1"));
    mc::Propagator prop({30000, "latin-hypercube"});
    mc::InputBindings in;
    in.uncertain["x1"] = std::make_shared<d::LogNormal>(0.0, 0.5);
    in.uncertain["x2"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.correlations.push_back({"x1", "x2", 0.9});
    ar::util::Rng rng(4);
    const auto xs = prop.run(fn, in, rng);
    d::LogNormal truth(0.0, 0.5);
    EXPECT_NEAR(ar::math::mean(xs), truth.mean(), 0.01);
    EXPECT_NEAR(ar::math::stddev(xs), truth.stddev(), 0.02);
}

TEST(Copula, PreservesLatinHypercubeStrata)
{
    // Iman-Conover permutes each column's values instead of
    // replacing them, so the marginal multiset -- exactly one value
    // per 1/n stratum -- survives the correlation.  (The former
    // implementation overwrote the uniforms with Phi(Lz) draws and
    // destroyed the stratification.)
    const std::size_t n = 512;
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", 0.8}});
    ar::util::Rng rng(7);
    mc::LatinHypercubeSampler sampler;
    auto design = sampler.design(n, 2, rng);
    copula.apply(design, {0, 1});
    for (std::size_t d = 0; d < 2; ++d) {
        std::vector<bool> hit(n, false);
        for (std::size_t t = 0; t < n; ++t) {
            const auto s = static_cast<std::size_t>(
                design.at(t, d) * static_cast<double>(n));
            ASSERT_LT(s, n);
            EXPECT_FALSE(hit[s]) << "stratum " << s << " of dim " << d
                                 << " hit twice";
            hit[s] = true;
        }
    }
}

TEST(Copula, PreservesMarginalMultisetExactly)
{
    const std::size_t n = 1000;
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", -0.5}});
    ar::util::Rng rng(8);
    mc::MonteCarloSampler sampler;
    auto design = sampler.design(n, 2, rng);
    std::vector<double> before_u(n), before_v(n);
    for (std::size_t t = 0; t < n; ++t) {
        before_u[t] = design.at(t, 0);
        before_v[t] = design.at(t, 1);
    }
    copula.apply(design, {0, 1});
    std::vector<double> after_u(n), after_v(n);
    for (std::size_t t = 0; t < n; ++t) {
        after_u[t] = design.at(t, 0);
        after_v[t] = design.at(t, 1);
    }
    std::sort(before_u.begin(), before_u.end());
    std::sort(before_v.begin(), before_v.end());
    std::sort(after_u.begin(), after_u.end());
    std::sort(after_v.begin(), after_v.end());
    EXPECT_EQ(before_u, after_u); // bitwise: values only permuted
    EXPECT_EQ(before_v, after_v);
}

TEST(Copula, RankCorrelationIsTight)
{
    // The de-correlation step cancels the score matrix's own
    // empirical correlation, so the achieved normal-score
    // correlation lands on rho with O(1/n) error -- far inside what
    // plain sampling noise (~1/sqrt(n) = 0.016) would allow.
    const std::size_t n = 4096;
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", 0.8}});
    ar::util::Rng rng(9);
    mc::LatinHypercubeSampler sampler;
    auto design = sampler.design(n, 2, rng);
    copula.apply(design, {0, 1});
    std::vector<double> zu(n), zv(n);
    for (std::size_t t = 0; t < n; ++t) {
        zu[t] = ar::math::normalQuantile(design.at(t, 0));
        zv[t] = ar::math::normalQuantile(design.at(t, 1));
    }
    EXPECT_NEAR(correlation(zu, zv), 0.8, 0.005);
}

TEST(Copula, ApplyIsDeterministic)
{
    // apply() consumes no RNG; the same design always reorders the
    // same way.
    const std::size_t n = 256;
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", 0.6}});
    mc::LatinHypercubeSampler sampler;
    ar::util::Rng r1(10), r2(10);
    auto d1 = sampler.design(n, 2, r1);
    auto d2 = sampler.design(n, 2, r2);
    copula.apply(d1, {0, 1});
    copula.apply(d2, {0, 1});
    for (std::size_t t = 0; t < n; ++t) {
        EXPECT_EQ(d1.at(t, 0), d2.at(t, 0));
        EXPECT_EQ(d1.at(t, 1), d2.at(t, 1));
    }
}

TEST(Copula, UnknownCorrelationNameIsFatal)
{
    ar::symbolic::CompiledExpr fn(
        ar::symbolic::parseExpr("x1 + x2"));
    mc::Propagator prop({100, "latin-hypercube"});
    mc::InputBindings in;
    in.uncertain["x1"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["x2"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.correlations.push_back({"x1", "zz", 0.5});
    ar::util::Rng rng(5);
    EXPECT_THROW(prop.run(fn, in, rng), ar::util::FatalError);
}
