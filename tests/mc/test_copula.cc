/**
 * @file
 * Unit tests for the Gaussian copula and correlated propagation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/normal.hh"
#include "dist/lognormal.hh"
#include "math/numeric.hh"
#include "mc/copula.hh"
#include "mc/propagator.hh"
#include "symbolic/parser.hh"
#include "util/logging.hh"

namespace mc = ar::mc;
namespace d = ar::dist;

namespace
{

double
correlation(const std::vector<double> &a, const std::vector<double> &b)
{
    const double ma = ar::math::mean(a);
    const double mb = ar::math::mean(b);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sab += (a[i] - ma) * (b[i] - mb);
        saa += (a[i] - ma) * (a[i] - ma);
        sbb += (b[i] - mb) * (b[i] - mb);
    }
    return sab / std::sqrt(saa * sbb);
}

} // namespace

TEST(Copula, ImposesTargetCorrelationOnUniforms)
{
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", 0.8}});
    ar::util::Rng rng(1);
    mc::LatinHypercubeSampler sampler;
    auto design = sampler.design(20000, 2, rng);
    copula.apply(design, {0, 1});

    std::vector<double> u(20000), v(20000);
    for (std::size_t t = 0; t < 20000; ++t) {
        u[t] = design.at(t, 0);
        v[t] = design.at(t, 1);
    }
    // Spearman-like: correlation of the uniforms tracks rho closely.
    EXPECT_NEAR(correlation(u, v), 0.79, 0.03);
    // Marginals stay uniform.
    EXPECT_NEAR(ar::math::mean(u), 0.5, 0.01);
    EXPECT_NEAR(ar::math::stddev(u), 1.0 / std::sqrt(12.0), 0.01);
}

TEST(Copula, NegativeCorrelation)
{
    mc::GaussianCopula copula({"u", "v"}, {{"u", "v", -0.6}});
    ar::util::Rng rng(2);
    mc::MonteCarloSampler sampler;
    auto design = sampler.design(20000, 2, rng);
    copula.apply(design, {0, 1});
    std::vector<double> u(20000), v(20000);
    for (std::size_t t = 0; t < 20000; ++t) {
        u[t] = design.at(t, 0);
        v[t] = design.at(t, 1);
    }
    EXPECT_NEAR(correlation(u, v), -0.59, 0.03);
}

TEST(Copula, InvalidSpecsAreFatal)
{
    EXPECT_THROW(mc::GaussianCopula({"a"}, {}), ar::util::FatalError);
    EXPECT_THROW(
        mc::GaussianCopula({"a", "b"}, {{"a", "c", 0.5}}),
        ar::util::FatalError);
    EXPECT_THROW(
        mc::GaussianCopula({"a", "b"}, {{"a", "a", 0.5}}),
        ar::util::FatalError);
    EXPECT_THROW(
        mc::GaussianCopula({"a", "b"}, {{"a", "b", 1.0}}),
        ar::util::FatalError);
}

TEST(Copula, InconsistentTriangleIsFatal)
{
    // rho(ab) = rho(bc) = 0.9, rho(ac) = -0.9 is not a valid
    // correlation matrix.
    EXPECT_THROW(mc::GaussianCopula({"a", "b", "c"},
                                    {{"a", "b", 0.9},
                                     {"b", "c", 0.9},
                                     {"a", "c", -0.9}}),
                 ar::util::FatalError);
}

TEST(Copula, PropagatorHonoursCorrelations)
{
    // y = x1 + x2 with unit-variance gaussians: Var = 2(1 + rho).
    ar::symbolic::CompiledExpr fn(
        ar::symbolic::parseExpr("x1 + x2"));
    mc::Propagator prop({40000, "latin-hypercube"});

    mc::InputBindings indep;
    indep.uncertain["x1"] = std::make_shared<d::Normal>(0.0, 1.0);
    indep.uncertain["x2"] = std::make_shared<d::Normal>(0.0, 1.0);

    auto correlated = indep;
    correlated.correlations.push_back({"x1", "x2", 0.7});

    ar::util::Rng r1(3), r2(3);
    const auto s_indep = prop.run(fn, indep, r1);
    const auto s_corr = prop.run(fn, correlated, r2);
    EXPECT_NEAR(ar::math::variance(s_indep), 2.0, 0.05);
    EXPECT_NEAR(ar::math::variance(s_corr), 3.4, 0.08);
    // Marginal means unchanged.
    EXPECT_NEAR(ar::math::mean(s_corr), 0.0, 0.02);
}

TEST(Copula, PropagatorPreservesMarginals)
{
    ar::symbolic::CompiledExpr fn(ar::symbolic::parseExpr("x1"));
    mc::Propagator prop({30000, "latin-hypercube"});
    mc::InputBindings in;
    in.uncertain["x1"] = std::make_shared<d::LogNormal>(0.0, 0.5);
    in.uncertain["x2"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.correlations.push_back({"x1", "x2", 0.9});
    ar::util::Rng rng(4);
    const auto xs = prop.run(fn, in, rng);
    d::LogNormal truth(0.0, 0.5);
    EXPECT_NEAR(ar::math::mean(xs), truth.mean(), 0.01);
    EXPECT_NEAR(ar::math::stddev(xs), truth.stddev(), 0.02);
}

TEST(Copula, UnknownCorrelationNameIsFatal)
{
    ar::symbolic::CompiledExpr fn(
        ar::symbolic::parseExpr("x1 + x2"));
    mc::Propagator prop({100, "latin-hypercube"});
    mc::InputBindings in;
    in.uncertain["x1"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["x2"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.correlations.push_back({"x1", "zz", 0.5});
    ar::util::Rng rng(5);
    EXPECT_THROW(prop.run(fn, in, rng), ar::util::FatalError);
}
