/**
 * @file
 * Cancellation semantics of the Monte-Carlo engines: a cancelled or
 * deadline-expired run throws CancelledError without corrupting
 * anything, and -- the determinism contract -- re-running the same
 * seed afterwards with a fresh Rng is bit-identical to a run that was
 * never cancelled, at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

#include "dist/distribution.hh"
#include "dist/normal.hh"
#include "mc/propagator.hh"
#include "mc/sensitivity.hh"
#include "symbolic/parser.hh"
#include "util/cancel.hh"

namespace mc = ar::mc;
namespace d = ar::dist;
using ar::symbolic::CompiledExpr;
using ar::symbolic::parseExpr;
using ar::util::CancelledError;
using ar::util::CancelReason;
using ar::util::CancelToken;

namespace
{

/**
 * Forwards every call to an inner distribution but trips a
 * CancelToken once a fixed number of draws has been made -- a
 * deterministic way to cancel a propagation "mid-flight" regardless
 * of machine speed.
 */
class CancelAfterDraws : public d::Distribution
{
  public:
    CancelAfterDraws(d::DistPtr inner, CancelToken tok,
                     std::size_t after)
        : inner_(std::move(inner)), tok_(std::move(tok)),
          after_(after)
    {}

    double
    sample(ar::util::Rng &rng) const override
    {
        bump(1);
        return inner_->sample(rng);
    }

    double
    sampleFromUniform(double u) const override
    {
        bump(1);
        return inner_->sampleFromUniform(u);
    }

    void
    sampleFromUniformBatch(const double *u, double *out,
                           std::size_t n) const override
    {
        bump(n);
        inner_->sampleFromUniformBatch(u, out, n);
    }

    double mean() const override { return inner_->mean(); }
    double stddev() const override { return inner_->stddev(); }
    double cdf(double x) const override { return inner_->cdf(x); }
    double quantile(double p) const override
    {
        return inner_->quantile(p);
    }
    std::string describe() const override
    {
        return inner_->describe();
    }
    std::unique_ptr<Distribution> clone() const override
    {
        return std::make_unique<CancelAfterDraws>(inner_, tok_,
                                                  after_);
    }

  private:
    void
    bump(std::size_t n) const
    {
        if (draws_.fetch_add(n) + n >= after_)
            tok_.cancel();
    }

    d::DistPtr inner_;
    CancelToken tok_;
    std::size_t after_;
    mutable std::atomic<std::size_t> draws_{0};
};

mc::InputBindings
bindingsWith(d::DistPtr x_dist)
{
    mc::InputBindings in;
    in.uncertain["x"] = std::move(x_dist);
    in.fixed["y"] = 10.0;
    return in;
}

} // namespace

class CancelDeterminism : public ::testing::TestWithParam<std::size_t>
{
};

INSTANTIATE_TEST_SUITE_P(Threads, CancelDeterminism,
                         ::testing::Values(1u, 2u, 8u));

TEST_P(CancelDeterminism, CancelledRunRetriesBitIdentical)
{
    const std::size_t threads = GetParam();
    const std::uint64_t seed = 42;
    const std::size_t trials = 4096;
    CompiledExpr fn(parseExpr("3 * x + y"));
    const auto normal = std::make_shared<d::Normal>(2.0, 0.5);

    // Reference: never cancelled.
    mc::PropagationConfig ref_cfg;
    ref_cfg.trials = trials;
    ref_cfg.threads = threads;
    std::vector<double> reference;
    {
        ar::util::Rng rng(seed);
        reference = mc::Propagator(ref_cfg).run(
            fn, bindingsWith(normal), rng);
    }

    // First attempt: the x distribution cancels the token after 100
    // draws, so the run dies mid-flight.
    CancelToken tok = CancelToken::create();
    mc::PropagationConfig cancel_cfg = ref_cfg;
    cancel_cfg.cancel = tok;
    {
        ar::util::Rng rng(seed);
        const auto cancelling = std::make_shared<CancelAfterDraws>(
            normal, tok, 100);
        EXPECT_THROW(mc::Propagator(cancel_cfg)
                         .run(fn, bindingsWith(cancelling), rng),
                     CancelledError);
    }

    // Retry: fresh Rng from the same seed, clean token.  The
    // cancelled attempt must have left no trace -- the retry is
    // bit-identical to the never-cancelled reference.
    {
        ar::util::Rng rng(seed);
        const auto retry = mc::Propagator(ref_cfg).run(
            fn, bindingsWith(normal), rng);
        ASSERT_EQ(retry.size(), reference.size());
        for (std::size_t t = 0; t < retry.size(); ++t)
            ASSERT_EQ(retry[t], reference[t])
                << "trial " << t << " differs after retry";
    }
}

TEST_P(CancelDeterminism, DeadlineExpiryRetriesBitIdentical)
{
    const std::size_t threads = GetParam();
    const std::uint64_t seed = 7;
    CompiledExpr fn(parseExpr("3 * x + y"));
    const auto normal = std::make_shared<d::Normal>(2.0, 0.5);

    mc::PropagationConfig cfg;
    cfg.trials = 2048;
    cfg.threads = threads;
    std::vector<double> reference;
    {
        ar::util::Rng rng(seed);
        reference =
            mc::Propagator(cfg).run(fn, bindingsWith(normal), rng);
    }

    // An already-expired deadline: the run must throw with the
    // deadline reason before completing.
    mc::PropagationConfig late = cfg;
    late.cancel = CancelToken::withDeadline(
        CancelToken::Clock::now() - std::chrono::milliseconds(1));
    {
        ar::util::Rng rng(seed);
        try {
            mc::Propagator(late).run(fn, bindingsWith(normal), rng);
            FAIL() << "expected CancelledError";
        } catch (const CancelledError &e) {
            EXPECT_EQ(e.reason(), CancelReason::DeadlineExpired);
        }
    }

    {
        ar::util::Rng rng(seed);
        const auto retry =
            mc::Propagator(cfg).run(fn, bindingsWith(normal), rng);
        ASSERT_EQ(retry.size(), reference.size());
        for (std::size_t t = 0; t < retry.size(); ++t)
            ASSERT_EQ(retry[t], reference[t]);
    }
}

TEST(SensitivityCancel, PreExpiredDeadlineThrows)
{
    CompiledExpr fn(parseExpr("3 * x + y"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(2.0, 0.5);
    in.uncertain["y"] = std::make_shared<d::Normal>(5.0, 1.0);

    mc::SensitivityConfig cfg;
    cfg.trials = 512;
    cfg.cancel = CancelToken::withDeadline(
        CancelToken::Clock::now() - std::chrono::milliseconds(1));
    ar::util::Rng rng(3);
    EXPECT_THROW(mc::sobolIndices(fn, in, cfg, rng),
                 CancelledError);

    // And the engine still works with a live token afterwards.
    mc::SensitivityConfig ok = cfg;
    ok.cancel = CancelToken();
    ar::util::Rng rng2(3);
    const auto res = mc::sobolIndices(fn, in, ok, rng2);
    EXPECT_EQ(res.indices.size(), 2u);
}
