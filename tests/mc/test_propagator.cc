/**
 * @file
 * Unit tests for Monte-Carlo uncertainty propagation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dist/normal.hh"
#include "dist/distribution.hh"
#include "math/numeric.hh"
#include "mc/propagator.hh"
#include "model/hill_marty.hh"
#include "symbolic/parser.hh"
#include "util/logging.hh"

namespace mc = ar::mc;
namespace d = ar::dist;
using ar::symbolic::CompiledExpr;
using ar::symbolic::parseExpr;

namespace
{

mc::InputBindings
gaussianXPlusFixedY()
{
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(2.0, 0.5);
    in.fixed["y"] = 10.0;
    return in;
}

} // namespace

TEST(Propagator, LinearModelPropagatesExactMoments)
{
    CompiledExpr fn(parseExpr("3 * x + y"));
    mc::Propagator prop({20000, "latin-hypercube"});
    ar::util::Rng rng(1);
    const auto samples = prop.run(fn, gaussianXPlusFixedY(), rng);
    ASSERT_EQ(samples.size(), 20000u);
    EXPECT_NEAR(ar::math::mean(samples), 16.0, 0.02);
    EXPECT_NEAR(ar::math::stddev(samples), 1.5, 0.02);
}

TEST(Propagator, FixedInputsAreConstantAcrossTrials)
{
    CompiledExpr fn(parseExpr("y"));
    mc::Propagator prop({100, "latin-hypercube"});
    ar::util::Rng rng(2);
    const auto samples = prop.run(fn, gaussianXPlusFixedY(), rng);
    for (double s : samples)
        ASSERT_DOUBLE_EQ(s, 10.0);
}

TEST(Propagator, MissingBindingIsFatal)
{
    CompiledExpr fn(parseExpr("x + z"));
    mc::Propagator prop({10, "latin-hypercube"});
    ar::util::Rng rng(3);
    EXPECT_THROW(prop.run(fn, gaussianXPlusFixedY(), rng),
                 ar::util::FatalError);
}

TEST(Propagator, DoubleBindingIsFatal)
{
    CompiledExpr fn(parseExpr("x"));
    auto in = gaussianXPlusFixedY();
    in.fixed["x"] = 1.0;
    mc::Propagator prop({10, "latin-hypercube"});
    ar::util::Rng rng(4);
    EXPECT_THROW(prop.run(fn, in, rng), ar::util::FatalError);
}

TEST(Propagator, ZeroTrialsIsFatal)
{
    EXPECT_THROW(mc::Propagator({0, "latin-hypercube"}),
                 ar::util::FatalError);
}

TEST(Propagator, RunManySharesDrawsAcrossFunctions)
{
    CompiledExpr f1(parseExpr("x"));
    CompiledExpr f2(parseExpr("2 * x"));
    mc::Propagator prop({500, "latin-hypercube"});
    ar::util::Rng rng(5);
    const auto results = prop.runMany({&f1, &f2},
                                      gaussianXPlusFixedY(), rng);
    ASSERT_EQ(results.size(), 2u);
    for (std::size_t t = 0; t < 500; ++t)
        ASSERT_DOUBLE_EQ(results[1][t], 2.0 * results[0][t]);
}

TEST(Propagator, SameSeedReproduces)
{
    CompiledExpr fn(parseExpr("x * x"));
    mc::Propagator prop({200, "latin-hypercube"});
    ar::util::Rng rng_a(6), rng_b(6);
    const auto a = prop.run(fn, gaussianXPlusFixedY(), rng_a);
    const auto b = prop.run(fn, gaussianXPlusFixedY(), rng_b);
    EXPECT_EQ(a, b);
}

TEST(Propagator, LhsBeatsPlainMcOnMeanError)
{
    // Classic LHS property: stratification reduces the variance of
    // the sample mean for monotone functions.  Compare mean errors
    // over repeated runs.
    CompiledExpr fn(parseExpr("exp(x)"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    const double truth = std::exp(0.5);

    double lhs_err = 0.0, mc_err = 0.0;
    for (int rep = 0; rep < 20; ++rep) {
        mc::Propagator lhs({200, "latin-hypercube"});
        mc::Propagator pmc({200, "monte-carlo"});
        ar::util::Rng r1(100 + rep), r2(100 + rep);
        lhs_err += std::fabs(
            ar::math::mean(lhs.run(fn, in, r1)) - truth);
        mc_err += std::fabs(
            ar::math::mean(pmc.run(fn, in, r2)) - truth);
    }
    EXPECT_LT(lhs_err, mc_err);
}

TEST(Propagator, ThreadCountDoesNotChangeResults)
{
    // The propagation engine decomposes trials into blocks whose
    // contents are pure functions of the sampled design, so every
    // thread count must give bit-identical output.
    CompiledExpr f1(parseExpr("exp(x) * y + max(x, y)"));
    CompiledExpr f2(parseExpr("x * x - y"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(1.0, 0.3);
    in.uncertain["y"] = std::make_shared<d::Normal>(-2.0, 0.5);

    auto run = [&](std::size_t threads) {
        mc::PropagationConfig cfg;
        cfg.trials = 3000; // spans many 256-trial blocks
        cfg.sampler = "latin-hypercube";
        cfg.threads = threads;
        mc::Propagator prop(cfg);
        ar::util::Rng rng(42);
        return prop.runMany({&f1, &f2}, in, rng);
    };

    const auto serial = run(1);
    const auto two = run(2);
    const auto four = run(4);
    ASSERT_EQ(serial.size(), 2u);
    for (std::size_t f = 0; f < serial.size(); ++f) {
        ASSERT_EQ(two[f], serial[f]) << "fn " << f << ", 2 threads";
        ASSERT_EQ(four[f], serial[f]) << "fn " << f << ", 4 threads";
    }
}

TEST(Propagator, ThreadedRunMatchesCorrelatedInputs)
{
    // The copula path (rank-correlated inputs) also stays on the
    // deterministic block decomposition.
    CompiledExpr fn(parseExpr("x + y"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.uncertain["y"] = std::make_shared<d::Normal>(0.0, 1.0);
    in.correlations.push_back({"x", "y", 0.8});

    auto run = [&](std::size_t threads) {
        mc::PropagationConfig cfg;
        cfg.trials = 1024;
        cfg.sampler = "latin-hypercube";
        cfg.threads = threads;
        mc::Propagator prop(cfg);
        ar::util::Rng rng(9);
        return prop.run(fn, in, rng);
    };
    EXPECT_EQ(run(1), run(4));
}

TEST(Propagator, NonlinearInteractionMatchesAnalytic)
{
    // z = x * y with independent gaussians: E[z] = mu_x * mu_y.
    CompiledExpr fn(parseExpr("x * y"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(3.0, 0.2);
    in.uncertain["y"] = std::make_shared<d::Normal>(-2.0, 0.4);
    mc::Propagator prop({50000, "latin-hypercube"});
    ar::util::Rng rng(7);
    const auto samples = prop.run(fn, in, rng);
    EXPECT_NEAR(ar::math::mean(samples), -6.0, 0.03);
}

TEST(Propagator, FusedProgramMatchesPerOutputTapes)
{
    // runMulti over one fused program must be bit-identical to
    // runMany over per-output tapes: the uncertain union -- and with
    // it every sampled draw -- is the same, and the fused tape is
    // 0 ULP from the per-output tapes, for any thread count.
    auto sys = ar::model::buildHillMartySystem(2);
    static const char *kOutputs[] = {"Speedup", "T_seq", "T_par",
                                     "N_total"};
    std::vector<ar::symbolic::ExprPtr> forest;
    std::vector<CompiledExpr> fns;
    for (const char *name : kOutputs) {
        forest.push_back(sys.resolve(name));
        fns.emplace_back(forest.back());
    }
    const ar::symbolic::CompiledProgram prog(forest);

    mc::InputBindings in;
    in.uncertain["f"] = std::make_shared<d::Normal>(0.9, 0.02);
    in.uncertain["c"] = std::make_shared<d::Normal>(0.01, 0.002);
    in.uncertain["P_core0"] = std::make_shared<d::Normal>(2.0, 0.2);
    in.fixed["P_core1"] = 4.0;
    in.fixed["N_core0"] = 8.0;
    in.fixed["N_core1"] = 2.0;

    auto config = [&](std::size_t threads) {
        mc::PropagationConfig cfg;
        cfg.trials = 2000; // spans many 256-trial blocks
        cfg.sampler = "latin-hypercube";
        cfg.threads = threads;
        return cfg;
    };
    std::vector<const CompiledExpr *> ptrs;
    for (const auto &f : fns)
        ptrs.push_back(&f);
    ar::util::Rng rng_base(123);
    const auto want =
        mc::Propagator(config(1)).runMany(ptrs, in, rng_base);
    for (const std::size_t threads : {1u, 2u, 8u}) {
        ar::util::Rng rng(123);
        const auto got =
            mc::Propagator(config(threads)).runMulti(prog, in, rng);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t o = 0; o < want.size(); ++o) {
            EXPECT_EQ(got[o], want[o])
                << kOutputs[o] << " with " << threads << " threads";
        }
    }
}
