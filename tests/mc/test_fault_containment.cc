/**
 * @file
 * Fault-containment acceptance tests: deterministic injection via
 * FaultInjectingDistribution, per-policy behavior of the propagation
 * and Sobol engines, and bit-identical FaultReports for any thread
 * count (the ISSUE acceptance criterion).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>

#include "dist/fault_injection.hh"
#include "dist/normal.hh"
#include "mc/propagator.hh"
#include "mc/sensitivity.hh"
#include "simd/dispatch.hh"
#include "symbolic/parser.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace mc = ar::mc;
namespace d = ar::dist;
using ar::dist::FaultInjectingDistribution;
using ar::symbolic::CompiledExpr;
using ar::symbolic::parseExpr;
using ar::util::FaultError;
using ar::util::FaultKind;
using ar::util::FaultPolicy;
using ar::util::FaultReport;

namespace
{

constexpr std::uint64_t kInjectSeed = 0xfa17ed;

/** x ~ Normal(10, 2) with ~5% of draws negated out of log's domain. */
mc::InputBindings
poisonedLogInput(double rate = 0.05,
                 FaultInjectingDistribution::Mode mode =
                     FaultInjectingDistribution::Mode::Negate)
{
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<FaultInjectingDistribution>(
        std::make_shared<d::Normal>(10.0, 2.0), rate, kInjectSeed,
        mode);
    in.uncertain["y"] = std::make_shared<d::Normal>(1.0, 0.25);
    return in;
}

/** Full structural equality of two fault reports. */
void
expectReportsIdentical(const FaultReport &a, const FaultReport &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.faulty_trials, b.faulty_trials);
    EXPECT_EQ(a.effective_trials, b.effective_trials);
    EXPECT_EQ(a.by_kind, b.by_kind);
    EXPECT_EQ(a.by_output, b.by_output);
    ASSERT_EQ(a.examples.size(), b.examples.size());
    for (std::size_t i = 0; i < a.examples.size(); ++i) {
        EXPECT_EQ(a.examples[i].trial, b.examples[i].trial);
        EXPECT_EQ(a.examples[i].output, b.examples[i].output);
        EXPECT_EQ(a.examples[i].kind, b.examples[i].kind);
        EXPECT_EQ(a.examples[i].op, b.examples[i].op);
    }
}

mc::Propagation
propagate(FaultPolicy policy, std::size_t threads,
          std::size_t trials = 600)
{
    CompiledExpr f_log(parseExpr("log(x) + y"));
    CompiledExpr f_id(parseExpr("x"));
    mc::PropagationConfig cfg;
    cfg.trials = trials;
    cfg.sampler = "latin-hypercube";
    cfg.threads = threads;
    cfg.fault_policy = policy;
    mc::Propagator prop(cfg);
    ar::util::Rng rng(42);
    return prop.runManyReport({&f_log, &f_id}, poisonedLogInput(),
                              rng);
}

} // namespace

TEST(FaultContainment, CleanRunMatchesLegacyRunMany)
{
    CompiledExpr fn(parseExpr("exp(x / 20) * y"));
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(10.0, 2.0);
    in.uncertain["y"] = std::make_shared<d::Normal>(1.0, 0.25);
    mc::Propagator prop({1000, "latin-hypercube"});
    ar::util::Rng rng_a(7), rng_b(7);
    const auto legacy = prop.runMany({&fn}, in, rng_a);
    const auto reported = prop.runManyReport({&fn}, in, rng_b);
    EXPECT_EQ(reported.samples, legacy);
    EXPECT_TRUE(reported.faults.clean());
    EXPECT_EQ(reported.faults.effective_trials, 1000u);
    EXPECT_EQ(reported.faults.trials, 1000u);
}

TEST(FaultContainment, FailFastThrowsWithAttributedReport)
{
    try {
        propagate(FaultPolicy::FailFast, 1);
        FAIL() << "expected FaultError";
    } catch (const FaultError &e) {
        const FaultReport &report = e.report();
        EXPECT_EQ(report.policy, FaultPolicy::FailFast);
        EXPECT_EQ(report.trials, 600u);
        EXPECT_GT(report.faulty_trials, 0u);
        EXPECT_EQ(report.effective_trials,
                  report.trials - report.faulty_trials);
        // The negated input breaks log's domain: attribution must
        // name the op and classify the fault precisely.
        EXPECT_GT(report.by_kind[static_cast<std::size_t>(
                      FaultKind::LogDomain)],
                  0u);
        ASSERT_FALSE(report.examples.empty());
        EXPECT_NE(report.examples.front().op.find("log"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("log-domain"),
                  std::string::npos);
    }
}

TEST(FaultContainment, LegacyRunManyAlsoFailsFastByDefault)
{
    CompiledExpr fn(parseExpr("log(x)"));
    mc::Propagator prop({600, "latin-hypercube"});
    ar::util::Rng rng(42);
    EXPECT_THROW(prop.runMany({&fn}, poisonedLogInput(), rng),
                 FaultError);
}

TEST(FaultContainment, DiscardDropsFaultyTrialsKeepingAlignment)
{
    const auto out = propagate(FaultPolicy::Discard, 1);
    const FaultReport &report = out.faults;
    EXPECT_GT(report.faulty_trials, 0u);
    EXPECT_EQ(report.effective_trials,
              report.trials - report.faulty_trials);
    ASSERT_EQ(out.samples.size(), 2u);
    for (const auto &column : out.samples) {
        ASSERT_EQ(column.size(), report.effective_trials);
        for (double s : column)
            ASSERT_TRUE(std::isfinite(s));
    }
    // A faulty trial is dropped from EVERY output, so the surviving
    // rows still line up: output 0 is log(output 1) + y.
    for (std::size_t t = 0; t < report.effective_trials; ++t) {
        ASSERT_GT(out.samples[1][t], 0.0) << "trial " << t;
        const double y = out.samples[0][t] -
                         std::log(out.samples[1][t]);
        ASSERT_TRUE(std::isfinite(y));
    }
}

TEST(FaultContainment, SaturatePreservesCountsAndFiniteness)
{
    const auto out = propagate(FaultPolicy::Saturate, 1);
    EXPECT_GT(out.faults.faulty_trials, 0u);
    EXPECT_EQ(out.faults.effective_trials, 600u);
    ASSERT_EQ(out.samples.size(), 2u);
    for (const auto &column : out.samples) {
        ASSERT_EQ(column.size(), 600u);
        for (double s : column)
            ASSERT_TRUE(std::isfinite(s));
    }
}

TEST(FaultContainment, NanInjectionIsClassifiedAsNan)
{
    CompiledExpr fn(parseExpr("x + 1"));
    mc::PropagationConfig cfg;
    cfg.trials = 400;
    cfg.fault_policy = FaultPolicy::Discard;
    mc::Propagator prop(cfg);
    ar::util::Rng rng(3);
    const auto out = prop.runManyReport(
        {&fn},
        poisonedLogInput(0.05, FaultInjectingDistribution::Mode::
                                   QuietNaN),
        rng);
    EXPECT_GT(out.faults.by_kind[static_cast<std::size_t>(
                  FaultKind::Nan)],
              0u);
    EXPECT_EQ(out.faults.by_kind[static_cast<std::size_t>(
                  FaultKind::LogDomain)],
              0u);
}

TEST(FaultContainment, ReportBitIdenticalAcrossThreadCounts)
{
    // ISSUE acceptance: FaultReport (and the surviving samples) are
    // bit-identical for 1, 2, and 8 worker threads under all three
    // policies.
    for (FaultPolicy policy :
         {FaultPolicy::Discard, FaultPolicy::Saturate}) {
        const auto serial = propagate(policy, 1);
        for (std::size_t threads : {2u, 8u}) {
            const auto parallel = propagate(policy, threads);
            expectReportsIdentical(parallel.faults, serial.faults);
            ASSERT_EQ(parallel.samples, serial.samples)
                << ar::util::faultPolicyName(policy) << ", "
                << threads << " threads";
        }
    }
    // FailFast: compare the reports riding on the exceptions.
    auto failFastReport = [&](std::size_t threads) {
        try {
            propagate(FaultPolicy::FailFast, threads);
        } catch (const FaultError &e) {
            return e.report();
        }
        ADD_FAILURE() << "expected FaultError at " << threads
                      << " threads";
        return FaultReport{};
    };
    const auto serial = failFastReport(1);
    expectReportsIdentical(failFastReport(2), serial);
    expectReportsIdentical(failFastReport(8), serial);
}

TEST(FaultContainment, SobolFailFastThrows)
{
    CompiledExpr fn(parseExpr("log(x) * y"));
    mc::SensitivityConfig cfg;
    cfg.trials = 256;
    ar::util::Rng rng(11);
    EXPECT_THROW(
        mc::sobolIndices(fn, poisonedLogInput(0.1), cfg, rng),
        FaultError);
}

TEST(FaultContainment, SobolDiscardKeepsPairsAlignedAndFinite)
{
    CompiledExpr fn(parseExpr("log(x) * y"));
    mc::SensitivityConfig cfg;
    cfg.trials = 512;
    cfg.fault_policy = FaultPolicy::Discard;
    ar::util::Rng rng(11);
    const auto res = mc::sobolIndices(fn, poisonedLogInput(0.1), cfg,
                                      rng);
    EXPECT_GT(res.faults.faulty_trials, 0u);
    EXPECT_LT(res.faults.effective_trials, 512u);
    EXPECT_TRUE(std::isfinite(res.output_mean));
    EXPECT_TRUE(std::isfinite(res.output_variance));
    for (const auto &index : res.indices) {
        EXPECT_TRUE(std::isfinite(index.first_order)) << index.input;
        EXPECT_TRUE(std::isfinite(index.total)) << index.input;
    }
    // Outputs are numbered 0 = f(A), 1 = f(B), 2 + i = f(AB_i).
    EXPECT_LE(res.faults.by_output.size(), 2 + res.indices.size());
}

TEST(FaultContainment, SobolReportBitIdenticalAcrossThreads)
{
    CompiledExpr fn(parseExpr("log(x) * y"));
    auto run = [&](FaultPolicy policy, std::size_t threads) {
        mc::SensitivityConfig cfg;
        cfg.trials = 512;
        cfg.threads = threads;
        cfg.fault_policy = policy;
        ar::util::Rng rng(11);
        return mc::sobolIndices(fn, poisonedLogInput(0.1), cfg, rng);
    };
    for (FaultPolicy policy :
         {FaultPolicy::Discard, FaultPolicy::Saturate}) {
        const auto serial = run(policy, 1);
        for (std::size_t threads : {2u, 8u}) {
            const auto parallel = run(policy, threads);
            expectReportsIdentical(parallel.faults, serial.faults);
            ASSERT_EQ(parallel.indices.size(), serial.indices.size());
            for (std::size_t i = 0; i < serial.indices.size(); ++i) {
                EXPECT_EQ(parallel.indices[i].first_order,
                          serial.indices[i].first_order);
                EXPECT_EQ(parallel.indices[i].total,
                          serial.indices[i].total);
            }
            EXPECT_EQ(parallel.output_mean, serial.output_mean);
            EXPECT_EQ(parallel.output_variance,
                      serial.output_variance);
        }
    }
}

TEST(FaultContainment, SaturateWithNoFiniteSamplesThrows)
{
    // rate = 1.0: every draw is NaN, saturation has no finite edge.
    CompiledExpr fn(parseExpr("x"));
    mc::PropagationConfig cfg;
    cfg.trials = 64;
    cfg.fault_policy = FaultPolicy::Saturate;
    mc::Propagator prop(cfg);
    ar::util::Rng rng(5);
    EXPECT_THROW(
        prop.runManyReport(
            {&fn},
            poisonedLogInput(1.0,
                             FaultInjectingDistribution::Mode::
                                 QuietNaN),
            rng),
        FaultError);
}

TEST(FaultContainment, FusedPropagationMatchesUnfusedPerPolicy)
{
    // The fused program path must reproduce the unfused samples AND
    // the unfused fault report bit-for-bit under every policy.
    CompiledExpr f_log(parseExpr("log(x) + y"));
    CompiledExpr f_id(parseExpr("x"));
    const ar::symbolic::CompiledProgram prog(
        {parseExpr("log(x) + y"), parseExpr("x")});

    auto run = [&](FaultPolicy policy, std::size_t threads,
                   bool fused) {
        mc::PropagationConfig cfg;
        cfg.trials = 600;
        cfg.sampler = "latin-hypercube";
        cfg.threads = threads;
        cfg.fault_policy = policy;
        mc::Propagator prop(cfg);
        ar::util::Rng rng(42);
        return fused
                   ? prop.runMultiReport(prog, poisonedLogInput(),
                                         rng)
                   : prop.runManyReport({&f_log, &f_id},
                                        poisonedLogInput(), rng);
    };

    for (const auto policy :
         {FaultPolicy::Discard, FaultPolicy::Saturate}) {
        const auto want = run(policy, 1, false);
        for (const std::size_t threads : {1u, 4u}) {
            const auto got = run(policy, threads, true);
            EXPECT_EQ(got.samples, want.samples)
                << faultPolicyName(policy) << ", " << threads
                << " threads";
            expectReportsIdentical(got.faults, want.faults);
        }
    }

    // FailFast: both paths throw, with identical attributed reports.
    FaultReport want_report, got_report;
    try {
        run(FaultPolicy::FailFast, 1, false);
        FAIL() << "expected FaultError";
    } catch (const FaultError &e) {
        want_report = e.report();
    }
    try {
        run(FaultPolicy::FailFast, 4, true);
        FAIL() << "expected FaultError";
    } catch (const FaultError &e) {
        got_report = e.report();
    }
    expectReportsIdentical(got_report, want_report);
}

TEST(FaultContainment, FusedSobolMatchesUnfusedPerPolicy)
{
    // Same contract for the fused pick-freeze sweep: indices,
    // moments, and the fault report all match the scalar path.
    // Pinned scalar: fused-vs-unfused bitwise equality is a
    // Level::Scalar contract (DESIGN.md 5.6).
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    const auto expr = parseExpr("log(x) * y + x / (y + 4)");
    auto run = [&](FaultPolicy policy, std::size_t threads,
                   bool fused) {
        mc::SensitivityConfig cfg;
        cfg.trials = 512;
        cfg.threads = threads;
        cfg.fault_policy = policy;
        cfg.fused = fused;
        ar::util::Rng rng(7);
        return mc::sobolIndices(expr, poisonedLogInput(0.1), cfg,
                                rng);
    };
    for (const auto policy :
         {FaultPolicy::Discard, FaultPolicy::Saturate}) {
        const auto want = run(policy, 1, false);
        for (const std::size_t threads : {1u, 4u}) {
            const auto got = run(policy, threads, true);
            ASSERT_EQ(got.indices.size(), want.indices.size());
            for (std::size_t i = 0; i < want.indices.size(); ++i) {
                EXPECT_EQ(got.indices[i].input,
                          want.indices[i].input);
                EXPECT_EQ(got.indices[i].first_order,
                          want.indices[i].first_order);
                EXPECT_EQ(got.indices[i].total,
                          want.indices[i].total);
            }
            EXPECT_EQ(got.output_mean, want.output_mean);
            EXPECT_EQ(got.output_variance, want.output_variance);
            expectReportsIdentical(got.faults, want.faults);
        }
    }
}
