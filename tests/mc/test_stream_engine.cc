/**
 * @file
 * Streaming-vs-materializing equivalence tests for the
 * block-pipelined executor, driven through the Propagator (the
 * engine's primary consumer).  The contract under test: a streamed
 * run (keep_samples = false) and a materializing run of the same
 * configuration report *bit-identical* accumulator statistics and
 * fault accounting, at 1, 2, and 8 threads, including the
 * all-trials-faulty Discard edge; and ci_target early stopping picks
 * the same stopping block for every thread count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "dist/normal.hh"
#include "mc/propagator.hh"
#include "symbolic/parser.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace mc = ar::mc;
namespace d = ar::dist;
using ar::symbolic::CompiledExpr;
using ar::symbolic::parseExpr;
using ar::util::FaultPolicy;

namespace
{

mc::InputBindings
gaussianBindings()
{
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(2.0, 0.5);
    in.uncertain["y"] = std::make_shared<d::Normal>(-1.0, 0.25);
    return in;
}

mc::Propagation
propagate(const char *expr, const mc::InputBindings &in,
          std::size_t trials, std::size_t threads,
          bool keep_samples, FaultPolicy policy,
          const std::string &sampler = "latin-hypercube")
{
    CompiledExpr fn(parseExpr(expr));
    mc::PropagationConfig pc{trials, sampler, threads, policy};
    pc.stream.keep_samples = keep_samples;
    const mc::Propagator prop(pc);
    ar::util::Rng rng(17);
    return prop.runManyReport({&fn}, in, rng);
}

/** Every accumulator accessor, compared for bit-identity. */
void
expectStatsIdentical(const ar::stats::StreamStats &a,
                     const ar::stats::StreamStats &b)
{
    EXPECT_EQ(a.moments.count(), b.moments.count());
    EXPECT_EQ(a.moments.mean(), b.moments.mean());
    EXPECT_EQ(a.moments.variance(), b.moments.variance());
    EXPECT_EQ(a.moments.min(), b.moments.min());
    EXPECT_EQ(a.moments.max(), b.moments.max());
    EXPECT_EQ(a.risk.count(), b.risk.count());
    EXPECT_EQ(a.risk.below(), b.risk.below());
    EXPECT_EQ(a.risk.risk(), b.risk.risk());
    EXPECT_EQ(a.risk.ciHalfWidth(), b.risk.ciHalfWidth());
}

} // namespace

class StreamEngineEquivalence
    : public ::testing::TestWithParam<std::size_t>
{};

INSTANTIATE_TEST_SUITE_P(Threads, StreamEngineEquivalence,
                         ::testing::Values(1u, 2u, 8u));

TEST_P(StreamEngineEquivalence, StreamedMatchesMaterializedBitwise)
{
    const auto keep = propagate("3 * x + y", gaussianBindings(),
                                5000, GetParam(), true,
                                FaultPolicy::FailFast);
    const auto stream = propagate("3 * x + y", gaussianBindings(),
                                  5000, GetParam(), false,
                                  FaultPolicy::FailFast);
    ASSERT_EQ(keep.samples.size(), 1u);
    ASSERT_EQ(keep.samples.front().size(), 5000u);
    EXPECT_TRUE(stream.samples.empty()); // No retention when streaming.
    ASSERT_EQ(keep.stats.size(), 1u);
    ASSERT_EQ(stream.stats.size(), 1u);
    expectStatsIdentical(keep.stats.front(), stream.stats.front());
    EXPECT_EQ(keep.blocks, stream.blocks);
    EXPECT_EQ(keep.trials_run, stream.trials_run);
    // The analytic peak estimate must show the point of streaming.
    EXPECT_LT(stream.peak_bytes, keep.peak_bytes);
}

TEST_P(StreamEngineEquivalence, SingleThreadIsTheReference)
{
    // Determinism across thread counts: every parameterization must
    // agree bitwise with the single-thread run.
    const auto base = propagate("x * x - y", gaussianBindings(),
                                4099, 1, false, FaultPolicy::FailFast);
    const auto par = propagate("x * x - y", gaussianBindings(),
                               4099, GetParam(), false,
                               FaultPolicy::FailFast);
    expectStatsIdentical(base.stats.front(), par.stats.front());
    EXPECT_EQ(base.blocks, par.blocks);
}

TEST_P(StreamEngineEquivalence, DiscardFaultsMatchBitwise)
{
    // sqrt of a zero-mean normal faults on roughly half the trials;
    // Discard must drop exactly the same trials in both modes.
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(0.0, 1.0);
    const auto keep = propagate("sqrt(x)", in, 2048, GetParam(),
                                true, FaultPolicy::Discard);
    const auto stream = propagate("sqrt(x)", in, 2048, GetParam(),
                                  false, FaultPolicy::Discard);
    ASSERT_GT(keep.faults.faulty_trials, 0u);
    EXPECT_EQ(keep.faults.faulty_trials, stream.faults.faulty_trials);
    EXPECT_EQ(keep.faults.effective_trials,
              stream.faults.effective_trials);
    EXPECT_EQ(keep.faults.summary(), stream.faults.summary());
    expectStatsIdentical(keep.stats.front(), stream.stats.front());
    // The retained vector holds only survivors, and the accumulator
    // saw exactly those survivors.
    EXPECT_EQ(keep.samples.front().size(),
              keep.faults.effective_trials);
    EXPECT_EQ(stream.stats.front().moments.count(),
              keep.faults.effective_trials);
}

TEST_P(StreamEngineEquivalence, AllTrialsFaultyDiscardIsTotal)
{
    // sqrt(x) with x pinned far below zero faults on every trial:
    // Discard leaves zero survivors, and both modes must agree that
    // the (total) accessors report zeros rather than NaN.
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<d::Normal>(-50.0, 0.001);
    const auto keep = propagate("sqrt(x)", in, 512, GetParam(), true,
                                FaultPolicy::Discard);
    const auto stream = propagate("sqrt(x)", in, 512, GetParam(),
                                  false, FaultPolicy::Discard);
    EXPECT_EQ(keep.faults.faulty_trials, 512u);
    EXPECT_EQ(keep.faults.effective_trials, 0u);
    EXPECT_TRUE(keep.samples.front().empty());
    expectStatsIdentical(keep.stats.front(), stream.stats.front());
    EXPECT_EQ(stream.stats.front().moments.count(), 0u);
    EXPECT_EQ(stream.stats.front().moments.mean(), 0.0);
}

TEST_P(StreamEngineEquivalence, CounterSamplerStreamsIdentically)
{
    // The counter sampler regenerates blocks on demand instead of
    // materializing the design; its streamed run must still match
    // the keep run bit for bit.
    const auto keep = propagate("3 * x + y", gaussianBindings(),
                                100000, GetParam(), true,
                                FaultPolicy::FailFast, "counter");
    const auto stream = propagate("3 * x + y", gaussianBindings(),
                                  100000, GetParam(), false,
                                  FaultPolicy::FailFast, "counter");
    expectStatsIdentical(keep.stats.front(), stream.stats.front());
    // Without a design matrix or retention the streamed peak is
    // O(block): far below the materializing run's.
    EXPECT_LT(stream.peak_bytes * 10, keep.peak_bytes);
}

TEST_P(StreamEngineEquivalence, CiTargetStopsAtTheSameBlock)
{
    CompiledExpr fn(parseExpr("3 * x + y"));
    const auto run = [&](std::size_t threads) {
        mc::PropagationConfig pc{65536, "latin-hypercube", threads,
                                 FaultPolicy::FailFast};
        pc.stream.keep_samples = false;
        pc.stream.ci_target = 0.05;
        const mc::Propagator prop(pc);
        mc::StreamObserver obs;
        obs.cost = [](double s) { return std::fabs(s); };
        obs.reference = 5.0;
        ar::util::Rng rng(9);
        return prop.runManyReport({&fn}, gaussianBindings(), rng,
                                  obs);
    };
    const auto base = run(1);
    EXPECT_TRUE(base.early_stopped);
    EXPECT_LT(base.trials_run, 65536u);
    const auto par = run(GetParam());
    // The stopping decision reads only the in-order merge frontier,
    // so racing workers cannot move it.
    EXPECT_EQ(base.trials_run, par.trials_run);
    EXPECT_EQ(base.blocks, par.blocks);
    EXPECT_EQ(base.early_stopped, par.early_stopped);
    expectStatsIdentical(base.stats.front(), par.stats.front());
}

TEST_P(StreamEngineEquivalence, FramesArriveInBlockOrder)
{
    CompiledExpr fn(parseExpr("x + y"));
    mc::PropagationConfig pc{4096, "latin-hypercube", GetParam(),
                             FaultPolicy::FailFast};
    pc.stream.keep_samples = false;
    pc.stream.frame_every = 4;
    const mc::Propagator prop(pc);
    mc::StreamObserver obs;
    std::vector<std::size_t> blocks_seen;
    std::vector<double> means_seen;
    obs.on_frame = [&](const mc::StreamFrame &frame) {
        blocks_seen.push_back(frame.blocks_done);
        means_seen.push_back(frame.stats->front().moments.mean());
    };
    ar::util::Rng rng(5);
    prop.runManyReport({&fn}, gaussianBindings(), rng, obs);
    ASSERT_EQ(blocks_seen.size(), 4u); // 16 blocks / every 4.
    for (std::size_t i = 0; i < blocks_seen.size(); ++i)
        EXPECT_EQ(blocks_seen[i], 4 * (i + 1));
    // Frame contents are prefix statistics: deterministic, so two
    // runs see identical frame sequences (checked against the
    // single-thread reference).
    mc::PropagationConfig pc1 = pc;
    pc1.threads = 1;
    std::vector<double> means_ref;
    mc::StreamObserver obs1;
    obs1.on_frame = [&](const mc::StreamFrame &frame) {
        means_ref.push_back(frame.stats->front().moments.mean());
    };
    ar::util::Rng rng1(5);
    mc::Propagator(pc1).runManyReport({&fn}, gaussianBindings(),
                                      rng1, obs1);
    ASSERT_EQ(means_seen.size(), means_ref.size());
    for (std::size_t i = 0; i < means_seen.size(); ++i)
        EXPECT_EQ(means_seen[i], means_ref[i]);
}
