/**
 * @file
 * Unit tests for VaR / CVaR / shortfall probability.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dist/normal.hh"
#include "risk/var.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace r = ar::risk;

namespace
{

std::vector<double>
ladder()
{
    // 1..100.
    std::vector<double> xs(100);
    for (std::size_t i = 0; i < 100; ++i)
        xs[i] = static_cast<double>(i + 1);
    return xs;
}

} // namespace

TEST(ValueAtRisk, QuantileOfLadder)
{
    const auto xs = ladder();
    EXPECT_NEAR(r::valueAtRisk(xs, 0.05), 5.95, 1e-9);
    EXPECT_NEAR(r::valueAtRisk(xs, 0.5), 50.5, 1e-9);
}

TEST(ValueAtRisk, InvalidAlphaIsFatal)
{
    const auto xs = ladder();
    EXPECT_THROW(r::valueAtRisk(xs, 0.0), ar::util::FatalError);
    EXPECT_THROW(r::valueAtRisk(xs, 1.0), ar::util::FatalError);
}

TEST(Cvar, MeanOfWorstTail)
{
    const auto xs = ladder();
    // Worst 5% of 100 samples = {1..5}; mean 3.
    EXPECT_NEAR(r::conditionalValueAtRisk(xs, 0.05), 3.0, 1e-9);
}

TEST(Cvar, NeverExceedsVar)
{
    ar::util::Rng rng(1);
    ar::dist::Normal dist(1.0, 0.3);
    const auto xs = dist.sampleMany(20000, rng);
    for (double alpha : {0.01, 0.05, 0.25}) {
        EXPECT_LE(r::conditionalValueAtRisk(xs, alpha),
                  r::valueAtRisk(xs, alpha) + 1e-9)
            << alpha;
    }
}

TEST(Cvar, GaussianClosedFormCheck)
{
    // For N(mu, sd): CVaR_alpha = mu - sd * phi(z_alpha) / alpha.
    ar::util::Rng rng(2);
    ar::dist::Normal dist(0.0, 1.0);
    const auto xs = dist.sampleMany(200000, rng);
    const double expected = -2.0627; // alpha = 0.05
    EXPECT_NEAR(r::conditionalValueAtRisk(xs, 0.05), expected, 0.03);
}

TEST(Cvar, TinyAlphaUsesAtLeastOneSample)
{
    const std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(r::conditionalValueAtRisk(xs, 0.01), 1.0);
}

TEST(Cvar, EmptyIsFatal)
{
    const std::vector<double> none;
    EXPECT_THROW(r::conditionalValueAtRisk(none, 0.05),
                 ar::util::FatalError);
}

TEST(ShortfallProbability, CountsBelowReference)
{
    const std::vector<double> xs{0.5, 0.9, 1.0, 1.5};
    EXPECT_DOUBLE_EQ(r::shortfallProbability(xs, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(r::shortfallProbability(xs, 0.4), 0.0);
    EXPECT_DOUBLE_EQ(r::shortfallProbability(xs, 2.0), 1.0);
}

TEST(ShortfallProbability, EmptyIsFatal)
{
    const std::vector<double> none;
    EXPECT_THROW(r::shortfallProbability(none, 1.0),
                 ar::util::FatalError);
}
