/**
 * @file
 * Unit tests for risk functions.
 */

#include <gtest/gtest.h>

#include "risk/risk_function.hh"
#include "util/logging.hh"

namespace r = ar::risk;

TEST(StepRisk, IndicatorBehaviour)
{
    r::StepRisk fn;
    EXPECT_DOUBLE_EQ(fn.cost(0.5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(fn.cost(1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(fn.cost(1.5, 1.0), 0.0);
}

TEST(LinearRisk, ShortfallMagnitude)
{
    r::LinearRisk fn;
    EXPECT_DOUBLE_EQ(fn.cost(0.7, 1.0), 0.3);
    EXPECT_DOUBLE_EQ(fn.cost(1.2, 1.0), 0.0);
}

TEST(QuadraticRisk, SquaredShortfall)
{
    r::QuadraticRisk fn;
    EXPECT_DOUBLE_EQ(fn.cost(0.5, 1.0), 0.25);
    EXPECT_DOUBLE_EQ(fn.cost(1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(fn.cost(2.0, 1.0), 0.0);
}

TEST(QuadraticRisk, DeepShortfallDominates)
{
    // The paper's rationale: performance well below expectation is
    // much worse than just below.
    r::QuadraticRisk fn;
    EXPECT_GT(fn.cost(0.0, 1.0), 4.0 * fn.cost(0.5, 1.0) - 1e-12);
}

TEST(PiecewiseRisk, StepsActivateByDepth)
{
    r::PiecewiseRisk fn({{0.0, 1.0}, {0.2, 5.0}, {0.5, 20.0}});
    EXPECT_DOUBLE_EQ(fn.cost(1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(fn.cost(0.95, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(fn.cost(0.75, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(fn.cost(0.3, 1.0), 20.0);
}

TEST(PiecewiseRisk, InvalidStepsAreFatal)
{
    EXPECT_THROW(r::PiecewiseRisk({}), ar::util::FatalError);
    EXPECT_THROW(r::PiecewiseRisk({{0.5, 1.0}, {0.2, 2.0}}),
                 ar::util::FatalError);
    EXPECT_THROW(r::PiecewiseRisk({{-0.1, 1.0}}),
                 ar::util::FatalError);
}

TEST(MonetaryRisk, Table5Values)
{
    const auto fn = r::MonetaryRisk::table5();
    EXPECT_DOUBLE_EQ(fn.value(0.5), 100.0);
    EXPECT_DOUBLE_EQ(fn.value(0.6), 200.0);
    EXPECT_DOUBLE_EQ(fn.value(0.79), 200.0);
    EXPECT_DOUBLE_EQ(fn.value(0.85), 300.0);
    EXPECT_DOUBLE_EQ(fn.value(0.95), 600.0);
    EXPECT_DOUBLE_EQ(fn.value(1.0), 1000.0);
    EXPECT_DOUBLE_EQ(fn.value(1.7), 1000.0);
}

TEST(MonetaryRisk, CostIsDollarGap)
{
    const auto fn = r::MonetaryRisk::table5();
    // Reference at 1.0 ($1000); realized 0.85 ($300) -> $700 lost.
    EXPECT_DOUBLE_EQ(fn.cost(0.85, 1.0), 700.0);
    EXPECT_DOUBLE_EQ(fn.cost(0.99, 1.0), 400.0);
    EXPECT_DOUBLE_EQ(fn.cost(1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(fn.cost(1.2, 1.0), 0.0);
}

TEST(MonetaryRisk, NoCostWhenMeetingReference)
{
    const auto fn = r::MonetaryRisk::table5();
    EXPECT_DOUBLE_EQ(fn.cost(0.95, 0.95), 0.0);
}

TEST(MonetaryRisk, InvalidBinsAreFatal)
{
    EXPECT_THROW(r::MonetaryRisk({}), ar::util::FatalError);
    EXPECT_THROW(
        r::MonetaryRisk({{0.0, 100.0}, {0.0, 200.0}}),
        ar::util::FatalError);
    EXPECT_THROW(
        r::MonetaryRisk({{0.0, 100.0}, {0.5, 50.0}}),
        ar::util::FatalError);
}

TEST(RiskFunctions, ClonePreservesBehaviour)
{
    const auto fn = r::MonetaryRisk::table5();
    const auto copy = fn.clone();
    EXPECT_DOUBLE_EQ(copy->cost(0.85, 1.0), fn.cost(0.85, 1.0));
    r::QuadraticRisk q;
    EXPECT_DOUBLE_EQ(q.clone()->cost(0.5, 1.0), 0.25);
}

TEST(RiskFunctions, NeverChargeAtOrAboveReference)
{
    // Property required by Eq. 1: cost(pe, p) = 0 for pe >= p.
    const r::StepRisk step;
    const r::LinearRisk lin;
    const r::QuadraticRisk quad;
    const auto money = r::MonetaryRisk::table5();
    const r::PiecewiseRisk piece({{0.0, 1.0}});
    for (double p : {0.5, 1.0, 2.0}) {
        for (double delta : {0.0, 0.1, 1.0}) {
            const double pe = p + delta;
            EXPECT_DOUBLE_EQ(step.cost(pe, p), 0.0);
            EXPECT_DOUBLE_EQ(lin.cost(pe, p), 0.0);
            EXPECT_DOUBLE_EQ(quad.cost(pe, p), 0.0);
            EXPECT_DOUBLE_EQ(money.cost(pe, p), 0.0);
            EXPECT_DOUBLE_EQ(piece.cost(pe, p), 0.0);
        }
    }
}
