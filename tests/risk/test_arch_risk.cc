/**
 * @file
 * Unit tests for architectural risk aggregation (Eqs. 1-2).
 */

#include <gtest/gtest.h>

#include <vector>

#include "dist/normal.hh"
#include "risk/arch_risk.hh"
#include "util/logging.hh"

namespace r = ar::risk;

TEST(ArchRisk, AverageOverSamples)
{
    const std::vector<double> perf{0.5, 1.0, 1.5, 0.9};
    r::QuadraticRisk fn;
    // Costs: 0.25, 0, 0, 0.01 -> mean 0.065.
    EXPECT_NEAR(r::archRisk(perf, 1.0, fn), 0.065, 1e-12);
}

TEST(ArchRisk, ZeroWhenAllMeetReference)
{
    const std::vector<double> perf{1.0, 1.2, 2.0};
    r::QuadraticRisk fn;
    EXPECT_DOUBLE_EQ(r::archRisk(perf, 1.0, fn), 0.0);
}

TEST(ArchRisk, StepRiskIsShortfallProbability)
{
    const std::vector<double> perf{0.5, 0.9, 1.1, 1.2};
    r::StepRisk fn;
    EXPECT_DOUBLE_EQ(r::archRisk(perf, 1.0, fn), 0.5);
}

TEST(ArchRisk, EmptySampleIsFatal)
{
    const std::vector<double> none;
    r::StepRisk fn;
    EXPECT_THROW(r::archRisk(none, 1.0, fn), ar::util::FatalError);
}

TEST(ArchRisk, MonotoneInReference)
{
    const std::vector<double> perf{0.8, 0.9, 1.0, 1.1};
    r::LinearRisk fn;
    EXPECT_LE(r::archRisk(perf, 0.9, fn), r::archRisk(perf, 1.0, fn));
    EXPECT_LE(r::archRisk(perf, 1.0, fn), r::archRisk(perf, 1.5, fn));
}

TEST(ArchRisk, DistributionQuadratureMatchesSampling)
{
    ar::dist::Normal perf(1.0, 0.1);
    r::QuadraticRisk fn;
    const double analytic = r::archRisk(perf, 1.0, fn, 8192);
    // E[max(0, 1-X)^2] for X ~ N(1, 0.1): half of E[(X-1)^2] = 0.005.
    EXPECT_NEAR(analytic, 0.005, 1e-4);
}

TEST(ArchRisk, QuadratureGridZeroIsFatal)
{
    ar::dist::Normal perf(1.0, 0.1);
    r::StepRisk fn;
    EXPECT_THROW(r::archRisk(perf, 1.0, fn, 0), ar::util::FatalError);
}

TEST(ArchRisk, StepOnDistributionIsCdf)
{
    ar::dist::Normal perf(1.0, 0.2);
    r::StepRisk fn;
    EXPECT_NEAR(r::archRisk(perf, 1.0, fn, 4096), 0.5, 1e-3);
    EXPECT_NEAR(r::archRisk(perf, 0.8, fn, 4096), perf.cdf(0.8),
                2e-3);
}
