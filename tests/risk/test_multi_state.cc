/**
 * @file
 * Unit tests for the multi-state component layer: component
 * validation, state-space enumeration, and the 0-ULP agreement
 * between the compiled structure-function tape and brute-force
 * enumeration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "risk/multi_state.hh"
#include "simd/dispatch.hh"
#include "symbolic/compile.hh"
#include "symbolic/parser.hh"
#include "util/logging.hh"

namespace risk = ar::risk;
namespace sym = ar::symbolic;

namespace
{

risk::MultiStateComponent
channel(const std::string &name)
{
    return risk::MultiStateComponent(
        name, {{"up", 1.0, 0.9}, {"slow", 0.6, 0.06}, {"down", 0.0, 0.02}});
}

} // namespace

TEST(MultiState, InvalidComponentsAreFatal)
{
    using C = risk::MultiStateComponent;
    EXPECT_THROW(C("", {{"up", 1.0, 1.0}}), ar::util::FatalError);
    EXPECT_THROW(C("x", {}), ar::util::FatalError);
    EXPECT_THROW(C("x", {{"", 1.0, 1.0}}), ar::util::FatalError);
    EXPECT_THROW(C("x", {{"up", -0.5, 1.0}}), ar::util::FatalError);
    EXPECT_THROW(
        C("x", {{"up", std::numeric_limits<double>::infinity(), 1.0}}),
        ar::util::FatalError);
    EXPECT_THROW(C("x", {{"up", 1.0, 1.5}}), ar::util::FatalError);
    EXPECT_THROW(C("x", {{"up", 1.0, -0.1}}), ar::util::FatalError);
    EXPECT_THROW(C("x", {{"up", 1.0, 0.7}, {"down", 0.0, 0.4}}),
                 ar::util::FatalError);
    // A probability gap below 1 is allowed, not fatal.
    const C gap("x", {{"up", 1.0, 0.7}, {"down", 0.0, 0.2}});
    EXPECT_NEAR(gap.totalProbability(), 0.9, 1e-15);
}

TEST(MultiState, DistributionMatchesStates)
{
    const risk::MultiStateComponent c(
        "core", {{"nominal", 1.0, 0.85}, {"half", 0.5, 0.12},
                 {"dead", 0.0, 0.03}});
    const auto dist = c.toDistribution();
    EXPECT_NEAR(dist->mean(), 1.0 * 0.85 + 0.5 * 0.12, 1e-12);
    // The Categorical's quantile is monotone, so LHS stratification
    // survives sampling through it.
    EXPECT_LE(dist->quantile(0.01), dist->quantile(0.99));
}

TEST(MultiState, EnumerationCoversTheStateSpace)
{
    const std::vector<risk::MultiStateComponent> comps = {
        channel("a"),
        risk::MultiStateComponent("b",
                                  {{"up", 1.0, 0.95}, {"down", 0.0, 0.05}}),
    };
    const auto combos = risk::enumerateStateCombos(comps);
    ASSERT_EQ(combos.size(), 6u); // 3 states x 2 states
    double total = 0.0;
    for (const auto &combo : combos) {
        ASSERT_EQ(combo.state.size(), 2u);
        ASSERT_EQ(combo.multipliers.size(), 2u);
        total += combo.probability;
    }
    // Channel "a" carries a 0.02 unmodeled-state gap; the enumerated
    // mass is the product of the per-component totals.
    EXPECT_NEAR(total, 0.98 * 1.0, 1e-12);
}

TEST(MultiState, ExpectationMatchesClosedForm)
{
    // E[series(a, b)] = E[a] * E[b] for independent components.
    const risk::MultiStateComponent a(
        "a", {{"up", 1.0, 0.8}, {"half", 0.5, 0.2}});
    const risk::MultiStateComponent b(
        "b", {{"up", 1.0, 0.9}, {"down", 0.0, 0.1}});
    const std::vector<risk::MultiStateComponent> comps = {a, b};
    const double e = risk::enumerateExpectation(
        sym::parseExpr("series(a, b)"), comps);
    EXPECT_NEAR(e, (0.8 + 0.5 * 0.2) * 0.9, 1e-12);
    // Fixed symbols participate as constants.
    const double scaled = risk::enumerateExpectation(
        sym::parseExpr("peak * series(a, b)"), comps, {{"peak", 10.0}});
    EXPECT_NEAR(scaled, 10.0 * e, 1e-12);
}

TEST(MultiState, UnboundSymbolIsFatal)
{
    const std::vector<risk::MultiStateComponent> comps = {channel("a")};
    EXPECT_THROW(
        risk::enumerateExpectation(sym::parseExpr("a * mystery"), comps),
        ar::util::FatalError);
}

TEST(MultiState, CompiledTapeMatchesEnumerationExactly)
{
    // The memory-hierarchy shape: a k-of-n gate in series with a
    // parallel pair.  Enumerate the full state space, lay the combos
    // out as trial columns, and hold the batch tape to the scalar
    // evaluator bitwise (0 ULP) at every available SIMD level.
    const std::vector<risk::MultiStateComponent> comps = {
        channel("c0"), channel("c1"), channel("c2"),
        risk::MultiStateComponent("l0",
                                  {{"up", 1.0, 0.95}, {"down", 0.0, 0.05}}),
        risk::MultiStateComponent("l1",
                                  {{"up", 1.0, 0.95}, {"down", 0.0, 0.05}}),
    };
    const auto expr = sym::parseExpr(
        "peak * kofn(2, c0, c1, c2) * parallel(l0, l1)");
    const sym::CompiledExpr compiled(expr);
    const auto combos = risk::enumerateStateCombos(comps);
    ASSERT_EQ(combos.size(), 3u * 3u * 3u * 2u * 2u);

    // Column per argument slot (SoA over combos).
    const auto &names = compiled.argNames();
    const double peak = 102.4;
    std::vector<std::vector<double>> cols(names.size());
    for (std::size_t a = 0; a < names.size(); ++a) {
        if (names[a] == "peak") {
            cols[a].assign(combos.size(), peak);
            continue;
        }
        std::size_t ci = comps.size();
        for (std::size_t c = 0; c < comps.size(); ++c)
            if (comps[c].name() == names[a])
                ci = c;
        ASSERT_LT(ci, comps.size()) << names[a];
        cols[a].reserve(combos.size());
        for (const auto &combo : combos)
            cols[a].push_back(combo.multipliers[ci]);
    }
    std::vector<sym::BatchArg> args(names.size());
    for (std::size_t a = 0; a < names.size(); ++a)
        args[a] = {cols[a].data(), false};

    // Scalar reference, one eval per combo.
    std::vector<double> ref(combos.size());
    std::vector<double> scratch(names.size());
    for (std::size_t t = 0; t < combos.size(); ++t) {
        for (std::size_t a = 0; a < names.size(); ++a)
            scratch[a] = cols[a][t];
        ref[t] = compiled.eval(scratch);
    }

    for (const auto level : ar::simd::availableLevels()) {
        ar::simd::ScopedLevel guard(level);
        std::vector<double> out(combos.size(), -1.0);
        compiled.evalBatch(args, combos.size(), out.data());
        for (std::size_t t = 0; t < combos.size(); ++t) {
            EXPECT_EQ(ref[t], out[t])
                << "combo " << t << " at level "
                << ar::simd::levelName(level);
        }
    }

    // The enumeration oracle accumulates prob * eval in combo order;
    // replicating that sum reproduces it bitwise.
    double acc = 0.0;
    for (std::size_t t = 0; t < combos.size(); ++t)
        acc += combos[t].probability * ref[t];
    const double oracle = risk::enumerateExpectation(
        expr, comps, {{"peak", peak}});
    EXPECT_EQ(acc, oracle);
}

TEST(MultiState, KOfNEdgeCasesOverStateSpace)
{
    const std::vector<risk::MultiStateComponent> comps = {
        channel("a"), channel("b")};
    // k = 0: the gate is constant 1, so the expectation is exactly
    // the enumerated probability mass (0.98 per channel).
    EXPECT_NEAR(
        risk::enumerateExpectation(sym::parseExpr("kofn(0, a, b)"), comps),
        0.98 * 0.98, 1e-12);
    // k = n: both must be up or degraded (multiplier > 0).
    EXPECT_NEAR(
        risk::enumerateExpectation(sym::parseExpr("kofn(2, a, b)"), comps),
        0.96 * 0.96, 1e-12);
}

TEST(MultiState, SingleStateComponentsAreDeterministic)
{
    // Degenerate one-state components make the structure function a
    // constant over the (single) combo.
    const std::vector<risk::MultiStateComponent> comps = {
        risk::MultiStateComponent("up1", {{"on", 1.0, 1.0}}),
        risk::MultiStateComponent("dead1", {{"off", 0.0, 1.0}}),
    };
    EXPECT_DOUBLE_EQ(risk::enumerateExpectation(
                         sym::parseExpr("kofn(1, up1, dead1)"), comps),
                     1.0);
    EXPECT_DOUBLE_EQ(risk::enumerateExpectation(
                         sym::parseExpr("kofn(2, up1, dead1)"), comps),
                     0.0);
    EXPECT_DOUBLE_EQ(risk::enumerateExpectation(
                         sym::parseExpr("series(up1, dead1)"), comps),
                     0.0);
    EXPECT_DOUBLE_EQ(risk::enumerateExpectation(
                         sym::parseExpr("parallel(up1, dead1)"), comps),
                     1.0);
}
