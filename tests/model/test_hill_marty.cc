/**
 * @file
 * Unit tests for the Hill-Marty model: the direct evaluator, the
 * symbolic system, and their agreement.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/app.hh"
#include "model/core_config.hh"
#include "model/hill_marty.hh"
#include "symbolic/compile.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace m = ar::model;
using Eval = m::HillMartyEvaluator;

TEST(HillMartyNames, Formatting)
{
    EXPECT_EQ(m::names::corePerf(0), "P_core0");
    EXPECT_EQ(m::names::coreCount(3), "N_core3");
    EXPECT_EQ(m::names::coreArea(12), "A_core12");
}

TEST(HillMartyEvaluator, SingleBigCoreIsAmdahl)
{
    // One core of size 256, f = 0.5, c = 0: speedup = P (serial and
    // parallel both run on the single core).
    const std::vector<double> perf{16.0};
    const std::vector<double> count{1.0};
    const double s = Eval::speedup(0.5, 0.0, perf, count);
    EXPECT_NEAR(s, 16.0, 1e-12);
}

TEST(HillMartyEvaluator, SymmetricClosedForm)
{
    // 32 cores of size 8: P = sqrt(8), N = 32.
    const double p = std::sqrt(8.0);
    const std::vector<double> perf{p};
    const std::vector<double> count{32.0};
    const double f = 0.9, c = 0.001;
    const double expect =
        1.0 / ((1.0 - f + c * 32.0) / p + f / (32.0 * p));
    EXPECT_NEAR(Eval::speedup(f, c, perf, count), expect, 1e-12);
}

TEST(HillMartyEvaluator, SerialUsesBestWorkingCore)
{
    // Big core dead (count 0): serial must fall back to small cores.
    const std::vector<double> perf{std::sqrt(128.0), std::sqrt(8.0)};
    const std::vector<double> alive{1.0, 16.0};
    const std::vector<double> dead{0.0, 16.0};
    EXPECT_GT(Eval::speedup(0.9, 0.001, perf, alive),
              Eval::speedup(0.9, 0.001, perf, dead));
}

TEST(HillMartyEvaluator, AllCoresDeadIsZero)
{
    const std::vector<double> perf{2.0, 3.0};
    const std::vector<double> count{0.0, 0.0};
    EXPECT_DOUBLE_EQ(Eval::speedup(0.9, 0.001, perf, count), 0.0);
}

TEST(HillMartyEvaluator, AllPerfZeroIsZero)
{
    const std::vector<double> perf{0.0};
    const std::vector<double> count{32.0};
    EXPECT_DOUBLE_EQ(Eval::speedup(0.9, 0.001, perf, count), 0.0);
}

TEST(HillMartyEvaluator, CommunicationOverheadPenalizesManyCores)
{
    // With heavy c, fewer/larger cores should win for serial-ish
    // workloads.
    const double s_many = Eval::nominalSpeedup(m::symCores(), 0.9,
                                               0.05);
    const double s_few = Eval::nominalSpeedup(
        m::CoreConfig::symmetric(2, 128.0), 0.9, 0.05);
    EXPECT_GT(s_few, s_many);
}

TEST(HillMartyEvaluator, MismatchedSpansAreFatal)
{
    const std::vector<double> perf{1.0, 2.0};
    const std::vector<double> count{1.0};
    EXPECT_THROW(Eval::speedup(0.5, 0.0, perf, count),
                 ar::util::FatalError);
}

TEST(HillMartyEvaluator, EmptyConfigIsFatal)
{
    const std::vector<double> none;
    EXPECT_THROW(Eval::speedup(0.5, 0.0, none, none),
                 ar::util::FatalError);
}

TEST(HillMartyEvaluator, NominalSpeedupPaperBallpark)
{
    // Hill-Marty: symmetric 32x8 with HP-ish app beats one huge core.
    const double sym = Eval::nominalSpeedup(m::symCores(), 0.999,
                                            0.0);
    const double mono = Eval::nominalSpeedup(
        m::CoreConfig::symmetric(1, 256.0), 0.999, 0.0);
    EXPECT_GT(sym, mono);
}

TEST(HillMartySystem, ResolvesSpeedup)
{
    auto sys = m::buildHillMartySystem(2);
    const auto resolved = sys.resolve("Speedup");
    const auto inputs = resolved->freeSymbols();
    EXPECT_TRUE(inputs.count("f"));
    EXPECT_TRUE(inputs.count("c"));
    EXPECT_TRUE(inputs.count("P_core0"));
    EXPECT_TRUE(inputs.count("N_core1"));
    // Intermediates must be fully substituted away.
    EXPECT_FALSE(inputs.count("T_seq"));
    EXPECT_FALSE(inputs.count("P_parallel"));
}

TEST(HillMartySystem, UncertainSetMatchesPaper)
{
    auto sys = m::buildHillMartySystem(1);
    const auto &unc = sys.uncertain();
    EXPECT_TRUE(unc.count("f"));
    EXPECT_TRUE(unc.count("c"));
    EXPECT_TRUE(unc.count("P_core0"));
    EXPECT_TRUE(unc.count("N_core0"));
}

TEST(HillMartySystem, PollackDefinitionRetained)
{
    auto sys = m::buildHillMartySystem(1);
    // P_core0's nominal definition sqrt(A_core0) stays available for
    // centring distributions.
    const auto def = sys.definitionOf("P_core0");
    EXPECT_EQ(def->freeSymbols().count("A_core0"), 1u);
}

TEST(HillMartySystem, ZeroTypesIsFatal)
{
    EXPECT_THROW(m::buildHillMartySystem(0), ar::util::FatalError);
}

TEST(HillMartyAgreement, SymbolicMatchesDirectOnRandomInputs)
{
    // The central cross-check: compiled symbolic Speedup equals the
    // hand-written evaluator over random inputs for 1-5 core types.
    for (std::size_t k = 1; k <= 5; ++k) {
        auto sys = m::buildHillMartySystem(k);
        ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
        ar::util::Rng rng(1000 + k);

        for (int trial = 0; trial < 200; ++trial) {
            std::vector<double> perf(k), count(k);
            std::map<std::string, double> vals;
            const double f = rng.uniform(0.5, 0.999);
            const double c = rng.uniform(0.0, 0.02);
            vals["f"] = f;
            vals["c"] = c;
            for (std::size_t i = 0; i < k; ++i) {
                perf[i] = rng.uniform() < 0.1
                              ? 0.0
                              : rng.uniform(0.5, 16.0);
                count[i] = std::floor(rng.uniform(0.0, 33.0));
                vals[m::names::corePerf(i)] = perf[i];
                vals[m::names::coreCount(i)] = count[i];
                vals[m::names::coreArea(i)] = 8.0; // unused by eval
            }
            std::vector<double> args;
            for (const auto &name : fn.argNames())
                args.push_back(vals.at(name));
            const double sym = fn.eval(args);
            const double direct = Eval::speedup(f, c, perf, count);
            ASSERT_NEAR(sym, direct,
                        1e-9 * std::max(1.0, std::fabs(direct)))
                << "k=" << k << " trial=" << trial;
        }
    }
}
