/**
 * @file
 * Unit tests for the yield model against the paper's Table 4.
 */

#include <gtest/gtest.h>

#include "model/yield.hh"
#include "util/logging.hh"

namespace m = ar::model;

TEST(Yield, Table4RatesReproduced)
{
    // Table 4: size -> yield (98%, 96%, 92%, 85%, 75%).  The paper's
    // published numbers are rounded; the calibrated model reproduces
    // them to within a point.
    EXPECT_NEAR(m::yieldRate(8.0), 0.98, 0.005);
    EXPECT_NEAR(m::yieldRate(16.0), 0.96, 0.005);
    EXPECT_NEAR(m::yieldRate(32.0), 0.92, 0.006);
    EXPECT_NEAR(m::yieldRate(64.0), 0.85, 0.011);
    EXPECT_NEAR(m::yieldRate(128.0), 0.75, 0.01);
}

TEST(Yield, AnchorPointIsExact)
{
    // Calibration solves yield(8) = 0.98 exactly.
    EXPECT_NEAR(m::yieldRate(8.0), 0.98, 1e-12);
}

TEST(Yield, MonotoneDecreasingInArea)
{
    double prev = 1.0;
    for (double a = 1.0; a <= 512.0; a *= 2.0) {
        const double y = m::yieldRate(a);
        EXPECT_LT(y, prev);
        prev = y;
    }
}

TEST(Yield, BoundedInUnitInterval)
{
    for (double a : {0.001, 1.0, 256.0, 1e6}) {
        const double y = m::yieldRate(a);
        EXPECT_GT(y, 0.0);
        EXPECT_LE(y, 1.0);
    }
}

TEST(Yield, ZeroDefectDensityIsPerfect)
{
    EXPECT_DOUBLE_EQ(m::yieldRate(128.0, 0.0), 1.0);
}

TEST(Yield, InvalidArgumentsAreFatal)
{
    EXPECT_THROW(m::yieldRate(0.0), ar::util::FatalError);
    EXPECT_THROW(m::yieldRate(-1.0), ar::util::FatalError);
    EXPECT_THROW(m::yieldRate(8.0, -0.1), ar::util::FatalError);
    EXPECT_THROW(m::yieldRate(8.0, 0.1, 0.0), ar::util::FatalError);
}

TEST(Yield, HigherClusteringRaisesYield)
{
    // For a fixed defect density, more clustering (higher alpha in
    // the negative-binomial model) lowers yield toward Poisson.
    const double d = m::kDefectDensity;
    EXPECT_GT(m::yieldRate(128.0, d, 1.0),
              m::yieldRate(128.0, d, 10.0));
}
