/**
 * @file
 * Unit tests for application classes.
 */

#include <gtest/gtest.h>

#include "model/app.hh"
#include "util/logging.hh"

namespace m = ar::model;

TEST(App, PaperParameterValues)
{
    EXPECT_DOUBLE_EQ(m::appHPLC().f, 0.999);
    EXPECT_DOUBLE_EQ(m::appHPLC().c, 0.001);
    EXPECT_DOUBLE_EQ(m::appHPHC().f, 0.999);
    EXPECT_DOUBLE_EQ(m::appHPHC().c, 0.01);
    EXPECT_DOUBLE_EQ(m::appLPLC().f, 0.9);
    EXPECT_DOUBLE_EQ(m::appLPLC().c, 0.001);
    EXPECT_DOUBLE_EQ(m::appLPHC().f, 0.9);
    EXPECT_DOUBLE_EQ(m::appLPHC().c, 0.01);
}

TEST(App, StandardAppsHasFourClasses)
{
    const auto apps = m::standardApps();
    ASSERT_EQ(apps.size(), 4u);
    EXPECT_EQ(apps[0].name, "HPLC");
    EXPECT_EQ(apps[3].name, "LPHC");
}

TEST(App, LookupByName)
{
    EXPECT_DOUBLE_EQ(m::appByName("LPHC").c, 0.01);
    EXPECT_DOUBLE_EQ(m::appByName("HPLC").f, 0.999);
}

TEST(App, UnknownNameIsFatal)
{
    EXPECT_THROW(m::appByName("XXXX"), ar::util::FatalError);
}
