/**
 * @file
 * Unit tests for the LogCA accelerator model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "model/logca.hh"
#include "symbolic/compile.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace m = ar::model;
using Eval = m::LogCaEvaluator;

TEST(LogCa, SpeedupApproachesPeakAcceleration)
{
    m::LogCaParams p;
    p.latency = 0.0;
    p.overhead = 1.0;
    p.accel = 16.0;
    EXPECT_NEAR(Eval::speedup(p, 1e9), 16.0, 0.01);
}

TEST(LogCa, LatencyCapsAsymptoticSpeedup)
{
    // With L > 0 and beta = 1 the asymptote is C/(L + C/A) < A.
    m::LogCaParams p;
    p.latency = 0.05;
    p.compute = 1.0;
    p.accel = 16.0;
    const double cap = 1.0 / (0.05 + 1.0 / 16.0);
    EXPECT_NEAR(Eval::speedup(p, 1e9), cap, 0.01);
    EXPECT_LT(cap, p.accel);
}

TEST(LogCa, TinyGranularityLoses)
{
    m::LogCaParams p;
    EXPECT_LT(Eval::speedup(p, 1e-3), 1.0);
}

TEST(LogCa, SpeedupMonotoneInGranularityForBetaOne)
{
    m::LogCaParams p;
    double prev = 0.0;
    for (double g = 0.01; g < 1e6; g *= 10.0) {
        const double s = Eval::speedup(p, g);
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST(LogCa, BreakEvenGranularityIsBreakEven)
{
    m::LogCaParams p;
    p.overhead = 2.0;
    p.latency = 0.01;
    p.accel = 8.0;
    const double g1 = Eval::breakEvenGranularity(p);
    EXPECT_NEAR(Eval::speedup(p, g1), 1.0, 1e-6);
    EXPECT_LT(Eval::speedup(p, g1 * 0.5), 1.0);
    EXPECT_GT(Eval::speedup(p, g1 * 2.0), 1.0);
}

TEST(LogCa, HigherOverheadRaisesBreakEven)
{
    m::LogCaParams cheap, costly;
    costly.overhead = 10.0 * cheap.overhead;
    EXPECT_GT(Eval::breakEvenGranularity(costly),
              Eval::breakEvenGranularity(cheap));
}

TEST(LogCa, NeverBreakingEvenIsFatal)
{
    // Acceleration below 1 with latency never wins.
    m::LogCaParams p;
    p.accel = 0.5;
    EXPECT_THROW(Eval::breakEvenGranularity(p, 1e6),
                 ar::util::FatalError);
}

TEST(LogCa, InvalidParamsAreFatal)
{
    m::LogCaParams p;
    EXPECT_THROW(Eval::speedup(p, 0.0), ar::util::FatalError);
    p.accel = -1.0;
    EXPECT_THROW(Eval::speedup(p, 1.0), ar::util::FatalError);
}

TEST(LogCa, SymbolicMatchesDirectOnRandomInputs)
{
    auto sys = m::buildLogCaSystem();
    ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    ar::util::Rng rng(31337);
    for (int i = 0; i < 200; ++i) {
        m::LogCaParams p;
        p.latency = rng.uniform(0.0, 0.1);
        p.overhead = rng.uniform(0.0, 5.0);
        p.compute = rng.uniform(0.1, 3.0);
        p.accel = rng.uniform(1.0, 64.0);
        p.beta = rng.uniform(0.5, 2.0);
        const double g = std::exp(rng.uniform(-2.0, 8.0));
        std::map<std::string, double> vals{
            {"L", p.latency}, {"o", p.overhead}, {"C", p.compute},
            {"A", p.accel},   {"beta", p.beta},  {"g", g}};
        std::vector<double> args;
        for (const auto &name : fn.argNames())
            args.push_back(vals.at(name));
        EXPECT_NEAR(fn.eval(args), Eval::speedup(p, g),
                    1e-9 * std::max(1.0, Eval::speedup(p, g)))
            << "trial " << i;
    }
}

TEST(LogCa, UncertainVariablesAreAccelAndLatency)
{
    auto sys = m::buildLogCaSystem();
    EXPECT_TRUE(sys.uncertain().count("A"));
    EXPECT_TRUE(sys.uncertain().count("L"));
    const auto inputs = sys.resolvedInputs("Speedup");
    EXPECT_TRUE(inputs.count("g"));
    EXPECT_FALSE(inputs.count("T_host"));
}
