/**
 * @file
 * Unit tests for core configurations.
 */

#include <gtest/gtest.h>

#include "model/core_config.hh"
#include "util/logging.hh"

namespace m = ar::model;

TEST(CoreConfig, CanonicalFormMergesAndSorts)
{
    m::CoreConfig cfg({{8.0, 4}, {128.0, 1}, {8.0, 2}});
    ASSERT_EQ(cfg.numTypes(), 2u);
    EXPECT_DOUBLE_EQ(cfg.types()[0].area, 128.0);
    EXPECT_EQ(cfg.types()[0].count, 1u);
    EXPECT_DOUBLE_EQ(cfg.types()[1].area, 8.0);
    EXPECT_EQ(cfg.types()[1].count, 6u);
}

TEST(CoreConfig, ZeroCountsDropped)
{
    m::CoreConfig cfg({{16.0, 0}, {8.0, 2}});
    EXPECT_EQ(cfg.numTypes(), 1u);
}

TEST(CoreConfig, NonPositiveAreaIsFatal)
{
    EXPECT_THROW(m::CoreConfig({{0.0, 1}}), ar::util::FatalError);
    EXPECT_THROW(m::CoreConfig({{-8.0, 1}}), ar::util::FatalError);
}

TEST(CoreConfig, Totals)
{
    const auto cfg = m::asymCores();
    EXPECT_EQ(cfg.totalCores(), 17u);
    EXPECT_DOUBLE_EQ(cfg.totalArea(), 256.0);
}

TEST(CoreConfig, DescribeFormat)
{
    EXPECT_EQ(m::asymCores().describe(), "1x128 + 16x8");
    EXPECT_EQ(m::symCores().describe(), "32x8");
}

TEST(CoreConfig, ParseRoundTrip)
{
    for (const auto &cfg :
         {m::symCores(), m::asymCores(), m::heteroCores()}) {
        const auto parsed = m::CoreConfig::parse(cfg.describe());
        EXPECT_TRUE(parsed == cfg) << cfg.describe();
    }
}

TEST(CoreConfig, ParseToleratesWhitespace)
{
    const auto cfg = m::CoreConfig::parse(" 2x8+ 1x16 ");
    EXPECT_EQ(cfg.numTypes(), 2u);
    EXPECT_DOUBLE_EQ(cfg.totalArea(), 32.0);
}

TEST(CoreConfig, ParseErrorsAreFatal)
{
    EXPECT_THROW(m::CoreConfig::parse(""), ar::util::FatalError);
    EXPECT_THROW(m::CoreConfig::parse("8"), ar::util::FatalError);
    EXPECT_THROW(m::CoreConfig::parse("ax8"), ar::util::FatalError);
    EXPECT_THROW(m::CoreConfig::parse("1.5x8"), ar::util::FatalError);
    EXPECT_THROW(m::CoreConfig::parse("0x8"), ar::util::FatalError);
}

TEST(CoreConfig, PaperExampleConfigs)
{
    EXPECT_DOUBLE_EQ(m::symCores().totalArea(), 256.0);
    EXPECT_DOUBLE_EQ(m::asymCores().totalArea(), 256.0);
    EXPECT_DOUBLE_EQ(m::heteroCores().totalArea(), 256.0);
    EXPECT_EQ(m::heteroCores().numTypes(), 5u);
    EXPECT_EQ(m::heteroCores().totalCores(), 6u);
}

TEST(CoreConfig, EqualityIsCanonical)
{
    const auto a = m::CoreConfig::parse("16x8 + 1x128");
    const auto b = m::CoreConfig::parse("1x128 + 8x8 + 8x8");
    EXPECT_TRUE(a == b);
}

TEST(CoreConfig, SymmetricFactory)
{
    const auto cfg = m::CoreConfig::symmetric(4, 64.0);
    EXPECT_EQ(cfg.describe(), "4x64");
}
