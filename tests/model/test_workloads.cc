/**
 * @file
 * Unit tests for the synthetic workload suite, including the
 * paper-workflow round trip: measure -> extract -> compare to truth.
 */

#include <gtest/gtest.h>

#include "extract/extract.hh"
#include "math/numeric.hh"
#include "model/workloads.hh"
#include "util/logging.hh"

namespace m = ar::model;

TEST(Workloads, SuiteSpansTheParsecRange)
{
    const auto suite = m::syntheticSuite();
    ASSERT_GE(suite.size(), 10u);
    double min_f = 1.0, max_f = 0.0;
    for (const auto &p : suite) {
        EXPECT_GT(p.f, 0.0);
        EXPECT_LT(p.f, 1.0);
        EXPECT_GT(p.c, 0.0);
        EXPECT_LT(p.c, 0.1);
        min_f = std::min(min_f, p.f);
        max_f = std::max(max_f, p.f);
    }
    EXPECT_LT(min_f, 0.7);  // a pipeline-limited outlier exists
    EXPECT_GT(max_f, 0.99); // and a data-parallel one
}

TEST(Workloads, ProfileLookup)
{
    const auto p = m::profileByName("x264-like");
    EXPECT_DOUBLE_EQ(p.f, 0.60);
    EXPECT_THROW(m::profileByName("doom-like"), ar::util::FatalError);
}

TEST(Workloads, ObservationsCenterOnTruth)
{
    const auto p = m::profileByName("dedup-like");
    ar::util::Rng rng(61);
    const auto obs = m::observeParallelFraction(p, 5000, 0.2, rng);
    EXPECT_NEAR(ar::math::mean(obs), p.f, 0.005);
    EXPECT_NEAR(ar::math::stddev(obs), 0.2 * (1.0 - p.f), 0.003);
}

TEST(Workloads, ObservationsAreValidFractions)
{
    const auto p = m::profileByName("canneal-like");
    ar::util::Rng rng(62);
    for (double x : m::observeParallelFraction(p, 1000, 1.0, rng)) {
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0);
    }
}

TEST(Workloads, CommOverheadObservations)
{
    const auto p = m::profileByName("streamcluster-like");
    ar::util::Rng rng(63);
    const auto obs = m::observeCommOverhead(p, 5000, 0.3, rng);
    EXPECT_NEAR(ar::math::mean(obs), p.c, 0.002);
}

TEST(Workloads, ZeroSigmaIsFatal)
{
    const auto p = m::syntheticSuite().front();
    ar::util::Rng rng(64);
    EXPECT_THROW(m::observeParallelFraction(p, 10, 0.0, rng),
                 ar::util::FatalError);
    EXPECT_THROW(m::observeCommOverhead(p, 10, 0.0, rng),
                 ar::util::FatalError);
}

TEST(Workloads, PaperWorkflowRoundTrip)
{
    // Measure a benchmark 40 times, extract a distribution from the
    // runs, and verify the estimate matches the hidden truth -- the
    // full Figure-2 loop on workload data.
    const auto p = m::profileByName("ferret-like");
    ar::util::Rng rng(65);
    const auto obs = m::observeParallelFraction(p, 40, 0.3, rng);
    const auto est = ar::extract::extractUncertainty(obs);
    EXPECT_NEAR(est.distribution->mean(), p.f, 0.01);
    EXPECT_NEAR(est.distribution->stddev(), 0.3 * (1.0 - p.f),
                0.01);
}
