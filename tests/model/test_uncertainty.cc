/**
 * @file
 * Unit tests for the ground-truth uncertainty models (Tables 2-3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/numeric.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "model/yield.hh"
#include "util/logging.hh"

namespace m = ar::model;

TEST(UncertaintySpec, AllSetsEveryAxis)
{
    const auto s = m::UncertaintySpec::all(0.4);
    EXPECT_DOUBLE_EQ(s.sigma_f, 0.4);
    EXPECT_DOUBLE_EQ(s.sigma_c, 0.4);
    EXPECT_DOUBLE_EQ(s.sigma_perf, 0.4);
    EXPECT_DOUBLE_EQ(s.sigma_design, 0.4);
    EXPECT_TRUE(s.fab);
}

TEST(UncertaintySpec, AllZeroDisablesFab)
{
    EXPECT_FALSE(m::UncertaintySpec::all(0.0).fab);
}

TEST(UncertaintySpec, AppArchSplitsAxes)
{
    const auto s = m::UncertaintySpec::appArch(0.2, 0.6);
    EXPECT_DOUBLE_EQ(s.sigma_f, 0.2);
    EXPECT_DOUBLE_EQ(s.sigma_c, 0.2);
    EXPECT_DOUBLE_EQ(s.sigma_perf, 0.6);
    EXPECT_DOUBLE_EQ(s.sigma_design, 0.6);
    EXPECT_TRUE(s.fab);
}

TEST(GroundTruthF, MeanAndStdMatchTable3)
{
    const auto app = m::appLPHC(); // f = 0.9
    const double sigma = 0.3;
    const auto dist = m::groundTruthF(app, sigma);
    EXPECT_NEAR(dist->mean(), 0.9, 1e-9);
    // Table 3: sd = sigma * (1 - f); M rounding makes it approximate.
    EXPECT_NEAR(dist->stddev(), sigma * 0.1, 0.005);
}

TEST(GroundTruthF, SupportIsUnitInterval)
{
    const auto dist = m::groundTruthF(m::appLPHC(), 1.0);
    ar::util::Rng rng(131);
    for (int i = 0; i < 2000; ++i) {
        const double x = dist->sample(rng);
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0);
    }
}

TEST(GroundTruthC, MeanAndStdMatchTable3)
{
    const auto app = m::appLPHC(); // c = 0.01
    const auto dist = m::groundTruthC(app, 0.5);
    EXPECT_NEAR(dist->mean(), 0.01, 1e-9);
    EXPECT_NEAR(dist->stddev(), 0.005, 0.0005);
}

TEST(GroundTruthF, ZeroSigmaIsFatal)
{
    EXPECT_THROW(m::groundTruthF(m::appLPHC(), 0.0),
                 ar::util::FatalError);
    EXPECT_THROW(m::groundTruthC(m::appLPHC(), 0.0),
                 ar::util::FatalError);
}

TEST(GroundTruthCorePerf, MeanFollowsPollackWithoutDesignRisk)
{
    const auto dist = m::groundTruthCorePerf(64.0, 0.2, 0.0, 0.15);
    EXPECT_NEAR(dist->mean(), 8.0, 1e-9);
    EXPECT_NEAR(dist->stddev(), 1.6, 1e-9);
}

TEST(GroundTruthCorePerf, DesignRiskScalesMean)
{
    // Survival probability 1 - sigma*gamma = 1 - 0.5*0.2 = 0.9.
    const auto dist = m::groundTruthCorePerf(64.0, 0.0, 0.5, 0.2);
    EXPECT_NEAR(dist->mean(), 8.0 * 0.9, 1e-9);
}

TEST(GroundTruthCorePerf, ZeroSigmasIsDegenerate)
{
    const auto dist = m::groundTruthCorePerf(64.0, 0.0, 0.0, 0.15);
    EXPECT_DOUBLE_EQ(dist->mean(), 8.0);
    EXPECT_DOUBLE_EQ(dist->stddev(), 0.0);
}

TEST(GroundTruthCorePerf, FailureAboveOneIsFatal)
{
    EXPECT_THROW(m::groundTruthCorePerf(64.0, 0.1, 2.0, 0.6),
                 ar::util::FatalError);
}

TEST(GroundTruthCoreCount, BinomialWithYield)
{
    const auto dist = m::groundTruthCoreCount(8.0, 32);
    const double y = m::yieldRate(8.0);
    EXPECT_NEAR(dist->mean(), 32.0 * y, 1e-9);
    EXPECT_NEAR(dist->stddev(), std::sqrt(32.0 * y * (1.0 - y)),
                1e-9);
}

TEST(GroundTruthBindings, CertainSpecFixesEverything)
{
    const auto in = m::groundTruthBindings(
        m::asymCores(), m::appLPHC(), m::UncertaintySpec::none());
    EXPECT_TRUE(in.uncertain.empty());
    EXPECT_DOUBLE_EQ(in.fixed.at("f"), 0.9);
    EXPECT_DOUBLE_EQ(in.fixed.at("c"), 0.01);
    EXPECT_DOUBLE_EQ(in.fixed.at("P_core0"), std::sqrt(128.0));
    EXPECT_DOUBLE_EQ(in.fixed.at("N_core1"), 16.0);
}

TEST(GroundTruthBindings, FullSpecInjectsAllFiveTypes)
{
    const auto in = m::groundTruthBindings(
        m::asymCores(), m::appLPHC(), m::UncertaintySpec::all(0.2));
    // f, c plus per-type P and N for two types = 6 uncertain vars.
    EXPECT_EQ(in.uncertain.size(), 6u);
    EXPECT_TRUE(in.uncertain.count("f"));
    EXPECT_TRUE(in.uncertain.count("c"));
    EXPECT_TRUE(in.uncertain.count("P_core0"));
    EXPECT_TRUE(in.uncertain.count("N_core0"));
    // Areas remain fixed inputs.
    EXPECT_DOUBLE_EQ(in.fixed.at("A_core0"), 128.0);
}

TEST(GroundTruthBindings, PartialSpecMixes)
{
    m::UncertaintySpec spec;
    spec.sigma_f = 0.3; // only f uncertain
    const auto in = m::groundTruthBindings(m::symCores(),
                                           m::appHPLC(), spec);
    EXPECT_EQ(in.uncertain.size(), 1u);
    EXPECT_TRUE(in.uncertain.count("f"));
    EXPECT_DOUBLE_EQ(in.fixed.at("c"), 0.001);
    EXPECT_DOUBLE_EQ(in.fixed.at("N_core0"), 32.0);
}
