/**
 * @file
 * Unit tests for the Woo-Lee energy-efficiency extension model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "model/woo_lee.hh"
#include "symbolic/compile.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace m = ar::model;
using Eval = m::WooLeeEvaluator;

TEST(WooLee, SingleCoreBaseline)
{
    // N = 1: time 1, energy 1 regardless of f and k.
    EXPECT_DOUBLE_EQ(Eval::execTime(0.7, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(Eval::energy(0.7, 0.3, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(Eval::perfPerJoule(0.7, 0.3, 1.0), 1.0);
}

TEST(WooLee, PerfectGatingMakesEnergyFlat)
{
    // k = 0: idle cores are free, energy = 1 for all N.
    for (double n : {2.0, 16.0, 256.0})
        EXPECT_DOUBLE_EQ(Eval::energy(0.9, 0.0, n), 1.0);
}

TEST(WooLee, NoGatingPenalizesManyCores)
{
    // k = 1: serial phase burns all N cores.
    const double e = Eval::energy(0.5, 1.0, 16.0);
    EXPECT_DOUBLE_EQ(e, 0.5 * 16.0 + 0.5);
    EXPECT_LT(Eval::perfPerWatt(0.5, 1.0, 16.0),
              Eval::perfPerWatt(0.5, 1.0, 2.0));
}

TEST(WooLee, AmdahlLimitOnPerf)
{
    // Perf approaches 1/(1-f) as N grows.
    EXPECT_NEAR(Eval::perf(0.9, 1e9), 10.0, 1e-6);
}

TEST(WooLee, PerfPerJouleHasInteriorOptimumInN)
{
    // With imperfect gating, Perf/J rises then falls in N.
    const double f = 0.95, k = 0.2;
    const double small = Eval::perfPerJoule(f, k, 2.0);
    const double mid = Eval::perfPerJoule(f, k, 8.0);
    const double large = Eval::perfPerJoule(f, k, 256.0);
    EXPECT_GT(mid, small);
    EXPECT_GT(mid, large);
}

TEST(WooLee, InvalidCoreCountIsFatal)
{
    EXPECT_THROW(Eval::execTime(0.5, 0.0), ar::util::FatalError);
    EXPECT_THROW(Eval::energy(0.5, 0.1, -1.0), ar::util::FatalError);
}

TEST(WooLee, SymbolicMatchesDirectOnRandomInputs)
{
    auto sys = m::buildWooLeeSystem();
    ar::symbolic::CompiledExpr perf_j(sys.resolve("PerfPerJ"));
    ar::symbolic::CompiledExpr perf_w(sys.resolve("PerfPerW"));
    ar::util::Rng rng(2026);
    for (int i = 0; i < 200; ++i) {
        const double f = rng.uniform(0.0, 1.0);
        const double k = rng.uniform(0.0, 1.0);
        const double n = std::floor(rng.uniform(1.0, 257.0));
        std::map<std::string, double> vals{
            {"f", f}, {"k", k}, {"N", n}};
        std::vector<double> args;
        for (const auto &name : perf_j.argNames())
            args.push_back(vals.at(name));
        EXPECT_NEAR(perf_j.eval(args),
                    Eval::perfPerJoule(f, k, n), 1e-9);
        args.clear();
        for (const auto &name : perf_w.argNames())
            args.push_back(vals.at(name));
        EXPECT_NEAR(perf_w.eval(args),
                    Eval::perfPerWatt(f, k, n), 1e-9);
    }
}

TEST(WooLee, UncertainVariablesAreFAndK)
{
    auto sys = m::buildWooLeeSystem();
    EXPECT_TRUE(sys.uncertain().count("f"));
    EXPECT_TRUE(sys.uncertain().count("k"));
    const auto inputs = sys.resolvedInputs("PerfPerJ");
    EXPECT_TRUE(inputs.count("N"));
    EXPECT_FALSE(inputs.count("T"));
    EXPECT_FALSE(inputs.count("E"));
}
