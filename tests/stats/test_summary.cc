/**
 * @file
 * Unit tests for batch and running statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/summary.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace s = ar::stats;

TEST(Summarize, MomentsOfKnownSample)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                 9.0};
    const auto sum = s::summarize(xs);
    EXPECT_EQ(sum.n, 8u);
    EXPECT_DOUBLE_EQ(sum.mean, 5.0);
    EXPECT_NEAR(sum.variance, 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(sum.min, 2.0);
    EXPECT_DOUBLE_EQ(sum.max, 9.0);
}

TEST(Summarize, EmptyIsFatal)
{
    const std::vector<double> xs;
    EXPECT_THROW(s::summarize(xs), ar::util::FatalError);
}

TEST(Summarize, SymmetricSampleHasZeroSkew)
{
    const std::vector<double> xs{-2.0, -1.0, 0.0, 1.0, 2.0};
    EXPECT_NEAR(s::summarize(xs).skewness, 0.0, 1e-12);
}

TEST(Summarize, RightSkewedSampleHasPositiveSkew)
{
    const std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 10.0};
    EXPECT_GT(s::summarize(xs).skewness, 0.5);
}

TEST(Summarize, GaussianSkewKurtNearZero)
{
    ar::util::Rng rng(13);
    std::vector<double> xs(50000);
    for (auto &x : xs)
        x = rng.gaussian();
    const auto sum = s::summarize(xs);
    EXPECT_NEAR(sum.skewness, 0.0, 0.05);
    EXPECT_NEAR(sum.kurtosis, 0.0, 0.1);
}

TEST(Summarize, SingleValue)
{
    const std::vector<double> xs{7.5};
    const auto sum = s::summarize(xs);
    EXPECT_DOUBLE_EQ(sum.mean, 7.5);
    EXPECT_DOUBLE_EQ(sum.stddev, 0.0);
}

TEST(RunningStats, MatchesBatchSummary)
{
    ar::util::Rng rng(17);
    std::vector<double> xs(1000);
    s::RunningStats rs;
    for (auto &x : xs) {
        x = rng.gaussian(3.0, 2.0);
        rs.add(x);
    }
    const auto sum = s::summarize(xs);
    EXPECT_EQ(rs.count(), sum.n);
    EXPECT_NEAR(rs.mean(), sum.mean, 1e-10);
    EXPECT_NEAR(rs.variance(), sum.variance, 1e-8);
    EXPECT_DOUBLE_EQ(rs.min(), sum.min);
    EXPECT_DOUBLE_EQ(rs.max(), sum.max);
}

TEST(RunningStats, EmptyAccessorsAreFatal)
{
    s::RunningStats rs;
    EXPECT_THROW(rs.min(), ar::util::FatalError);
    EXPECT_THROW(rs.max(), ar::util::FatalError);
    EXPECT_THROW(rs.variance(), ar::util::FatalError);
}

TEST(RunningStats, MergeEqualsSequential)
{
    ar::util::Rng rng(19);
    s::RunningStats whole, a, b;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(-1.0, 5.0);
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
}

TEST(RunningStats, MergeWithEmptyIsNoop)
{
    s::RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}
