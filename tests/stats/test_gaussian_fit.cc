/**
 * @file
 * Unit tests for Gaussian MLE fitting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stats/gaussian_fit.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace s = ar::stats;

TEST(FitGaussian, RecoversParameters)
{
    ar::util::Rng rng(31);
    std::vector<double> xs(20000);
    for (auto &x : xs)
        x = rng.gaussian(4.0, 1.5);
    const auto fit = s::fitGaussian(xs);
    EXPECT_NEAR(fit.mean, 4.0, 0.05);
    EXPECT_NEAR(fit.stddev, 1.5, 0.05);
}

TEST(FitGaussian, MleUsesPopulationDenominator)
{
    const std::vector<double> xs{0.0, 2.0};
    const auto fit = s::fitGaussian(xs);
    EXPECT_DOUBLE_EQ(fit.mean, 1.0);
    EXPECT_DOUBLE_EQ(fit.stddev, 1.0); // sqrt(((1)^2+(1)^2)/2)
}

TEST(FitGaussian, LogLikelihoodIsHigherForBetterFit)
{
    ar::util::Rng rng(32);
    std::vector<double> tight(500), wide(500);
    for (int i = 0; i < 500; ++i) {
        tight[i] = rng.gaussian(0.0, 0.1);
        wide[i] = rng.gaussian(0.0, 10.0);
    }
    EXPECT_GT(s::fitGaussian(tight).log_likelihood,
              s::fitGaussian(wide).log_likelihood);
}

TEST(FitGaussian, DegenerateSampleIsFatal)
{
    const std::vector<double> xs{3.0, 3.0, 3.0};
    EXPECT_THROW(s::fitGaussian(xs), ar::util::FatalError);
}

TEST(FitGaussian, SingleSampleIsFatal)
{
    const std::vector<double> xs{1.0};
    EXPECT_THROW(s::fitGaussian(xs), ar::util::FatalError);
}
