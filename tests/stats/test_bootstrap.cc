/**
 * @file
 * Unit tests for bootstrap resampling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "math/numeric.hh"
#include "stats/bootstrap.hh"
#include "util/logging.hh"

namespace s = ar::stats;

TEST(Resample, DrawsOnlySourceValues)
{
    ar::util::Rng rng(41);
    const std::vector<double> src{1.0, 2.0, 3.0};
    const auto out = s::resample(src, 500, rng);
    ASSERT_EQ(out.size(), 500u);
    for (double v : out) {
        EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
    }
}

TEST(Resample, EventuallyDrawsEveryValue)
{
    ar::util::Rng rng(42);
    const std::vector<double> src{1.0, 2.0, 3.0, 4.0};
    const auto out = s::resample(src, 200, rng);
    const std::set<double> seen(out.begin(), out.end());
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Resample, PreservesMeanApproximately)
{
    ar::util::Rng rng(43);
    std::vector<double> src(100);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<double>(i);
    const auto out = s::resample(src, 100000, rng);
    EXPECT_NEAR(ar::math::mean(out), ar::math::mean(src), 0.5);
}

TEST(Resample, EmptySourceIsFatal)
{
    ar::util::Rng rng(44);
    const std::vector<double> src;
    EXPECT_THROW(s::resample(src, 10, rng), ar::util::FatalError);
}

TEST(GaussianBootstrap, MatchesFitMoments)
{
    ar::util::Rng rng(45);
    s::GaussianFit fit;
    fit.mean = 2.0;
    fit.stddev = 0.5;
    const auto out = s::gaussianBootstrap(fit, 100000, rng);
    EXPECT_NEAR(ar::math::mean(out), 2.0, 0.01);
    EXPECT_NEAR(ar::math::stddev(out), 0.5, 0.01);
}

TEST(GaussianBootstrap, StddevScaleTunesSpread)
{
    ar::util::Rng rng(46);
    s::GaussianFit fit;
    fit.mean = 0.0;
    fit.stddev = 1.0;
    const auto half = s::gaussianBootstrap(fit, 50000, rng, 0.5);
    EXPECT_NEAR(ar::math::stddev(half), 0.5, 0.02);
}

TEST(GaussianBootstrap, ZeroScaleIsDegenerate)
{
    ar::util::Rng rng(47);
    s::GaussianFit fit;
    fit.mean = 3.0;
    fit.stddev = 1.0;
    const auto out = s::gaussianBootstrap(fit, 10, rng, 0.0);
    for (double v : out)
        EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(GaussianBootstrap, NegativeScaleIsFatal)
{
    ar::util::Rng rng(48);
    s::GaussianFit fit;
    EXPECT_THROW(s::gaussianBootstrap(fit, 10, rng, -1.0),
                 ar::util::FatalError);
}
