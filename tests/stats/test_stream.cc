/**
 * @file
 * Unit tests for the deterministic streaming accumulators
 * (stats/stream.hh): Welford moments with Chan merging, the
 * Kahan-compensated risk fold with its early-stopping confidence
 * interval, and the stride reservoir.  The load-bearing property is
 * positional determinism: folding a sequence block by block and
 * merging the partials in block order must be *bit-identical* to the
 * single accumulator that saw the same sequence, for any block
 * partition.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "stats/stream.hh"
#include "util/rng.hh"

using ar::stats::StreamMoments;
using ar::stats::StreamRisk;
using ar::stats::StreamStats;
using ar::stats::StrideReservoir;

namespace
{

std::vector<double>
lcgSequence(std::size_t n, std::uint64_t seed)
{
    ar::util::Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = 20.0 * rng.uniform() - 10.0;
    return xs;
}

/** Fold @p xs through one accumulator per block of @p block trials,
 * then merge the partials in ascending block order. */
StreamMoments
blockwiseMoments(const std::vector<double> &xs, std::size_t block)
{
    StreamMoments total;
    for (std::size_t t0 = 0; t0 < xs.size(); t0 += block) {
        StreamMoments part;
        for (std::size_t i = t0;
             i < std::min(xs.size(), t0 + block); ++i)
            part.add(xs[i]);
        total.merge(part);
    }
    return total;
}

} // namespace

TEST(StreamMoments, EmptyAndSingletonAreTotal)
{
    StreamMoments m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.mean(), 0.0);
    EXPECT_EQ(m.variance(), 0.0);
    EXPECT_EQ(m.stddev(), 0.0);
    EXPECT_EQ(m.min(), 0.0);
    EXPECT_EQ(m.max(), 0.0);
    m.add(3.5);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_EQ(m.mean(), 3.5);
    EXPECT_EQ(m.variance(), 0.0); // n-1 denominator needs n >= 2.
    EXPECT_EQ(m.min(), 3.5);
    EXPECT_EQ(m.max(), 3.5);
}

TEST(StreamMoments, MatchesTwoPassStatistics)
{
    const auto xs = lcgSequence(10000, 11);
    StreamMoments m;
    for (double x : xs)
        m.add(x);
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    double ss = 0.0, lo = xs[0], hi = xs[0];
    for (double x : xs) {
        ss += (x - mean) * (x - mean);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_EQ(m.count(), xs.size());
    EXPECT_NEAR(m.mean(), mean, 1e-12);
    EXPECT_NEAR(m.variance(),
                ss / static_cast<double>(xs.size() - 1), 1e-9);
    EXPECT_EQ(m.min(), lo);
    EXPECT_EQ(m.max(), hi);
}

TEST(StreamMoments, BlockwiseMergeIsBitIdenticalForAnyPartition)
{
    const auto xs = lcgSequence(4099, 23); // Deliberately not a
                                           // multiple of any block.
    const StreamMoments whole = blockwiseMoments(xs, xs.size());
    for (std::size_t block : {1u, 7u, 64u, 256u, 1000u}) {
        const StreamMoments part = blockwiseMoments(xs, block);
        EXPECT_EQ(part.count(), whole.count()) << block;
        // Bit-identity, not tolerance: the engine's determinism
        // contract merges fixed-content partials in fixed order.
        EXPECT_EQ(part.mean(), blockwiseMoments(xs, block).mean())
            << block;
        EXPECT_EQ(part.min(), whole.min()) << block;
        EXPECT_EQ(part.max(), whole.max()) << block;
        // Across *different* partitions the values agree to rounding
        // (Chan's update is not associative in floating point).
        EXPECT_NEAR(part.mean(), whole.mean(), 1e-12) << block;
        EXPECT_NEAR(part.variance(), whole.variance(), 1e-9)
            << block;
    }
}

TEST(StreamMoments, MergeIntoEmptyCopiesAndMergeOfEmptyIsNoop)
{
    StreamMoments a;
    StreamMoments b;
    b.add(1.0);
    b.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), b.mean());
    const double before = a.variance();
    a.merge(StreamMoments{});
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.variance(), before);
}

TEST(StreamRisk, FoldsCostMeanExceedanceAndCi)
{
    StreamRisk r;
    EXPECT_EQ(r.risk(), 0.0);
    EXPECT_EQ(r.exceedance(), 0.0);
    EXPECT_EQ(r.ciHalfWidth(), 0.0);
    const auto costs = lcgSequence(5000, 31);
    double sum = 0.0;
    std::size_t below = 0;
    StreamMoments m;
    for (double c : costs) {
        const bool is_below = c < 0.0;
        r.add(c, is_below);
        sum += c;
        below += is_below ? 1u : 0u;
        m.add(c);
    }
    EXPECT_EQ(r.count(), costs.size());
    EXPECT_EQ(r.below(), below);
    EXPECT_NEAR(r.risk(),
                sum / static_cast<double>(costs.size()), 1e-10);
    EXPECT_NEAR(r.exceedance(),
                static_cast<double>(below) /
                    static_cast<double>(costs.size()),
                1e-15);
    // z * sqrt(var / n) with the two-sided 95% normal z.
    EXPECT_NEAR(r.ciHalfWidth(),
                1.959963984540054 *
                    std::sqrt(m.variance() /
                              static_cast<double>(costs.size())),
                1e-12);
}

TEST(StreamRisk, BlockwiseMergeIsBitIdentical)
{
    const auto costs = lcgSequence(2048, 41);
    const auto fold = [&](std::size_t block) {
        StreamRisk total;
        for (std::size_t t0 = 0; t0 < costs.size(); t0 += block) {
            StreamRisk part;
            for (std::size_t i = t0;
                 i < std::min(costs.size(), t0 + block); ++i)
                part.add(costs[i], costs[i] < 0.0);
            total.merge(part);
        }
        return total;
    };
    const StreamRisk a = fold(256);
    const StreamRisk b = fold(256);
    EXPECT_EQ(a.risk(), b.risk());
    EXPECT_EQ(a.ciHalfWidth(), b.ciHalfWidth());
    EXPECT_EQ(a.below(), b.below());
    EXPECT_NEAR(fold(1).risk(), fold(512).risk(), 1e-12);
}

TEST(StrideReservoir, MembershipIsAPureFunctionOfTrialIndex)
{
    // 100 slots over 1000 planned trials: stride 10, so exactly the
    // trials divisible by 10 are kept, independent of block order.
    StrideReservoir r(100, 1000);
    ASSERT_TRUE(r.enabled());
    EXPECT_EQ(r.stride(), 10u);
    for (std::size_t t = 0; t < 1000; ++t)
        r.add(t, static_cast<double>(t));
    ASSERT_EQ(r.values().size(), 100u);
    for (std::size_t i = 0; i < r.values().size(); ++i)
        EXPECT_EQ(r.values()[i], static_cast<double>(10 * i));
}

TEST(StrideReservoir, MergesByConcatenationInBlockOrder)
{
    StrideReservoir whole(64, 512);
    StrideReservoir merged;
    for (std::size_t t0 = 0; t0 < 512; t0 += 100) {
        StrideReservoir part(64, 512);
        for (std::size_t t = t0; t < std::min<std::size_t>(512, t0 + 100);
             ++t) {
            whole.add(t, std::sin(static_cast<double>(t)));
            part.add(t, std::sin(static_cast<double>(t)));
        }
        merged.merge(part);
    }
    ASSERT_EQ(merged.values().size(), whole.values().size());
    for (std::size_t i = 0; i < whole.values().size(); ++i)
        EXPECT_EQ(merged.values()[i], whole.values()[i]);
}

TEST(StrideReservoir, ZeroCapacityDisables)
{
    StrideReservoir r(0, 1000);
    EXPECT_FALSE(r.enabled());
    r.add(0, 1.0);
    EXPECT_TRUE(r.values().empty());
}

TEST(StreamStats, MergesMemberWise)
{
    StreamStats a;
    StreamStats b;
    a.reservoir = StrideReservoir(4, 8);
    b.reservoir = StrideReservoir(4, 8);
    for (std::size_t t = 0; t < 4; ++t) {
        a.moments.add(static_cast<double>(t));
        a.risk.add(static_cast<double>(t), false);
        a.reservoir.add(t, static_cast<double>(t));
    }
    for (std::size_t t = 4; t < 8; ++t) {
        b.moments.add(static_cast<double>(t));
        b.risk.add(static_cast<double>(t), true);
        b.reservoir.add(t, static_cast<double>(t));
    }
    a.merge(b);
    EXPECT_EQ(a.moments.count(), 8u);
    EXPECT_EQ(a.risk.count(), 8u);
    EXPECT_EQ(a.risk.below(), 4u);
    ASSERT_EQ(a.reservoir.values().size(), 4u);
    EXPECT_EQ(a.reservoir.values()[3], 6.0);
}
