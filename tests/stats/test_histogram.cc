/**
 * @file
 * Unit tests for histograms.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stats/histogram.hh"
#include "util/logging.hh"

using ar::stats::Histogram;

TEST(Histogram, CountsLandInCorrectBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.5);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(7.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, UpperEdgeGoesToLastBin)
{
    Histogram h(0.0, 1.0, 4);
    h.add(1.0);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(0.0, 1.0, 5);
    for (int i = 0; i < 100; ++i)
        h.add(i / 100.0);
    double total = 0.0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        total += h.fraction(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, DensityIntegratesToOne)
{
    Histogram h(0.0, 2.0, 8);
    for (int i = 0; i < 64; ++i)
        h.add(2.0 * i / 64.0);
    double integral = 0.0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        integral += h.density(i) * (h.binHi(i) - h.binLo(i));
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, BinEdgesConsistent)
{
    Histogram h(1.0, 3.0, 4);
    EXPECT_DOUBLE_EQ(h.binLo(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binHi(3), 3.0);
    for (std::size_t i = 0; i + 1 < h.bins(); ++i)
        EXPECT_DOUBLE_EQ(h.binHi(i), h.binLo(i + 1));
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.25);
}

TEST(Histogram, FromDataSpansSample)
{
    const std::vector<double> xs{3.0, 7.0, 5.0};
    const auto h = Histogram::fromData(xs, 4);
    EXPECT_DOUBLE_EQ(h.lo(), 3.0);
    EXPECT_DOUBLE_EQ(h.hi(), 7.0);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FromDataDegenerateSample)
{
    const std::vector<double> xs{2.0, 2.0, 2.0};
    const auto h = Histogram::fromData(xs, 3);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_LT(h.lo(), 2.0);
    EXPECT_GT(h.hi(), 2.0);
}

TEST(Histogram, InvalidConstructionIsFatal)
{
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ar::util::FatalError);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), ar::util::FatalError);
    const std::vector<double> empty;
    EXPECT_THROW(Histogram::fromData(empty, 4), ar::util::FatalError);
}
