/**
 * @file
 * Unit tests for Gaussian kernel density estimation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "math/numeric.hh"
#include "stats/kde.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using ar::stats::GaussianKde;

namespace
{

std::vector<double>
gaussianSample(std::size_t n, std::uint64_t seed)
{
    ar::util::Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.gaussian();
    return xs;
}

} // namespace

TEST(Kde, PdfIsNonNegativeAndPeaksNearData)
{
    const std::vector<double> xs{0.0, 0.1, -0.1, 0.05};
    GaussianKde kde(xs);
    EXPECT_GT(kde.pdf(0.0), kde.pdf(3.0));
    EXPECT_GE(kde.pdf(10.0), 0.0);
}

TEST(Kde, CdfIsMonotoneFromZeroToOne)
{
    const auto xs = gaussianSample(300, 51);
    GaussianKde kde(xs);
    EXPECT_LT(kde.cdf(-10.0), 0.01);
    EXPECT_GT(kde.cdf(10.0), 0.99);
    double prev = 0.0;
    for (double x = -4.0; x <= 4.0; x += 0.25) {
        const double cur = kde.cdf(x);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

TEST(Kde, PdfIntegratesToOne)
{
    const auto xs = gaussianSample(100, 52);
    GaussianKde kde(xs);
    double integral = 0.0;
    const double dx = 0.01;
    for (double x = -8.0; x <= 8.0; x += dx)
        integral += kde.pdf(x) * dx;
    EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Kde, SamplesFollowSourceDistribution)
{
    const auto xs = gaussianSample(2000, 53);
    GaussianKde kde(xs);
    ar::util::Rng rng(54);
    const auto draws = kde.sample(20000, rng);
    EXPECT_NEAR(ar::math::mean(draws), 0.0, 0.05);
    // KDE inflates variance by h^2.
    EXPECT_NEAR(ar::math::stddev(draws),
                std::sqrt(1.0 + kde.bandwidth() * kde.bandwidth()),
                0.05);
}

TEST(Kde, SilvermanBandwidthShrinksWithN)
{
    const auto small = gaussianSample(50, 55);
    const auto large = gaussianSample(5000, 55);
    EXPECT_GT(GaussianKde::silvermanBandwidth(small),
              GaussianKde::silvermanBandwidth(large));
}

TEST(Kde, ExplicitBandwidthIsUsed)
{
    const std::vector<double> xs{0.0, 1.0};
    GaussianKde kde(xs, 0.37);
    EXPECT_DOUBLE_EQ(kde.bandwidth(), 0.37);
}

TEST(Kde, TooFewSamplesIsFatal)
{
    const std::vector<double> xs{1.0};
    EXPECT_THROW(GaussianKde{xs}, ar::util::FatalError);
}

TEST(Kde, BimodalDataKeepsBothModes)
{
    ar::util::Rng rng(56);
    std::vector<double> xs;
    for (int i = 0; i < 300; ++i) {
        xs.push_back(rng.gaussian(-5.0, 0.3));
        xs.push_back(rng.gaussian(5.0, 0.3));
    }
    GaussianKde kde(xs);
    EXPECT_GT(kde.pdf(-5.0), kde.pdf(0.0) * 5.0);
    EXPECT_GT(kde.pdf(5.0), kde.pdf(0.0) * 5.0);
}
