/**
 * @file
 * Unit and property tests for the Box-Cox transform.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/boxcox.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace s = ar::stats;

namespace
{

std::vector<double>
lognormalSample(std::size_t n, std::uint64_t seed, double mu = 0.0,
                double sigma = 0.5)
{
    ar::util::Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = std::exp(rng.gaussian(mu, sigma));
    return xs;
}

} // namespace

TEST(BoxCoxTransform, LambdaOneIsShiftByMinusOne)
{
    s::BoxCoxTransform t{1.0, 0.0};
    EXPECT_DOUBLE_EQ(t.apply(5.0), 4.0);
    EXPECT_DOUBLE_EQ(t.invert(4.0), 5.0);
}

TEST(BoxCoxTransform, LambdaZeroIsLog)
{
    s::BoxCoxTransform t{0.0, 0.0};
    EXPECT_DOUBLE_EQ(t.apply(std::exp(2.0)), 2.0);
    EXPECT_NEAR(t.invert(2.0), std::exp(2.0), 1e-12);
}

TEST(BoxCoxTransform, RoundTripAcrossLambdas)
{
    for (double lambda : {-2.0, -0.5, 0.0, 0.33, 1.0, 2.5}) {
        s::BoxCoxTransform t{lambda, 0.0};
        for (double x : {0.1, 1.0, 7.3, 100.0}) {
            EXPECT_NEAR(t.invert(t.apply(x)), x,
                        1e-9 * std::max(1.0, x))
                << "lambda=" << lambda << " x=" << x;
        }
    }
}

TEST(BoxCoxTransform, ShiftHandlesNonPositiveData)
{
    s::BoxCoxTransform t{0.5, 3.0};
    EXPECT_NO_THROW(t.apply(-2.0));
    EXPECT_NEAR(t.invert(t.apply(-2.0)), -2.0, 1e-9);
}

TEST(BoxCoxTransform, NonPositiveAfterShiftIsFatal)
{
    s::BoxCoxTransform t{1.0, 0.0};
    EXPECT_THROW(t.apply(0.0), ar::util::FatalError);
    EXPECT_THROW(t.apply(-1.0), ar::util::FatalError);
}

TEST(BoxCoxTransform, InversionClampsOutOfImageValues)
{
    // lambda = 2: image is y >= -1/2.  Values below map to the edge.
    s::BoxCoxTransform t{2.0, 0.0};
    EXPECT_DOUBLE_EQ(t.invert(-10.0), 0.0);
}

TEST(BoxCoxTransform, MonotoneIncreasing)
{
    for (double lambda : {-1.0, 0.0, 0.5, 2.0}) {
        s::BoxCoxTransform t{lambda, 0.0};
        double prev = t.apply(0.01);
        for (double x = 0.1; x < 20.0; x += 0.5) {
            const double cur = t.apply(x);
            EXPECT_GT(cur, prev) << "lambda=" << lambda;
            prev = cur;
        }
    }
}

TEST(FitBoxCox, RecoversLogForLognormalData)
{
    const auto xs = lognormalSample(400, 21, 1.0, 0.8);
    const auto fit = s::fitBoxCox(xs);
    // True normalizing lambda is 0 (log transform).
    EXPECT_NEAR(fit.transform.lambda, 0.0, 0.25);
    EXPECT_TRUE(fit.passed);
}

TEST(FitBoxCox, IdentityForGaussianData)
{
    ar::util::Rng rng(22);
    std::vector<double> xs(400);
    for (auto &x : xs)
        x = rng.gaussian(50.0, 2.0);
    const auto fit = s::fitBoxCox(xs);
    EXPECT_TRUE(fit.passed);
    // Gaussian data far from zero: any lambda fits well, and the
    // transformed data must still be normal.
    EXPECT_GE(fit.confidence, 0.95);
}

TEST(FitBoxCox, SquareRootLawData)
{
    // x = z^2 with z gaussian-positive: lambda ~ 0.5 normalizes.
    ar::util::Rng rng(23);
    std::vector<double> xs;
    for (int i = 0; i < 400; ++i) {
        const double z = rng.gaussian(10.0, 1.0);
        xs.push_back(z * z);
    }
    const auto fit = s::fitBoxCox(xs);
    EXPECT_TRUE(fit.passed);
    EXPECT_NEAR(fit.transform.lambda, 0.5, 0.5);
}

TEST(FitBoxCox, BimodalDataFailsGate)
{
    ar::util::Rng rng(24);
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(rng.gaussian(1.0, 0.05));
        xs.push_back(rng.gaussian(10.0, 0.05));
    }
    const auto fit = s::fitBoxCox(xs);
    EXPECT_FALSE(fit.passed);
}

TEST(FitBoxCox, TooFewSamplesIsFatal)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_THROW(s::fitBoxCox(xs), ar::util::FatalError);
}

TEST(BoxCoxLogLikelihood, PeaksNearTrueLambda)
{
    const auto xs = lognormalSample(1000, 25, 0.0, 0.6);
    const double ll_zero = s::boxCoxLogLikelihood(xs, 0.0);
    const double ll_two = s::boxCoxLogLikelihood(xs, 2.0);
    const double ll_neg = s::boxCoxLogLikelihood(xs, -2.0);
    EXPECT_GT(ll_zero, ll_two);
    EXPECT_GT(ll_zero, ll_neg);
}
