/**
 * @file
 * Unit tests for normality diagnostics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/normality.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace s = ar::stats;

namespace
{

std::vector<double>
gaussianSample(std::size_t n, std::uint64_t seed, double mu = 0.0,
               double sd = 1.0)
{
    ar::util::Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.gaussian(mu, sd);
    return xs;
}

std::vector<double>
exponentialSample(std::size_t n, std::uint64_t seed)
{
    ar::util::Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = -std::log(1.0 - rng.uniform());
    return xs;
}

} // namespace

TEST(AndersonDarling, AcceptsGaussianData)
{
    const auto xs = gaussianSample(500, 11);
    const auto res = s::andersonDarling(xs);
    EXPECT_LT(res.a2_star, 1.0);
    EXPECT_GT(res.p_value, 0.05);
}

TEST(AndersonDarling, RejectsExponentialData)
{
    const auto xs = exponentialSample(500, 12);
    const auto res = s::andersonDarling(xs);
    EXPECT_LT(res.p_value, 0.01);
}

TEST(AndersonDarling, RejectsBimodalData)
{
    ar::util::Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 250; ++i) {
        xs.push_back(rng.gaussian(-4.0, 0.5));
        xs.push_back(rng.gaussian(4.0, 0.5));
    }
    EXPECT_LT(s::andersonDarling(xs).p_value, 0.01);
}

TEST(AndersonDarling, DegenerateSampleHasZeroPValue)
{
    const std::vector<double> xs{1.0, 1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(s::andersonDarling(xs).p_value, 0.0);
}

TEST(AndersonDarling, TooFewSamplesIsFatal)
{
    const std::vector<double> xs{1.0, 2.0};
    EXPECT_THROW(s::andersonDarling(xs), ar::util::FatalError);
}

TEST(Ppcc, NearOneForGaussian)
{
    EXPECT_GT(s::ppcc(gaussianSample(200, 14)), 0.99);
}

TEST(Ppcc, LowerForExponential)
{
    const double r_exp = s::ppcc(exponentialSample(200, 15));
    const double r_gauss = s::ppcc(gaussianSample(200, 15));
    EXPECT_LT(r_exp, r_gauss);
    EXPECT_LT(r_exp, 0.97);
}

TEST(Ppcc, ScaleAndShiftInvariant)
{
    const auto xs = gaussianSample(100, 16);
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(5.0 * x - 3.0);
    EXPECT_NEAR(s::ppcc(xs), s::ppcc(ys), 1e-12);
}

TEST(NormalityConfidence, HighForGaussian)
{
    EXPECT_GE(s::normalityConfidence(gaussianSample(300, 17)), 0.95);
}

TEST(NormalityConfidence, LowForExponential)
{
    EXPECT_LT(s::normalityConfidence(exponentialSample(300, 18)),
              0.5);
}

TEST(NormalityConfidence, TinySampleReturnsZero)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(s::normalityConfidence(xs), 0.0);
}

class NormalityAcrossSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(NormalityAcrossSizes, GaussianUsuallyPasses)
{
    // Majority vote over independent samples: a correct test accepts
    // most truly Gaussian samples at any size.
    const int n = GetParam();
    int passed = 0;
    for (int rep = 0; rep < 10; ++rep) {
        const auto xs = gaussianSample(n, 100 + rep * 7 + n);
        passed += s::normalityConfidence(xs) >= 0.95;
    }
    EXPECT_GE(passed, 6) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NormalityAcrossSizes,
                         ::testing::Values(20, 50, 100, 500));
