/**
 * @file
 * Unit tests for quantile estimation, the ECDF, and the KS statistic.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "stats/quantiles.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace s = ar::stats;

TEST(Quantile, MedianOfOddSample)
{
    const std::vector<double> xs{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(s::median(xs), 2.0);
}

TEST(Quantile, MedianOfEvenSampleInterpolates)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(s::median(xs), 2.5);
}

TEST(Quantile, ExtremesAreMinMax)
{
    const std::vector<double> xs{5.0, -1.0, 3.0};
    EXPECT_DOUBLE_EQ(s::quantile(xs, 0.0), -1.0);
    EXPECT_DOUBLE_EQ(s::quantile(xs, 1.0), 5.0);
}

TEST(Quantile, Type7Interpolation)
{
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(s::quantile(xs, 0.25), 20.0);
    EXPECT_DOUBLE_EQ(s::quantile(xs, 0.125), 15.0);
}

TEST(Quantile, OutOfRangeIsFatal)
{
    const std::vector<double> xs{1.0};
    EXPECT_THROW(s::quantile(xs, 1.5), ar::util::FatalError);
    EXPECT_THROW(s::quantile(xs, -0.1), ar::util::FatalError);
}

TEST(Quantile, OutOfRangeRaisesDiagnosticError)
{
    // Recoverable, message-bearing error -- not a bare FatalError.
    const std::vector<double> xs{1.0, 2.0};
    EXPECT_THROW(s::quantile(xs, 1.0000001),
                 ar::util::DiagnosticError);
    EXPECT_THROW(s::quantile(xs, -1e-9), ar::util::DiagnosticError);
    EXPECT_THROW(s::quantileSorted(xs, 2.0),
                 ar::util::DiagnosticError);
}

TEST(Quantile, NanQIsRejectedNotUndefined)
{
    // A NaN q used to slip past the `q < 0 || q > 1` guard and reach
    // an out-of-range double -> size_t cast (undefined behavior).
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(s::quantile(xs, nan), ar::util::DiagnosticError);
    EXPECT_THROW(s::quantileSorted(xs, nan),
                 ar::util::DiagnosticError);
}

TEST(Quantile, EmptyIsFatal)
{
    const std::vector<double> xs;
    EXPECT_THROW(s::quantile(xs, 0.5), ar::util::FatalError);
    EXPECT_THROW(s::quantile(xs, 0.5), ar::util::DiagnosticError);
    EXPECT_THROW(s::quantileSorted(xs, 0.5),
                 ar::util::DiagnosticError);
}

TEST(Quantile, SingleElementSpanIsThatElementForAnyQ)
{
    const std::vector<double> xs{42.0};
    for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        EXPECT_DOUBLE_EQ(s::quantile(xs, q), 42.0) << "q=" << q;
        EXPECT_DOUBLE_EQ(s::quantileSorted(xs, q), 42.0)
            << "q=" << q;
    }
}

TEST(Quantile, SortedExtremesAreEndpoints)
{
    const std::vector<double> xs{-3.0, 0.0, 7.0, 11.0};
    EXPECT_DOUBLE_EQ(s::quantileSorted(xs, 0.0), -3.0);
    EXPECT_DOUBLE_EQ(s::quantileSorted(xs, 1.0), 11.0);
}

TEST(Ecdf, StepValues)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    s::Ecdf ecdf(xs);
    EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
    EXPECT_NEAR(ecdf(1.0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(ecdf(2.5), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(ecdf(3.0), 1.0);
    EXPECT_DOUBLE_EQ(ecdf(99.0), 1.0);
}

TEST(Ecdf, QuantileAgreesWithFreeFunction)
{
    const std::vector<double> xs{4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
    s::Ecdf ecdf(xs);
    for (double q : {0.0, 0.3, 0.5, 0.8, 1.0})
        EXPECT_DOUBLE_EQ(ecdf.quantile(q), s::quantile(xs, q));
}

TEST(KsStatistic, IdenticalSamplesGiveZero)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(s::ksStatistic(xs, xs), 0.0);
}

TEST(KsStatistic, DisjointSamplesGiveOne)
{
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{10.0, 20.0};
    EXPECT_DOUBLE_EQ(s::ksStatistic(a, b), 1.0);
}

TEST(KsStatistic, SymmetricInArguments)
{
    ar::util::Rng rng(3);
    std::vector<double> a(100), b(150);
    for (auto &x : a)
        x = rng.gaussian();
    for (auto &x : b)
        x = rng.gaussian(0.5, 1.0);
    EXPECT_DOUBLE_EQ(s::ksStatistic(a, b), s::ksStatistic(b, a));
}

TEST(KsStatistic, SmallForSameDistribution)
{
    ar::util::Rng rng(5);
    std::vector<double> a(5000), b(5000);
    for (auto &x : a)
        x = rng.gaussian();
    for (auto &x : b)
        x = rng.gaussian();
    EXPECT_LT(s::ksStatistic(a, b), 0.05);
}
