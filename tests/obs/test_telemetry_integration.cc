/**
 * @file
 * Cross-layer telemetry tests: enabling metrics and tracing must not
 * perturb any computed result (bit-identical samples for 1, 2, and 8
 * threads), and the instrumentation hooks must report accurate
 * counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dist/normal.hh"
#include "mc/propagator.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "symbolic/parser.hh"
#include "util/rng.hh"

namespace obs = ar::obs;
namespace mc = ar::mc;

namespace
{

mc::InputBindings
bindings()
{
    mc::InputBindings in;
    in.uncertain["x"] = std::make_shared<ar::dist::Normal>(2.0, 0.5);
    in.uncertain["y"] =
        std::make_shared<ar::dist::Normal>(10.0, 1.0);
    in.fixed["s"] = 16.0;
    return in;
}

std::vector<double>
propagate(std::size_t threads, std::size_t trials = 4096)
{
    const ar::symbolic::CompiledExpr fn(
        ar::symbolic::parseExpr("1 / (1 / x + y / (x * s))"));
    const mc::Propagator prop(
        {trials, "latin-hypercube", threads});
    ar::util::Rng rng(7);
    return prop.run(fn, bindings(), rng);
}

} // namespace

TEST(TelemetryIntegration, ResultsBitIdenticalWithTelemetryOnAndOff)
{
    for (std::size_t threads : {1u, 2u, 8u}) {
        obs::setMetricsEnabled(false);
        obs::setTracingEnabled(false);
        const auto off = propagate(threads);

        obs::setMetricsEnabled(true);
        obs::setTracingEnabled(true);
        const auto on = propagate(threads);

        obs::setMetricsEnabled(false);
        obs::setTracingEnabled(false);
        obs::MetricsRegistry::global().reset();
        obs::clearTrace();

        ASSERT_EQ(off.size(), on.size()) << threads << " threads";
        for (std::size_t t = 0; t < off.size(); ++t) {
            ASSERT_EQ(off[t], on[t])
                << "trial " << t << " at " << threads << " threads";
        }
    }
}

TEST(TelemetryIntegration, PropagatorCountsTrialsExactly)
{
    obs::MetricsRegistry::global().reset();
    obs::setMetricsEnabled(true);
    propagate(2, 1000);
    propagate(1, 500);
    obs::setMetricsEnabled(false);
    const auto snap = obs::MetricsRegistry::global().scrape();
    obs::MetricsRegistry::global().reset();
    EXPECT_EQ(snap.counters.at("mc.propagations"), 2u);
    EXPECT_EQ(snap.counters.at("mc.trials"), 1500u);
    EXPECT_EQ(snap.counters.at("mc.faulty_trials"), 0u);
    // Per-phase time was accumulated while enabled.
    EXPECT_GT(snap.counters.at("mc.sample_ns"), 0u);
    EXPECT_GT(snap.counters.at("mc.eval_ns"), 0u);
}

TEST(TelemetryIntegration, PropagatorEmitsTraceSpans)
{
    obs::clearTrace();
    obs::setTracingEnabled(true);
    propagate(1, 512);
    obs::setTracingEnabled(false);
    const auto json = obs::traceJson();
    obs::clearTrace();
    EXPECT_NE(json.find("\"mc.run_many\""), std::string::npos);
    EXPECT_NE(json.find("\"mc.sample\""), std::string::npos);
    EXPECT_NE(json.find("\"mc.eval\""), std::string::npos);
    EXPECT_NE(json.find("\"mc.faults\""), std::string::npos);
}

TEST(TelemetryIntegration, DisabledRunRecordsNoMetrics)
{
    obs::MetricsRegistry::global().reset();
    obs::setMetricsEnabled(false);
    propagate(2, 1000);
    const auto snap = obs::MetricsRegistry::global().scrape();
    // The registry may or may not know the mc.* names yet (depends
    // on whether an enabled run happened first); any value present
    // must be zero.
    const auto it = snap.counters.find("mc.trials");
    if (it != snap.counters.end()) {
        EXPECT_EQ(it->second, 0u);
    }
}
