/**
 * @file
 * Unit tests for the ar::obs metrics registry: handle semantics,
 * shard merging, enable gating, and JSON rendering.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace obs = ar::obs;

namespace
{

/** Every test starts from zeroed metrics with recording on, and
 * leaves the process-wide flag off for the other suites. */
class Metrics : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::MetricsRegistry::global().reset();
        obs::setMetricsEnabled(true);
    }

    void
    TearDown() override
    {
        obs::setMetricsEnabled(false);
        obs::MetricsRegistry::global().reset();
    }
};

} // namespace

TEST_F(Metrics, CounterAccumulates)
{
    auto c = obs::MetricsRegistry::global().counter("test.counter");
    c.add();
    c.add(41);
    const auto snap = obs::MetricsRegistry::global().scrape();
    EXPECT_EQ(snap.counters.at("test.counter"), 42u);
}

TEST_F(Metrics, DisabledCounterIsNoop)
{
    auto c = obs::MetricsRegistry::global().counter("test.gated");
    obs::setMetricsEnabled(false);
    c.add(7);
    EXPECT_EQ(obs::MetricsRegistry::global().scrape().counters.at(
                  "test.gated"),
              0u);
    obs::setMetricsEnabled(true);
    c.add(7);
    EXPECT_EQ(obs::MetricsRegistry::global().scrape().counters.at(
                  "test.gated"),
              7u);
}

TEST_F(Metrics, RegistrationIsIdempotent)
{
    auto a = obs::MetricsRegistry::global().counter("test.same");
    auto b = obs::MetricsRegistry::global().counter("test.same");
    a.add(1);
    b.add(2);
    EXPECT_EQ(obs::MetricsRegistry::global().scrape().counters.at(
                  "test.same"),
              3u);
}

TEST_F(Metrics, KindMismatchIsFatal)
{
    obs::MetricsRegistry::global().counter("test.kind");
    EXPECT_THROW(obs::MetricsRegistry::global().gauge("test.kind"),
                 ar::util::FatalError);
    EXPECT_THROW(obs::MetricsRegistry::global().histogram("test.kind",
                                                          {1.0}),
                 ar::util::FatalError);
}

TEST_F(Metrics, EmptyNameIsFatal)
{
    EXPECT_THROW(obs::MetricsRegistry::global().counter(""),
                 ar::util::FatalError);
}

TEST_F(Metrics, GaugeSetAndToMax)
{
    auto g = obs::MetricsRegistry::global().gauge("test.gauge");
    g.set(4.0);
    EXPECT_DOUBLE_EQ(
        obs::MetricsRegistry::global().scrape().gauges.at(
            "test.gauge"),
        4.0);
    g.toMax(2.0); // lower: no change
    EXPECT_DOUBLE_EQ(
        obs::MetricsRegistry::global().scrape().gauges.at(
            "test.gauge"),
        4.0);
    g.toMax(9.5);
    EXPECT_DOUBLE_EQ(
        obs::MetricsRegistry::global().scrape().gauges.at(
            "test.gauge"),
        9.5);
}

TEST_F(Metrics, HistogramBucketsCountAndSum)
{
    auto h = obs::MetricsRegistry::global().histogram(
        "test.hist", {1.0, 10.0, 100.0});
    for (double v : {0.5, 1.0, 5.0, 50.0, 1000.0})
        h.observe(v);
    const auto snap = obs::MetricsRegistry::global().scrape();
    const auto &data = snap.histograms.at("test.hist");
    ASSERT_EQ(data.bounds.size(), 3u);
    ASSERT_EQ(data.counts.size(), 4u);
    EXPECT_EQ(data.counts[0], 2u); // 0.5, 1.0 (bucket is <= bound)
    EXPECT_EQ(data.counts[1], 1u); // 5.0
    EXPECT_EQ(data.counts[2], 1u); // 50.0
    EXPECT_EQ(data.counts[3], 1u); // 1000.0 overflow
    EXPECT_EQ(data.count, 5u);
    EXPECT_DOUBLE_EQ(data.sum, 0.5 + 1.0 + 5.0 + 50.0 + 1000.0);
}

TEST_F(Metrics, HistogramBadBoundsAreFatal)
{
    auto &reg = obs::MetricsRegistry::global();
    EXPECT_THROW(reg.histogram("test.hb1", {}),
                 ar::util::FatalError);
    EXPECT_THROW(reg.histogram("test.hb2", {2.0, 1.0}),
                 ar::util::FatalError);
    reg.histogram("test.hb3", {1.0, 2.0});
    EXPECT_THROW(reg.histogram("test.hb3", {1.0, 3.0}),
                 ar::util::FatalError);
}

TEST_F(Metrics, ConcurrentAddsSumExactly)
{
    auto c = obs::MetricsRegistry::global().counter("test.mt");
    constexpr std::size_t kN = 10000;
    ar::util::ThreadPool pool(4);
    pool.parallelFor(kN, [&](std::size_t) { c.add(); });
    EXPECT_EQ(obs::MetricsRegistry::global().scrape().counters.at(
                  "test.mt"),
              kN);
}

TEST_F(Metrics, ScrapeIsDeterministicOnQuiescedData)
{
    auto c = obs::MetricsRegistry::global().counter("test.det");
    auto h = obs::MetricsRegistry::global().histogram("test.det_h",
                                                      {1.0, 2.0});
    ar::util::ThreadPool pool(4);
    pool.parallelFor(1000, [&](std::size_t i) {
        c.add(i % 3);
        h.observe(static_cast<double>(i % 4));
    });
    const std::string a =
        obs::MetricsRegistry::global().scrapeJson();
    const std::string b =
        obs::MetricsRegistry::global().scrapeJson();
    EXPECT_EQ(a, b);
}

TEST_F(Metrics, ScopedPhaseAccumulatesElapsedTime)
{
    auto ns = obs::MetricsRegistry::global().counter("test.phase_ns");
    {
        obs::ScopedPhase phase("test.phase", ns);
        volatile double sink = 0.0;
        for (int i = 0; i < 10000; ++i)
            sink = sink + 1.0;
    }
    EXPECT_GT(obs::MetricsRegistry::global().scrape().counters.at(
                  "test.phase_ns"),
              0u);
}

TEST_F(Metrics, ScopedPhaseDisabledRecordsNothing)
{
    auto ns = obs::MetricsRegistry::global().counter("test.off_ns");
    obs::setMetricsEnabled(false);
    {
        obs::ScopedPhase phase("test.off", ns);
    }
    obs::setMetricsEnabled(true);
    EXPECT_EQ(obs::MetricsRegistry::global().scrape().counters.at(
                  "test.off_ns"),
              0u);
}

TEST_F(Metrics, ResetZeroesEverything)
{
    auto c = obs::MetricsRegistry::global().counter("test.rst");
    auto g = obs::MetricsRegistry::global().gauge("test.rst_g");
    c.add(5);
    g.set(5.0);
    obs::MetricsRegistry::global().reset();
    const auto snap = obs::MetricsRegistry::global().scrape();
    EXPECT_EQ(snap.counters.at("test.rst"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("test.rst_g"), 0.0);
}

TEST_F(Metrics, JsonHasStableShape)
{
    obs::MetricsRegistry::global().counter("test.json").add(3);
    const std::string json =
        obs::MetricsRegistry::global().scrapeJson();
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json\": 3"), std::string::npos);
}
