/**
 * @file
 * Unit tests for ar::obs tracing: span recording, enable gating, and
 * Chrome trace_event JSON export.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/thread_pool.hh"

namespace obs = ar::obs;

namespace
{

class Trace : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setTracingEnabled(true);
        obs::clearTrace();
    }

    void
    TearDown() override
    {
        obs::setTracingEnabled(false);
        obs::clearTrace();
    }
};

} // namespace

TEST_F(Trace, SpanIsRecorded)
{
    {
        obs::TraceSpan span("test.span");
    }
    const std::string json = obs::traceJson();
    EXPECT_NE(json.find("\"name\": \"test.span\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(Trace, DisabledSpanRecordsNothing)
{
    obs::setTracingEnabled(false);
    {
        obs::TraceSpan span("test.gated");
    }
    obs::setTracingEnabled(true);
    EXPECT_EQ(obs::traceJson().find("test.gated"),
              std::string::npos);
}

TEST_F(Trace, ClearDropsRecordedSpans)
{
    {
        obs::TraceSpan span("test.cleared");
    }
    obs::clearTrace();
    EXPECT_EQ(obs::traceJson().find("test.cleared"),
              std::string::npos);
}

TEST_F(Trace, JsonHasTraceEventEnvelope)
{
    {
        obs::TraceSpan span("test.envelope");
    }
    const std::string json = obs::traceJson();
    EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);
    EXPECT_NE(json.find("\"dur\": "), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\": 0"), std::string::npos);
}

TEST_F(Trace, WorkerThreadsGetDistinctTids)
{
    ar::util::ThreadPool pool(4);
    pool.parallelFor(64, [&](std::size_t) {
        obs::TraceSpan span("test.worker");
    });
    const std::string json = obs::traceJson();
    // At least the calling thread recorded spans; every event names
    // the span and carries a tid field.
    EXPECT_NE(json.find("\"test.worker\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\": "), std::string::npos);
    EXPECT_EQ(obs::traceDroppedEvents(), 0u);
}

TEST_F(Trace, ScopedPhaseEmitsSpanWhenTracing)
{
    auto ns = obs::MetricsRegistry::global().counter("test.tp_ns");
    {
        obs::ScopedPhase phase("test.traced_phase", ns);
    }
    EXPECT_NE(obs::traceJson().find("test.traced_phase"),
              std::string::npos);
}
