/**
 * @file
 * Risk-aware CMP core selection -- the paper's Section 4 study in
 * miniature.  Explores every configuration of a 256-unit chip under
 * uncertainty, then reports the conventional, performance-optimal,
 * and risk-optimal designs plus the Pareto frontier between them.
 *
 * Try:
 *   ./build/examples/core_selection --app LPHC --sigma-app 0.2 \
 *       --sigma-arch 0.2
 */

#include <cstdio>

#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "explore/optimality.hh"
#include "explore/pareto.hh"
#include "model/app.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "risk/risk_function.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("app", "LPHC", "application class "
                                "(HPLC|HPHC|LPLC|LPHC)");
    opts.declare("sigma-app", "0.2", "application uncertainty level");
    opts.declare("sigma-arch", "0.2",
                 "architecture uncertainty level");
    opts.declare("trials", "3000", "Monte-Carlo trials per design");
    if (!opts.parse(argc, argv))
        return 0;

    const auto app = ar::model::appByName(opts.getString("app"));
    const double s_app = opts.getDouble("sigma-app");
    const double s_arch = opts.getDouble("sigma-arch");

    // Enumerate the full 256-unit design space.
    const auto designs = ar::explore::enumerateDesigns();
    std::printf("design space: %zu configurations\n", designs.size());

    // The conventional choice: best nominal speedup, no uncertainty.
    std::size_t conv = 0;
    double conv_speedup = -1.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const double s = ar::model::HillMartyEvaluator::nominalSpeedup(
            designs[i], app.f, app.c);
        if (s > conv_speedup) {
            conv_speedup = s;
            conv = i;
        }
    }
    std::printf("conventional design: %s (nominal speedup %.2f)\n\n",
                designs[conv].describe().c_str(), conv_speedup);

    // Risk-aware sweep under the ground-truth uncertainty models.
    ar::explore::SweepConfig cfg;
    cfg.trials = static_cast<std::size_t>(opts.getInt("trials"));
    ar::explore::DesignSpaceEvaluator eval(
        designs, app,
        ar::model::UncertaintySpec::appArch(s_app, s_arch), cfg);
    ar::risk::QuadraticRisk risk_fn;
    const auto outcomes = eval.evaluateAll(risk_fn, conv_speedup);

    const auto cls = ar::explore::classifyDesigns(outcomes, conv);
    std::printf("under (sigma_app=%.2f, sigma_arch=%.2f) the "
                "conventional design is: %s\n\n",
                s_app, s_arch,
                ar::explore::toString(cls.cls).c_str());
    std::printf("  conventional : %-34s E=%.4f risk=%.5f\n",
                designs[conv].describe().c_str(), cls.conv_expected,
                cls.conv_risk);
    std::printf("  perf-optimal : %-34s E=%.4f risk=%.5f\n",
                designs[cls.perf_opt].describe().c_str(),
                outcomes[cls.perf_opt].expected,
                outcomes[cls.perf_opt].risk);
    std::printf("  risk-optimal : %-34s E=%.4f risk=%.5f\n\n",
                designs[cls.risk_opt].describe().c_str(),
                outcomes[cls.risk_opt].expected,
                outcomes[cls.risk_opt].risk);

    std::printf("Pareto frontier (performance vs risk):\n");
    for (std::size_t idx : ar::explore::paretoFront(outcomes)) {
        std::printf("  %-40s E=%.4f risk=%.5f\n",
                    designs[idx].describe().c_str(),
                    outcomes[idx].expected, outcomes[idx].risk);
    }
    return 0;
}
