/**
 * @file
 * From architectural risk to dollars (Section 4.4 of the paper):
 * price a design's performance distribution with the Table-5 bins
 * and compare the risk-oblivious and risk-aware choices in $/chip.
 */

#include <cstdio>

#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "explore/optimality.hh"
#include "model/app.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "risk/risk_function.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("app", "LPHC", "application class");
    opts.declare("sigma", "0.2", "uncertainty level (both axes)");
    opts.declare("trials", "4000", "Monte-Carlo trials per design");
    if (!opts.parse(argc, argv))
        return 0;
    const auto app = ar::model::appByName(opts.getString("app"));
    const double sigma = opts.getDouble("sigma");

    const auto money = ar::risk::MonetaryRisk::table5();
    std::printf("Table 5 price bins: <0.6 -> $100, [0.6,0.8) -> "
                "$200, [0.8,0.9) -> $300,\n                    "
                "[0.9,1.0) -> $600, >=1.0 -> $1000\n\n");

    const auto designs = ar::explore::enumerateDesigns();
    std::size_t conv = 0;
    double ref = -1.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const double s = ar::model::HillMartyEvaluator::nominalSpeedup(
            designs[i], app.f, app.c);
        if (s > ref) {
            ref = s;
            conv = i;
        }
    }

    ar::explore::SweepConfig cfg;
    cfg.trials = static_cast<std::size_t>(opts.getInt("trials"));
    ar::explore::DesignSpaceEvaluator eval(
        designs, app, ar::model::UncertaintySpec::appArch(sigma, sigma),
        cfg);
    const auto outcomes = eval.evaluateAll(money, ref);
    const auto risk_opt = ar::explore::argminRisk(outcomes);

    std::printf("%s at sigma = %.2f:\n\n", app.name.c_str(), sigma);
    std::printf("  risk-oblivious: %s\n",
                designs[conv].describe().c_str());
    std::printf("    avg perf %.3f, expected loss $%.2f per chip\n",
                outcomes[conv].expected, outcomes[conv].risk);
    std::printf("  risk-aware:     %s\n",
                designs[risk_opt].describe().c_str());
    std::printf("    avg perf %.3f, expected loss $%.2f per chip\n\n",
                outcomes[risk_opt].expected, outcomes[risk_opt].risk);
    std::printf("  => $%.2f saved per chip by choosing with the "
                "performance distribution\n     in hand instead of "
                "the point estimate.\n",
                outcomes[conv].risk - outcomes[risk_opt].risk);
    return 0;
}
