/**
 * @file
 * "Where is my risk coming from?" -- Sobol variance decomposition of
 * an uncertain design's performance, so engineering effort can go to
 * the input that actually matters.
 *
 * Try:
 *   ./build/examples/sensitivity --config "1x128 + 16x8" --sigma 0.3
 */

#include <cstdio>

#include "core/framework.hh"
#include "mc/sensitivity.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("config", "1x128 + 16x8",
                 "core configuration, e.g. \"1x128 + 16x8\"");
    opts.declare("app", "LPHC", "application class");
    opts.declare("sigma", "0.3", "uncertainty level (all types)");
    opts.declare("trials", "4096", "Sobol base sample size");
    if (!opts.parse(argc, argv))
        return 0;

    const auto config =
        ar::model::CoreConfig::parse(opts.getString("config"));
    const auto app = ar::model::appByName(opts.getString("app"));
    const double sigma = opts.getDouble("sigma");

    ar::core::Framework fw;
    fw.setSystem(ar::model::buildHillMartySystem(config.numTypes()));
    const auto in = ar::model::groundTruthBindings(
        config, app, ar::model::UncertaintySpec::all(sigma));

    ar::util::Rng rng(1);
    const auto res = ar::mc::sobolIndices(
        fw.compiled("Speedup"), in,
        {static_cast<std::size_t>(opts.getInt("trials"))}, rng);

    std::printf("design %s, %s, sigma = %.2f\n",
                config.describe().c_str(), app.name.c_str(), sigma);
    std::printf("E[Speedup] = %.3f, Var = %.4f\n\n", res.output_mean,
                res.output_variance);
    std::printf("%-12s %14s %12s\n", "input", "first-order", "total");
    for (const auto &idx : res.indices) {
        std::printf("%-12s %14.3f %12.3f\n", idx.input.c_str(),
                    idx.first_order, idx.total);
    }
    std::printf("\nReading: a large total index marks the input whose "
                "uncertainty most\ninflates performance variance -- "
                "the first place to spend measurement\nor engineering "
                "effort.  total > first-order means the input acts\n"
                "through interactions (the paper's Figure 9 effect).\n");
    return 0;
}
