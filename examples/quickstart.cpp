/**
 * @file
 * Quickstart: the five-minute tour of archrisk++.
 *
 * 1. Describe an architecture model as plain equation strings.
 * 2. Mark which inputs are uncertain and attach distributions.
 * 3. Propagate with Latin-hypercube Monte-Carlo.
 * 4. Read off the performance distribution and architectural risk.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/framework.hh"
#include "dist/normal.hh"
#include "report/ascii_plot.hh"
#include "risk/risk_function.hh"
#include "stats/histogram.hh"

int
main()
{
    // --- 1. The model: Amdahl's Law with a parallelizable fraction
    //        f and a parallel speedup s.
    ar::symbolic::EquationSystem sys;
    sys.addEquation("T_seq = 1 - f");
    sys.addEquation("T_par = f / s");
    sys.addEquation("Speedup = 1 / (T_seq + T_par)");

    // --- 2. f is uncertain: we believe it is about 0.95, give or
    //        take a few points, and physically bounded by [0, 1].
    sys.markUncertain("f");

    ar::core::Framework fw; // defaults: N = 10,000 LHS trials
    fw.setSystem(std::move(sys));

    ar::mc::InputBindings in;
    in.uncertain["f"] = std::make_shared<ar::dist::TruncatedNormal>(
        0.95, 0.02, 0.0, 1.0);
    in.fixed["s"] = 32.0;

    // --- 3/4. Propagate and score risk against the "certain" value.
    const double certain =
        fw.evaluateCertain("Speedup", {{"f", 0.95}, {"s", 32.0}});
    ar::risk::QuadraticRisk risk_fn;
    const auto res = fw.analyze("Speedup", in, risk_fn, certain);

    std::printf("certain speedup     : %.3f\n", certain);
    std::printf("expected under risk : %.3f\n", res.expected());
    std::printf("stddev              : %.3f\n", res.summary.stddev);
    std::printf("architectural risk  : %.4f (quadratic, ref %.3f)\n\n",
                res.risk, res.reference);

    ar::stats::Histogram h =
        ar::stats::Histogram::fromData(res.samples, 12);
    std::printf("speedup distribution:\n%s",
                ar::report::histogramChart(h, 40).c_str());

    std::printf("\nTakeaway: a +/-2%% doubt about f turns the point "
                "estimate %.1f into a\nwide, left-skewed distribution "
                "-- exactly what risk-aware design quantifies.\n",
                certain);
    return 0;
}
