/**
 * @file
 * The framework is not tied to Hill-Marty: any mutually dependent
 * set of closed-form equations works.  This example models a host
 * CPU offloading a kernel to an accelerator (a LogCA-style model):
 *
 *   T_host  = W / P_host                  work on the host
 *   T_accel = o + (W * g) / (P_host * A)  offload overhead + kernel
 *   Speedup = T_host / T_total            with partial offload
 *
 * where A (peak acceleration) and o (offload overhead) are the
 * uncertain quantities -- exactly the "new accelerator still in the
 * research lab" projection risk the paper motivates.
 */

#include <cstdio>

#include "core/framework.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "report/ascii_plot.hh"
#include "risk/arch_risk.hh"
#include "risk/risk_function.hh"
#include "stats/histogram.hh"
#include "stats/quantiles.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("offload", "0.8",
                 "fraction of work the accelerator can take");
    if (!opts.parse(argc, argv))
        return 0;
    const double g = opts.getDouble("offload");

    ar::symbolic::EquationSystem sys;
    sys.addEquation("T_host = W / P_host");
    sys.addEquation("T_kernel = (W * g) / (P_host * A)");
    sys.addEquation("T_rest = (W * (1 - g)) / P_host");
    sys.addEquation("T_total = o + T_kernel + T_rest");
    sys.addEquation("Speedup = T_host / T_total");
    sys.markUncertain("A");
    sys.markUncertain("o");

    ar::core::Framework fw;
    fw.setSystem(std::move(sys));

    ar::mc::InputBindings in;
    in.fixed["W"] = 1.0;
    in.fixed["P_host"] = 1.0;
    in.fixed["g"] = g;
    // Vendor brief: "10x acceleration" -- but it is a projection.
    in.uncertain["A"] = std::make_shared<ar::dist::LogNormal>(
        ar::dist::LogNormal::fromMeanStddev(10.0, 3.0));
    // Offload overhead: around 2% of the total work, maybe more.
    in.uncertain["o"] = std::make_shared<ar::dist::TruncatedNormal>(
        0.02, 0.01, 0.0, 0.5);

    const double promised = fw.evaluateCertain(
        "Speedup",
        {{"W", 1.0}, {"P_host", 1.0}, {"g", g}, {"A", 10.0},
         {"o", 0.02}});
    ar::risk::QuadraticRisk fn;
    const auto res = fw.analyze("Speedup", in, fn, promised);

    std::printf("accelerator offload model (g = %.2f)\n\n", g);
    std::printf("promised speedup (A=10, o=0.02): %.3f\n", promised);
    std::printf("expected under uncertainty     : %.3f\n",
                res.expected());
    std::printf("5th..95th percentile           : %.3f .. %.3f\n",
                ar::stats::quantileSorted(
                    ar::stats::Ecdf(res.samples).sorted(), 0.05),
                ar::stats::quantileSorted(
                    ar::stats::Ecdf(res.samples).sorted(), 0.95));
    std::printf("architectural risk (quadratic) : %.4f\n\n",
                res.risk);

    std::printf("%s",
                ar::report::histogramChart(
                    ar::stats::Histogram::fromData(res.samples, 12),
                    40)
                    .c_str());
    std::printf("\nSweep --offload to see the classic result: the "
                "more you bet on the\naccelerator, the more fragile "
                "the promised speedup becomes.\n");
    return 0;
}
