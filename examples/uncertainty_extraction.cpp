/**
 * @file
 * Estimating an uncertainty model from a handful of measurements --
 * the paper's Figure 2 pipeline as a user would drive it.
 *
 * The example plays both roles: a "hidden" process-variation
 * distribution stands in for the fab's trade-secret data, a few
 * dozen observed chip-performance points are drawn from it, and the
 * extraction pipeline rebuilds a usable distribution from just those
 * points.  Pass --samples to see quality change with budget.
 */

#include <cstdio>

#include "dist/combinators.hh"
#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "extract/extract.hh"
#include "report/ascii_plot.hh"
#include "stats/histogram.hh"
#include "stats/quantiles.hh"
#include "util/cli.hh"
#include "util/io.hh"
#include "util/rng.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("samples", "40",
                 "measurements available to the analyst");
    opts.declare("seed", "7", "random seed");
    opts.declare("file", "",
                 "read measurements from a text file instead of "
                 "generating them");
    if (!opts.parse(argc, argv))
        return 0;
    const auto k = static_cast<std::size_t>(opts.getInt("samples"));

    // The hidden truth: a 64-unit core whose performance suffers
    // both process variation (LogNormal around Pollack's rule) and a
    // 3% chance of a killer design bug (Table 2, Eq. 14).
    const auto truth = std::make_shared<ar::dist::Product>(
        std::make_shared<ar::dist::Bernoulli>(0.97),
        std::make_shared<ar::dist::LogNormal>(
            ar::dist::LogNormal::fromMeanStddev(8.0, 1.2)));

    ar::util::Rng rng(static_cast<std::uint64_t>(opts.getInt("seed")));
    std::vector<double> observed;
    if (const auto path = opts.getString("file"); !path.empty()) {
        // Real user data: whitespace/comma separated numbers,
        // '#' comments allowed.
        observed = ar::util::readNumbers(path);
        std::printf("(loaded %zu measurements from %s; the "
                    "truth-comparison below still refers to the "
                    "built-in demo distribution)\n\n",
                    observed.size(), path.c_str());
    } else {
        observed = truth->sampleMany(k, rng);
    }

    std::printf("observed %zu chip-performance measurements:\n%s\n",
                k,
                ar::report::histogramChart(
                    ar::stats::Histogram::fromData(observed, 10), 40)
                    .c_str());

    const auto res = ar::extract::extractUncertainty(observed);
    const char *method =
        res.method == ar::extract::ExtractionMethod::BoxCoxBootstrap
            ? "Box-Cox bootstrap"
            : (res.method == ar::extract::ExtractionMethod::Kde
                   ? "kernel density estimate"
                   : "degenerate");
    std::printf("extraction pipeline chose: %s\n", method);
    if (res.method ==
        ar::extract::ExtractionMethod::BoxCoxBootstrap) {
        std::printf("  lambda = %.3f, normality confidence = %.3f\n",
                    res.boxcox.transform.lambda,
                    res.boxcox.confidence);
    }

    std::printf("\n                truth     extracted\n");
    std::printf("mean          %8.4f    %8.4f\n", truth->mean(),
                res.distribution->mean());
    std::printf("stddev        %8.4f    %8.4f\n", truth->stddev(),
                res.distribution->stddev());

    // Distributional distance on fresh draws.
    ar::util::Rng rng2(99);
    const auto a = res.distribution->sampleMany(5000, rng2);
    const auto b = truth->sampleMany(5000, rng2);
    std::printf("KS distance   %8.4f\n",
                ar::stats::ksStatistic(a, b));

    std::printf("\nRe-run with --samples 20 / 200 / 2000 to watch "
                "the estimate converge\n(the paper's claim: fewer "
                "than 50 points already support useful analysis).\n");
    return 0;
}
