/**
 * @file
 * Workload characterization to risk analysis, end to end.
 *
 * The paper's pipeline starts from benchmark characterization data
 * (PARSEC in their case).  Here a synthetic suite is "measured" a
 * handful of times per benchmark, the f observations are pooled to
 * form a projection-uncertainty model for the future target
 * workload, and that model drives a risk analysis of an asymmetric
 * CMP -- all without ever telling the analysis the hidden truth.
 */

#include <cstdio>

#include "core/framework.hh"
#include "extract/extract.hh"
#include "model/core_config.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "model/workloads.hh"
#include "report/ascii_plot.hh"
#include "risk/risk_function.hh"
#include "stats/histogram.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("runs", "5", "measurement runs per benchmark");
    opts.declare("sigma", "0.4", "run-to-run variability");
    if (!opts.parse(argc, argv))
        return 0;
    const auto runs = static_cast<std::size_t>(opts.getInt("runs"));
    const double sigma = opts.getDouble("sigma");

    // 1. "Measure" every benchmark in the suite a few times.
    ar::util::Rng rng(2017);
    std::vector<double> pooled_f;
    std::printf("suite characterization (%zu runs each):\n", runs);
    for (const auto &profile : ar::model::syntheticSuite()) {
        const auto obs = ar::model::observeParallelFraction(
            profile, runs, sigma, rng);
        double mean = 0.0;
        for (double x : obs)
            mean += x;
        mean /= static_cast<double>(obs.size());
        std::printf("  %-20s measured f ~ %.4f (true %.4f)\n",
                    profile.name.c_str(), mean, profile.f);
        pooled_f.insert(pooled_f.end(), obs.begin(), obs.end());
    }

    // 2. The future target workload is "like this suite": extract a
    //    distribution for f from the pooled observations.
    const auto f_model =
        ar::extract::extractUncertainty(pooled_f);
    std::printf("\npooled f model: mean %.4f sd %.4f (%s)\n",
                f_model.distribution->mean(),
                f_model.distribution->stddev(),
                f_model.distribution->describe().c_str());

    // 3. Risk analysis of the asymmetric CMP under that model.
    const auto config = ar::model::asymCores();
    ar::core::Framework fw;
    fw.setSystem(ar::model::buildHillMartySystem(config.numTypes()));

    auto in = ar::model::groundTruthBindings(
        config, ar::model::appLPHC(),
        ar::model::UncertaintySpec::none());
    in.fixed.erase("f");
    in.uncertain["f"] = f_model.distribution;

    const double ref = ar::model::HillMartyEvaluator::nominalSpeedup(
        config, f_model.distribution->mean(), 0.01);
    ar::risk::QuadraticRisk fn;
    const auto res = fw.analyze("Speedup", in, fn, ref, 99);

    std::printf("\nasymmetric CMP (%s) under workload projection "
                "uncertainty:\n",
                config.describe().c_str());
    std::printf("  reference speedup : %.3f\n", ref);
    std::printf("  expected          : %.3f\n", res.expected());
    std::printf("  architectural risk: %.4f\n\n", res.risk);
    std::printf("%s",
                ar::report::histogramChart(
                    ar::stats::Histogram::fromData(res.samples, 12),
                    40)
                    .c_str());
    std::printf("\nThe wide f spread across the suite (x264-like is "
                "only 60%% parallel)\nshows up directly as "
                "performance risk for the parallel-heavy design.\n");
    return 0;
}
