/**
 * @file
 * Ablation: correlated uncertain inputs.  The paper models every
 * uncertainty as independent; this bench sweeps a Gaussian-copula
 * correlation between the application parameters f and c and shows
 * how the independence assumption under- or over-states risk.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "core/framework.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "risk/arch_risk.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "20000");
    opts.declare("sigma", "0.4", "uncertainty level (f and c)");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const double sigma = opts.getDouble("sigma");

    ar::bench::banner(
        "Ablation: correlated application parameters (f, c)",
        "Gaussian copula over the Table-2 marginals, Asym + LPHC");

    const auto config = ar::model::asymCores();
    const auto app = ar::model::appLPHC();
    ar::core::Framework fw({trials, "latin-hypercube"});
    fw.setSystem(ar::model::buildHillMartySystem(config.numTypes()));
    const double ref = ar::model::HillMartyEvaluator::nominalSpeedup(
        config, app.f, app.c);
    ar::risk::QuadraticRisk fn;

    ar::model::UncertaintySpec spec;
    spec.sigma_f = spec.sigma_c = sigma;

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"rho", "expected", "stddev", "risk"});
    }

    // Independent baseline first so ratios are available for every
    // row.
    double indep_risk = 0.0;
    {
        const auto in =
            ar::model::groundTruthBindings(config, app, spec);
        const auto res = fw.analyze("Speedup", in, fn, ref, seed);
        std::vector<double> norm(res.samples);
        for (auto &s : norm)
            s /= ref;
        indep_risk = ar::risk::archRisk(norm, 1.0, fn);
    }

    ar::report::Table table;
    table.header({"rho(f, c)", "E[perf]", "stddev", "risk",
                  "risk vs independent"});
    for (double rho : {-0.8, -0.4, 0.0, 0.4, 0.8}) {
        auto in = ar::model::groundTruthBindings(config, app, spec);
        if (rho != 0.0)
            in.correlations.push_back({"f", "c", rho});
        const auto res = fw.analyze("Speedup", in, fn, ref, seed);
        const double norm_e = res.expected() / ref;
        const double norm_sd = res.summary.stddev / ref;
        std::vector<double> norm(res.samples);
        for (auto &s : norm)
            s /= ref;
        const double risk = ar::risk::archRisk(norm, 1.0, fn);
        table.row({ar::util::formatFixed(rho, 1),
                   ar::util::formatFixed(norm_e, 4),
                   ar::util::formatFixed(norm_sd, 4),
                   ar::util::formatFixed(risk, 5),
                   ar::util::formatFixed(risk / indep_risk, 2) +
                       "x"});
        if (csv) {
            csv->row(ar::util::formatDouble(rho),
                     {norm_e, norm_sd, risk});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading: positive rho means 'more parallel futures also "
        "communicate\nmore', which partially cancels in the LPHC "
        "regime; negative rho\ncompounds the downside.  Either way "
        "the independence assumption\nmis-states the tail, which is "
        "the quantity architectural risk cares\nabout.\n");
    return 0;
}
