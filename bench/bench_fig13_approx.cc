/**
 * @file
 * Figure 13 reproduction: quality of the sampled-data approximation.
 * For each observation budget k, the whole design space is explored
 * with distributions re-estimated from only k samples per input; the
 * designs it picks are then re-scored under the hidden ground truth.
 * Reported: deviation of expected performance and risk of the
 * approximation's chosen optimal designs versus the true optima.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "common.hh"
#include "explore/optimality.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "1500");
    opts.declare("app", "LPHC", "application class");
    opts.declare("full", "", "also run k = 10000", true);
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));
    const auto app = ar::model::appByName(opts.getString("app"));

    ar::bench::banner(
        "Figure 13: quality of approximation vs sample size k",
        "design-space exploration with distributions estimated from "
        "k observations");

    const auto designs = ar::explore::enumerateDesigns();
    const double ref = ar::bench::conventionalReference(designs, app);
    ar::risk::QuadraticRisk fn;

    std::vector<std::size_t> ks{20, 50, 100, 1000};
    if (opts.getFlag("full"))
        ks.push_back(10000);
    const std::pair<double, double> levels[] = {{0.2, 0.2},
                                                {0.4, 0.4},
                                                {0.8, 0.8}};

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"k", "sigma", "perf_deviation_pct",
                  "risk_deviation_pct"});
    }

    ar::report::Table table;
    table.header({"k", "sigma", "perf dev (%)", "risk dev (%)",
                  "approx risk-opt design"});

    for (const auto &[s_app, s_arch] : levels) {
        const auto spec =
            ar::model::UncertaintySpec::appArch(s_app, s_arch);

        // Ground-truth exploration (shared across all k).
        ar::explore::SweepConfig truth_cfg;
        truth_cfg.trials = trials;
        truth_cfg.seed = seed;
        truth_cfg.threads = threads;
        ar::explore::DesignSpaceEvaluator truth_eval(
            designs, app, spec, truth_cfg);
        const auto truth = truth_eval.evaluateAll(fn, ref);
        const auto t_perf_opt = ar::explore::argmaxExpected(truth);
        const auto t_risk_opt = ar::explore::argminRisk(truth);

        for (const std::size_t k : ks) {
            // Limited-data exploration.
            ar::explore::SweepConfig ap_cfg;
            ap_cfg.trials = trials;
            ap_cfg.seed = seed + 1;
            ap_cfg.threads = threads;
            ap_cfg.approx_k = k;
            ar::explore::DesignSpaceEvaluator ap_eval(designs, app,
                                                      spec, ap_cfg);
            const auto approx = ap_eval.evaluateAll(fn, ref);
            const auto a_perf_opt =
                ar::explore::argmaxExpected(approx);
            const auto a_risk_opt = ar::explore::argminRisk(approx);

            // Score the approximation's choices under the truth.
            const double perf_dev =
                100.0 *
                std::fabs(truth[a_perf_opt].expected -
                          truth[t_perf_opt].expected) /
                truth[t_perf_opt].expected;
            const double risk_base =
                std::max(truth[t_risk_opt].risk, 1e-9);
            const double risk_dev =
                100.0 *
                std::fabs(truth[a_risk_opt].risk -
                          truth[t_risk_opt].risk) /
                risk_base;

            table.row(
                {std::to_string(k),
                 "(" + ar::util::formatDouble(s_app) + "," +
                     ar::util::formatDouble(s_arch) + ")",
                 ar::util::formatFixed(perf_dev, 2),
                 ar::util::formatFixed(risk_dev, 2),
                 designs[a_risk_opt].describe()});
            if (csv) {
                csv->row({std::to_string(k),
                          ar::util::formatDouble(s_app),
                          ar::util::formatDouble(perf_dev),
                          ar::util::formatDouble(risk_dev)});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Shape check vs the paper: deviations drop to the "
                "few-percent range by\nk ~ 50 and stabilize for "
                "k >= 100.\n");
    return 0;
}
