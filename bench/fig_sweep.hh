/**
 * @file
 * Shared machinery for the Figure 7/8/9 sweeps: the per-legend
 * uncertainty configurations ("f only", "c only", ...) and a helper
 * evaluating one (design, app, spec) point with the pooled evaluator.
 */

#ifndef AR_BENCH_FIG_SWEEP_HH
#define AR_BENCH_FIG_SWEEP_HH

#include <string>
#include <vector>

#include "explore/evaluate.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "model/uncertainty.hh"

namespace ar::bench
{

/** One legend entry of Figures 7-9. */
struct Legend
{
    std::string name;
    /** Build the spec for this legend at input level sigma. */
    ar::model::UncertaintySpec (*make)(double sigma);
};

/** The six legends of Figure 7/8 in paper order. */
std::vector<Legend> figureLegends();

/** The five leave-one-out legends of Figure 9 plus "all". */
std::vector<Legend> leaveOneOutLegends();

/** Mean and stddev of normalized performance at one sweep point. */
struct SweepPoint
{
    double expected = 0.0; ///< Normalized to certain speedup.
    double stddev = 0.0;   ///< Normalized to certain speedup.
};

/**
 * Evaluate one design under one spec, normalizing by the design's
 * own certain speedup (the paper's "risk-unaware performance").
 *
 * @param threads Worker threads (0 = all cores).
 */
SweepPoint evalPoint(const ar::model::CoreConfig &config,
                     const ar::model::AppParams &app,
                     const ar::model::UncertaintySpec &spec,
                     std::size_t trials, std::uint64_t seed,
                     std::size_t threads = 0);

} // namespace ar::bench

#endif // AR_BENCH_FIG_SWEEP_HH
