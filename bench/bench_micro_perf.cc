/**
 * @file
 * Google-benchmark microbenchmarks for the framework's hot paths:
 * compiled-tape evaluation, distribution sampling, Latin-hypercube
 * propagation, Box-Cox fitting, and whole-design-space evaluation.
 */

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cmath>
#include <map>

#include "core/framework.hh"
#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "mc/propagator.hh"
#include "mc/sensitivity.hh"
#include "model/app.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "simd/dispatch.hh"
#include "util/fault.hh"
#include "risk/risk_function.hh"
#include "stats/boxcox.hh"
#include "symbolic/compile.hh"
#include "symbolic/parser.hh"
#include "symbolic/program.hh"
#include "symbolic/simplify.hh"
#include "symbolic/solve.hh"
#include "symbolic/substitute.hh"
#include "util/rng.hh"

namespace
{

void
BM_CompiledTapeEval(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    std::vector<double> args(fn.argNames().size(), 2.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(fn.eval(args));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledTapeEval)->Arg(1)->Arg(3)->Arg(5);

void
BM_CompiledTapeEvalBatch(benchmark::State &state)
{
    // Same tape as BM_CompiledTapeEval, evaluated 256 trials at a
    // time; items/s is directly comparable with the scalar case.
    constexpr std::size_t kBlock = 256;
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    const std::size_t n_args = fn.argNames().size();
    std::vector<std::vector<double>> columns(
        n_args, std::vector<double>(kBlock, 2.0));
    std::vector<ar::symbolic::BatchArg> args;
    for (const auto &col : columns)
        args.push_back({col.data(), false});
    std::vector<double> out(kBlock, 0.0);
    for (auto _ : state) {
        fn.evalBatch(args, kBlock, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_CompiledTapeEvalBatch)->Arg(1)->Arg(3)->Arg(5);

void
BM_CompiledTapeEvalBatchGuarded(benchmark::State &state)
{
    // The fault-containment hot path: a batch evaluation followed by
    // the countNonFinite() output scan the Propagator runs per block.
    // Compare items/s with BM_CompiledTapeEvalBatch to read off the
    // guard overhead (the precise scalar re-diagnosis only runs on
    // faulty trials, which a clean model never has).
    constexpr std::size_t kBlock = 256;
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    const std::size_t n_args = fn.argNames().size();
    std::vector<std::vector<double>> columns(
        n_args, std::vector<double>(kBlock, 2.0));
    std::vector<ar::symbolic::BatchArg> args;
    for (const auto &col : columns)
        args.push_back({col.data(), false});
    std::vector<double> out(kBlock, 0.0);
    for (auto _ : state) {
        fn.evalBatch(args, kBlock, out.data());
        benchmark::DoNotOptimize(ar::util::countNonFinite(out));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_CompiledTapeEvalBatchGuarded)->Arg(1)->Arg(3)->Arg(5);

/**
 * The pick-freeze forest of one Sobol analysis: f(A), f(B), and one
 * f(AB_i) per input -- the workload sobolIndices() evaluates per
 * trial, and the one with the most cross-output redundancy.
 */
std::vector<ar::symbolic::ExprPtr>
pickFreezeForest(std::size_t k)
{
    auto sys = ar::model::buildHillMartySystem(k);
    const auto base = sys.resolve("Speedup");
    const ar::symbolic::CompiledExpr fn(base);
    std::map<std::string, std::string> all;
    for (const auto &name : fn.argNames())
        all[name] = name + "!B";
    std::vector<ar::symbolic::ExprPtr> forest{
        base, ar::symbolic::renameSymbols(base, all)};
    for (const auto &name : fn.argNames()) {
        forest.push_back(ar::symbolic::renameSymbols(
            base, {{name, name + "!B"}}));
    }
    return forest;
}

void
BM_ProgramEvalBatchUnfused(benchmark::State &state)
{
    // Baseline for BM_ProgramEvalBatchFused: the same output forest
    // walked as independent per-output CompiledExpr tapes.
    constexpr std::size_t kBlock = 256;
    const auto forest =
        pickFreezeForest(static_cast<std::size_t>(state.range(0)));
    std::vector<ar::symbolic::CompiledExpr> fns;
    fns.reserve(forest.size());
    for (const auto &e : forest)
        fns.emplace_back(e);

    std::map<std::string, std::vector<double>> columns;
    for (const auto &fn : fns) {
        for (const auto &name : fn.argNames())
            columns.emplace(name, std::vector<double>(kBlock, 2.0));
    }
    std::vector<std::vector<ar::symbolic::BatchArg>> args(fns.size());
    for (std::size_t o = 0; o < fns.size(); ++o) {
        for (const auto &name : fns[o].argNames())
            args[o].push_back({columns.at(name).data(), false});
    }
    std::vector<std::vector<double>> outs(
        fns.size(), std::vector<double>(kBlock, 0.0));
    for (auto _ : state) {
        for (std::size_t o = 0; o < fns.size(); ++o)
            fns[o].evalBatch(args[o], kBlock, outs[o].data());
        benchmark::DoNotOptimize(outs.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock *
                            fns.size());
}
BENCHMARK(BM_ProgramEvalBatchUnfused)->Arg(3)->Arg(5);

void
BM_ProgramEvalBatchFused(benchmark::State &state)
{
    // The same forest as BM_ProgramEvalBatchUnfused through one
    // CompiledProgram: CSE runs shared subtrees once per trial.
    constexpr std::size_t kBlock = 256;
    const auto forest =
        pickFreezeForest(static_cast<std::size_t>(state.range(0)));
    const ar::symbolic::CompiledProgram prog(forest);

    std::map<std::string, std::vector<double>> columns;
    std::vector<ar::symbolic::BatchArg> args;
    for (const auto &name : prog.argNames()) {
        auto [it, ins] =
            columns.emplace(name, std::vector<double>(kBlock, 2.0));
        args.push_back({it->second.data(), false});
    }
    std::vector<std::vector<double>> outs(
        prog.numOutputs(), std::vector<double>(kBlock, 0.0));
    std::vector<double *> out_ptrs;
    for (auto &o : outs)
        out_ptrs.push_back(o.data());
    for (auto _ : state) {
        prog.evalBatch(args, kBlock, out_ptrs);
        benchmark::DoNotOptimize(outs.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock *
                            prog.numOutputs());
}
BENCHMARK(BM_ProgramEvalBatchFused)->Arg(3)->Arg(5);

void
BM_ProgramEvalBatchSimdOff(benchmark::State &state)
{
    // BM_ProgramEvalBatchFused pinned to the scalar kernel table:
    // the pre-SIMD per-opcode loops.  The ratio against the fused
    // run at the host's native level is the vectorization speedup
    // gated in CI (scripts/bench_compare.py --speedup).
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    constexpr std::size_t kBlock = 256;
    const auto forest =
        pickFreezeForest(static_cast<std::size_t>(state.range(0)));
    const ar::symbolic::CompiledProgram prog(forest);

    std::map<std::string, std::vector<double>> columns;
    std::vector<ar::symbolic::BatchArg> args;
    for (const auto &name : prog.argNames()) {
        auto [it, ins] =
            columns.emplace(name, std::vector<double>(kBlock, 2.0));
        args.push_back({it->second.data(), false});
    }
    std::vector<std::vector<double>> outs(
        prog.numOutputs(), std::vector<double>(kBlock, 0.0));
    std::vector<double *> out_ptrs;
    for (auto &o : outs)
        out_ptrs.push_back(o.data());
    for (auto _ : state) {
        prog.evalBatch(args, kBlock, out_ptrs);
        benchmark::DoNotOptimize(outs.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock *
                            prog.numOutputs());
}
BENCHMARK(BM_ProgramEvalBatchSimdOff)->Arg(3)->Arg(5);

void
BM_PropagationMultiUnfused(benchmark::State &state)
{
    // Four responsive variables of the same Hill-Marty system
    // propagated as four independent tapes (runMany).  range(0) =
    // trials, range(1) = threads.
    const auto config = ar::model::heteroCores();
    auto sys = ar::model::buildHillMartySystem(config.numTypes());
    const std::vector<std::string> outputs{"Speedup", "T_seq",
                                           "T_par", "P_parallel"};
    std::vector<ar::symbolic::CompiledExpr> fns;
    std::vector<const ar::symbolic::CompiledExpr *> ptrs;
    for (const auto &name : outputs)
        fns.emplace_back(sys.resolve(name));
    for (const auto &fn : fns)
        ptrs.push_back(&fn);
    const auto in = ar::model::groundTruthBindings(
        config, ar::model::appLPHC(),
        ar::model::UncertaintySpec::all(0.2));
    // Saturate: rare all-cores-fail trials (P_serial = 0) must not
    // abort the timing loop.
    const ar::mc::Propagator prop(
        {static_cast<std::size_t>(state.range(0)), "latin-hypercube",
         static_cast<std::size_t>(state.range(1)),
         ar::util::FaultPolicy::Saturate});
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ar::util::Rng rng(seed++);
        benchmark::DoNotOptimize(prop.runMany(ptrs, in, rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(outputs.size()));
}
BENCHMARK(BM_PropagationMultiUnfused)
    ->Args({10000, 1})
    ->Args({10000, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_PropagationMultiFused(benchmark::State &state)
{
    // The same four outputs through one CompiledProgram (runMulti):
    // Speedup subsumes T_seq/T_par/P_parallel, so the fused tape is
    // barely longer than Speedup's alone.
    const auto config = ar::model::heteroCores();
    auto sys = ar::model::buildHillMartySystem(config.numTypes());
    const std::vector<std::string> outputs{"Speedup", "T_seq",
                                           "T_par", "P_parallel"};
    std::vector<ar::symbolic::ExprPtr> forest;
    for (const auto &name : outputs)
        forest.push_back(sys.resolve(name));
    const ar::symbolic::CompiledProgram prog(forest);
    const auto in = ar::model::groundTruthBindings(
        config, ar::model::appLPHC(),
        ar::model::UncertaintySpec::all(0.2));
    // Saturate: rare all-cores-fail trials (P_serial = 0) must not
    // abort the timing loop.
    const ar::mc::Propagator prop(
        {static_cast<std::size_t>(state.range(0)), "latin-hypercube",
         static_cast<std::size_t>(state.range(1)),
         ar::util::FaultPolicy::Saturate});
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ar::util::Rng rng(seed++);
        benchmark::DoNotOptimize(prop.runMulti(prog, in, rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(outputs.size()));
}
BENCHMARK(BM_PropagationMultiFused)
    ->Args({10000, 1})
    ->Args({10000, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_PropagationMultiSimdOff(benchmark::State &state)
{
    // BM_PropagationMultiFused pinned to the scalar kernel table:
    // end-to-end propagation (design generation, quantile sampling,
    // tape evaluation) without vector kernels, for the CI speedup
    // gate against the native-level fused run.
    ar::simd::ScopedLevel pin(ar::simd::Level::Scalar);
    const auto config = ar::model::heteroCores();
    auto sys = ar::model::buildHillMartySystem(config.numTypes());
    const std::vector<std::string> outputs{"Speedup", "T_seq",
                                           "T_par", "P_parallel"};
    std::vector<ar::symbolic::ExprPtr> forest;
    for (const auto &name : outputs)
        forest.push_back(sys.resolve(name));
    const ar::symbolic::CompiledProgram prog(forest);
    const auto in = ar::model::groundTruthBindings(
        config, ar::model::appLPHC(),
        ar::model::UncertaintySpec::all(0.2));
    const ar::mc::Propagator prop(
        {static_cast<std::size_t>(state.range(0)), "latin-hypercube",
         static_cast<std::size_t>(state.range(1)),
         ar::util::FaultPolicy::Saturate});
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ar::util::Rng rng(seed++);
        benchmark::DoNotOptimize(prop.runMulti(prog, in, rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(outputs.size()));
}
BENCHMARK(BM_PropagationMultiSimdOff)
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

/**
 * Sobol-analysis bindings for a k-type Hill-Marty system, matching
 * the paper's ground-truth model shapes.  Note the erfInv-based
 * quantile draws (LogNormal, TruncatedNormal) cost ~110 ns each and
 * form a sampling floor both sweeps share, so the end-to-end
 * fused/unfused ratio understates the pure evaluation win (see
 * BM_ProgramEvalBatch* for the eval-only comparison).
 */
ar::mc::InputBindings
sobolBindings(std::size_t k)
{
    ar::mc::InputBindings in;
    in.uncertain["f"] = std::make_shared<ar::dist::TruncatedNormal>(
        0.95, 0.02, 0.0, 1.0);
    in.uncertain["c"] = std::make_shared<ar::dist::TruncatedNormal>(
        0.005, 0.002, 0.0, 1.0);
    for (std::size_t i = 0; i < k; ++i) {
        const double area = std::pow(2.0, static_cast<double>(i));
        in.fixed[ar::model::names::coreArea(i)] = area;
        in.uncertain[ar::model::names::corePerf(i)] =
            std::make_shared<ar::dist::LogNormal>(
                ar::dist::LogNormal::fromMeanStddev(
                    std::sqrt(area), 0.2 * std::sqrt(area)));
        in.uncertain[ar::model::names::coreCount(i)] =
            std::make_shared<ar::dist::Binomial>(16, 0.9);
    }
    return in;
}

void
BM_SobolUnfused(benchmark::State &state)
{
    // 2k + 4 pick-freeze variants as scalar tape walks per trial.
    // range(0) = core types k, range(1) = trials.
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    const auto expr = sys.resolve("Speedup");
    const auto in = sobolBindings(k);
    ar::mc::SensitivityConfig cfg;
    cfg.trials = static_cast<std::size_t>(state.range(1));
    cfg.threads = 1;
    cfg.fused = false;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ar::util::Rng rng(seed++);
        benchmark::DoNotOptimize(
            ar::mc::sobolIndices(expr, in, cfg, rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_SobolUnfused)
    ->Args({2, 2048})
    ->Args({5, 2048})
    ->Args({8, 2048})
    ->Unit(benchmark::kMillisecond);

void
BM_SobolFused(benchmark::State &state)
{
    // The same analysis with the variant forest compiled into one
    // program, evaluated in SoA blocks.
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    const auto expr = sys.resolve("Speedup");
    const auto in = sobolBindings(k);
    ar::mc::SensitivityConfig cfg;
    cfg.trials = static_cast<std::size_t>(state.range(1));
    cfg.threads = 1;
    cfg.fused = true;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ar::util::Rng rng(seed++);
        benchmark::DoNotOptimize(
            ar::mc::sobolIndices(expr, in, cfg, rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_SobolFused)
    ->Args({2, 2048})
    ->Args({5, 2048})
    ->Args({8, 2048})
    ->Unit(benchmark::kMillisecond);

void
BM_DesignSpaceSweepFused(benchmark::State &state)
{
    // BM_DesignSpaceSweep with SweepBackend::FusedProgram: every
    // enumerated design is one output of a single fused program.
    const auto designs = ar::explore::enumerateDesigns();
    const auto app = ar::model::appLPHC();
    const auto spec = ar::model::UncertaintySpec::appArch(0.2, 0.2);
    ar::risk::QuadraticRisk fn;
    for (auto _ : state) {
        ar::explore::SweepConfig cfg;
        cfg.trials = static_cast<std::size_t>(state.range(0));
        cfg.threads = static_cast<std::size_t>(state.range(1));
        cfg.backend = ar::explore::SweepBackend::FusedProgram;
        ar::explore::DesignSpaceEvaluator eval(designs, app, spec,
                                               cfg);
        benchmark::DoNotOptimize(eval.evaluateAll(fn, 26.7));
    }
    state.SetItemsProcessed(state.iterations() * designs.size() *
                            state.range(0));
}
BENCHMARK(BM_DesignSpaceSweepFused)
    ->Args({500, 1})
    ->Args({500, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_FullRebuildEditSweep(benchmark::State &state)
{
    // Baseline for BM_IncrementalEditSweep: every what-if edit pays
    // a fresh evaluator -- symbolic model build and fused compile
    // over all ~1.2k designs plus full pool draws -- before the
    // sweep itself runs.  One design is flipped between two
    // configurations per iteration, exactly as in the incremental
    // bench, so the pair differ only in how the edit is absorbed.
    const auto designs = ar::explore::enumerateDesigns();
    const auto app = ar::model::appLPHC();
    const auto spec = ar::model::UncertaintySpec::appArch(0.2, 0.2);
    ar::risk::QuadraticRisk fn;
    bool flip = false;
    for (auto _ : state) {
        auto edited = designs;
        edited[0] = designs[flip ? 1 : 2];
        flip = !flip;
        ar::explore::SweepConfig cfg;
        cfg.trials = 256;
        cfg.threads = 1;
        cfg.backend = ar::explore::SweepBackend::FusedProgram;
        ar::explore::DesignSpaceEvaluator eval(edited, app, spec,
                                               cfg);
        benchmark::DoNotOptimize(eval.evaluateAll(fn, 26.7));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(designs.size()) * 256);
}
BENCHMARK(BM_FullRebuildEditSweep)->Unit(benchmark::kMillisecond);

void
BM_IncrementalEditSweep(benchmark::State &state)
{
    // The loop the incremental engine exists for: one warm evaluator
    // held across iterations, a single-knob design edit, then a full
    // re-sweep.  Both alternating configurations use core sizes and
    // counts the shared pools already cover, so each edit stays on
    // the fast path: every pool and every unedited design's cached
    // outcome is reused, and only the edited design recomputes.  The
    // ratio against BM_FullRebuildEditSweep is the what-if speedup
    // gated in CI (scripts/bench_compare.py --speedup).
    const auto designs = ar::explore::enumerateDesigns();
    const auto app = ar::model::appLPHC();
    const auto spec = ar::model::UncertaintySpec::appArch(0.2, 0.2);
    ar::risk::QuadraticRisk fn;
    ar::explore::SweepConfig cfg;
    cfg.trials = 256;
    cfg.threads = 1;
    cfg.backend = ar::explore::SweepBackend::FusedProgram;
    ar::explore::DesignSpaceEvaluator eval(designs, app, spec, cfg);
    benchmark::DoNotOptimize(eval.evaluateAll(fn, 26.7)); // Warm.
    bool flip = false;
    for (auto _ : state) {
        eval.editDesign(0, designs[flip ? 1 : 2]);
        flip = !flip;
        benchmark::DoNotOptimize(eval.evaluateAll(fn, 26.7));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(designs.size()) * 256);
}
BENCHMARK(BM_IncrementalEditSweep)->Unit(benchmark::kMillisecond);

void
BM_DirectEvaluator(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    std::vector<double> perf(k, 3.0), count(k, 4.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ar::model::HillMartyEvaluator::speedup(0.9, 0.01, perf,
                                                   count));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectEvaluator)->Arg(1)->Arg(5);

void
BM_BinomialSample(benchmark::State &state)
{
    ar::dist::Binomial dist(
        static_cast<unsigned>(state.range(0)), 0.9);
    ar::util::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialSample)->Arg(32)->Arg(3600);

void
BM_LogNormalSample(benchmark::State &state)
{
    const auto dist = ar::dist::LogNormal::fromMeanStddev(8.0, 1.6);
    ar::util::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogNormalSample);

void
BM_Propagation(benchmark::State &state)
{
    // range(0) = trials, range(1) = worker threads.
    const auto config = ar::model::heteroCores();
    const auto app = ar::model::appLPHC();
    ar::core::Framework fw(
        {static_cast<std::size_t>(state.range(0)), "latin-hypercube",
         static_cast<std::size_t>(state.range(1))});
    fw.setSystem(ar::model::buildHillMartySystem(config.numTypes()));
    const auto in = ar::model::groundTruthBindings(
        config, app, ar::model::UncertaintySpec::all(0.2));
    std::uint64_t seed = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(fw.propagate("Speedup", in, seed++));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Propagation)
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

void
BM_BoxCoxFit(benchmark::State &state)
{
    ar::dist::LogNormal truth(1.0, 0.5);
    ar::util::Rng rng(1);
    const auto xs = truth.sampleMany(
        static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(ar::stats::fitBoxCox(xs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoxCoxFit)->Arg(50)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void
BM_DesignSpaceSweep(benchmark::State &state)
{
    // range(0) = trials per design, range(1) = worker threads.
    const auto designs = ar::explore::enumerateDesigns();
    const auto app = ar::model::appLPHC();
    const auto spec = ar::model::UncertaintySpec::appArch(0.2, 0.2);
    ar::risk::QuadraticRisk fn;
    for (auto _ : state) {
        ar::explore::SweepConfig cfg;
        cfg.trials = static_cast<std::size_t>(state.range(0));
        cfg.threads = static_cast<std::size_t>(state.range(1));
        ar::explore::DesignSpaceEvaluator eval(designs, app, spec,
                                               cfg);
        benchmark::DoNotOptimize(eval.evaluateAll(fn, 26.7));
    }
    state.SetItemsProcessed(state.iterations() * designs.size() *
                            state.range(0));
}
BENCHMARK(BM_DesignSpaceSweep)
    ->Args({500, 1})
    ->Args({500, 2})
    ->Args({500, 4})
    ->Args({500, 8})
    ->Unit(benchmark::kMillisecond);

void
BM_TelemetryDisabledOverhead(benchmark::State &state)
{
    // The acceptance bar for ar::obs: with telemetry off, a fully
    // instrumented propagation is the same propagation plus one
    // relaxed atomic load and a predicted branch per hook.  Compare
    // against BM_Propagation/10000/1 in BENCH_BASELINE.json.
    ar::obs::setMetricsEnabled(false);
    ar::obs::setTracingEnabled(false);
    const auto config = ar::model::heteroCores();
    const auto app = ar::model::appLPHC();
    ar::core::Framework fw({10000, "latin-hypercube", 1});
    fw.setSystem(ar::model::buildHillMartySystem(config.numTypes()));
    const auto in = ar::model::groundTruthBindings(
        config, app, ar::model::UncertaintySpec::all(0.2));
    std::uint64_t seed = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(fw.propagate("Speedup", in, seed++));
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TelemetryDisabledOverhead)
    ->Unit(benchmark::kMillisecond);

void
BM_TelemetryEnabledOverhead(benchmark::State &state)
{
    // Same workload with both sinks hot, to quantify the enabled
    // cost (per-thread shard bumps + per-phase clock reads).
    ar::obs::setMetricsEnabled(true);
    ar::obs::setTracingEnabled(true);
    const auto config = ar::model::heteroCores();
    const auto app = ar::model::appLPHC();
    ar::core::Framework fw({10000, "latin-hypercube", 1});
    fw.setSystem(ar::model::buildHillMartySystem(config.numTypes()));
    const auto in = ar::model::groundTruthBindings(
        config, app, ar::model::UncertaintySpec::all(0.2));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fw.propagate("Speedup", in, seed++));
        ar::obs::clearTrace(); // don't let the span buffer hit cap
    }
    state.SetItemsProcessed(state.iterations() * 10000);
    ar::obs::setMetricsEnabled(false);
    ar::obs::setTracingEnabled(false);
    ar::obs::MetricsRegistry::global().reset();
    ar::obs::clearTrace();
}
BENCHMARK(BM_TelemetryEnabledOverhead)
    ->Unit(benchmark::kMillisecond);

ar::symbolic::ExprPtr
pickSpeedupExpr(std::size_t k)
{
    auto sys = ar::model::buildHillMartySystem(k);
    return sys.resolve("Speedup");
}

void
BM_Simplify(benchmark::State &state)
{
    // Re-canonicalize e*e + e for the resolved k-type Speedup
    // expression.  simplifyAdd/simplifyMul group like terms with
    // Expr::equal, so this is the equality-heaviest pass in the
    // symbolic stack.
    const auto e =
        pickSpeedupExpr(static_cast<std::size_t>(state.range(0)));
    const auto big = e * e + e;
    for (auto _ : state)
        benchmark::DoNotOptimize(ar::symbolic::simplify(big));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Simplify)->Arg(3)->Arg(5)->Unit(benchmark::kMicrosecond);

void
BM_Substitute(benchmark::State &state)
{
    // Bind every other free symbol of the resolved Speedup to a
    // constant; substitute() rewrites the tree and re-simplifies.
    const auto e =
        pickSpeedupExpr(static_cast<std::size_t>(state.range(0)));
    std::map<std::string, double> values;
    std::size_t i = 0;
    for (const auto &name : e->freeSymbols()) {
        if (i++ % 2 == 0)
            values.emplace(name, 2.0);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(ar::symbolic::substitute(e, values));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Substitute)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMicrosecond);

void
BM_SystemSolve(benchmark::State &state)
{
    // Inverse-operation isolation through nested sums, products,
    // powers, and a log -- the shape of rearranging a closed-form
    // architecture model for a design parameter.
    const auto eq = ar::symbolic::parseEquation(
        "Speedup = 1 / ((1 - F) / P_serial + F / (P_par * N) "
        "+ Q * log(M))");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ar::symbolic::solveFor(eq, "P_serial"));
        benchmark::DoNotOptimize(ar::symbolic::solveFor(eq, "M"));
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SystemSolve)->Unit(benchmark::kMicrosecond);

void
BM_ModelBuild(benchmark::State &state)
{
    // End to end: build the k-type Hill-Marty equation system and
    // resolve Speedup down to its inputs.  Exercises the parser,
    // substitution, simplification, and the system memo together --
    // the full model-build path a Framework user pays before the
    // first trial runs.
    const auto k = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto sys = ar::model::buildHillMartySystem(k);
        benchmark::DoNotOptimize(sys.resolve("Speedup"));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelBuild)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMicrosecond);

/** Shared body of the streamed / materializing propagation pair:
 * one single-output Hill-Marty propagation on the counter sampler
 * (streamable substreams), reporting the engine's analytic peak
 * estimate and the process peak RSS as counters.  The CI memory
 * smoke runs each variant in its own process (ru_maxrss is
 * process-monotone, so sharing a process would let the materializing
 * run contaminate the streamed reading). */
void
streamPropagationBody(benchmark::State &state, bool keep_samples)
{
    const auto config = ar::model::heteroCores();
    auto sys = ar::model::buildHillMartySystem(config.numTypes());
    const ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    const std::vector<const ar::symbolic::CompiledExpr *> ptrs{&fn};
    const auto in = ar::model::groundTruthBindings(
        config, ar::model::appLPHC(),
        ar::model::UncertaintySpec::all(0.2));
    // Discard: rare all-cores-fail trials (P_serial = 0) must not
    // abort the loop, and saturate would force retention.
    ar::mc::PropagationConfig pc{
        static_cast<std::size_t>(state.range(0)), "counter",
        static_cast<std::size_t>(state.range(1)),
        ar::util::FaultPolicy::Discard};
    pc.stream.keep_samples = keep_samples;
    const ar::mc::Propagator prop(pc);
    std::uint64_t seed = 1;
    std::size_t engine_peak = 0;
    for (auto _ : state) {
        ar::util::Rng rng(seed++);
        const auto rep = prop.runManyReport(ptrs, in, rng);
        engine_peak = rep.peak_bytes;
        benchmark::DoNotOptimize(rep.stats.front().moments.mean());
    }
    struct rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    state.counters["engine_peak_bytes"] =
        static_cast<double>(engine_peak);
    state.counters["peak_rss_bytes"] =
        1024.0 * static_cast<double>(ru.ru_maxrss);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_StreamPropagation(benchmark::State &state)
{
    streamPropagationBody(state, /*keep_samples=*/false);
}
// Streamed registers (and runs) before the keep variant so an
// all-benches process reads its RSS before materialization inflates
// the high-water mark; CI gates still use separate processes.
BENCHMARK(BM_StreamPropagation)
    ->Args({100000, 1})
    ->Args({10000000, 1})
    ->Unit(benchmark::kMillisecond);

void
BM_StreamPropagationKeep(benchmark::State &state)
{
    streamPropagationBody(state, /*keep_samples=*/true);
}
BENCHMARK(BM_StreamPropagationKeep)
    ->Args({100000, 1})
    ->Args({10000000, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Stamp the SIMD dispatch level into the JSON context so a
    // recorded baseline says which kernel table produced it (an
    // AR_SIMD override or a different host changes the numbers).
    benchmark::AddCustomContext(
        "simd_dispatch_level",
        ar::simd::levelName(ar::simd::activeLevel()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
