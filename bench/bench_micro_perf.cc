/**
 * @file
 * Google-benchmark microbenchmarks for the framework's hot paths:
 * compiled-tape evaluation, distribution sampling, Latin-hypercube
 * propagation, Box-Cox fitting, and whole-design-space evaluation.
 */

#include <benchmark/benchmark.h>

#include "core/framework.hh"
#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "mc/propagator.hh"
#include "model/app.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "util/fault.hh"
#include "risk/risk_function.hh"
#include "stats/boxcox.hh"
#include "symbolic/compile.hh"
#include "util/rng.hh"

namespace
{

void
BM_CompiledTapeEval(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    std::vector<double> args(fn.argNames().size(), 2.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(fn.eval(args));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledTapeEval)->Arg(1)->Arg(3)->Arg(5);

void
BM_CompiledTapeEvalBatch(benchmark::State &state)
{
    // Same tape as BM_CompiledTapeEval, evaluated 256 trials at a
    // time; items/s is directly comparable with the scalar case.
    constexpr std::size_t kBlock = 256;
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    const std::size_t n_args = fn.argNames().size();
    std::vector<std::vector<double>> columns(
        n_args, std::vector<double>(kBlock, 2.0));
    std::vector<ar::symbolic::BatchArg> args;
    for (const auto &col : columns)
        args.push_back({col.data(), false});
    std::vector<double> out(kBlock, 0.0);
    for (auto _ : state) {
        fn.evalBatch(args, kBlock, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_CompiledTapeEvalBatch)->Arg(1)->Arg(3)->Arg(5);

void
BM_CompiledTapeEvalBatchGuarded(benchmark::State &state)
{
    // The fault-containment hot path: a batch evaluation followed by
    // the countNonFinite() output scan the Propagator runs per block.
    // Compare items/s with BM_CompiledTapeEvalBatch to read off the
    // guard overhead (the precise scalar re-diagnosis only runs on
    // faulty trials, which a clean model never has).
    constexpr std::size_t kBlock = 256;
    const auto k = static_cast<std::size_t>(state.range(0));
    auto sys = ar::model::buildHillMartySystem(k);
    ar::symbolic::CompiledExpr fn(sys.resolve("Speedup"));
    const std::size_t n_args = fn.argNames().size();
    std::vector<std::vector<double>> columns(
        n_args, std::vector<double>(kBlock, 2.0));
    std::vector<ar::symbolic::BatchArg> args;
    for (const auto &col : columns)
        args.push_back({col.data(), false});
    std::vector<double> out(kBlock, 0.0);
    for (auto _ : state) {
        fn.evalBatch(args, kBlock, out.data());
        benchmark::DoNotOptimize(ar::util::countNonFinite(out));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_CompiledTapeEvalBatchGuarded)->Arg(1)->Arg(3)->Arg(5);

void
BM_DirectEvaluator(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    std::vector<double> perf(k, 3.0), count(k, 4.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ar::model::HillMartyEvaluator::speedup(0.9, 0.01, perf,
                                                   count));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectEvaluator)->Arg(1)->Arg(5);

void
BM_BinomialSample(benchmark::State &state)
{
    ar::dist::Binomial dist(
        static_cast<unsigned>(state.range(0)), 0.9);
    ar::util::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialSample)->Arg(32)->Arg(3600);

void
BM_LogNormalSample(benchmark::State &state)
{
    const auto dist = ar::dist::LogNormal::fromMeanStddev(8.0, 1.6);
    ar::util::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogNormalSample);

void
BM_Propagation(benchmark::State &state)
{
    // range(0) = trials, range(1) = worker threads.
    const auto config = ar::model::heteroCores();
    const auto app = ar::model::appLPHC();
    ar::core::Framework fw(
        {static_cast<std::size_t>(state.range(0)), "latin-hypercube",
         static_cast<std::size_t>(state.range(1))});
    fw.setSystem(ar::model::buildHillMartySystem(config.numTypes()));
    const auto in = ar::model::groundTruthBindings(
        config, app, ar::model::UncertaintySpec::all(0.2));
    std::uint64_t seed = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(fw.propagate("Speedup", in, seed++));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Propagation)
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

void
BM_BoxCoxFit(benchmark::State &state)
{
    ar::dist::LogNormal truth(1.0, 0.5);
    ar::util::Rng rng(1);
    const auto xs = truth.sampleMany(
        static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(ar::stats::fitBoxCox(xs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoxCoxFit)->Arg(50)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void
BM_DesignSpaceSweep(benchmark::State &state)
{
    // range(0) = trials per design, range(1) = worker threads.
    const auto designs = ar::explore::enumerateDesigns();
    const auto app = ar::model::appLPHC();
    const auto spec = ar::model::UncertaintySpec::appArch(0.2, 0.2);
    ar::risk::QuadraticRisk fn;
    for (auto _ : state) {
        ar::explore::SweepConfig cfg;
        cfg.trials = static_cast<std::size_t>(state.range(0));
        cfg.threads = static_cast<std::size_t>(state.range(1));
        ar::explore::DesignSpaceEvaluator eval(designs, app, spec,
                                               cfg);
        benchmark::DoNotOptimize(eval.evaluateAll(fn, 26.7));
    }
    state.SetItemsProcessed(state.iterations() * designs.size() *
                            state.range(0));
}
BENCHMARK(BM_DesignSpaceSweep)
    ->Args({500, 1})
    ->Args({500, 2})
    ->Args({500, 4})
    ->Args({500, 8})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
