#include "fig_sweep.hh"

#include "model/hill_marty.hh"
#include "risk/risk_function.hh"

namespace ar::bench
{

namespace
{

using ar::model::UncertaintySpec;

UncertaintySpec
fOnly(double sigma)
{
    UncertaintySpec s;
    s.sigma_f = sigma;
    return s;
}

UncertaintySpec
cOnly(double sigma)
{
    UncertaintySpec s;
    s.sigma_c = sigma;
    return s;
}

UncertaintySpec
perfOnly(double sigma)
{
    UncertaintySpec s;
    s.sigma_perf = sigma;
    return s;
}

UncertaintySpec
designOnly(double sigma)
{
    UncertaintySpec s;
    s.sigma_design = sigma;
    return s;
}

UncertaintySpec
fabOnly(double sigma)
{
    UncertaintySpec s;
    s.fab = sigma > 0.0;
    return s;
}

UncertaintySpec
allTypes(double sigma)
{
    return UncertaintySpec::all(sigma);
}

UncertaintySpec
noF(double sigma)
{
    auto s = UncertaintySpec::all(sigma);
    s.sigma_f = 0.0;
    return s;
}

UncertaintySpec
noC(double sigma)
{
    auto s = UncertaintySpec::all(sigma);
    s.sigma_c = 0.0;
    return s;
}

UncertaintySpec
noPerf(double sigma)
{
    auto s = UncertaintySpec::all(sigma);
    s.sigma_perf = 0.0;
    return s;
}

UncertaintySpec
noDesign(double sigma)
{
    auto s = UncertaintySpec::all(sigma);
    s.sigma_design = 0.0;
    return s;
}

UncertaintySpec
noFab(double sigma)
{
    auto s = UncertaintySpec::all(sigma);
    s.fab = false;
    return s;
}

} // namespace

std::vector<Legend>
figureLegends()
{
    return {{"f only", fOnly},         {"c only", cOnly},
            {"perf only", perfOnly},   {"fab only", fabOnly},
            {"design only", designOnly}, {"all", allTypes}};
}

std::vector<Legend>
leaveOneOutLegends()
{
    return {{"no f", noF},       {"no c", noC},
            {"no perf", noPerf}, {"no fab", noFab},
            {"no design", noDesign}, {"all", allTypes}};
}

SweepPoint
evalPoint(const ar::model::CoreConfig &config,
          const ar::model::AppParams &app,
          const ar::model::UncertaintySpec &spec, std::size_t trials,
          std::uint64_t seed, std::size_t threads)
{
    const std::vector<ar::model::CoreConfig> designs{config};
    ar::explore::SweepConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    cfg.threads = threads;
    ar::explore::DesignSpaceEvaluator eval(designs, app, spec, cfg);
    ar::risk::QuadraticRisk fn;
    const double certain =
        ar::model::HillMartyEvaluator::nominalSpeedup(config, app.f,
                                                      app.c);
    const auto outcomes = eval.evaluateAll(fn, certain);
    SweepPoint p;
    p.expected = outcomes[0].expected;
    p.stddev = outcomes[0].stddev;
    return p;
}

} // namespace ar::bench
