/**
 * @file
 * Figure 10 reproduction: classification of the conventional
 * (risk-oblivious performance-optimal) design over the
 * (sigma_app, sigma_arch) grid for all four application classes,
 * using the quadratic risk function over the full enumerated design
 * space.
 */

#include <cstdio>
#include <map>
#include <memory>

#include "common.hh"
#include "explore/optimality.hh"
#include "report/csv.hh"
#include "util/string_utils.hh"

namespace
{

char
shortLabel(ar::explore::DesignClass cls)
{
    switch (cls) {
      case ar::explore::DesignClass::Opt:
        return 'O';
      case ar::explore::DesignClass::PerfOptOnly:
        return 'P';
      case ar::explore::DesignClass::SubOpt:
        return 'S';
      case ar::explore::DesignClass::SubOptTradeoff:
        return 'T';
    }
    return '?';
}

} // namespace

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "1000");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));

    ar::bench::banner(
        "Figure 10: impact of uncertainty on design optimality",
        "O=Opt  P=PerfOptOnly  S=SubOpt  T=SubOpt+Tradeoff "
        "(quadratic risk)");

    const auto designs = ar::explore::enumerateDesigns();
    std::printf("design space: %zu configurations, %zu MC trials "
                "per design\n\n",
                designs.size(), trials);
    const std::vector<double> sigmas{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"app", "sigma_app", "sigma_arch", "class",
                  "conventional", "perf_opt", "risk_opt"});
    }

    ar::risk::QuadraticRisk fn;
    std::map<char, int> totals;

    for (const auto &app : ar::model::standardApps()) {
        const std::size_t conv =
            ar::bench::conventionalIndex(designs, app);
        const double ref =
            ar::bench::conventionalReference(designs, app);
        std::printf("%s (conventional design: %s)\n",
                    app.name.c_str(),
                    designs[conv].describe().c_str());
        std::printf("  sigma_arch rows (top = 1.0), sigma_app "
                    "columns (left = 0.0)\n");

        for (auto it = sigmas.rbegin(); it != sigmas.rend(); ++it) {
            const double s_arch = *it;
            std::printf("  %.1f | ", s_arch);
            for (double s_app : sigmas) {
                const auto spec = ar::model::UncertaintySpec::appArch(
                    s_app, s_arch);
                ar::explore::SweepConfig cfg;
                cfg.trials = trials;
                cfg.seed = seed;
                cfg.threads = threads;
                ar::explore::DesignSpaceEvaluator eval(designs, app,
                                                       spec, cfg);
                const auto outcomes = eval.evaluateAll(fn, ref);
                const auto res =
                    ar::explore::classifyDesigns(outcomes, conv);
                const char label = shortLabel(res.cls);
                ++totals[label];
                std::printf("%c ", label);
                if (csv) {
                    csv->row({app.name,
                              ar::util::formatDouble(s_app),
                              ar::util::formatDouble(s_arch),
                              std::string(1, label),
                              designs[conv].describe(),
                              designs[res.perf_opt].describe(),
                              designs[res.risk_opt].describe()});
                }
            }
            std::printf("\n");
        }
        std::printf("       ");
        for (double s_app : sigmas)
            std::printf("%.1f ", s_app);
        std::printf("  <- sigma_app\n\n");
    }

    std::printf("summary over all grid points:\n");
    for (const auto &[label, count] : totals)
        std::printf("  %c: %d\n", label, count);
    std::printf("\nShape check vs the paper: the conventional design "
                "stops being optimal\nonce even ~20%% architecture "
                "uncertainty is present, and a perf/risk\ntrade-off "
                "space (T) dominates much of the grid.\n");
    return 0;
}
