/**
 * @file
 * Table 4 reproduction: yield rates per core size under the
 * calibrated negative-binomial yield model, compared against the
 * paper's published (rounded) numbers.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "model/yield.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("csv", "", "optional CSV output path");
    if (!opts.parse(argc, argv))
        return 0;

    ar::bench::banner(
        "Table 4: yield rates",
        "yield(A) = (1 + d*A/alpha)^-alpha, calibrated to the paper");

    const std::vector<double> sizes{8.0, 16.0, 32.0, 64.0, 128.0};
    const std::vector<double> paper{0.98, 0.96, 0.92, 0.85, 0.75};

    ar::report::Table table;
    table.header({"core size", "paper yield", "model yield", "delta"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const double y = ar::model::yieldRate(sizes[i]);
        table.row({ar::util::formatFixed(sizes[i], 0),
                   ar::util::formatFixed(paper[i], 2),
                   ar::util::formatFixed(y, 4),
                   ar::util::formatFixed(y - paper[i], 4)});
    }
    std::printf("%s\n", table.render().c_str());

    const auto csv_path = opts.getString("csv");
    if (!csv_path.empty()) {
        ar::report::CsvWriter csv(csv_path);
        csv.row({"size", "paper", "model"});
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            csv.row(ar::util::formatFixed(sizes[i], 0),
                    {paper[i], ar::model::yieldRate(sizes[i])});
        }
    }
    return 0;
}
