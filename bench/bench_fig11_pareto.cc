/**
 * @file
 * Figure 11 reproduction: the trade-off space between the
 * performance-optimal and the risk-optimal design for LPHC --
 * Pareto curves at several input uncertainty levels, plus the
 * "mitigate most of the risk for a few percent of performance"
 * headline numbers.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "explore/optimality.hh"
#include "explore/pareto.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "3000");
    opts.declare("app", "LPHC", "application class");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));
    const auto app = ar::model::appByName(opts.getString("app"));

    ar::bench::banner(
        "Figure 11: performance-risk trade-off space (" + app.name +
            ")",
        "Pareto-optimal designs at several (sigma_app, sigma_arch) "
        "levels");

    const auto designs = ar::explore::enumerateDesigns();
    const std::size_t conv =
        ar::bench::conventionalIndex(designs, app);
    const double ref = ar::bench::conventionalReference(designs, app);
    ar::risk::QuadraticRisk fn;

    const std::pair<double, double> levels[] = {
        {0.2, 0.2}, {0.4, 0.2}, {0.2, 0.4}, {0.6, 0.6}};

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"sigma_app", "sigma_arch", "design", "expected",
                  "risk_norm"});
    }

    for (const auto &[s_app, s_arch] : levels) {
        ar::explore::SweepConfig cfg;
        cfg.trials = trials;
        cfg.seed = seed;
        cfg.threads = threads;
        ar::explore::DesignSpaceEvaluator eval(
            designs, app,
            ar::model::UncertaintySpec::appArch(s_app, s_arch), cfg);
        const auto outcomes = eval.evaluateAll(fn, ref);
        const auto front = ar::explore::paretoFront(outcomes);
        const double perf_opt_risk = outcomes[front.front()].risk;

        std::printf("(sigma_app=%.1f, sigma_arch=%.1f)  "
                    "conventional: E=%.4f R(norm)=1.000\n",
                    s_app, s_arch, outcomes[conv].expected);
        ar::report::Table table;
        table.header({"Pareto design", "E[perf]", "risk/perf-opt",
                      "risk mitigated", "perf cost"});
        const auto &best = outcomes[front.front()];
        for (std::size_t idx : front) {
            const auto &o = outcomes[idx];
            // Normalize risk to the performance-optimal design as in
            // the paper's Figure 11.
            table.row(
                {designs[idx].describe(),
                 ar::util::formatFixed(o.expected, 4),
                 ar::util::formatFixed(o.risk / perf_opt_risk, 3),
                 ar::util::formatFixed(
                     100.0 * (1.0 - o.risk / perf_opt_risk), 1) +
                     "%",
                 ar::util::formatFixed(
                     100.0 * (1.0 - o.expected / best.expected), 2) +
                     "%"});
            if (csv) {
                csv->row({ar::util::formatDouble(s_app),
                          ar::util::formatDouble(s_arch),
                          designs[idx].describe(),
                          ar::util::formatDouble(o.expected),
                          ar::util::formatDouble(o.risk /
                                                 perf_opt_risk)});
            }
        }
        std::printf("%s", table.render().c_str());

        const auto &tail = outcomes[front.back()];
        std::printf("=> risk-optimal design mitigates %.1f%% of the "
                    "perf-optimal design's risk\n   at a %.2f%% "
                    "expected-performance cost.\n\n",
                    100.0 * (1.0 - tail.risk / perf_opt_risk),
                    100.0 * (1.0 - tail.expected / best.expected));
    }
    return 0;
}
