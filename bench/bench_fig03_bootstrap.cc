/**
 * @file
 * Figure 3 reproduction: the bootstrapping pipeline on log-normal
 * samples -- initial histogram, Box-Cox-transformed histogram with
 * the fitted Gaussian, and the back-transformed (bootstrapped)
 * distribution laid over the original data.
 */

#include <cstdio>

#include "common.hh"
#include "dist/lognormal.hh"
#include "extract/extract.hh"
#include "report/ascii_plot.hh"
#include "report/csv.hh"
#include "stats/histogram.hh"
#include "stats/quantiles.hh"
#include "stats/summary.hh"
#include "util/rng.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("samples", "200", "observed sample count");
    opts.declare("seed", "1", "random seed");
    opts.declare("csv", "", "optional CSV output path");
    if (!opts.parse(argc, argv))
        return 0;

    ar::bench::banner("Figure 3: Box-Cox bootstrapping example",
                      "LogNormal observations -> transform -> fit -> "
                      "back-transform");

    const auto n =
        static_cast<std::size_t>(opts.getInt("samples"));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed"));

    // Hidden ground truth (the paper's Figure 3 uses log-normal).
    ar::dist::LogNormal truth(1.0, 0.5);
    ar::util::Rng rng(seed);
    const auto observed = truth.sampleMany(n, rng);

    std::printf("a) initial samples (n=%zu)\n", n);
    std::printf("%s\n",
                ar::report::histogramChart(
                    ar::stats::Histogram::fromData(observed, 12), 40)
                    .c_str());

    const auto res = ar::extract::extractUncertainty(observed);
    if (res.method != ar::extract::ExtractionMethod::BoxCoxBootstrap) {
        std::printf("unexpected: Box-Cox gate failed\n");
        return 1;
    }
    std::printf("Box-Cox lambda = %.4f (normality confidence %.3f)\n",
                res.boxcox.transform.lambda, res.boxcox.confidence);

    const auto transformed = res.boxcox.transform.apply(observed);
    std::printf("\nb) transformed samples + fitted Gaussian "
                "(mu=%.3f, sigma=%.3f)\n",
                res.gauss.mean, res.gauss.stddev);
    std::printf("%s\n",
                ar::report::histogramChart(
                    ar::stats::Histogram::fromData(transformed, 12),
                    40)
                    .c_str());

    ar::util::Rng rng2(seed + 1);
    const auto bootstrapped =
        res.distribution->sampleMany(10000, rng2);
    std::printf("c) bootstrapped distribution (10k draws)\n");
    std::printf("%s\n",
                ar::report::histogramChart(
                    ar::stats::Histogram::fromData(bootstrapped, 12),
                    40)
                    .c_str());

    const auto s_obs = ar::stats::summarize(observed);
    const auto s_boot = ar::stats::summarize(bootstrapped);
    std::printf("observed      mean %.4f  sd %.4f\n", s_obs.mean,
                s_obs.stddev);
    std::printf("bootstrapped  mean %.4f  sd %.4f\n", s_boot.mean,
                s_boot.stddev);
    std::printf("truth         mean %.4f  sd %.4f\n", truth.mean(),
                truth.stddev());

    ar::util::Rng rng3(seed + 2);
    const auto from_truth = truth.sampleMany(10000, rng3);
    std::printf("KS(bootstrapped, truth) = %.4f\n",
                ar::stats::ksStatistic(bootstrapped, from_truth));

    const auto csv_path = opts.getString("csv");
    if (!csv_path.empty()) {
        ar::report::CsvWriter csv(csv_path);
        csv.row({"series", "mean", "stddev"});
        csv.row("observed", {s_obs.mean, s_obs.stddev});
        csv.row("bootstrapped", {s_boot.mean, s_boot.stddev});
        csv.row("truth", {truth.mean(), truth.stddev()});
    }
    return 0;
}
