/**
 * @file
 * Figure 6 reproduction: performance distributions under uncertainty
 * for the paper's three example designs + application pairings
 * (Sym+HPLC, Asym+LPLC, Hetero+LPHC).  Performance is normalized to
 * the design's own certain (risk-oblivious) speedup, matching the
 * paper's x-axis.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "util/string_utils.hh"
#include "core/framework.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "report/ascii_plot.hh"
#include "report/csv.hh"
#include "stats/histogram.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "10000");
    opts.declare("sigma", "0.2", "injected uncertainty level");
    if (!opts.parse(argc, argv))
        return 0;

    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const double sigma = opts.getDouble("sigma");

    ar::bench::banner(
        "Figure 6: performance distributions under uncertainty",
        "all five uncertainty types injected at sigma = " +
            ar::util::formatDouble(sigma));

    struct Case
    {
        const char *label;
        ar::model::CoreConfig config;
        ar::model::AppParams app;
    };
    const Case cases[] = {
        {"Sym Cores (32x8) + HPLC", ar::model::symCores(),
         ar::model::appHPLC()},
        {"Asym Cores (1x128 + 16x8) + LPLC", ar::model::asymCores(),
         ar::model::appLPLC()},
        {"Hetero Cores (2x8+1x16+1x32+1x64+1x128) + LPHC",
         ar::model::heteroCores(), ar::model::appLPHC()},
    };

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"case", "bin_center", "fraction"});
    }

    for (const auto &c : cases) {
        ar::core::Framework fw({trials, "latin-hypercube"});
        fw.setSystem(
            ar::model::buildHillMartySystem(c.config.numTypes()));
        const auto in = ar::model::groundTruthBindings(
            c.config, c.app, ar::model::UncertaintySpec::all(sigma));
        const double certain =
            ar::model::HillMartyEvaluator::nominalSpeedup(
                c.config, c.app.f, c.app.c);
        auto samples = fw.propagate("Speedup", in, seed);
        for (auto &s : samples)
            s /= certain;

        std::printf("%s\n", c.label);
        std::printf("certain speedup %.3f; normalized distribution:\n",
                    certain);
        ar::stats::Histogram h(0.0, 1.4, 14);
        h.addAll(samples);
        std::printf("%s", ar::report::histogramChart(h, 46).c_str());
        const auto sum = ar::stats::summarize(samples);
        std::printf("mean %.4f  sd %.4f  min %.4f  max %.4f  "
                    "skew %.3f\n\n",
                    sum.mean, sum.stddev, sum.min, sum.max,
                    sum.skewness);

        if (csv) {
            for (std::size_t b = 0; b < h.bins(); ++b) {
                csv->row(c.label,
                         {h.binCenter(b), h.fraction(b)});
            }
        }
    }
    return 0;
}
