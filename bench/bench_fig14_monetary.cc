/**
 * @file
 * Figure 14 / Table 5 reproduction: from architectural risk to
 * financial risk.  Compares the risk-oblivious design, the risk-aware
 * design chosen with the hidden ground truth, and the risk-aware
 * design chosen from only k = 50 observed samples, all priced with
 * the Table-5 monetary bins at sigma_app = sigma_arch = 0.2 (LPHC).
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "explore/optimality.hh"
#include "report/ascii_plot.hh"
#include "report/csv.hh"
#include "stats/histogram.hh"
#include "util/string_utils.hh"

namespace
{

struct Candidate
{
    std::string label;
    std::size_t design = 0;
    double avg_perf = 0.0;
    double arch_risk_dollars = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "4000");
    opts.declare("app", "LPHC", "application class");
    opts.declare("sigma", "0.2", "sigma_app = sigma_arch level");
    opts.declare("k", "50", "observed samples for the approximation");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));
    const auto app = ar::model::appByName(opts.getString("app"));
    const double sigma = opts.getDouble("sigma");
    const auto k = static_cast<std::size_t>(opts.getInt("k"));

    ar::bench::banner(
        "Figure 14: binning of design results under uncertainty "
        "(Table 5 pricing)",
        app.name + " at sigma_app = sigma_arch = " +
            ar::util::formatDouble(sigma));

    const auto designs = ar::explore::enumerateDesigns();
    const std::size_t conv =
        ar::bench::conventionalIndex(designs, app);
    const double ref = ar::bench::conventionalReference(designs, app);
    const auto money = ar::risk::MonetaryRisk::table5();
    const auto spec =
        ar::model::UncertaintySpec::appArch(sigma, sigma);

    // Ground-truth sweep (keep samples so histograms can be drawn).
    ar::explore::SweepConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.keep_samples = true;
    ar::explore::DesignSpaceEvaluator eval(designs, app, spec, cfg);
    const auto truth = eval.evaluateAll(money, ref);

    // Approximate sweep with k observations per input.
    ar::explore::SweepConfig ap_cfg;
    ap_cfg.trials = trials;
    ap_cfg.seed = seed + 1;
    ap_cfg.approx_k = k;
    ar::explore::DesignSpaceEvaluator ap_eval(designs, app, spec,
                                              ap_cfg);
    const auto approx = ap_eval.evaluateAll(money, ref);

    std::vector<Candidate> candidates(3);
    candidates[0].label = "Risk-oblivious";
    candidates[0].design = conv;
    candidates[1].label = "Risk-aware (ground truth)";
    candidates[1].design = ar::explore::argminRisk(truth);
    candidates[2].label =
        "Approx risk-aware (k=" + std::to_string(k) + ")";
    candidates[2].design = ar::explore::argminRisk(approx);

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"candidate", "design", "avg_perf",
                  "arch_risk_dollars"});
    }

    for (auto &c : candidates) {
        // All candidates are scored under the GROUND TRUTH sweep.
        c.avg_perf = truth[c.design].expected;
        c.arch_risk_dollars = truth[c.design].risk;

        std::printf("%s: %s\n", c.label.c_str(),
                    designs[c.design].describe().c_str());
        std::printf("  Avg. Perf: %.2f   ArchR: $%.2f per chip\n",
                    c.avg_perf, c.arch_risk_dollars);

        const auto &samples = eval.samples(c.design);
        ar::stats::Histogram h(0.0, 2.0, 20);
        h.addAll(samples);
        std::printf("%s", ar::report::histogramChart(h, 40).c_str());

        // Price-bin mass.
        std::size_t bins[5] = {0, 0, 0, 0, 0};
        for (double s : samples) {
            if (s < 0.6)
                ++bins[0];
            else if (s < 0.8)
                ++bins[1];
            else if (s < 0.9)
                ++bins[2];
            else if (s < 1.0)
                ++bins[3];
            else
                ++bins[4];
        }
        const double n = static_cast<double>(samples.size());
        std::printf("  $100: %.1f%%  $200: %.1f%%  $300: %.1f%%  "
                    "$600: %.1f%%  $1000: %.1f%%\n\n",
                    100.0 * bins[0] / n, 100.0 * bins[1] / n,
                    100.0 * bins[2] / n, 100.0 * bins[3] / n,
                    100.0 * bins[4] / n);
        if (csv) {
            csv->row({c.label, designs[c.design].describe(),
                      ar::util::formatDouble(c.avg_perf),
                      ar::util::formatDouble(c.arch_risk_dollars)});
        }
    }

    std::printf("=> $%.2f per chip saved by the ground-truth "
                "risk-aware design;\n   $%.2f per chip saved by the "
                "k=%zu approximation.\n",
                candidates[0].arch_risk_dollars -
                    candidates[1].arch_risk_dollars,
                candidates[0].arch_risk_dollars -
                    candidates[2].arch_risk_dollars,
                k);
    return 0;
}
