/**
 * @file
 * Extension experiment: risk-aware accelerator adoption with the
 * LogCA model (Section 2.1 of the paper names accelerator models as
 * a direct application of the framework).  An architect deciding
 * whether to offload must pick a minimum granularity; uncertainty in
 * the accelerator's peak acceleration A and interface latency L
 * moves the break-even point and puts the promised speedup at risk.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common.hh"
#include "core/framework.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "model/logca.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "risk/arch_risk.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "10000");
    opts.declare("accel", "16", "datasheet peak acceleration A");
    opts.declare("accel-cv", "0.3",
                 "coefficient of variation on A");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const double a_nom = opts.getDouble("accel");
    const double a_cv = opts.getDouble("accel-cv");

    ar::bench::banner(
        "Extension: risk-aware accelerator offload (LogCA)",
        "promised vs expected speedup across granularity; A ~ "
        "LogNormal, L ~ TruncNormal");

    ar::model::LogCaParams p;
    p.latency = 0.01;
    p.overhead = 2.0;
    p.compute = 1.0;
    p.accel = a_nom;
    p.beta = 1.0;

    ar::core::Framework fw({trials, "latin-hypercube"});
    fw.setSystem(ar::model::buildLogCaSystem());

    ar::mc::InputBindings in;
    in.fixed["C"] = p.compute;
    in.fixed["o"] = p.overhead;
    in.fixed["beta"] = p.beta;
    in.uncertain["A"] = std::make_shared<ar::dist::LogNormal>(
        ar::dist::LogNormal::fromMeanStddev(a_nom, a_cv * a_nom));
    in.uncertain["L"] = std::make_shared<ar::dist::TruncatedNormal>(
        p.latency, 0.5 * p.latency, 0.0, 10.0 * p.latency);

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"granularity", "promised", "expected", "p5",
                  "risk"});
    }

    ar::report::Table table;
    table.header({"granularity g", "promised", "E[speedup]",
                  "5th pct", "risk (quad)", "P(win)"});
    ar::risk::QuadraticRisk fn;
    for (double g :
         {1.0, 2.0, 3.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 8192.0}) {
        auto bound = in;
        bound.fixed["g"] = g;
        const double promised =
            ar::model::LogCaEvaluator::speedup(p, g);
        const auto res =
            fw.analyze("Speedup", bound, fn, promised, seed);
        std::vector<double> sorted(res.samples);
        std::sort(sorted.begin(), sorted.end());
        const double p5 =
            sorted[static_cast<std::size_t>(0.05 * sorted.size())];
        double wins = 0.0;
        for (double s : res.samples)
            wins += s >= 1.0;
        table.row({ar::util::formatFixed(g, 0),
                   ar::util::formatFixed(promised, 3),
                   ar::util::formatFixed(res.expected(), 3),
                   ar::util::formatFixed(p5, 3),
                   ar::util::formatFixed(res.risk, 4),
                   ar::util::formatFixed(
                       100.0 * wins / res.samples.size(), 1) +
                       "%"});
        if (csv) {
            csv->row(ar::util::formatDouble(g),
                     {promised, res.expected(), p5, res.risk});
        }
    }
    std::printf("%s\n", table.render().c_str());

    const double g1_nominal =
        ar::model::LogCaEvaluator::breakEvenGranularity(p);
    std::printf("nominal break-even granularity: %.2f\n", g1_nominal);
    std::printf("\nReading: at small granularities the offload "
                "decision is fragile --\nthe promised win can vanish "
                "(P(win) < 100%%) even though the datasheet\nsays "
                "otherwise.  Risk-aware adoption picks g where the "
                "5th percentile,\nnot the mean, clears 1.0.\n");
    return 0;
}
