/**
 * @file
 * Ablation: Box-Cox bootstrap versus KDE extraction quality.
 * For the paper's three kinds of hidden inputs (log-normal core
 * performance, normalized-binomial f, Bernoulli x LogNormal design
 * risk), measures the KS distance between the extracted and the true
 * distribution as the observation budget k grows.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "dist/combinators.hh"
#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "extract/extract.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "stats/quantiles.hh"
#include "util/string_utils.hh"

namespace
{

double
ksToTruth(const ar::dist::Distribution &est,
          const ar::dist::Distribution &truth, std::uint64_t seed)
{
    ar::util::Rng rng(seed);
    const auto a = est.sampleMany(4000, rng);
    const auto b = truth.sampleMany(4000, rng);
    return ar::stats::ksStatistic(a, b);
}

} // namespace

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("reps", "5", "repetitions per point");
    opts.declare("csv", "", "optional CSV output path");
    if (!opts.parse(argc, argv))
        return 0;
    const int reps = static_cast<int>(opts.getInt("reps"));

    ar::bench::banner("Ablation: Box-Cox bootstrap vs KDE extraction",
                      "KS distance to the hidden truth vs sample "
                      "budget k");

    struct Source
    {
        std::string label;
        ar::dist::DistPtr truth;
    };
    std::vector<Source> sources;
    sources.push_back(
        {"LogNormal core perf",
         std::make_shared<ar::dist::LogNormal>(
             ar::dist::LogNormal::fromMeanStddev(8.0, 1.6))});
    sources.push_back(
        {"NormalizedBinomial f",
         std::make_shared<ar::dist::NormalizedBinomial>(
             ar::dist::NormalizedBinomial::fromMeanStddev(0.9,
                                                          0.02))});
    sources.push_back(
        {"Bernoulli x LogNormal",
         std::make_shared<ar::dist::Product>(
             std::make_shared<ar::dist::Bernoulli>(0.9),
             std::make_shared<ar::dist::LogNormal>(
                 ar::dist::LogNormal::fromMeanStddev(8.0, 1.6)))});

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"source", "k", "pipeline_ks", "kde_ks",
                  "boxcox_share"});
    }

    ar::report::Table table;
    table.header({"hidden source", "k", "pipeline KS", "KDE-only KS",
                  "Box-Cox taken"});
    for (const auto &src : sources) {
        for (std::size_t k : {20, 50, 200, 1000}) {
            double pipe_ks = 0.0, kde_ks = 0.0;
            int boxcox_taken = 0;
            for (int rep = 0; rep < reps; ++rep) {
                ar::util::Rng rng(7000 + rep);
                const auto observed = src.truth->sampleMany(k, rng);

                const auto pipe =
                    ar::extract::extractUncertainty(observed);
                ar::extract::ExtractionConfig kde_cfg;
                kde_cfg.force_kde = true;
                const auto kde = ar::extract::extractUncertainty(
                    observed, kde_cfg);

                pipe_ks += ksToTruth(*pipe.distribution, *src.truth,
                                     8000 + rep);
                kde_ks += ksToTruth(*kde.distribution, *src.truth,
                                    8000 + rep);
                boxcox_taken +=
                    pipe.method ==
                    ar::extract::ExtractionMethod::BoxCoxBootstrap;
            }
            pipe_ks /= reps;
            kde_ks /= reps;
            table.row({src.label, std::to_string(k),
                       ar::util::formatFixed(pipe_ks, 4),
                       ar::util::formatFixed(kde_ks, 4),
                       std::to_string(boxcox_taken) + "/" +
                           std::to_string(reps)});
            if (csv) {
                csv->row({src.label, std::to_string(k),
                          ar::util::formatDouble(pipe_ks),
                          ar::util::formatDouble(kde_ks),
                          ar::util::formatDouble(
                              static_cast<double>(boxcox_taken) /
                              reps)});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Expected shape: the gated pipeline tracks the better branch\n"
        "per source -- Box-Cox for smooth positively-skewed data,\n"
        "KDE for the discrete and atom-at-zero sources.\n");
    return 0;
}
