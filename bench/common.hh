/**
 * @file
 * Shared helpers for the experiment-reproduction benches: standard
 * option sets, the enumerated design space, and conventional-design
 * lookup.
 */

#ifndef AR_BENCH_COMMON_HH
#define AR_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "model/app.hh"
#include "model/core_config.hh"
#include "util/cli.hh"

namespace ar::bench
{

/** Declare the options shared by every experiment bench. */
void declareCommonOptions(ar::util::CliOptions &opts,
                          const std::string &default_trials);

/**
 * Index of the conventional (risk-oblivious performance-optimal)
 * design: the arg-max of nominal speedup with no uncertainty.
 */
std::size_t conventionalIndex(
    const std::vector<ar::model::CoreConfig> &designs,
    const ar::model::AppParams &app);

/** Nominal speedup of the conventional design (the reference P). */
double conventionalReference(
    const std::vector<ar::model::CoreConfig> &designs,
    const ar::model::AppParams &app);

/** Print the standard bench banner. */
void banner(const std::string &title, const std::string &what);

} // namespace ar::bench

#endif // AR_BENCH_COMMON_HH
