/**
 * @file
 * Ablation: effect of the risk-function choice (step, linear,
 * quadratic, Table-5 monetary) on which design is risk-optimal and
 * how much risk it mitigates -- the "C is subjective to the system
 * designer" knob of Section 2.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "explore/optimality.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "3000");
    opts.declare("app", "LPHC", "application class");
    opts.declare("sigma", "0.2", "sigma_app = sigma_arch level");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));
    const auto app = ar::model::appByName(opts.getString("app"));
    const double sigma = opts.getDouble("sigma");

    ar::bench::banner("Ablation: risk-function choice",
                      "risk-optimal design per cost function, " +
                          app.name + " at sigma = " +
                          ar::util::formatDouble(sigma));

    const auto designs = ar::explore::enumerateDesigns();
    const std::size_t conv =
        ar::bench::conventionalIndex(designs, app);
    const double ref = ar::bench::conventionalReference(designs, app);
    const auto spec =
        ar::model::UncertaintySpec::appArch(sigma, sigma);

    struct Entry
    {
        std::string label;
        std::unique_ptr<ar::risk::RiskFunction> fn;
    };
    std::vector<Entry> fns;
    fns.push_back({"step", std::make_unique<ar::risk::StepRisk>()});
    fns.push_back(
        {"linear", std::make_unique<ar::risk::LinearRisk>()});
    fns.push_back(
        {"quadratic", std::make_unique<ar::risk::QuadraticRisk>()});
    fns.push_back({"monetary (Table 5)",
                   std::make_unique<ar::risk::MonetaryRisk>(
                       ar::risk::MonetaryRisk::table5())});

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"risk_fn", "risk_opt_design", "conv_risk",
                  "opt_risk", "mitigated_pct"});
    }

    ar::report::Table table;
    table.header({"risk function", "risk-optimal design", "E[perf]",
                  "conv risk", "opt risk", "mitigated"});
    for (const auto &entry : fns) {
        ar::explore::SweepConfig cfg;
        cfg.trials = trials;
        cfg.seed = seed;
        cfg.threads = threads;
        ar::explore::DesignSpaceEvaluator eval(designs, app, spec,
                                               cfg);
        const auto outcomes = eval.evaluateAll(*entry.fn, ref);
        const auto risk_opt = ar::explore::argminRisk(outcomes);
        const double mitigated =
            100.0 * (1.0 - outcomes[risk_opt].risk /
                               std::max(outcomes[conv].risk, 1e-12));
        table.row({entry.label, designs[risk_opt].describe(),
                   ar::util::formatFixed(
                       outcomes[risk_opt].expected, 4),
                   ar::util::formatFixed(outcomes[conv].risk, 4),
                   ar::util::formatFixed(outcomes[risk_opt].risk, 4),
                   ar::util::formatFixed(mitigated, 1) + "%"});
        if (csv) {
            csv->row({entry.label, designs[risk_opt].describe(),
                      ar::util::formatDouble(outcomes[conv].risk),
                      ar::util::formatDouble(outcomes[risk_opt].risk),
                      ar::util::formatDouble(mitigated)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: heavier-tailed cost functions (step "
                "-> quadratic)\npush the optimum toward more "
                "symmetric, lower-variance designs.\n");
    return 0;
}
