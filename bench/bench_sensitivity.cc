/**
 * @file
 * Companion analysis to Figures 7-9: Sobol variance decomposition of
 * CMP speedup.  Where the paper toggles one uncertainty type at a
 * time to see which input drives the output, Sobol first-order and
 * total indices answer the same question in one pass, including the
 * interaction share the leave-one-out plots can only hint at.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "core/framework.hh"
#include "mc/sensitivity.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "4096");
    opts.declare("sigma", "0.2", "uncertainty level (all types)");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const double sigma = opts.getDouble("sigma");
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));

    ar::bench::banner(
        "Sensitivity: Sobol variance decomposition of speedup",
        "which input uncertainty drives each design, sigma = " +
            ar::util::formatDouble(sigma));

    struct Case
    {
        const char *label;
        ar::model::CoreConfig config;
        ar::model::AppParams app;
    };
    const Case cases[] = {
        {"Sym Cores + HPLC", ar::model::symCores(),
         ar::model::appHPLC()},
        {"Asym Cores + LPHC", ar::model::asymCores(),
         ar::model::appLPHC()},
        {"Hetero Cores + LPHC", ar::model::heteroCores(),
         ar::model::appLPHC()},
    };

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"case", "input", "first_order", "total"});
    }

    for (const auto &c : cases) {
        ar::core::Framework fw;
        fw.setSystem(
            ar::model::buildHillMartySystem(c.config.numTypes()));
        const auto in = ar::model::groundTruthBindings(
            c.config, c.app, ar::model::UncertaintySpec::all(sigma));

        ar::util::Rng rng(seed);
        ar::mc::SensitivityConfig scfg;
        scfg.trials = trials;
        scfg.threads = threads;
        const auto res = ar::mc::sobolIndices(
            fw.system().resolve("Speedup"), in, scfg, rng);

        std::printf("%s  (E=%.3f, Var=%.3f)\n", c.label,
                    res.output_mean, res.output_variance);
        ar::report::Table table;
        table.header({"input", "first-order S_i", "total ST_i",
                      "interaction share"});
        double sum_first = 0.0;
        for (const auto &idx : res.indices) {
            table.row({idx.input,
                       ar::util::formatFixed(idx.first_order, 3),
                       ar::util::formatFixed(idx.total, 3),
                       ar::util::formatFixed(
                           idx.total - idx.first_order, 3)});
            sum_first += idx.first_order;
            if (csv) {
                csv->row({c.label, idx.input,
                          ar::util::formatDouble(idx.first_order),
                          ar::util::formatDouble(idx.total)});
            }
        }
        std::printf("%s", table.render().c_str());
        std::printf("sum of first-order indices: %.3f "
                    "(1 - sum = interaction-driven variance)\n\n",
                    sum_first);
    }
    std::printf(
        "Shape checks vs Figures 7-9: the big core's P dominates the\n"
        "asymmetric design; per-type indices flatten out for the\n"
        "heterogeneous design; interactions (non-additivity, Fig. 9)\n"
        "appear as total > first-order.\n");
    return 0;
}
