#include "common.hh"

#include <cstdio>

#include "model/hill_marty.hh"

namespace ar::bench
{

void
declareCommonOptions(ar::util::CliOptions &opts,
                     const std::string &default_trials)
{
    opts.declare("trials", default_trials,
                 "Monte-Carlo trials per evaluation");
    opts.declare("seed", "1", "random seed");
    opts.declare("threads", "0",
                 "worker threads (0 = all cores); results are "
                 "identical for any value");
    opts.declare("csv", "", "optional CSV output path");
}

std::size_t
conventionalIndex(const std::vector<ar::model::CoreConfig> &designs,
                  const ar::model::AppParams &app)
{
    std::size_t best = 0;
    double best_s = -1.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const double s = ar::model::HillMartyEvaluator::nominalSpeedup(
            designs[i], app.f, app.c);
        if (s > best_s) {
            best_s = s;
            best = i;
        }
    }
    return best;
}

double
conventionalReference(
    const std::vector<ar::model::CoreConfig> &designs,
    const ar::model::AppParams &app)
{
    return ar::model::HillMartyEvaluator::nominalSpeedup(
        designs[conventionalIndex(designs, app)], app.f, app.c);
}

void
banner(const std::string &title, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================================\n\n");
}

} // namespace ar::bench
