/**
 * @file
 * Figure 12 reproduction: core configurations of the expected-
 * performance-optimal and architectural-risk-optimal designs for
 * LPHC across the (sigma_app, sigma_arch) grid.  Each cell reports
 * the winning configuration; the paper's histograms are the per-size
 * core counts of exactly these designs.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "explore/optimality.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "2000");
    opts.declare("app", "LPHC", "application class");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));
    const auto app = ar::model::appByName(opts.getString("app"));

    ar::bench::banner(
        "Figure 12: optimal core configurations (" + app.name + ")",
        "perf-optimal and risk-optimal designs per grid point");

    const auto designs = ar::explore::enumerateDesigns();
    const double ref = ar::bench::conventionalReference(designs, app);
    ar::risk::QuadraticRisk fn;
    const std::vector<double> sigmas{0.0, 0.5, 1.0};

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"sigma_app", "sigma_arch", "perf_opt", "risk_opt"});
    }

    ar::report::Table table;
    table.header({"sigma_app", "sigma_arch", "perf-optimal design",
                  "risk-optimal design"});
    // Track asymmetry to verify the paper's two trends.
    double perf_opt_largest_at_high_app = 0.0;
    double perf_opt_largest_at_high_arch = 0.0;

    for (double s_arch : sigmas) {
        for (double s_app : sigmas) {
            ar::explore::SweepConfig cfg;
            cfg.trials = trials;
            cfg.seed = seed;
            cfg.threads = threads;
            ar::explore::DesignSpaceEvaluator eval(
                designs, app,
                ar::model::UncertaintySpec::appArch(s_app, s_arch),
                cfg);
            const auto outcomes = eval.evaluateAll(fn, ref);
            const auto perf_opt =
                ar::explore::argmaxExpected(outcomes);
            const auto risk_opt = ar::explore::argminRisk(outcomes);
            table.row({ar::util::formatFixed(s_app, 1),
                       ar::util::formatFixed(s_arch, 1),
                       designs[perf_opt].describe(),
                       designs[risk_opt].describe()});
            if (csv) {
                csv->row({ar::util::formatDouble(s_app),
                          ar::util::formatDouble(s_arch),
                          designs[perf_opt].describe(),
                          designs[risk_opt].describe()});
            }
            const double largest =
                designs[perf_opt].types().front().area;
            if (s_app == 1.0 && s_arch == 0.0)
                perf_opt_largest_at_high_app = largest;
            if (s_app == 0.0 && s_arch == 1.0)
                perf_opt_largest_at_high_arch = largest;
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::printf(
        "Shape checks vs the paper:\n"
        " - high application uncertainty favours more asymmetric\n"
        "   perf-optimal designs (largest core %g)\n"
        " - high architecture uncertainty favours more symmetric,\n"
        "   spread-out designs (largest core %g)\n"
        " - risk-optimal designs are generally more symmetric than\n"
        "   perf-optimal ones.\n",
        perf_opt_largest_at_high_app,
        perf_opt_largest_at_high_arch);
    return 0;
}
