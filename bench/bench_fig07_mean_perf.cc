/**
 * @file
 * Figure 7 reproduction: expected performance (normalized to the
 * risk-unaware certain speedup) versus input uncertainty level, per
 * uncertainty type, for the three example designs and all four
 * application classes.
 */

#include <cstdio>

#include "common.hh"
#include "fig_sweep.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "6000");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));

    ar::bench::banner("Figure 7: uncertainty manifestation on "
                      "expected performance",
                      "E[perf]/certain vs input sigma, per type");

    struct Design
    {
        const char *label;
        ar::model::CoreConfig config;
    };
    const Design designs[] = {
        {"Sym Cores", ar::model::symCores()},
        {"Asym Cores", ar::model::asymCores()},
        {"Hetero Cores", ar::model::heteroCores()},
    };
    const std::vector<double> sigmas{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"design", "app", "legend", "sigma", "expected"});
    }

    for (const auto &design : designs) {
        for (const auto &app : ar::model::standardApps()) {
            std::printf("%s + %s\n", design.label, app.name.c_str());
            ar::report::Table table;
            std::vector<std::string> head{"legend"};
            for (double s : sigmas)
                head.push_back("s=" + ar::util::formatDouble(s));
            table.header(head);

            for (const auto &legend : ar::bench::figureLegends()) {
                std::vector<double> row;
                for (double s : sigmas) {
                    const auto spec = legend.make(s);
                    const auto p = ar::bench::evalPoint(
                        design.config, app, spec, trials, seed, threads);
                    row.push_back(p.expected);
                    if (csv) {
                        csv->row({design.label, app.name, legend.name,
                                  ar::util::formatDouble(s),
                                  ar::util::formatDouble(p.expected)});
                    }
                }
                table.rowNumeric(legend.name, row, 4);
            }
            std::printf("%s\n", table.render().c_str());
        }
    }
    std::printf(
        "Shape checks vs the paper:\n"
        " - 'perf only' stays ~1.0 for Sym (linear pass-through) and\n"
        "   rises above 1.0 for Hetero (max over several draws).\n"
        " - 'fab only' is flat in sigma (yield depends on size only).\n"
        " - heterogeneous designs are least sensitive to f/c\n"
        "   uncertainty but most sensitive to architecture\n"
        "   uncertainty.\n");
    return 0;
}
