/**
 * @file
 * Figure 8 reproduction: output uncertainty (stddev of normalized
 * performance) versus input uncertainty level, per uncertainty type,
 * for the paper's three example panels.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "fig_sweep.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "6000");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));

    ar::bench::banner("Figure 8: uncertainty manifestation on output "
                      "uncertainty",
                      "stddev(perf)/certain vs input sigma, per type");

    struct Panel
    {
        const char *label;
        ar::model::CoreConfig config;
        ar::model::AppParams app;
    };
    const Panel panels[] = {
        {"Sym Cores + HPLC", ar::model::symCores(),
         ar::model::appHPLC()},
        {"Asym Cores + HPHC", ar::model::asymCores(),
         ar::model::appHPHC()},
        {"Hetero Cores + LPHC", ar::model::heteroCores(),
         ar::model::appLPHC()},
    };
    const std::vector<double> sigmas{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"panel", "legend", "sigma", "output_sigma"});
    }

    for (const auto &panel : panels) {
        std::printf("%s\n", panel.label);
        ar::report::Table table;
        std::vector<std::string> head{"legend"};
        for (double s : sigmas)
            head.push_back("s=" + ar::util::formatDouble(s));
        table.header(head);
        for (const auto &legend : ar::bench::figureLegends()) {
            std::vector<double> row;
            for (double s : sigmas) {
                const auto p = ar::bench::evalPoint(
                    panel.config, panel.app, legend.make(s), trials,
                    seed, threads);
                row.push_back(p.stddev);
                if (csv) {
                    csv->row({panel.label, legend.name,
                              ar::util::formatDouble(s),
                              ar::util::formatDouble(p.stddev)});
                }
            }
            table.rowNumeric(legend.name, row, 4);
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("Shape checks vs the paper: output sigma grows with\n"
                "input sigma, mostly sub-linearly; the heterogeneous\n"
                "design is the most uncertainty-tolerant.\n");
    return 0;
}
