/**
 * @file
 * Ablation: Latin-hypercube versus plain Monte-Carlo sampling.
 * Measures the error of the expected-performance estimate against a
 * high-resolution reference as the trial budget grows -- the reason
 * the paper (and mcerp) use LHS.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "common.hh"
#include "core/framework.hh"
#include "math/numeric.hh"
#include "model/hill_marty.hh"
#include "model/uncertainty.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("reps", "20", "repetitions per point");
    opts.declare("csv", "", "optional CSV output path");
    if (!opts.parse(argc, argv))
        return 0;
    const int reps = static_cast<int>(opts.getInt("reps"));

    ar::bench::banner(
        "Ablation: Latin-hypercube vs plain Monte-Carlo",
        "mean-estimate error for Asym + LPHC at sigma = 0.2");

    const auto config = ar::model::asymCores();
    const auto app = ar::model::appLPHC();
    const auto in = ar::model::groundTruthBindings(
        config, app, ar::model::UncertaintySpec::all(0.2));

    // High-resolution reference.
    ar::core::Framework ref_fw({200000, "latin-hypercube"});
    ref_fw.setSystem(
        ar::model::buildHillMartySystem(config.numTypes()));
    const auto ref_samples = ref_fw.propagate("Speedup", in, 999);
    const double truth = ar::math::mean(ref_samples);
    std::printf("reference E[Speedup] = %.5f (200k LHS trials)\n\n",
                truth);

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"trials", "lhs_rmse", "mc_rmse", "ratio"});
    }

    ar::report::Table table;
    table.header({"trials", "LHS RMSE", "MC RMSE", "MC/LHS"});
    for (std::size_t trials : {64, 256, 1024, 4096}) {
        double lhs_se = 0.0, mc_se = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
            ar::core::Framework lhs_fw({trials, "latin-hypercube"});
            lhs_fw.setSystem(
                ar::model::buildHillMartySystem(config.numTypes()));
            ar::core::Framework mc_fw({trials, "monte-carlo"});
            mc_fw.setSystem(
                ar::model::buildHillMartySystem(config.numTypes()));
            const double lhs_mean = ar::math::mean(
                lhs_fw.propagate("Speedup", in, 1000 + rep));
            const double mc_mean = ar::math::mean(
                mc_fw.propagate("Speedup", in, 1000 + rep));
            lhs_se += (lhs_mean - truth) * (lhs_mean - truth);
            mc_se += (mc_mean - truth) * (mc_mean - truth);
        }
        const double lhs_rmse = std::sqrt(lhs_se / reps);
        const double mc_rmse = std::sqrt(mc_se / reps);
        table.row({std::to_string(trials),
                   ar::util::formatFixed(lhs_rmse, 5),
                   ar::util::formatFixed(mc_rmse, 5),
                   ar::util::formatFixed(mc_rmse / lhs_rmse, 2)});
        if (csv) {
            csv->row(std::to_string(trials),
                     {lhs_rmse, mc_rmse, mc_rmse / lhs_rmse});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: LHS at least matches plain MC and "
                "typically wins\nby a sizable factor on the mean "
                "estimate.\n");
    return 0;
}
