/**
 * @file
 * Figure 9 reproduction: non-accumulative output uncertainty for the
 * asymmetric architecture -- removing one input uncertainty at a
 * time can RAISE the output uncertainty, showing the inputs are not
 * additive.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "fig_sweep.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "util/string_utils.hh"

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    ar::bench::declareCommonOptions(opts, "8000");
    if (!opts.parse(argc, argv))
        return 0;
    const auto trials =
        static_cast<std::size_t>(opts.getInt("trials"));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed"));
    const auto threads =
        static_cast<std::size_t>(opts.getInt("threads"));

    ar::bench::banner("Figure 9: non-accumulative output uncertainty "
                      "(asymmetric cores)",
                      "stddev(perf)/certain with one type removed");

    const auto config = ar::model::asymCores();
    const ar::model::AppParams apps[] = {ar::model::appHPLC(),
                                         ar::model::appLPHC()};
    const std::vector<double> sigmas{0.2, 0.4, 0.6, 0.8, 1.0};

    const auto csv_path = opts.getString("csv");
    std::unique_ptr<ar::report::CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<ar::report::CsvWriter>(csv_path);
        csv->row({"app", "legend", "sigma", "output_sigma"});
    }

    for (const auto &app : apps) {
        std::printf("Asym Cores + %s\n", app.name.c_str());
        ar::report::Table table;
        std::vector<std::string> head{"legend"};
        for (double s : sigmas)
            head.push_back("s=" + ar::util::formatDouble(s));
        table.header(head);

        std::vector<std::vector<double>> rows;
        std::vector<std::string> names;
        for (const auto &legend : ar::bench::leaveOneOutLegends()) {
            std::vector<double> row;
            for (double s : sigmas) {
                const auto p = ar::bench::evalPoint(
                    config, app, legend.make(s), trials, seed, threads);
                row.push_back(p.stddev);
                if (csv) {
                    csv->row({app.name, legend.name,
                              ar::util::formatDouble(s),
                              ar::util::formatDouble(p.stddev)});
                }
            }
            table.rowNumeric(legend.name, row, 4);
            rows.push_back(row);
            names.push_back(legend.name);
        }
        std::printf("%s\n", table.render().c_str());

        // Count grid points where removing an input RAISED output
        // uncertainty relative to "all" -- the paper's headline.
        const auto &all_row = rows.back();
        int raised = 0;
        for (std::size_t l = 0; l + 1 < rows.size(); ++l) {
            for (std::size_t i = 0; i < sigmas.size(); ++i) {
                if (rows[l][i] > all_row[i])
                    ++raised;
            }
        }
        std::printf("points where LESS input uncertainty gave MORE "
                    "output uncertainty: %d\n\n",
                    raised);
    }
    return 0;
}
