/**
 * @file
 * archriskd: the risk-analysis service daemon.  Binds a TCP port,
 * accepts line-protocol requests (see serve/protocol.hh), and serves
 * propagate / sweep / sensitivity queries from a bounded worker pool
 * with per-request deadlines and typed failure responses.
 *
 *   ./build/tools/archriskd --port 7433 &
 *   ./build/tools/archrisk-client 127.0.0.1 7433 \
 *       upload amdahl examples/specs/amdahl.spec
 *   ./build/tools/archrisk-client 127.0.0.1 7433 run amdahl
 *
 * On SIGTERM/SIGINT the daemon drains: in-flight requests finish (or
 * are cancelled after --drain-timeout-ms), telemetry is flushed, and
 * the process exits 0.
 */

#include <csignal>
#include <cstdio>

#include "obs/telemetry.hh"
#include "serve/server.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace
{

ar::serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop(); // Async-signal-safe.
}

} // namespace

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("host", "127.0.0.1", "address to bind (IPv4)");
    opts.declare("port", "0", "TCP port (0 = ephemeral)");
    opts.declare("workers", "0",
                 "request worker threads (0 = all cores)");
    opts.declare("queue-cap", "64",
                 "bounded request queue; beyond it requests get "
                 "ERR OVERLOADED");
    opts.declare("max-request-bytes", "1048576",
                 "largest request line / UPLOAD body accepted");
    opts.declare("max-trials", "1000000",
                 "hard cap on trials per request");
    opts.declare("idle-timeout-ms", "30000",
                 "reap connections idle this long (0 = never)");
    opts.declare("deadline-ms", "0",
                 "default per-request deadline (0 = none)");
    opts.declare("drain-timeout-ms", "5000",
                 "drain grace before in-flight work is cancelled");
    opts.declare("degrade-watermark", "0",
                 "queue depth beyond which trial counts are clamped "
                 "(0 = off)");
    opts.declare("degrade-trials", "1000",
                 "trial clamp applied while degraded");
    opts.declare("metrics-json", "",
                 "write scraped metrics JSON here on exit");
    opts.declare("test-verbs", "",
                 "enable test-only verbs (STALL); never in "
                 "production", true);
    if (!opts.parse(argc, argv))
        return 0;

    ar::serve::ServerConfig cfg;
    cfg.host = opts.getString("host");
    cfg.port = static_cast<std::uint16_t>(opts.getInt("port"));
    cfg.workers = static_cast<std::size_t>(opts.getInt("workers"));
    cfg.queue_capacity =
        static_cast<std::size_t>(opts.getInt("queue-cap"));
    cfg.max_request_bytes = static_cast<std::size_t>(
        opts.getInt("max-request-bytes"));
    cfg.max_trials =
        static_cast<std::size_t>(opts.getInt("max-trials"));
    cfg.idle_timeout =
        std::chrono::milliseconds(opts.getInt("idle-timeout-ms"));
    cfg.default_deadline =
        std::chrono::milliseconds(opts.getInt("deadline-ms"));
    cfg.drain_timeout =
        std::chrono::milliseconds(opts.getInt("drain-timeout-ms"));
    cfg.degrade_watermark = static_cast<std::size_t>(
        opts.getInt("degrade-watermark"));
    cfg.degrade_trials =
        static_cast<std::size_t>(opts.getInt("degrade-trials"));
    cfg.test_verbs = opts.getFlag("test-verbs");

    ar::serve::Server server(cfg);
    try {
        server.start();
    } catch (const ar::util::FatalError &e) {
        std::fprintf(stderr, "archriskd: %s\n", e.what());
        return 1;
    }

    g_server = &server;
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    // Scripts scrape this exact line for the (possibly ephemeral)
    // port.
    std::printf("listening on %s:%u\n", cfg.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    const int rc = server.awaitTermination();
    g_server = nullptr;

    const std::string metrics_path = opts.getString("metrics-json");
    if (!metrics_path.empty()) {
        try {
            ar::obs::writeMetricsJson(metrics_path);
        } catch (const ar::util::FatalError &e) {
            std::fprintf(stderr, "archriskd: %s\n", e.what());
        }
    }
    std::printf("drained; exiting\n");
    return rc;
}
