/**
 * @file
 * archrisk-client: a small line-protocol client for archriskd.
 *
 *   archrisk-client [--retry N] <host> <port> ping
 *   archrisk-client [--retry N] <host> <port> upload <model> <spec-file>
 *   archrisk-client [--retry N] <host> <port> edit <model> <patch-file>
 *   archrisk-client [--retry N] <host> <port> run <model> [key=value ...]
 *   archrisk-client [--retry N] <host> <port> rerun <model> [key=value ...]
 *   archrisk-client [--retry N] <host> <port> sweep [key=value ...]
 *   archrisk-client [--retry N] <host> <port> sens <model> [key=value ...]
 *   archrisk-client [--retry N] <host> <port> metrics
 *   archrisk-client [--retry N] <host> <port> stall <ms> [key=value ...]
 *   archrisk-client [--retry N] <host> <port> raw '<request line>'
 *
 * Prints the server's response verbatim.  Exit status: 0 on an OK
 * response, 1 on an ERR response, 2 on usage/connection errors --
 * so shell scripts can assert typed failures without parsing.
 *
 * --retry N (default 0) re-sends a request answered with the typed
 * "ERR OVERLOADED" shed response up to N extra times, sleeping a
 * capped exponential backoff (50 ms doubling to at most 800 ms)
 * between attempts; only the final response is printed, and the exit
 * status reflects it, so a script sees 1 only after the bounded
 * retry budget is exhausted.  Other ERR codes never retry: they are
 * deterministic answers, not transient load.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: archrisk-client [--retry N] <host> <port> <command> "
        "[args...]\n"
        "commands: ping | upload <model> <spec-file> |\n"
        "          edit <model> <patch-file> |\n"
        "          run <model> [key=value ...] |\n"
        "          rerun <model> [key=value ...] |\n"
        "          sweep [key=value ...] |\n"
        "          sens <model> [key=value ...] |\n"
        "          metrics | stall <ms> [key=value ...] |\n"
        "          raw '<request line>'\n");
    return 2;
}

int
connectTo(const std::string &host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read one '\n'-terminated line (the response header). */
bool
readLine(int fd, std::string &line, std::string &rest)
{
    line.clear();
    char c;
    for (;;) {
        if (!rest.empty()) {
            c = rest.front();
            rest.erase(0, 1);
        } else {
            const ssize_t n = ::recv(fd, &c, 1, 0);
            if (n <= 0)
                return false;
        }
        if (c == '\n')
            return true;
        line.push_back(c);
    }
}

bool
readExact(int fd, std::size_t nbytes, std::string &out,
          std::string &rest)
{
    out.clear();
    while (out.size() < nbytes) {
        if (!rest.empty()) {
            const std::size_t take =
                std::min(rest.size(), nbytes - out.size());
            out.append(rest, 0, take);
            rest.erase(0, take);
            continue;
        }
        char buf[4096];
        const ssize_t n = ::recv(
            fd, buf, std::min(sizeof(buf), nbytes - out.size()), 0);
        if (n <= 0)
            return false;
        out.append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

/**
 * One request/response exchange on a fresh connection.  Fills the
 * response line and (for byte-counted responses) the body payload.
 * @return 0 on OK, 1 on ERR, 2 on a transport error (which also
 *         prints its own diagnostic).
 */
int
exchange(const std::string &host, int port,
         const std::string &request, std::string &line,
         std::string &payload)
{
    payload.clear();
    const int fd = connectTo(host, port);
    if (fd < 0) {
        std::fprintf(stderr, "cannot connect to %s:%d: %s\n",
                     host.c_str(), port, std::strerror(errno));
        return 2;
    }
    if (!sendAll(fd, request)) {
        std::fprintf(stderr, "send failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return 2;
    }

    std::string rest;
    // A streamed RUN (stream=N) interleaves "PART ..." progress
    // lines before the final OK/ERR; print them as they arrive and
    // keep reading for the terminal line.
    for (;;) {
        if (!readLine(fd, line, rest)) {
            std::fprintf(stderr, "connection closed by server\n");
            ::close(fd);
            return 2;
        }
        if (line.rfind("PART ", 0) != 0)
            break;
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
    }

    // "OK metrics nbytes=N" is followed by exactly N bytes of JSON.
    const std::string marker = " nbytes=";
    const auto at = line.find(marker);
    if (line.rfind("OK ", 0) == 0 && at != std::string::npos) {
        const std::size_t nbytes = static_cast<std::size_t>(
            std::strtoull(line.c_str() + at + marker.size(),
                          nullptr, 10));
        if (!readExact(fd, nbytes, payload, rest)) {
            std::fprintf(stderr, "truncated body\n");
            ::close(fd);
            return 2;
        }
    }
    ::close(fd);
    return line.rfind("ERR", 0) == 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> argl(argv + 1, argv + argc);
    long retries = 0;
    if (argl.size() >= 2 && argl[0] == "--retry") {
        char *end = nullptr;
        retries = std::strtol(argl[1].c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || retries < 0 ||
            retries > 1000)
            return usage();
        argl.erase(argl.begin(), argl.begin() + 2);
    }
    if (argl.size() < 3)
        return usage();
    const std::string host = argl[0];
    const int port = std::atoi(argl[1].c_str());
    const std::string command = argl[2];
    std::vector<std::string> args(argl.begin() + 3, argl.end());

    std::string request;
    std::string body;
    if (command == "ping" && args.empty()) {
        request = "PING\n";
    } else if (command == "metrics" && args.empty()) {
        request = "METRICS\n";
    } else if ((command == "upload" || command == "edit") &&
               args.size() == 2) {
        std::ifstream in(args[1], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot read %s file '%s'\n",
                         command == "upload" ? "spec" : "patch",
                         args[1].c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        body = text.str();
        request = (command == "upload" ? "UPLOAD " : "EDIT ") +
                  args[0] + ' ' + std::to_string(body.size()) + '\n' +
                  body;
    } else if ((command == "run" || command == "rerun" ||
                command == "sens") &&
               !args.empty()) {
        request = command == "run"
                      ? "RUN"
                      : command == "rerun" ? "RERUN" : "SENS";
        for (const auto &arg : args)
            request += ' ' + arg;
        request += '\n';
    } else if (command == "sweep") {
        request = "SWEEP";
        for (const auto &arg : args)
            request += ' ' + arg;
        request += '\n';
    } else if (command == "stall" && !args.empty()) {
        request = "STALL";
        for (const auto &arg : args)
            request += ' ' + arg;
        request += '\n';
    } else if (command == "raw" && args.size() == 1) {
        request = args[0] + '\n';
    } else {
        return usage();
    }

    std::string line, payload;
    int rc = 0;
    for (long attempt = 0;; ++attempt) {
        rc = exchange(host, port, request, line, payload);
        const bool overloaded =
            rc == 1 && line.rfind("ERR OVERLOADED", 0) == 0;
        if (!overloaded || attempt >= retries)
            break;
        const long shift = attempt < 4 ? attempt : 4;
        const long delay_ms = std::min(50L << shift, 800L);
        std::fprintf(stderr,
                     "overloaded (attempt %ld/%ld); retrying in "
                     "%ld ms\n",
                     attempt + 1, retries + 1, delay_ms);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
    }
    if (rc == 2)
        return 2;
    std::printf("%s\n", line.c_str());
    if (!payload.empty())
        std::fwrite(payload.data(), 1, payload.size(), stdout);
    return rc;
}
