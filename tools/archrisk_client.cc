/**
 * @file
 * archrisk-client: a small line-protocol client for archriskd.
 *
 *   archrisk-client <host> <port> ping
 *   archrisk-client <host> <port> upload <model> <spec-file>
 *   archrisk-client <host> <port> run <model> [key=value ...]
 *   archrisk-client <host> <port> sweep [key=value ...]
 *   archrisk-client <host> <port> sens <model> [key=value ...]
 *   archrisk-client <host> <port> metrics
 *   archrisk-client <host> <port> stall <ms> [key=value ...]
 *   archrisk-client <host> <port> raw '<request line>'
 *
 * Prints the server's response verbatim.  Exit status: 0 on an OK
 * response, 1 on an ERR response, 2 on usage/connection errors --
 * so shell scripts can assert typed failures without parsing.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: archrisk-client <host> <port> <command> [args...]\n"
        "commands: ping | upload <model> <spec-file> |\n"
        "          run <model> [key=value ...] |\n"
        "          sweep [key=value ...] |\n"
        "          sens <model> [key=value ...] |\n"
        "          metrics | stall <ms> [key=value ...] |\n"
        "          raw '<request line>'\n");
    return 2;
}

int
connectTo(const std::string &host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read one '\n'-terminated line (the response header). */
bool
readLine(int fd, std::string &line, std::string &rest)
{
    line.clear();
    char c;
    for (;;) {
        if (!rest.empty()) {
            c = rest.front();
            rest.erase(0, 1);
        } else {
            const ssize_t n = ::recv(fd, &c, 1, 0);
            if (n <= 0)
                return false;
        }
        if (c == '\n')
            return true;
        line.push_back(c);
    }
}

bool
readExact(int fd, std::size_t nbytes, std::string &out,
          std::string &rest)
{
    out.clear();
    while (out.size() < nbytes) {
        if (!rest.empty()) {
            const std::size_t take =
                std::min(rest.size(), nbytes - out.size());
            out.append(rest, 0, take);
            rest.erase(0, take);
            continue;
        }
        char buf[4096];
        const ssize_t n = ::recv(
            fd, buf, std::min(sizeof(buf), nbytes - out.size()), 0);
        if (n <= 0)
            return false;
        out.append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string host = argv[1];
    const int port = std::atoi(argv[2]);
    const std::string command = argv[3];
    std::vector<std::string> args(argv + 4, argv + argc);

    std::string request;
    std::string body;
    if (command == "ping" && args.empty()) {
        request = "PING\n";
    } else if (command == "metrics" && args.empty()) {
        request = "METRICS\n";
    } else if (command == "upload" && args.size() == 2) {
        std::ifstream in(args[1], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot read spec file '%s'\n",
                         args[1].c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        body = text.str();
        request = "UPLOAD " + args[0] + ' ' +
                  std::to_string(body.size()) + '\n' + body;
    } else if ((command == "run" || command == "sens") &&
               !args.empty()) {
        request = command == "run" ? "RUN" : "SENS";
        for (const auto &arg : args)
            request += ' ' + arg;
        request += '\n';
    } else if (command == "sweep") {
        request = "SWEEP";
        for (const auto &arg : args)
            request += ' ' + arg;
        request += '\n';
    } else if (command == "stall" && !args.empty()) {
        request = "STALL";
        for (const auto &arg : args)
            request += ' ' + arg;
        request += '\n';
    } else if (command == "raw" && args.size() == 1) {
        request = args[0] + '\n';
    } else {
        return usage();
    }

    const int fd = connectTo(host, port);
    if (fd < 0) {
        std::fprintf(stderr, "cannot connect to %s:%d: %s\n",
                     host.c_str(), port, std::strerror(errno));
        return 2;
    }
    if (!sendAll(fd, request)) {
        std::fprintf(stderr, "send failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return 2;
    }

    std::string line, rest;
    if (!readLine(fd, line, rest)) {
        std::fprintf(stderr, "connection closed by server\n");
        ::close(fd);
        return 2;
    }
    std::printf("%s\n", line.c_str());

    // "OK metrics nbytes=N" is followed by exactly N bytes of JSON.
    const std::string marker = " nbytes=";
    const auto at = line.find(marker);
    if (line.rfind("OK ", 0) == 0 && at != std::string::npos) {
        const std::size_t nbytes = static_cast<std::size_t>(
            std::strtoull(line.c_str() + at + marker.size(),
                          nullptr, 10));
        std::string payload;
        if (!readExact(fd, nbytes, payload, rest)) {
            std::fprintf(stderr, "truncated body\n");
            ::close(fd);
            return 2;
        }
        std::fwrite(payload.data(), 1, payload.size(), stdout);
    }
    ::close(fd);
    return line.rfind("ERR", 0) == 0 ? 1 : 0;
}
