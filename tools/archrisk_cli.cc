/**
 * @file
 * archrisk: the batch command-line interface.  Runs a complete
 * risk-aware analysis from a spec file (see core/spec.hh for the
 * format) and prints the performance distribution, tail metrics, and
 * architectural risk.
 *
 *   ./build/tools/archrisk examples/specs/amdahl.spec
 */

#include <csignal>
#include <cstdio>

#include "core/spec.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "report/ascii_plot.hh"
#include "risk/var.hh"
#include "stats/histogram.hh"
#include "util/cli.hh"
#include "util/diagnostics.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace
{

/** Tripped by SIGINT; the propagation loops poll it at trial-block
 * boundaries, so Ctrl-C unwinds cleanly through the flush path
 * instead of killing the process with telemetry unwritten. */
ar::util::CancelToken g_interrupt;

void
onInterrupt(int)
{
    g_interrupt.cancel(); // Async-signal-safe: one relaxed store.
}

} // namespace

int
main(int argc, char **argv)
{
    ar::util::CliOptions opts;
    opts.declare("bins", "14", "histogram bins");
    opts.declare("alpha", "0.05", "tail level for VaR/CVaR");
    opts.declare("threads", "",
                 "worker threads (0 = all cores; overrides the spec)");
    opts.declare("fault-policy", "",
                 "fail_fast|discard|saturate (overrides the spec)");
    opts.declare("stream", "",
                 "stream the propagation in O(block) memory "
                 "(no sample retention: histogram and tail metrics "
                 "are skipped; overrides the spec)",
                 true);
    opts.declare("ci-target", "",
                 "stop early once the risk 95% CI half-width is <= "
                 "this (implies streaming accumulators; overrides "
                 "the spec)");
    opts.declare("metrics-json", "",
                 "enable metrics and write the scraped JSON here");
    opts.declare("trace-out", "",
                 "enable tracing and write Chrome trace JSON here");
    opts.declare("quiet", "", "suppress the histogram", true);
    if (!opts.parse(argc, argv))
        return 0;
    if (opts.positional().size() != 1) {
        std::fprintf(stderr,
                     "usage: archrisk [options] <spec-file>\n");
        return 2;
    }

    const std::string metrics_path = opts.getString("metrics-json");
    const std::string trace_path = opts.getString("trace-out");
    if (!metrics_path.empty())
        ar::obs::setMetricsEnabled(true);
    if (!trace_path.empty())
        ar::obs::setTracingEnabled(true);
    // Telemetry of a faulting run is often the most interesting, so
    // the files are written on both the success and the error paths.
    const auto write_telemetry = [&]() {
        try {
            if (!metrics_path.empty())
                ar::obs::writeMetricsJson(metrics_path);
            if (!trace_path.empty())
                ar::obs::writeTraceJson(trace_path);
        } catch (const ar::util::FatalError &e) {
            std::fprintf(stderr, "warning: %s\n", e.what());
        }
    };

    g_interrupt = ar::util::CancelToken::create();
    struct sigaction sa{};
    sa.sa_handler = onInterrupt;
    ::sigaction(SIGINT, &sa, nullptr);

    try {
        auto spec = ar::core::loadSpecFile(opts.positional()[0]);
        if (!opts.getString("threads").empty()) {
            spec.threads = static_cast<std::size_t>(
                opts.getInt("threads"));
        }
        if (!opts.getString("fault-policy").empty()) {
            const auto name = opts.getString("fault-policy");
            if (!ar::util::parseFaultPolicy(name,
                                            spec.fault_policy)) {
                std::fprintf(stderr,
                             "error: unknown fault policy '%s' "
                             "(fail_fast|discard|saturate)\n",
                             name.c_str());
                return 2;
            }
        }
        if (opts.getFlag("stream"))
            spec.stream = true;
        if (!opts.getString("ci-target").empty())
            spec.ci_target = opts.getDouble("ci-target");
        const auto res = ar::core::runSpec(spec, g_interrupt);
        const double alpha = opts.getDouble("alpha");

        std::printf("output variable     : %s\n", spec.output.c_str());
        std::printf("trials              : %zu (LHS)\n", spec.trials);
        std::printf("reference P         : %.6g\n", res.reference);
        std::printf("expected            : %.6g\n", res.expected());
        std::printf("stddev              : %.6g\n",
                    res.summary.stddev);
        std::printf("min / max           : %.6g / %.6g\n",
                    res.summary.min, res.summary.max);
        if (!res.streamed) {
            // Quantile metrics need the retained sample vector.
            std::printf("VaR(%.0f%%)            : %.6g\n",
                        100.0 * alpha,
                        ar::risk::valueAtRisk(res.samples, alpha));
            std::printf("CVaR(%.0f%%)           : %.6g\n",
                        100.0 * alpha,
                        ar::risk::conditionalValueAtRisk(res.samples,
                                                         alpha));
            std::printf("P(below reference)  : %.2f%%\n",
                        100.0 * ar::risk::shortfallProbability(
                                    res.samples, res.reference));
        } else if (!res.stats.empty()) {
            std::printf("P(below reference)  : %.2f%%\n",
                        100.0 *
                            res.stats.front().risk.exceedance());
        }
        std::printf("architectural risk  : %.6g (%s)\n", res.risk,
                    spec.risk.c_str());
        std::printf("fault policy        : %s\n",
                    ar::util::faultPolicyName(spec.fault_policy));
        std::printf("effective trials    : %zu\n",
                    res.faults.clean() && !res.streamed
                        ? spec.trials
                        : res.faults.effective_trials);
        if (res.streamed) {
            std::printf("streamed            : %zu blocks, "
                        "%zu trials run%s, peak ~%zu bytes\n",
                        res.blocks, res.trials_run,
                        res.early_stopped ? " (CI early stop)" : "",
                        res.peak_bytes);
        }
        if (!res.faults.clean()) {
            std::printf("faults              : %s\n",
                        res.faults.summary().c_str());
            for (const auto &record : res.faults.examples) {
                std::printf("  %s\n",
                            record.describe().c_str());
            }
        }

        if (!res.co_outputs.empty()) {
            std::printf("co-outputs (fused propagation):\n");
            for (const auto &co : res.co_outputs) {
                std::printf("  %-17s : mean %.6g, stddev %.6g, "
                            "range [%.6g, %.6g]\n",
                            co.name.c_str(), co.summary.mean,
                            co.summary.stddev, co.summary.min,
                            co.summary.max);
            }
        }

        if (!opts.getFlag("quiet") && !res.streamed) {
            std::printf("\n%s",
                        ar::report::histogramChart(
                            ar::stats::Histogram::fromData(
                                res.samples,
                                static_cast<std::size_t>(
                                    opts.getInt("bins"))),
                            44)
                            .c_str());
        }
        write_telemetry();
        return 0;
    } catch (const ar::util::CancelledError &e) {
        // Interrupted mid-run: flush whatever telemetry accumulated
        // and exit with the conventional SIGINT status.
        std::fprintf(stderr, "interrupted: %s\n", e.what());
        write_telemetry();
        return 130;
    } catch (const ar::util::ParseError &e) {
        // what() is the rendered diagnostic (line, column, caret).
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const ar::util::FaultError &e) {
        std::fprintf(stderr,
                     "error: %s\n"
                     "hint: rerun with --fault-policy discard or "
                     "saturate, or add 'fault_policy ...' to the "
                     "spec\n",
                     e.what());
        write_telemetry();
        return 1;
    } catch (const ar::util::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
