#!/usr/bin/env python3
"""Validate telemetry artifacts produced by the archrisk CLI.

Usage:
    validate_telemetry.py --metrics METRICS.json [--schema SCHEMA.json]
                          [--trace TRACE.json]

Checks the --metrics-json output against scripts/metrics_schema.json
and sanity-checks the --trace-out file as a Chrome trace_event
document.  Stdlib only -- no jsonschema dependency: this implements
exactly the subset of JSON Schema draft-07 that metrics_schema.json
uses (type / const / minimum / required / properties /
additionalProperties / items / minItems).

Exit code 0 on success, 1 on any validation failure.
"""

import argparse
import json
import os
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, names):
    if isinstance(names, str):
        names = [names]
    for name in names:
        py = _TYPES[name]
        if isinstance(value, py):
            # bool is an int subclass; don't let True pass as integer.
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return True
    return False


def validate(value, schema, path, errors):
    """Recursively check *value* against *schema*, appending messages
    for every violation to *errors*."""
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append(
            "%s: expected %s, got %s"
            % (path, schema["type"], type(value).__name__)
        )
        return
    if "const" in schema and value != schema["const"]:
        errors.append(
            "%s: expected %r, got %r" % (path, schema["const"], value)
        )
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(
                "%s: %r below minimum %r"
                % (path, value, schema["minimum"])
            )
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append("%s: missing required key '%s'" % (path, key))
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            sub_path = "%s.%s" % (path, key)
            if key in props:
                validate(sub, props[key], sub_path, errors)
            elif isinstance(extra, dict):
                validate(sub, extra, sub_path, errors)
            elif extra is False:
                errors.append("%s: unexpected key" % sub_path)
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                "%s: %d item(s), expected at least %d"
                % (path, len(value), schema["minItems"])
            )
        item_schema = schema.get("items")
        if isinstance(item_schema, dict):
            for i, item in enumerate(value):
                validate(item, item_schema, "%s[%d]" % (path, i), errors)


def check_metrics(metrics_path, schema_path, errors):
    with open(metrics_path) as fh:
        metrics = json.load(fh)
    with open(schema_path) as fh:
        schema = json.load(fh)
    validate(metrics, schema, "metrics", errors)
    if not errors and not metrics.get("counters"):
        errors.append("metrics.counters: empty -- no hook ever fired")
    # Internal consistency: a histogram's count is the bucket total.
    for name, hist in metrics.get("histograms", {}).items():
        if not isinstance(hist, dict):
            continue
        counts = hist.get("counts", [])
        bounds = hist.get("bounds", [])
        if len(counts) != len(bounds) + 1:
            errors.append(
                "metrics.histograms.%s: %d counts for %d bounds "
                "(want bounds+1)" % (name, len(counts), len(bounds))
            )
        if all(isinstance(c, int) for c in counts) and sum(
            counts
        ) != hist.get("count"):
            errors.append(
                "metrics.histograms.%s: count %r != bucket sum %d"
                % (name, hist.get("count"), sum(counts))
            )
    # Intern-table consistency: every live pool node was interned via
    # exactly one miss, so the pool-size gauge can never exceed the
    # miss counter.  (purge() only shrinks the pool, and hits never
    # create nodes.)
    pool_nodes = metrics.get("gauges", {}).get("symbolic.pool.nodes")
    if pool_nodes is not None:
        misses = metrics.get("counters", {}).get("symbolic.intern.misses")
        if misses is None:
            errors.append(
                "metrics: symbolic.pool.nodes gauge present but "
                "symbolic.intern.misses counter missing"
            )
        elif pool_nodes > misses:
            errors.append(
                "metrics: symbolic.pool.nodes %r exceeds "
                "symbolic.intern.misses %r" % (pool_nodes, misses)
            )
    # SIMD dispatch consistency: the gauge mirrors ar::simd::Level
    # (0 scalar, 1 neon, 2 avx2, 3 avx512) and is (re)published by
    # every recordBatch call, so whenever batch work ran (simd.ops
    # nonzero) the gauge must be present and hold a valid level.
    dispatch_level = metrics.get("gauges", {}).get("simd.dispatch_level")
    simd_ops = metrics.get("counters", {}).get("simd.ops")
    if dispatch_level is not None and dispatch_level not in (0, 1, 2, 3):
        errors.append(
            "metrics: simd.dispatch_level %r not a Level ordinal "
            "(want 0..3)" % (dispatch_level,)
        )
    if simd_ops is not None and simd_ops > 0 and dispatch_level is None:
        errors.append(
            "metrics: simd.ops %r counted batches but the "
            "simd.dispatch_level gauge is missing" % (simd_ops,)
        )
    return metrics


def check_trace(trace_path, errors):
    with open(trace_path) as fh:
        trace = json.load(fh)
    if not isinstance(trace, dict):
        errors.append("trace: top level must be an object")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        errors.append("trace.traceEvents: missing or not an array")
        return
    if not events:
        errors.append("trace.traceEvents: empty -- no span recorded")
    for i, ev in enumerate(events):
        where = "trace.traceEvents[%d]" % i
        if not isinstance(ev, dict):
            errors.append("%s: not an object" % where)
            continue
        for key, kind in (
            ("name", str),
            ("ph", str),
            ("pid", int),
            ("tid", int),
            ("ts", (int, float)),
            ("dur", (int, float)),
        ):
            if not isinstance(ev.get(key), kind):
                errors.append("%s: bad or missing '%s'" % (where, key))
        if ev.get("ph") != "X":
            errors.append("%s: expected complete event ph 'X'" % where)
    dropped = trace.get("droppedEvents", 0)
    if dropped:
        errors.append("trace: %r events were dropped" % dropped)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", required=True)
    parser.add_argument(
        "--schema",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "metrics_schema.json",
        ),
    )
    parser.add_argument("--trace")
    args = parser.parse_args(argv)

    errors = []
    metrics = check_metrics(args.metrics, args.schema, errors)
    if args.trace:
        check_trace(args.trace, errors)

    if errors:
        for message in errors:
            print("FAIL %s" % message, file=sys.stderr)
        return 1
    n_hist = len(metrics.get("histograms", {}))
    print(
        "ok: %d counters, %d gauges, %d histograms%s"
        % (
            len(metrics.get("counters", {})),
            len(metrics.get("gauges", {})),
            n_hist,
            " + trace valid" if args.trace else "",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
