#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a recorded baseline.

Two kinds of checks, both driven by files produced with
``--benchmark_out=... --benchmark_out_format=json``:

* **Regression check** (needs ``--baseline``): every benchmark present
  in both files must not be slower than ``(1 + threshold)`` times its
  baseline cpu_time.  Benchmarks that exist on only one side never
  fail the run: new names are informational (the suite is allowed to
  grow) and baseline names missing from the current run (renamed or
  removed benches) are downgraded to a ``missing-from-current``
  warning, counted in the summary line.

* **Speedup assertions** (``--speedup SLOW:FAST:MIN_RATIO``,
  repeatable): within the *current* run, cpu_time(SLOW) /
  cpu_time(FAST) must be at least MIN_RATIO.  SLOW and FAST are exact
  benchmark names (which contain ``/``, hence the ``:`` separator):
  ``--speedup 'BM_SobolUnfused/8/2048:BM_SobolFused/8/2048:1.3'``.

* **Counter ceilings** (``--max-metric BENCH:COUNTER:MAX``,
  repeatable): the named user counter recorded on BENCH in the
  *current* run must not exceed MAX.  Used by CI to hold the streamed
  propagation bench under an absolute peak-RSS byte ceiling:
  ``--max-metric 'BM_StreamPropagation/10000000/1:peak_rss_bytes:6.7e7'``.
  Unlike --speedup, a missing benchmark or counter *fails* the check
  (a memory gate that silently evaporates would pass forever), and
  --warn-only does not apply: counters are machine-independent facts
  about the run, not timings.

Absolute times are machine-dependent, so CI runs this with
``--warn-only``: every violation is printed but the exit code stays 0.
Run without ``--warn-only`` locally (same machine as the baseline) to
enforce.

A third mode, ``--write-baseline PATH``, regenerates the recorded
baseline from the current run instead of checking anything: the run's
context block and its non-aggregate benchmark rows are written to PATH
(typically BENCH_BASELINE.json), so refreshing the baseline after an
intentional performance change is one flag on the same command instead
of a hand-edited JSON file.

Only the Python standard library is used.
"""

import argparse
import json
import sys


class BenchFileError(Exception):
    """A benchmark JSON file that cannot be used, with a clear reason."""


def load_benchmarks(path, role):
    """Map benchmark name -> (cpu_time in ns, full row dict).

    The row dict carries the user counters (google-benchmark writes
    them as extra top-level keys on each benchmark entry), which the
    --max-metric checks read.  Raises BenchFileError (not a
    traceback) when the file is missing, unreadable, not JSON, or
    holds no benchmark rows.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise BenchFileError(
            "%s file '%s' does not exist%s" % (
                role, path,
                "; record one with --benchmark_out=%s "
                "--benchmark_out_format=json" % path
                if role == "baseline" else ""))
    except OSError as exc:
        raise BenchFileError(
            "cannot read %s file '%s': %s" % (role, path, exc))
    except json.JSONDecodeError as exc:
        raise BenchFileError(
            "%s file '%s' is not valid JSON (%s); was the benchmark "
            "run interrupted?" % (role, path, exc))
    if not isinstance(doc, dict):
        raise BenchFileError(
            "%s file '%s' is not a google-benchmark JSON document"
            % (role, path))
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        out[name] = (
            bench["cpu_time"] * scale[bench.get("time_unit", "ns")],
            bench)
    if not out:
        raise BenchFileError(
            "%s file '%s' holds no benchmark entries; was it produced "
            "with --benchmark_out_format=json?" % (role, path))
    return out


def write_baseline(current_path, baseline_path):
    """Regenerate a baseline file from a benchmark run.

    Keeps the run's context block verbatim and every non-aggregate
    benchmark row, dropping mean/median/stddev aggregates so the
    baseline holds exactly the rows load_benchmarks() would read back.
    Raises BenchFileError on an unusable input file.
    """
    try:
        with open(current_path) as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise BenchFileError(
            "current file '%s' does not exist" % current_path)
    except OSError as exc:
        raise BenchFileError(
            "cannot read current file '%s': %s" % (current_path, exc))
    except json.JSONDecodeError as exc:
        raise BenchFileError(
            "current file '%s' is not valid JSON (%s); was the "
            "benchmark run interrupted?" % (current_path, exc))
    if not isinstance(doc, dict):
        raise BenchFileError(
            "current file '%s' is not a google-benchmark JSON document"
            % current_path)
    rows = [bench for bench in doc.get("benchmarks", [])
            if bench.get("run_type") != "aggregate"]
    if not rows:
        raise BenchFileError(
            "current file '%s' holds no benchmark entries; was it "
            "produced with --benchmark_out_format=json?" % current_path)
    baseline = {"context": doc.get("context", {}), "benchmarks": rows}
    try:
        with open(baseline_path, "w") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
    except OSError as exc:
        raise BenchFileError(
            "cannot write baseline file '%s': %s" % (baseline_path, exc))
    return len(rows)


def fmt_ns(ns):
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.2f us" % (ns / 1e3)
    return "%.0f ns" % ns


def parse_speedup(spec):
    parts = spec.rsplit(":", 2)
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            "expected SLOW:FAST:MIN_RATIO, got %r" % spec)
    try:
        ratio = float(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(
            "MIN_RATIO must be a number in %r" % spec)
    return parts[0], parts[1], ratio


def parse_max_metric(spec):
    parts = spec.rsplit(":", 2)
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            "expected BENCH:COUNTER:MAX, got %r" % spec)
    try:
        ceiling = float(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(
            "MAX must be a number in %r" % spec)
    return parts[0], parts[1], ceiling


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("current", help="JSON output of the run under test")
    ap.add_argument("--baseline",
                    help="recorded baseline JSON (e.g. BENCH_BASELINE.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional slowdown vs baseline "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--speedup", action="append", type=parse_speedup,
                    default=[], metavar="SLOW:FAST:MIN_RATIO",
                    help="assert cpu_time(SLOW)/cpu_time(FAST) >= "
                         "MIN_RATIO in the current run (repeatable)")
    ap.add_argument("--max-metric", action="append",
                    type=parse_max_metric, default=[],
                    metavar="BENCH:COUNTER:MAX",
                    help="assert the user counter COUNTER recorded on "
                         "BENCH in the current run is <= MAX; a "
                         "missing benchmark or counter fails, and "
                         "--warn-only does not downgrade it "
                         "(repeatable)")
    ap.add_argument("--warn-only", action="store_true",
                    help="print violations but always exit 0")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write a fresh baseline JSON built from the "
                         "current run to PATH and exit (no checks run)")
    args = ap.parse_args(argv)

    if args.write_baseline:
        try:
            rows = write_baseline(args.current, args.write_baseline)
        except BenchFileError as exc:
            print("bench_compare: %s" % exc, file=sys.stderr)
            return 2
        print("wrote %d benchmark row(s) from '%s' to '%s'"
              % (rows, args.current, args.write_baseline))
        return 0

    try:
        current = load_benchmarks(args.current, "current")
        baseline = (load_benchmarks(args.baseline, "baseline")
                    if args.baseline else None)
    except BenchFileError as exc:
        print("bench_compare: %s" % exc, file=sys.stderr)
        return 2

    failures = []
    warnings = []
    compared = regressions = new_names = 0
    missing_from_current = []

    if baseline is not None:
        shared = sorted(set(baseline) & set(current))
        if not shared:
            failures.append("no benchmark names shared with baseline")
        for name in shared:
            old, new = baseline[name][0], current[name][0]
            rel = (new - old) / old
            compared += 1
            status = "ok"
            if rel > args.threshold:
                status = "REGRESSION"
                regressions += 1
                failures.append(
                    "%s: %s -> %s (%+.1f%% > %+.1f%% allowed)"
                    % (name, fmt_ns(old), fmt_ns(new), 100 * rel,
                       100 * args.threshold))
            print("%-44s %10s -> %10s  %+6.1f%%  %s"
                  % (name, fmt_ns(old), fmt_ns(new), 100 * rel, status))
        for name in sorted(set(current) - set(baseline)):
            new_names += 1
            print("%-44s (new, no baseline)" % name)
        missing_from_current = sorted(set(baseline) - set(current))
        for name in missing_from_current:
            print("%-44s (in baseline only)  WARNING" % name)
            warnings.append(
                "missing-from-current: %s (in baseline, not in this "
                "run; renamed or removed?)" % name)

    for slow, fast, min_ratio in args.speedup:
        missing = [n for n in (slow, fast) if n not in current]
        if missing:
            warnings.append(
                "missing-from-current: speedup check %s/%s skipped "
                "(missing %s)" % (slow, fast, ", ".join(missing)))
            continue
        ratio = current[slow][0] / current[fast][0]
        ok = ratio >= min_ratio
        print("speedup %s / %s = %.2fx (want >= %.2fx)  %s"
              % (slow, fast, ratio, min_ratio,
                 "ok" if ok else "TOO SLOW"))
        if not ok:
            failures.append("speedup %s/%s = %.2fx < %.2fx"
                            % (slow, fast, ratio, min_ratio))

    # Counter ceilings are hard failures even under --warn-only:
    # user counters (e.g. peak bytes) are properties of the run, not
    # of the machine's clock, so a breach is never runner noise.
    hard_failures = []
    for bench, counter, ceiling in args.max_metric:
        if bench not in current:
            hard_failures.append(
                "max-metric %s: benchmark not in current run"
                % bench)
            continue
        value = current[bench][1].get(counter)
        if not isinstance(value, (int, float)):
            hard_failures.append(
                "max-metric %s: counter '%s' not recorded"
                % (bench, counter))
            continue
        ok = value <= ceiling
        print("metric %s %s = %.6g (want <= %.6g)  %s"
              % (bench, counter, value, ceiling,
                 "ok" if ok else "OVER CEILING"))
        if not ok:
            hard_failures.append(
                "max-metric %s: %s = %.6g > %.6g"
                % (bench, counter, value, ceiling))

    print("summary: %d compared, %d regression(s), %d "
          "missing-from-current (warned), %d new"
          % (compared, regressions, len(missing_from_current),
             new_names))

    if warnings:
        print("\n%d warning(s):" % len(warnings), file=sys.stderr)
        for w in warnings:
            print("  " + w, file=sys.stderr)
    if failures:
        print("\n%d violation(s):" % len(failures), file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        if not args.warn_only:
            return 1
        print("(--warn-only: exiting 0)", file=sys.stderr)
    if hard_failures:
        print("\n%d hard violation(s) (not downgraded by "
              "--warn-only):" % len(hard_failures), file=sys.stderr)
        for f in hard_failures:
            print("  " + f, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
