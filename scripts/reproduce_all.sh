#!/bin/sh
# Build, test, and regenerate every paper table and figure.
# Usage: scripts/reproduce_all.sh [extra-cmake-args]
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja "$@"
cmake --build build
ctest --test-dir build --output-on-failure
echo
echo "=== running all benches ==="
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo
    echo ">>> $b"
    "$b"
done
