/**
 * @file
 * The archriskd line protocol: a newline-delimited request/response
 * grammar small enough to drive with netcat yet typed enough that a
 * client can react to failure modes programmatically.
 *
 * Requests (one line, '\n'-terminated, optional trailing '\r'):
 *
 *   PING
 *   UPLOAD <model> <nbytes>        # <nbytes> of spec text follow
 *   EDIT <model> <nbytes>          # <nbytes> of spec-patch lines
 *                                  # follow; applied in place to the
 *                                  # stored spec (equations replace
 *                                  # by defined name, directives by
 *                                  # bound name), caches revalidated
 *                                  # incrementally
 *   RUN <model> [key=value ...]    # trials= seed= deadline_ms=
 *                                  # policy=fail_fast|discard|saturate
 *                                  # stream=N emits one "PART run
 *                                  # ..." progress line every N
 *                                  # merged trial blocks before the
 *                                  # final OK; ci_target=H stops the
 *                                  # run early once the risk
 *                                  # estimate's 95% CI half-width
 *                                  # is <= H (effective= reports the
 *                                  # trials actually run)
 *   RERUN <model> [key=value ...]  # RUN against the post-EDIT model;
 *                                  # same keys, answers "OK rerun"
 *   SWEEP [key=value ...]          # app= sigma= area= trials= seed=
 *                                  # fab= deadline_ms=
 *   SENS <model> [key=value ...]   # trials= seed= deadline_ms=
 *   METRICS                        # byte-counted JSON body follows
 *   STALL <ms>                     # test-only; sleeps cooperatively
 *   QUIT
 *
 * Responses are a single "OK <verb> key=value ..." line, except
 * METRICS which replies "OK metrics nbytes=<n>" followed by exactly
 * n bytes of JSON, and RUN/RERUN with stream=N which interleave
 * zero or more "PART <verb> key=value ..." progress lines before
 * the final OK (dropping the PART lines leaves exactly the reply
 * the request would produce without stream=).  Every failure is one
 * typed line:
 *
 *   ERR <CODE> <human-readable detail>
 *
 * so a faulting, malformed, late, or shed request is always a
 * structured answer, never a hang or a dropped connection.
 */

#ifndef AR_SERVE_PROTOCOL_HH
#define AR_SERVE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ar::serve
{

/** Typed failure classes of the wire protocol. */
enum class ErrCode : std::uint8_t
{
    BadRequest,      ///< Malformed request line or parameter.
    TooLarge,        ///< Frame exceeds the configured byte bound.
    Parse,           ///< Spec body failed to parse/compile.
    UnknownModel,    ///< RUN/SENS names a model never uploaded.
    Overloaded,      ///< Admission control shed the request.
    DeadlineExpired, ///< The per-request deadline tripped mid-run.
    Cancelled,       ///< Cancelled for a non-deadline reason (drain).
    Fault,           ///< Propagation faulted (NaN/Inf under FailFast).
    ShuttingDown,    ///< Daemon is draining; no new work accepted.
    Internal,        ///< Unexpected server-side error.
};

/** @return the wire token of @p code (e.g. "OVERLOADED"). */
const char *errCodeName(ErrCode code);

/**
 * A protocol-level failure that should become one "ERR <CODE> ..."
 * line on the wire.  Thrown by request parsing and by handlers.
 */
class ProtocolError : public std::runtime_error
{
  public:
    ProtocolError(ErrCode code, const std::string &detail)
        : std::runtime_error(detail), code_(code)
    {}

    ErrCode code() const { return code_; }

  private:
    ErrCode code_;
};

/** One parsed request line. */
struct Request
{
    std::string verb;                ///< Uppercased verb token.
    std::vector<std::string> args;   ///< Positional (non key=value).
    std::map<std::string, std::string> params; ///< key=value tokens.
    std::string body;                ///< UPLOAD/EDIT payload.

    /** @return whether key=value was present. */
    bool has(const std::string &key) const;

    /** @return string value of @p key or @p fallback. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /**
     * @return numeric value of @p key, or @p fallback when absent.
     * @throws ProtocolError(BadRequest) on a malformed number.
     */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
};

/**
 * Parse one request line (terminator already stripped).
 *
 * @throws ProtocolError(BadRequest) on an empty line, an unknown
 *         verb, or malformed tokens.
 */
Request parseRequestLine(const std::string &line);

/** Render "ERR <CODE> <sanitized detail>\n". */
std::string errLine(ErrCode code, const std::string &detail);

/** Render "OK <sanitized payload>\n". */
std::string okLine(const std::string &payload);

/**
 * Collapse control characters (including newlines) to spaces so a
 * message always stays a single protocol line.
 */
std::string sanitize(const std::string &text);

} // namespace ar::serve

#endif // AR_SERVE_PROTOCOL_HH
