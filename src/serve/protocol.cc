#include "serve/protocol.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ar::serve
{

namespace
{

const char *const kVerbs[] = {"PING",    "UPLOAD", "RUN",
                              "SWEEP",   "SENS",   "METRICS",
                              "STALL",   "QUIT",   "EDIT",
                              "RERUN"};

bool
knownVerb(const std::string &verb)
{
    for (const char *v : kVerbs)
        if (verb == v)
            return true;
    return false;
}

} // namespace

const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::BadRequest:      return "BAD_REQUEST";
      case ErrCode::TooLarge:        return "TOO_LARGE";
      case ErrCode::Parse:           return "PARSE";
      case ErrCode::UnknownModel:    return "UNKNOWN_MODEL";
      case ErrCode::Overloaded:      return "OVERLOADED";
      case ErrCode::DeadlineExpired: return "DEADLINE_EXPIRED";
      case ErrCode::Cancelled:       return "CANCELLED";
      case ErrCode::Fault:           return "FAULT";
      case ErrCode::ShuttingDown:    return "SHUTTING_DOWN";
      case ErrCode::Internal:        return "INTERNAL";
    }
    return "INTERNAL";
}

bool
Request::has(const std::string &key) const
{
    return params.find(key) != params.end();
}

std::string
Request::get(const std::string &key, const std::string &fallback) const
{
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
}

std::uint64_t
Request::getU64(const std::string &key, std::uint64_t fallback) const
{
    auto it = params.find(key);
    if (it == params.end())
        return fallback;
    const std::string &text = it->second;
    if (text.empty() ||
        !std::all_of(text.begin(), text.end(),
                     [](unsigned char c) { return std::isdigit(c); }))
        throw ProtocolError(ErrCode::BadRequest,
                            "parameter '" + key +
                                "' expects a non-negative integer, "
                                "got '" + sanitize(text) + "'");
    try {
        return std::stoull(text);
    } catch (const std::exception &) {
        throw ProtocolError(ErrCode::BadRequest, "parameter '" + key +
                                                     "' out of range");
    }
}

double
Request::getDouble(const std::string &key, double fallback) const
{
    auto it = params.find(key);
    if (it == params.end())
        return fallback;
    try {
        std::size_t used = 0;
        const double v = std::stod(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        throw ProtocolError(ErrCode::BadRequest,
                            "parameter '" + key +
                                "' expects a number, got '" +
                                sanitize(it->second) + "'");
    }
}

Request
parseRequestLine(const std::string &line)
{
    std::istringstream in(line);
    Request req;
    std::string token;
    if (!(in >> token))
        throw ProtocolError(ErrCode::BadRequest, "empty request");
    std::transform(token.begin(), token.end(), token.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    req.verb = token;
    if (!knownVerb(req.verb))
        throw ProtocolError(ErrCode::BadRequest,
                            "unknown verb '" + sanitize(token) + "'");
    while (in >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            req.args.push_back(token);
            continue;
        }
        req.params[token.substr(0, eq)] = token.substr(eq + 1);
    }
    return req;
}

std::string
errLine(ErrCode code, const std::string &detail)
{
    std::string line = "ERR ";
    line += errCodeName(code);
    if (!detail.empty()) {
        line += ' ';
        line += sanitize(detail);
    }
    line += '\n';
    return line;
}

std::string
okLine(const std::string &payload)
{
    std::string line = "OK";
    if (!payload.empty()) {
        line += ' ';
        line += sanitize(payload);
    }
    line += '\n';
    return line;
}

std::string
sanitize(const std::string &text)
{
    std::string out = text;
    for (char &c : out) {
        if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f)
            c = ' ';
    }
    return out;
}

} // namespace ar::serve
