#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <set>
#include <shared_mutex>
#include <sstream>

#include "explore/design_space.hh"
#include "explore/evaluate.hh"
#include "explore/select.hh"
#include "mc/sensitivity.hh"
#include "model/app.hh"
#include "model/hill_marty.hh"
#include "obs/telemetry.hh"
#include "util/diagnostics.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/string_utils.hh"

namespace ar::serve
{

namespace
{

struct ServeMetrics
{
    obs::Counter accepted =
        obs::MetricsRegistry::global().counter("serve.accepted");
    obs::Counter requests =
        obs::MetricsRegistry::global().counter("serve.requests");
    obs::Counter rejected_overload =
        obs::MetricsRegistry::global().counter(
            "serve.rejected_overload");
    obs::Counter deadline_expired =
        obs::MetricsRegistry::global().counter(
            "serve.deadline_expired");
    obs::Counter cancelled =
        obs::MetricsRegistry::global().counter("serve.cancelled");
    obs::Counter faults =
        obs::MetricsRegistry::global().counter("serve.faults");
    obs::Counter parse_errors =
        obs::MetricsRegistry::global().counter("serve.parse_errors");
    obs::Counter degraded =
        obs::MetricsRegistry::global().counter("serve.degraded");
    obs::Counter idle_timeouts =
        obs::MetricsRegistry::global().counter("serve.idle_timeouts");
    obs::Counter edits =
        obs::MetricsRegistry::global().counter("serve.edits");
    obs::Counter drain_ns =
        obs::MetricsRegistry::global().counter("serve.drain_ns");
    obs::Counter stream_runs =
        obs::MetricsRegistry::global().counter("serve.stream.runs");
    obs::Counter stream_frames =
        obs::MetricsRegistry::global().counter("serve.stream.frames");
    obs::Counter stream_early_stops =
        obs::MetricsRegistry::global().counter(
            "serve.stream.early_stops");
    obs::Gauge inflight =
        obs::MetricsRegistry::global().gauge("serve.inflight");
    obs::Gauge queue_depth =
        obs::MetricsRegistry::global().gauge("serve.queue_depth");
};

ServeMetrics &
serveMetrics()
{
    static ServeMetrics m;
    return m;
}

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** describe() with the spaces removed ("1x128 + 16x8" -> "1x128+16x8")
 * so a configuration stays one key=value token on the wire; the form
 * still round-trips through CoreConfig::parse. */
std::string
wireConfig(const ar::model::CoreConfig &config)
{
    std::string s = config.describe();
    s.erase(std::remove(s.begin(), s.end(), ' '), s.end());
    return s;
}

bool
validModelName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return false;
    return std::all_of(name.begin(), name.end(), [](unsigned char c) {
        return std::isalnum(c) || c == '_' || c == '-' || c == '.';
    });
}

ar::util::FaultPolicy
policyParam(const Request &req, ar::util::FaultPolicy fallback)
{
    const std::string name = req.get("policy");
    if (name.empty())
        return fallback;
    ar::util::FaultPolicy policy;
    if (!ar::util::parseFaultPolicy(name, policy))
        throw ProtocolError(ErrCode::BadRequest,
                            "unknown fault policy '" + name +
                                "' (fail_fast|discard|saturate)");
    return policy;
}

/**
 * Classification key of one spec line for EDIT patching: an empty
 * key marks a blank / comment-only line.  Equations key on the
 * defined name; the value-binding directives (fixed / uncertain /
 * samples) all key on the bound name, so an edit can move an input
 * between certain and uncertain by replacing its one binding line;
 * correlate keys on the input pair; every scalar directive keys on
 * the directive word itself.
 */
std::string
specLineKey(const std::string &raw)
{
    const std::string text =
        ar::util::trim(raw.substr(0, raw.find('#')));
    if (text.empty())
        return "";
    if (const auto eq = text.find('=');
        eq != std::string::npos)
        return "= " + ar::util::trim(text.substr(0, eq));
    std::istringstream in(text);
    std::string cmd, a, b;
    in >> cmd;
    if (cmd == "fixed" || cmd == "uncertain" || cmd == "samples" ||
        cmd == "states") {
        // `states` shares the binding key: an edit can move a name
        // between a scalar, a distribution, and a multi-state
        // component by replacing its one binding line.
        in >> a;
        return "bind " + a;
    }
    if (cmd == "correlate") {
        in >> a >> b;
        return "correlate " + a + ' ' + b;
    }
    // `structure` (one per spec) and every scalar directive key on
    // the directive word itself.
    return cmd;
}

/**
 * Apply EDIT patch lines to a stored spec body.  Each meaningful
 * patch line replaces the first base line with the same key, or is
 * appended when no base line matches; blank and comment-only patch
 * lines are inert.  Untouched base lines are preserved byte for
 * byte, so re-parsing the patched text yields exactly the spec a
 * fresh UPLOAD of it would.
 */
std::string
applySpecPatch(const std::string &base, const std::string &patch)
{
    std::vector<std::string> lines;
    std::istringstream bin(base);
    std::string raw;
    while (std::getline(bin, raw))
        lines.push_back(raw);

    std::istringstream pin(patch);
    while (std::getline(pin, raw)) {
        const std::string key = specLineKey(raw);
        if (key.empty())
            continue;
        bool replaced = false;
        for (auto &line : lines) {
            if (specLineKey(line) == key) {
                line = raw;
                replaced = true;
                break;
            }
        }
        if (!replaced)
            lines.push_back(raw);
    }

    std::string out;
    for (const auto &line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

/** One client connection.  The event loop owns fd lifecycle and all
 * reads; a worker executing the connection's in-flight request only
 * writes (under write_m) and flips state back via finishRequest. */
struct Server::Conn
{
    enum class State : std::uint8_t
    {
        Line, ///< Reading a request line.
        Body, ///< Reading an UPLOAD/EDIT body.
        Busy, ///< Request executing on a worker; fd not polled.
        Close ///< To be closed by the loop.
    };

    int fd = -1;
    State state = State::Line;          ///< Guarded by Server::m_.
    std::string inbuf;                  ///< Loop thread only.
    Request pending;                    ///< Loop thread only.
    std::size_t body_needed = 0;        ///< Loop thread only.
    std::chrono::steady_clock::time_point last_activity;
    std::mutex write_m;                 ///< Serializes fd writes.
    ar::util::CancelToken cancel;       ///< Guarded by Server::m_.
};

/** One uploaded model: parsed spec + Framework with every expression
 * cache prewarmed at upload time, so concurrent RUNs are read-only
 * cache hits.  rw serializes the (rare) operations that mutate
 * shared compilation state -- UPLOAD prewarming and EDIT's in-place
 * revalidation hold it exclusively; RUN/RERUN/SENS hold it shared. */
struct Server::Model
{
    ar::core::AnalysisSpec spec;
    std::string spec_text;   ///< Verbatim upload body; EDIT patches it.
    std::unique_ptr<ar::core::Framework> fw;
    double reference = 0.0;
    std::shared_mutex rw;
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      // +1: the pool counts the calling thread, which for a server is
      // the event loop and never runs tasks.
      pool_(ar::util::ThreadPool::resolveThreads(cfg_.workers) + 1)
{
    pool_.setTaskCapacity(cfg_.queue_capacity);
}

Server::~Server()
{
    if (started_.load()) {
        requestStop();
        awaitTermination();
    }
    if (wake_r_ >= 0)
        ::close(wake_r_);
    if (wake_w_ >= 0)
        ::close(wake_w_);
}

void
Server::start()
{
    if (started_.exchange(true))
        ar::util::fatal("Server::start: already started");

    // A peer that disappears mid-write must be an EPIPE errno, not a
    // process-killing SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    // A daemon always records its own operational counters; the
    // METRICS verb and the drain-time flush scrape them.
    obs::setMetricsEnabled(true);

    int pipefd[2];
    if (::pipe(pipefd) != 0)
        ar::util::fatal("Server: pipe failed: ",
                        std::strerror(errno));
    wake_r_ = pipefd[0];
    wake_w_ = pipefd[1];
    setNonBlocking(wake_r_);
    setNonBlocking(wake_w_);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        ar::util::fatal("Server: socket failed: ",
                        std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1)
        ar::util::fatal("Server: bad host '", cfg_.host, "'");
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        ar::util::fatal("Server: bind ", cfg_.host, ":", cfg_.port,
                        " failed: ", std::strerror(errno));
    if (::listen(listen_fd_, 64) != 0)
        ar::util::fatal("Server: listen failed: ",
                        std::strerror(errno));
    setNonBlocking(listen_fd_);

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    loop_ = std::thread([this] { loopThread(); });
}

void
Server::requestStop()
{
    // Async-signal-safe: one relaxed store plus one pipe write.
    stop_.store(true, std::memory_order_relaxed);
    if (wake_w_ >= 0) {
        const char byte = 'x';
        [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
    }
}

int
Server::awaitTermination()
{
    if (loop_.joinable())
        loop_.join();
    return 0;
}

std::size_t
Server::inflight() const
{
    std::lock_guard<std::mutex> lk(m_);
    return inflight_;
}

void
Server::wake()
{
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
}

void
Server::loopThread()
{
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Conn>> polled;
    while (!stop_.load(std::memory_order_relaxed)) {
        fds.clear();
        polled.clear();
        fds.push_back({wake_r_, POLLIN, 0});
        fds.push_back({listen_fd_, POLLIN, 0});
        {
            std::lock_guard<std::mutex> lk(m_);
            for (auto &[fd, c] : conns_) {
                if (c->state == Conn::State::Line ||
                    c->state == Conn::State::Body) {
                    fds.push_back({fd, POLLIN, 0});
                    polled.push_back(c);
                }
            }
        }

        const int timeout_ms =
            cfg_.idle_timeout.count() > 0
                ? static_cast<int>(std::min<long long>(
                      cfg_.idle_timeout.count(), 1000))
                : 1000;
        const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
        if (stop_.load(std::memory_order_relaxed))
            break;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            ar::util::warn("Server: poll failed: ",
                           std::strerror(errno));
            break;
        }

        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(wake_r_, buf, sizeof(buf)) > 0) {
            }
        }
        if (fds[1].revents & POLLIN)
            acceptReady();
        for (std::size_t i = 2; i < fds.size(); ++i) {
            auto &c = polled[i - 2];
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                readReady(c);
        }

        // A request that finished while we polled may have left
        // pipelined bytes in its connection's buffer.
        {
            std::vector<std::shared_ptr<Conn>> ready;
            {
                std::lock_guard<std::mutex> lk(m_);
                for (auto &[fd, c] : conns_) {
                    if (c->state == Conn::State::Line &&
                        !c->inbuf.empty())
                        ready.push_back(c);
                }
            }
            for (auto &c : ready)
                processInput(c);
        }

        // Reap idle and close-marked connections.
        const auto now = std::chrono::steady_clock::now();
        std::vector<std::shared_ptr<Conn>> dead;
        {
            std::lock_guard<std::mutex> lk(m_);
            for (auto &[fd, c] : conns_) {
                if (c->state == Conn::State::Close) {
                    dead.push_back(c);
                } else if (cfg_.idle_timeout.count() > 0 &&
                           c->state != Conn::State::Busy &&
                           now - c->last_activity >
                               cfg_.idle_timeout) {
                    serveMetrics().idle_timeouts.add();
                    c->state = Conn::State::Close;
                    dead.push_back(c);
                }
            }
        }
        for (auto &c : dead)
            closeConn(c);
    }
    drain();
}

void
Server::acceptReady()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        auto c = std::make_shared<Conn>();
        c->fd = fd;
        c->last_activity = std::chrono::steady_clock::now();
        serveMetrics().accepted.add();
        std::lock_guard<std::mutex> lk(m_);
        conns_[fd] = std::move(c);
    }
}

void
Server::closeConn(const std::shared_ptr<Conn> &c)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        conns_.erase(c->fd);
    }
    std::lock_guard<std::mutex> wlk(c->write_m);
    if (c->fd >= 0) {
        ::close(c->fd);
        c->fd = -1;
    }
}

bool
Server::writeConn(const std::shared_ptr<Conn> &c,
                  const std::string &data)
{
    std::lock_guard<std::mutex> lk(c->write_m);
    if (c->fd < 0)
        return false;
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(c->fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{c->fd, POLLOUT, 0};
            ::poll(&pfd, 1, 1000);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // Peer gone; caller marks the conn closed.
    }
    return true;
}

void
Server::readReady(const std::shared_ptr<Conn> &c)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
        if (n > 0) {
            c->inbuf.append(buf, static_cast<std::size_t>(n));
            c->last_activity = std::chrono::steady_clock::now();
            if (n < static_cast<ssize_t>(sizeof(buf)))
                break;
            continue;
        }
        if (n == 0) {
            // Peer closed.  Any half-read frame dies with it; an
            // in-flight request would have kept state Busy, so we
            // only ever get here between requests.
            std::lock_guard<std::mutex> lk(m_);
            c->state = Conn::State::Close;
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        std::lock_guard<std::mutex> lk(m_);
        c->state = Conn::State::Close;
        return;
    }
    processInput(c);
}

void
Server::processInput(const std::shared_ptr<Conn> &c)
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(m_);
            if (c->state == Conn::State::Busy ||
                c->state == Conn::State::Close)
                return;
        }
        const bool reading_body = c->body_needed > 0;
        if (reading_body) {
            if (c->inbuf.size() < c->body_needed)
                return; // Wait for more bytes.
            c->pending.body = c->inbuf.substr(0, c->body_needed);
            c->inbuf.erase(0, c->body_needed);
            c->body_needed = 0;
            Request req = std::move(c->pending);
            c->pending = Request();
            dispatch(c, std::move(req));
            continue;
        }

        const auto nl = c->inbuf.find('\n');
        if (nl == std::string::npos) {
            if (c->inbuf.size() > cfg_.max_request_bytes) {
                writeConn(c, errLine(ErrCode::TooLarge,
                                     "request line exceeds " +
                                         std::to_string(
                                             cfg_.max_request_bytes) +
                                         " bytes"));
                std::lock_guard<std::mutex> lk(m_);
                c->state = Conn::State::Close;
            }
            return;
        }
        std::string line = c->inbuf.substr(0, nl);
        c->inbuf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue; // Blank keep-alive line.

        Request req;
        try {
            req = parseRequestLine(line);
        } catch (const ProtocolError &e) {
            if (!writeConn(c, errLine(e.code(), e.what()))) {
                std::lock_guard<std::mutex> lk(m_);
                c->state = Conn::State::Close;
                return;
            }
            continue;
        }

        if (req.verb == "UPLOAD" || req.verb == "EDIT") {
            if (req.args.size() != 2) {
                writeConn(c, errLine(ErrCode::BadRequest,
                                     "usage: " + req.verb +
                                         " <model> <nbytes>"));
                continue;
            }
            std::uint64_t nbytes = 0;
            try {
                Request size_probe;
                size_probe.params["nbytes"] = req.args[1];
                nbytes = size_probe.getU64("nbytes", 0);
            } catch (const ProtocolError &e) {
                writeConn(c, errLine(e.code(), e.what()));
                continue;
            }
            if (nbytes > cfg_.max_request_bytes) {
                writeConn(c, errLine(ErrCode::TooLarge,
                                     "spec body of " +
                                         std::to_string(nbytes) +
                                         " bytes exceeds limit of " +
                                         std::to_string(
                                             cfg_.max_request_bytes)));
                std::lock_guard<std::mutex> lk(m_);
                c->state = Conn::State::Close;
                return;
            }
            c->pending = std::move(req);
            c->body_needed = static_cast<std::size_t>(nbytes);
            continue;
        }

        dispatch(c, std::move(req));
    }
}

void
Server::dispatch(const std::shared_ptr<Conn> &c, Request req)
{
    serveMetrics().requests.add();

    // Verbs cheap enough for the loop thread itself.
    if (req.verb == "PING") {
        if (!writeConn(c, okLine("pong"))) {
            std::lock_guard<std::mutex> lk(m_);
            c->state = Conn::State::Close;
        }
        return;
    }
    if (req.verb == "QUIT") {
        writeConn(c, okLine("bye"));
        std::lock_guard<std::mutex> lk(m_);
        c->state = Conn::State::Close;
        return;
    }
    if (req.verb == "METRICS") {
        if (!writeConn(c, handleMetrics())) {
            std::lock_guard<std::mutex> lk(m_);
            c->state = Conn::State::Close;
        }
        return;
    }
    if (req.verb == "STALL" && !cfg_.test_verbs) {
        writeConn(c, errLine(ErrCode::BadRequest,
                             "STALL requires --test-verbs"));
        return;
    }
    if (stop_.load(std::memory_order_relaxed)) {
        writeConn(c, errLine(ErrCode::ShuttingDown, "draining"));
        return;
    }

    // Compute-bearing verbs go through bounded admission.
    const std::size_t pending = pool_.pendingTasks();
    serveMetrics().queue_depth.set(static_cast<double>(pending));
    const bool degraded = cfg_.degrade_watermark > 0 &&
                          pending >= cfg_.degrade_watermark;

    ar::util::CancelToken tok;
    std::uint64_t deadline_ms = 0;
    try {
        deadline_ms = req.getU64(
            "deadline_ms",
            static_cast<std::uint64_t>(
                cfg_.default_deadline.count()));
    } catch (const ProtocolError &e) {
        writeConn(c, errLine(e.code(), e.what()));
        return;
    }
    tok = deadline_ms > 0
              ? ar::util::CancelToken::withTimeout(
                    std::chrono::milliseconds(deadline_ms))
              : ar::util::CancelToken::create();

    {
        std::lock_guard<std::mutex> lk(m_);
        c->state = Conn::State::Busy;
        c->cancel = tok;
        ++inflight_;
        serveMetrics().inflight.set(static_cast<double>(inflight_));
    }

    auto task = [this, c, req = std::move(req), tok, degraded]() {
        std::string response;
        bool close = false;
        // Progressive results ("PART ..." frames) bypass the
        // one-response-per-request path and go straight to the
        // connection; writeConn is thread-safe.
        const Emit emit = [this, c](const std::string &line) {
            return writeConn(c, line);
        };
        try {
            response = execute(req, tok, degraded, emit);
        } catch (const ProtocolError &e) {
            if (e.code() == ErrCode::Parse)
                serveMetrics().parse_errors.add();
            response = errLine(e.code(), e.what());
        } catch (const ar::util::CancelledError &e) {
            if (e.reason() ==
                ar::util::CancelReason::DeadlineExpired) {
                serveMetrics().deadline_expired.add();
                response =
                    errLine(ErrCode::DeadlineExpired, e.what());
            } else {
                serveMetrics().cancelled.add();
                response = errLine(ErrCode::Cancelled, e.what());
            }
        } catch (const ar::util::FaultError &e) {
            serveMetrics().faults.add();
            response = errLine(ErrCode::Fault,
                               e.report().summary());
        } catch (const ar::util::DiagnosticError &e) {
            serveMetrics().parse_errors.add();
            response =
                errLine(ErrCode::Parse, e.diagnostic().message);
        } catch (const std::exception &e) {
            response = errLine(ErrCode::Internal, e.what());
        } catch (...) {
            response = errLine(ErrCode::Internal,
                               "non-standard exception");
        }
        finishRequest(c, response, close);
    };

    switch (pool_.trySubmit(std::move(task))) {
      case ar::util::ThreadPool::Submit::Queued:
        return;
      case ar::util::ThreadPool::Submit::Overloaded:
        serveMetrics().rejected_overload.add();
        {
            std::lock_guard<std::mutex> lk(m_);
            c->state = Conn::State::Line;
            c->cancel = ar::util::CancelToken();
            --inflight_;
            serveMetrics().inflight.set(
                static_cast<double>(inflight_));
        }
        writeConn(c, errLine(ErrCode::Overloaded,
                             "request queue full (" +
                                 std::to_string(
                                     cfg_.queue_capacity) +
                                 "); retry later"));
        return;
      case ar::util::ThreadPool::Submit::ShuttingDown:
        {
            std::lock_guard<std::mutex> lk(m_);
            c->state = Conn::State::Line;
            c->cancel = ar::util::CancelToken();
            --inflight_;
            serveMetrics().inflight.set(
                static_cast<double>(inflight_));
        }
        writeConn(c, errLine(ErrCode::ShuttingDown, "draining"));
        return;
    }
}

void
Server::finishRequest(const std::shared_ptr<Conn> &c,
                      const std::string &response, bool close)
{
    if (!writeConn(c, response))
        close = true;
    {
        std::lock_guard<std::mutex> lk(m_);
        if (c->state == Conn::State::Busy)
            c->state =
                close ? Conn::State::Close : Conn::State::Line;
        c->cancel = ar::util::CancelToken();
        --inflight_;
        serveMetrics().inflight.set(static_cast<double>(inflight_));
    }
    cv_drain_.notify_all();
    wake(); // Loop must re-add the fd to its poll set.
}

std::string
Server::execute(const Request &req, const ar::util::CancelToken &tok,
                bool degraded, const Emit &emit)
{
    tok.throwIfExpired("request");
    if (degraded)
        serveMetrics().degraded.add();
    if (req.verb == "UPLOAD")
        return handleUpload(req);
    if (req.verb == "EDIT")
        return handleEdit(req);
    if (req.verb == "RUN" || req.verb == "RERUN")
        return handleRun(req, tok, degraded, emit);
    if (req.verb == "SWEEP")
        return handleSweep(req, tok, degraded);
    if (req.verb == "SENS")
        return handleSens(req, tok, degraded);
    if (req.verb == "STALL")
        return handleStall(req, tok);
    throw ProtocolError(ErrCode::BadRequest,
                        "verb '" + req.verb + "' not executable");
}

std::shared_ptr<Server::Model>
Server::findModel(const std::string &name)
{
    std::lock_guard<std::mutex> lk(models_m_);
    auto it = models_.find(name);
    if (it == models_.end())
        throw ProtocolError(ErrCode::UnknownModel,
                            "model '" + sanitize(name) +
                                "' was never uploaded");
    return it->second;
}

std::size_t
Server::clampTrials(std::uint64_t requested, bool degraded) const
{
    std::size_t trials = static_cast<std::size_t>(
        std::min<std::uint64_t>(requested, cfg_.max_trials));
    if (degraded)
        trials = std::min(trials, cfg_.degrade_trials);
    return std::max<std::size_t>(trials, 8);
}

std::string
Server::handleUpload(const Request &req)
{
    const std::string &name = req.args[0];
    if (!validModelName(name))
        throw ProtocolError(ErrCode::BadRequest,
                            "model names are [A-Za-z0-9._-]{1,64}");

    auto model = std::make_shared<Model>();
    model->spec = ar::core::parseSpec(req.body);
    model->spec_text = req.body;
    auto &spec = model->spec;

    // Prewarm every compilation cache now, under this model's own
    // writer lock, so queries never write shared Framework state
    // concurrently.
    std::unique_lock<std::shared_mutex> lk(model->rw);
    model->fw = std::make_unique<ar::core::Framework>(
        ar::mc::PropagationConfig{spec.trials, "latin-hypercube",
                                  spec.threads, spec.fault_policy});
    model->fw->setSystem(spec.system);
    for (const auto &output : spec.outputs)
        model->fw->compiled(output);
    if (spec.outputs.size() > 1)
        model->fw->program(spec.outputs);

    if (spec.reference) {
        model->reference = *spec.reference;
    } else {
        std::map<std::string, double> fixed = spec.bindings.fixed;
        for (const auto &[input, dist] : spec.bindings.uncertain)
            fixed[input] = dist->mean();
        model->reference =
            model->fw->evaluateCertain(spec.output, fixed);
    }

    {
        std::lock_guard<std::mutex> mlk(models_m_);
        models_[name] = model; // Replaces; old model lives on in
                               // any request still holding it.
    }
    return okLine("uploaded model=" + name +
                  " outputs=" + std::to_string(spec.outputs.size()) +
                  " trials=" + std::to_string(spec.trials) +
                  " reference=" + fmtDouble(model->reference));
}

std::string
Server::handleEdit(const Request &req)
{
    const std::string &name = req.args[0];
    auto model = findModel(name);
    serveMetrics().edits.add();

    std::unique_lock<std::shared_mutex> lk(model->rw);
    const std::string text =
        applySpecPatch(model->spec_text, req.body);
    // Re-parsing the whole patched text is the single source of
    // truth: a RERUN after this EDIT answers exactly what a fresh
    // UPLOAD of the same text would, and a bad patch is a typed
    // ERR PARSE with the model untouched.
    ar::core::AnalysisSpec spec = ar::core::parseSpec(text);

    // The edit is absorbed incrementally iff the output list and
    // the uncertain-input set survived: then every changed line is
    // either a pure binding/directive update (no compiled state
    // involved) or an equation replacement the Framework can take
    // through updateEquation's cone-bounded revalidation.
    auto keysOf = [](const auto &m) {
        std::set<std::string> keys;
        for (const auto &kv : m)
            keys.insert(kv.first);
        return keys;
    };
    const bool incremental =
        spec.outputs == model->spec.outputs &&
        keysOf(spec.bindings.uncertain) ==
            keysOf(model->spec.bindings.uncertain);

    ar::core::EditOutcome out;
    bool rebuilt = !incremental;
    if (incremental) {
        std::istringstream pin(req.body);
        std::string raw;
        while (std::getline(pin, raw)) {
            const std::string line = raw.substr(0, raw.find('#'));
            if (ar::util::trim(line).empty() ||
                line.find('=') == std::string::npos)
                continue;
            try {
                const auto r = model->fw->updateEquation(line);
                out.invalidated += r.invalidated;
                out.revalidated += r.revalidated;
                out.patched += r.patched;
                out.recompiled += r.recompiled;
                out.cone_nodes += r.cone_nodes;
            } catch (const ar::util::ParseError &) {
                // An equation form parseSpec accepts but the
                // in-place path cannot (non-symbol left side):
                // discard any partial revalidation and rebuild.
                rebuilt = true;
                out = {};
                break;
            }
        }
    }
    model->spec = std::move(spec);
    if (rebuilt) {
        auto &s = model->spec;
        model->fw = std::make_unique<ar::core::Framework>(
            ar::mc::PropagationConfig{s.trials, "latin-hypercube",
                                      s.threads, s.fault_policy});
        model->fw->setSystem(s.system);
    }
    model->spec_text = text;

    // Re-prewarm the query path.  After an incremental edit these
    // are revalidation no-ops for everything outside the edited
    // cone; after a rebuild they compile the new caches.
    auto &spec_now = model->spec;
    for (const auto &output : spec_now.outputs)
        model->fw->compiled(output);
    if (spec_now.outputs.size() > 1)
        model->fw->program(spec_now.outputs);

    if (spec_now.reference) {
        model->reference = *spec_now.reference;
    } else {
        std::map<std::string, double> fixed =
            spec_now.bindings.fixed;
        for (const auto &[input, dist] : spec_now.bindings.uncertain)
            fixed[input] = dist->mean();
        model->reference =
            model->fw->evaluateCertain(spec_now.output, fixed);
    }

    return okLine(
        "edit model=" + name +
        " invalidated=" + std::to_string(out.invalidated) +
        " revalidated=" + std::to_string(out.revalidated) +
        " patched=" + std::to_string(out.patched) +
        " recompiled=" + std::to_string(out.recompiled) +
        " cone_nodes=" + std::to_string(out.cone_nodes) +
        " rebuilt=" + (rebuilt ? "1" : "0") +
        " reference=" + fmtDouble(model->reference));
}

std::string
Server::handleRun(const Request &req,
                  const ar::util::CancelToken &tok, bool degraded,
                  const Emit &emit)
{
    // RERUN is RUN against the post-EDIT model; it exists so a
    // client can say "re-ask the question I already asked" and a
    // transcript shows which answers followed an edit.
    const bool rerun = req.verb == "RERUN";
    if (req.args.size() != 1)
        throw ProtocolError(ErrCode::BadRequest,
                            "usage: " + req.verb +
                                " <model> [trials= seed= "
                                "deadline_ms= policy= stream= "
                                "ci_target=]");
    auto model = findModel(req.args[0]);
    std::shared_lock<std::shared_mutex> model_lk(model->rw);
    const auto &spec = model->spec;

    ar::mc::PropagationConfig pc;
    pc.trials = clampTrials(req.getU64("trials", spec.trials),
                            degraded);
    pc.sampler = "latin-hypercube";
    pc.threads = 1; // Requests parallelize across, not within.
    pc.fault_policy = policyParam(req, spec.fault_policy);
    pc.cancel = tok;
    const std::uint64_t seed = req.getU64("seed", spec.seed);

    // Progressive streaming: stream=N emits one "PART ..." frame
    // every N merged trial blocks; ci_target= stops the run early
    // once the risk estimate's 95% CI half-width reaches the target.
    // Spec-level `stream` / `ci_target` directives set the defaults.
    const std::uint64_t frame_every = req.getU64("stream", 0);
    const double ci_target =
        req.getDouble("ci_target", spec.ci_target);
    if (!(ci_target >= 0.0))
        throw ProtocolError(ErrCode::BadRequest,
                            "ci_target must be >= 0");
    const bool saturate =
        pc.fault_policy == ar::util::FaultPolicy::Saturate;
    if ((frame_every > 0 || ci_target > 0.0) && saturate) {
        throw ProtocolError(ErrCode::BadRequest,
                            "stream=/ci_target= are incompatible "
                            "with policy=saturate (saturation needs "
                            "the materialized samples)");
    }
    // RUN never reads the sample vectors back, so it streams by
    // default (O(block) memory per request); saturate is the one
    // policy that still needs retention.  The reply is derived from
    // the streaming accumulators either way, so a streamed and a
    // plain RUN of the same request answer byte-identically.
    pc.stream.keep_samples = saturate;
    pc.stream.ci_target = ci_target;
    pc.stream.frame_every = frame_every;

    const std::string verb_word = rerun ? "rerun" : "run";
    if (frame_every > 0 || ci_target > 0.0)
        serveMetrics().stream_runs.add();
    std::function<void(const ar::mc::StreamFrame &)> on_frame;
    if (frame_every > 0) {
        const std::string head =
            "PART " + verb_word + " model=" + req.args[0];
        on_frame = [this, head, &emit](
                       const ar::mc::StreamFrame &frame) {
            const auto &s = frame.stats->front();
            serveMetrics().stream_frames.add();
            emit(head + " blocks=" +
                 std::to_string(frame.blocks_done) + " trials=" +
                 std::to_string(frame.trials_done) + " faults=" +
                 std::to_string(frame.faulty_trials) + " mean=" +
                 fmtDouble(s.moments.mean()) + " stddev=" +
                 fmtDouble(s.moments.stddev()) + " risk=" +
                 fmtDouble(s.risk.risk()) + " ci=" +
                 fmtDouble(s.risk.ciHalfWidth()) + "\n");
        };
    }

    const auto fn = ar::core::makeRiskFunction(spec.risk);
    const ar::core::AnalysisResult res =
        spec.outputs.size() > 1
            ? model->fw->analyzeMulti(spec.outputs, spec.bindings,
                                      *fn, model->reference, seed,
                                      pc, on_frame)
            : model->fw->analyze(spec.output, spec.bindings, *fn,
                                 model->reference, seed, pc,
                                 on_frame);
    if (res.early_stopped)
        serveMetrics().stream_early_stops.add();

    return okLine(
        verb_word + " model=" + req.args[0] +
        " output=" + spec.output +
        " trials=" + std::to_string(pc.trials) +
        " effective=" + std::to_string(res.faults.effective_trials) +
        " faults=" + std::to_string(res.faults.faulty_trials) +
        " mean=" + fmtDouble(res.summary.mean) +
        " stddev=" + fmtDouble(res.summary.stddev) +
        " reference=" + fmtDouble(res.reference) +
        " risk=" + fmtDouble(res.risk) +
        " degraded=" + (degraded ? "1" : "0"));
}

std::string
Server::handleSweep(const Request &req,
                    const ar::util::CancelToken &tok, bool degraded)
{
    ar::model::AppParams app;
    try {
        app = ar::model::appByName(req.get("app", "HPLC"));
    } catch (const ar::util::FatalError &) {
        throw ProtocolError(ErrCode::BadRequest,
                            "unknown app '" + req.get("app") +
                                "' (HPLC|HPHC|LPLC|LPHC)");
    }
    const double sigma = req.getDouble("sigma", 0.3);
    if (!(sigma >= 0.0) || sigma > 1.0)
        throw ProtocolError(ErrCode::BadRequest,
                            "sigma must be in [0, 1]");

    ar::explore::DesignSpaceParams dp;
    dp.total_area = req.getDouble("area", 256.0);
    if (!(dp.total_area >= dp.min_core) || dp.total_area > 4096.0)
        throw ProtocolError(ErrCode::BadRequest,
                            "area must be in [8, 4096]");
    const auto designs = ar::explore::enumerateDesigns(dp);

    ar::explore::SweepConfig sc;
    sc.trials = clampTrials(req.getU64("trials", 2000), degraded);
    sc.seed = req.getU64("seed", 1);
    sc.threads = 1;
    sc.fault_policy =
        policyParam(req, ar::util::FaultPolicy::Discard);
    sc.cancel = tok;

    auto uspec = ar::model::UncertaintySpec::all(sigma);
    uspec.fab = req.getU64("fab", uspec.fab ? 1 : 0) != 0;

    const auto fn =
        ar::core::makeRiskFunction(req.get("risk", "quadratic"));

    // Reference: the conventional design, one core of the full area.
    const ar::model::CoreConfig conventional(
        {{dp.total_area, 1}});
    const double ref = ar::model::HillMartyEvaluator::nominalSpeedup(
        conventional, app.f, app.c);

    ar::explore::DesignSpaceEvaluator eval(designs, app, uspec, sc);
    const auto outcomes = eval.evaluateAll(*fn, ref);

    const std::size_t knee = ar::explore::kneePoint(outcomes);
    std::size_t best_perf = 0, min_risk = 0;
    for (std::size_t d = 1; d < outcomes.size(); ++d) {
        if (outcomes[d].expected > outcomes[best_perf].expected)
            best_perf = d;
        if (outcomes[d].risk < outcomes[min_risk].risk)
            min_risk = d;
    }

    return okLine(
        "sweep app=" + app.name + " sigma=" + fmtDouble(sigma) +
        " designs=" + std::to_string(designs.size()) +
        " trials=" + std::to_string(sc.trials) +
        " knee=" + wireConfig(designs[knee]) +
        " knee_expected=" + fmtDouble(outcomes[knee].expected) +
        " knee_risk=" + fmtDouble(outcomes[knee].risk) +
        " best_perf=" + wireConfig(designs[best_perf]) +
        " min_risk=" + wireConfig(designs[min_risk]) +
        " degraded=" + (degraded ? "1" : "0"));
}

std::string
Server::handleSens(const Request &req,
                   const ar::util::CancelToken &tok, bool degraded)
{
    if (req.args.size() != 1)
        throw ProtocolError(ErrCode::BadRequest,
                            "usage: SENS <model> [trials= seed= "
                            "deadline_ms= policy=]");
    auto model = findModel(req.args[0]);
    std::shared_lock<std::shared_mutex> model_lk(model->rw);
    const auto &spec = model->spec;
    if (spec.bindings.uncertain.empty())
        throw ProtocolError(ErrCode::BadRequest,
                            "model has no uncertain inputs");

    ar::mc::SensitivityConfig sc;
    sc.trials = clampTrials(req.getU64("trials", 4096), degraded);
    sc.threads = 1;
    sc.fault_policy = policyParam(req, spec.fault_policy);
    sc.cancel = tok;
    const std::uint64_t seed = req.getU64("seed", spec.seed);

    ar::util::Rng rng(seed);
    // The CompiledExpr overload reads the prewarmed cache only; no
    // shared compilation state is touched on the query path.
    const auto res = ar::mc::sobolIndices(
        model->fw->compiled(spec.output), spec.bindings, sc, rng);

    std::string line =
        "sens model=" + req.args[0] + " output=" + spec.output +
        " trials=" + std::to_string(sc.trials) +
        " mean=" + fmtDouble(res.output_mean) +
        " variance=" + fmtDouble(res.output_variance) +
        " indices=" + std::to_string(res.indices.size());
    for (const auto &index : res.indices) {
        line += ' ' + index.input + '=' +
                fmtDouble(index.first_order) + ':' +
                fmtDouble(index.total);
    }
    line += " degraded=";
    line += degraded ? '1' : '0';
    return okLine(line);
}

std::string
Server::handleStall(const Request &req,
                    const ar::util::CancelToken &tok)
{
    if (req.args.size() != 1)
        throw ProtocolError(ErrCode::BadRequest,
                            "usage: STALL <ms>");
    Request ms_probe;
    ms_probe.params["ms"] = req.args[0];
    const std::uint64_t ms = ms_probe.getU64("ms", 0);
    if (ms > 60000)
        throw ProtocolError(ErrCode::BadRequest,
                            "stall capped at 60000 ms");
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    // Cooperative stall: sleeps in small slices and polls the token
    // exactly like a trial loop polls at block boundaries, so
    // deadline/cancellation tests get deterministic latency bounds.
    while (std::chrono::steady_clock::now() < until) {
        tok.throwIfExpired("stall");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    tok.throwIfExpired("stall");
    return okLine("stalled ms=" + std::to_string(ms));
}

std::string
Server::handleMetrics()
{
    const std::string json =
        obs::MetricsRegistry::global().scrapeJson();
    return "OK metrics nbytes=" + std::to_string(json.size()) +
           "\n" + json;
}

void
Server::drain()
{
    const auto t0 = std::chrono::steady_clock::now();
    ::close(listen_fd_);
    listen_fd_ = -1;

    // Answer pipelined requests already buffered on idle connections
    // with a typed refusal, then close everything that is not busy.
    std::vector<std::shared_ptr<Conn>> idle, busy;
    {
        std::lock_guard<std::mutex> lk(m_);
        for (auto &[fd, c] : conns_) {
            if (c->state == Conn::State::Busy)
                busy.push_back(c);
            else
                idle.push_back(c);
        }
    }
    for (auto &c : idle) {
        writeConn(c, errLine(ErrCode::ShuttingDown, "draining"));
        closeConn(c);
    }

    // Give in-flight requests drain_timeout to finish naturally...
    {
        std::unique_lock<std::mutex> lk(m_);
        cv_drain_.wait_for(lk, cfg_.drain_timeout,
                           [&] { return inflight_ == 0; });
        if (inflight_ > 0) {
            // ...then cancel their tokens; every trial loop stops at
            // its next block boundary and answers ERR CANCELLED.
            for (auto &[fd, c] : conns_)
                c->cancel.cancel();
            cv_drain_.wait(lk, [&] { return inflight_ == 0; });
        }
    }
    pool_.waitTasksIdle();

    {
        std::vector<std::shared_ptr<Conn>> rest;
        {
            std::lock_guard<std::mutex> lk(m_);
            for (auto &[fd, c] : conns_)
                rest.push_back(c);
        }
        for (auto &c : rest)
            closeConn(c);
    }

    serveMetrics().drain_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
}

} // namespace ar::serve
