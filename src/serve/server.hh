/**
 * @file
 * archriskd: a fault-isolated, back-pressured risk-analysis daemon.
 *
 * One event-loop thread owns the listening socket and every
 * connection's read side; a bounded ThreadPool task queue executes
 * requests.  The robustness properties are structural:
 *
 *  - Admission control: a request only enters the system through
 *    ThreadPool::trySubmit on a bounded queue.  When the queue is
 *    full the client gets "ERR OVERLOADED" immediately -- the
 *    acceptor never blocks and never buffers unbounded work.
 *  - Per-request deadlines: every request carries a CancelToken
 *    (explicit deadline_ms parameter or the configured default)
 *    threaded through PropagationConfig / SweepConfig /
 *    SensitivityConfig, so a late request stops at the next trial
 *    block and answers "ERR DEADLINE_EXPIRED" instead of hogging a
 *    worker.
 *  - Fault isolation: a request that faults (NaN/Inf under
 *    FailFast), fails to parse, or exceeds its deadline produces one
 *    typed ERR line; the worker, the connection, and every
 *    concurrent request are unaffected.  Results of concurrent
 *    healthy requests are bit-identical to an unloaded run.
 *  - Graceful degradation: above a queue-depth watermark, trial
 *    counts are clamped before requests are rejected outright
 *    (responses carry degraded=1).
 *  - Bounded framing: request lines and UPLOAD bodies larger than
 *    max_request_bytes answer "ERR TOO_LARGE"; idle connections are
 *    reaped after idle_timeout.
 *  - Clean drain: requestStop() (async-signal-safe) stops accepting,
 *    lets in-flight requests finish within drain_timeout, then
 *    cancels their tokens; awaitTermination() returns once the pool
 *    is idle and every socket is closed.
 *
 * Models are uploaded once (spec text compiled into a Framework with
 * prewarmed expression caches) and queried many times; concurrent
 * RUNs on one model only read the caches.  EDIT mutates a model in
 * place under a writer lock -- the stored spec text is patched line
 * by line, re-parsed, and the Framework's caches are revalidated
 * incrementally (Const-slot patch or dirty-cone recompile) instead
 * of being rebuilt -- so a RERUN after an EDIT answers exactly what
 * a fresh UPLOAD + RUN of the edited spec would.
 */

#ifndef AR_SERVE_SERVER_HH
#define AR_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/spec.hh"
#include "serve/protocol.hh"
#include "util/cancel.hh"
#include "util/thread_pool.hh"

namespace ar::serve
{

/** Daemon tuning knobs. */
struct ServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;        ///< 0 = ephemeral (see port()).

    /** Request worker threads; 0 = hardware concurrency. */
    std::size_t workers = 0;

    /** Bounded request queue; admission control sheds beyond it. */
    std::size_t queue_capacity = 64;

    /** Largest request line or UPLOAD body accepted. */
    std::size_t max_request_bytes = 1 << 20;

    /** Hard cap on trials any single request may ask for. */
    std::size_t max_trials = 1000000;

    /** Reap connections idle longer than this; 0 disables. */
    std::chrono::milliseconds idle_timeout{30000};

    /** Deadline applied to requests that carry none; 0 = none. */
    std::chrono::milliseconds default_deadline{0};

    /** How long a drain waits before cancelling in-flight work. */
    std::chrono::milliseconds drain_timeout{5000};

    /**
     * Graceful degradation: when the queue holds at least this many
     * pending requests, clamp trial counts to degrade_trials instead
     * of running full-size.  0 disables degradation.
     */
    std::size_t degrade_watermark = 0;
    std::size_t degrade_trials = 1000;

    /** Enable test-only verbs (STALL).  Never set in production. */
    bool test_verbs = false;
};

/** The archriskd server.  start() to run, requestStop() to drain. */
class Server
{
  public:
    explicit Server(ServerConfig cfg = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the event-loop thread.  Fatal when the
     * address cannot be bound.  After start(), port() reports the
     * actual port (useful with cfg.port = 0).
     */
    void start();

    /** @return the bound port; valid after start(). */
    std::uint16_t port() const { return port_; }

    /**
     * Begin a graceful drain: stop accepting, finish in-flight
     * requests (up to drain_timeout, then cancel their tokens), shut
     * the loop down.  Async-signal-safe (an atomic store plus one
     * pipe write), so it can be called from a SIGTERM handler.
     * Idempotent.
     */
    void requestStop();

    /**
     * Block until the event loop has fully drained and exited.
     * @return 0 on a clean drain.
     */
    int awaitTermination();

    /** @return requests currently queued or executing (for tests). */
    std::size_t inflight() const;

  private:
    struct Conn;
    struct Model;

    void loopThread();
    void acceptReady();
    void readReady(const std::shared_ptr<Conn> &c);
    void processInput(const std::shared_ptr<Conn> &c);
    void dispatch(const std::shared_ptr<Conn> &c, Request req);
    void finishRequest(const std::shared_ptr<Conn> &c,
                       const std::string &response, bool close);
    bool writeConn(const std::shared_ptr<Conn> &c,
                   const std::string &data);
    void closeConn(const std::shared_ptr<Conn> &c);
    void wake();
    void drain();

    /** Mid-request line sink for progressive results ("PART ..."
     * frames); returns false once the connection is gone. */
    using Emit = std::function<bool(const std::string &)>;

    std::string execute(const Request &req,
                        const ar::util::CancelToken &tok,
                        bool degraded, const Emit &emit);
    std::string handleUpload(const Request &req);
    std::string handleEdit(const Request &req);
    std::string handleRun(const Request &req,
                          const ar::util::CancelToken &tok,
                          bool degraded, const Emit &emit);
    std::string handleSweep(const Request &req,
                            const ar::util::CancelToken &tok,
                            bool degraded);
    std::string handleSens(const Request &req,
                           const ar::util::CancelToken &tok,
                           bool degraded);
    std::string handleStall(const Request &req,
                            const ar::util::CancelToken &tok);
    std::string handleMetrics();

    std::shared_ptr<Model> findModel(const std::string &name);
    std::size_t clampTrials(std::uint64_t requested,
                            bool degraded) const;

    ServerConfig cfg_;
    ar::util::ThreadPool pool_;
    std::uint16_t port_ = 0;

    int listen_fd_ = -1;
    int wake_r_ = -1, wake_w_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<bool> started_{false};
    std::thread loop_;

    mutable std::mutex m_;       ///< Conn states + inflight count.
    std::condition_variable cv_drain_;
    std::map<int, std::shared_ptr<Conn>> conns_;
    std::size_t inflight_ = 0;

    std::mutex models_m_;
    std::map<std::string, std::shared_ptr<Model>> models_;
};

} // namespace ar::serve

#endif // AR_SERVE_SERVER_HH
