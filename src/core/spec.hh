/**
 * @file
 * Text-file front end for complete analyses: a spec file declares the
 * model equations, input bindings (fixed values, named distributions,
 * or raw data files routed through the extraction pipeline),
 * correlations, the responsive variable, and the risk function.  This
 * is the batch interface the original Archrisk tool offers, so a
 * whole analysis can be driven without writing C++.
 *
 * Format (one statement per line, '#' comments):
 *
 *   # model equations: any line containing '='
 *   Speedup = 1 / (1 - f + f / s)
 *
 *   fixed s 16
 *   uncertain f truncnormal 0.95 0.02 0 1
 *   uncertain A lognormal-ms 10 3
 *   samples L measurements.txt      # extract from observed data
 *   correlate f A 0.4
 *   states Ch0 up:1:0.92 degraded:0.5:0.05 dead:0:0.03
 *   structure kofn(2, Ch0, Ch1, Ch2) # defines variable 'Structure'
 *   output Speedup                  # more names co-propagate fused
 *   reference 12.5                  # optional; default: certain eval
 *   risk quadratic                  # step|linear|quadratic|monetary
 *   trials 10000
 *   seed 7
 *   threads 4                       # workers; 0 = all cores
 *   fault_policy fail_fast          # fail_fast|discard|saturate
 *   stream on                       # on|off: O(block)-memory run
 *   ci_target 0.005                 # risk-CI early stop half-width
 *   telemetry metrics               # off|metrics|trace|all
 *
 * '#' starts a comment anywhere on a line (inline comments included).
 *
 * Distribution forms for `uncertain`:
 *   normal MU SIGMA
 *   truncnormal MU SIGMA LO HI
 *   lognormal MU SIGMA              (log-space parameters)
 *   lognormal-ms MEAN SD            (moment parameterization)
 *   uniform LO HI
 *   bernoulli P
 *   binomial N P
 *   normbinomial M P
 *   degenerate VALUE
 *
 * `states NAME state:multiplier:prob ...` declares a multi-state
 * component (risk/multi_state.hh): each trial samples one state and
 * NAME evaluates to its performance multiplier.  Probabilities may
 * sum to less than 1 -- the gap is unmodeled-state mass that samples
 * NaN and flows through the fault policy; such specs must declare an
 * explicit `reference`.  `structure EXPR` defines the variable
 * `Structure` from an expression over the state variables; the
 * functions series(...), parallel(...), and kofn(k, ...) lower to
 * the reliability structure functions of symbolic/structure.hh.
 */

#ifndef AR_CORE_SPEC_HH
#define AR_CORE_SPEC_HH

#include <memory>
#include <optional>
#include <string>

#include "core/framework.hh"
#include "risk/multi_state.hh"
#include "risk/risk_function.hh"

namespace ar::core
{

/** A fully parsed analysis specification. */
struct AnalysisSpec
{
    ar::symbolic::EquationSystem system;
    ar::mc::InputBindings bindings;

    /**
     * Multi-state components declared with `states`, in directive
     * order.  Each also appears in bindings.uncertain as a
     * Categorical over its state multipliers; this list preserves
     * the state names and probabilities for reporting.
     */
    std::vector<ar::risk::MultiStateComponent> components;
    std::string output;                 ///< Responsive variable.

    /**
     * Every declared output, in directive order; outputs[0] ==
     * output.  With more than one, runSpec() propagates them all
     * through one fused CompiledProgram (the first is risk-analyzed,
     * the rest land in AnalysisResult::co_outputs).
     */
    std::vector<std::string> outputs;
    std::optional<double> reference;    ///< Explicit reference P.
    std::string risk = "quadratic";     ///< Risk-function name.
    std::size_t trials = 10000;
    std::uint64_t seed = 1;
    std::size_t threads = 0;            ///< 0 = hardware concurrency.

    /** Handling of trials with non-finite outputs. */
    ar::util::FaultPolicy fault_policy = ar::util::FaultPolicy::FailFast;

    /**
     * `stream on`: run without sample retention (O(block) memory);
     * summary and risk come from the streaming accumulators, which
     * are bit-identical to a sample-keeping run's accumulators.
     * Incompatible with fault_policy saturate.
     */
    bool stream = false;

    /**
     * `ci_target X`: stop the propagation at the first block boundary
     * where the risk estimate's 95% CI half-width is <= X
     * (deterministic for any thread count; 0 disables).
     */
    double ci_target = 0.0;

    /**
     * Telemetry requested by the spec's `telemetry` directive.
     * runSpec() only ever *enables* the corresponding sinks -- the
     * CLI (or embedding application) owns the flag lifecycle and
     * decides where scraped data goes.
     */
    bool telemetry_metrics = false;
    bool telemetry_trace = false;
};

/**
 * Parse a spec from text.
 *
 * @throws ar::util::ParseError on malformed statements, carrying the
 *         1-based line and column plus the offending line for caret
 *         rendering.  `samples` directives resolve their file paths
 *         relative to the process's working directory.
 */
AnalysisSpec parseSpec(const std::string &text);

/** Read and parse a spec file. */
AnalysisSpec loadSpecFile(const std::string &path);

/**
 * Instantiate a risk function by name: "step", "linear",
 * "quadratic", or "monetary" (Table-5 bins).
 */
std::unique_ptr<ar::risk::RiskFunction>
makeRiskFunction(const std::string &name);

/**
 * Execute a parsed spec: build the framework, resolve the reference
 * (certain evaluation with uncertain inputs at their means when no
 * explicit `reference` was given), propagate, and score risk.
 *
 * @param cancel Optional cancellation / deadline token threaded into
 *        the propagation (see PropagationConfig::cancel); a tripped
 *        token raises ar::util::CancelledError within one trial
 *        block.  Re-running the same spec afterwards is bit-identical
 *        to a run that was never cancelled.
 */
AnalysisResult runSpec(const AnalysisSpec &spec,
                       ar::util::CancelToken cancel = {});

} // namespace ar::core

#endif // AR_CORE_SPEC_HH
