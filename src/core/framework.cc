#include "core/framework.hh"

#include "util/logging.hh"

namespace ar::core
{

Framework::Framework(ar::mc::PropagationConfig cfg)
    : propagator(std::move(cfg))
{
}

void
Framework::setSystem(ar::symbolic::EquationSystem sys_in)
{
    sys = std::make_unique<ar::symbolic::EquationSystem>(
        std::move(sys_in));
    cache.clear();
}

const ar::symbolic::EquationSystem &
Framework::system() const
{
    if (!sys)
        ar::util::fatal("Framework: no system model installed");
    return *sys;
}

const ar::symbolic::CompiledExpr &
Framework::compiled(const std::string &responsive) const
{
    if (auto it = cache.find(responsive); it != cache.end())
        return it->second;
    const auto resolved = system().resolve(responsive);
    auto [it, inserted] = cache.emplace(
        responsive, ar::symbolic::CompiledExpr(resolved));
    return it->second;
}

double
Framework::evaluateCertain(
    const std::string &responsive,
    const std::map<std::string, double> &fixed) const
{
    const auto &fn = compiled(responsive);
    std::vector<double> args;
    args.reserve(fn.argNames().size());
    for (const auto &name : fn.argNames()) {
        auto it = fixed.find(name);
        if (it == fixed.end())
            ar::util::fatal("Framework::evaluateCertain: no value for "
                            "input '", name, "'");
        args.push_back(it->second);
    }
    return fn.eval(args);
}

AnalysisResult
Framework::analyze(const std::string &responsive,
                   const ar::mc::InputBindings &in,
                   const ar::risk::RiskFunction &fn, double reference,
                   std::uint64_t seed) const
{
    AnalysisResult res;
    ar::util::Rng rng(seed);
    auto prop = propagator.runManyReport({&compiled(responsive)}, in,
                                         rng);
    res.samples = std::move(prop.samples.front());
    res.faults = std::move(prop.faults);
    res.summary = ar::stats::summarize(res.samples);
    res.reference = reference;
    res.risk = ar::risk::archRisk(res.samples, reference, fn);
    return res;
}

std::vector<double>
Framework::propagate(const std::string &responsive,
                     const ar::mc::InputBindings &in,
                     std::uint64_t seed) const
{
    ar::util::Rng rng(seed);
    return propagator.run(compiled(responsive), in, rng);
}

} // namespace ar::core
