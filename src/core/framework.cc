#include "core/framework.hh"

#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ar::core
{

namespace
{

struct CoreMetrics
{
    obs::Counter expr_cache_hits = obs::MetricsRegistry::global()
                                       .counter("core.expr_cache.hits");
    obs::Counter expr_cache_misses =
        obs::MetricsRegistry::global().counter(
            "core.expr_cache.misses");
    obs::Counter prog_cache_hits = obs::MetricsRegistry::global()
                                       .counter("core.prog_cache.hits");
    obs::Counter prog_cache_misses =
        obs::MetricsRegistry::global().counter(
            "core.prog_cache.misses");
    obs::Counter analyses =
        obs::MetricsRegistry::global().counter("core.analyses");
    obs::Counter compile_ns =
        obs::MetricsRegistry::global().counter("core.compile_ns");
    obs::Counter reduce_ns =
        obs::MetricsRegistry::global().counter("core.reduce_ns");
};

CoreMetrics &
coreMetrics()
{
    static CoreMetrics m;
    return m;
}

} // namespace

Framework::Framework(ar::mc::PropagationConfig cfg)
    : propagator(std::move(cfg))
{
}

void
Framework::setSystem(ar::symbolic::EquationSystem sys_in)
{
    sys = std::make_unique<ar::symbolic::EquationSystem>(
        std::move(sys_in));
    expr_ids.clear();
    cache.clear();
    prog_ids.clear();
    prog_cache.clear();
}

const ar::symbolic::EquationSystem &
Framework::system() const
{
    if (!sys)
        ar::util::fatal("Framework: no system model installed");
    return *sys;
}

const ar::symbolic::CompiledExpr &
Framework::compiled(const std::string &responsive) const
{
    if (auto nit = expr_ids.find(responsive);
        nit != expr_ids.end()) {
        if (obs::metricsEnabled())
            coreMetrics().expr_cache_hits.add();
        return cache.at(nit->second);
    }
    // Unknown name: resolve it, then key the tape on the interned id
    // of the resolved root so an aliasing name (one that resolves to
    // the same hash-consed expression) reuses the existing tape.
    const auto resolved = system().resolve(responsive);
    const std::uint64_t id = resolved->id();
    expr_ids.emplace(responsive, id);
    if (auto it = cache.find(id); it != cache.end()) {
        if (obs::metricsEnabled())
            coreMetrics().expr_cache_hits.add();
        return it->second;
    }
    if (obs::metricsEnabled())
        coreMetrics().expr_cache_misses.add();
    obs::ScopedPhase phase("core.compile", coreMetrics().compile_ns);
    auto [it, inserted] =
        cache.emplace(id, ar::symbolic::CompiledExpr(resolved));
    return it->second;
}

const ar::symbolic::CompiledProgram &
Framework::program(const std::vector<std::string> &responsives) const
{
    if (responsives.empty())
        ar::util::fatal("Framework::program: no responsive variables");
    if (auto nit = prog_ids.find(responsives);
        nit != prog_ids.end()) {
        if (obs::metricsEnabled())
            coreMetrics().prog_cache_hits.add();
        return prog_cache.at(nit->second);
    }
    // Unknown name list: resolve it, then key the fused program on
    // the interned ids of the resolved roots so two output lists
    // naming the same expressions (under aliases) share one program.
    std::vector<ar::symbolic::ExprPtr> forest;
    forest.reserve(responsives.size());
    std::vector<std::uint64_t> ids;
    ids.reserve(responsives.size());
    for (const auto &responsive : responsives) {
        forest.push_back(system().resolve(responsive));
        ids.push_back(forest.back()->id());
    }
    prog_ids.emplace(responsives, ids);
    if (auto it = prog_cache.find(ids); it != prog_cache.end()) {
        if (obs::metricsEnabled())
            coreMetrics().prog_cache_hits.add();
        return it->second;
    }
    if (obs::metricsEnabled())
        coreMetrics().prog_cache_misses.add();
    obs::ScopedPhase phase("core.compile", coreMetrics().compile_ns);
    auto [it, inserted] = prog_cache.emplace(
        std::move(ids), ar::symbolic::CompiledProgram(forest));
    return it->second;
}

double
Framework::evaluateCertain(
    const std::string &responsive,
    const std::map<std::string, double> &fixed) const
{
    const auto &fn = compiled(responsive);
    std::vector<double> args;
    args.reserve(fn.argNames().size());
    for (const auto &name : fn.argNames()) {
        auto it = fixed.find(name);
        if (it == fixed.end())
            ar::util::fatal("Framework::evaluateCertain: no value for "
                            "input '", name, "'");
        args.push_back(it->second);
    }
    return fn.eval(args);
}

AnalysisResult
Framework::analyzeWith(const ar::mc::Propagator &prop,
                       const std::string &responsive,
                       const ar::mc::InputBindings &in,
                       const ar::risk::RiskFunction &fn,
                       double reference, std::uint64_t seed) const
{
    obs::TraceSpan span("core.analyze");
    if (obs::metricsEnabled())
        coreMetrics().analyses.add();
    AnalysisResult res;
    ar::util::Rng rng(seed);
    auto out = prop.runManyReport({&compiled(responsive)}, in, rng);
    res.samples = std::move(out.samples.front());
    res.faults = std::move(out.faults);
    obs::ScopedPhase reduce("core.reduce", coreMetrics().reduce_ns);
    res.summary = ar::stats::summarize(res.samples);
    res.reference = reference;
    res.risk = ar::risk::archRisk(res.samples, reference, fn);
    return res;
}

AnalysisResult
Framework::analyzeMultiWith(
    const ar::mc::Propagator &prop,
    const std::vector<std::string> &responsives,
    const ar::mc::InputBindings &in, const ar::risk::RiskFunction &fn,
    double reference, std::uint64_t seed) const
{
    obs::TraceSpan span("core.analyze_multi");
    if (obs::metricsEnabled())
        coreMetrics().analyses.add();
    AnalysisResult res;
    ar::util::Rng rng(seed);
    auto out = prop.runMultiReport(program(responsives), in, rng);
    res.samples = std::move(out.samples.front());
    res.faults = std::move(out.faults);
    obs::ScopedPhase reduce("core.reduce", coreMetrics().reduce_ns);
    res.summary = ar::stats::summarize(res.samples);
    res.reference = reference;
    res.risk = ar::risk::archRisk(res.samples, reference, fn);
    res.co_outputs.reserve(responsives.size() - 1);
    for (std::size_t o = 1; o < responsives.size(); ++o) {
        CoOutput co;
        co.name = responsives[o];
        co.samples = std::move(out.samples[o]);
        co.summary = ar::stats::summarize(co.samples);
        res.co_outputs.push_back(std::move(co));
    }
    return res;
}

AnalysisResult
Framework::analyze(const std::string &responsive,
                   const ar::mc::InputBindings &in,
                   const ar::risk::RiskFunction &fn, double reference,
                   std::uint64_t seed) const
{
    return analyzeWith(propagator, responsive, in, fn, reference,
                       seed);
}

AnalysisResult
Framework::analyze(const std::string &responsive,
                   const ar::mc::InputBindings &in,
                   const ar::risk::RiskFunction &fn, double reference,
                   std::uint64_t seed,
                   const ar::mc::PropagationConfig &cfg) const
{
    return analyzeWith(ar::mc::Propagator(cfg), responsive, in, fn,
                       reference, seed);
}

AnalysisResult
Framework::analyzeMulti(const std::vector<std::string> &responsives,
                        const ar::mc::InputBindings &in,
                        const ar::risk::RiskFunction &fn,
                        double reference, std::uint64_t seed) const
{
    return analyzeMultiWith(propagator, responsives, in, fn,
                            reference, seed);
}

AnalysisResult
Framework::analyzeMulti(const std::vector<std::string> &responsives,
                        const ar::mc::InputBindings &in,
                        const ar::risk::RiskFunction &fn,
                        double reference, std::uint64_t seed,
                        const ar::mc::PropagationConfig &cfg) const
{
    return analyzeMultiWith(ar::mc::Propagator(cfg), responsives, in,
                            fn, reference, seed);
}

std::vector<double>
Framework::propagate(const std::string &responsive,
                     const ar::mc::InputBindings &in,
                     std::uint64_t seed) const
{
    ar::util::Rng rng(seed);
    return propagator.run(compiled(responsive), in, rng);
}

} // namespace ar::core
