#include "core/framework.hh"

#include <set>

#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "symbolic/parser.hh"
#include "util/logging.hh"

namespace ar::core
{

namespace
{

struct CoreMetrics
{
    obs::Counter expr_cache_hits = obs::MetricsRegistry::global()
                                       .counter("core.expr_cache.hits");
    obs::Counter expr_cache_misses =
        obs::MetricsRegistry::global().counter(
            "core.expr_cache.misses");
    obs::Counter prog_cache_hits = obs::MetricsRegistry::global()
                                       .counter("core.prog_cache.hits");
    obs::Counter prog_cache_misses =
        obs::MetricsRegistry::global().counter(
            "core.prog_cache.misses");
    obs::Counter analyses =
        obs::MetricsRegistry::global().counter("core.analyses");
    obs::Counter compile_ns =
        obs::MetricsRegistry::global().counter("core.compile_ns");
    obs::Counter reduce_ns =
        obs::MetricsRegistry::global().counter("core.reduce_ns");
    obs::Counter edits =
        obs::MetricsRegistry::global().counter("framework.edits");
    obs::Counter patch_hits =
        obs::MetricsRegistry::global().counter("framework.patch.hits");
    obs::Counter patch_misses = obs::MetricsRegistry::global().counter(
        "framework.patch.misses");
};

CoreMetrics &
coreMetrics()
{
    static CoreMetrics m;
    return m;
}

/** Build the streaming observer for one analysis: archRisk's
 * per-sample cost on the risk-analyzed output plus the caller's
 * progress callback. */
ar::mc::StreamObserver
makeObserver(const ar::risk::RiskFunction &fn, double reference,
             const std::function<void(const ar::mc::StreamFrame &)>
                 &on_frame)
{
    ar::mc::StreamObserver observer;
    observer.cost = [&fn, reference](double x) {
        return fn.cost(x, reference);
    };
    observer.reference = reference;
    observer.on_frame = on_frame;
    return observer;
}

/** Summary derived from streaming moments (streamed runs have no
 * retained samples to summarize; skewness/kurtosis are unavailable
 * online and read 0). */
ar::stats::Summary
streamSummary(const ar::stats::StreamMoments &m)
{
    ar::stats::Summary s;
    s.n = m.count();
    s.mean = m.mean();
    s.stddev = m.stddev();
    s.variance = m.variance();
    s.min = m.min();
    s.max = m.max();
    return s;
}

/** Copy the engine-level accounting into the analysis result. */
void
fillStreamFields(AnalysisResult &res, ar::mc::Propagation &out,
                 bool streamed)
{
    res.stats = std::move(out.stats);
    res.blocks = out.blocks;
    res.trials_run = out.trials_run;
    res.peak_bytes = out.peak_bytes;
    res.early_stopped = out.early_stopped;
    res.streamed = streamed;
}

} // namespace

Framework::Framework(ar::mc::PropagationConfig cfg)
    : propagator(std::move(cfg))
{
}

void
Framework::setSystem(ar::symbolic::EquationSystem sys_in)
{
    sys = std::make_unique<ar::symbolic::EquationSystem>(
        std::move(sys_in));
    expr_ids.clear();
    cache.clear();
    prog_ids.clear();
    prog_cache.clear();
}

const ar::symbolic::EquationSystem &
Framework::system() const
{
    if (!sys)
        ar::util::fatal("Framework: no system model installed");
    return *sys;
}

EditOutcome
Framework::updateEquation(const ar::symbolic::Equation &eq)
{
    if (!sys)
        ar::util::fatal("Framework: no system model installed");
    EditOutcome out;
    out.invalidated = sys->replaceEquation(eq);
    if (obs::metricsEnabled())
        coreMetrics().edits.add();

    // Revalidate the per-name expression cache.  Re-resolving is
    // cheap for names outside the edited cone (their memo entries
    // survived), and the interned id tells us exactly whether the
    // cached tape is still the right one.
    std::set<std::uint64_t> live;
    for (auto &[name, id] : expr_ids) {
        const auto resolved = sys->resolve(name);
        const std::uint64_t nid = resolved->id();
        if (nid == id) {
            ++out.revalidated;
        } else {
            id = nid;
            if (cache.count(nid)) {
                ++out.revalidated; // an alias already rebuilt it
            } else {
                obs::ScopedPhase phase("core.compile",
                                       coreMetrics().compile_ns);
                cache.emplace(nid,
                              ar::symbolic::CompiledExpr(resolved));
                ++out.recompiled;
            }
        }
        live.insert(nid);
    }
    for (auto it = cache.begin(); it != cache.end();) {
        if (live.count(it->first))
            ++it;
        else
            it = cache.erase(it); // no name resolves here any more
    }

    // Revalidate the fused-program cache.  Programs are updated in
    // place -- Const-slot patch when the edit only moved constants,
    // dirty-cone recompile through the warm builder otherwise -- and
    // rekeyed under the re-resolved interned ids.
    std::map<std::vector<std::uint64_t>, ar::symbolic::CompiledProgram>
        new_prog_cache;
    for (auto &[names, ids] : prog_ids) {
        std::vector<ar::symbolic::ExprPtr> forest;
        std::vector<std::uint64_t> nids;
        forest.reserve(names.size());
        nids.reserve(names.size());
        for (const auto &name : names) {
            forest.push_back(sys->resolve(name));
            nids.push_back(forest.back()->id());
        }
        if (new_prog_cache.count(nids)) {
            ids = std::move(nids); // an aliasing list already updated it
            continue;
        }
        auto old_it = prog_cache.find(ids);
        if (old_it == prog_cache.end()) {
            // The old key was shared with a list that diverged under
            // the edit and consumed the program: compile fresh.
            obs::ScopedPhase phase("core.compile",
                                   coreMetrics().compile_ns);
            new_prog_cache.emplace(
                nids, ar::symbolic::CompiledProgram(forest));
            ++out.recompiled;
            if (obs::metricsEnabled())
                coreMetrics().patch_misses.add();
            ids = std::move(nids);
            continue;
        }
        auto node = prog_cache.extract(old_it);
        if (nids == ids) {
            ++out.revalidated;
        } else if (node.mapped().tryPatch(forest)) {
            ++out.patched;
            if (obs::metricsEnabled())
                coreMetrics().patch_hits.add();
        } else {
            obs::ScopedPhase phase("core.compile",
                                   coreMetrics().compile_ns);
            out.cone_nodes += node.mapped().recompile(forest);
            ++out.recompiled;
            if (obs::metricsEnabled())
                coreMetrics().patch_misses.add();
        }
        node.key() = nids;
        new_prog_cache.insert(std::move(node));
        ids = std::move(nids);
    }
    prog_cache = std::move(new_prog_cache);
    return out;
}

EditOutcome
Framework::updateEquation(std::string_view text)
{
    return updateEquation(ar::symbolic::parseEquation(text));
}

const ar::symbolic::CompiledExpr &
Framework::compiled(const std::string &responsive) const
{
    if (auto nit = expr_ids.find(responsive);
        nit != expr_ids.end()) {
        if (obs::metricsEnabled())
            coreMetrics().expr_cache_hits.add();
        return cache.at(nit->second);
    }
    // Unknown name: resolve it, then key the tape on the interned id
    // of the resolved root so an aliasing name (one that resolves to
    // the same hash-consed expression) reuses the existing tape.
    const auto resolved = system().resolve(responsive);
    const std::uint64_t id = resolved->id();
    expr_ids.emplace(responsive, id);
    if (auto it = cache.find(id); it != cache.end()) {
        if (obs::metricsEnabled())
            coreMetrics().expr_cache_hits.add();
        return it->second;
    }
    if (obs::metricsEnabled())
        coreMetrics().expr_cache_misses.add();
    obs::ScopedPhase phase("core.compile", coreMetrics().compile_ns);
    auto [it, inserted] =
        cache.emplace(id, ar::symbolic::CompiledExpr(resolved));
    return it->second;
}

const ar::symbolic::CompiledProgram &
Framework::program(const std::vector<std::string> &responsives) const
{
    if (responsives.empty())
        ar::util::fatal("Framework::program: no responsive variables");
    if (auto nit = prog_ids.find(responsives);
        nit != prog_ids.end()) {
        if (obs::metricsEnabled())
            coreMetrics().prog_cache_hits.add();
        return prog_cache.at(nit->second);
    }
    // Unknown name list: resolve it, then key the fused program on
    // the interned ids of the resolved roots so two output lists
    // naming the same expressions (under aliases) share one program.
    std::vector<ar::symbolic::ExprPtr> forest;
    forest.reserve(responsives.size());
    std::vector<std::uint64_t> ids;
    ids.reserve(responsives.size());
    for (const auto &responsive : responsives) {
        forest.push_back(system().resolve(responsive));
        ids.push_back(forest.back()->id());
    }
    prog_ids.emplace(responsives, ids);
    if (auto it = prog_cache.find(ids); it != prog_cache.end()) {
        if (obs::metricsEnabled())
            coreMetrics().prog_cache_hits.add();
        return it->second;
    }
    if (obs::metricsEnabled())
        coreMetrics().prog_cache_misses.add();
    obs::ScopedPhase phase("core.compile", coreMetrics().compile_ns);
    auto [it, inserted] = prog_cache.emplace(
        std::move(ids), ar::symbolic::CompiledProgram(forest));
    return it->second;
}

double
Framework::evaluateCertain(
    const std::string &responsive,
    const std::map<std::string, double> &fixed) const
{
    const auto &fn = compiled(responsive);
    std::vector<double> args;
    args.reserve(fn.argNames().size());
    for (const auto &name : fn.argNames()) {
        auto it = fixed.find(name);
        if (it == fixed.end())
            ar::util::fatal("Framework::evaluateCertain: no value for "
                            "input '", name, "'");
        args.push_back(it->second);
    }
    return fn.eval(args);
}

AnalysisResult
Framework::analyzeWith(
    const ar::mc::Propagator &prop, const std::string &responsive,
    const ar::mc::InputBindings &in, const ar::risk::RiskFunction &fn,
    double reference, std::uint64_t seed,
    const std::function<void(const ar::mc::StreamFrame &)> &on_frame)
    const
{
    obs::TraceSpan span("core.analyze");
    if (obs::metricsEnabled())
        coreMetrics().analyses.add();
    AnalysisResult res;
    ar::util::Rng rng(seed);
    auto out =
        prop.runManyReport({&compiled(responsive)}, in, rng,
                           makeObserver(fn, reference, on_frame));
    const bool streamed = out.samples.empty();
    res.faults = std::move(out.faults);
    res.reference = reference;
    obs::ScopedPhase reduce("core.reduce", coreMetrics().reduce_ns);
    if (streamed) {
        // No retained samples: summary and risk come from the
        // streaming accumulators (bit-identical to the accumulators
        // of a sample-keeping run of the same configuration).
        res.summary = streamSummary(out.stats.front().moments);
        res.risk = out.stats.front().risk.risk();
    } else {
        res.samples = std::move(out.samples.front());
        res.summary = ar::stats::summarize(res.samples);
        res.risk = ar::risk::archRisk(res.samples, reference, fn);
    }
    fillStreamFields(res, out, streamed);
    return res;
}

AnalysisResult
Framework::analyzeMultiWith(
    const ar::mc::Propagator &prop,
    const std::vector<std::string> &responsives,
    const ar::mc::InputBindings &in, const ar::risk::RiskFunction &fn,
    double reference, std::uint64_t seed,
    const std::function<void(const ar::mc::StreamFrame &)> &on_frame)
    const
{
    obs::TraceSpan span("core.analyze_multi");
    if (obs::metricsEnabled())
        coreMetrics().analyses.add();
    AnalysisResult res;
    ar::util::Rng rng(seed);
    auto out =
        prop.runMultiReport(program(responsives), in, rng,
                            makeObserver(fn, reference, on_frame));
    const bool streamed = out.samples.empty();
    res.faults = std::move(out.faults);
    res.reference = reference;
    obs::ScopedPhase reduce("core.reduce", coreMetrics().reduce_ns);
    res.co_outputs.reserve(responsives.size() - 1);
    if (streamed) {
        res.summary = streamSummary(out.stats.front().moments);
        res.risk = out.stats.front().risk.risk();
        for (std::size_t o = 1; o < responsives.size(); ++o) {
            CoOutput co;
            co.name = responsives[o];
            co.summary = streamSummary(out.stats[o].moments);
            res.co_outputs.push_back(std::move(co));
        }
    } else {
        res.samples = std::move(out.samples.front());
        res.summary = ar::stats::summarize(res.samples);
        res.risk = ar::risk::archRisk(res.samples, reference, fn);
        for (std::size_t o = 1; o < responsives.size(); ++o) {
            CoOutput co;
            co.name = responsives[o];
            co.samples = std::move(out.samples[o]);
            co.summary = ar::stats::summarize(co.samples);
            res.co_outputs.push_back(std::move(co));
        }
    }
    fillStreamFields(res, out, streamed);
    return res;
}

AnalysisResult
Framework::analyze(const std::string &responsive,
                   const ar::mc::InputBindings &in,
                   const ar::risk::RiskFunction &fn, double reference,
                   std::uint64_t seed) const
{
    return analyzeWith(propagator, responsive, in, fn, reference,
                       seed);
}

AnalysisResult
Framework::analyze(const std::string &responsive,
                   const ar::mc::InputBindings &in,
                   const ar::risk::RiskFunction &fn, double reference,
                   std::uint64_t seed,
                   const ar::mc::PropagationConfig &cfg) const
{
    return analyzeWith(ar::mc::Propagator(cfg), responsive, in, fn,
                       reference, seed);
}

AnalysisResult
Framework::analyze(
    const std::string &responsive, const ar::mc::InputBindings &in,
    const ar::risk::RiskFunction &fn, double reference,
    std::uint64_t seed, const ar::mc::PropagationConfig &cfg,
    std::function<void(const ar::mc::StreamFrame &)> on_frame) const
{
    return analyzeWith(ar::mc::Propagator(cfg), responsive, in, fn,
                       reference, seed, on_frame);
}

AnalysisResult
Framework::analyzeMulti(const std::vector<std::string> &responsives,
                        const ar::mc::InputBindings &in,
                        const ar::risk::RiskFunction &fn,
                        double reference, std::uint64_t seed) const
{
    return analyzeMultiWith(propagator, responsives, in, fn,
                            reference, seed);
}

AnalysisResult
Framework::analyzeMulti(const std::vector<std::string> &responsives,
                        const ar::mc::InputBindings &in,
                        const ar::risk::RiskFunction &fn,
                        double reference, std::uint64_t seed,
                        const ar::mc::PropagationConfig &cfg) const
{
    return analyzeMultiWith(ar::mc::Propagator(cfg), responsives, in,
                            fn, reference, seed);
}

AnalysisResult
Framework::analyzeMulti(
    const std::vector<std::string> &responsives,
    const ar::mc::InputBindings &in, const ar::risk::RiskFunction &fn,
    double reference, std::uint64_t seed,
    const ar::mc::PropagationConfig &cfg,
    std::function<void(const ar::mc::StreamFrame &)> on_frame) const
{
    return analyzeMultiWith(ar::mc::Propagator(cfg), responsives, in,
                            fn, reference, seed, on_frame);
}

std::vector<double>
Framework::propagate(const std::string &responsive,
                     const ar::mc::InputBindings &in,
                     std::uint64_t seed) const
{
    ar::util::Rng rng(seed);
    return propagator.run(compiled(responsive), in, rng);
}

} // namespace ar::core
