/**
 * @file
 * The top-level risk-aware analysis framework (Figures 1, 4, 5 of the
 * paper): an executable architecture model (EquationSystem) plus
 * input bindings go in; the propagated performance distribution,
 * expected performance, and architectural risk come out.
 */

#ifndef AR_CORE_FRAMEWORK_HH
#define AR_CORE_FRAMEWORK_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mc/propagator.hh"
#include "risk/arch_risk.hh"
#include "stats/summary.hh"
#include "symbolic/system.hh"

namespace ar::core
{

/** One secondary output propagated alongside the responsive one. */
struct CoOutput
{
    std::string name;                ///< Responsive-variable name.
    std::vector<double> samples;     ///< Post-policy draws (empty
                                     ///< when the run streamed).
    ar::stats::Summary summary;      ///< Moments of the samples.
};

/** Full output of one risk-aware analysis. */
struct AnalysisResult
{
    std::vector<double> samples;     ///< Post-policy draws.
    ar::stats::Summary summary;      ///< Moments of the samples.
    double reference = 0.0;          ///< Reference performance P.
    double risk = 0.0;               ///< Architectural risk (Eq. 2).

    /**
     * Secondary outputs from analyzeMulti(), aligned trial-for-trial
     * with `samples` (one fused propagation produced them all).
     * Empty for single-output analyze().
     */
    std::vector<CoOutput> co_outputs;

    /**
     * Fault accounting of the propagation (see PropagationConfig::
     * fault_policy).  Statistics above cover effective_trials
     * samples.
     */
    ar::util::FaultReport faults;

    /**
     * Per-output streaming accumulators (stats[0] is the risk-analyzed
     * output), folded in fixed block order by mc::StreamEngine:
     * bit-identical for any thread count AND between a streamed
     * (keep_samples = false) and a sample-keeping run of the same
     * configuration.  In streamed runs `samples` is empty and
     * `summary`/`risk` are derived from these accumulators.
     */
    std::vector<ar::stats::StreamStats> stats;

    std::size_t blocks = 0;     ///< Pipeline blocks merged.
    std::size_t trials_run = 0; ///< Trials merged (< trials when
                                ///< ci_target stopped the run early).
    std::size_t peak_bytes = 0; ///< Engine's peak-memory estimate.
    bool early_stopped = false; ///< ci_target halted the run.
    bool streamed = false;      ///< Samples were not retained.

    /** @return expected performance under uncertainty. */
    double expected() const { return summary.mean; }
};

/** What happened to the compiled caches on one incremental edit. */
struct EditOutcome
{
    std::size_t invalidated = 0; ///< Memoized resolutions discarded.
    std::size_t revalidated = 0; ///< Cached tapes proven outside the cone.
    std::size_t patched = 0;     ///< Programs updated by Const-slot patch.
    std::size_t recompiled = 0;  ///< Tapes rebuilt (warm builder or fresh).
    std::size_t cone_nodes = 0;  ///< Fresh DAG nodes across recompiles.
};

/** Facade binding the front-end (symbolic) to the back-end (MC). */
class Framework
{
  public:
    /** @param cfg Monte-Carlo settings (N = 10,000 LHS by default). */
    explicit Framework(ar::mc::PropagationConfig cfg = {});

    /** Install the system model (replaces any previous one). */
    void setSystem(ar::symbolic::EquationSystem sys);

    /** @return the installed system; fatal when none is set. */
    const ar::symbolic::EquationSystem &system() const;

    /**
     * Incrementally replace one equation of the installed system and
     * revalidate the compiled caches instead of discarding them.
     * Resolution is re-done only inside the edited variable's cone
     * (EquationSystem::replaceEquation); every cached tape is then
     * checked against its re-resolved root -- an unchanged interned
     * id proves the tape untouched, a constants-only change patches
     * the fused program's Const slots in place, and anything else
     * recompiles through the program's warm builder DAG.  After the
     * call the caches behave exactly as if the framework had been
     * rebuilt from scratch on the edited system.
     *
     * @return per-cache accounting of the edit.
     * @throws ar::util::ParseError when the equation's LHS is not a
     *         bare symbol.
     */
    EditOutcome updateEquation(const ar::symbolic::Equation &eq);

    /** Parse and apply, e.g. updateEquation("P = 2 * sqrt(A)"). */
    EditOutcome updateEquation(std::string_view text);

    /**
     * Resolve + compile a responsive variable (memoized).  This is
     * the front-end "partial symbolic solving + lamdification" pass.
     */
    const ar::symbolic::CompiledExpr &
    compiled(const std::string &responsive) const;

    /**
     * Resolve + compile several responsive variables into one fused
     * CompiledProgram (memoized per output list).  Subexpressions the
     * outputs share -- common in equation systems, where responsive
     * variables sit on one dependency trunk -- are evaluated once per
     * trial instead of once per output.
     */
    const ar::symbolic::CompiledProgram &
    program(const std::vector<std::string> &responsives) const;

    /**
     * Evaluate a responsive variable with every input fixed (the
     * conventional, uncertainty-oblivious analysis).
     *
     * @param responsive Variable to evaluate.
     * @param fixed Values for every model input.
     */
    double evaluateCertain(const std::string &responsive,
                           const std::map<std::string, double> &fixed)
        const;

    /**
     * Propagate uncertainty and compute architectural risk.
     *
     * @param responsive Variable to analyze (e.g. "Speedup").
     * @param in Distribution/value bindings for all inputs.
     * @param fn Risk function C.
     * @param reference Reference performance P of Eq. 1.
     * @param seed Random seed (analyses are reproducible).
     */
    AnalysisResult analyze(const std::string &responsive,
                           const ar::mc::InputBindings &in,
                           const ar::risk::RiskFunction &fn,
                           double reference,
                           std::uint64_t seed = 1) const;

    /**
     * analyze() under an explicit per-call propagation config,
     * overriding the framework-level one.  Serving uses this to give
     * each request its own trial budget, fault policy, and
     * cancellation token while sharing the compiled-expression
     * caches.  Same seed + same config => bit-identical result to
     * a Framework constructed with that config.
     */
    AnalysisResult analyze(const std::string &responsive,
                           const ar::mc::InputBindings &in,
                           const ar::risk::RiskFunction &fn,
                           double reference, std::uint64_t seed,
                           const ar::mc::PropagationConfig &cfg) const;

    /**
     * analyze() with a progress callback invoked at in-order block
     * boundaries (see PropagationConfig::stream.frame_every).  The
     * frames -- and the final result -- are bit-identical for any
     * thread count.
     */
    AnalysisResult
    analyze(const std::string &responsive,
            const ar::mc::InputBindings &in,
            const ar::risk::RiskFunction &fn, double reference,
            std::uint64_t seed, const ar::mc::PropagationConfig &cfg,
            std::function<void(const ar::mc::StreamFrame &)> on_frame)
        const;

    /**
     * analyze() over several responsive variables in one fused
     * propagation.  The first variable is the risk-analyzed one
     * (samples/summary/risk of the result refer to it); the rest
     * come back in co_outputs, trial-aligned with it.  Samples of
     * every output are bit-identical to what a single-output
     * analyze() of that variable would produce with the same seed.
     */
    AnalysisResult analyzeMulti(const std::vector<std::string> &responsives,
                                const ar::mc::InputBindings &in,
                                const ar::risk::RiskFunction &fn,
                                double reference,
                                std::uint64_t seed = 1) const;

    /** analyzeMulti() under an explicit per-call propagation config
     * (see the analyze() overload). */
    AnalysisResult analyzeMulti(const std::vector<std::string> &responsives,
                                const ar::mc::InputBindings &in,
                                const ar::risk::RiskFunction &fn,
                                double reference, std::uint64_t seed,
                                const ar::mc::PropagationConfig &cfg)
        const;

    /** analyzeMulti() with a progress callback (see analyze()). */
    AnalysisResult
    analyzeMulti(const std::vector<std::string> &responsives,
                 const ar::mc::InputBindings &in,
                 const ar::risk::RiskFunction &fn, double reference,
                 std::uint64_t seed,
                 const ar::mc::PropagationConfig &cfg,
                 std::function<void(const ar::mc::StreamFrame &)>
                     on_frame) const;

    /**
     * Propagate only (no risk): returns the raw samples of the
     * responsive variable.
     */
    std::vector<double> propagate(const std::string &responsive,
                                  const ar::mc::InputBindings &in,
                                  std::uint64_t seed = 1) const;

    /** @return the Monte-Carlo trial count in use. */
    std::size_t trials() const { return propagator.trials(); }

  private:
    AnalysisResult analyzeWith(
        const ar::mc::Propagator &prop, const std::string &responsive,
        const ar::mc::InputBindings &in,
        const ar::risk::RiskFunction &fn, double reference,
        std::uint64_t seed,
        const std::function<void(const ar::mc::StreamFrame &)>
            &on_frame = {}) const;
    AnalysisResult analyzeMultiWith(
        const ar::mc::Propagator &prop,
        const std::vector<std::string> &responsives,
        const ar::mc::InputBindings &in,
        const ar::risk::RiskFunction &fn, double reference,
        std::uint64_t seed,
        const std::function<void(const ar::mc::StreamFrame &)>
            &on_frame = {}) const;

    ar::mc::Propagator propagator;
    std::unique_ptr<ar::symbolic::EquationSystem> sys;

    // Compilation caches are keyed on the interned id of the resolved
    // root expression, not on the responsive-variable name: two names
    // that resolve to the same (hash-consed) expression share one
    // tape.  The name maps are a front-side memo so repeat lookups by
    // name skip resolution entirely.
    mutable std::map<std::string, std::uint64_t> expr_ids;
    mutable std::map<std::uint64_t, ar::symbolic::CompiledExpr> cache;
    mutable std::map<std::vector<std::string>,
                     std::vector<std::uint64_t>> prog_ids;
    mutable std::map<std::vector<std::uint64_t>,
                     ar::symbolic::CompiledProgram> prog_cache;
};

} // namespace ar::core

#endif // AR_CORE_FRAMEWORK_HH
