#include "core/spec.hh"

#include <fstream>
#include <sstream>

#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "extract/extract.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::core
{

namespace
{

std::vector<std::string>
tokenize(const std::string &line)
{
    std::istringstream iss(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (iss >> tok)
        tokens.push_back(tok);
    return tokens;
}

double
numericToken(const std::vector<std::string> &tokens, std::size_t i,
             const std::string &line)
{
    if (i >= tokens.size())
        ar::util::fatal("spec: missing numeric argument in '", line,
                        "'");
    double v = 0.0;
    if (!ar::util::parseDouble(tokens[i], v))
        ar::util::fatal("spec: expected a number, got '", tokens[i],
                        "' in '", line, "'");
    return v;
}

void
expectArgs(const std::vector<std::string> &tokens, std::size_t n,
           const std::string &line)
{
    if (tokens.size() != n)
        ar::util::fatal("spec: expected ", n - 1, " arguments in '",
                        line, "'");
}

ar::dist::DistPtr
makeDistribution(const std::vector<std::string> &tokens,
                 const std::string &line)
{
    // tokens: uncertain NAME KIND ARGS...
    const std::string &kind = tokens[2];
    auto num = [&](std::size_t i) {
        return numericToken(tokens, i, line);
    };
    if (kind == "normal") {
        expectArgs(tokens, 5, line);
        return std::make_shared<ar::dist::Normal>(num(3), num(4));
    }
    if (kind == "truncnormal") {
        expectArgs(tokens, 7, line);
        return std::make_shared<ar::dist::TruncatedNormal>(
            num(3), num(4), num(5), num(6));
    }
    if (kind == "lognormal") {
        expectArgs(tokens, 5, line);
        return std::make_shared<ar::dist::LogNormal>(num(3), num(4));
    }
    if (kind == "lognormal-ms") {
        expectArgs(tokens, 5, line);
        return std::make_shared<ar::dist::LogNormal>(
            ar::dist::LogNormal::fromMeanStddev(num(3), num(4)));
    }
    if (kind == "uniform") {
        expectArgs(tokens, 5, line);
        return std::make_shared<ar::dist::Uniform>(num(3), num(4));
    }
    if (kind == "bernoulli") {
        expectArgs(tokens, 4, line);
        return std::make_shared<ar::dist::Bernoulli>(num(3));
    }
    if (kind == "binomial") {
        expectArgs(tokens, 5, line);
        return std::make_shared<ar::dist::Binomial>(
            static_cast<unsigned>(num(3)), num(4));
    }
    if (kind == "normbinomial") {
        expectArgs(tokens, 5, line);
        return std::make_shared<ar::dist::NormalizedBinomial>(
            static_cast<unsigned>(num(3)), num(4));
    }
    if (kind == "degenerate") {
        expectArgs(tokens, 4, line);
        return std::make_shared<ar::dist::Degenerate>(num(3));
    }
    ar::util::fatal("spec: unknown distribution kind '", kind,
                    "' in '", line, "'");
}

} // namespace

std::unique_ptr<ar::risk::RiskFunction>
makeRiskFunction(const std::string &name)
{
    if (name == "step")
        return std::make_unique<ar::risk::StepRisk>();
    if (name == "linear")
        return std::make_unique<ar::risk::LinearRisk>();
    if (name == "quadratic")
        return std::make_unique<ar::risk::QuadraticRisk>();
    if (name == "monetary") {
        return std::make_unique<ar::risk::MonetaryRisk>(
            ar::risk::MonetaryRisk::table5());
    }
    ar::util::fatal("makeRiskFunction: unknown risk function '", name,
                    "'");
}

AnalysisSpec
parseSpec(const std::string &text)
{
    AnalysisSpec spec;
    std::istringstream lines(text);
    std::string raw;
    while (std::getline(lines, raw)) {
        const std::string line = ar::util::trim(raw);
        if (line.empty() || line[0] == '#')
            continue;

        if (line.find('=') != std::string::npos) {
            spec.system.addEquation(line);
            continue;
        }

        const auto tokens = tokenize(line);
        const std::string &cmd = tokens[0];
        if (cmd == "fixed") {
            expectArgs(tokens, 3, line);
            spec.bindings.fixed[tokens[1]] =
                numericToken(tokens, 2, line);
        } else if (cmd == "uncertain") {
            if (tokens.size() < 4)
                ar::util::fatal("spec: uncertain needs NAME KIND "
                                "ARGS in '", line, "'");
            spec.bindings.uncertain[tokens[1]] =
                makeDistribution(tokens, line);
            spec.system.markUncertain(tokens[1]);
        } else if (cmd == "samples") {
            expectArgs(tokens, 3, line);
            const auto data = ar::util::readNumbers(tokens[2]);
            spec.bindings.uncertain[tokens[1]] =
                ar::extract::extractUncertainty(data).distribution;
            spec.system.markUncertain(tokens[1]);
        } else if (cmd == "correlate") {
            expectArgs(tokens, 4, line);
            spec.bindings.correlations.push_back(
                {tokens[1], tokens[2],
                 numericToken(tokens, 3, line)});
        } else if (cmd == "output") {
            expectArgs(tokens, 2, line);
            spec.output = tokens[1];
        } else if (cmd == "reference") {
            expectArgs(tokens, 2, line);
            spec.reference = numericToken(tokens, 1, line);
        } else if (cmd == "risk") {
            expectArgs(tokens, 2, line);
            spec.risk = tokens[1];
            makeRiskFunction(spec.risk); // validate eagerly
        } else if (cmd == "trials") {
            expectArgs(tokens, 2, line);
            spec.trials = static_cast<std::size_t>(
                numericToken(tokens, 1, line));
        } else if (cmd == "seed") {
            expectArgs(tokens, 2, line);
            spec.seed = static_cast<std::uint64_t>(
                numericToken(tokens, 1, line));
        } else if (cmd == "threads") {
            expectArgs(tokens, 2, line);
            spec.threads = static_cast<std::size_t>(
                numericToken(tokens, 1, line));
        } else {
            ar::util::fatal("spec: unknown directive '", cmd,
                            "' in '", line, "'");
        }
    }
    if (spec.output.empty())
        ar::util::fatal("spec: missing 'output' directive");
    if (!spec.system.defines(spec.output))
        ar::util::fatal("spec: output variable '", spec.output,
                        "' has no defining equation");
    return spec;
}

AnalysisSpec
loadSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ar::util::fatal("loadSpecFile: cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseSpec(buffer.str());
}

AnalysisResult
runSpec(const AnalysisSpec &spec)
{
    Framework fw({spec.trials, "latin-hypercube", spec.threads});

    // The Framework owns a copy of the system.
    ar::symbolic::EquationSystem sys = spec.system;
    fw.setSystem(std::move(sys));

    double reference;
    if (spec.reference) {
        reference = *spec.reference;
    } else {
        // Certain evaluation: uncertain inputs pinned at their means.
        std::map<std::string, double> fixed = spec.bindings.fixed;
        for (const auto &[name, dist] : spec.bindings.uncertain)
            fixed[name] = dist->mean();
        reference = fw.evaluateCertain(spec.output, fixed);
    }

    const auto fn = makeRiskFunction(spec.risk);
    return fw.analyze(spec.output, spec.bindings, *fn, reference,
                      spec.seed);
}

} // namespace ar::core
