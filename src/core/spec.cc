#include "core/spec.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "dist/normal.hh"
#include "extract/extract.hh"
#include "obs/telemetry.hh"
#include "symbolic/parser.hh"
#include "util/diagnostics.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::core
{

namespace
{

/** One whitespace-separated token and its 1-based source column. */
struct Token
{
    std::string text;
    std::size_t col = 0;
};

/** Parse context of the line under examination. */
struct LineCtx
{
    std::size_t line_no;     ///< 1-based.
    const std::string &line; ///< Comment-stripped source line.
};

[[noreturn]] void
failAt(const LineCtx &ctx, std::size_t col, const std::string &msg)
{
    ar::util::raiseParse("spec error: " + msg, ctx.line_no, col,
                         ctx.line);
}

std::vector<Token>
tokenize(const std::string &line)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        if (std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
            continue;
        }
        const std::size_t start = i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
        }
        tokens.push_back({line.substr(start, i - start), start + 1});
    }
    return tokens;
}

double
numericToken(const std::vector<Token> &tokens, std::size_t i,
             const LineCtx &ctx)
{
    if (i >= tokens.size())
        failAt(ctx, ctx.line.size() + 1, "missing numeric argument");
    double v = 0.0;
    if (!ar::util::parseDouble(tokens[i].text, v)) {
        failAt(ctx, tokens[i].col,
               "expected a number, got '" + tokens[i].text + "'");
    }
    return v;
}

/** Numeric token that must be an integer with value >= @p min. */
std::size_t
integerToken(const std::vector<Token> &tokens, std::size_t i,
             const LineCtx &ctx, double min, const char *what)
{
    const double v = numericToken(tokens, i, ctx);
    if (v != std::trunc(v) || v < min) {
        failAt(ctx, tokens[i].col,
               std::string(what) + " must be an integer >= " +
                   std::to_string(static_cast<long long>(min)));
    }
    return static_cast<std::size_t>(v);
}

void
expectArgs(const std::vector<Token> &tokens, std::size_t n,
           const LineCtx &ctx)
{
    if (tokens.size() == n)
        return;
    const std::size_t col = tokens.size() > n ? tokens[n].col
                                              : ctx.line.size() + 1;
    failAt(ctx, col,
           "'" + tokens[0].text + "' expects " + std::to_string(n - 1) +
               " argument(s), got " + std::to_string(tokens.size() - 1));
}

ar::dist::DistPtr
makeDistribution(const std::vector<Token> &tokens, const LineCtx &ctx)
{
    // tokens: uncertain NAME KIND ARGS...
    const std::string &kind = tokens[2].text;
    auto num = [&](std::size_t i) {
        return numericToken(tokens, i, ctx);
    };
    if (kind == "normal") {
        expectArgs(tokens, 5, ctx);
        return std::make_shared<ar::dist::Normal>(num(3), num(4));
    }
    if (kind == "truncnormal") {
        expectArgs(tokens, 7, ctx);
        return std::make_shared<ar::dist::TruncatedNormal>(
            num(3), num(4), num(5), num(6));
    }
    if (kind == "lognormal") {
        expectArgs(tokens, 5, ctx);
        return std::make_shared<ar::dist::LogNormal>(num(3), num(4));
    }
    if (kind == "lognormal-ms") {
        expectArgs(tokens, 5, ctx);
        return std::make_shared<ar::dist::LogNormal>(
            ar::dist::LogNormal::fromMeanStddev(num(3), num(4)));
    }
    if (kind == "uniform") {
        expectArgs(tokens, 5, ctx);
        return std::make_shared<ar::dist::Uniform>(num(3), num(4));
    }
    if (kind == "bernoulli") {
        expectArgs(tokens, 4, ctx);
        return std::make_shared<ar::dist::Bernoulli>(num(3));
    }
    if (kind == "binomial") {
        expectArgs(tokens, 5, ctx);
        return std::make_shared<ar::dist::Binomial>(
            static_cast<unsigned>(num(3)), num(4));
    }
    if (kind == "normbinomial") {
        expectArgs(tokens, 5, ctx);
        return std::make_shared<ar::dist::NormalizedBinomial>(
            static_cast<unsigned>(num(3)), num(4));
    }
    if (kind == "degenerate") {
        expectArgs(tokens, 4, ctx);
        return std::make_shared<ar::dist::Degenerate>(num(3));
    }
    failAt(ctx, tokens[2].col,
           "unknown distribution kind '" + kind + "'");
}

} // namespace

std::unique_ptr<ar::risk::RiskFunction>
makeRiskFunction(const std::string &name)
{
    if (name == "step")
        return std::make_unique<ar::risk::StepRisk>();
    if (name == "linear")
        return std::make_unique<ar::risk::LinearRisk>();
    if (name == "quadratic")
        return std::make_unique<ar::risk::QuadraticRisk>();
    if (name == "monetary") {
        return std::make_unique<ar::risk::MonetaryRisk>(
            ar::risk::MonetaryRisk::table5());
    }
    ar::util::fatal("makeRiskFunction: unknown risk function '", name,
                    "'");
}

AnalysisSpec
parseSpec(const std::string &text)
{
    AnalysisSpec spec;
    std::istringstream lines(text);
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(lines, raw)) {
        ++line_no;
        // '#' starts a comment anywhere on the line.
        const std::string line = raw.substr(0, raw.find('#'));
        if (ar::util::trim(line).empty())
            continue;
        const LineCtx ctx{line_no, line};

        if (line.find('=') != std::string::npos) {
            // Columns of equation diagnostics refer to the raw line
            // (the parser skips leading whitespace itself).  Semantic
            // errors raised while installing the equation (defined
            // twice, unsolvable) carry no location; stamp this line.
            try {
                spec.system.addEquation(
                    ar::symbolic::parseEquation(line, line_no));
            } catch (const ar::util::ParseError &e) {
                if (e.diagnostic().line != 0)
                    throw;
                auto d = e.diagnostic();
                d.line = line_no;
                throw ar::util::ParseError(std::move(d));
            }
            continue;
        }

        const auto tokens = tokenize(line);
        const std::string &cmd = tokens[0].text;
        if (cmd == "fixed") {
            expectArgs(tokens, 3, ctx);
            spec.bindings.fixed[tokens[1].text] =
                numericToken(tokens, 2, ctx);
        } else if (cmd == "uncertain") {
            if (tokens.size() < 4) {
                failAt(ctx, line.size() + 1,
                       "'uncertain' needs NAME KIND ARGS...");
            }
            spec.bindings.uncertain[tokens[1].text] =
                makeDistribution(tokens, ctx);
            spec.system.markUncertain(tokens[1].text);
        } else if (cmd == "samples") {
            expectArgs(tokens, 3, ctx);
            const auto data = ar::util::readNumbers(tokens[2].text);
            spec.bindings.uncertain[tokens[1].text] =
                ar::extract::extractUncertainty(data).distribution;
            spec.system.markUncertain(tokens[1].text);
        } else if (cmd == "states") {
            if (tokens.size() < 3) {
                failAt(ctx, line.size() + 1,
                       "'states' needs NAME STATE:MULT:PROB ...");
            }
            const std::string &name = tokens[1].text;
            for (const auto &c : spec.components) {
                if (c.name() == name) {
                    failAt(ctx, tokens[1].col, "component '" + name +
                                                   "' already declared");
                }
            }
            std::vector<ar::risk::ComponentState> states;
            double total = 0.0;
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                const std::string &t = tokens[i].text;
                const auto c1 = t.find(':');
                const auto c2 = c1 == std::string::npos
                                    ? std::string::npos
                                    : t.find(':', c1 + 1);
                if (c1 == std::string::npos ||
                    c2 == std::string::npos ||
                    t.find(':', c2 + 1) != std::string::npos) {
                    failAt(ctx, tokens[i].col,
                           "state must be NAME:MULTIPLIER:PROB, got '" +
                               t + "'");
                }
                ar::risk::ComponentState s;
                s.name = t.substr(0, c1);
                if (s.name.empty())
                    failAt(ctx, tokens[i].col, "empty state name");
                for (const auto &prev : states) {
                    if (prev.name == s.name) {
                        failAt(ctx, tokens[i].col, "duplicate state '" +
                                                       s.name + "'");
                    }
                }
                if (!ar::util::parseDouble(t.substr(c1 + 1, c2 - c1 - 1),
                                           s.multiplier)) {
                    failAt(ctx, tokens[i].col + c1 + 1,
                           "expected a numeric multiplier");
                }
                if (!ar::util::parseDouble(t.substr(c2 + 1),
                                           s.probability)) {
                    failAt(ctx, tokens[i].col + c2 + 1,
                           "expected a numeric probability");
                }
                if (!std::isfinite(s.multiplier) || s.multiplier < 0.0) {
                    failAt(ctx, tokens[i].col + c1 + 1,
                           "multiplier must be finite and >= 0");
                }
                if (!(s.probability >= 0.0) || s.probability > 1.0) {
                    failAt(ctx, tokens[i].col + c2 + 1,
                           "probability must lie in [0, 1]");
                }
                total += s.probability;
                states.push_back(std::move(s));
            }
            if (total > 1.0 + 1e-9) {
                failAt(ctx, tokens[2].col,
                       "state probabilities sum to " +
                           std::to_string(total) + " (> 1)");
            }
            spec.components.emplace_back(name, std::move(states));
            spec.bindings.uncertain[name] =
                spec.components.back().toDistribution();
            spec.system.markUncertain(name);
        } else if (cmd == "structure") {
            if (tokens.size() < 2) {
                failAt(ctx, line.size() + 1,
                       "'structure' needs an expression");
            }
            // The expression starts at the second token; re-locate
            // any parse error into the full line.
            const std::size_t off = tokens[1].col - 1;
            try {
                ar::symbolic::Equation eq;
                eq.lhs = ar::symbolic::Expr::symbol("Structure");
                eq.rhs = ar::symbolic::parseExpr(line.substr(off),
                                                 line_no);
                spec.system.addEquation(eq);
            } catch (const ar::util::ParseError &e) {
                auto d = e.diagnostic();
                if (d.column != 0)
                    d.column += off;
                if (d.line == 0)
                    d.line = line_no;
                d.source = line;
                throw ar::util::ParseError(std::move(d));
            }
        } else if (cmd == "correlate") {
            expectArgs(tokens, 4, ctx);
            spec.bindings.correlations.push_back(
                {tokens[1].text, tokens[2].text,
                 numericToken(tokens, 3, ctx)});
        } else if (cmd == "output") {
            // One or more responsive variables; the first is
            // risk-analyzed, the rest propagate alongside it through
            // one fused program.
            if (tokens.size() < 2) {
                failAt(ctx, ctx.line.size() + 1,
                       "'output' expects at least 1 argument, got 0");
            }
            spec.outputs.clear();
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                if (std::find_if(spec.outputs.begin(),
                                 spec.outputs.end(),
                                 [&](const std::string &o) {
                                     return o == tokens[i].text;
                                 }) != spec.outputs.end()) {
                    failAt(ctx, tokens[i].col,
                           "duplicate output variable '" +
                               tokens[i].text + "'");
                }
                spec.outputs.push_back(tokens[i].text);
            }
            spec.output = spec.outputs.front();
        } else if (cmd == "reference") {
            expectArgs(tokens, 2, ctx);
            spec.reference = numericToken(tokens, 1, ctx);
        } else if (cmd == "risk") {
            expectArgs(tokens, 2, ctx);
            spec.risk = tokens[1].text;
            try {
                makeRiskFunction(spec.risk); // validate eagerly
            } catch (const ar::util::FatalError &) {
                failAt(ctx, tokens[1].col,
                       "unknown risk function '" + spec.risk +
                           "' (step|linear|quadratic|monetary)");
            }
        } else if (cmd == "trials") {
            expectArgs(tokens, 2, ctx);
            spec.trials = integerToken(tokens, 1, ctx, 1, "trials");
        } else if (cmd == "seed") {
            expectArgs(tokens, 2, ctx);
            spec.seed = static_cast<std::uint64_t>(
                integerToken(tokens, 1, ctx, 0, "seed"));
        } else if (cmd == "threads") {
            expectArgs(tokens, 2, ctx);
            spec.threads = integerToken(tokens, 1, ctx, 0, "threads");
        } else if (cmd == "fault_policy") {
            expectArgs(tokens, 2, ctx);
            if (!ar::util::parseFaultPolicy(tokens[1].text,
                                            spec.fault_policy)) {
                failAt(ctx, tokens[1].col,
                       "unknown fault policy '" + tokens[1].text +
                           "' (fail_fast|discard|saturate)");
            }
        } else if (cmd == "stream") {
            expectArgs(tokens, 2, ctx);
            const std::string &mode = tokens[1].text;
            if (mode == "on") {
                spec.stream = true;
            } else if (mode == "off") {
                spec.stream = false;
            } else {
                failAt(ctx, tokens[1].col,
                       "unknown stream mode '" + mode +
                           "' (on|off)");
            }
        } else if (cmd == "ci_target") {
            expectArgs(tokens, 2, ctx);
            const double target = numericToken(tokens, 1, ctx);
            if (!(target > 0.0)) {
                failAt(ctx, tokens[1].col,
                       "ci_target must be positive");
            }
            spec.ci_target = target;
        } else if (cmd == "telemetry") {
            expectArgs(tokens, 2, ctx);
            const std::string &mode = tokens[1].text;
            if (mode == "off") {
                spec.telemetry_metrics = false;
                spec.telemetry_trace = false;
            } else if (mode == "metrics") {
                spec.telemetry_metrics = true;
            } else if (mode == "trace") {
                spec.telemetry_trace = true;
            } else if (mode == "all") {
                spec.telemetry_metrics = true;
                spec.telemetry_trace = true;
            } else {
                failAt(ctx, tokens[1].col,
                       "unknown telemetry mode '" + mode +
                           "' (off|metrics|trace|all)");
            }
        } else {
            failAt(ctx, tokens[0].col,
                   "unknown directive '" + cmd + "'");
        }
    }
    if (spec.output.empty()) {
        ar::util::raiseParse("spec error: missing 'output' directive",
                             0, 0, "");
    }
    for (const auto &output : spec.outputs) {
        if (!spec.system.defines(output)) {
            ar::util::raiseParse("spec error: output variable '" +
                                     output +
                                     "' has no defining equation",
                                 0, 0, "output " + output);
        }
    }
    return spec;
}

AnalysisSpec
loadSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ar::util::fatal("loadSpecFile: cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return parseSpec(buffer.str());
    } catch (const ar::util::ParseError &e) {
        // Prefix the file path so batch users can locate the spec.
        auto d = e.diagnostic();
        d.message = path + ": " + d.message;
        throw ar::util::ParseError(std::move(d));
    }
}

AnalysisResult
runSpec(const AnalysisSpec &spec, ar::util::CancelToken cancel)
{
    // The spec can opt *in* to telemetry but never turns it off:
    // the CLI / embedding application owns the flag lifecycle.
    if (spec.telemetry_metrics)
        ar::obs::setMetricsEnabled(true);
    if (spec.telemetry_trace)
        ar::obs::setTracingEnabled(true);

    if (spec.stream &&
        spec.fault_policy == ar::util::FaultPolicy::Saturate) {
        ar::util::raiseDiagnostic(
            "runSpec: 'stream on' is incompatible with "
            "'fault_policy saturate' (saturation needs the global "
            "finite extrema, which streaming never materializes)");
    }
    if (spec.ci_target > 0.0 &&
        spec.fault_policy == ar::util::FaultPolicy::Saturate) {
        ar::util::raiseDiagnostic(
            "runSpec: 'ci_target' is incompatible with "
            "'fault_policy saturate'");
    }

    ar::mc::PropagationConfig pc{spec.trials, "latin-hypercube",
                                 spec.threads, spec.fault_policy,
                                 std::move(cancel)};
    pc.stream.keep_samples = !spec.stream;
    pc.stream.ci_target = spec.ci_target;
    Framework fw(pc);

    // The Framework owns a copy of the system.
    ar::symbolic::EquationSystem sys = spec.system;
    fw.setSystem(std::move(sys));

    double reference;
    if (spec.reference) {
        reference = *spec.reference;
    } else {
        // Certain evaluation: uncertain inputs pinned at their means.
        std::map<std::string, double> fixed = spec.bindings.fixed;
        for (const auto &[name, dist] : spec.bindings.uncertain)
            fixed[name] = dist->mean();
        reference = fw.evaluateCertain(spec.output, fixed);
        if (!std::isfinite(reference)) {
            // A multi-state component with an unmodeled-state gap
            // (probabilities summing below 1) has no mean to pin.
            ar::util::raiseDiagnostic(
                "runSpec: certain reference evaluated non-finite; "
                "declare an explicit 'reference' in the spec");
        }
    }

    const auto fn = makeRiskFunction(spec.risk);
    if (spec.outputs.size() > 1) {
        // All declared outputs in one fused propagation; samples of
        // each are bit-identical to a single-output analysis.
        return fw.analyzeMulti(spec.outputs, spec.bindings, *fn,
                               reference, spec.seed);
    }
    return fw.analyze(spec.output, spec.bindings, *fn, reference,
                      spec.seed);
}

} // namespace ar::core
