/**
 * @file
 * Plain-text table rendering for bench and example output.
 */

#ifndef AR_REPORT_TABLE_HH
#define AR_REPORT_TABLE_HH

#include <string>
#include <vector>

namespace ar::report
{

/** Column-aligned ASCII table. */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Convenience: append a row of doubles at fixed precision. */
    void rowNumeric(const std::string &label,
                    const std::vector<double> &values, int digits = 4);

    /** @return the rendered table (trailing newline included). */
    std::string render() const;

    /** @return number of data rows. */
    std::size_t rows() const { return data.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> data;
};

} // namespace ar::report

#endif // AR_REPORT_TABLE_HH
