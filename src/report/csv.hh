/**
 * @file
 * Minimal CSV emission so every bench can dump machine-readable
 * series next to its human-readable tables.
 */

#ifndef AR_REPORT_CSV_HH
#define AR_REPORT_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace ar::report
{

/** Streaming CSV writer with RFC-4180-style quoting. */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row of string cells. */
    void row(const std::vector<std::string> &cells);

    /** Write a label followed by numeric cells. */
    void row(const std::string &label,
             const std::vector<double> &values);

    /** Flush and close. */
    void close();

  private:
    static std::string quote(const std::string &cell);

    std::ofstream out;
};

} // namespace ar::report

#endif // AR_REPORT_CSV_HH
