#include "report/csv.hh"

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::report
{

CsvWriter::CsvWriter(const std::string &path) : out(path)
{
    if (!out)
        ar::util::fatal("CsvWriter: cannot open '", path, "'");
}

std::string
CsvWriter::quote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out << ',';
        out << quote(cells[i]);
    }
    out << '\n';
}

void
CsvWriter::row(const std::string &label,
               const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(ar::util::formatDouble(v));
    row(cells);
}

void
CsvWriter::close()
{
    out.close();
}

} // namespace ar::report
