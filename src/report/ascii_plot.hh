/**
 * @file
 * Lightweight ASCII visualizations: horizontal-bar histograms (the
 * repo's stand-in for the paper's distribution plots) and one-line
 * sparklines for series.
 */

#ifndef AR_REPORT_ASCII_PLOT_HH
#define AR_REPORT_ASCII_PLOT_HH

#include <span>
#include <string>

#include "stats/histogram.hh"

namespace ar::report
{

/**
 * Render a histogram as rows of `#` bars.
 *
 * @param h Histogram to draw.
 * @param width Maximum bar width in characters.
 */
std::string histogramChart(const ar::stats::Histogram &h,
                           std::size_t width = 50);

/**
 * Render a numeric series as a single line using eight block levels,
 * e.g. "▁▂▅▇█▆▂▁".  Empty input yields an empty string.
 */
std::string sparkline(std::span<const double> values);

} // namespace ar::report

#endif // AR_REPORT_ASCII_PLOT_HH
