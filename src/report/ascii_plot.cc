#include "report/ascii_plot.hh"

#include <algorithm>
#include <sstream>

#include "util/string_utils.hh"

namespace ar::report
{

std::string
histogramChart(const ar::stats::Histogram &h, std::size_t width)
{
    std::size_t max_count = 1;
    for (std::size_t i = 0; i < h.bins(); ++i)
        max_count = std::max(max_count, h.count(i));

    std::ostringstream oss;
    for (std::size_t i = 0; i < h.bins(); ++i) {
        const std::size_t bar =
            (h.count(i) * width + max_count - 1) / max_count;
        oss << "[" << ar::util::formatFixed(h.binLo(i), 3) << ", "
            << ar::util::formatFixed(h.binHi(i), 3) << ") "
            << std::string(h.count(i) ? std::max<std::size_t>(bar, 1)
                                      : 0,
                           '#')
            << " " << h.count(i) << "\n";
    }
    return oss.str();
}

std::string
sparkline(std::span<const double> values)
{
    static const char *levels[] = {"▁", "▂", "▃",
                                   "▄", "▅", "▆",
                                   "▇", "█"};
    if (values.empty())
        return "";
    double lo = values[0], hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    const double span = hi - lo;
    for (double v : values) {
        int idx = 0;
        if (span > 0.0) {
            idx = static_cast<int>((v - lo) / span * 7.999);
            idx = std::clamp(idx, 0, 7);
        }
        out += levels[idx];
    }
    return out;
}

} // namespace ar::report
