#include "report/table.hh"

#include <algorithm>
#include <sstream>

#include "util/string_utils.hh"

namespace ar::report
{

void
Table::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    data.push_back(std::move(cells));
}

void
Table::rowNumeric(const std::string &label,
                  const std::vector<double> &values, int digits)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(ar::util::formatFixed(v, digits));
    row(std::move(cells));
}

std::string
Table::render() const
{
    // Compute column widths.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!head.empty())
        grow(head);
    for (const auto &r : data)
        grow(r);

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                oss << "  ";
            oss << cells[i];
            if (i + 1 < cells.size()) {
                for (std::size_t p = cells[i].size(); p < widths[i];
                     ++p) {
                    oss << ' ';
                }
            }
        }
        oss << "\n";
    };
    if (!head.empty()) {
        emit(head);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i > 0 ? 2 : 0);
        oss << std::string(total, '-') << "\n";
    }
    for (const auto &r : data)
        emit(r);
    return oss.str();
}

} // namespace ar::report
