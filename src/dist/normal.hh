/**
 * @file
 * Gaussian and truncated-Gaussian distributions.  The truncated form
 * is used for bounded model inputs such as the parallel fraction f
 * (domain [0, 1]) when Gaussian uncertainty is injected (Table 3).
 */

#ifndef AR_DIST_NORMAL_HH
#define AR_DIST_NORMAL_HH

#include "dist/distribution.hh"

namespace ar::dist
{

/** Gaussian N(mu, sigma^2). */
class Normal : public Distribution
{
  public:
    /** @param mu Mean. @param sigma Standard deviation (> 0). */
    Normal(double mu, double sigma);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return mu; }
    double stddev() const override { return sigma; }
    double cdf(double x) const override;
    double quantile(double p) const override;
    double sampleFromUniform(double u) const override;
    void sampleFromUniformBatch(const double *u, double *out,
                                std::size_t n) const override;
    double pdf(double x) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the location parameter. */
    double mu_param() const { return mu; }

    /** @return the scale parameter. */
    double sigma_param() const { return sigma; }

  private:
    double mu;
    double sigma;
};

/**
 * Gaussian truncated to [lo, hi].  Sampling uses exact inverse-CDF so
 * heavy truncation costs nothing extra.
 */
class TruncatedNormal : public Distribution
{
  public:
    /**
     * @param mu Location of the parent Gaussian.
     * @param sigma Scale of the parent Gaussian (> 0).
     * @param lo Lower truncation bound.
     * @param hi Upper truncation bound (> lo).
     */
    TruncatedNormal(double mu, double sigma, double lo, double hi);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return mean_; }
    double stddev() const override { return stddev_; }
    double cdf(double x) const override;
    double quantile(double p) const override;
    double sampleFromUniform(double u) const override;
    double pdf(double x) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return lower truncation bound. */
    double lowerBound() const { return lo; }

    /** @return upper truncation bound. */
    double upperBound() const { return hi; }

  private:
    double mu;
    double sigma;
    double lo;
    double hi;
    double cdf_lo;
    double cdf_hi;
    double mass;     ///< cdf_hi - cdf_lo of the parent Gaussian.
    double mean_;
    double stddev_;
};

} // namespace ar::dist

#endif // AR_DIST_NORMAL_HH
