/**
 * @file
 * Log-normal distribution.  The paper models fabricated core
 * performance as LogNormal (Table 2, Eq. 14), parameterized so that
 * its mean follows Pollack's Rule and its variance hits the desired
 * uncertainty level; fromMeanStddev() provides exactly that mapping.
 */

#ifndef AR_DIST_LOGNORMAL_HH
#define AR_DIST_LOGNORMAL_HH

#include "dist/distribution.hh"

namespace ar::dist
{

/** Log-normal: exp(N(mu, sigma^2)). */
class LogNormal : public Distribution
{
  public:
    /**
     * @param mu Location of the underlying Gaussian.
     * @param sigma Scale of the underlying Gaussian (> 0).
     */
    LogNormal(double mu, double sigma);

    /**
     * Construct the log-normal with the requested arithmetic mean and
     * standard deviation.
     *
     * @param mean Target mean (> 0).
     * @param stddev Target standard deviation (> 0).
     */
    static LogNormal fromMeanStddev(double mean, double stddev);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override;
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double sampleFromUniform(double u) const override;
    void sampleFromUniformBatch(const double *u, double *out,
                                std::size_t n) const override;
    double pdf(double x) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return location parameter of the underlying Gaussian. */
    double mu_param() const { return mu; }

    /** @return scale parameter of the underlying Gaussian. */
    double sigma_param() const { return sigma; }

  private:
    double mu;
    double sigma;
};

} // namespace ar::dist

#endif // AR_DIST_LOGNORMAL_HH
