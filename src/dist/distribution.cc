#include "dist/distribution.hh"

#include <cmath>
#include <sstream>

#include "math/numeric.hh"
#include "util/logging.hh"

namespace ar::dist
{

double
Distribution::quantile(double p) const
{
    if (p < 0.0 || p > 1.0)
        ar::util::fatal("quantile: p must lie in [0, 1], got ", p);

    // Build a bracket around the target by expanding from the mean.
    const double m = mean();
    const double s = std::max(stddev(), 1e-12);
    double lo = m - 8.0 * s;
    double hi = m + 8.0 * s;
    for (int i = 0; i < 200 && cdf(lo) > p; ++i)
        lo -= 4.0 * s;
    for (int i = 0; i < 200 && cdf(hi) < p; ++i)
        hi += 4.0 * s;

    for (int i = 0; i < 200 && hi - lo > 1e-12 * (1.0 + std::fabs(m));
         ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
Distribution::pdf(double x) const
{
    (void)x;
    ar::util::fatal("pdf: not available for ", describe());
}

std::vector<double>
Distribution::sampleMany(std::size_t count, ar::util::Rng &rng) const
{
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(sample(rng));
    return out;
}

double
Distribution::sampleFromUniform(double u) const
{
    return quantile(ar::math::clamp(u, 1e-12, 1.0 - 1e-12));
}

void
Distribution::sampleFromUniformBatch(const double *u, double *out,
                                     std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = sampleFromUniform(u[i]);
}

std::string
Degenerate::describe() const
{
    std::ostringstream oss;
    oss << "Degenerate(" << v << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
Degenerate::clone() const
{
    return std::make_unique<Degenerate>(*this);
}

Uniform::Uniform(double lo, double hi) : a(lo), b(hi)
{
    if (!(hi > lo))
        ar::util::fatal("Uniform: invalid range [", lo, ", ", hi, "]");
}

double
Uniform::sample(ar::util::Rng &rng) const
{
    return rng.uniform(a, b);
}

double
Uniform::stddev() const
{
    return (b - a) / std::sqrt(12.0);
}

double
Uniform::cdf(double x) const
{
    if (x <= a)
        return 0.0;
    if (x >= b)
        return 1.0;
    return (x - a) / (b - a);
}

double
Uniform::quantile(double p) const
{
    if (p < 0.0 || p > 1.0)
        ar::util::fatal("Uniform::quantile: p out of range: ", p);
    return a + p * (b - a);
}

double
Uniform::sampleFromUniform(double u) const
{
    return a + u * (b - a);
}

double
Uniform::pdf(double x) const
{
    return (x >= a && x <= b) ? 1.0 / (b - a) : 0.0;
}

std::string
Uniform::describe() const
{
    std::ostringstream oss;
    oss << "Uniform(" << a << ", " << b << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
Uniform::clone() const
{
    return std::make_unique<Uniform>(*this);
}

} // namespace ar::dist
