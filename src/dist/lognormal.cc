#include "dist/lognormal.hh"

#include <cmath>
#include <sstream>

#include "math/numeric.hh"
#include "math/special.hh"
#include "simd/dispatch.hh"
#include "util/logging.hh"

namespace ar::dist
{

LogNormal::LogNormal(double mu, double sigma) : mu(mu), sigma(sigma)
{
    if (sigma <= 0.0)
        ar::util::fatal("LogNormal: sigma must be positive, got ",
                        sigma);
}

LogNormal
LogNormal::fromMeanStddev(double mean, double stddev)
{
    if (mean <= 0.0 || stddev <= 0.0)
        ar::util::fatal("LogNormal::fromMeanStddev: mean and stddev "
                        "must be positive; got mean=", mean,
                        " stddev=", stddev);
    const double ratio2 = (stddev / mean) * (stddev / mean);
    const double sigma2 = std::log1p(ratio2);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return LogNormal(mu, std::sqrt(sigma2));
}

double
LogNormal::sample(ar::util::Rng &rng) const
{
    return std::exp(rng.gaussian(mu, sigma));
}

double
LogNormal::mean() const
{
    return std::exp(mu + 0.5 * sigma * sigma);
}

double
LogNormal::stddev() const
{
    const double s2 = sigma * sigma;
    return mean() * std::sqrt(std::expm1(s2));
}

double
LogNormal::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return ar::math::normalCdf((std::log(x) - mu) / sigma);
}

double
LogNormal::quantile(double p) const
{
    return std::exp(mu + sigma * ar::math::normalQuantile(
        ar::math::clamp(p, 1e-15, 1.0 - 1e-15)));
}

double
LogNormal::sampleFromUniform(double u) const
{
    return quantile(u);
}

void
LogNormal::sampleFromUniformBatch(const double *u, double *out,
                                  std::size_t n) const
{
    ar::simd::kernels().lognormal_quantile(u, out, n, mu, sigma);
}

double
LogNormal::pdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    const double z = (std::log(x) - mu) / sigma;
    return ar::math::normalPdf(z) / (x * sigma);
}

std::string
LogNormal::describe() const
{
    std::ostringstream oss;
    oss << "LogNormal(" << mu << ", " << sigma << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
LogNormal::clone() const
{
    return std::make_unique<LogNormal>(*this);
}

} // namespace ar::dist
