/**
 * @file
 * Deterministic fault-injection harness for testing fault containment.
 *
 * FaultInjectingDistribution decorates any Distribution and corrupts a
 * configurable fraction of its draws with NaN, infinities, or
 * out-of-domain values.  The fault decision is a pure function of the
 * uniform variate u (hashed with an injection seed), NOT of any shared
 * mutable state, so a corrupted trial is the SAME trial for any thread
 * count -- exactly what the FaultReport bit-identity tests need.
 */

#ifndef AR_DIST_FAULT_INJECTION_HH
#define AR_DIST_FAULT_INJECTION_HH

#include <cstdint>

#include "dist/distribution.hh"

namespace ar::dist
{

/** Decorator corrupting a deterministic fraction of draws. */
class FaultInjectingDistribution : public Distribution
{
  public:
    /** What a corrupted draw turns into. */
    enum class Mode : std::uint8_t
    {
        QuietNaN, ///< std::numeric_limits<double>::quiet_NaN().
        PosInf,   ///< +infinity.
        NegInf,   ///< -infinity.

        /**
         * An out-of-domain finite value: -|base draw| - 1, guaranteed
         * negative.  Feeds domain faults (sqrt/log of a negative) to
         * models instead of already-poisoned values.
         */
        Negate,
    };

    /**
     * @param base Decorated distribution (shared, immutable).
     * @param rate Fraction of draws to corrupt in [0, 1].
     * @param seed Injection stream seed; same (seed, u) always makes
     *        the same corrupt-or-not decision.
     * @param mode Corruption value.
     */
    FaultInjectingDistribution(DistPtr base, double rate,
                               std::uint64_t seed,
                               Mode mode = Mode::QuietNaN);

    double sample(ar::util::Rng &rng) const override;
    double sampleFromUniform(double u) const override;

    // Moments and shape delegate to the base distribution: the
    // decorator models *evaluation* faults, not a different random
    // variable.
    double mean() const override { return base_->mean(); }
    double stddev() const override { return base_->stddev(); }
    double cdf(double x) const override { return base_->cdf(x); }
    double quantile(double p) const override;
    double pdf(double x) const override { return base_->pdf(x); }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return true when variate @p u would be corrupted. */
    bool corrupts(double u) const;

  private:
    double corruptValue(double clean) const;

    DistPtr base_;
    double rate_;
    std::uint64_t seed_;
    Mode mode_;
};

} // namespace ar::dist

#endif // AR_DIST_FAULT_INJECTION_HH
