#include "dist/normal.hh"

#include <cmath>
#include <sstream>

#include "math/numeric.hh"
#include "math/special.hh"
#include "simd/dispatch.hh"
#include "util/logging.hh"

namespace ar::dist
{

Normal::Normal(double mu, double sigma) : mu(mu), sigma(sigma)
{
    if (sigma <= 0.0)
        ar::util::fatal("Normal: sigma must be positive, got ", sigma);
}

double
Normal::sample(ar::util::Rng &rng) const
{
    return rng.gaussian(mu, sigma);
}

double
Normal::cdf(double x) const
{
    return ar::math::normalCdf((x - mu) / sigma);
}

double
Normal::quantile(double p) const
{
    return mu + sigma * ar::math::normalQuantile(p);
}

double
Normal::sampleFromUniform(double u) const
{
    return quantile(ar::math::clamp(u, 1e-15, 1.0 - 1e-15));
}

void
Normal::sampleFromUniformBatch(const double *u, double *out,
                               std::size_t n) const
{
    ar::simd::kernels().normal_quantile(u, out, n, mu, sigma);
}

double
Normal::pdf(double x) const
{
    return ar::math::normalPdf((x - mu) / sigma) / sigma;
}

std::string
Normal::describe() const
{
    std::ostringstream oss;
    oss << "Normal(" << mu << ", " << sigma << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
Normal::clone() const
{
    return std::make_unique<Normal>(*this);
}

TruncatedNormal::TruncatedNormal(double mu, double sigma, double lo,
                                 double hi)
    : mu(mu), sigma(sigma), lo(lo), hi(hi)
{
    if (sigma <= 0.0)
        ar::util::fatal("TruncatedNormal: sigma must be positive, got ",
                        sigma);
    if (!(hi > lo))
        ar::util::fatal("TruncatedNormal: invalid range [", lo, ", ",
                        hi, "]");
    const double alpha = (lo - mu) / sigma;
    const double beta = (hi - mu) / sigma;
    cdf_lo = ar::math::normalCdf(alpha);
    cdf_hi = ar::math::normalCdf(beta);
    mass = cdf_hi - cdf_lo;
    if (mass <= 0.0)
        ar::util::fatal("TruncatedNormal: no probability mass in [",
                        lo, ", ", hi, "]");

    const double phi_a = ar::math::normalPdf(alpha);
    const double phi_b = ar::math::normalPdf(beta);
    const double ratio = (phi_a - phi_b) / mass;
    mean_ = mu + sigma * ratio;
    const double term = (alpha * phi_a - beta * phi_b) / mass;
    const double var = sigma * sigma * (1.0 + term - ratio * ratio);
    stddev_ = std::sqrt(std::max(var, 0.0));
}

double
TruncatedNormal::sample(ar::util::Rng &rng) const
{
    return sampleFromUniform(rng.uniform());
}

double
TruncatedNormal::cdf(double x) const
{
    if (x <= lo)
        return 0.0;
    if (x >= hi)
        return 1.0;
    return (ar::math::normalCdf((x - mu) / sigma) - cdf_lo) / mass;
}

double
TruncatedNormal::quantile(double p) const
{
    if (p <= 0.0)
        return lo;
    if (p >= 1.0)
        return hi;
    const double u = cdf_lo + p * mass;
    const double x =
        mu + sigma * ar::math::normalQuantile(
            ar::math::clamp(u, 1e-15, 1.0 - 1e-15));
    return ar::math::clamp(x, lo, hi);
}

double
TruncatedNormal::sampleFromUniform(double u) const
{
    return quantile(u);
}

double
TruncatedNormal::pdf(double x) const
{
    if (x < lo || x > hi)
        return 0.0;
    return ar::math::normalPdf((x - mu) / sigma) / (sigma * mass);
}

std::string
TruncatedNormal::describe() const
{
    std::ostringstream oss;
    oss << "TruncatedNormal(" << mu << ", " << sigma << ", [" << lo
        << ", " << hi << "])";
    return oss.str();
}

std::unique_ptr<Distribution>
TruncatedNormal::clone() const
{
    return std::make_unique<TruncatedNormal>(*this);
}

} // namespace ar::dist
