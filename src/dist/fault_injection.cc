#include "dist/fault_injection.hh"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace ar::dist
{

FaultInjectingDistribution::FaultInjectingDistribution(
    DistPtr base, double rate, std::uint64_t seed, Mode mode)
    : base_(std::move(base)), rate_(rate), seed_(seed), mode_(mode)
{
    if (!base_)
        ar::util::panic("FaultInjectingDistribution: null base");
    if (rate_ < 0.0 || rate_ > 1.0) {
        ar::util::fatal("FaultInjectingDistribution: rate must be in "
                        "[0, 1], got ", rate_);
    }
}

bool
FaultInjectingDistribution::corrupts(double u) const
{
    // Decision is a hash of (seed, u) only: stateless, so the same
    // variate faults no matter which thread or call order draws it.
    ar::util::SplitMix64 mix(seed_ ^ std::bit_cast<std::uint64_t>(u));
    const double roll =
        static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    return roll < rate_;
}

double
FaultInjectingDistribution::corruptValue(double clean) const
{
    switch (mode_) {
      case Mode::QuietNaN:
        return std::numeric_limits<double>::quiet_NaN();
      case Mode::PosInf:
        return std::numeric_limits<double>::infinity();
      case Mode::NegInf:
        return -std::numeric_limits<double>::infinity();
      case Mode::Negate:
        return -std::fabs(clean) - 1.0;
    }
    return std::numeric_limits<double>::quiet_NaN();
}

double
FaultInjectingDistribution::sampleFromUniform(double u) const
{
    const double clean = base_->sampleFromUniform(u);
    return corrupts(u) ? corruptValue(clean) : clean;
}

double
FaultInjectingDistribution::sample(ar::util::Rng &rng) const
{
    return sampleFromUniform(rng.uniform());
}

double
FaultInjectingDistribution::quantile(double p) const
{
    return base_->quantile(p);
}

std::string
FaultInjectingDistribution::describe() const
{
    const char *mode_name = "nan";
    switch (mode_) {
      case Mode::QuietNaN:
        mode_name = "nan";
        break;
      case Mode::PosInf:
        mode_name = "+inf";
        break;
      case Mode::NegInf:
        mode_name = "-inf";
        break;
      case Mode::Negate:
        mode_name = "negate";
        break;
    }
    std::ostringstream oss;
    oss << "FaultInjecting(" << base_->describe() << ", rate=" << rate_
        << ", mode=" << mode_name << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
FaultInjectingDistribution::clone() const
{
    return std::make_unique<FaultInjectingDistribution>(base_, rate_,
                                                        seed_, mode_);
}

} // namespace ar::dist
