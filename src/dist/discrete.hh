/**
 * @file
 * Discrete distributions: Bernoulli, Binomial, the normalized
 * binomial Binomial(M, p)/M the paper uses as the hidden ground-truth
 * model for the application parameters f and c (Table 2, Eqs. 11-12),
 * and the finite Categorical distribution backing multi-state
 * component performance levels.
 */

#ifndef AR_DIST_DISCRETE_HH
#define AR_DIST_DISCRETE_HH

#include <vector>

#include "dist/distribution.hh"

namespace ar::dist
{

/** Bernoulli over {0, 1}. */
class Bernoulli : public Distribution
{
  public:
    /** @param p Success probability in [0, 1]. */
    explicit Bernoulli(double p);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return p; }
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double q) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the success probability. */
    double probability() const { return p; }

  private:
    double p;
};

/** Binomial(n, p) over {0, ..., n}. */
class Binomial : public Distribution
{
  public:
    /**
     * @param n Number of trials.
     * @param p Per-trial success probability in [0, 1].
     */
    Binomial(unsigned n, double p);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override;
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double q) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** Probability mass at integer k. */
    double pmf(unsigned k) const;

    /** @return the trial count. */
    unsigned trials() const { return n; }

    /** @return the per-trial success probability. */
    double probability() const { return p; }

  private:
    /** Smallest k with CDF(k) >= u (mode-anchored walk, O(stddev)). */
    unsigned quantileIndex(double u) const;

    unsigned n;
    double p;

    // The walk's anchor (mode index, CDF and pmf there) only depends
    // on (n, p), so it is computed once at construction; re-deriving
    // the CDF anchor per draw costs an incomplete-beta evaluation and
    // dominated sampling time.
    unsigned anchor_k = 0;
    double anchor_cdf = 0.0;
    double anchor_pmf = 0.0;
};

/**
 * Binomial(M, p) / M: a discrete distribution on [0, 1] with mean p
 * and stddev sqrt(p (1 - p) / M).
 */
class NormalizedBinomial : public Distribution
{
  public:
    /** @param m Trial count M (> 0). @param p Mean in [0, 1]. */
    NormalizedBinomial(unsigned m, double p);

    /**
     * Choose M so the distribution has (approximately) the requested
     * standard deviation, as the paper does to hit a target
     * uncertainty level ("M ... is computed to satisfy the level of
     * variance we desire").  Requires 0 < mean < 1.
     */
    static NormalizedBinomial fromMeanStddev(double mean, double stddev);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return inner.mean() / m_count; }
    double stddev() const override { return inner.stddev() / m_count; }
    double cdf(double x) const override;
    double quantile(double q) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the trial count M. */
    unsigned trials() const { return inner.trials(); }

  private:
    Binomial inner;
    double m_count;
};

/**
 * Finite discrete distribution over explicit support points, the
 * sampling form of a multi-state component (ar::risk): each
 * performance state contributes one (value, probability) atom.
 *
 * The support is kept sorted ascending by value so the quantile
 * function is monotone -- Latin-hypercube strata over u therefore map
 * to contiguous probability bands, exactly like every other
 * distribution in the engine.
 *
 * Probabilities must be non-negative and may sum to LESS than one: a
 * deficit models unspecified ("unmodeled") states, and any uniform
 * variate falling into the gap samples as NaN so the fault-containment
 * pipeline can attribute and police the trial.  A total above one is
 * fatal.
 */
class Categorical : public Distribution
{
  public:
    /**
     * @param values Support points (one per state).
     * @param probs Matching probabilities; each in [0, 1] and
     *        sum <= 1 (within 1e-9).  Fatal on violation, on a size
     *        mismatch, or on an empty support.
     */
    Categorical(std::vector<double> values, std::vector<double> probs);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override;
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double q) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the ascending support points. */
    const std::vector<double> &values() const { return values_; }

    /** @return probabilities matching values(). */
    const std::vector<double> &probabilities() const { return probs_; }

    /** @return the total probability mass (<= 1; a deficit is the
     * unmodeled-state gap that samples as NaN). */
    double totalProbability() const { return total_; }

  private:
    std::vector<double> values_; ///< Ascending.
    std::vector<double> probs_;
    std::vector<double> cum_;    ///< Inclusive prefix sums of probs_.
    double total_ = 0.0;
};

} // namespace ar::dist

#endif // AR_DIST_DISCRETE_HH
