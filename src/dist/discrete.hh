/**
 * @file
 * Discrete distributions: Bernoulli, Binomial, and the normalized
 * binomial Binomial(M, p)/M the paper uses as the hidden ground-truth
 * model for the application parameters f and c (Table 2, Eqs. 11-12).
 */

#ifndef AR_DIST_DISCRETE_HH
#define AR_DIST_DISCRETE_HH

#include "dist/distribution.hh"

namespace ar::dist
{

/** Bernoulli over {0, 1}. */
class Bernoulli : public Distribution
{
  public:
    /** @param p Success probability in [0, 1]. */
    explicit Bernoulli(double p);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return p; }
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double q) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the success probability. */
    double probability() const { return p; }

  private:
    double p;
};

/** Binomial(n, p) over {0, ..., n}. */
class Binomial : public Distribution
{
  public:
    /**
     * @param n Number of trials.
     * @param p Per-trial success probability in [0, 1].
     */
    Binomial(unsigned n, double p);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override;
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double q) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** Probability mass at integer k. */
    double pmf(unsigned k) const;

    /** @return the trial count. */
    unsigned trials() const { return n; }

    /** @return the per-trial success probability. */
    double probability() const { return p; }

  private:
    /** Smallest k with CDF(k) >= u (mode-anchored walk, O(stddev)). */
    unsigned quantileIndex(double u) const;

    unsigned n;
    double p;

    // The walk's anchor (mode index, CDF and pmf there) only depends
    // on (n, p), so it is computed once at construction; re-deriving
    // the CDF anchor per draw costs an incomplete-beta evaluation and
    // dominated sampling time.
    unsigned anchor_k = 0;
    double anchor_cdf = 0.0;
    double anchor_pmf = 0.0;
};

/**
 * Binomial(M, p) / M: a discrete distribution on [0, 1] with mean p
 * and stddev sqrt(p (1 - p) / M).
 */
class NormalizedBinomial : public Distribution
{
  public:
    /** @param m Trial count M (> 0). @param p Mean in [0, 1]. */
    NormalizedBinomial(unsigned m, double p);

    /**
     * Choose M so the distribution has (approximately) the requested
     * standard deviation, as the paper does to hit a target
     * uncertainty level ("M ... is computed to satisfy the level of
     * variance we desire").  Requires 0 < mean < 1.
     */
    static NormalizedBinomial fromMeanStddev(double mean, double stddev);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return inner.mean() / m_count; }
    double stddev() const override { return inner.stddev() / m_count; }
    double cdf(double x) const override;
    double quantile(double q) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the trial count M. */
    unsigned trials() const { return inner.trials(); }

  private:
    Binomial inner;
    double m_count;
};

} // namespace ar::dist

#endif // AR_DIST_DISCRETE_HH
