/**
 * @file
 * The back-transformed Gaussian distribution produced by the paper's
 * bootstrapping pipeline (Figure 2, steps 3-5 / Figure 3): a Gaussian
 * fitted in Box-Cox space, pushed back through the inverse transform.
 * Because the Box-Cox transform is monotone, the CDF and quantile are
 * closed-form; moments are computed once by quadrature.
 */

#ifndef AR_DIST_BOXCOX_DIST_HH
#define AR_DIST_BOXCOX_DIST_HH

#include "dist/distribution.hh"
#include "stats/boxcox.hh"

namespace ar::dist
{

/** Inverse-Box-Cox image of N(mu, sigma^2). */
class BoxCoxGaussian : public Distribution
{
  public:
    /**
     * @param transform Fitted Box-Cox parameters.
     * @param mu Gaussian mean in transformed space.
     * @param sigma Gaussian stddev in transformed space (> 0).
     */
    BoxCoxGaussian(const ar::stats::BoxCoxTransform &transform,
                   double mu, double sigma);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return mean_; }
    double stddev() const override { return stddev_; }
    double cdf(double x) const override;
    double quantile(double p) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the Box-Cox parameters. */
    const ar::stats::BoxCoxTransform &transform() const { return t; }

  private:
    ar::stats::BoxCoxTransform t;
    double mu;
    double sigma;
    double mean_ = 0.0;
    double stddev_ = 0.0;
};

} // namespace ar::dist

#endif // AR_DIST_BOXCOX_DIST_HH
