/**
 * @file
 * Data-backed distributions: the empirical distribution of a sample
 * (what the Monte-Carlo back-end reconstructs for responsive
 * variables, Figure 5 step 5) and a KDE-smoothed variant (Figure 2
 * step 2).
 */

#ifndef AR_DIST_EMPIRICAL_HH
#define AR_DIST_EMPIRICAL_HH

#include <span>

#include "dist/distribution.hh"
#include "stats/kde.hh"
#include "stats/quantiles.hh"
#include "stats/summary.hh"

namespace ar::dist
{

/** Empirical distribution over a fixed sample. */
class Empirical : public Distribution
{
  public:
    /** @param xs Sample; must be non-empty. */
    explicit Empirical(std::span<const double> xs);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return summary_.mean; }
    double stddev() const override { return summary_.stddev; }
    double cdf(double x) const override { return ecdf(x); }
    double quantile(double p) const override;
    double sampleFromUniform(double u) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the sorted underlying sample. */
    const std::vector<double> &sorted() const { return ecdf.sorted(); }

    /** @return the full batch summary of the sample. */
    const ar::stats::Summary &summary() const { return summary_; }

  private:
    ar::stats::Ecdf ecdf;
    ar::stats::Summary summary_;
};

/** Distribution defined by a Gaussian kernel density estimate. */
class KdeDistribution : public Distribution
{
  public:
    /**
     * @param xs Source sample.
     * @param bandwidth Kernel bandwidth; <= 0 selects Silverman.
     */
    explicit KdeDistribution(std::span<const double> xs,
                             double bandwidth = 0.0);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override;
    double stddev() const override;
    double cdf(double x) const override;
    double pdf(double x) const override;

    /**
     * Inverse-CDF draw via an interpolated quantile table (built
     * lazily on first use; not thread-safe during that first call).
     * Keeps Latin-hypercube stratification cheap even for large
     * source samples.
     */
    double sampleFromUniform(double u) const override;

    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    /** @return the underlying KDE. */
    const ar::stats::GaussianKde &kde() const { return kde_; }

  private:
    ar::stats::GaussianKde kde_;
    double mean_;
    double stddev_;
    mutable std::vector<double> qtable; ///< Lazy quantile table.
};

} // namespace ar::dist

#endif // AR_DIST_EMPIRICAL_HH
