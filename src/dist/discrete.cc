#include "dist/discrete.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "math/numeric.hh"
#include "math/special.hh"
#include "util/logging.hh"

namespace ar::dist
{

Bernoulli::Bernoulli(double p) : p(p)
{
    if (p < 0.0 || p > 1.0)
        ar::util::fatal("Bernoulli: p must lie in [0, 1], got ", p);
}

double
Bernoulli::sample(ar::util::Rng &rng) const
{
    return rng.uniform() < p ? 1.0 : 0.0;
}

double
Bernoulli::stddev() const
{
    return std::sqrt(p * (1.0 - p));
}

double
Bernoulli::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    if (x < 1.0)
        return 1.0 - p;
    return 1.0;
}

double
Bernoulli::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        ar::util::fatal("Bernoulli::quantile: q out of range: ", q);
    return q <= 1.0 - p ? 0.0 : 1.0;
}

double
Bernoulli::sampleFromUniform(double u) const
{
    // Map the top p-fraction of [0,1) to success so the quantile
    // function stays monotone.
    return u > 1.0 - p ? 1.0 : 0.0;
}

std::string
Bernoulli::describe() const
{
    std::ostringstream oss;
    oss << "Bernoulli(" << p << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
Bernoulli::clone() const
{
    return std::make_unique<Bernoulli>(*this);
}

Binomial::Binomial(unsigned n, double p) : n(n), p(p)
{
    if (p < 0.0 || p > 1.0)
        ar::util::fatal("Binomial: p must lie in [0, 1], got ", p);
    if (n == 0)
        ar::util::fatal("Binomial: need at least one trial");
    if (p > 0.0 && p < 1.0) {
        anchor_k = std::min<unsigned>(
            n, static_cast<unsigned>((n + 1) * p));
        anchor_cdf = cdf(static_cast<double>(anchor_k));
        anchor_pmf = pmf(anchor_k);
    }
}

double
Binomial::pmf(unsigned k) const
{
    if (k > n)
        return 0.0;
    if (p == 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p == 1.0)
        return k == n ? 1.0 : 0.0;
    const double lp = ar::math::logBinomialCoef(n, k) +
                      k * std::log(p) + (n - k) * std::log1p(-p);
    return std::exp(lp);
}

double
Binomial::mean() const
{
    return static_cast<double>(n) * p;
}

double
Binomial::stddev() const
{
    return std::sqrt(static_cast<double>(n) * p * (1.0 - p));
}

double
Binomial::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    const double kf = std::floor(x);
    if (kf >= static_cast<double>(n))
        return 1.0;
    const unsigned k = static_cast<unsigned>(kf);
    if (p == 0.0)
        return 1.0;
    if (p == 1.0)
        return k >= n ? 1.0 : 0.0;
    // P(X <= k) = I_{1-p}(n - k, k + 1).
    return ar::math::betaInc(static_cast<double>(n - k),
                             static_cast<double>(k + 1), 1.0 - p);
}

unsigned
Binomial::quantileIndex(double u) const
{
    if (p == 0.0)
        return 0;
    if (p == 1.0)
        return n;

    // Anchor at the mode (precomputed in the constructor), then walk
    // the CDF in the needed direction.
    unsigned k = anchor_k;
    double c = anchor_cdf;
    double mass = anchor_pmf;
    const double odds = p / (1.0 - p);

    if (u <= c) {
        // Walk down while removing pmf(k) still keeps CDF above u.
        while (k > 0 && c - mass >= u) {
            c -= mass;
            mass *= static_cast<double>(k) /
                    (static_cast<double>(n - k + 1) * odds);
            --k;
        }
        return k;
    }
    while (k < n) {
        mass *= static_cast<double>(n - k) /
                static_cast<double>(k + 1) * odds;
        ++k;
        c += mass;
        if (c >= u)
            return k;
    }
    return n;
}

double
Binomial::sample(ar::util::Rng &rng) const
{
    return sampleFromUniform(rng.uniform());
}

double
Binomial::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        ar::util::fatal("Binomial::quantile: q out of range: ", q);
    return static_cast<double>(quantileIndex(q));
}

double
Binomial::sampleFromUniform(double u) const
{
    return static_cast<double>(quantileIndex(u));
}

std::string
Binomial::describe() const
{
    std::ostringstream oss;
    oss << "Binomial(" << n << ", " << p << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
Binomial::clone() const
{
    return std::make_unique<Binomial>(*this);
}

NormalizedBinomial::NormalizedBinomial(unsigned m, double p)
    : inner(m, p), m_count(static_cast<double>(m))
{
}

NormalizedBinomial
NormalizedBinomial::fromMeanStddev(double mean, double stddev)
{
    if (mean <= 0.0 || mean >= 1.0)
        ar::util::fatal("NormalizedBinomial::fromMeanStddev: mean must "
                        "lie in (0, 1), got ", mean);
    if (stddev <= 0.0)
        ar::util::fatal("NormalizedBinomial::fromMeanStddev: stddev "
                        "must be positive, got ", stddev);
    const double m_real = mean * (1.0 - mean) / (stddev * stddev);
    const unsigned m = std::max(1u, static_cast<unsigned>(
        std::lround(m_real)));
    return NormalizedBinomial(m, mean);
}

double
NormalizedBinomial::sample(ar::util::Rng &rng) const
{
    return inner.sample(rng) / m_count;
}

double
NormalizedBinomial::cdf(double x) const
{
    return inner.cdf(x * m_count);
}

double
NormalizedBinomial::quantile(double q) const
{
    return inner.quantile(q) / m_count;
}

double
NormalizedBinomial::sampleFromUniform(double u) const
{
    return inner.sampleFromUniform(u) / m_count;
}

std::string
NormalizedBinomial::describe() const
{
    std::ostringstream oss;
    oss << "NormalizedBinomial(" << inner.trials() << ", "
        << inner.probability() << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
NormalizedBinomial::clone() const
{
    return std::make_unique<NormalizedBinomial>(*this);
}

Categorical::Categorical(std::vector<double> values,
                         std::vector<double> probs)
{
    if (values.empty())
        ar::util::fatal("Categorical: need at least one state");
    if (values.size() != probs.size()) {
        ar::util::fatal("Categorical: ", values.size(), " values vs ",
                        probs.size(), " probabilities");
    }
    std::vector<std::size_t> order(values.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return values[a] != values[b] ? values[a] < values[b]
                                                : a < b;
              });
    values_.reserve(values.size());
    probs_.reserve(values.size());
    cum_.reserve(values.size());
    for (const std::size_t i : order) {
        if (!(probs[i] >= 0.0) || probs[i] > 1.0) {
            ar::util::fatal("Categorical: probability must lie in "
                            "[0, 1], got ", probs[i]);
        }
        values_.push_back(values[i]);
        probs_.push_back(probs[i]);
        total_ += probs[i];
        cum_.push_back(total_);
    }
    if (total_ > 1.0 + 1e-9) {
        ar::util::fatal("Categorical: probabilities sum to ", total_,
                        " > 1");
    }
}

double
Categorical::sample(ar::util::Rng &rng) const
{
    return sampleFromUniform(rng.uniform());
}

double
Categorical::mean() const
{
    // With a probability deficit the distribution is improper (the
    // gap is an unmodeled state of unknown value), so the mean is
    // honestly unknown.
    if (total_ < 1.0 - 1e-9)
        return std::numeric_limits<double>::quiet_NaN();
    double acc = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
        acc += probs_[i] * values_[i];
    return acc;
}

double
Categorical::stddev() const
{
    const double mu = mean();
    if (!std::isfinite(mu))
        return std::numeric_limits<double>::quiet_NaN();
    double acc = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
        acc += probs_[i] * (values_[i] - mu) * (values_[i] - mu);
    return std::sqrt(acc);
}

double
Categorical::cdf(double x) const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < values_.size() && values_[i] <= x; ++i)
        acc += probs_[i];
    return acc;
}

double
Categorical::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        ar::util::fatal("Categorical::quantile: q out of range: ", q);
    return sampleFromUniform(q);
}

double
Categorical::sampleFromUniform(double u) const
{
    // Inverse CDF over the ascending support; the top (1 - total)
    // band is the unmodeled-state gap and samples as NaN so fault
    // containment sees (and attributes) the trial.
    for (std::size_t i = 0; i < cum_.size(); ++i) {
        if (u <= cum_[i])
            return values_[i];
    }
    if (u <= total_ + 1e-12)
        return values_.back();
    return std::numeric_limits<double>::quiet_NaN();
}

std::string
Categorical::describe() const
{
    std::ostringstream oss;
    oss << "Categorical(";
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i > 0)
            oss << ", ";
        oss << values_[i] << ":" << probs_[i];
    }
    if (total_ < 1.0 - 1e-9)
        oss << ", gap:" << 1.0 - total_;
    oss << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
Categorical::clone() const
{
    return std::make_unique<Categorical>(*this);
}

} // namespace ar::dist
