/**
 * @file
 * Abstract random-variable interface plus the trivial distributions
 * (degenerate point mass and uniform).  Every uncertain input in the
 * framework is represented as a Distribution; the Monte-Carlo back-end
 * only needs sample(), while risk analytics additionally use cdf()
 * and the moments.
 */

#ifndef AR_DIST_DISTRIBUTION_HH
#define AR_DIST_DISTRIBUTION_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace ar::dist
{

/** Abstract distribution over the reals. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample. */
    virtual double sample(ar::util::Rng &rng) const = 0;

    /** @return the distribution mean. */
    virtual double mean() const = 0;

    /** @return the distribution standard deviation. */
    virtual double stddev() const = 0;

    /** @return P(X <= x). */
    virtual double cdf(double x) const = 0;

    /**
     * @return the p-quantile.  The default implementation inverts
     * cdf() by bisection over an automatically expanded bracket.
     */
    virtual double quantile(double p) const;

    /**
     * Density at x for continuous distributions; discrete
     * distributions report a fatal error.
     */
    virtual double pdf(double x) const;

    /** @return a human-readable description. */
    virtual std::string describe() const = 0;

    /** Deep copy. */
    virtual std::unique_ptr<Distribution> clone() const = 0;

    /** Convenience: draw @p count samples. */
    std::vector<double> sampleMany(std::size_t count,
                                   ar::util::Rng &rng) const;

    /**
     * Draw one sample via inverse-CDF from a uniform variate.  This is
     * what the Latin-hypercube engine uses; the default maps through
     * quantile().  @param u Uniform variate in (0, 1).
     */
    virtual double sampleFromUniform(double u) const;

    /**
     * Vector form of sampleFromUniform(): transform @p n uniform
     * variates into @p n samples.  The default loops over
     * sampleFromUniform(); Normal and LogNormal override it with
     * ar::simd quantile kernels (bit-identical to the scalar path at
     * Level::Scalar, DESIGN.md 5.6 ULP policy at vector levels).
     *
     * @param u @p n uniform variates in (0, 1).
     * @param out Receives @p n samples; may not alias @p u.
     * @param n Number of variates.
     */
    virtual void sampleFromUniformBatch(const double *u, double *out,
                                        std::size_t n) const;
};

/** Shared handle to an immutable distribution. */
using DistPtr = std::shared_ptr<const Distribution>;

/** Point mass at a single value. */
class Degenerate : public Distribution
{
  public:
    explicit Degenerate(double value) : v(value) {}

    double sample(ar::util::Rng &) const override { return v; }
    double mean() const override { return v; }
    double stddev() const override { return 0.0; }
    double cdf(double x) const override { return x >= v ? 1.0 : 0.0; }
    double quantile(double) const override { return v; }
    double sampleFromUniform(double) const override { return v; }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double v;
};

/** Continuous uniform on [lo, hi]. */
class Uniform : public Distribution
{
  public:
    /** @param lo Lower bound. @param hi Upper bound; must exceed lo. */
    Uniform(double lo, double hi);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override { return 0.5 * (a + b); }
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double sampleFromUniform(double u) const override;
    double pdf(double x) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double a;
    double b;
};

} // namespace ar::dist

#endif // AR_DIST_DISTRIBUTION_HH
