#include "dist/combinators.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "dist/discrete.hh"
#include "util/logging.hh"

namespace ar::dist
{

Affine::Affine(DistPtr base, double scale, double offset)
    : base(std::move(base)), scale(scale), offset(offset)
{
    if (!this->base)
        ar::util::fatal("Affine: null base distribution");
    if (scale == 0.0)
        ar::util::fatal("Affine: scale must be non-zero");
}

double
Affine::sample(ar::util::Rng &rng) const
{
    return scale * base->sample(rng) + offset;
}

double
Affine::mean() const
{
    return scale * base->mean() + offset;
}

double
Affine::stddev() const
{
    return std::fabs(scale) * base->stddev();
}

double
Affine::cdf(double x) const
{
    const double inner = (x - offset) / scale;
    if (scale > 0.0)
        return base->cdf(inner);
    // Decreasing map: P(aX + b <= x) = P(X >= inner).
    return 1.0 - base->cdf(inner);
}

double
Affine::quantile(double p) const
{
    if (scale > 0.0)
        return scale * base->quantile(p) + offset;
    return scale * base->quantile(1.0 - p) + offset;
}

double
Affine::sampleFromUniform(double u) const
{
    if (scale > 0.0)
        return scale * base->sampleFromUniform(u) + offset;
    return scale * base->sampleFromUniform(1.0 - u) + offset;
}

void
Affine::sampleFromUniformBatch(const double *u, double *out,
                               std::size_t n) const
{
    // Delegate to the base batch path (vectorized for Normal and
    // LogNormal), then apply the affine map with the same per-element
    // expression as sampleFromUniform so both paths round alike.
    if (scale > 0.0) {
        base->sampleFromUniformBatch(u, out, n);
    } else {
        static thread_local std::vector<double> flipped;
        flipped.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            flipped[i] = 1.0 - u[i];
        base->sampleFromUniformBatch(flipped.data(), out, n);
    }
    for (std::size_t i = 0; i < n; ++i)
        out[i] = scale * out[i] + offset;
}

std::string
Affine::describe() const
{
    std::ostringstream oss;
    oss << scale << " * " << base->describe() << " + " << offset;
    return oss.str();
}

std::unique_ptr<Distribution>
Affine::clone() const
{
    return std::make_unique<Affine>(*this);
}

Product::Product(DistPtr x, DistPtr y)
    : x(std::move(x)), y(std::move(y))
{
    if (!this->x || !this->y)
        ar::util::fatal("Product: null factor distribution");
}

double
Product::sample(ar::util::Rng &rng) const
{
    return x->sample(rng) * y->sample(rng);
}

double
Product::mean() const
{
    return x->mean() * y->mean();
}

double
Product::stddev() const
{
    const double ex = x->mean();
    const double ey = y->mean();
    const double ex2 = x->stddev() * x->stddev() + ex * ex;
    const double ey2 = y->stddev() * y->stddev() + ey * ey;
    const double var = ex2 * ey2 - ex * ex * ey * ey;
    return std::sqrt(std::max(var, 0.0));
}

double
Product::cdf(double z) const
{
    // Supported when the first factor is discrete with small support.
    if (const auto *bern = dynamic_cast<const Bernoulli *>(x.get())) {
        const double p = bern->probability();
        const double zero_part = (z >= 0.0) ? (1.0 - p) : 0.0;
        return zero_part + p * y->cdf(z);
    }
    if (const auto *bin = dynamic_cast<const Binomial *>(x.get())) {
        double acc = 0.0;
        for (unsigned k = 0; k <= bin->trials(); ++k) {
            const double pk = bin->pmf(k);
            if (pk <= 0.0)
                continue;
            if (k == 0)
                acc += (z >= 0.0) ? pk : 0.0;
            else
                acc += pk * y->cdf(z / static_cast<double>(k));
        }
        return acc;
    }
    ar::util::fatal("Product::cdf: unsupported factor ", x->describe());
}

double
Product::sampleFromUniform(double u) const
{
    // Fast exact path for Bernoulli x (positive Y): the bottom
    // (1 - p) quantile mass is the zero atom, the rest is Y rescaled.
    if (const auto *bern = dynamic_cast<const Bernoulli *>(x.get())) {
        if (y->cdf(0.0) == 0.0) {
            const double q0 = 1.0 - bern->probability();
            if (u <= q0 || q0 >= 1.0)
                return 0.0;
            return y->sampleFromUniform((u - q0) / (1.0 - q0));
        }
    }
    return Distribution::sampleFromUniform(u);
}

void
Product::sampleFromUniformBatch(const double *u, double *out,
                                std::size_t n) const
{
    // Batch form of the Bernoulli fast path above.  The factor probe
    // (dynamic_cast + the y support check) dominated the per-draw
    // scalar cost, so it is hoisted out of the loop; the surviving
    // draws then reach y's vectorized batch quantile in one call.
    const auto *bern = dynamic_cast<const Bernoulli *>(x.get());
    if (bern == nullptr || y->cdf(0.0) != 0.0) {
        Distribution::sampleFromUniformBatch(u, out, n);
        return;
    }
    const double q0 = 1.0 - bern->probability();
    if (q0 >= 1.0) {
        std::fill(out, out + n, 0.0);
        return;
    }
    static thread_local std::vector<double> rescaled;
    rescaled.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        rescaled[i] = (u[i] - q0) / (1.0 - q0);
    y->sampleFromUniformBatch(rescaled.data(), out, n);
    // The bottom (1 - p) quantile mass is the zero atom.  Rescaled
    // values for those lanes pass through y's clamp harmlessly and
    // are overwritten here, matching the scalar branch order.
    for (std::size_t i = 0; i < n; ++i)
        if (u[i] <= q0)
            out[i] = 0.0;
}

std::string
Product::describe() const
{
    std::ostringstream oss;
    oss << x->describe() << " * " << y->describe();
    return oss.str();
}

std::unique_ptr<Distribution>
Product::clone() const
{
    return std::make_unique<Product>(*this);
}

} // namespace ar::dist
