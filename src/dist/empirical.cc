#include "dist/empirical.hh"

#include <cmath>
#include <sstream>

#include "math/numeric.hh"

namespace ar::dist
{

Empirical::Empirical(std::span<const double> xs)
    : ecdf(xs), summary_(ar::stats::summarize(xs))
{
}

double
Empirical::sample(ar::util::Rng &rng) const
{
    const auto &data = ecdf.sorted();
    return data[rng.uniformInt(data.size())];
}

double
Empirical::quantile(double p) const
{
    return ecdf.quantile(p);
}

double
Empirical::sampleFromUniform(double u) const
{
    return ecdf.quantile(ar::math::clamp(u, 0.0, 1.0));
}

std::string
Empirical::describe() const
{
    std::ostringstream oss;
    oss << "Empirical(n=" << ecdf.sorted().size()
        << ", mean=" << summary_.mean << ", sd=" << summary_.stddev
        << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
Empirical::clone() const
{
    return std::make_unique<Empirical>(*this);
}

KdeDistribution::KdeDistribution(std::span<const double> xs,
                                 double bandwidth)
    : kde_(xs, bandwidth)
{
    const auto &pts = kde_.data();
    mean_ = ar::math::mean(pts);
    double ss = 0.0;
    for (double p : pts)
        ss += (p - mean_) * (p - mean_);
    const double pop_var = ss / static_cast<double>(pts.size());
    stddev_ = std::sqrt(pop_var + kde_.bandwidth() * kde_.bandwidth());
}

double
KdeDistribution::sample(ar::util::Rng &rng) const
{
    return kde_.sample(rng);
}

double
KdeDistribution::mean() const
{
    return mean_;
}

double
KdeDistribution::stddev() const
{
    return stddev_;
}

double
KdeDistribution::cdf(double x) const
{
    return kde_.cdf(x);
}

double
KdeDistribution::pdf(double x) const
{
    return kde_.pdf(x);
}

double
KdeDistribution::sampleFromUniform(double u) const
{
    static constexpr std::size_t table_size = 257;
    if (qtable.empty()) {
        qtable.resize(table_size);
        double lo_bracket =
            kde_.data().front() - 10.0 * kde_.bandwidth();
        const double hi_limit =
            kde_.data().back() + 10.0 * kde_.bandwidth();
        for (std::size_t i = 0; i < table_size; ++i) {
            const double p = (static_cast<double>(i) + 0.5) /
                             static_cast<double>(table_size);
            // Monotone targets: restart the bisection from the
            // previous quantile.
            double lo = lo_bracket, hi = hi_limit;
            for (int it = 0; it < 60 && hi - lo >
                                            1e-12 * (1.0 +
                                                     std::fabs(hi));
                 ++it) {
                const double mid = 0.5 * (lo + hi);
                if (kde_.cdf(mid) < p)
                    lo = mid;
                else
                    hi = mid;
            }
            qtable[i] = 0.5 * (lo + hi);
            lo_bracket = qtable[i];
        }
    }
    const double pos = ar::math::clamp(u, 0.0, 1.0) *
                           static_cast<double>(table_size) -
                       0.5;
    if (pos <= 0.0)
        return qtable.front();
    if (pos >= static_cast<double>(table_size - 1))
        return qtable.back();
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    return qtable[idx] * (1.0 - frac) + qtable[idx + 1] * frac;
}

std::string
KdeDistribution::describe() const
{
    std::ostringstream oss;
    oss << "Kde(n=" << kde_.data().size() << ", h=" << kde_.bandwidth()
        << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
KdeDistribution::clone() const
{
    return std::make_unique<KdeDistribution>(*this);
}

} // namespace ar::dist
