#include "dist/boxcox_dist.hh"

#include <cmath>
#include <sstream>

#include "math/numeric.hh"
#include "math/special.hh"
#include "util/logging.hh"

namespace ar::dist
{

BoxCoxGaussian::BoxCoxGaussian(const ar::stats::BoxCoxTransform &transform,
                               double mu, double sigma)
    : t(transform), mu(mu), sigma(sigma)
{
    if (sigma <= 0.0)
        ar::util::fatal("BoxCoxGaussian: sigma must be positive, got ",
                        sigma);

    // Moments by midpoint quadrature over the Gaussian quantiles.
    const std::size_t grid = 512;
    double acc = 0.0;
    double acc2 = 0.0;
    for (std::size_t i = 0; i < grid; ++i) {
        const double u = (static_cast<double>(i) + 0.5) /
                         static_cast<double>(grid);
        const double g = mu + sigma * ar::math::normalQuantile(u);
        const double x = t.invert(g);
        acc += x;
        acc2 += x * x;
    }
    mean_ = acc / static_cast<double>(grid);
    const double var =
        acc2 / static_cast<double>(grid) - mean_ * mean_;
    stddev_ = std::sqrt(std::max(var, 0.0));
}

double
BoxCoxGaussian::sample(ar::util::Rng &rng) const
{
    return t.invert(rng.gaussian(mu, sigma));
}

double
BoxCoxGaussian::cdf(double x) const
{
    const double v = x + t.shift;
    if (v <= 0.0) {
        if (t.lambda > 1e-12) {
            // Mass the inverse transform clamps to the domain edge.
            const double edge = -1.0 / t.lambda;
            return x >= -t.shift
                ? ar::math::normalCdf((edge - mu) / sigma)
                : 0.0;
        }
        return 0.0;
    }
    return ar::math::normalCdf((t.apply(x) - mu) / sigma);
}

double
BoxCoxGaussian::quantile(double p) const
{
    const double g = mu + sigma * ar::math::normalQuantile(
        ar::math::clamp(p, 1e-15, 1.0 - 1e-15));
    return t.invert(g);
}

double
BoxCoxGaussian::sampleFromUniform(double u) const
{
    return quantile(u);
}

std::string
BoxCoxGaussian::describe() const
{
    std::ostringstream oss;
    oss << "BoxCoxGaussian(lambda=" << t.lambda << ", shift=" << t.shift
        << ", mu=" << mu << ", sigma=" << sigma << ")";
    return oss.str();
}

std::unique_ptr<Distribution>
BoxCoxGaussian::clone() const
{
    return std::make_unique<BoxCoxGaussian>(*this);
}

} // namespace ar::dist
