/**
 * @file
 * Distribution combinators: affine rescaling a*X + b, and products of
 * independent variables.  The paper's design-uncertainty model for
 * core performance is exactly such a product: Bernoulli(p) x
 * LogNormal(mu, sigma) (Table 2, Eq. 14).
 */

#ifndef AR_DIST_COMBINATORS_HH
#define AR_DIST_COMBINATORS_HH

#include "dist/distribution.hh"

namespace ar::dist
{

/** Affine map of another distribution: Y = scale * X + offset. */
class Affine : public Distribution
{
  public:
    /**
     * @param base Underlying distribution.
     * @param scale Multiplier; must be non-zero.
     * @param offset Additive shift.
     */
    Affine(DistPtr base, double scale, double offset);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override;
    double stddev() const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double sampleFromUniform(double u) const override;
    void sampleFromUniformBatch(const double *u, double *out,
                                std::size_t n) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    DistPtr base;
    double scale;
    double offset;
};

/**
 * Product of two independent random variables, Z = X * Y.
 *
 * Sampling and moments are exact.  cdf() is available when the first
 * factor is discrete with small support (Bernoulli or Binomial), which
 * covers the paper's Bernoulli x LogNormal usage; other combinations
 * report a fatal error on cdf().
 */
class Product : public Distribution
{
  public:
    /** @param x First factor. @param y Second, independent factor. */
    Product(DistPtr x, DistPtr y);

    double sample(ar::util::Rng &rng) const override;
    double mean() const override;
    double stddev() const override;
    double cdf(double z) const override;
    double sampleFromUniform(double u) const override;
    void sampleFromUniformBatch(const double *u, double *out,
                                std::size_t n) const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    DistPtr x;
    DistPtr y;
};

} // namespace ar::dist

#endif // AR_DIST_COMBINATORS_HH
