/**
 * @file
 * Runtime telemetry: process-wide named counters, gauges, and
 * fixed-bucket histograms with lock-free per-thread shards.
 *
 * The design goal is an observability layer that is *free* when off
 * and cheap when on, so it can stay compiled into the hot paths
 * (Monte-Carlo trial loops, fused tape evaluation, the thread pool):
 *
 *  - Every hook is gated on one process-wide atomic word
 *    (detail::g_flags).  With telemetry disabled, a hook costs one
 *    relaxed load plus a predictable branch -- no clock reads, no
 *    shared-cache-line writes, no allocation.
 *
 *  - When enabled, counters and histogram observations go to a
 *    per-thread shard (plain relaxed atomics written only by the
 *    owning thread), so concurrent workers never contend on a
 *    metric cache line.
 *
 *  - scrape() merges the shards deterministically: integer counts are
 *    exact commutative sums (scheduler-independent by construction)
 *    and double-valued sums fold in shard-registration order, which
 *    is stable for the lifetime of the process.  Metrics never feed
 *    back into computation, so results are bit-identical with
 *    telemetry on or off.
 *
 * Metric names are dot-separated lowercase paths ("mc.trials",
 * "pool.task_us").  Registration is idempotent: asking for the same
 * name and kind returns a handle to the same metric; a kind mismatch
 * is fatal (it is a programming error in instrumentation code).
 */

#ifndef AR_OBS_TELEMETRY_HH
#define AR_OBS_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ar::obs
{

namespace detail
{

/// Process-wide enable word: bit 0 gates metrics, bit 1 gates
/// tracing.  One relaxed load of this word is the entire
/// disabled-path cost of every telemetry hook in the codebase.
inline std::atomic<std::uint32_t> g_flags{0};

inline constexpr std::uint32_t kMetricsBit = 1u;
inline constexpr std::uint32_t kTraceBit = 2u;

void shardAdd(std::uint32_t slot, std::uint64_t delta);
void shardAddDouble(std::uint32_t slot, double delta);

} // namespace detail

/** @return true when metric recording is enabled. */
inline bool
metricsEnabled()
{
    return (detail::g_flags.load(std::memory_order_relaxed) &
            detail::kMetricsBit) != 0;
}

/** @return true when trace-span recording is enabled. */
inline bool
tracingEnabled()
{
    return (detail::g_flags.load(std::memory_order_relaxed) &
            detail::kTraceBit) != 0;
}

/** @return true when any telemetry sink is enabled. */
inline bool
telemetryEnabled()
{
    return detail::g_flags.load(std::memory_order_relaxed) != 0;
}

/** Turn metric recording on or off (process-wide). */
void setMetricsEnabled(bool on);

/**
 * Turn trace-span recording on or off (process-wide).  Enabling
 * stamps the trace epoch on first use, so span timestamps are
 * relative to the first enable.
 */
void setTracingEnabled(bool on);

/**
 * Monotonically increasing event count.  add() is safe from any
 * thread (per-thread shard, no contention) and is a no-op while
 * metrics are disabled.
 */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1) const
    {
        if (metricsEnabled())
            detail::shardAdd(slot_, delta);
    }

  private:
    friend class MetricsRegistry;
    friend class ScopedPhase;
    explicit Counter(std::uint32_t slot) : slot_(slot) {}
    std::uint32_t slot_;
};

/**
 * Last-written instantaneous value (thread count, queue depth).
 * Writes go to one central atomic; intended for control-plane code,
 * not per-trial loops.
 */
class Gauge
{
  public:
    /** Set the value (no-op while metrics are disabled). */
    void set(double v) const;

    /** Raise the value to @p v if larger (high-water mark). */
    void toMax(double v) const;

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<std::uint64_t> *cell) : cell_(cell) {}
    std::atomic<std::uint64_t> *cell_;
};

/**
 * Fixed-bucket histogram.  Bucket i counts observations <=
 * bounds[i]; one extra overflow bucket counts the rest.  observe()
 * additionally accumulates count and sum so scrapes can report a
 * mean.  No-op while metrics are disabled.
 */
class Histogram
{
  public:
    void observe(double v) const;

  private:
    friend class MetricsRegistry;
    Histogram(std::uint32_t first_slot, const std::vector<double> *bounds)
        : first_slot_(first_slot), bounds_(bounds)
    {}
    std::uint32_t first_slot_;
    const std::vector<double> *bounds_;
};

/** Merged view of one histogram at scrape time. */
struct HistogramData
{
    std::vector<double> bounds;        ///< Ascending upper bounds.
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 buckets.
    std::uint64_t count = 0;           ///< Total observations.
    double sum = 0.0;                  ///< Sum of observed values.
};

/** Deterministically merged snapshot of every registered metric. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;

    /** Render as stable, schema-conforming JSON (sorted keys). */
    std::string toJson() const;
};

/**
 * The process-wide metric namespace.  Thread-safe; handles returned
 * by counter()/gauge()/histogram() stay valid for the process
 * lifetime and are cheap to copy.
 */
class MetricsRegistry
{
  public:
    /** @return the singleton registry. */
    static MetricsRegistry &global();

    /** Register (or look up) a counter. */
    Counter counter(const std::string &name);

    /** Register (or look up) a gauge. */
    Gauge gauge(const std::string &name);

    /**
     * Register (or look up) a histogram.
     *
     * @param bounds Strictly ascending bucket upper bounds; must be
     *        non-empty and must match any previous registration of
     *        the same name.
     */
    Histogram histogram(const std::string &name,
                        std::vector<double> bounds);

    /** Merge all shards into a snapshot (see file comment). */
    MetricsSnapshot scrape() const;

    /** scrape().toJson() convenience. */
    std::string scrapeJson() const;

    /** Zero every counter, gauge, and histogram (tests). */
    void reset();

  private:
    MetricsRegistry() = default;
};

/** Write scrapeJson() of the global registry to @p path (fatal on
 * I/O failure). */
void writeMetricsJson(const std::string &path);

/**
 * RAII phase timer: on destruction adds the elapsed nanoseconds to
 * @p ns_total (when metrics are enabled) and emits a trace span
 * named @p name (when tracing is enabled).  The enable word is
 * sampled once at construction, so a flag flip mid-phase cannot
 * unbalance anything.  Cost when disabled: one relaxed load and a
 * branch.
 */
class ScopedPhase
{
  public:
    ScopedPhase(const char *name, const Counter &ns_total);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    const char *name_;
    Counter ns_total_;
    std::uint32_t flags_;
    std::uint64_t start_ns_;
};

} // namespace ar::obs

#endif // AR_OBS_TELEMETRY_HH
