#include "obs/telemetry.hh"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace ar::obs
{

namespace
{

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

double
doubleOf(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof b);
    return v;
}

} // namespace

namespace detail
{

/**
 * One thread's slice of every sharded metric.  Only the owning
 * thread writes (relaxed read-modify-write of its own slots); the
 * scraper reads concurrently without tearing thanks to the atomics.
 * Capacity is fixed so a slot index assigned after this shard was
 * created still lands inside it.
 */
struct Shard
{
    static constexpr std::size_t kSlots = 1024;
    std::array<std::atomic<std::uint64_t>, kSlots> slots{};
};

} // namespace detail

namespace
{

struct MetricInfo
{
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
    Kind kind;
    std::uint32_t slot = 0;  ///< Shard slot / gauge cell index.
    /// Histogram bucket bounds; shared so handles can point at it.
    std::shared_ptr<const std::vector<double>> bounds;
};

const char *
kindName(MetricInfo::Kind kind)
{
    switch (kind) {
      case MetricInfo::Kind::Counter:
        return "counter";
      case MetricInfo::Kind::Gauge:
        return "gauge";
      case MetricInfo::Kind::Histogram:
        return "histogram";
    }
    return "?";
}

struct RegistryState
{
    std::mutex m;
    std::map<std::string, MetricInfo> metrics;
    std::vector<std::shared_ptr<detail::Shard>> shards;
    /// Gauge cells (double bits); deque keeps addresses stable.
    std::deque<std::atomic<std::uint64_t>> gauge_cells;
    std::uint32_t next_slot = 0;
};

RegistryState &
state()
{
    static RegistryState s;
    return s;
}

std::uint32_t
allocSlots(RegistryState &s, std::size_t n, const std::string &name)
{
    if (s.next_slot + n > detail::Shard::kSlots) {
        ar::util::fatal("MetricsRegistry: out of metric slots "
                        "registering '", name, "' (", detail::Shard::kSlots,
                        " max)");
    }
    const std::uint32_t first = s.next_slot;
    s.next_slot += static_cast<std::uint32_t>(n);
    return first;
}

void
checkName(const std::string &name)
{
    if (name.empty())
        ar::util::fatal("MetricsRegistry: empty metric name");
}

/** Minimal JSON string escaping (names are code-controlled). */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out.push_back(c);
    }
    return out;
}

void
appendJsonDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

namespace detail
{

Shard &
localShard()
{
    thread_local Shard *cached = nullptr;
    // The shared_ptr keeps the shard alive past either of the
    // registry-vs-TLS destruction orders.
    thread_local std::shared_ptr<Shard> keepalive;
    if (!cached) {
        keepalive = std::make_shared<Shard>();
        auto &s = state();
        std::lock_guard<std::mutex> lk(s.m);
        s.shards.push_back(keepalive);
        cached = keepalive.get();
    }
    return *cached;
}

void
shardAdd(std::uint32_t slot, std::uint64_t delta)
{
    auto &cell = localShard().slots[slot];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
}

void
shardAddDouble(std::uint32_t slot, double delta)
{
    auto &cell = localShard().slots[slot];
    const double cur = doubleOf(cell.load(std::memory_order_relaxed));
    cell.store(bitsOf(cur + delta), std::memory_order_relaxed);
}

} // namespace detail

void
setMetricsEnabled(bool on)
{
    if (on) {
        detail::g_flags.fetch_or(detail::kMetricsBit,
                                 std::memory_order_relaxed);
    } else {
        detail::g_flags.fetch_and(~detail::kMetricsBit,
                                  std::memory_order_relaxed);
    }
}

void
Gauge::set(double v) const
{
    if (metricsEnabled())
        cell_->store(bitsOf(v), std::memory_order_relaxed);
}

void
Gauge::toMax(double v) const
{
    if (!metricsEnabled())
        return;
    std::uint64_t cur = cell_->load(std::memory_order_relaxed);
    while (doubleOf(cur) < v &&
           !cell_->compare_exchange_weak(cur, bitsOf(v),
                                         std::memory_order_relaxed)) {
    }
}

void
Histogram::observe(double v) const
{
    if (!metricsEnabled())
        return;
    const auto &bounds = *bounds_;
    std::size_t bucket = 0;
    while (bucket < bounds.size() && v > bounds[bucket])
        ++bucket;
    detail::shardAdd(first_slot_ + static_cast<std::uint32_t>(bucket),
                     1);
    detail::shardAddDouble(
        first_slot_ + static_cast<std::uint32_t>(bounds.size()) + 1, v);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    checkName(name);
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    auto it = s.metrics.find(name);
    if (it == s.metrics.end()) {
        MetricInfo info;
        info.kind = MetricInfo::Kind::Counter;
        info.slot = allocSlots(s, 1, name);
        it = s.metrics.emplace(name, std::move(info)).first;
    } else if (it->second.kind != MetricInfo::Kind::Counter) {
        ar::util::fatal("MetricsRegistry: '", name, "' is a ",
                        kindName(it->second.kind), ", not a counter");
    }
    return Counter(it->second.slot);
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    checkName(name);
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    auto it = s.metrics.find(name);
    if (it == s.metrics.end()) {
        MetricInfo info;
        info.kind = MetricInfo::Kind::Gauge;
        info.slot = static_cast<std::uint32_t>(s.gauge_cells.size());
        s.gauge_cells.emplace_back(bitsOf(0.0));
        it = s.metrics.emplace(name, std::move(info)).first;
    } else if (it->second.kind != MetricInfo::Kind::Gauge) {
        ar::util::fatal("MetricsRegistry: '", name, "' is a ",
                        kindName(it->second.kind), ", not a gauge");
    }
    return Gauge(&s.gauge_cells[it->second.slot]);
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    checkName(name);
    if (bounds.empty())
        ar::util::fatal("MetricsRegistry: histogram '", name,
                        "' needs at least one bucket bound");
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (!std::isfinite(bounds[i]) ||
            (i > 0 && bounds[i] <= bounds[i - 1])) {
            ar::util::fatal("MetricsRegistry: histogram '", name,
                            "' bounds must be finite and strictly "
                            "ascending");
        }
    }
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    auto it = s.metrics.find(name);
    if (it == s.metrics.end()) {
        MetricInfo info;
        info.kind = MetricInfo::Kind::Histogram;
        // Layout: bounds.size() + 1 bucket counts, then a double-bits
        // sum slot.
        info.slot = allocSlots(s, bounds.size() + 2, name);
        info.bounds = std::make_shared<const std::vector<double>>(
            std::move(bounds));
        it = s.metrics.emplace(name, std::move(info)).first;
    } else if (it->second.kind != MetricInfo::Kind::Histogram) {
        ar::util::fatal("MetricsRegistry: '", name, "' is a ",
                        kindName(it->second.kind), ", not a histogram");
    } else if (*it->second.bounds != bounds) {
        ar::util::fatal("MetricsRegistry: histogram '", name,
                        "' re-registered with different bounds");
    }
    return Histogram(it->second.slot, it->second.bounds.get());
}

MetricsSnapshot
MetricsRegistry::scrape() const
{
    MetricsSnapshot snap;
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    // Shards merge in registration order: integer counts are exact
    // commutative sums, and the double-valued histogram sums fold in
    // this fixed order, so repeated scrapes of quiesced data are
    // byte-identical.
    auto sumSlot = [&](std::uint32_t slot) {
        std::uint64_t total = 0;
        for (const auto &shard : s.shards) {
            total += shard->slots[slot].load(std::memory_order_relaxed);
        }
        return total;
    };
    auto sumSlotDouble = [&](std::uint32_t slot) {
        double total = 0.0;
        for (const auto &shard : s.shards) {
            total += doubleOf(
                shard->slots[slot].load(std::memory_order_relaxed));
        }
        return total;
    };
    for (const auto &[name, info] : s.metrics) {
        switch (info.kind) {
          case MetricInfo::Kind::Counter:
            snap.counters[name] = sumSlot(info.slot);
            break;
          case MetricInfo::Kind::Gauge:
            snap.gauges[name] = doubleOf(
                s.gauge_cells[info.slot].load(
                    std::memory_order_relaxed));
            break;
          case MetricInfo::Kind::Histogram:
            {
                HistogramData h;
                h.bounds = *info.bounds;
                h.counts.resize(h.bounds.size() + 1);
                for (std::size_t b = 0; b < h.counts.size(); ++b) {
                    h.counts[b] = sumSlot(
                        info.slot + static_cast<std::uint32_t>(b));
                    h.count += h.counts[b];
                }
                h.sum = sumSlotDouble(
                    info.slot +
                    static_cast<std::uint32_t>(h.bounds.size()) + 1);
                snap.histograms.emplace(name, std::move(h));
                break;
            }
        }
    }
    return snap;
}

std::string
MetricsRegistry::scrapeJson() const
{
    return scrape().toJson();
}

void
MetricsRegistry::reset()
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    for (const auto &shard : s.shards) {
        for (auto &slot : shard->slots)
            slot.store(0, std::memory_order_relaxed);
    }
    for (auto &cell : s.gauge_cells)
        cell.store(bitsOf(0.0), std::memory_order_relaxed);
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out;
    out += "{\n  \"version\": 1,\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) +
               "\": " + std::to_string(value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) + "\": ";
        appendJsonDouble(out, value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) + "\": {\"bounds\": [";
        for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
            if (i)
                out += ", ";
            appendJsonDouble(out, hist.bounds[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < hist.counts.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(hist.counts[i]);
        }
        out += "], \"count\": " + std::to_string(hist.count) +
               ", \"sum\": ";
        appendJsonDouble(out, hist.sum);
        out += "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

void
writeMetricsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        ar::util::fatal("writeMetricsJson: cannot open '", path, "'");
    out << MetricsRegistry::global().scrapeJson();
    if (!out)
        ar::util::fatal("writeMetricsJson: write to '", path,
                        "' failed");
}

ScopedPhase::ScopedPhase(const char *name, const Counter &ns_total)
    : name_(name), ns_total_(ns_total),
      flags_(detail::g_flags.load(std::memory_order_relaxed)),
      start_ns_(flags_ ? detail::nowNs() : 0)
{
}

ScopedPhase::~ScopedPhase()
{
    if (!flags_)
        return;
    const std::uint64_t end = detail::nowNs();
    if (flags_ & detail::kMetricsBit)
        detail::shardAdd(ns_total_.slot_, end - start_ns_);
    if (flags_ & detail::kTraceBit)
        detail::traceRecord(name_, start_ns_, end);
}

} // namespace ar::obs
