/**
 * @file
 * Lightweight tracing: RAII spans collected into per-thread buffers
 * and exported as Chrome trace_event JSON (load the file at
 * chrome://tracing or https://ui.perfetto.dev).
 *
 * A TraceSpan costs one relaxed atomic load when tracing is disabled.
 * When enabled, it reads the steady clock twice and appends one
 * 24-byte event to a buffer owned by the recording thread (guarded by
 * a per-buffer mutex that only the scraper ever contends on).  Span
 * names must be string literals or otherwise outlive the trace
 * session -- buffers store the pointer, not a copy.
 */

#ifndef AR_OBS_TRACE_HH
#define AR_OBS_TRACE_HH

#include <cstdint>
#include <string>

#include "obs/telemetry.hh"

namespace ar::obs
{

namespace detail
{

/** @return steady-clock nanoseconds (monotonic, epoch arbitrary). */
std::uint64_t nowNs();

void traceRecord(const char *name, std::uint64_t start_ns,
                 std::uint64_t end_ns);

} // namespace detail

/**
 * RAII scope exported as one complete ("ph":"X") trace event from
 * construction to destruction.  Safe on any thread, including pool
 * workers; each thread's events carry its own tid.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
        : name_(tracingEnabled() ? name : nullptr),
          start_ns_(name_ ? detail::nowNs() : 0)
    {}

    ~TraceSpan()
    {
        if (name_)
            detail::traceRecord(name_, start_ns_, detail::nowNs());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_;
    std::uint64_t start_ns_;
};

/**
 * Render every recorded span as Chrome trace_event JSON:
 * {"traceEvents": [{"name": ..., "ph": "X", "pid": 1, "tid": N,
 * "ts": microseconds, "dur": microseconds}, ...]}.  Timestamps are
 * relative to the first setTracingEnabled(true).
 */
std::string traceJson();

/** Write traceJson() to @p path (fatal on I/O failure). */
void writeTraceJson(const std::string &path);

/** Drop all recorded spans and reset the trace epoch (tests). */
void clearTrace();

/** @return spans dropped because a thread buffer hit its cap. */
std::uint64_t traceDroppedEvents();

} // namespace ar::obs

#endif // AR_OBS_TRACE_HH
