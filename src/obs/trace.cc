#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "util/logging.hh"

namespace ar::obs
{

namespace
{

/** One recorded complete span. */
struct TraceEvent
{
    const char *name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
};

/// Per-thread cap so a runaway loop cannot exhaust memory; excess
/// spans are counted in dropped_ instead.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct TraceBuffer
{
    // The mutex is only ever contended by the scraper; the owning
    // thread takes it uncontended on each record.
    std::mutex m;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
};

struct TraceState
{
    std::mutex m;
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    std::atomic<std::uint64_t> epoch_ns{0};
    std::atomic<std::uint64_t> dropped{0};
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

TraceBuffer &
localBuffer()
{
    thread_local TraceBuffer *cached = nullptr;
    thread_local std::shared_ptr<TraceBuffer> keepalive;
    if (!cached) {
        keepalive = std::make_shared<TraceBuffer>();
        auto &s = state();
        std::lock_guard<std::mutex> lk(s.m);
        keepalive->tid = static_cast<std::uint32_t>(s.buffers.size());
        s.buffers.push_back(keepalive);
        cached = keepalive.get();
    }
    return *cached;
}

std::string
jsonEscape(const char *in)
{
    std::string out;
    for (; *in; ++in) {
        char c = *in;
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out.push_back(c);
    }
    return out;
}

void
appendMicros(std::string &out, std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

} // namespace

namespace detail
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
traceRecord(const char *name, std::uint64_t start_ns,
            std::uint64_t end_ns)
{
    auto &buf = localBuffer();
    std::lock_guard<std::mutex> lk(buf.m);
    if (buf.events.size() >= kMaxEventsPerThread) {
        state().dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf.events.push_back({name, start_ns, end_ns - start_ns});
}

} // namespace detail

void
setTracingEnabled(bool on)
{
    if (on) {
        // Stamp the epoch exactly once so span timestamps are
        // relative to the first enable.
        std::uint64_t expected = 0;
        state().epoch_ns.compare_exchange_strong(
            expected, detail::nowNs(), std::memory_order_relaxed);
        detail::g_flags.fetch_or(detail::kTraceBit,
                                 std::memory_order_relaxed);
    } else {
        detail::g_flags.fetch_and(~detail::kTraceBit,
                                  std::memory_order_relaxed);
    }
}

std::string
traceJson()
{
    auto &s = state();
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    std::uint64_t epoch;
    {
        std::lock_guard<std::mutex> lk(s.m);
        buffers = s.buffers;
        epoch = s.epoch_ns.load(std::memory_order_relaxed);
    }
    std::string out;
    out += "{\"traceEvents\": [";
    bool first = true;
    for (const auto &buf : buffers) {
        std::vector<TraceEvent> events;
        {
            std::lock_guard<std::mutex> lk(buf->m);
            events = buf->events;
        }
        for (const auto &ev : events) {
            out += first ? "\n" : ",\n";
            first = false;
            const std::uint64_t rel =
                ev.start_ns >= epoch ? ev.start_ns - epoch : 0;
            out += " {\"name\": \"" + jsonEscape(ev.name) +
                   "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
                   std::to_string(buf->tid) + ", \"ts\": ";
            appendMicros(out, rel);
            out += ", \"dur\": ";
            appendMicros(out, ev.dur_ns);
            out += "}";
        }
    }
    out += first ? "]" : "\n]";
    out += ", \"displayTimeUnit\": \"ms\", \"droppedEvents\": " +
           std::to_string(
               s.dropped.load(std::memory_order_relaxed)) +
           "}\n";
    return out;
}

void
writeTraceJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        ar::util::fatal("writeTraceJson: cannot open '", path, "'");
    out << traceJson();
    if (!out)
        ar::util::fatal("writeTraceJson: write to '", path,
                        "' failed");
}

void
clearTrace()
{
    auto &s = state();
    std::lock_guard<std::mutex> lk(s.m);
    for (const auto &buf : s.buffers) {
        std::lock_guard<std::mutex> blk(buf->m);
        buf->events.clear();
    }
    s.dropped.store(0, std::memory_order_relaxed);
    s.epoch_ns.store(tracingEnabled() ? detail::nowNs() : 0,
                     std::memory_order_relaxed);
}

std::uint64_t
traceDroppedEvents()
{
    return state().dropped.load(std::memory_order_relaxed);
}

} // namespace ar::obs
