/**
 * @file
 * Whole-model approximation (Section 4.3 of the paper): replace every
 * hidden ground-truth input distribution by one extracted from only k
 * observed samples, producing the bindings an analyst with limited
 * data would actually work from.
 */

#ifndef AR_EXTRACT_APPROXIMATE_HH
#define AR_EXTRACT_APPROXIMATE_HH

#include "extract/extract.hh"
#include "mc/propagator.hh"
#include "util/rng.hh"

namespace ar::extract
{

/**
 * Approximate a set of input bindings from k samples per input.
 *
 * Every uncertain distribution in @p truth is sampled k times and
 * re-estimated through the extraction pipeline; fixed inputs pass
 * through unchanged.
 *
 * @param truth Ground-truth bindings (the hidden models).
 * @param k Observed sample count per uncertain input.
 * @param cfg Extraction settings.
 * @param rng Random stream for the observation draws.
 */
ar::mc::InputBindings approximateBindings(
    const ar::mc::InputBindings &truth, std::size_t k,
    const ExtractionConfig &cfg, ar::util::Rng &rng);

} // namespace ar::extract

#endif // AR_EXTRACT_APPROXIMATE_HH
