#include "extract/extract.hh"

#include <algorithm>

#include "dist/boxcox_dist.hh"
#include "dist/empirical.hh"
#include "util/logging.hh"

namespace ar::extract
{

ExtractionResult
extractUncertainty(std::span<const double> samples,
                   const ExtractionConfig &cfg)
{
    if (samples.size() < 2)
        ar::util::fatal("extractUncertainty: need >= 2 samples, got ",
                        samples.size());
    if (cfg.force_kde && cfg.force_boxcox)
        ar::util::fatal("extractUncertainty: force_kde and "
                        "force_boxcox are mutually exclusive");

    ExtractionResult res;

    const auto [min_it, max_it] =
        std::minmax_element(samples.begin(), samples.end());
    if (*min_it == *max_it) {
        // No spread at all: a point mass is the only sane model.
        res.method = ExtractionMethod::Degenerate;
        res.distribution =
            std::make_shared<ar::dist::Degenerate>(*min_it);
        return res;
    }

    bool try_boxcox =
        !cfg.force_kde && (samples.size() >= 8 || cfg.force_boxcox);
    if (try_boxcox) {
        res.boxcox = ar::stats::fitBoxCox(samples,
                                          cfg.confidence_threshold);
        if (res.boxcox.passed || cfg.force_boxcox) {
            const auto transformed = res.boxcox.transform.apply(samples);
            res.gauss = ar::stats::fitGaussian(transformed);
            res.method = ExtractionMethod::BoxCoxBootstrap;
            res.distribution = std::make_shared<ar::dist::BoxCoxGaussian>(
                res.boxcox.transform, res.gauss.mean,
                res.gauss.stddev * cfg.stddev_scale);
            return res;
        }
    }

    res.method = ExtractionMethod::Kde;
    if (cfg.max_kde_points >= 2 &&
        samples.size() > cfg.max_kde_points) {
        // Deterministic subsample: evenly strided through the data.
        std::vector<double> sub;
        sub.reserve(cfg.max_kde_points);
        const double step = static_cast<double>(samples.size()) /
                            static_cast<double>(cfg.max_kde_points);
        for (std::size_t i = 0; i < cfg.max_kde_points; ++i) {
            sub.push_back(
                samples[static_cast<std::size_t>(i * step)]);
        }
        res.distribution =
            std::make_shared<ar::dist::KdeDistribution>(sub);
    } else {
        res.distribution =
            std::make_shared<ar::dist::KdeDistribution>(samples);
    }
    return res;
}

} // namespace ar::extract
