/**
 * @file
 * Architecture uncertainty model extraction (Figure 2 of the paper).
 *
 * Given a handful of observed data points from an unknown
 * distribution, produce a sampleable Distribution:
 *
 *   1. Box-Cox test: can the data be transformed to normality with
 *      confidence above the threshold?
 *   2. If not: fall back to a Gaussian KDE of the raw data.
 *   3. If yes: Box-Cox transform the data,
 *   4. fit a Gaussian in the transformed domain (optionally rescaling
 *      its stddev to hand-tune the uncertainty level), and
 *   5. back-transform, yielding the bootstrapped distribution.
 */

#ifndef AR_EXTRACT_EXTRACT_HH
#define AR_EXTRACT_EXTRACT_HH

#include <span>

#include "dist/distribution.hh"
#include "stats/boxcox.hh"
#include "stats/gaussian_fit.hh"

namespace ar::extract
{

/** Extraction pipeline settings. */
struct ExtractionConfig
{
    /** Box-Cox gate level (the paper uses 0.95). */
    double confidence_threshold = 0.95;

    /** Multiplier on the fitted stddev in Box-Cox space. */
    double stddev_scale = 1.0;

    /** Skip the Box-Cox path entirely and always use KDE. */
    bool force_kde = false;

    /** Skip the KDE fallback and always use Box-Cox (ablations). */
    bool force_boxcox = false;

    /**
     * Largest sample fed to the KDE branch; bigger observation sets
     * are deterministically subsampled first.  KDE accuracy saturates
     * well below this size while its evaluation cost keeps growing
     * linearly, so the cap trades nothing measurable for large
     * constant-factor savings in the Monte-Carlo back-end.
     */
    std::size_t max_kde_points = 512;
};

/** Which branch of the Figure-2 pipeline produced the result. */
enum class ExtractionMethod
{
    BoxCoxBootstrap,
    Kde,
    Degenerate, ///< Sample had zero spread.
};

/** Outcome of the extraction pipeline. */
struct ExtractionResult
{
    ar::dist::DistPtr distribution;
    ExtractionMethod method = ExtractionMethod::Kde;
    ar::stats::BoxCoxFit boxcox;   ///< Valid for BoxCoxBootstrap.
    ar::stats::GaussianFit gauss;  ///< Fit in transformed space.
};

/**
 * Run the extraction pipeline on observed samples.
 *
 * @param samples Observed data points (>= 8 for the Box-Cox path).
 * @param cfg Pipeline settings.
 */
ExtractionResult extractUncertainty(std::span<const double> samples,
                                    const ExtractionConfig &cfg = {});

} // namespace ar::extract

#endif // AR_EXTRACT_EXTRACT_HH
