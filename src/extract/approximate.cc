#include "extract/approximate.hh"

#include "util/logging.hh"

namespace ar::extract
{

ar::mc::InputBindings
approximateBindings(const ar::mc::InputBindings &truth, std::size_t k,
                    const ExtractionConfig &cfg, ar::util::Rng &rng)
{
    if (k < 2)
        ar::util::fatal("approximateBindings: need k >= 2 samples per "
                        "input, got ", k);
    ar::mc::InputBindings out;
    out.fixed = truth.fixed;
    for (const auto &[name, dist] : truth.uncertain) {
        const auto observed = dist->sampleMany(k, rng);
        out.uncertain[name] =
            extractUncertainty(observed, cfg).distribution;
    }
    return out;
}

} // namespace ar::extract
