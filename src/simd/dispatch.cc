#include "simd/dispatch.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace ar::simd
{

namespace
{

struct SimdMetrics
{
    obs::Counter ops =
        obs::MetricsRegistry::global().counter("simd.ops");
    obs::Gauge dispatch_level =
        obs::MetricsRegistry::global().gauge("simd.dispatch_level");
};

SimdMetrics &
simdMetrics()
{
    static SimdMetrics m;
    return m;
}

/// Published dispatch level; -1 until resolveInitialLevel() ran.
std::atomic<int> g_active{-1};

bool
hostSupports(Level level)
{
    switch (level) {
      case Level::Scalar:
        return true;
      case Level::Neon:
#ifdef AR_SIMD_HAVE_NEON
        return true; // NEON is baseline on aarch64.
#else
        return false;
#endif
      case Level::Avx2:
#ifdef AR_SIMD_HAVE_AVX2
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
#else
        return false;
#endif
      case Level::Avx512:
#ifdef AR_SIMD_HAVE_AVX512
        return __builtin_cpu_supports("avx512f");
#else
        return false;
#endif
    }
    return false;
}

Level
bestAvailable()
{
    for (Level l : {Level::Avx512, Level::Avx2, Level::Neon})
        if (hostSupports(l))
            return l;
    return Level::Scalar;
}

void
publish(Level level)
{
    g_active.store(static_cast<int>(level),
                   std::memory_order_relaxed);
    simdMetrics().dispatch_level.set(
        static_cast<double>(static_cast<int>(level)));
}

Level
resolveInitialLevel()
{
    Level chosen = bestAvailable();
    if (const char *env = std::getenv("AR_SIMD")) {
        const std::string want(env);
        bool known = false;
        for (Level l : {Level::Scalar, Level::Neon, Level::Avx2,
                        Level::Avx512}) {
            if (want == levelName(l)) {
                known = true;
                if (hostSupports(l))
                    chosen = l;
                else
                    ar::util::warn("AR_SIMD=", want,
                                   " not available on this host/"
                                   "build; using ",
                                   levelName(chosen));
                break;
            }
        }
        if (!known)
            ar::util::warn("AR_SIMD=", want,
                           " not recognized (want scalar|neon|avx2|"
                           "avx512); using ",
                           levelName(chosen));
    }
    publish(chosen);
    return chosen;
}

const KernelTable &
tableFor(Level level)
{
    switch (level) {
      case Level::Scalar:
        return kernelsScalar();
      case Level::Neon:
#ifdef AR_SIMD_HAVE_NEON
        return kernelsNeon();
#else
        break;
#endif
      case Level::Avx2:
#ifdef AR_SIMD_HAVE_AVX2
        return kernelsAvx2();
#else
        break;
#endif
      case Level::Avx512:
#ifdef AR_SIMD_HAVE_AVX512
        return kernelsAvx512();
#else
        break;
#endif
    }
    ar::util::fatal("simd: no kernel table built for level ",
                    static_cast<int>(level));
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Neon:
        return "neon";
      case Level::Avx2:
        return "avx2";
      case Level::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::vector<Level>
availableLevels()
{
    std::vector<Level> out;
    for (Level l : {Level::Scalar, Level::Neon, Level::Avx2,
                    Level::Avx512})
        if (hostSupports(l))
            out.push_back(l);
    return out;
}

Level
activeLevel()
{
    const int v = g_active.load(std::memory_order_relaxed);
    if (v >= 0)
        return static_cast<Level>(v);
    // Magic-static guard: exactly one thread resolves; racers block
    // here until the level is published.
    static const Level initial = resolveInitialLevel();
    (void)initial;
    return static_cast<Level>(
        g_active.load(std::memory_order_relaxed));
}

void
setActiveLevel(Level level)
{
    if (!hostSupports(level))
        ar::util::fatal("simd: setActiveLevel(", levelName(level),
                        ") not available on this host/build");
    publish(level);
}

ScopedLevel::ScopedLevel(Level level) : prev_(activeLevel())
{
    setActiveLevel(level);
}

ScopedLevel::~ScopedLevel()
{
    setActiveLevel(prev_);
}

const KernelTable &
kernels()
{
    return tableFor(activeLevel());
}

void
recordBatch(std::uint64_t ops)
{
    auto &m = simdMetrics();
    m.ops.add(ops);
    // Re-publish the gauge: metrics may have been enabled after the
    // level was first resolved, which would have dropped the set().
    m.dispatch_level.set(
        static_cast<double>(static_cast<int>(activeLevel())));
}

} // namespace ar::simd
