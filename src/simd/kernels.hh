/**
 * @file
 * Batch kernel table: one function pointer per tape/sampling
 * operation, populated per dispatch level (scalar, NEON, AVX2,
 * AVX-512).  The tape interpreters and the distribution sampling
 * paths call through the table returned by ar::simd::kernels(), so
 * the ISA choice is made once at dispatch time, not per op.
 *
 * Contracts every backend must honor:
 *
 *  - dst may alias a or b (the interpreters evaluate in place on the
 *    operand rows), but kernels process lanes strictly left to right
 *    in non-overlapping stores, so aliasing dst == a or dst == b is
 *    safe.
 *  - No kernel reads or writes outside [p, p + n) for any pointer
 *    argument; tails shorter than the vector width run through
 *    one-lane code (no masked over-reads).
 *  - The scalar table is a plain std:: loop per op and is
 *    bit-identical to the pre-SIMD interpreter loops.
 *  - Vector tables are bit-identical to each other at every width
 *    (see simd/math_inl.hh) and within the ULP policy of DESIGN.md
 *    section 5.6 relative to the scalar table.
 */

#ifndef AR_SIMD_KERNELS_HH
#define AR_SIMD_KERNELS_HH

#include <cstddef>

namespace ar::simd
{

/** Elementwise dst[i] = f(a[i]). */
using UnaryKernel = void (*)(const double *a, double *dst,
                             std::size_t n);

/** Elementwise dst[i] = f(a[i], b[i]). */
using BinaryKernel = void (*)(const double *a, const double *b,
                              double *dst, std::size_t n);

/** dst[i] = quantile(clamp(u[i])) scaled by (mu, sigma). */
using QuantileKernel = void (*)(const double *u, double *dst,
                                std::size_t n, double mu,
                                double sigma);

struct KernelTable
{
    const char *name;  ///< "scalar", "neon", "avx2", "avx512".
    std::size_t width; ///< Vector lane count (1 for scalar).

    // Tape arithmetic (dst may alias a or b).
    BinaryKernel add;
    BinaryKernel mul;
    BinaryKernel pow; ///< std::pow per lane at every level.
    BinaryKernel max; ///< std::max semantics (first wins on NaN/tie).
    BinaryKernel min;
    UnaryKernel sq;
    UnaryKernel recip;
    UnaryKernel gtz; ///< dst = a > 0 ? 1 : 0.
    UnaryKernel pow_half; ///< pow(a, 0.5): sqrt with IEEE pow specials.

    // Transcendentals.
    UnaryKernel log;
    UnaryKernel exp;
    UnaryKernel sqrt;
    UnaryKernel erf;
    UnaryKernel erfc;
    UnaryKernel erfinv;

    // Sampling transforms: uniform u in (0, 1) -> distribution draw.
    QuantileKernel normal_quantile;    ///< mu + sigma * Phi^-1(u).
    QuantileKernel lognormal_quantile; ///< exp(mu + sigma * Phi^-1(u)).
};

/** The scalar reference table (always available). */
const KernelTable &kernelsScalar();

#ifdef AR_SIMD_HAVE_AVX2
const KernelTable &kernelsAvx2();
#endif
#ifdef AR_SIMD_HAVE_AVX512
const KernelTable &kernelsAvx512();
#endif
#ifdef AR_SIMD_HAVE_NEON
const KernelTable &kernelsNeon();
#endif

} // namespace ar::simd

#endif // AR_SIMD_KERNELS_HH
